(* The PQS bug-hunting CLI, in the spirit of the paper's SQLancer tool.

   Examples:

     # list the injected-bug catalog
     sqlancer list-bugs

     # hunt a specific injected bug and print the reduced reproduction
     sqlancer hunt --dialect sqlite --bug Sq_partial_index_implies_not_null

     # free run against a correct engine (should find nothing)
     sqlancer run --dialect postgres --queries 5000 *)

open Cmdliner

let dialect_conv =
  let parse s =
    match Sqlval.Dialect.of_name s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown dialect %S" s))
  in
  Arg.conv (parse, fun fmt d -> Format.pp_print_string fmt (Sqlval.Dialect.name d))

let bug_conv =
  let parse s =
    match Engine.Bug.of_string s with
    | Some b -> Ok b
    | None -> Error (`Msg (Printf.sprintf "unknown bug %S (try list-bugs)" s))
  in
  Arg.conv (parse, fun fmt b -> Format.pp_print_string fmt (Engine.Bug.show b))

let dialect_arg =
  Arg.(
    value
    & opt dialect_conv Sqlval.Dialect.Sqlite_like
    & info [ "d"; "dialect" ] ~docv:"DIALECT" ~doc:"sqlite, mysql or postgres")

let backend_conv =
  let parse s =
    match Engine.Exec_backend.of_name s with
    | Ok k -> Ok k
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    (parse, fun fmt k -> Format.pp_print_string fmt (Engine.Exec_backend.name k))

let backend_arg =
  Arg.(
    value
    & opt backend_conv Engine.Exec_backend.Interpreted
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "execution backend for the test sessions: $(b,interpreted) \
           (tree-walking reference) or $(b,compiled) (closure-compiling, \
           batched); findings are always confirmed against the interpreted \
           engine")

(* every optional oracle contributes one flag, derived from the registry
   so a new oracle needs no CLI edit *)
let oracle_flags =
  let entries =
    List.filter
      (fun e -> e.Pqs.Oracle.Registry.reg_flag <> None)
      (Pqs.Oracle.Registry.all ())
  in
  List.fold_left
    (fun acc e ->
      let flag_name = Option.get e.Pqs.Oracle.Registry.reg_flag in
      let arg =
        Arg.(
          value & flag
          & info [ flag_name ] ~doc:e.Pqs.Oracle.Registry.reg_doc)
      in
      Term.(
        const (fun selected enabled ->
            if enabled then selected @ [ e ] else selected)
        $ acc $ arg))
    (Term.const []) entries

let oracles_of selected =
  Pqs.Oracle.defaults
  @ List.map (fun e -> e.Pqs.Oracle.Registry.reg_make ()) selected

let seed_arg =
  Arg.(value & opt int 7 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"random seed")

let queries_arg =
  Arg.(
    value & opt int 10000
    & info [ "n"; "queries" ] ~docv:"N" ~doc:"containment-check budget")

let print_report ~reduce ~bugs (r : Pqs.Bug_report.t) =
  let r = if reduce then Pqs.Reducer.reduce_report r ~bugs else r in
  Format.printf "%a@." Pqs.Bug_report.pp r

let bundles_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bundles" ] ~docv:"DIR"
        ~doc:
          "write a self-contained repro bundle \
           (repro.sql/bundle.json/trace.json) under DIR for every finding; \
           replay with $(b,sqlancer replay DIR/bundle-*/repro.sql)")

let trace_sample_arg =
  Arg.(
    value & opt int 0
    & info [ "trace-sample" ] ~docv:"N"
        ~doc:
          "with --bundles: also write the full flight-recorder trace of \
           every Nth healthy round (0 = off)")

(* ---- list-bugs ---- *)

let list_bugs () =
  List.iter
    (fun bug ->
      let info = Engine.Bug.info bug in
      Printf.printf "%-42s %-10s %-11s %-9s %s\n" (Engine.Bug.show bug)
        (Sqlval.Dialect.name info.Engine.Bug.dialect)
        (match info.Engine.Bug.oracle with
        | Engine.Bug.O_containment -> "containment"
        | Engine.Bug.O_error -> "error"
        | Engine.Bug.O_crash -> "crash")
        (Engine.Bug.show_status info.Engine.Bug.status)
        info.Engine.Bug.paper_ref)
    Engine.Bug.all

let list_bugs_cmd =
  Cmd.v
    (Cmd.info "list-bugs" ~doc:"list the injected-bug catalog")
    Term.(
      const (fun () ->
          list_bugs ();
          0)
      $ const ())

(* ---- list-oracles ---- *)

let list_oracles () =
  List.iter
    (fun (e : Pqs.Oracle.Registry.entry) ->
      Printf.printf "%-12s %-9s %-13s %s\n" e.Pqs.Oracle.Registry.reg_name
        (if e.Pqs.Oracle.Registry.reg_default then "default"
         else
           match e.Pqs.Oracle.Registry.reg_flag with
           | Some f -> "--" ^ f
           | None -> "-")
        (match e.Pqs.Oracle.Registry.reg_recheck with
        | Pqs.Oracle.Registry.Not_recheckable -> "no-recheck"
        | Pqs.Oracle.Registry.Replay_outcome -> "replay"
        | Pqs.Oracle.Registry.Custom _ -> "custom")
        e.Pqs.Oracle.Registry.reg_doc)
    (Pqs.Oracle.Registry.all ())

let list_oracles_cmd =
  Cmd.v
    (Cmd.info "list-oracles"
       ~doc:"list the oracle registry (name, flag, recheck strategy)")
    Term.(
      const (fun () ->
          list_oracles ();
          0)
      $ const ())

(* ---- hunt ---- *)

let hunt dialect bug seed queries no_reduce bundles trace_sample =
  let info = Engine.Bug.info bug in
  let dialect =
    if Sqlval.Dialect.equal dialect info.Engine.Bug.dialect then dialect
    else begin
      Printf.printf "note: %s is a %s bug; using that dialect\n"
        (Engine.Bug.show bug)
        (Sqlval.Dialect.name info.Engine.Bug.dialect);
      info.Engine.Bug.dialect
    end
  in
  let bugs = Engine.Bug.set_of_list [ bug ] in
  let config =
    Pqs.Runner.Config.make ~seed ~bugs ?bundle_dir:bundles
      ~trace_sample dialect
  in
  Printf.printf "hunting %s (%s) with up to %d containment checks...\n%!"
    (Engine.Bug.show bug) info.Engine.Bug.summary queries;
  match Pqs.Runner.hunt config ~max_queries:queries with
  | Some r ->
      print_report ~reduce:(not no_reduce) ~bugs r;
      0
  | None ->
      Printf.printf "not detected within the budget; try more --queries or \
                     another --seed\n";
      1

let hunt_cmd =
  let bug_arg =
    Arg.(
      required
      & opt (some bug_conv) None
      & info [ "b"; "bug" ] ~docv:"BUG" ~doc:"injected bug to enable")
  in
  let no_reduce =
    Arg.(value & flag & info [ "no-reduce" ] ~doc:"skip test-case reduction")
  in
  Cmd.v
    (Cmd.info "hunt" ~doc:"enable one injected bug and hunt it")
    Term.(
      const hunt $ dialect_arg $ bug_arg $ seed_arg $ queries_arg $ no_reduce
      $ bundles_arg $ trace_sample_arg)

(* ---- run ---- *)

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "write the telemetry registry on exit: Prometheus text format, or \
           a JSON snapshot when FILE ends in .json")

let write_metrics tele = function
  | None -> ()
  | Some path ->
      Telemetry.write_file tele path;
      Printf.printf "metrics written to %s\n" path

let run dialect seed queries all_bugs extra_oracles backend metrics bundles
    trace_sample =
  let bugs =
    if all_bugs then Engine.Bug.set_of_list (Engine.Bug.for_dialect dialect)
    else Engine.Bug.empty_set
  in
  let oracles = oracles_of extra_oracles in
  let telemetry =
    if metrics = None then Telemetry.noop else Telemetry.create ()
  in
  let config =
    Pqs.Runner.Config.make ~seed ~bugs ~oracles ~telemetry ~backend
      ?bundle_dir:bundles ~trace_sample dialect
  in
  let stats = Pqs.Runner.run ~max_queries:queries config in
  print_endline (Pqs.Stats.summary stats);
  write_metrics telemetry metrics;
  List.iter (print_report ~reduce:true ~bugs) stats.Pqs.Stats.reports;
  if stats.Pqs.Stats.reports = [] then 0 else 1

let run_cmd =
  let all_bugs =
    Arg.(
      value & flag
      & info [ "all-bugs" ]
          ~doc:"enable every catalog bug of the dialect (default: none)")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"run the PQS loop and report findings")
    Term.(
      const run $ dialect_arg $ seed_arg $ queries_arg $ all_bugs
      $ oracle_flags $ backend_arg $ metrics_arg $ bundles_arg
      $ trace_sample_arg)

(* ---- campaign ---- *)

(* campaign findings, deduplicated by minimized-repro fingerprint: the
   same engine defect found from many seeds prints once, with a count *)
let print_deduped_reports ~bugs reports =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun r ->
      let r = Pqs.Reducer.reduce_report r ~bugs in
      let fp = Pqs.Bug_report.fingerprint r in
      match Hashtbl.find_opt tbl fp with
      | Some (first, n) -> Hashtbl.replace tbl fp (first, n + 1)
      | None ->
          Hashtbl.add tbl fp (r, 1);
          order := fp :: !order)
    reports;
  let distinct = List.rev !order in
  List.iter
    (fun fp ->
      let r, n = Hashtbl.find tbl fp in
      Format.printf "%a@." Pqs.Bug_report.pp r;
      Printf.printf "  fingerprint %s%s\n" (String.sub fp 0 12)
        (if n > 1 then
           Printf.sprintf " (%d more finding(s) share this repro)" (n - 1)
         else ""))
    distinct;
  if List.length distinct < List.length reports then
    Printf.printf "findings: %d distinct of %d total\n" (List.length distinct)
      (List.length reports)

(* top-of-funnel operator summary derived from the merged registry:
   slowest phase by total time, round latency quantiles, throughput,
   per-dialect engine coverage and frontier fractions *)
let funnel_line tele cov (c : Pqs.Campaign.t) =
  let slowest =
    List.fold_left
      (fun acc (s : Telemetry.sample) ->
        match (s.Telemetry.s_value, s.Telemetry.s_name) with
        | ( Telemetry.Histogram { sum; _ },
            ("pqs_phase_seconds" | "minidb_phase_seconds") ) -> (
            match List.assoc_opt "phase" s.Telemetry.s_labels with
            | Some phase -> (
                match acc with
                | Some (_, best) when best >= sum -> acc
                | _ -> Some (phase, sum))
            | None -> acc)
        | _ -> acc)
      None (Telemetry.snapshot tele)
  in
  let quant q =
    match Telemetry.quantile tele "pqs_round_seconds" q with
    | Some v -> Printf.sprintf "%.0fms" (v *. 1000.0)
    | None -> "n/a"
  in
  let universe = Pqs.Gen_bias.universe c.Pqs.Campaign.dialect in
  Printf.sprintf
    "funnel: slowest-phase=%s p50-round=%s p99-round=%s stmts/s=%.0f \
     coverage[%s]=%.0f%% frontier=%d/%d (%.0f%%)"
    (match slowest with
    | Some (phase, sum) -> Printf.sprintf "%s(%.2fs)" phase sum
    | None -> "n/a")
    (quant 0.5) (quant 0.99)
    (Pqs.Campaign.statements_per_sec c)
    (Sqlval.Dialect.name c.Pqs.Campaign.dialect)
    (100.0 *. Engine.Coverage.fraction cov)
    (Frontier.hit_in ~universe c.Pqs.Campaign.stats.Pqs.Stats.frontier)
    (List.length universe)
    (100.0
    *. Frontier.fraction ~universe c.Pqs.Campaign.stats.Pqs.Stats.frontier)

let campaign_run dialect seed databases domains trace chrome_trace all_bugs
    extra_oracles backend metrics metrics_every bundles trace_sample guided
    frontier_json =
  let bugs =
    if all_bugs then Engine.Bug.set_of_list (Engine.Bug.for_dialect dialect)
    else Engine.Bug.empty_set
  in
  let oracles = oracles_of extra_oracles in
  (* always enabled for campaigns: the funnel summary comes from them, and
     recording is campaign-neutral (verified by test_telemetry) *)
  let telemetry = Telemetry.create () in
  let coverage = Engine.Coverage.create () in
  let config =
    Pqs.Runner.Config.make ~bugs ~oracles ~telemetry ~coverage ~backend
      ~guided ?bundle_dir:bundles ~trace_sample dialect
  in
  let c =
    Pqs.Campaign.run ?domains ?trace ?chrome_trace ?frontier_json
      ?metrics_every ?metrics_path:metrics ~seed_lo:seed
      ~seed_hi:(seed + databases) config
  in
  Printf.printf "domains=%d wall=%.2fs stmts/s=%.0f\n%s\n%s\n"
    c.Pqs.Campaign.domains c.Pqs.Campaign.elapsed
    (Pqs.Campaign.statements_per_sec c)
    (Pqs.Stats.summary c.Pqs.Campaign.stats)
    (funnel_line telemetry coverage c);
  (match trace with
  | Some path -> Printf.printf "event trace written to %s\n" path
  | None -> ());
  (match chrome_trace with
  | Some path -> Printf.printf "chrome trace written to %s\n" path
  | None -> ());
  (match bundles with
  | Some dir ->
      let n =
        List.length
          (List.filter_map
             (fun (r : Pqs.Bug_report.t) -> r.Pqs.Bug_report.bundle)
             (Pqs.Campaign.reports c))
      in
      Printf.printf "%d repro bundle(s) under %s\n" n dir
  | None -> ());
  (match frontier_json with
  | Some path -> Printf.printf "frontier snapshot written to %s\n" path
  | None -> ());
  write_metrics telemetry metrics;
  print_deduped_reports ~bugs (Pqs.Campaign.reports c);
  if Pqs.Campaign.reports c = [] then 0 else 1

let campaign dialect seed databases domains trace chrome_trace all_bugs
    extra_oracles backend metrics metrics_every bundles trace_sample guided
    frontier_json =
  try
    campaign_run dialect seed databases domains trace chrome_trace all_bugs
      extra_oracles backend metrics metrics_every bundles trace_sample guided
      frontier_json
  with Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    2

let campaign_cmd =
  let databases =
    Arg.(
      value & opt int 64
      & info [ "databases" ] ~docv:"N"
          ~doc:"seed range size: one database round per seed")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:"worker domains (default: the machine's recommended count)")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"write a JSONL event trace")
  in
  let chrome_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "write a Chrome trace-event JSON file of the per-worker seed \
             spans (open in chrome://tracing or Perfetto)")
  in
  let all_bugs =
    Arg.(
      value & flag
      & info [ "all-bugs" ]
          ~doc:"enable every catalog bug of the dialect (default: none)")
  in
  let guided =
    Arg.(
      value & flag
      & info [ "guided" ]
          ~doc:
            "coverage-guided generation: aim each pivot's queries at cold \
             frontier points instead of sampling clause shapes blind \
             (results then depend on the shard assignment)")
  in
  let frontier_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "frontier" ] ~docv:"FILE"
          ~doc:
            "write a JSON snapshot of the merged coverage frontier \
             (cross-linking any repro bundles)")
  in
  let metrics_every =
    Arg.(
      value
      & opt (some float) None
      & info [ "metrics-every" ] ~docv:"SECS"
          ~doc:
            "with --metrics: atomically re-export the metrics file at \
             least SECS seconds apart while the campaign runs, so a \
             Prometheus scraper can watch it live (mid-run snapshots \
             carry counters and frontier gauges; phase histograms land \
             in the final export)")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "shard a seed range across domains, one database per seed, and \
          merge the results deterministically")
    Term.(
      const campaign $ dialect_arg $ seed_arg $ databases $ domains $ trace
      $ chrome_trace $ all_bugs $ oracle_flags $ backend_arg $ metrics_arg
      $ metrics_every $ bundles_arg $ trace_sample_arg $ guided
      $ frontier_json)

(* ---- fleet ---- *)

let print_fleet_findings agg =
  match Fleet.Aggregate.findings agg with
  | [] -> ()
  | findings ->
      Printf.printf "distinct findings (first-discovering shard first):\n";
      List.iter
        (fun (f : Fleet.Aggregate.finding) ->
          Printf.printf "  %s  %-14s shard %d seed %d  x%d%s\n"
            (String.sub f.Fleet.Aggregate.f_fingerprint 0 12)
            f.Fleet.Aggregate.f_oracle f.Fleet.Aggregate.f_shard
            f.Fleet.Aggregate.f_seed f.Fleet.Aggregate.f_count
            (match f.Fleet.Aggregate.f_bundle with
            | Some b -> "  " ^ b
            | None -> ""))
        findings

let fleet_run dialect seed databases workers chunk heartbeat_every stall_after
    export_every dir all_bugs extra_oracles backend bundles trace_sample
    guided quiet chaos =
  let bugs =
    if all_bugs then Engine.Bug.set_of_list (Engine.Bug.for_dialect dialect)
    else Engine.Bug.empty_set
  in
  let oracles = oracles_of extra_oracles in
  (* enabled so each worker batch snapshots a registry into its
     heartbeats; the supervisor merges them into the fleet export *)
  let telemetry = Telemetry.create () in
  let config =
    Pqs.Runner.Config.make ~bugs ~oracles ~telemetry ~backend ~guided
      ?bundle_dir:bundles ~trace_sample dialect
  in
  let fc =
    {
      Fleet.Supervisor.workers;
      chunk;
      heartbeat_every;
      stall_after;
      poll = 0.05;
      dir;
      export_every;
      chaos_kill_after = chaos;
    }
  in
  let log =
    if quiet then fun _ -> () else fun s -> Printf.printf "[fleet] %s\n%!" s
  in
  let r =
    Fleet.Supervisor.run ~log fc config ~seed_lo:seed
      ~seed_hi:(seed + databases)
  in
  let agg = r.Fleet.Supervisor.agg in
  let c = Fleet.Aggregate.counters agg in
  let universe = Pqs.Gen_bias.universe dialect in
  let frontier = Fleet.Aggregate.frontier agg in
  Printf.printf
    "fleet: %d shard(s) over %d slot(s)  rounds=%d statements=%d queries=%d \
     wall=%.2fs rounds/s=%.1f\n"
    r.Fleet.Supervisor.spawned workers
    (Fleet.Aggregate.rounds agg)
    c.Fleet.Heartbeat.statements c.Fleet.Heartbeat.queries
    r.Fleet.Supervisor.elapsed
    (if r.Fleet.Supervisor.elapsed > 0.0 then
       float_of_int (Fleet.Aggregate.rounds agg) /. r.Fleet.Supervisor.elapsed
     else 0.0);
  Printf.printf
    "health: watchdog-kills=%d crashes=%d requeued-seeds=%d decode-errors=%d\n"
    r.Fleet.Supervisor.watchdog_kills
    (r.Fleet.Supervisor.crashes - r.Fleet.Supervisor.chaos_kills)
    r.Fleet.Supervisor.requeued_seeds r.Fleet.Supervisor.decode_errors;
  Printf.printf "frontier: %d/%d (%.1f%%)   findings: %d distinct of %d total\n"
    (Frontier.hit_in ~universe frontier)
    (List.length universe)
    (100.0 *. Frontier.fraction ~universe frontier)
    (Fleet.Aggregate.distinct_reports agg)
    (Fleet.Aggregate.total_reports agg);
  print_fleet_findings agg;
  Printf.printf "fleet snapshots under %s (fleet.json, metrics.prom)\n" dir;
  if Fleet.Aggregate.distinct_reports agg = 0 then 0 else 1

let fleet dialect seed databases workers chunk heartbeat_every stall_after
    export_every dir all_bugs extra_oracles backend bundles trace_sample
    guided quiet chaos =
  try
    fleet_run dialect seed databases workers chunk heartbeat_every stall_after
      export_every dir all_bugs extra_oracles backend bundles trace_sample
      guided quiet chaos
  with Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    2

let fleet_cmd =
  let databases =
    Arg.(
      value & opt int 256
      & info [ "databases" ] ~docv:"N"
          ~doc:"seed range size: one database round per seed")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "w"; "workers" ] ~docv:"N"
          ~doc:"worker slots (concurrent shard processes)")
  in
  let chunk =
    Arg.(
      value & opt int 32
      & info [ "chunk" ] ~docv:"N" ~doc:"seeds per work-stealing lease")
  in
  let heartbeat_every =
    Arg.(
      value & opt int 8
      & info [ "heartbeat-every" ] ~docv:"N"
          ~doc:"rounds per heartbeat batch")
  in
  let stall_after =
    Arg.(
      value & opt float 30.0
      & info [ "stall-after" ] ~docv:"SECS"
          ~doc:
            "watchdog: kill and restart a shard whose heartbeats stop for \
             this long (its unfinished seeds are requeued)")
  in
  let export_every =
    Arg.(
      value & opt float 2.0
      & info [ "export-every" ] ~docv:"SECS"
          ~doc:
            "seconds between atomic fleet.json / metrics.prom / state.json \
             snapshot exports")
  in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "fleet directory: per-shard heartbeat files plus the exported \
             snapshots (watch live with $(b,sqlancer top --fleet DIR))")
  in
  let all_bugs =
    Arg.(
      value & flag
      & info [ "all-bugs" ]
          ~doc:"enable every catalog bug of the dialect (default: none)")
  in
  let guided =
    Arg.(
      value & flag
      & info [ "guided" ]
          ~doc:
            "coverage-guided generation (each shard's bias is local to its \
             lease, so results depend on the lease assignment)")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"suppress per-event supervisor log lines")
  in
  let chaos =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-kill-after" ] ~docv:"ROUNDS"
          ~doc:
            "fault injection (for testing the watchdog): SIGKILL one \
             running shard once the merged round count reaches ROUNDS")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "shard a seed range across supervised worker processes with \
          heartbeats, a stall watchdog and live merged snapshots; the \
          merged result is exactly the sequential run over the same seeds")
    Term.(
      const fleet $ dialect_arg $ seed_arg $ databases $ workers $ chunk
      $ heartbeat_every $ stall_after $ export_every $ dir $ all_bugs
      $ oracle_flags $ backend_arg $ bundles_arg $ trace_sample_arg $ guided
      $ quiet $ chaos)

(* ---- top ---- *)

let write_html_report d stale = function
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Pqs.Dashboard.render_html ~stale d));
      Printf.printf "html report written to %s\n" path

let is_summary_line line =
  let prefix = "{\"type\":\"campaign" in
  String.length line >= String.length prefix
  && String.sub line 0 (String.length prefix) = prefix

let top_trace dialect trace once report stale interval =
  if once then begin
    let d = Pqs.Dashboard.of_trace_file ~dialect trace in
    print_string (Pqs.Dashboard.render ~ansi:false ~stale d);
    write_html_report d stale report;
    0
  end
  else begin
    (* tail through Fleet.Tail so rotation and in-place truncation of
       the trace (logrotate, a restarted campaign reopening the same
       path) reset the funnel instead of wedging or double-counting *)
    let d = ref (Pqs.Dashboard.create ~dialect) in
    let tail = Fleet.Tail.create trace in
    let finished = ref false in
    Fun.protect
      ~finally:(fun () -> Fleet.Tail.close tail)
      (fun () ->
        let rec loop () =
          List.iter
            (function
              | Fleet.Tail.Rotated -> d := Pqs.Dashboard.create ~dialect
              | Fleet.Tail.Line line ->
                  ignore (Pqs.Dashboard.feed_line !d line);
                  if is_summary_line line then finished := true)
            (Fleet.Tail.poll tail);
          Pqs.Dashboard.sample_rate !d ~now:(Unix.gettimeofday ());
          print_string (Pqs.Dashboard.render ~ansi:true ~stale !d);
          flush stdout;
          if not !finished then begin
            Unix.sleepf interval;
            loop ()
          end
        in
        loop ());
    write_html_report !d stale report;
    0
  end

let read_file path =
  try Some (In_channel.with_open_bin path In_channel.input_all)
  with Sys_error _ -> None

(* the supervisor's fleet.json carries the run status; "done" ends the
   live view (a snapshot read mid-rename is impossible: exports go
   through atomic rename) *)
let fleet_status dir =
  match read_file (Filename.concat dir "fleet.json") with
  | None -> None
  | Some s -> (
      match Fleet.Json.parse s with
      | Ok j -> Option.bind (Fleet.Json.member "status" j) Fleet.Json.to_str
      | Error _ -> None)

let write_fleet_html v stale = function
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Fleet.Fleet_view.render_html ~stale v));
      Printf.printf "html report written to %s\n" path

let top_fleet dialect dir once report stale interval =
  let v = Fleet.Fleet_view.create ~dialect ~dir in
  if once then begin
    Fleet.Fleet_view.refresh v;
    print_string (Fleet.Fleet_view.render ~ansi:false ~stale v);
    write_fleet_html v stale report;
    0
  end
  else begin
    let rec loop () =
      Fleet.Fleet_view.refresh v;
      print_string (Fleet.Fleet_view.render ~ansi:true ~stale v);
      flush stdout;
      if fleet_status dir <> Some "done" then begin
        Unix.sleepf interval;
        loop ()
      end
    in
    loop ();
    write_fleet_html v stale report;
    0
  end

let top dialect trace fleet_dir once report stale interval =
  try
    match (trace, fleet_dir) with
    | Some trace, None -> top_trace dialect trace once report stale interval
    | None, Some dir -> top_fleet dialect dir once report stale interval
    | _ ->
        Printf.eprintf "error: pass exactly one of --trace FILE or --fleet DIR\n";
        2
  with Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    2

let top_cmd =
  let trace =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"the campaign's JSONL trace (written by campaign --trace)")
  in
  let fleet_dir =
    Arg.(
      value
      & opt (some dir) None
      & info [ "fleet" ] ~docv:"DIR"
          ~doc:
            "a fleet directory (written by $(b,sqlancer fleet)): render \
             per-shard health rows plus the merged funnel and frontier \
             from the shard heartbeat files")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"print one snapshot of the whole trace and exit")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"also write a self-contained HTML report")
  in
  let stale =
    Arg.(
      value & opt int 10
      & info [ "stale" ] ~docv:"N"
          ~doc:"how many of the coldest unexercised points to list")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECS" ~doc:"live redraw interval")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "live campaign funnel: tail a JSONL trace (or a fleet directory \
          with --fleet) and render rounds/sec, the per-oracle firing \
          funnel, the frontier fraction and the most-stale unexercised \
          points (exits when the trace ends)")
    Term.(
      const top $ dialect_arg $ trace $ fleet_dir $ once $ report $ stale
      $ interval)

(* ---- replay ---- *)

let replay files =
  let results = List.map (fun f -> (f, Pqs.Replay.check_file f)) files in
  let ok = ref true in
  List.iter
    (fun (f, res) ->
      match res with
      | Ok o ->
          if not o.Pqs.Replay.reproduced then ok := false;
          Printf.printf "%-6s %-16s %s (%s)\n"
            (if o.Pqs.Replay.reproduced then "OK" else "FAIL")
            (Pqs.Bug_report.oracle_token o.Pqs.Replay.oracle)
            f o.Pqs.Replay.detail
      | Error msg ->
          ok := false;
          Printf.printf "%-6s %-16s %s (%s)\n" "BROKEN" "-" f msg)
    results;
  if !ok then 0 else 1

let replay_cmd =
  let files =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"REPRO.SQL"
          ~doc:"repro scripts written by --bundles (bundle-*/repro.sql)")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "replay repro bundles and confirm each oracle verdict reproduces; \
          exit 0 iff all do")
    Term.(const replay $ files)

(* ---- lint ---- *)

let lint dialect seed databases queries_per_seed =
  let r =
    Pqs.Lint.sweep ~queries_per_seed ~seed_lo:seed
      ~seed_hi:(seed + databases - 1) dialect
  in
  Printf.printf
    "seeds=%d queries=%d plans=%d diagnostics=%d simplify-diagnostics=%d\n"
    r.Pqs.Lint.sw_seeds r.Pqs.Lint.sw_queries r.Pqs.Lint.sw_plans
    (List.length r.Pqs.Lint.sw_diags)
    (List.length r.Pqs.Lint.sw_simplify_diags);
  List.iter
    (fun (seed, d) ->
      Printf.printf "seed %d: %s\n" seed (Analysis.Diagnostic.to_string d))
    r.Pqs.Lint.sw_diags;
  (* simplification/interval findings are advisory: a randomly generated
     predicate may legitimately be unsatisfiable or constant-true, so
     they are listed but never affect the exit code *)
  List.iter
    (fun (seed, d) ->
      Printf.printf "seed %d (simplify): %s\n" seed
        (Analysis.Diagnostic.to_string d))
    r.Pqs.Lint.sw_simplify_diags;
  if r.Pqs.Lint.sw_diags = [] then 0 else 1

let lint_cmd =
  let databases =
    Arg.(
      value & opt int 100
      & info [ "databases" ] ~docv:"N"
          ~doc:"seed range size: one database per seed")
  in
  let queries_per_seed =
    Arg.(
      value & opt int 3
      & info [ "queries-per-seed" ] ~docv:"N"
          ~doc:"containment queries analyzed per seed")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "run the static analyzer over a generated seed corpus; any \
          diagnostic is an analyzer or generator defect")
    Term.(const lint $ dialect_arg $ seed_arg $ databases $ queries_per_seed)

(* ---- plan-diff ---- *)

let plan_diff dialect seed databases queries_per_seed max_plans bug =
  let bugs =
    match bug with
    | Some b -> Engine.Bug.set_of_list [ b ]
    | None -> Engine.Bug.empty_set
  in
  let r =
    Pqs.Plan_diff.sweep ~queries_per_seed ~max_plans ~bugs ~seed_lo:seed
      ~seed_hi:(seed + databases - 1) dialect
  in
  let exclusive = Pqs.Plan_diff.exclusive_seeds r in
  Printf.printf
    "seeds=%d queries=%d forced-plans=%d divergences=%d \
     containment-seeds=%d plan-diff-only-seeds=%d\n"
    r.Pqs.Plan_diff.pd_seeds r.Pqs.Plan_diff.pd_queries
    r.Pqs.Plan_diff.pd_plans
    (List.length r.Pqs.Plan_diff.pd_divergences)
    (List.length r.Pqs.Plan_diff.pd_containment_seeds)
    (List.length exclusive);
  List.iter
    (fun (seed, msg) -> Printf.printf "seed %d: %s\n" seed msg)
    r.Pqs.Plan_diff.pd_divergences;
  match bug with
  | None ->
      (* bug-free: any divergence is an engine or oracle defect *)
      if r.Pqs.Plan_diff.pd_divergences = [] then 0 else 1
  | Some _ ->
      (* hunting an injected bug: success means the oracle caught it *)
      if r.Pqs.Plan_diff.pd_divergences <> [] then 0 else 1

let plan_diff_cmd =
  let databases =
    Arg.(
      value & opt int 100
      & info [ "databases" ] ~docv:"N"
          ~doc:"seed range size: one database per seed")
  in
  let queries_per_seed =
    Arg.(
      value & opt int 3
      & info [ "queries-per-seed" ] ~docv:"N"
          ~doc:"pivoted queries checked per seed")
  in
  let max_plans =
    Arg.(
      value & opt int 4
      & info [ "max-plans" ] ~docv:"N"
          ~doc:"forced-plan fan-out cap per query")
  in
  let bug =
    Arg.(
      value
      & opt (some bug_conv) None
      & info [ "b"; "bug" ] ~docv:"BUG"
          ~doc:
            "injected bug to enable; with it, exit 0 iff a divergence was \
             found (detection), without it, exit 0 iff none was (soundness)")
  in
  Cmd.v
    (Cmd.info "plan-diff"
       ~doc:
         "run the plan-space differential oracle over a generated seed \
          corpus: every query executed under each enumerable plan, result \
          multisets cross-checked")
    Term.(
      const plan_diff $ dialect_arg $ seed_arg $ databases $ queries_per_seed
      $ max_plans $ bug)

(* ---- const-opt ---- *)

let const_opt dialect seed databases queries_per_seed backend bug =
  let bugs =
    match bug with
    | Some b -> Engine.Bug.set_of_list [ b ]
    | None -> Engine.Bug.empty_set
  in
  let r =
    Pqs.Const_opt.sweep ~queries_per_seed ~bugs ~backend ~seed_lo:seed
      ~seed_hi:(seed + databases - 1) dialect
  in
  Printf.printf
    "seeds=%d queries=%d const-checks=%d rewrites=%d divergences=%d\n"
    r.Pqs.Const_opt.co_seeds r.Pqs.Const_opt.co_queries
    r.Pqs.Const_opt.co_checks r.Pqs.Const_opt.co_rewrites
    (List.length r.Pqs.Const_opt.co_divergences);
  List.iter
    (fun (seed, msg) -> Printf.printf "seed %d: %s\n" seed msg)
    r.Pqs.Const_opt.co_divergences;
  match bug with
  | None ->
      (* bug-free: the simplifier must be semantics-preserving *)
      if r.Pqs.Const_opt.co_divergences = [] then 0 else 1
  | Some _ ->
      (* hunting an injected bug: success means the oracle caught it *)
      if r.Pqs.Const_opt.co_divergences <> [] then 0 else 1

let const_opt_cmd =
  let databases =
    Arg.(
      value & opt int 100
      & info [ "databases" ] ~docv:"N"
          ~doc:"seed range size: one database per seed")
  in
  let queries_per_seed =
    Arg.(
      value & opt int 3
      & info [ "queries-per-seed" ] ~docv:"N"
          ~doc:"pivoted queries checked per seed")
  in
  let bug =
    Arg.(
      value
      & opt (some bug_conv) None
      & info [ "b"; "bug" ] ~docv:"BUG"
          ~doc:
            "injected bug to enable; with it, exit 0 iff a divergence was \
             found (detection), without it, exit 0 iff none was (soundness)")
  in
  Cmd.v
    (Cmd.info "const-opt"
       ~doc:
         "run the constant-optimization oracle over a generated seed \
          corpus: pivot values folded into each containment query as \
          constants, the simplified variant re-executed and cross-checked")
    Term.(
      const const_opt $ dialect_arg $ seed_arg $ databases $ queries_per_seed
      $ backend_arg $ bug)

(* ---- metamorphic ---- *)

let metamorphic dialect seed checks bug =
  let bugs =
    match bug with
    | Some b -> Engine.Bug.set_of_list [ b ]
    | None -> Engine.Bug.empty_set
  in
  let stats = Pqs.Metamorphic.run ~seed ~bugs ~max_checks:checks dialect in
  Printf.printf "checks=%d skipped=%d violations=%d
"
    stats.Pqs.Metamorphic.checks stats.Pqs.Metamorphic.skipped
    (List.length stats.Pqs.Metamorphic.findings);
  List.iter
    (fun (msg, script) ->
      Printf.printf "
%s
%s
" msg
        (Sqlast.Sql_printer.script dialect script))
    stats.Pqs.Metamorphic.findings;
  if stats.Pqs.Metamorphic.findings = [] then 0 else 1

let metamorphic_cmd =
  let checks =
    Arg.(
      value & opt int 4000
      & info [ "checks" ] ~docv:"N" ~doc:"partition checks to run")
  in
  let bug =
    Arg.(
      value
      & opt (some bug_conv) None
      & info [ "b"; "bug" ] ~docv:"BUG" ~doc:"injected bug to enable")
  in
  Cmd.v
    (Cmd.info "metamorphic"
       ~doc:"aggregate partition checks (the Section 7 extension)")
    Term.(const metamorphic $ dialect_arg $ seed_arg $ checks $ bug)

let () =
  let info =
    Cmd.info "sqlancer" ~version:"1.0"
      ~doc:"Pivoted Query Synthesis bug hunter (OSDI 2020 reproduction)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_bugs_cmd;
            list_oracles_cmd;
            hunt_cmd;
            run_cmd;
            campaign_cmd;
            fleet_cmd;
            top_cmd;
            metamorphic_cmd;
            lint_cmd;
            plan_diff_cmd;
            const_opt_cmd;
            replay_cmd;
          ]))
