(* A tiny SQL shell over the minidb engine.

     dune exec bin/minidb.exe -- --dialect sqlite
     minidb> CREATE TABLE t0(c0 INT);
     minidb> INSERT INTO t0(c0) VALUES (1), (2);
     minidb> SELECT * FROM t0 WHERE c0 > 1;
     minidb> EXPLAIN ANALYZE SELECT * FROM t0 WHERE c0 > 1;

   `.bugs Sq_rtrim_compare_asymmetric,...` re-opens the session with the
   given injected bugs enabled, which makes it easy to reproduce the paper
   listings interactively. *)

open Cmdliner

let print_result = function
  | Engine.Session.Rows rs ->
      print_string (String.concat "|" rs.Engine.Executor.rs_columns);
      print_newline ();
      List.iter
        (fun row ->
          print_string
            (String.concat "|"
               (Array.to_list (Array.map Sqlval.Value.to_display row)));
          print_newline ())
        rs.Engine.Executor.rs_rows;
      Printf.printf "(%d rows)\n" (List.length rs.Engine.Executor.rs_rows)
  | Engine.Session.Affected n -> Printf.printf "ok (%d rows affected)\n" n
  | Engine.Session.Done -> print_endline "ok"

let handle_meta session_ref dialect tele line =
  match String.split_on_char ' ' (String.trim line) with
  | [ ".bugs" ] | [ ".bugs"; "" ] ->
      session_ref := Engine.Session.create ~telemetry:tele dialect;
      print_endline "bugs cleared; fresh session";
      true
  | [ ".bugs"; spec ] ->
      let bugs =
        String.split_on_char ',' spec
        |> List.filter_map (fun name ->
               match Engine.Bug.of_string (String.trim name) with
               | Some b -> Some b
               | None ->
                   Printf.printf "unknown bug: %s\n" name;
                   None)
      in
      session_ref :=
        Engine.Session.create
          ~bugs:(Engine.Bug.set_of_list bugs)
          ~telemetry:tele dialect;
      Printf.printf "fresh session with %d bug(s) enabled\n" (List.length bugs);
      true
  | [ ".tables" ] ->
      List.iter print_endline (Engine.Session.table_names !session_ref);
      true
  | [ ".quit" ] | [ ".exit" ] -> raise Exit
  | _ -> false

let repl dialect metrics =
  Printf.printf
    "minidb %s — type SQL terminated by ';' (EXPLAIN / EXPLAIN ANALYZE \
     work too), or .tables / .bugs <list> / .quit\n"
    (Sqlval.Dialect.name dialect);
  let tele =
    if metrics = None then Telemetry.noop else Telemetry.create ()
  in
  let session = ref (Engine.Session.create ~telemetry:tele dialect) in
  let buffer = Buffer.create 256 in
  (try
     while true do
       print_string (if Buffer.length buffer = 0 then "minidb> " else "   ...> ");
       flush stdout;
       let line = try input_line stdin with End_of_file -> raise Exit in
       if Buffer.length buffer = 0 && String.length (String.trim line) > 0
          && (String.trim line).[0] = '.'
       then begin
         if not (handle_meta session dialect tele line) then
           print_endline "unknown meta command"
       end
       else begin
         Buffer.add_string buffer line;
         Buffer.add_char buffer '\n';
         let text = Buffer.contents buffer in
         if String.contains line ';' then begin
           Buffer.clear buffer;
           (* the only text-parsing path in the stack: the PQS loop feeds
              ASTs straight to the engine, so phase="parse" appears here *)
           match
             Telemetry.Span.timed tele Telemetry.Phase.Parse
               (fun () -> Sqlparse.Parser.parse_script text)
           with
           | Error e -> print_endline (Sqlparse.Parser.show_error e)
           | Ok stmts ->
               List.iter
                 (fun stmt ->
                   match Engine.Session.execute !session stmt with
                   | Ok r -> print_result r
                   | Error e -> print_endline (Engine.Errors.show e)
                   | exception Engine.Errors.Crash msg ->
                       Printf.printf "!! simulated SEGFAULT: %s\n" msg;
                       print_endline "(session survives; a real DBMS would not)")
                 stmts
         end
       end
     done
   with Exit -> ());
  (match metrics with
  | Some path ->
      Telemetry.write_file tele path;
      Printf.printf "metrics written to %s\n" path
  | None -> ());
  print_endline "bye";
  0

let dialect_conv =
  let parse s =
    match Sqlval.Dialect.of_name s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown dialect %S" s))
  in
  Arg.conv (parse, fun fmt d -> Format.pp_print_string fmt (Sqlval.Dialect.name d))

let () =
  let dialect =
    Arg.(
      value
      & opt dialect_conv Sqlval.Dialect.Sqlite_like
      & info [ "d"; "dialect" ] ~docv:"DIALECT" ~doc:"sqlite, mysql or postgres")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "write session telemetry on exit (Prometheus text, or JSON when \
             FILE ends in .json)")
  in
  let cmd =
    Cmd.v
      (Cmd.info "minidb" ~doc:"interactive SQL shell over the minidb engine")
      Term.(const repl $ dialect $ metrics)
  in
  exit (Cmd.eval' cmd)
