(* Standalone evaluation runner: regenerates the paper's tables and
   figures without the micro-benchmarks.  `bench/main.exe` is the full
   harness; this binary exists so the evaluation can be driven from
   scripts:

     dune exec bin/experiments.exe -- table2 table3
     dune exec bin/experiments.exe -- full          # evaluation budgets
     dune exec bin/experiments.exe -- bugs          # regenerate BUGS.md *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let budget, seeds, targets =
    match args with
    | "full" :: rest -> (30000, [ 7; 77; 777 ], rest)
    | rest -> (12000, [ 7; 77 ], rest)
  in
  let targets =
    if targets = [] then
      [ "table1"; "table2"; "table3"; "table4"; "figure2"; "figure3" ]
    else targets
  in
  let detections = ref None in
  let get () =
    match !detections with
    | Some d -> d
    | None ->
        Printf.printf "Hunting all catalog bugs (%d queries x %d seeds)...\n%!"
          budget (List.length seeds);
        let d =
          Experiments.Detection.run_all ~budget ~seeds ~progress:true ()
        in
        detections := Some d;
        d
  in
  List.iter
    (function
      | "table1" -> Experiments.Table1.run ()
      | "table2" -> Experiments.Table2.run (get ())
      | "table3" -> Experiments.Table3.run (get ())
      | "table4" -> Experiments.Table4.run ()
      | "figure2" -> detections := Some (Experiments.Figure2.run (get ()))
      | "bugs" -> Experiments.Bug_catalog_doc.generate (get ())
      | "figure3" -> detections := Some (Experiments.Figure3.run (get ()))
      | "perf" -> Experiments.Throughput.run ()
      | "campaign" -> Experiments.Campaign_bench.run ()
      | "baselines" -> Experiments.Baseline_cmp.run (get ())
      | "ablations" -> Experiments.Ablations.run ()
      | t -> Printf.printf "unknown target %s\n" t)
    targets
