(** Random database generation (paper step 1 and Section 3.3).

    Creates tables with CREATE TABLE, fills them with INSERT, and explores
    the state space with further DDL/DML: UPDATE, DELETE, ALTER TABLE,
    CREATE INDEX (incl. unique/partial/expression/collated indexes), views,
    run-time options, and the dialect-specific statements the paper calls
    out (REPAIR/CHECK TABLE for mysql; DISCARD and CREATE STATISTICS for
    postgres; PRAGMA, VACUUM and REINDEX for sqlite). *)

type config = {
  rng : Rng.t;
  dialect : Sqlval.Dialect.t;
  table_count : int;  (** tables per database (paper uses few) *)
  max_columns : int;
  min_rows : int;  (** paper Section 3.4: low row counts (10–30) *)
  max_rows : int;
  extra_statements : int;  (** additional random DDL/DML statements *)
}

val default_config : ?seed:int -> Sqlval.Dialect.t -> config

(** The CREATE TABLE statements opening a database round. *)
val initial_statements : config -> Sqlast.Ast.stmt list

(** INSERTs that bring every table to at least [min_rows] rows (the paper
    ensures each table holds at least one row). *)
val fill_statements : config -> Engine.Session.t -> Sqlast.Ast.stmt list

(** One INSERT of 1–3 random rows into the table; rows occasionally clone
    (and slightly mutate) an existing row so near-duplicates occur. *)
val insert_stmt :
  ?existing_rows:Sqlval.Value.t array list ->
  config ->
  Schema_info.table_info ->
  Sqlast.Ast.stmt

(** One more random statement group (usually a single statement; BEGIN ...
    COMMIT pairs arrive as a group), chosen from the current schema. *)
val random_statements : config -> Engine.Session.t -> Sqlast.Ast.stmt list
