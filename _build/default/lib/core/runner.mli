(** The PQS main loop (paper Figure 1).

    Each database round: generate a random database (step 1), then for a
    number of pivot choices (step 2) synthesize rectified queries (steps
    3–5), run them on the engine (step 6) and check containment (step 7).
    The error oracle watches every executed statement; the crash oracle
    catches the simulated SEGFAULTs.  Workers on distinct databases are
    just independent [run] calls with distinct seeds (paper Section 3.4's
    thread-per-database parallelization). *)

type config = {
  dialect : Sqlval.Dialect.t;
  bugs : Engine.Bug.set;
  seed : int;
  table_count : int;
  max_rows : int;
  extra_statements : int;
  pivots_per_db : int;
  queries_per_pivot : int;
  max_depth : int;  (** expression depth bound (paper Algorithm 1) *)
  check_expressions : bool;  (** expressions-on-columns extension *)
  verify_ground_truth : bool;
      (** replay containment findings on a correct engine before reporting
          (guards against oracle imprecision; counts as false positive) *)
  rectify : bool;  (** disable only for the no-rectification ablation *)
  coverage : Engine.Coverage.t option;
      (** engine feature-coverage instrumentation (Table 4) *)
  check_non_containment : bool;
      (** also issue rectified-to-FALSE queries and require the pivot row to
          be absent — the paper's Section 7 future-work variant, which
          additionally catches defects that wrongly *include* rows *)
}

val default_config :
  ?seed:int -> ?bugs:Engine.Bug.set -> Sqlval.Dialect.t -> config

type stats = {
  mutable databases : int;
  mutable pivots : int;
  mutable queries : int;
  mutable statements : int;
  mutable interp_failures : int;
      (** expressions the oracle could not evaluate (regenerated) *)
  mutable false_positives : int;
      (** containment misses not confirmed by the correct engine *)
  mutable reports : Bug_report.t list;
  mutable truth_values : (Sqlval.Tvl.t * int) list;
      (** distribution of raw condition truth values before rectification *)
  mutable negative_checks : int;
      (** how many checks were of the non-containment variant *)
}

val empty_stats : unit -> stats

(** Run one database round; new findings are appended to [stats.reports].
    Returns the first finding of the round, if any. *)
val run_database_round : config -> stats -> Bug_report.t option

(** Run rounds until [max_queries] containment checks were issued or a
    finding occurred [stop_on_first] (database seeds derive from
    [config.seed]). *)
val run :
  ?stop_on_first:bool -> max_queries:int -> config -> stats

(** Convenience for the evaluation: hunt for the first finding within a
    query budget. *)
val hunt : config -> max_queries:int -> Bug_report.t option

(** Parallel variant of {!run}: [workers] domains, each hunting on its own
    databases with an independent seed stream (the paper's
    thread-per-database parallelization, Section 3.4).  The query budget is
    split across workers and the stats are merged. *)
val run_parallel :
  ?stop_on_first:bool -> workers:int -> max_queries:int -> config -> stats
