(** PQS's view of the database schema.

    As in the paper (Section 3.4), PQS does not track state itself: it
    re-reads the schema from the engine's catalog (the analogue of querying
    [sqlite_master] / [information_schema]). *)

open Sqlval

type column_info = {
  ci_name : string;
  ci_type : Datatype.t;
  ci_collation : Collation.t;
  ci_not_null : bool;
}

type table_info = {
  ti_name : string;
  ti_columns : column_info list;
  ti_without_rowid : bool;
  ti_engine : Sqlast.Ast.table_engine option;
  ti_has_children : bool;
  ti_row_count : int;
}

val pp_table_info : Format.formatter -> table_info -> unit

(** Snapshot of the user tables (not views), in creation order. *)
val tables_of_session : Engine.Session.t -> table_info list

(** Views, with their (derived) output column names. *)
val views_of_session : Engine.Session.t -> (string * string list) list

(** Existing index names (for DROP INDEX / REINDEX generation). *)
val index_names_of_session : Engine.Session.t -> string list

(** All rows of a table from the heap (the ground truth the pivot row is
    drawn from). *)
val rows_of_table : Engine.Session.t -> string -> Value.t array list

(** Views presented as pivot sources: a pseudo table_info (untyped, binary
    collation columns) plus the view's current rows.  The paper notes views
    were among the sqlite features PQS exercised (Section 4.2). *)
val view_pivot_sources :
  Engine.Session.t -> (table_info * Value.t array list) list
