type t = { state : Random.State.t; mutable counter : int }

let make ~seed = { state = Random.State.make [| seed; 0x5150 |]; counter = 0 }

let split t =
  { state = Random.State.make [| Random.State.bits t.state |]; counter = 0 }

let int t n = Random.State.int t.state n
let int_in t lo hi = lo + Random.State.int t.state (hi - lo + 1)
let int64 t = Random.State.int64 t.state Int64.max_int
let bool t = Random.State.bool t.state
let chance t p = Random.State.float t.state 1.0 < p

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let pick_weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 pairs in
  if total <= 0 then invalid_arg "Rng.pick_weighted: no weight";
  let roll = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.pick_weighted: unreachable"
    | (w, x) :: rest -> if roll < acc + w then x else go (acc + w) rest
  in
  go 0 pairs

let shuffle t xs =
  let tagged = List.map (fun x -> (Random.State.bits t.state, x)) xs in
  List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) tagged)

let sample t k xs =
  let shuffled = shuffle t xs in
  List.filteri (fun i _ -> i < k) shuffled

let identifier t ~prefix =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s%d_%d" prefix t.counter (int t 1000)

let interesting_strings =
  [
    ""; " "; "  "; "a"; "A"; "ab"; "aB"; "./"; "0"; "1"; "-1"; "0.5"; "1x";
    "12abc"; "%"; "_"; "NULL"; "true"; "'";
  ]

let small_string t =
  if chance t 0.5 then pick t interesting_strings
  else begin
    let len = int t 6 in
    String.init len (fun _ ->
        let c = int t 64 in
        Char.chr (Char.code ' ' + c))
  end

let interesting_ints =
  [
    0L; 1L; -1L; 2L; 3L; 10L; 100L; 127L; 128L; -128L; 255L; 32767L;
    2147483647L; -2147483648L; 2147483648L; 9223372036854775807L;
    -9223372036854775807L; 2851427734582196970L; 2035382037L;
  ]

let interesting_int t =
  if chance t 0.6 then Int64.of_int (int_in t (-50) 50)
  else pick t interesting_ints

let interesting_reals =
  [ 0.0; 0.5; -0.5; 1.0; -1.0; 1.5; 1e10; -1e10; 9.22e18; 0.1 ]

let interesting_real t =
  if chance t 0.5 then
    Float.of_int (int_in t (-1000) 1000) /. 8.0
  else pick t interesting_reals
