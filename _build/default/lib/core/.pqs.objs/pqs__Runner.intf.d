lib/core/runner.pp.mli: Bug_report Engine Sqlval
