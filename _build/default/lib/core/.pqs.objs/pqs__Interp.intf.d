lib/core/interp.pp.mli: Collation Datatype Dialect Schema_info Sqlast Sqlval Tvl Value
