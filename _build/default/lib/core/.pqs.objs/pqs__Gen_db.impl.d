lib/core/gen_db.pp.ml: Array Collation Datatype Dialect Gen_expr Int64 List Printf Rng Schema_info Sqlast Sqlval Value
