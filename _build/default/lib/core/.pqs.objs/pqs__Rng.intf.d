lib/core/rng.pp.mli:
