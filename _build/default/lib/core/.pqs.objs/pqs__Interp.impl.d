lib/core/interp.pp.ml: Array Buffer Char Coerce Collation Datatype Dialect Float Int64 Like_matcher List Numeric Option Printf Result Schema_info Sqlast Sqlval String Tvl Value
