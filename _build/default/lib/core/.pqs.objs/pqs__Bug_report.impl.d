lib/core/bug_report.pp.ml: Dialect Format List Option Ppx_deriving_runtime Sqlast Sqlval
