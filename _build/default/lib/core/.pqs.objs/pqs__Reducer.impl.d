lib/core/reducer.pp.ml: Bug_report Engine Expected_errors List Sqlast
