lib/core/runner.pp.ml: Bug_report Dialect Domain Engine Expected_errors Gen_db Gen_query List Rng Schema_info Sqlast Sqlval Tvl
