lib/core/rectify.pp.mli: Interp Sqlast Sqlval
