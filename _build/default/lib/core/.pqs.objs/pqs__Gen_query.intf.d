lib/core/gen_query.pp.mli: Dialect Rng Schema_info Sqlast Sqlval Tvl Value
