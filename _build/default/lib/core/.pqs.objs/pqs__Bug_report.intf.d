lib/core/bug_report.pp.mli: Dialect Format Sqlast Sqlval
