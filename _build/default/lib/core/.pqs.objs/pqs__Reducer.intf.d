lib/core/reducer.pp.mli: Bug_report Engine Sqlast Sqlval
