lib/core/expected_errors.pp.ml: Dialect Engine List Sqlast Sqlval
