lib/core/schema_info.pp.mli: Collation Datatype Engine Format Sqlast Sqlval Value
