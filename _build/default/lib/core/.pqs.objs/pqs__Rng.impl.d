lib/core/rng.pp.ml: Char Float Int64 List Printf Random String
