lib/core/expected_errors.pp.mli: Engine Sqlast Sqlval
