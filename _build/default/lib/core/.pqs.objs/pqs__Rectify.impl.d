lib/core/rectify.pp.ml: Interp Result Sqlast Sqlval Tvl
