lib/core/gen_expr.pp.mli: Datatype Dialect Rng Schema_info Sqlast Sqlval Value
