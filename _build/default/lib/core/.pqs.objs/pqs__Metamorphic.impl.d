lib/core/metamorphic.pp.ml: Array Engine Gen_db Gen_expr Int64 List Printf Rng Schema_info Sqlast Sqlval Value
