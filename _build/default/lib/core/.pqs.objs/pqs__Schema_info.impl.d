lib/core/schema_info.pp.ml: Array Collation Datatype Engine Format List Sqlast Sqlval Storage String
