lib/core/gen_expr.pp.ml: Char Collation Datatype Dialect Int64 List Printf Rng Schema_info Sqlast Sqlval String Value
