lib/core/gen_db.pp.mli: Engine Rng Schema_info Sqlast Sqlval
