lib/core/gen_query.pp.ml: Array Gen_expr Interp List Rectify Result Rng Schema_info Sqlast Sqlval Tvl Value
