lib/core/metamorphic.pp.mli: Engine Rng Schema_info Sqlast Sqlval
