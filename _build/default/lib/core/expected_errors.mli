(** Expected-error lists (paper Section 3.3, "Error handling").

    Rather than guaranteeing semantic correctness of every generated
    statement, PQS associates each statement with the error codes it may
    legitimately produce (e.g. an INSERT may hit a UNIQUE constraint; an
    INSERT OR IGNORE must not).  An error outside the list — and any
    corruption- or internal-class error regardless of the list — is a bug
    (the error oracle). *)

val expected :
  Sqlval.Dialect.t -> Sqlast.Ast.stmt -> Engine.Errors.code list

(** Is this error acceptable for this statement?  Corruption and internal
    errors never are. *)
val is_expected :
  Sqlval.Dialect.t -> Sqlast.Ast.stmt -> Engine.Errors.t -> bool
