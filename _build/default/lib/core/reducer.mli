(** Test-case reduction.

    SQLancer "automatically deletes SQL statements that are unnecessary to
    reproduce a bug" (paper Section 4.1); reduced test cases averaged 3.71
    statements (Figure 2).  This reducer greedily drops statements, trims
    multi-row INSERTs and strips decorations from the final query, checking
    after each candidate step that the bug still manifests.

    Manifestation is checked by replaying the script on a fresh session
    with the same injected-bug set; for containment-class findings the
    script is additionally replayed on a *correct* engine (empty bug set)
    to confirm the pivot row is genuinely expected — the role the paper's
    manual verification played. *)

type check = Sqlast.Ast.stmt list -> bool
(** Does the bug still manifest for this script? *)

(** Build the manifestation check for a report. *)
val manifestation_check :
  dialect:Sqlval.Dialect.t ->
  bugs:Engine.Bug.set ->
  oracle:Bug_report.oracle ->
  check

(** Greedy reduction to a locally-minimal statement list.  The final
    statement (the detecting query, for containment findings) is kept. *)
val reduce : check -> Sqlast.Ast.stmt list -> Sqlast.Ast.stmt list

(** Reduce and attach the result to the report. *)
val reduce_report : Bug_report.t -> bugs:Engine.Bug.set -> Bug_report.t
