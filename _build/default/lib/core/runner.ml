open Sqlval
module A = Sqlast.Ast

type config = {
  dialect : Dialect.t;
  bugs : Engine.Bug.set;
  seed : int;
  table_count : int;
  max_rows : int;
  extra_statements : int;
  pivots_per_db : int;
  queries_per_pivot : int;
  max_depth : int;
  check_expressions : bool;
  verify_ground_truth : bool;
  rectify : bool;
  coverage : Engine.Coverage.t option;
  check_non_containment : bool;
}

let default_config ?(seed = 1) ?(bugs = Engine.Bug.empty_set) dialect =
  {
    dialect;
    bugs;
    seed;
    table_count = 2;
    max_rows = 6;
    extra_statements = 8;
    pivots_per_db = 4;
    queries_per_pivot = 6;
    max_depth = 4;
    check_expressions = true;
    verify_ground_truth = true;
    rectify = true;
    coverage = None;
    check_non_containment = true;
  }

type stats = {
  mutable databases : int;
  mutable pivots : int;
  mutable queries : int;
  mutable statements : int;
  mutable interp_failures : int;
  mutable false_positives : int;
  mutable reports : Bug_report.t list;
  mutable truth_values : (Tvl.t * int) list;
  mutable negative_checks : int;
}

let empty_stats () =
  {
    databases = 0;
    pivots = 0;
    queries = 0;
    statements = 0;
    interp_failures = 0;
    false_positives = 0;
    reports = [];
    truth_values = [ (Tvl.True, 0); (Tvl.False, 0); (Tvl.Unknown, 0) ];
    negative_checks = 0;
  }

let bump_truth stats t =
  stats.truth_values <-
    List.map
      (fun (t', n) -> if Tvl.equal t t' then (t', n + 1) else (t', n))
      stats.truth_values

(* replay a script on a correct engine and report whether the final SELECT
   returns at least one row without error *)
let correct_engine_fetches dialect stmts =
  let session = Engine.Session.create ~bugs:Engine.Bug.empty_set dialect in
  let n = List.length stmts in
  let fetched = ref false in
  (try
     List.iteri
       (fun i stmt ->
         match Engine.Session.execute session stmt with
         | Ok (Engine.Session.Rows rs) ->
             if i = n - 1 then
               fetched := rs.Engine.Executor.rs_rows <> []
         | Ok _ | Error _ -> ())
       stmts
   with Engine.Errors.Crash _ -> ());
  !fetched

(* inverse ground truth for the non-containment variant: on a correct
   engine the final SELECT must return no row *)
let correct_engine_misses dialect stmts =
  let session = Engine.Session.create ~bugs:Engine.Bug.empty_set dialect in
  let n = List.length stmts in
  let empty = ref false in
  (try
     List.iteri
       (fun i stmt ->
         match Engine.Session.execute session stmt with
         | Ok (Engine.Session.Rows rs) ->
             if i = n - 1 then empty := rs.Engine.Executor.rs_rows = []
         | Ok _ | Error _ -> ())
       stmts
   with Engine.Errors.Crash _ -> ());
  !empty

let run_database_round config stats : Bug_report.t option =
  let db_seed = config.seed + (stats.databases * 7919) in
  stats.databases <- stats.databases + 1;
  let rng = Rng.make ~seed:db_seed in
  let session =
    Engine.Session.create ~seed:db_seed ~bugs:config.bugs
      ?coverage:config.coverage config.dialect
  in
  let log = ref [] in
  let finding = ref None in
  let report oracle message =
    let r =
      {
        Bug_report.dialect = config.dialect;
        oracle;
        message;
        statements = List.rev !log;
        reduced = None;
        seed = db_seed;
      }
    in
    stats.reports <- r :: stats.reports;
    if !finding = None then finding := Some r;
    Some r
  in
  (* execute one statement under the error and crash oracles; returns a
     report if one fired *)
  let exec stmt : Bug_report.t option =
    log := stmt :: !log;
    stats.statements <- stats.statements + 1;
    match Engine.Session.execute session stmt with
    | Ok _ -> None
    | Error e ->
        if Expected_errors.is_expected config.dialect stmt e then None
        else report Bug_report.Error_oracle (Engine.Errors.show e)
    | exception Engine.Errors.Crash msg -> report Bug_report.Crash msg
  in
  let rec exec_all = function
    | [] -> None
    | stmt :: rest -> (
        match exec stmt with Some r -> Some r | None -> exec_all rest)
  in
  let gen_cfg =
    {
      Gen_db.rng;
      dialect = config.dialect;
      table_count = config.table_count;
      max_columns = 3;
      min_rows = 1;
      max_rows = config.max_rows;
      extra_statements = config.extra_statements;
    }
  in
  (* ---- step 1: random database ---- *)
  let generation () =
    match exec_all (Gen_db.initial_statements gen_cfg) with
    | Some r -> Some r
    | None -> (
        (* initial data *)
        let fills =
          Schema_info.tables_of_session session
          |> List.concat_map (fun (ti : Schema_info.table_info) ->
                 List.init
                   (Rng.int_in rng 1 (max 1 (config.max_rows / 2)))
                   (fun _ ->
                     Gen_db.insert_stmt
                       ~existing_rows:
                         (Schema_info.rows_of_table session
                            ti.Schema_info.ti_name)
                       gen_cfg ti))
        in
        match exec_all fills with
        | Some r -> Some r
        | None ->
            let rec extra n =
              if n <= 0 then None
              else
                match exec_all (Gen_db.random_statements gen_cfg session) with
                | Some r -> Some r
                | None -> extra (n - 1)
            in
            let r = extra config.extra_statements in
            (match r with
            | Some _ -> r
            | None -> exec_all (Gen_db.fill_statements gen_cfg session)))
  in
  match generation () with
  | Some r -> Some r
  | None -> (
      (* ---- steps 2-7 ---- *)
      let pivot_rounds () =
        let pivot_sources () =
          let tables =
            Schema_info.tables_of_session session
            |> List.filter_map (fun (ti : Schema_info.table_info) ->
                   match
                     Schema_info.rows_of_table session ti.Schema_info.ti_name
                   with
                   | [] -> None
                   | rows ->
                       (* the scan count (incl. inherited rows) is what the
                          single-row aggregate extension keys on *)
                       Some
                         ( {
                             ti with
                             Schema_info.ti_row_count = List.length rows;
                           },
                           rows ))
          in
          (* views join the candidate pool occasionally (paper Sec. 4.2) *)
          let views =
            Schema_info.view_pivot_sources session
            |> List.filter (fun (_, rows) -> rows <> [])
          in
          if views <> [] && Rng.chance rng 0.25 then tables @ views else tables
        in
        let rec pivots k =
          if k <= 0 then None
          else
            match pivot_sources () with
            | [] -> None
            | sources -> (
                stats.pivots <- stats.pivots + 1;
                (* step 2: one random row per chosen table/view *)
                let chosen =
                  let k =
                    if List.length sources >= 2 && Rng.bool rng then 2 else 1
                  in
                  Rng.sample rng k sources
                in
                let pivot =
                  List.map
                    (fun ((ti : Schema_info.table_info), rows) ->
                      (ti, Rng.pick rng rows))
                    chosen
                in
                let csl =
                  Engine.Options.case_sensitive_like
                    (Engine.Session.options session)
                in
                let rec queries q =
                  if q <= 0 then None
                  else
                    (* Section 7 extension: occasionally rectify to FALSE and
                       require the pivot row to be absent.  Restricted to
                       single-table pivots: with joins, a LEFT JOIN's
                       NULL-extended rows could coincide with the expected
                       tuple. *)
                    let negative =
                      config.check_non_containment
                      && List.length pivot = 1
                      && Rng.chance rng 0.2
                    in
                    let target = if negative then Tvl.False else Tvl.True in
                    (* steps 3-5 with retries on oracle-uncomputable exprs *)
                    let rec attempt tries =
                      if tries <= 0 then None
                      else
                        match
                          Gen_query.synthesize ~rectify:config.rectify ~target
                            ~rng ~dialect:config.dialect ~pivot
                            ~case_sensitive_like:csl
                            ~max_depth:config.max_depth
                              (* expression targets are unsound for the
                                 negative variant: a different row may
                                 project to the same value *)
                            ~check_expressions:
                              (config.check_expressions && not negative)
                            ()
                        with
                        | Ok t ->
                            List.iter (bump_truth stats) t.Gen_query.raw_truths;
                            Some t
                        | Error _ ->
                            stats.interp_failures <- stats.interp_failures + 1;
                            attempt (tries - 1)
                    in
                    match attempt 5 with
                    | None -> queries (q - 1)
                    | Some t -> (
                        stats.queries <- stats.queries + 1;
                        if negative then
                          stats.negative_checks <- stats.negative_checks + 1;
                        let stmt = Gen_query.containment_stmt t in
                        log := stmt :: !log;
                        stats.statements <- stats.statements + 1;
                        match Engine.Session.execute session stmt with
                        | Ok (Engine.Session.Rows rs) ->
                            let empty = rs.Engine.Executor.rs_rows = [] in
                            let violation =
                              if negative then not empty else empty
                            in
                            if violation then begin
                              let confirmed =
                                (not config.verify_ground_truth)
                                ||
                                if negative then
                                  correct_engine_misses config.dialect
                                    (List.rev !log)
                                else
                                  correct_engine_fetches config.dialect
                                    (List.rev !log)
                              in
                              if confirmed then
                                report
                                  (if negative then Bug_report.Non_containment
                                   else Bug_report.Containment)
                                  (if negative then
                                     "pivot row unexpectedly contained in \
                                      result set"
                                   else "pivot row not contained in result set")
                              else begin
                                stats.false_positives <-
                                  stats.false_positives + 1;
                                (* drop the offending query from the log *)
                                log := List.tl !log;
                                queries (q - 1)
                              end
                            end
                            else begin
                              (* check passed: drop it from the log to keep
                                 reproduction scripts small *)
                              log := List.tl !log;
                              queries (q - 1)
                            end
                        | Ok _ ->
                            log := List.tl !log;
                            queries (q - 1)
                        | Error e ->
                            if
                              Expected_errors.is_expected config.dialect stmt e
                            then begin
                              log := List.tl !log;
                              queries (q - 1)
                            end
                            else
                              report Bug_report.Error_oracle
                                (Engine.Errors.show e)
                        | exception Engine.Errors.Crash msg ->
                            report Bug_report.Crash msg)
                in
                match queries config.queries_per_pivot with
                | Some r -> Some r
                | None -> pivots (k - 1))
        in
        pivots config.pivots_per_db
      in
      match pivot_rounds () with Some r -> Some r | None -> None)

let run ?(stop_on_first = false) ~max_queries config =
  let stats = empty_stats () in
  (* databases are also capped so rounds that never reach the query stage
     (e.g. generation keeps erroring) terminate *)
  let max_databases = max 50 max_queries in
  let rec go () =
    if stats.queries >= max_queries || stats.databases >= max_databases then
      stats
    else
      match run_database_round config stats with
      | Some _ when stop_on_first -> stats
      | _ -> go ()
  in
  go ()

let hunt config ~max_queries =
  let stats = run ~stop_on_first:true ~max_queries config in
  match List.rev stats.reports with r :: _ -> Some r | [] -> None

(* ------------------------------------------------------------------ *)
(* Parallel hunting (paper Section 3.4: one worker per database)       *)

let merge_stats dst src =
  dst.databases <- dst.databases + src.databases;
  dst.pivots <- dst.pivots + src.pivots;
  dst.queries <- dst.queries + src.queries;
  dst.statements <- dst.statements + src.statements;
  dst.interp_failures <- dst.interp_failures + src.interp_failures;
  dst.false_positives <- dst.false_positives + src.false_positives;
  dst.reports <- src.reports @ dst.reports;
  dst.negative_checks <- dst.negative_checks + src.negative_checks;
  dst.truth_values <-
    List.map
      (fun (t, n) ->
        let m =
          match List.assoc_opt t src.truth_values with Some m -> m | None -> 0
        in
        (t, n + m))
      dst.truth_values

let run_parallel ?(stop_on_first = false) ~workers ~max_queries config =
  let workers = max 1 workers in
  let per_worker = max 1 (max_queries / workers) in
  let domains =
    List.init workers (fun i ->
        Domain.spawn (fun () ->
            (* each worker gets its own seed stream and databases, like the
               paper's thread-per-database parallelization *)
            let config = { config with seed = config.seed + (i * 104729) } in
            run ~stop_on_first ~max_queries:per_worker config))
  in
  let total = empty_stats () in
  List.iter (fun d -> merge_stats total (Domain.join d)) domains;
  total
