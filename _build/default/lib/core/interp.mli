(** The PQS oracle interpreter (paper Section 3.2, Algorithm 2).

    Evaluates a randomly generated expression against the pivot row,
    substituting column references by the pivot's values.  This is the
    ground truth the containment oracle relies on: it implements the
    *correct* dialect semantics, carries no bug injections, and shares no
    evaluation code with {!Engine.Eval} (only the leaf value primitives of
    [sqlval]).  A property test asserts agreement with the engine when the
    engine's bug set is empty.

    As the paper notes, the interpreter is deliberately naive — it operates
    on single literals, so neither query planning nor performance matter. *)

open Sqlval

type binding = {
  b_value : Value.t;
  b_type : Datatype.t;
  b_collation : Collation.t;
}

type env = {
  dialect : Dialect.t;
  case_sensitive_like : bool;
  lookup : table:string option -> column:string -> (binding, string) result;
}

val const_env : ?case_sensitive_like:bool -> Dialect.t -> env

(** Environment over one pivot row per table: unqualified columns resolve
    across all tables (ambiguity is an error, as in SQL). *)
val env_of_pivot :
  ?case_sensitive_like:bool ->
  Dialect.t ->
  (Schema_info.table_info * Value.t array) list ->
  env

val eval : env -> Sqlast.Ast.expr -> (Value.t, string) result
val eval_tvl : env -> Sqlast.Ast.expr -> (Tvl.t, string) result
