open Sqlval
module A = Sqlast.Ast

let ( let* ) = Result.bind

let rectify env (e : A.expr) =
  let* t = Interp.eval_tvl env e in
  let rectified =
    match t with
    | Tvl.True -> e
    | Tvl.False -> A.Unary (A.Not, e)
    | Tvl.Unknown -> A.Is { negated = false; arg = e; rhs = A.Is_null }
  in
  (* the oracle double-checks its own output: the rectified expression must
     evaluate to TRUE *)
  let* check = Interp.eval_tvl env rectified in
  if Tvl.equal check Tvl.True then Ok (rectified, t)
  else Error "rectification postcondition failed"

let rectify_to_false env (e : A.expr) =
  let* t = Interp.eval_tvl env e in
  let rectified =
    match t with
    | Tvl.False -> e
    | Tvl.True -> A.Unary (A.Not, e)
    | Tvl.Unknown -> A.Is { negated = true; arg = e; rhs = A.Is_null }
  in
  let* check = Interp.eval_tvl env rectified in
  if Tvl.equal check Tvl.False then Ok (rectified, t)
  else Error "rectification postcondition failed"
