open Sqlval

type column_info = {
  ci_name : string;
  ci_type : Datatype.t;
  ci_collation : Collation.t;
  ci_not_null : bool;
}

type table_info = {
  ti_name : string;
  ti_columns : column_info list;
  ti_without_rowid : bool;
  ti_engine : Sqlast.Ast.table_engine option;
  ti_has_children : bool;
  ti_row_count : int;
}

let pp_table_info fmt ti =
  Format.fprintf fmt "%s(%s)%s" ti.ti_name
    (String.concat ", "
       (List.map
          (fun c -> c.ci_name ^ " " ^ Datatype.to_sql c.ci_type)
          ti.ti_columns))
    (if ti.ti_without_rowid then " WITHOUT ROWID" else "")

let tables_of_session session =
  let catalog = Engine.Session.catalog session in
  List.filter_map
    (fun name ->
      match Storage.Catalog.find_table catalog name with
      | None -> None
      | Some ts ->
          let schema = ts.Storage.Catalog.schema in
          let columns =
            Array.to_list schema.Storage.Schema.columns
            |> List.map (fun (c : Storage.Schema.column) ->
                   {
                     ci_name = c.Storage.Schema.name;
                     ci_type = c.Storage.Schema.ty;
                     ci_collation = c.Storage.Schema.collation;
                     ci_not_null = c.Storage.Schema.not_null;
                   })
          in
          Some
            {
              ti_name = schema.Storage.Schema.table_name;
              ti_columns = columns;
              ti_without_rowid = schema.Storage.Schema.without_rowid;
              ti_engine = schema.Storage.Schema.engine;
              ti_has_children =
                Storage.Catalog.children_of catalog name <> [];
              ti_row_count = Storage.Heap.row_count ts.Storage.Catalog.heap;
            })
    (Storage.Catalog.table_names catalog)

let views_of_session session =
  let catalog = Engine.Session.catalog session in
  List.filter_map
    (fun name ->
      match Storage.Catalog.find_view catalog name with
      | None -> None
      | Some v -> (
          (* derive output column names by running the view query *)
          match
            Engine.Executor.run_query
              (Engine.Session.ctx session)
              v.Storage.Catalog.view_query
          with
          | Ok rs -> Some (name, rs.Engine.Executor.rs_columns)
          | Error _ -> Some (name, [])))
    (Storage.Catalog.view_names catalog)

let contains_substring needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let index_names_of_session session =
  Storage.Catalog.index_names (Engine.Session.catalog session)
  |> List.filter (fun n ->
         (* skip the implicit constraint autoindexes *)
         not (contains_substring "_autoindex_" n))

let rows_of_table session table =
  let catalog = Engine.Session.catalog session in
  match Storage.Catalog.find_table catalog table with
  | None -> []
  | Some ts ->
      (* like SELECT *, the scan includes postgres-inherited child rows
         projected onto the parent's columns *)
      Engine.Executor.scan_table (Engine.Session.ctx session) ts
      |> List.map (fun ((r : Storage.Row.t), _) ->
             Array.copy r.Storage.Row.values)

let view_pivot_sources session =
  let catalog = Engine.Session.catalog session in
  List.filter_map
    (fun name ->
      match Storage.Catalog.find_view catalog name with
      | None -> None
      | Some v -> (
          match
            Engine.Executor.run_query
              (Engine.Session.ctx session)
              v.Storage.Catalog.view_query
          with
          | Error _ -> None
          | Ok rs ->
              let width = List.length rs.Engine.Executor.rs_columns in
              (* column names must be plain identifiers to be referenced *)
              let ok_name n =
                n <> ""
                && String.for_all
                     (fun c ->
                       (c >= 'a' && c <= 'z')
                       || (c >= 'A' && c <= 'Z')
                       || (c >= '0' && c <= '9')
                       || c = '_')
                     n
              in
              if width = 0 || not (List.for_all ok_name rs.Engine.Executor.rs_columns)
              then None
              else
                let columns =
                  List.map
                    (fun n ->
                      {
                        ci_name = n;
                        ci_type = Datatype.Any;
                        ci_collation = Collation.Binary;
                        ci_not_null = false;
                      })
                    rs.Engine.Executor.rs_columns
                in
                Some
                  ( {
                      ti_name = name;
                      ti_columns = columns;
                      ti_without_rowid = false;
                      ti_engine = None;
                      ti_has_children = false;
                      ti_row_count = List.length rs.Engine.Executor.rs_rows;
                    },
                    rs.Engine.Executor.rs_rows )))
    (Storage.Catalog.view_names catalog)
