(** Seeded random source for all PQS generators.

    Everything PQS does is a deterministic function of the seed, which makes
    detections replayable (the paper's test-case reduction relies on
    reproducibility). *)

type t

val make : seed:int -> t

(** Independent stream derived from this one (per-worker streams). *)
val split : t -> t

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1]; [n] must be positive. *)

val int_in : t -> int -> int -> int
(** inclusive range *)

val int64 : t -> int64
val bool : t -> bool
val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** uniform choice; the list must be non-empty. *)

val pick_weighted : t -> (int * 'a) list -> 'a
(** weighted choice; weights must be positive. *)

val shuffle : t -> 'a list -> 'a list

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws up to [k] elements without replacement. *)

val identifier : t -> prefix:string -> string
(** fresh-ish identifier like ["t3"]. *)

val small_string : t -> string
(** short ASCII string biased toward the paper's interesting shapes
    (empty, spaces, case variants, './', digit prefixes). *)

val interesting_int : t -> int64
(** integer biased toward boundaries (0, ±1, type range edges, large
    64-bit values like the one in paper Listing 2). *)

val interesting_real : t -> float
