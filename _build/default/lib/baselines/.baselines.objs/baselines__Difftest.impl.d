lib/baselines/difftest.ml: Array Datatype Dialect Engine Int64 List Pqs Printf Sqlast Sqlval String Value
