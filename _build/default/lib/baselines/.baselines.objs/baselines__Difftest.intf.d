lib/baselines/difftest.mli: Engine Sqlval
