lib/baselines/fuzzer.ml: Dialect Engine List Pqs Sqlast Sqlval
