lib/baselines/fuzzer.mli: Engine Pqs Sqlval
