(** SQLsmith-style random query fuzzer (paper Sections 1, 4.1, 6).

    Generates the same random databases and queries as PQS but has no
    containment oracle: it can only observe crashes and (optionally)
    corruption-class errors.  The paper's argument is that such fuzzers
    "cannot detect logic bugs" — the baseline experiment quantifies this
    against the injected-bug catalog. *)

type config = {
  dialect : Sqlval.Dialect.t;
  bugs : Engine.Bug.set;
  seed : int;
  (* which signals the fuzzer reacts to *)
  detect_errors : bool;
      (** flag corruption/internal-class errors (an AFL-style sanitizer
          would see these); ordinary errors are noise to a fuzzer *)
}

val default_config :
  ?seed:int -> ?bugs:Engine.Bug.set -> Sqlval.Dialect.t -> config

type stats = {
  mutable databases : int;
  mutable statements : int;
  mutable queries : int;
  mutable reports : Pqs.Bug_report.t list;
}

val run : max_queries:int -> config -> stats

(** First finding within the budget, if any. *)
val hunt : config -> max_queries:int -> Pqs.Bug_report.t option
