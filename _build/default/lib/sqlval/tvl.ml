type t = True | False | Unknown [@@deriving show { with_path = false }, eq]

let all = [ True; False; Unknown ]
let of_bool b = if b then True else False
let to_bool ~null = function True -> true | False -> false | Unknown -> null
let not_ = function True -> False | False -> True | Unknown -> Unknown

let and_ a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let or_ a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

let and_lazy a b = match a with False -> False | True | Unknown -> and_ a (b ())
let or_lazy a b = match a with True -> True | False | Unknown -> or_ a (b ())
