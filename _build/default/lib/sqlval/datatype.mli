(** Column data types across the three dialect personalities.

    The sqlite-like dialect allows columns with no declared type ([Any]) and
    treats declarations as affinities; the mysql-like dialect adds integer
    widths and UNSIGNED variants; the postgres-like dialect enforces types
    strictly and has a true BOOLEAN and SERIAL. *)

type int_width = Tiny | Small | Medium | Regular | Big

val pp_int_width : Format.formatter -> int_width -> unit
val equal_int_width : int_width -> int_width -> bool

type t =
  | Any  (** sqlite column declared without a type *)
  | Int of { width : int_width; unsigned : bool }
  | Real
  | Text
  | Blob
  | Bool
  | Serial  (** postgres auto-incrementing integer *)

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

(** SQL spelling in a CREATE TABLE, e.g. ["TINYINT UNSIGNED"], ["INT"]. *)
val to_sql : t -> string

val of_sql : string -> t option

(** Inclusive signed range of an integer width, e.g. Tiny = [-128, 127]. *)
val int_range : int_width -> int64 * int64

(** Inclusive unsigned maximum of an integer width as an Int64 holding the
    unsigned bit pattern (Big maps to 0xFFFF...F = -1L). *)
val unsigned_max : int_width -> int64

(** SQLite type affinity derived from the declared type (the paper's
    Listing 7 bug depends on INTEGER affinity on the column). *)
type affinity = A_integer | A_real | A_text | A_blob | A_numeric | A_none

val pp_affinity : Format.formatter -> affinity -> unit
val equal_affinity : affinity -> affinity -> bool
val affinity : t -> affinity

(** Does a value of this exact storage class need no conversion? Used by the
    strict (postgres-like) dialect for insert type checking. *)
val admits : t -> Value.t -> bool
