(** SQL pattern operators.

    The paper notes the LIKE operator was one of the costlier parts of
    SQLancer's interpreter (over 50 LOC) and the source of several SQLite
    optimization bugs (Listing 7); this module is the single shared,
    well-tested implementation. *)

(** [like ~case_sensitive ~escape pattern text]: ['%'] matches any run
    (including empty), ['_'] one character; a character preceded by [escape]
    matches itself literally. *)
val like :
  case_sensitive:bool -> ?escape:char -> pattern:string -> string -> bool

(** SQLite GLOB: ['*'] any run, ['?'] one char, [[...]] character class with
    ranges and [^] negation; always case sensitive. *)
val glob : pattern:string -> string -> bool

(** Does the pattern start with a literal (non-wildcard) prefix?  Returns the
    longest such prefix; the engine's LIKE-prefix index optimization uses it
    (paper Listing 7's bug site). *)
val literal_prefix : ?escape:char -> string -> string
