lib/sqlval/tvl.pp.mli: Format
