lib/sqlval/collation.pp.mli: Format
