lib/sqlval/like_matcher.pp.ml: Buffer Char List String
