lib/sqlval/dialect.pp.mli: Format
