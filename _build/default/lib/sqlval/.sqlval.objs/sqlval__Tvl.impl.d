lib/sqlval/tvl.pp.ml: Ppx_deriving_runtime
