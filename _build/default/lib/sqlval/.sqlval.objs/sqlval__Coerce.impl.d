lib/sqlval/coerce.pp.ml: Datatype Dialect Float Int64 Numeric Printf String Tvl Value
