lib/sqlval/like_matcher.pp.mli:
