lib/sqlval/value.pp.ml: Bool Buffer Char Collation Float Hashtbl Int64 Ppx_deriving_runtime Printf String
