lib/sqlval/datatype.pp.ml: Filename Int64 Ppx_deriving_runtime String Value
