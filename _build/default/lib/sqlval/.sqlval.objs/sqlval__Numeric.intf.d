lib/sqlval/numeric.pp.mli:
