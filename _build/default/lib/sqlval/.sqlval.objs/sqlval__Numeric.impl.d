lib/sqlval/numeric.pp.ml: Float Int64 String
