lib/sqlval/coerce.pp.mli: Datatype Dialect Tvl Value
