lib/sqlval/collation.pp.ml: Ppx_deriving_runtime String
