lib/sqlval/value.pp.mli: Collation Format
