lib/sqlval/datatype.pp.mli: Format Value
