lib/sqlval/dialect.pp.ml: Ppx_deriving_runtime String
