let fold_case case_sensitive c =
  if case_sensitive then c else Char.lowercase_ascii c

(* Backtracking matcher.  [pi]/[ti] walk pattern/text; on a '%' we remember
   the position and retry with a longer consumed run when a later mismatch
   occurs.  Complexity is fine for the short strings PQS generates. *)
let like ~case_sensitive ?escape ~pattern text =
  let plen = String.length pattern and tlen = String.length text in
  let fc = fold_case case_sensitive in
  let is_escape c = match escape with Some e -> c = e | None -> false in
  let rec matches pi ti =
    if pi >= plen then ti >= tlen
    else
      let c = pattern.[pi] in
      if is_escape c && pi + 1 < plen then
        ti < tlen && fc text.[ti] = fc pattern.[pi + 1] && matches (pi + 2) (ti + 1)
      else
        match c with
        | '%' ->
            (* collapse consecutive wildcards, then try every split point *)
            if pi + 1 < plen && pattern.[pi + 1] = '%' then matches (pi + 1) ti
            else
              let rec try_from k = k <= tlen && (matches (pi + 1) k || try_from (k + 1)) in
              try_from ti
        | '_' -> ti < tlen && matches (pi + 1) (ti + 1)
        | c -> ti < tlen && fc text.[ti] = fc c && matches (pi + 1) (ti + 1)
  in
  matches 0 0

(* Parse a GLOB character class starting after '['; returns (matcher, next
   index after ']').  An unterminated class matches nothing, like SQLite. *)
let parse_class pattern pi =
  let plen = String.length pattern in
  let negated = pi < plen && (pattern.[pi] = '^' || pattern.[pi] = '!') in
  let start = if negated then pi + 1 else pi in
  let rec collect i acc =
    if i >= plen then None
    else if pattern.[i] = ']' && i > start then Some (acc, i + 1)
    else if i + 2 < plen && pattern.[i + 1] = '-' && pattern.[i + 2] <> ']' then
      collect (i + 3) ((pattern.[i], pattern.[i + 2]) :: acc)
    else collect (i + 1) ((pattern.[i], pattern.[i]) :: acc)
  in
  match collect start [] with
  | None -> None
  | Some (ranges, next) ->
      let member c = List.exists (fun (lo, hi) -> c >= lo && c <= hi) ranges in
      let matcher c = if negated then not (member c) else member c in
      Some (matcher, next)

let glob ~pattern text =
  let plen = String.length pattern and tlen = String.length text in
  let rec matches pi ti =
    if pi >= plen then ti >= tlen
    else
      match pattern.[pi] with
      | '*' ->
          if pi + 1 < plen && pattern.[pi + 1] = '*' then matches (pi + 1) ti
          else
            let rec try_from k = k <= tlen && (matches (pi + 1) k || try_from (k + 1)) in
            try_from ti
      | '?' -> ti < tlen && matches (pi + 1) (ti + 1)
      | '[' -> (
          match parse_class pattern (pi + 1) with
          | None -> false
          | Some (member, next) -> ti < tlen && member text.[ti] && matches next (ti + 1))
      | c -> ti < tlen && text.[ti] = c && matches (pi + 1) (ti + 1)
  in
  matches 0 0

let literal_prefix ?escape pattern =
  let buf = Buffer.create (String.length pattern) in
  let is_escape c = match escape with Some e -> c = e | None -> false in
  let rec walk i =
    if i >= String.length pattern then ()
    else
      let c = pattern.[i] in
      if is_escape c && i + 1 < String.length pattern then begin
        Buffer.add_char buf pattern.[i + 1];
        walk (i + 2)
      end
      else if c = '%' || c = '_' then ()
      else begin
        Buffer.add_char buf c;
        walk (i + 1)
      end
  in
  walk 0;
  Buffer.contents buf
