(** Overflow-aware numeric primitives shared by the engine evaluator and the
    PQS oracle interpreter.

    Integer arithmetic is exact on int64 with explicit overflow reporting;
    each dialect maps overflow to its own behaviour (sqlite promotes to REAL,
    mysql and postgres raise an out-of-range error). *)

val checked_add : int64 -> int64 -> int64 option
val checked_sub : int64 -> int64 -> int64 option
val checked_mul : int64 -> int64 -> int64 option

(** [checked_neg Int64.min_int = None]. *)
val checked_neg : int64 -> int64 option

(** Signed division truncating toward zero; [None] on division by zero or
    [min_int / -1] overflow. *)
val checked_div : int64 -> int64 -> int64 option

val checked_rem : int64 -> int64 -> int64 option

(** Unsigned 64-bit comparison of two bit patterns. *)
val unsigned_compare : int64 -> int64 -> int

(** Value of the bit pattern interpreted as unsigned, as a float (exact up to
    2^53, approximate above — documented substitution for MySQL's unsigned
    BIGINT). *)
val unsigned_to_float : int64 -> float

(** Parse the longest numeric prefix of a string the way SQLite coerces TEXT
    in numeric contexts: ["12abc"] is [`Int 12L], ["1.5x"] is [`Real 1.5],
    ["abc"] is [`None]. *)
val numeric_prefix : string -> [ `Int of int64 | `Real of float | `None ]

(** Parse a full numeric string ([None] if trailing garbage). *)
val parse_exact : string -> [ `Int of int64 | `Real of float ] option

(** Does the float hold an integral value exactly representable as int64? *)
val real_is_exact_int : float -> bool
