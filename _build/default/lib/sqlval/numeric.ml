let checked_add a b =
  let r = Int64.add a b in
  (* overflow iff operands share a sign that the result does not *)
  if Int64.logand (Int64.logxor a r) (Int64.logxor b r) < 0L then None
  else Some r

let checked_sub a b =
  let r = Int64.sub a b in
  if Int64.logand (Int64.logxor a b) (Int64.logxor a r) < 0L then None
  else Some r

let checked_mul a b =
  if a = 0L || b = 0L then Some 0L
  else
    let r = Int64.mul a b in
    if a = -1L && b = Int64.min_int then None
    else if b = -1L && a = Int64.min_int then None
    else if Int64.div r b <> a then None
    else Some r

let checked_neg a = if a = Int64.min_int then None else Some (Int64.neg a)

let checked_div a b =
  if b = 0L then None
  else if a = Int64.min_int && b = -1L then None
  else Some (Int64.div a b)

let checked_rem a b =
  if b = 0L then None
  else if a = Int64.min_int && b = -1L then Some 0L
  else Some (Int64.rem a b)

let unsigned_compare = Int64.unsigned_compare

let unsigned_to_float bits =
  if bits >= 0L then Int64.to_float bits
  else Int64.to_float bits +. 18446744073709551616.0

let is_digit c = c >= '0' && c <= '9'

(* Longest numeric prefix, SQLite-style: optional sign, digits, optional
   fraction and exponent.  A prefix that is only a sign or "." is not
   numeric. *)
let scan_prefix s =
  let n = String.length s in
  let i = ref 0 in
  let has_digits = ref false in
  let is_real = ref false in
  if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
  while !i < n && is_digit s.[!i] do
    has_digits := true;
    incr i
  done;
  if !i < n && s.[!i] = '.' then begin
    let j = ref (!i + 1) in
    let frac = ref false in
    while !j < n && is_digit s.[!j] do
      frac := true;
      incr j
    done;
    if !frac || !has_digits then begin
      is_real := true;
      has_digits := !has_digits || !frac;
      i := !j
    end
  end;
  if !has_digits && !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
    let j = ref (!i + 1) in
    if !j < n && (s.[!j] = '+' || s.[!j] = '-') then incr j;
    let exp_digits = ref false in
    while !j < n && is_digit s.[!j] do
      exp_digits := true;
      incr j
    done;
    if !exp_digits then begin
      is_real := true;
      i := !j
    end
  end;
  if !has_digits then Some (String.sub s 0 !i, !is_real) else None

let numeric_prefix s =
  match scan_prefix (String.trim s) with
  | None -> `None
  | Some (prefix, is_real) -> (
      if is_real then
        match float_of_string_opt prefix with
        | Some f -> `Real f
        | None -> `None
      else
        match Int64.of_string_opt prefix with
        | Some i -> `Int i
        | None -> (
            (* integer literal too large for int64: SQLite falls back to real *)
            match float_of_string_opt prefix with
            | Some f -> `Real f
            | None -> `None))

let parse_exact s =
  let t = String.trim s in
  match scan_prefix t with
  | Some (prefix, is_real) when String.length prefix = String.length t -> (
      if is_real then
        match float_of_string_opt prefix with
        | Some f -> Some (`Real f)
        | None -> None
      else
        match Int64.of_string_opt prefix with
        | Some i -> Some (`Int i)
        | None -> (
            match float_of_string_opt prefix with
            | Some f -> Some (`Real f)
            | None -> None))
  | _ -> None

let real_is_exact_int f =
  Float.is_integer f && f >= -9.007199254740992e15 && f <= 9.007199254740992e15
