type t = Binary | Nocase | Rtrim [@@deriving show { with_path = false }, eq]

let all = [ Binary; Nocase; Rtrim ]

let to_keyword = function
  | Binary -> "BINARY"
  | Nocase -> "NOCASE"
  | Rtrim -> "RTRIM"

let of_keyword s =
  match String.uppercase_ascii s with
  | "BINARY" -> Some Binary
  | "NOCASE" -> Some Nocase
  | "RTRIM" -> Some Rtrim
  | _ -> None

let lower_ascii = String.lowercase_ascii

let rtrim s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = ' ' do
    decr n
  done;
  String.sub s 0 !n

let key c s =
  match c with Binary -> s | Nocase -> lower_ascii s | Rtrim -> rtrim s

let compare c a b = String.compare (key c a) (key c b)
let equal_under c a b = compare c a b = 0
