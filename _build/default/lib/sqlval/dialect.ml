type t = Sqlite_like | Mysql_like | Postgres_like
[@@deriving show { with_path = false }, eq]

let all = [ Sqlite_like; Mysql_like; Postgres_like ]

let name = function
  | Sqlite_like -> "sqlite"
  | Mysql_like -> "mysql"
  | Postgres_like -> "postgres"

let of_name s =
  match String.lowercase_ascii s with
  | "sqlite" -> Some Sqlite_like
  | "mysql" -> Some Mysql_like
  | "postgres" | "postgresql" -> Some Postgres_like
  | _ -> None

let display_name = function
  | Sqlite_like -> "SQLite"
  | Mysql_like -> "MySQL"
  | Postgres_like -> "PostgreSQL"

let implicit_bool_conversion = function
  | Sqlite_like | Mysql_like -> true
  | Postgres_like -> false
