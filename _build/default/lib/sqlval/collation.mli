(** Text collating sequences.

    The paper's SQLite findings exercised non-default collations heavily
    (NOCASE and RTRIM appear in Listings 4, 5 and 7); these are the three
    built-in SQLite collations. *)

type t = Binary | Nocase | Rtrim

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val all : t list

(** SQL keyword spelling, e.g. ["NOCASE"]. *)
val to_keyword : t -> string

val of_keyword : string -> t option

(** [compare c a b] compares [a] and [b] under collation [c]:
    - [Binary] is byte-wise comparison;
    - [Nocase] folds ASCII letters to lower case first;
    - [Rtrim] ignores trailing spaces on both operands. *)
val compare : t -> string -> string -> int

val equal_under : t -> string -> string -> bool

(** Canonical key of a string under a collation: two strings compare equal
    under [c] iff their keys are byte-equal.  Used for hashing / DISTINCT. *)
val key : t -> string -> string
