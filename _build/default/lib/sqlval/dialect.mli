(** The three dialect personalities of the engine under test.

    These mirror the three DBMS the paper evaluated.  The variant lives at
    the bottom of the library stack because value coercion, expression
    semantics and SQL rendering all depend on it. *)

type t = Sqlite_like | Mysql_like | Postgres_like

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val all : t list

(** Short lowercase name used by CLIs and reports: "sqlite", "mysql",
    "postgres". *)
val name : t -> string

val of_name : string -> t option

(** Display name used in tables, mirroring the paper: "SQLite", "MySQL",
    "PostgreSQL". *)
val display_name : t -> string

(** Does the dialect convert arbitrary values to booleans implicitly in a
    boolean context?  True for sqlite-like and mysql-like; the
    postgres-like dialect requires genuine booleans (paper Section 3.2). *)
val implicit_bool_conversion : t -> bool
