(** SQL three-valued logic.

    Expressions evaluated in a boolean context yield TRUE, FALSE or UNKNOWN
    (NULL); PQS's rectification step (paper Algorithm 3) branches on exactly
    these three outcomes. *)

type t = True | False | Unknown

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val of_bool : bool -> t

(** [to_bool ~null:b t] collapses UNKNOWN to [b], as a WHERE clause does with
    [b = false]. *)
val to_bool : null:bool -> t -> bool

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t

(** Kleene logic over a lazily evaluated right operand (SQL engines may or
    may not short-circuit; semantics are identical for pure operands). *)
val and_lazy : t -> (unit -> t) -> t

val or_lazy : t -> (unit -> t) -> t
val all : t list
