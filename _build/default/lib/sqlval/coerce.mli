(** Implicit and explicit value conversions, per dialect.

    The paper attributes the higher bug counts in SQLite and MySQL largely to
    their implicit conversions (Section 5); this module implements the
    *correct* conversion semantics for each personality.  The engine's
    evaluator goes through these functions (and injects its faults around
    them), and the PQS oracle interpreter uses them as ground truth. *)

type error = string
(** Conversion errors carry the engine-style message text
    (e.g. ["argument of WHERE must be type boolean"]). *)

(** Truth value of a value in a boolean context.  The sqlite-like and
    mysql-like dialects coerce any value (TEXT via its numeric prefix); the
    postgres-like dialect only accepts BOOLEAN and NULL. *)
val to_tvl : Dialect.t -> Value.t -> (Tvl.t, error) result

(** Coercion of an operand into a numeric context (arithmetic): NULL stays
    NULL, text/blob parse their numeric prefix (0 when none), booleans map
    to 0/1.  Never fails; postgres-like never calls it on non-numerics. *)
val to_numeric : Value.t -> Value.t

(** Canonical TEXT rendering used by CAST-to-text and text contexts. *)
val to_text : Dialect.t -> Value.t -> string

(** SQLite column affinity applied on INSERT (and comparison rewriting). *)
val apply_affinity : Datatype.affinity -> Value.t -> Value.t

(** Conversion applied when storing a value into a column, per dialect:
    sqlite applies affinity and always succeeds; mysql converts and clamps
    out-of-range integers (non-strict mode); postgres type-checks strictly,
    allowing only integer-to-real widening. *)
val store : Dialect.t -> Datatype.t -> Value.t -> (Value.t, error) result

(** SQLite's CAST-to-INTEGER semantics (truncation toward zero, numeric
    prefix of text, clamping at the int64 bounds); also used by the bitwise
    operators of the non-strict dialects. *)
val sqlite_cast_int : Value.t -> Value.t

(** Explicit CAST.  Notable cases: mysql's [CAST(x AS UNSIGNED)] of a
    negative integer yields the (large) unsigned value, represented as an
    exact-enough REAL above [Int64.max_int] (documented substitution);
    postgres rejects malformed text with "invalid input syntax". *)
val cast : Dialect.t -> Datatype.t -> Value.t -> (Value.t, error) result
