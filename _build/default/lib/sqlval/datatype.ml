type int_width = Tiny | Small | Medium | Regular | Big
[@@deriving show { with_path = false }, eq]

type t =
  | Any
  | Int of { width : int_width; unsigned : bool }
  | Real
  | Text
  | Blob
  | Bool
  | Serial
[@@deriving show { with_path = false }, eq]

let width_to_sql = function
  | Tiny -> "TINYINT"
  | Small -> "SMALLINT"
  | Medium -> "MEDIUMINT"
  | Regular -> "INT"
  | Big -> "BIGINT"

let to_sql = function
  | Any -> ""
  | Int { width; unsigned } ->
      if unsigned then width_to_sql width ^ " UNSIGNED" else width_to_sql width
  | Real -> "REAL"
  | Text -> "TEXT"
  | Blob -> "BLOB"
  | Bool -> "BOOLEAN"
  | Serial -> "SERIAL"

let of_sql s =
  let s = String.uppercase_ascii (String.trim s) in
  let unsigned = Filename.check_suffix s " UNSIGNED" in
  let base = if unsigned then Filename.chop_suffix s " UNSIGNED" else s in
  let int width = Some (Int { width; unsigned }) in
  match base with
  | "" -> Some Any
  | "TINYINT" -> int Tiny
  | "SMALLINT" -> int Small
  | "MEDIUMINT" -> int Medium
  | "INT" | "INTEGER" -> int Regular
  | "BIGINT" -> int Big
  | "REAL" | "DOUBLE" | "FLOAT" -> if unsigned then None else Some Real
  | "TEXT" | "VARCHAR" -> if unsigned then None else Some Text
  | "BLOB" -> if unsigned then None else Some Blob
  | "BOOLEAN" | "BOOL" -> if unsigned then None else Some Bool
  | "SERIAL" -> if unsigned then None else Some Serial
  | _ -> None

let int_range = function
  | Tiny -> (-128L, 127L)
  | Small -> (-32768L, 32767L)
  | Medium -> (-8388608L, 8388607L)
  | Regular -> (-2147483648L, 2147483647L)
  | Big -> (Int64.min_int, Int64.max_int)

let unsigned_max = function
  | Tiny -> 255L
  | Small -> 65535L
  | Medium -> 16777215L
  | Regular -> 4294967295L
  | Big -> -1L (* 0xFFFFFFFFFFFFFFFF as an unsigned bit pattern *)

type affinity = A_integer | A_real | A_text | A_blob | A_numeric | A_none
[@@deriving show { with_path = false }, eq]

let affinity = function
  | Any -> A_none
  | Int _ | Serial -> A_integer
  | Real -> A_real
  | Text -> A_text
  | Blob -> A_none
  | Bool -> A_numeric

let admits ty v =
  match (ty, v) with
  | _, Value.Null -> true
  | Any, _ -> true
  | (Int _ | Serial), Value.Int _ -> true
  | Real, Value.(Real _ | Int _) -> true
  | Text, Value.Text _ -> true
  | Blob, Value.Blob _ -> true
  | Bool, Value.Bool _ -> true
  | (Int _ | Serial | Real | Text | Blob | Bool), _ -> false
