(** SQL runtime values.

    A value is one of the SQL storage classes. [Bool] exists as a distinct
    storage class only in the postgres-like dialect; the sqlite-like and
    mysql-like dialects encode booleans as integers (see {!Coerce}). *)

type t =
  | Null
  | Int of int64
  | Real of float
  | Text of string
  | Blob of string
  | Bool of bool

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

(** Storage class of a value, used for cross-class ordering and affinity. *)
type storage_class = C_null | C_bool | C_int | C_real | C_text | C_blob

val storage_class : t -> storage_class
val class_rank : storage_class -> int

val is_null : t -> bool
val is_numeric : t -> bool

(** [compare_total ?collation a b] is a total order over values following the
    SQLite cross-class ordering (NULL < BOOL < numeric < TEXT < BLOB), with
    integers and reals compared numerically across classes.  Text is compared
    under [collation] (default binary).  This order is what indexes use. *)
val compare_total : ?collation:Collation.t -> t -> t -> int

(** Numeric comparison of an integer and a real without losing precision for
    integers beyond 2^53. *)
val compare_int_real : int64 -> float -> int

(** Render as a SQL literal (single quotes doubled, blobs as X'..'). *)
val to_sql_literal : t -> string

(** Canonical text rendering of a float, shared by the SQL printer and the
    TEXT coercions so that printing and re-parsing round-trips. *)
val float_to_text : float -> string

(** Human-readable rendering used by result-set printers ([NULL] unquoted). *)
val to_display : t -> string

(** Hash compatible with {!equal}. *)
val hash : t -> int
