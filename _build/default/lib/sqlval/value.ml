type t =
  | Null
  | Int of int64
  | Real of float
  | Text of string
  | Blob of string
  | Bool of bool
[@@deriving show { with_path = false }, eq]

type storage_class = C_null | C_bool | C_int | C_real | C_text | C_blob

let storage_class = function
  | Null -> C_null
  | Bool _ -> C_bool
  | Int _ -> C_int
  | Real _ -> C_real
  | Text _ -> C_text
  | Blob _ -> C_blob

let class_rank = function
  | C_null -> 0
  | C_bool -> 1
  | C_int -> 2
  | C_real -> 2 (* integers and reals compare numerically across classes *)
  | C_text -> 3
  | C_blob -> 4

let is_null = function Null -> true | _ -> false

let is_numeric = function
  | Int _ | Real _ -> true
  | Null | Bool _ | Text _ | Blob _ -> false

(* Comparing an int64 with a float must not round the integer: beyond 2^53 the
   conversion loses precision, which is exactly the bug class of paper
   Listing 2.  We compare exactly by cases on the float's magnitude. *)
let compare_int_real i r =
  if Float.is_nan r then 1 (* NaN sorts below every integer, like SQLite *)
  else if r = Float.infinity then -1
  else if r = Float.neg_infinity then 1
  else if r >= 9.223372036854775808e18 then -1
  else if r < -9.223372036854775808e18 then 1
  else
    let ri = Int64.of_float r in
    let c = Int64.compare i ri in
    if c <> 0 then c
    else
      (* same integer part: fractional part breaks the tie *)
      let frac = r -. Int64.to_float ri in
      if frac > 0.0 then -1 else if frac < 0.0 then 1 else 0

let compare_numeric a b =
  match (a, b) with
  | Int x, Int y -> Int64.compare x y
  | Real x, Real y -> Float.compare x y
  | Int x, Real y -> compare_int_real x y
  | Real x, Int y -> -compare_int_real y x
  | _ -> invalid_arg "Value.compare_numeric: non-numeric argument"

let compare_total ?(collation = Collation.Binary) a b =
  let ca = class_rank (storage_class a) and cb = class_rank (storage_class b) in
  if ca <> cb then compare ca cb
  else
    match (a, b) with
    | Null, Null -> 0
    | Bool x, Bool y -> Bool.compare x y
    | (Int _ | Real _), (Int _ | Real _) -> compare_numeric a b
    | Text x, Text y -> Collation.compare collation x y
    | Blob x, Blob y -> String.compare x y
    | _ -> assert false

let hex_of_string s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02X" (Char.code c))) s;
  Buffer.contents buf

let escape_single_quotes s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_to_sql f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_nan f then "(0.0/0.0)"
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else Printf.sprintf "%.17g" f

let float_to_text = float_to_sql

let to_sql_literal = function
  | Null -> "NULL"
  | Int i -> Int64.to_string i
  | Real r -> float_to_sql r
  | Text s -> "'" ^ escape_single_quotes s ^ "'"
  | Blob s -> "X'" ^ hex_of_string s ^ "'"
  | Bool true -> "TRUE"
  | Bool false -> "FALSE"

let to_display = function
  | Null -> "NULL"
  | Int i -> Int64.to_string i
  | Real r -> float_to_sql r
  | Text s -> s
  | Blob s -> "x'" ^ hex_of_string s ^ "'"
  | Bool b -> if b then "t" else "f"

let hash = function
  | Null -> 17
  | Int i -> Int64.to_int i lxor 0x5a5a
  | Real r -> Hashtbl.hash r
  | Text s -> Hashtbl.hash s
  | Blob s -> Hashtbl.hash s lxor 0x33
  | Bool b -> if b then 3 else 5
