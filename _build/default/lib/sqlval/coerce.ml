type error = string

let to_tvl dialect (v : Value.t) : (Tvl.t, error) result =
  match dialect with
  | Dialect.Postgres_like -> (
      match v with
      | Value.Null -> Ok Tvl.Unknown
      | Value.Bool b -> Ok (Tvl.of_bool b)
      | Value.Int _ | Value.Real _ | Value.Text _ | Value.Blob _ ->
          Error "argument of WHERE must be type boolean")
  | Dialect.Sqlite_like | Dialect.Mysql_like -> (
      let of_real r = Ok (Tvl.of_bool (r <> 0.0)) in
      match v with
      | Value.Null -> Ok Tvl.Unknown
      | Value.Bool b -> Ok (Tvl.of_bool b)
      | Value.Int i -> Ok (Tvl.of_bool (i <> 0L))
      | Value.Real r -> of_real r
      | Value.Text s | Value.Blob s -> (
          match Numeric.numeric_prefix s with
          | `Int i -> Ok (Tvl.of_bool (i <> 0L))
          | `Real r -> of_real r
          | `None -> Ok Tvl.False))

let to_numeric (v : Value.t) : Value.t =
  match v with
  | Value.Null -> Value.Null
  | Value.Int _ | Value.Real _ -> v
  | Value.Bool b -> Value.Int (if b then 1L else 0L)
  | Value.Text s | Value.Blob s -> (
      match Numeric.numeric_prefix s with
      | `Int i -> Value.Int i
      | `Real r -> Value.Real r
      | `None -> Value.Int 0L)

let to_text dialect (v : Value.t) : string =
  match v with
  | Value.Null -> "" (* callers must special-case NULL; kept total *)
  | Value.Int i -> Int64.to_string i
  | Value.Real r -> Value.float_to_text r
  | Value.Text s -> s
  | Value.Blob s -> s
  | Value.Bool b -> (
      match dialect with
      | Dialect.Postgres_like -> if b then "true" else "false"
      | Dialect.Sqlite_like | Dialect.Mysql_like -> if b then "1" else "0")

let real_to_int_if_exact r =
  if Numeric.real_is_exact_int r then Value.Int (Int64.of_float r)
  else Value.Real r

let apply_affinity (aff : Datatype.affinity) (v : Value.t) : Value.t =
  match (aff, v) with
  | _, Value.Null -> Value.Null
  | (Datatype.A_integer | Datatype.A_numeric), Value.Text s -> (
      match Numeric.parse_exact s with
      | Some (`Int i) -> Value.Int i
      | Some (`Real r) -> real_to_int_if_exact r
      | None -> v)
  | (Datatype.A_integer | Datatype.A_numeric), Value.Real r ->
      real_to_int_if_exact r
  | (Datatype.A_integer | Datatype.A_numeric), Value.Bool b ->
      Value.Int (if b then 1L else 0L)
  | (Datatype.A_integer | Datatype.A_numeric), (Value.Int _ | Value.Blob _) -> v
  | Datatype.A_real, Value.Text s -> (
      match Numeric.parse_exact s with
      | Some (`Int i) -> Value.Real (Int64.to_float i)
      | Some (`Real r) -> Value.Real r
      | None -> v)
  | Datatype.A_real, Value.Int i -> Value.Real (Int64.to_float i)
  | Datatype.A_real, Value.Bool b -> Value.Real (if b then 1.0 else 0.0)
  | Datatype.A_real, (Value.Real _ | Value.Blob _) -> v
  | Datatype.A_text, (Value.Int _ | Value.Real _ | Value.Bool _) ->
      Value.Text (to_text Dialect.Sqlite_like v)
  | Datatype.A_text, (Value.Text _ | Value.Blob _) -> v
  | (Datatype.A_blob | Datatype.A_none), _ -> v

let clamp_signed width i =
  let lo, hi = Datatype.int_range width in
  if i < lo then lo else if i > hi then hi else i

let clamp_unsigned width i =
  if i < 0L then 0L
  else
    match width with
    | Datatype.Big -> i (* unsigned BIGINT clamp at Int64.max: substitution *)
    | w ->
        let hi = Datatype.unsigned_max w in
        if i > hi then hi else i

let mysql_round_to_int r =
  if Float.is_nan r then 0L
  else if r >= 9.2233720368547758e18 then Int64.max_int
  else if r <= -9.2233720368547758e18 then Int64.min_int
  else Int64.of_float (Float.round r)

let mysql_store_int ~width ~unsigned (v : Value.t) : Value.t =
  let as_int =
    match to_numeric v with
    | Value.Int i -> i
    | Value.Real r -> mysql_round_to_int r
    | Value.Null | Value.Text _ | Value.Blob _ | Value.Bool _ -> 0L
  in
  let clamped =
    if unsigned then clamp_unsigned width as_int else clamp_signed width as_int
  in
  Value.Int clamped

let mysql_store (ty : Datatype.t) (v : Value.t) : (Value.t, error) result =
  match (ty, v) with
  | _, Value.Null -> Ok Value.Null
  | Datatype.Int { width; unsigned }, _ ->
      Ok (mysql_store_int ~width ~unsigned v)
  | Datatype.Serial, _ ->
      Ok (mysql_store_int ~width:Datatype.Regular ~unsigned:false v)
  | Datatype.Bool, _ ->
      Ok (mysql_store_int ~width:Datatype.Tiny ~unsigned:false v)
  | Datatype.Real, _ -> (
      match to_numeric v with
      | Value.Int i -> Ok (Value.Real (Int64.to_float i))
      | Value.Real r -> Ok (Value.Real r)
      | _ -> Ok (Value.Real 0.0))
  | Datatype.Text, _ -> Ok (Value.Text (to_text Dialect.Mysql_like v))
  | Datatype.Blob, _ -> (
      match v with
      | Value.Blob _ -> Ok v
      | _ -> Ok (Value.Blob (to_text Dialect.Mysql_like v)))
  | Datatype.Any, _ -> Ok v

let pg_type_name (v : Value.t) =
  match v with
  | Value.Null -> "unknown"
  | Value.Int _ -> "integer"
  | Value.Real _ -> "double precision"
  | Value.Text _ -> "text"
  | Value.Blob _ -> "bytea"
  | Value.Bool _ -> "boolean"

let pg_store (ty : Datatype.t) (v : Value.t) : (Value.t, error) result =
  let mismatch () =
    Error
      (Printf.sprintf "column is of type %s but expression is of type %s"
         (Datatype.to_sql ty) (pg_type_name v))
  in
  match (ty, v) with
  | _, Value.Null -> Ok Value.Null
  | Datatype.Int { width; _ }, Value.Int i ->
      let lo, hi = Datatype.int_range width in
      if i < lo || i > hi then Error "integer out of range" else Ok v
  | Datatype.Serial, Value.Int i ->
      let lo, hi = Datatype.int_range Datatype.Regular in
      if i < lo || i > hi then Error "integer out of range" else Ok v
  | Datatype.Real, Value.Int i -> Ok (Value.Real (Int64.to_float i))
  | Datatype.Real, Value.Real _ -> Ok v
  | Datatype.Text, Value.Text _ -> Ok v
  | Datatype.Blob, Value.Blob _ -> Ok v
  | Datatype.Bool, Value.Bool _ -> Ok v
  | Datatype.Any, _ -> Ok v
  | (Datatype.Int _ | Datatype.Serial | Datatype.Real | Datatype.Text
    | Datatype.Blob | Datatype.Bool), _ ->
      mismatch ()

let store dialect ty v =
  match dialect with
  | Dialect.Sqlite_like -> Ok (apply_affinity (Datatype.affinity ty) v)
  | Dialect.Mysql_like -> mysql_store ty v
  | Dialect.Postgres_like -> pg_store ty v

let sqlite_cast_int (v : Value.t) =
  match v with
  | Value.Null -> Value.Null
  | Value.Int _ -> v
  | Value.Real r ->
      if Float.is_nan r then Value.Int 0L
      else if r >= 9.2233720368547758e18 then Value.Int Int64.max_int
      else if r <= -9.2233720368547758e18 then Value.Int Int64.min_int
      else Value.Int (Int64.of_float (Float.trunc r))
  | Value.Bool b -> Value.Int (if b then 1L else 0L)
  | Value.Text s | Value.Blob s -> (
      match Numeric.numeric_prefix s with
      | `Int i -> Value.Int i
      | `Real r ->
          if Numeric.real_is_exact_int r then Value.Int (Int64.of_float r)
          else Value.Int (Int64.of_float (Float.trunc r))
      | `None -> Value.Int 0L)

let sqlite_cast_real (v : Value.t) =
  match to_numeric v with
  | Value.Int i -> Value.Real (Int64.to_float i)
  | Value.Real r -> Value.Real r
  | Value.Null -> Value.Null
  | _ -> Value.Real 0.0

let sqlite_cast (ty : Datatype.t) (v : Value.t) : Value.t =
  match ty with
  | Datatype.Int _ | Datatype.Serial | Datatype.Bool -> sqlite_cast_int v
  | Datatype.Real -> sqlite_cast_real v
  | Datatype.Text -> (
      match v with
      | Value.Null -> Value.Null
      | _ -> Value.Text (to_text Dialect.Sqlite_like v))
  | Datatype.Blob -> (
      match v with
      | Value.Null -> Value.Null
      | Value.Blob _ -> v
      | _ -> Value.Blob (to_text Dialect.Sqlite_like v))
  | Datatype.Any -> apply_affinity Datatype.A_numeric v

let mysql_cast_unsigned (v : Value.t) : Value.t =
  match to_numeric v with
  | Value.Null -> Value.Null
  | Value.Int i ->
      if i >= 0L then Value.Int i else Value.Real (Numeric.unsigned_to_float i)
  | Value.Real r ->
      let i = mysql_round_to_int r in
      if i >= 0L then Value.Int i else Value.Real (Numeric.unsigned_to_float i)
  | _ -> Value.Int 0L

let mysql_cast (ty : Datatype.t) (v : Value.t) : (Value.t, error) result =
  match (ty, v) with
  | _, Value.Null -> Ok Value.Null
  | Datatype.Int { unsigned = true; _ }, _ -> Ok (mysql_cast_unsigned v)
  | (Datatype.Int _ | Datatype.Serial | Datatype.Bool), _ -> (
      match to_numeric v with
      | Value.Int i -> Ok (Value.Int i)
      | Value.Real r -> Ok (Value.Int (mysql_round_to_int r))
      | _ -> Ok (Value.Int 0L))
  | Datatype.Real, _ -> Ok (sqlite_cast_real v)
  | Datatype.Text, _ -> Ok (Value.Text (to_text Dialect.Mysql_like v))
  | Datatype.Blob, _ -> Ok (Value.Blob (to_text Dialect.Mysql_like v))
  | Datatype.Any, _ -> Ok v

let pg_cast (ty : Datatype.t) (v : Value.t) : (Value.t, error) result =
  let invalid what s =
    Error (Printf.sprintf "invalid input syntax for type %s: \"%s\"" what s)
  in
  match (ty, v) with
  | _, Value.Null -> Ok Value.Null
  | (Datatype.Int _ | Datatype.Serial), _ -> (
      let width =
        match ty with Datatype.Int { width; _ } -> width | _ -> Datatype.Regular
      in
      let check i =
        let lo, hi = Datatype.int_range width in
        if i < lo || i > hi then Error "integer out of range" else Ok (Value.Int i)
      in
      match v with
      | Value.Int i -> check i
      | Value.Real r -> check (mysql_round_to_int r)
      | Value.Bool b -> check (if b then 1L else 0L)
      | Value.Text s -> (
          match Numeric.parse_exact s with
          | Some (`Int i) -> check i
          | Some (`Real r) -> check (mysql_round_to_int r)
          | None -> invalid "integer" s)
      | Value.Blob _ -> Error "cannot cast type bytea to integer"
      | Value.Null -> assert false)
  | Datatype.Real, Value.Int i -> Ok (Value.Real (Int64.to_float i))
  | Datatype.Real, Value.Real _ -> Ok v
  | Datatype.Real, Value.Text s -> (
      match Numeric.parse_exact s with
      | Some (`Int i) -> Ok (Value.Real (Int64.to_float i))
      | Some (`Real r) -> Ok (Value.Real r)
      | None -> invalid "double precision" s)
  | Datatype.Real, (Value.Bool _ | Value.Blob _) ->
      Error "cannot cast to double precision"
  | Datatype.Text, _ -> Ok (Value.Text (to_text Dialect.Postgres_like v))
  | Datatype.Bool, Value.Bool _ -> Ok v
  | Datatype.Bool, Value.Int i -> Ok (Value.Bool (i <> 0L))
  | Datatype.Bool, Value.Text s -> (
      match String.lowercase_ascii (String.trim s) with
      | "t" | "true" | "yes" | "on" | "1" -> Ok (Value.Bool true)
      | "f" | "false" | "no" | "off" | "0" -> Ok (Value.Bool false)
      | _ -> invalid "boolean" s)
  | Datatype.Bool, (Value.Real _ | Value.Blob _) ->
      Error "cannot cast to boolean"
  | Datatype.Blob, Value.Blob _ -> Ok v
  | Datatype.Blob, Value.Text s -> Ok (Value.Blob s)
  | Datatype.Blob, (Value.Int _ | Value.Real _ | Value.Bool _) ->
      Error "cannot cast to bytea"
  | Datatype.Any, _ -> Ok v

let cast dialect ty v =
  match dialect with
  | Dialect.Sqlite_like -> Ok (sqlite_cast ty v)
  | Dialect.Mysql_like -> mysql_cast ty v
  | Dialect.Postgres_like -> pg_cast ty v
