(** Rendering of the AST as SQL text in each dialect's concrete syntax.

    Subexpressions are fully parenthesized so that printing followed by
    parsing round-trips without a precedence table.  Dialect-specific
    spellings: the null-safe equality prints as [IS] in sqlite and [<=>] in
    mysql and [IS NOT DISTINCT FROM] in postgres; options print as [PRAGMA]
    in sqlite and [SET] elsewhere; and so on. *)

val expr : Sqlval.Dialect.t -> Ast.expr -> string
val query : Sqlval.Dialect.t -> Ast.query -> string
val stmt : Sqlval.Dialect.t -> Ast.stmt -> string

(** Statements joined by [";\n"], each terminated, ready for a bug report
    (paper Section 4.3 counts these lines). *)
val script : Sqlval.Dialect.t -> Ast.stmt list -> string
