lib/sqlast/ast.pp.ml: Collation Datatype List Option Ppx_deriving_runtime Sqlval Value
