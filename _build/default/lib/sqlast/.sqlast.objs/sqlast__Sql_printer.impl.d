lib/sqlast/sql_printer.pp.ml: Ast Buffer Collation Datatype Dialect Int64 List Option Sqlval String Value
