lib/sqlast/sql_printer.pp.mli: Ast Sqlval
