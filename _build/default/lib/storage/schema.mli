(** Resolved (post-DDL) table schemas, as the executor sees them.

    Unlike the AST's CREATE TABLE, constraints are normalised: the primary
    key is an ordered column list, per-column UNIQUE constraints are
    recorded on the column, and every column carries its resolved collation
    and type. *)

open Sqlval

type column = {
  name : string;
  ty : Datatype.t;
  collation : Collation.t;
  not_null : bool;
  default : Sqlast.Ast.expr option;
  in_primary_key : bool;
  single_unique : bool;  (** column-level UNIQUE constraint *)
}

(** Column smart constructor with the usual defaults (untyped, binary
    collation, nullable). *)
val column :
  ?ty:Datatype.t ->
  ?collation:Collation.t ->
  ?not_null:bool ->
  ?default:Sqlast.Ast.expr ->
  ?in_primary_key:bool ->
  ?single_unique:bool ->
  string ->
  column

type table = {
  mutable table_name : string;
  mutable columns : column array;
  mutable primary_key : string list;  (** ordered; [[]] = rowid only *)
  without_rowid : bool;  (** sqlite *)
  engine : Sqlast.Ast.table_engine option;  (** mysql *)
  inherits : string option;  (** postgres *)
  mutable children : string list;
  mutable table_uniques : string list list;  (** multi-column UNIQUEs *)
  mutable checks : Sqlast.Ast.expr list;
      (** CHECK constraints, evaluated in row context; NULL passes *)
  mutable serial_next : int64;  (** next SERIAL value (postgres) *)
  mutable tainted_null_update : bool;
      (** a NULL was overwritten by UPDATE — trigger state for the injected
          'unexpected null value in index' defect (paper Listing 17) *)
  mutable broken_expr_index : bool;
      (** an expression index references a renamed column — trigger state
          for the injected malformed-schema defect (paper Listing 8) *)
}

val make_table :
  ?primary_key:string list ->
  ?without_rowid:bool ->
  ?engine:Sqlast.Ast.table_engine ->
  ?inherits:string ->
  ?table_uniques:string list list ->
  ?checks:Sqlast.Ast.expr list ->
  columns:column array ->
  string ->
  table

(** Case-insensitive column lookup; returns the index and the column. *)
val find_column : table -> string -> (int * column) option

val column_index : table -> string -> int option
val column_names : table -> string list
val width : table -> int
val has_explicit_pk : table -> bool

(** All UNIQUE column sets that must be enforced: the PK, column-level
    uniques, and table-level uniques. *)
val unique_sets : table -> string list list

(** Copy with fresh mutable arrays (transaction snapshots). *)
val copy_table : table -> table
