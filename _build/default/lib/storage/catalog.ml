(* Database catalog: tables (schema + heap), indexes, views and extended
   statistics, with case-insensitive name lookup and creation-ordered
   introspection (the analogue of sqlite_master / information_schema, which
   the paper's tool queries for state, Section 3.4).

   The [corruption] field models on-disk corruption: once set, statements
   that touch the database report the dialect's "malformed database" error —
   the strongest signal of the paper's error oracle (Listing 10). *)

type table_state = { schema : Schema.table; heap : Heap.t }

type view = { view_name : string; view_query : Sqlast.Ast.query }

type statistics = {
  stat_name : string;
  stat_table : string;
  stat_columns : string list;
}

type t = {
  mutable tables : (string * table_state) list; (* key: lowercase name *)
  mutable indexes : (string * Index.t) list;
  mutable views : (string * view) list;
  mutable stats : (string * statistics) list;
  mutable corruption : string option;
  mutable analyzed : bool; (* ANALYZE ran: planner may use statistics *)
}

let create () =
  {
    tables = [];
    indexes = [];
    views = [];
    stats = [];
    corruption = None;
    analyzed = false;
  }

let norm = String.lowercase_ascii

(* ---- tables ---- *)

let find_table t name = List.assoc_opt (norm name) t.tables
let table_exists t name = find_table t name <> None

let add_table t (schema : Schema.table) =
  let state = { schema; heap = Heap.create () } in
  t.tables <- t.tables @ [ (norm schema.Schema.table_name, state) ];
  state

let drop_table t name =
  let key = norm name in
  let existed = List.mem_assoc key t.tables in
  t.tables <- List.remove_assoc key t.tables;
  t.indexes <-
    List.filter (fun (_, ix) -> norm ix.Index.on_table <> key) t.indexes;
  existed

let table_names t = List.map (fun (_, ts) -> ts.schema.Schema.table_name) t.tables

let iter_tables f t = List.iter (fun (_, ts) -> f ts) t.tables

(* postgres table inheritance: direct children of a table *)
let children_of t name =
  List.filter_map
    (fun (_, ts) ->
      match ts.schema.Schema.inherits with
      | Some parent when norm parent = norm name ->
          Some ts.schema.Schema.table_name
      | _ -> None)
    t.tables

(* ---- indexes ---- *)

let find_index t name = List.assoc_opt (norm name) t.indexes
let index_exists t name = find_index t name <> None

let add_index t (ix : Index.t) =
  t.indexes <- t.indexes @ [ (norm ix.Index.index_name, ix) ]

let drop_index t name =
  let key = norm name in
  let existed = List.mem_assoc key t.indexes in
  t.indexes <- List.remove_assoc key t.indexes;
  existed

let indexes_on t table_name =
  List.filter_map
    (fun (_, ix) ->
      if norm ix.Index.on_table = norm table_name then Some ix else None)
    t.indexes

let index_names t = List.map (fun (_, ix) -> ix.Index.index_name) t.indexes

(* ---- views ---- *)

let find_view t name = List.assoc_opt (norm name) t.views
let view_exists t name = find_view t name <> None

let add_view t (v : view) = t.views <- t.views @ [ (norm v.view_name, v) ]

let drop_view t name =
  let key = norm name in
  let existed = List.mem_assoc key t.views in
  t.views <- List.remove_assoc key t.views;
  existed

let view_names t = List.map (fun (_, v) -> v.view_name) t.views

(* ---- extended statistics (postgres CREATE STATISTICS) ---- *)

let add_statistics t (s : statistics) =
  t.stats <- t.stats @ [ (norm s.stat_name, s) ]

let statistics_exists t name = List.mem_assoc (norm name) t.stats
let statistics_on t table = List.filter (fun (_, s) -> norm s.stat_table = norm table) t.stats |> List.map snd

(* ---- corruption ---- *)

let corrupt t msg = if t.corruption = None then t.corruption <- Some msg
let corruption t = t.corruption
let clear_corruption t = t.corruption <- None

(* ---- snapshots (transactions) ---- *)

type snapshot = {
  snap_tables : (string * table_state) list;
  snap_indexes : (string * Index.t) list;
  snap_views : (string * view) list;
  snap_stats : (string * statistics) list;
  snap_corruption : string option;
  snap_analyzed : bool;
}

let snapshot t =
  {
    snap_tables =
      List.map
        (fun (k, ts) ->
          ( k,
            {
              schema = Schema.copy_table ts.schema;
              heap = Heap.deep_copy ts.heap;
            } ))
        t.tables;
    snap_indexes = List.map (fun (k, ix) -> (k, Index.copy ix)) t.indexes;
    snap_views = t.views;
    snap_stats = t.stats;
    snap_corruption = t.corruption;
    snap_analyzed = t.analyzed;
  }

let restore t snap =
  t.tables <- snap.snap_tables;
  t.indexes <- snap.snap_indexes;
  t.views <- snap.snap_views;
  t.stats <- snap.snap_stats;
  t.corruption <- snap.snap_corruption;
  t.analyzed <- snap.snap_analyzed
