(* A stored row: the engine-assigned rowid plus one value per column in the
   table's column order.  Rowids are stable across updates; WITHOUT ROWID
   tables (sqlite) still carry an internal id used as heap handle. *)

open Sqlval

type t = { rowid : int64; values : Value.t array }

let make ~rowid values = { rowid; values }
let get r i = r.values.(i)
let set r i v = r.values.(i) <- v
let copy r = { r with values = Array.copy r.values }
let width r = Array.length r.values

let equal a b =
  a.rowid = b.rowid
  && Array.length a.values = Array.length b.values
  && Array.for_all2 Value.equal a.values b.values

let pp fmt r =
  Format.fprintf fmt "#%Ld(%s)" r.rowid
    (String.concat "|" (Array.to_list (Array.map Value.to_display r.values)))

let show r = Format.asprintf "%a" pp r
