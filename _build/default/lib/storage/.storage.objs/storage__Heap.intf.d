lib/storage/heap.pp.mli: Hashtbl Row Sqlval
