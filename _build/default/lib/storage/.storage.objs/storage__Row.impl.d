lib/storage/row.pp.ml: Array Format Sqlval String Value
