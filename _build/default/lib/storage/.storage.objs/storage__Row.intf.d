lib/storage/row.pp.mli: Format Sqlval
