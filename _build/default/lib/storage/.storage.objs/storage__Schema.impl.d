lib/storage/schema.pp.ml: Array Collation Datatype List Sqlast Sqlval String
