lib/storage/catalog.pp.ml: Heap Index List Schema Sqlast String
