lib/storage/schema.pp.mli: Collation Datatype Sqlast Sqlval
