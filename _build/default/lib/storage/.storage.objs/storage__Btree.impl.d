lib/storage/btree.pp.ml: Array List
