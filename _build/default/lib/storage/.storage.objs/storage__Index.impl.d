lib/storage/index.pp.ml: Array Btree Collation Int64 List Option Sqlast Sqlval Value
