lib/storage/heap.pp.ml: Hashtbl Int64 List Row
