lib/storage/btree.pp.mli:
