lib/storage/index.pp.mli: Collation Sqlast Sqlval Value
