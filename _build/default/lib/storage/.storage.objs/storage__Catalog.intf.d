lib/storage/catalog.pp.mli: Heap Index Schema Sqlast
