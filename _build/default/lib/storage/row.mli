(** A stored row: the engine-assigned rowid plus one value per column in
    the table's column order.

    Rowids are stable across updates and serve as the join between heap
    and index entries; WITHOUT ROWID tables (sqlite) still carry an
    internal id used as the heap handle. *)

type t = { rowid : int64; values : Sqlval.Value.t array }

val make : rowid:int64 -> Sqlval.Value.t array -> t
val get : t -> int -> Sqlval.Value.t
val set : t -> int -> Sqlval.Value.t -> unit

(** Copy with a fresh values array (rows are otherwise shared mutable). *)
val copy : t -> t

val width : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val show : t -> string
