(* Resolved (post-DDL) table schemas, as the executor sees them.  Unlike the
   AST's CREATE TABLE, constraints are normalised: the primary key is an
   ordered column list, per-column UNIQUE constraints are recorded on the
   column, and every column carries its resolved collation and affinity. *)

open Sqlval

type column = {
  name : string;
  ty : Datatype.t;
  collation : Collation.t;
  not_null : bool;
  default : Sqlast.Ast.expr option;
  in_primary_key : bool;
  single_unique : bool; (* column-level UNIQUE constraint *)
}

let column ?(ty = Datatype.Any) ?(collation = Collation.Binary)
    ?(not_null = false) ?default ?(in_primary_key = false)
    ?(single_unique = false) name =
  { name; ty; collation; not_null; default; in_primary_key; single_unique }

type table = {
  mutable table_name : string;
  mutable columns : column array;
  mutable primary_key : string list; (* ordered; [] = none (rowid only) *)
  without_rowid : bool;
  engine : Sqlast.Ast.table_engine option;
  inherits : string option;
  mutable children : string list; (* postgres inheritance: child tables *)
  mutable table_uniques : string list list; (* multi-column UNIQUEs *)
  mutable checks : Sqlast.Ast.expr list; (* CHECK constraints, row context *)
  mutable serial_next : int64; (* next SERIAL value (postgres) *)
  mutable tainted_null_update : bool;
      (* a NULL was overwritten by UPDATE: trigger state for the
         injected 'unexpected null value in index' defect *)
  mutable broken_expr_index : bool;
      (* an expression index references a renamed column: trigger state
         for the injected malformed-schema defect *)
}

let make_table ?(primary_key = []) ?(without_rowid = false) ?engine ?inherits
    ?(table_uniques = []) ?(checks = []) ~columns table_name =
  {
    table_name;
    columns;
    primary_key;
    without_rowid;
    engine;
    inherits;
    children = [];
    table_uniques;
    checks;
    serial_next = 1L;
    tainted_null_update = false;
    broken_expr_index = false;
  }

let find_column t name =
  let lowered = String.lowercase_ascii name in
  let rec go i =
    if i >= Array.length t.columns then None
    else if String.lowercase_ascii t.columns.(i).name = lowered then
      Some (i, t.columns.(i))
    else go (i + 1)
  in
  go 0

let column_index t name =
  match find_column t name with Some (i, _) -> Some i | None -> None

let column_names t = Array.to_list (Array.map (fun c -> c.name) t.columns)
let width t = Array.length t.columns

let has_explicit_pk t = t.primary_key <> []

(* All UNIQUE column sets that must be enforced: the PK, column-level
   uniques, and table-level uniques. *)
let unique_sets t =
  let col_uniques =
    Array.to_list t.columns
    |> List.filter_map (fun c -> if c.single_unique then Some [ c.name ] else None)
  in
  let pk = if t.primary_key = [] then [] else [ t.primary_key ] in
  pk @ col_uniques @ t.table_uniques

let copy_table t =
  {
    t with
    columns = Array.copy t.columns;
    children = t.children;
    table_uniques = t.table_uniques;
  }
