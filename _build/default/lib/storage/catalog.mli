(** Database catalog: tables (schema + heap), indexes, views and extended
    statistics, with case-insensitive name lookup and creation-ordered
    introspection — the analogue of [sqlite_master] / [information_schema],
    which the paper's tool queries for state instead of tracking it itself
    (Section 3.4).

    The [corruption] field models on-disk corruption: once set, statements
    that touch the database report the dialect's "malformed database"
    error — the strongest signal of the paper's error oracle
    (Listing 10). *)

type table_state = { schema : Schema.table; heap : Heap.t }
type view = { view_name : string; view_query : Sqlast.Ast.query }

type statistics = {
  stat_name : string;
  stat_table : string;
  stat_columns : string list;
}

type t = {
  mutable tables : (string * table_state) list;  (** key: lowercase name *)
  mutable indexes : (string * Index.t) list;
  mutable views : (string * view) list;
  mutable stats : (string * statistics) list;
  mutable corruption : string option;
  mutable analyzed : bool;  (** ANALYZE ran: the planner may use stats *)
}

val create : unit -> t

(** {2 Tables} *)

val find_table : t -> string -> table_state option
val table_exists : t -> string -> bool
val add_table : t -> Schema.table -> table_state

(** Also drops the table's indexes. *)
val drop_table : t -> string -> bool

val table_names : t -> string list
val iter_tables : (table_state -> unit) -> t -> unit

(** Direct postgres-inheritance children of a table. *)
val children_of : t -> string -> string list

(** {2 Indexes} *)

val find_index : t -> string -> Index.t option
val index_exists : t -> string -> bool
val add_index : t -> Index.t -> unit
val drop_index : t -> string -> bool
val indexes_on : t -> string -> Index.t list
val index_names : t -> string list

(** {2 Views} *)

val find_view : t -> string -> view option
val view_exists : t -> string -> bool
val add_view : t -> view -> unit
val drop_view : t -> string -> bool
val view_names : t -> string list

(** {2 Extended statistics (postgres CREATE STATISTICS)} *)

val add_statistics : t -> statistics -> unit
val statistics_exists : t -> string -> bool
val statistics_on : t -> string -> statistics list

(** {2 Corruption} *)

(** First corruption wins; later calls keep the original message. *)
val corrupt : t -> string -> unit

val corruption : t -> string option
val clear_corruption : t -> unit

(** {2 Snapshots (transactions)} *)

type snapshot

(** Deep copy of the whole database state. *)
val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
