(* Section 4.1 reproduction: why the baselines were not applicable.

   The paper argues that fuzzers (SQLsmith, AFL) detect only crash bugs —
   "only potential overlap ... would be the crash bugs" — and that
   differential testing (RAGS) is limited to the small common SQL core.
   Both techniques run against the same injected-bug catalog PQS was
   evaluated on. *)


let fuzzer_detections ~budget =
  List.filter_map
    (fun bug ->
      let info = Engine.Bug.info bug in
      let config =
        Baselines.Fuzzer.default_config ~seed:7
          ~bugs:(Engine.Bug.set_of_list [ bug ])
          info.Engine.Bug.dialect
      in
      match Baselines.Fuzzer.hunt config ~max_queries:budget with
      | Some r -> Some (bug, r.Pqs.Bug_report.oracle)
      | None -> None)
    Engine.Bug.all

let difftest_detections ~budget =
  List.filter_map
    (fun bug ->
      let config =
        Baselines.Difftest.default_config ~seed:7
          ~bugs:(Engine.Bug.set_of_list [ bug ])
          ()
      in
      let stats = Baselines.Difftest.run ~max_queries:budget config in
      if stats.Baselines.Difftest.findings <> [] then Some bug else None)
    Engine.Bug.all

let count_class detections oracle =
  List.length
    (List.filter
       (fun (bug, _) ->
         Engine.Bug.equal_oracle_class (Engine.Bug.info bug).Engine.Bug.oracle
           oracle)
       detections)

let run ?(fuzzer_budget = 5000) ?(difftest_budget = 2000) (det : Detection.t) =
  let pqs_found = List.length (Detection.detected det) in
  let fuzz = fuzzer_detections ~budget:fuzzer_budget in
  let diff = difftest_detections ~budget:difftest_budget in
  let catalog = List.length Engine.Bug.all in
  let rows =
    [
      [
        "PQS (this work)";
        Printf.sprintf "%d / %d" pqs_found catalog;
        "containment + error + crash";
      ];
      [
        "SQLsmith-style fuzzer";
        Printf.sprintf "%d / %d" (List.length fuzz) catalog;
        Printf.sprintf "crash: %d, corruption-errors: %d, logic: %d"
          (count_class fuzz Engine.Bug.O_crash)
          (count_class fuzz Engine.Bug.O_error)
          (count_class fuzz Engine.Bug.O_containment);
      ];
      [
        "RAGS-style differential";
        Printf.sprintf "%d / %d" (List.length diff) catalog;
        "only defects expressible in the common SQL core";
      ];
    ]
  in
  Fmt_table.print
    ~title:
      "Baselines (paper Sec. 4.1): fuzzers cannot find logic bugs; \
       differential testing is limited to the common core"
    ~columns:[ "technique"; "catalog bugs found"; "notes" ]
    rows;
  if count_class fuzz Engine.Bug.O_containment > 0 then
    Printf.printf
      "  (a containment-class defect surfaced to the fuzzer through a \
       secondary error symptom)\n"
