(* Table 1 reproduction: the DBMS under test.

   The paper's Table 1 lists popularity, LOC, release year and age of the
   three real DBMS.  Those facts describe systems we substitute with the
   minidb dialect personalities, so the reproduction prints the paper's
   values verbatim alongside the measured characteristics of each
   personality: how many dialect-specific statements, operators and type
   features it exposes in this engine. *)

open Sqlval

let paper_rows =
  [
    (* dbms, db-engines rank, stackoverflow rank, LOC, released, age *)
    ("SQLite", "11", "4", "0.3M", "2000", "19");
    ("MySQL", "2", "1", "3.8M", "1995", "24");
    ("PostgreSQL", "4", "2", "1.4M", "1996", "23");
  ]

(* dialect-specific surface measured from the engine's feature gates *)
let personality_features dialect =
  let statements =
    match dialect with
    | Dialect.Sqlite_like -> [ "PRAGMA"; "VACUUM"; "REINDEX"; "ANALYZE" ]
    | Dialect.Mysql_like ->
        [ "CHECK TABLE"; "REPAIR TABLE"; "SET [GLOBAL]"; "ANALYZE" ]
    | Dialect.Postgres_like ->
        [ "VACUUM [FULL]"; "REINDEX"; "ANALYZE"; "CREATE STATISTICS"; "DISCARD" ]
  in
  let type_features =
    match dialect with
    | Dialect.Sqlite_like ->
        [ "untyped columns"; "affinities"; "COLLATE NOCASE/RTRIM";
          "WITHOUT ROWID"; "partial indexes"; "IS NOT over scalars"; "GLOB" ]
    | Dialect.Mysql_like ->
        [ "unsigned ints"; "int widths"; "storage engines"; "<=>";
          "IGNORE clamping"; "|| as OR" ]
    | Dialect.Postgres_like ->
        [ "strict typing"; "BOOLEAN"; "SERIAL"; "table inheritance";
          "IS DISTINCT FROM"; "extended statistics" ]
  in
  (statements, type_features)

let run () =
  Fmt_table.print ~title:"Table 1 — the DBMS under test (paper values)"
    ~columns:[ "DBMS"; "DB-Engines"; "StackOverflow"; "LOC"; "Released"; "Age" ]
    (List.map
       (fun (a, b, c, d, e, f) -> [ a; b; c; d; e; f ])
       paper_rows);
  Fmt_table.print
    ~title:"Table 1 (measured) — minidb dialect personalities standing in"
    ~columns:[ "Personality"; "Dialect statements"; "Distinctive semantics" ]
    (List.map
       (fun d ->
         let stmts, types = personality_features d in
         [
           Dialect.display_name d;
           String.concat ", " stmts;
           String.concat ", " types;
         ])
       Dialect.all)
