(* Table 2 reproduction: reported bugs and their status.

   Paper: 123 reports overall; per DBMS the fixed/verified/intended/
   duplicate split (SQLite 65/0/4/2, MySQL 15/10/1/4, PostgreSQL 5/4/7/6).
   Our catalog is scaled down by ~2.4x with the proportions preserved; a
   "report" here is a catalog defect that PQS detected within the budget,
   and its status column comes from the catalog metadata that mirrors how
   the corresponding real report was resolved. *)

open Sqlval

let paper = function
  | Dialect.Sqlite_like -> (65, 0, 4, 2)
  | Dialect.Mysql_like -> (15, 10, 1, 4)
  | Dialect.Postgres_like -> (5, 4, 7, 6)

let measured (det : Detection.t) dialect =
  let counted status =
    Detection.by_dialect det dialect
    |> List.filter (fun (o : Detection.outcome) ->
           o.Detection.report <> None
           && Engine.Bug.equal_status (Engine.Bug.info o.Detection.bug).Engine.Bug.status
                status)
    |> List.length
  in
  Engine.Bug.(counted Fixed, counted Verified, counted Intended, counted Duplicate)

let run (det : Detection.t) =
  let rows =
    List.map
      (fun d ->
        let pf, pv, pi, pd = paper d in
        let mf, mv, mi, md = measured det d in
        let injected = List.length (Detection.by_dialect det d) in
        [
          Dialect.display_name d;
          string_of_int injected;
          Printf.sprintf "%d/%d/%d/%d" mf mv mi md;
          Printf.sprintf "%d/%d/%d/%d" pf pv pi pd;
        ])
      Dialect.all
  in
  Fmt_table.print
    ~title:
      "Table 2 — reported bugs and status (fixed/verified/intended/duplicate)"
    ~columns:[ "DBMS"; "injected"; "detected (measured)"; "paper" ]
    rows;
  let not_found = Detection.missed det in
  if not_found <> [] then begin
    Printf.printf "  not detected within budget:\n";
    List.iter
      (fun (o : Detection.outcome) ->
        Printf.printf "    - %s\n" (Engine.Bug.show o.Detection.bug))
      not_found
  end;
  Printf.printf
    "  note: the catalog is the paper's 123 reports scaled by ~1/2.4 with \
     per-DBMS and per-status proportions preserved (see DESIGN.md).\n"
