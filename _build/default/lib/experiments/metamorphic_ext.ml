(* Future-work extension (paper Section 7): metamorphic aggregate testing.

   Checks the three-way partition relation COUNT/MIN/MAX(whole) =
   combine(partitions) on random databases, both against the correct
   engine (must hold) and with a row-losing injected defect enabled
   (must be violated). *)

open Sqlval

let run ?(checks = 1000) () =
  let rows =
    List.map
      (fun d ->
        let s = Pqs.Metamorphic.run ~seed:11 ~max_checks:checks d in
        [
          Dialect.display_name d;
          string_of_int s.Pqs.Metamorphic.checks;
          string_of_int s.Pqs.Metamorphic.skipped;
          string_of_int (List.length s.Pqs.Metamorphic.findings);
        ])
      Dialect.all
  in
  Fmt_table.print
    ~title:
      "Metamorphic aggregate extension (paper Sec. 7) — partition relation \
       on the correct engine (findings must be 0)"
    ~columns:[ "DBMS"; "checks"; "skipped"; "violations" ]
    rows;
  (* the same relation breaks under a row-losing defect *)
  let bug = Engine.Bug.Sq_partial_index_implies_not_null in
  let s =
    Pqs.Metamorphic.run ~seed:11
      ~bugs:(Engine.Bug.set_of_list [ bug ])
      ~max_checks:(4 * checks) Dialect.Sqlite_like
  in
  Printf.printf
    "  with %s enabled: %d violation(s) in %d checks — aggregates over \
     multiple rows are now testable without a pivot oracle\n"
    (Engine.Bug.show bug)
    (List.length s.Pqs.Metamorphic.findings)
    s.Pqs.Metamorphic.checks
