(** Shared detection harness: hunt every catalog bug once and reuse the
    results across the Table 2/3 and Figure 2/3 reproductions. *)

type outcome = {
  bug : Engine.Bug.t;
  report : Pqs.Bug_report.t option;  (** None = not detected in budget *)
  queries_budget : int;
}

type t = outcome list

(** Hunt each bug with the given per-seed query budget (seeds are retried
    in order until a finding).  [progress] prints one line per bug. *)
val run_all :
  ?budget:int -> ?seeds:int list -> ?progress:bool -> unit -> t

val detected : t -> outcome list
val missed : t -> outcome list

(** Detections grouped per dialect with the paper's status labels. *)
val by_dialect : t -> Sqlval.Dialect.t -> outcome list

(** Reduce every detection's report (expensive; cached in the outcome
    list returned). *)
val with_reductions : t -> t
