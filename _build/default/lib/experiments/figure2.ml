(* Figure 2 reproduction: cumulative distribution of the LOC of reduced
   test cases.  Paper: mean 3.71 statements, 13 single-line cases, max 8
   (one outlier with 27 for a previously-fixed crash). *)

(* Returns the outcome list with reductions attached so Figure 3 reuses
   them. *)
let run (det : Detection.t) : Detection.t =
  let det = Detection.with_reductions det in
  let locs =
    List.filter_map
      (fun (o : Detection.outcome) ->
        Option.map Pqs.Bug_report.loc o.Detection.report)
      det
  in
  (match locs with
  | [] -> Printf.printf "\n== Figure 2 ==\n(no detections to reduce)\n"
  | _ ->
      let n = List.length locs in
      let sorted = List.sort compare locs in
      let max_loc = List.fold_left max 0 sorted in
      let mean =
        float_of_int (List.fold_left ( + ) 0 sorted) /. float_of_int n
      in
      let rows =
        List.init max_loc (fun i ->
            let k = i + 1 in
            let cum = List.length (List.filter (fun l -> l <= k) sorted) in
            [
              string_of_int k;
              string_of_int (List.length (List.filter (( = ) k) sorted));
              Printf.sprintf "%.2f" (float_of_int cum /. float_of_int n);
            ])
      in
      Fmt_table.print
        ~title:
          (Printf.sprintf
             "Figure 2 — reduced test-case LOC CDF over %d reports (measured \
              mean %.2f, max %d; paper mean 3.71, max 8)"
             n mean max_loc)
        ~columns:[ "LOC"; "count"; "cumulative" ]
        rows);
  det
