(* Figure 3 reproduction: per-DBMS distribution of the SQL statements that
   appear in the reduced bug reports, with the statement that triggered the
   detection tagged by its oracle.

   The paper's observations to preserve: CREATE TABLE and INSERT appear in
   most reports for every DBMS, SELECT ranks highly (the containment oracle
   relies on it), CREATE INDEX ranks highly, and the table-state-recomputing
   statements (REPAIR/CHECK TABLE, VACUUM, REINDEX) carry error-oracle
   findings. *)

open Sqlval

let run (det : Detection.t) =
  let det = Detection.with_reductions det in
  List.iter
    (fun dialect ->
      let reports =
        Detection.by_dialect det dialect
        |> List.filter_map (fun (o : Detection.outcome) -> o.Detection.report)
      in
      let n = List.length reports in
      if n = 0 then
        Printf.printf "\n== Figure 3 (%s) ==\n(no reports)\n"
          (Dialect.display_name dialect)
      else begin
        let stmts_of (r : Pqs.Bug_report.t) =
          Option.value ~default:r.Pqs.Bug_report.statements
            r.Pqs.Bug_report.reduced
        in
        let contains_kind r kind =
          List.exists (fun s -> Sqlast.Ast.stmt_kind s = kind) (stmts_of r)
        in
        let trigger_kind r =
          match List.rev (stmts_of r) with
          | last :: _ -> Some (Sqlast.Ast.stmt_kind last)
          | [] -> None
        in
        let rows =
          Sqlast.Ast.all_stmt_kinds
          |> List.filter_map (fun kind ->
                 let appearing =
                   List.length (List.filter (fun r -> contains_kind r kind) reports)
                 in
                 if appearing = 0 then None
                 else
                   let triggers =
                     List.filter
                       (fun (r : Pqs.Bug_report.t) -> trigger_kind r = Some kind)
                       reports
                   in
                   let trigger_tags =
                     triggers
                     |> List.map (fun (r : Pqs.Bug_report.t) ->
                            Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle)
                     |> List.sort_uniq compare |> String.concat ","
                   in
                   Some
                     [
                       kind;
                       Printf.sprintf "%.0f%%"
                         (100.0 *. float_of_int appearing /. float_of_int n);
                       (if trigger_tags = "" then "-" else trigger_tags);
                     ])
        in
        Fmt_table.print
          ~title:
            (Printf.sprintf
               "Figure 3 (%s) — statement mix across %d reduced reports"
               (Dialect.display_name dialect) n)
          ~columns:[ "statement"; "% of reports"; "triggering oracle" ]
          rows
      end)
    Dialect.all;
  det
