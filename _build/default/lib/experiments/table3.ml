(* Table 3 reproduction: true bugs per oracle per DBMS.

   Paper: SQLite 46/17/2, MySQL 14/10/1, PostgreSQL 1/7/1 (contains /
   error / SEGFAULT), total 61/34/4.  We count each detected *true* bug
   (status fixed or verified) under the oracle that actually caught it. *)

open Sqlval

let paper = function
  | Dialect.Sqlite_like -> (46, 17, 2)
  | Dialect.Mysql_like -> (14, 10, 1)
  | Dialect.Postgres_like -> (1, 7, 1)

let measured (det : Detection.t) dialect =
  let outcomes =
    Detection.by_dialect det dialect
    |> List.filter (fun (o : Detection.outcome) ->
           Engine.Bug.is_true_bug o.Detection.bug)
  in
  let count label =
    List.length
      (List.filter
         (fun (o : Detection.outcome) ->
           match o.Detection.report with
           | Some r ->
               Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle = label
           | None -> false)
         outcomes)
  in
  (count "Contains", count "Error", count "SEGFAULT")

let run (det : Detection.t) =
  let rows =
    List.map
      (fun d ->
        let mc, me, ms = measured det d in
        let pc, pe, ps = paper d in
        [
          Dialect.display_name d;
          string_of_int mc;
          string_of_int me;
          string_of_int ms;
          Printf.sprintf "%d/%d/%d" pc pe ps;
        ])
      Dialect.all
  in
  let totals =
    let sum f = List.fold_left (fun acc d -> acc + f d) 0 Dialect.all in
    [
      "Sum";
      string_of_int (sum (fun d -> let c, _, _ = measured det d in c));
      string_of_int (sum (fun d -> let _, e, _ = measured det d in e));
      string_of_int (sum (fun d -> let _, _, s = measured det d in s));
      "61/34/4";
    ]
  in
  Fmt_table.print
    ~title:"Table 3 — true bugs found per oracle (measured; paper as c/e/s)"
    ~columns:[ "DBMS"; "Contains"; "Error"; "SEGFAULT"; "paper" ]
    (rows @ [ totals ])
