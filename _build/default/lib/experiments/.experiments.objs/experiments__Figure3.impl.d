lib/experiments/figure3.ml: Detection Dialect Fmt_table List Option Pqs Printf Sqlast Sqlval String
