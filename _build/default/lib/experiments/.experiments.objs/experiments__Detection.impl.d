lib/experiments/detection.ml: Engine List Pqs Printf Sqlval
