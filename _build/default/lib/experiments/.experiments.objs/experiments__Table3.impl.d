lib/experiments/table3.ml: Detection Dialect Engine Fmt_table List Pqs Printf Sqlval
