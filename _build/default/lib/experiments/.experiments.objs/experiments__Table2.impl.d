lib/experiments/table2.ml: Detection Dialect Engine Fmt_table List Printf Sqlval
