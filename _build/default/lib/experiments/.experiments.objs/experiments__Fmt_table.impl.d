lib/experiments/fmt_table.ml: List Printf String
