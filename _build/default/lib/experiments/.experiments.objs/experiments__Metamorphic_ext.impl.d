lib/experiments/metamorphic_ext.ml: Dialect Engine Fmt_table List Pqs Printf Sqlval
