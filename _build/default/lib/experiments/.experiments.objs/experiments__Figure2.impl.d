lib/experiments/figure2.ml: Detection Fmt_table List Option Pqs Printf
