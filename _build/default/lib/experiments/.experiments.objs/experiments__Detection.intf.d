lib/experiments/detection.mli: Engine Pqs Sqlval
