lib/experiments/table4.ml: Array Dialect Engine Filename Fmt_table List Pqs Printf Sqlval String Sys
