lib/experiments/bug_catalog_doc.ml: Buffer Detection Dialect Engine List Pqs Printf Sqlval
