lib/experiments/table1.ml: Dialect Fmt_table List Sqlval String
