lib/experiments/throughput.ml: Dialect Fmt_table List Pqs Printf Sqlval Unix
