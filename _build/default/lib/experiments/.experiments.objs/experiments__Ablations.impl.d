lib/experiments/ablations.ml: Dialect Engine Fmt_table List Pqs Printf Sqlast Sqlval String Tvl
