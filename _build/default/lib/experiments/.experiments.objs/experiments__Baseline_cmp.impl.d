lib/experiments/baseline_cmp.ml: Baselines Detection Engine Fmt_table List Pqs Printf
