(* Plain-text table rendering for the experiment reports. *)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let render ~columns rows =
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length c) rows)
      columns
  in
  let line cells =
    "| "
    ^ String.concat " | " (List.map2 (fun w c -> pad w c) widths cells)
    ^ " |"
  in
  let sep =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  String.concat "\n" (line columns :: sep :: List.map line rows)

let print ~title ~columns rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ~columns rows)
