open Sqlval
module A = Sqlast.Ast

let ( let* ) = Result.bind

let cov (ctx : Executor.ctx) point =
  match ctx.Executor.coverage with None -> () | Some c -> Coverage.hit c point

let bug (ctx : Executor.ctx) b = Bug.on ctx.Executor.bugs b
let err code fmt = Errors.makef code fmt
let is_dialect (ctx : Executor.ctx) d = Dialect.equal ctx.Executor.dialect d

let index_mentions_like (ix : Storage.Index.t) =
  let has_like e =
    A.fold_expr
      (fun acc x -> acc || match x with A.Like _ -> true | _ -> false)
      false e
  in
  List.exists (fun (ic : A.indexed_column) -> has_like ic.A.ic_expr)
    ix.Storage.Index.definition
  || Option.fold ~none:false ~some:has_like ix.Storage.Index.where

let all_indexes (ctx : Executor.ctx) =
  List.map snd ctx.Executor.catalog.Storage.Catalog.indexes

(* Rebuild every index of a table from its heap. *)
let rebuild_table_indexes ctx (ts : Storage.Catalog.table_state) =
  let rec go = function
    | [] -> Ok ()
    | ix :: rest ->
        let* () = Ddl.build_index_entries ctx ts ix in
        go rest
  in
  go
    (Storage.Catalog.indexes_on ctx.Executor.catalog
       ts.Storage.Catalog.schema.Storage.Schema.table_name)

(* ------------------------------------------------------------------ *)
(* VACUUM                                                               *)

let vacuum ctx ~full =
  cov ctx (if full then "maint.vacuum_full" else "maint.vacuum");
  let* () =
    match ctx.Executor.dialect with
    | Dialect.Mysql_like ->
        Error (err Errors.Syntax_error "VACUUM is not supported; use OPTIMIZE")
    | Dialect.Postgres_like | Dialect.Sqlite_like -> Ok ()
  in
  let* () =
    if full && is_dialect ctx Dialect.Sqlite_like then
      Error (err Errors.Syntax_error "VACUUM FULL is postgres-specific")
    else Ok ()
  in
  match Storage.Catalog.corruption ctx.Executor.catalog with
  | Some msg -> Error (Errors.make Errors.Malformed_database msg)
  | None ->
      (* Listing 9: LIKE expression index + flipped case_sensitive_like *)
      if
        is_dialect ctx Dialect.Sqlite_like
        && bug ctx Bug.Sq_pragma_like_index_vacuum
        && Options.like_pragma_touched ctx.Executor.options
        && List.exists index_mentions_like (all_indexes ctx)
      then
        let ix = List.find index_mentions_like (all_indexes ctx) in
        Error
          (err Errors.Malformed_database
             "malformed database schema (%s) - non-deterministic functions \
              prohibited in index expressions"
             ix.Storage.Index.index_name)
      else if
        (* intended-class variant: pragma change with a NOCASE index *)
        is_dialect ctx Dialect.Sqlite_like
        && bug ctx Bug.Sq_intended_pragma_vacuum
        && Options.like_pragma_touched ctx.Executor.options
        && List.exists
             (fun ix ->
               Array.exists
                 (fun c -> Collation.equal c Collation.Nocase)
                 ix.Storage.Index.collations)
             (all_indexes ctx)
      then
        Error
          (err Errors.Internal_error
             "schema and data disagree after PRAGMA change")
      else if
        is_dialect ctx Dialect.Sqlite_like
        && bug ctx Bug.Sq_vacuum_partial_index_corrupt
        && List.exists Storage.Index.is_partial (all_indexes ctx)
      then begin
        Storage.Catalog.corrupt ctx.Executor.catalog
          "database disk image is malformed";
        Error
          (Errors.make Errors.Malformed_database
             "database disk image is malformed")
      end
      else if
        is_dialect ctx Dialect.Postgres_like && full
        && bug ctx Bug.Pg_intended_vacuum_full_deadlock
      then Error (err Errors.Internal_error "deadlock detected")
      else begin
        (* compact each heap: renumber rowids, then rebuild indexes *)
        let tables =
          List.map snd ctx.Executor.catalog.Storage.Catalog.tables
        in
        let skip_index_rebuild =
          is_dialect ctx Dialect.Sqlite_like
          && bug ctx Bug.Sq_vacuum_index_desync
        in
        let rec go = function
          | [] -> Ok ()
          | (ts : Storage.Catalog.table_state) :: rest ->
              let rows = Storage.Heap.to_list ts.Storage.Catalog.heap in
              Storage.Heap.clear ts.Storage.Catalog.heap;
              List.iter
                (fun (r : Storage.Row.t) ->
                  ignore
                    (Storage.Heap.insert ts.Storage.Catalog.heap
                       r.Storage.Row.values))
                rows;
              let* () =
                if skip_index_rebuild then Ok ()
                else begin
                  (* postgres Listing 18: expression-index expressions are
                     re-evaluated during VACUUM; with the intended-class
                     defect enabled an overflow surfaces here *)
                  (* width-aware overflow: postgres evaluates 1 + c0 in
                     the column's width, so re-evaluation at VACUUM time
                     overflows for boundary values (Listing 18) *)
                  let width_overflow () =
                    Storage.Catalog.indexes_on ctx.Executor.catalog
                      ts.Storage.Catalog.schema.Storage.Schema.table_name
                    |> List.exists (fun ix ->
                           List.exists
                             (fun (ic : A.indexed_column) ->
                               match ic.A.ic_expr with
                               | A.Binary (A.Add, A.Col { column; _ }, A.Lit (Value.Int k))
                               | A.Binary (A.Add, A.Lit (Value.Int k), A.Col { column; _ })
                                 -> (
                                   match
                                     Storage.Schema.find_column
                                       ts.Storage.Catalog.schema column
                                   with
                                   | Some (i, col) -> (
                                       match col.Storage.Schema.ty with
                                       | Datatype.Int _ | Datatype.Serial ->
                                           let width =
                                             match col.Storage.Schema.ty with
                                             | Datatype.Int { width; _ } -> width
                                             | _ -> Datatype.Regular
                                           in
                                           let _, hi = Datatype.int_range width in
                                           Storage.Heap.to_list
                                             ts.Storage.Catalog.heap
                                           |> List.exists (fun (r : Storage.Row.t) ->
                                                  match Storage.Row.get r i with
                                                  | Value.Int v ->
                                                      k > 0L && v > Int64.sub hi k
                                                  | _ -> false)
                                       | _ -> false)
                                   | None -> false)
                               | _ -> false)
                             ix.Storage.Index.definition)
                  in
                  if
                    is_dialect ctx Dialect.Postgres_like
                    && bug ctx Bug.Pg_intended_vacuum_overflow
                    && width_overflow ()
                  then Error (err Errors.Out_of_range "integer out of range")
                  else
                  match rebuild_table_indexes ctx ts with
                  | Ok () -> Ok ()
                  | Error e
                    when is_dialect ctx Dialect.Postgres_like
                         && bug ctx Bug.Pg_intended_vacuum_overflow
                         && Errors.equal_code e.Errors.code Errors.Out_of_range
                    ->
                      Error (err Errors.Out_of_range "integer out of range")
                  | Error _
                    when is_dialect ctx Dialect.Postgres_like
                         && not (bug ctx Bug.Pg_intended_vacuum_overflow) ->
                      (* without the defect the rebuild skips failing rows,
                         as the optimized index build does in postgres *)
                      Ok ()
                  | Error e -> Error e
                end
              in
              go rest
        in
        go tables
      end

(* ------------------------------------------------------------------ *)
(* REINDEX                                                              *)

let reindex ctx target =
  cov ctx "maint.reindex";
  let* () =
    if is_dialect ctx Dialect.Mysql_like then
      Error (err Errors.Syntax_error "REINDEX is not supported")
    else Ok ()
  in
  match Storage.Catalog.corruption ctx.Executor.catalog with
  | Some msg -> Error (Errors.make Errors.Malformed_database msg)
  | None ->
      if
        is_dialect ctx Dialect.Postgres_like && bug ctx Bug.Pg_reindex_deadlock
      then Error (err Errors.Internal_error "deadlock detected")
      else if
        (* intended-class: REINDEX re-parses stored boolean literals
           strictly and rejects them *)
        is_dialect ctx Dialect.Postgres_like
        && bug ctx Bug.Pg_intended_bool_cast_error
        && List.exists
             (fun (_, ts) ->
               Array.exists
                 (fun (c : Storage.Schema.column) ->
                   c.Storage.Schema.ty = Datatype.Bool)
                 ts.Storage.Catalog.schema.Storage.Schema.columns
               && Storage.Catalog.indexes_on ctx.Executor.catalog
                    ts.Storage.Catalog.schema.Storage.Schema.table_name
                  <> [])
             ctx.Executor.catalog.Storage.Catalog.tables
      then
        Error
          (err Errors.Type_error "invalid input syntax for type boolean: \"2\"")
      else begin
        let indexes =
          match target with
          | None -> all_indexes ctx
          | Some name -> (
              match Storage.Catalog.find_index ctx.Executor.catalog name with
              | Some ix -> [ ix ]
              | None -> [])
        in
        let rec go = function
          | [] -> Ok ()
          | (ix : Storage.Index.t) :: rest -> (
              match
                Storage.Catalog.find_table ctx.Executor.catalog
                  ix.Storage.Index.on_table
              with
              | None -> go rest
              | Some ts ->
                  (* Listing 8 class: a renamed column left an expression
                     index stale *)
                  if
                    ts.Storage.Catalog.schema.Storage.Schema.broken_expr_index
                    && Storage.Index.is_expression_index ix
                  then
                    Error
                      (err Errors.Malformed_database
                         "malformed database schema (%s) - no such column"
                         ix.Storage.Index.index_name)
                  else if
                    (* REINDEX/RTRIM class: keys rebuilt untrimmed collide
                       detection is inverted — rebuilt keys *lose* the
                       collation folding, so previously-distinct entries
                       spuriously collide *)
                    is_dialect ctx Dialect.Sqlite_like
                    && bug ctx Bug.Sq_reindex_rtrim_unique
                    && ix.Storage.Index.unique
                    && Array.exists
                         (fun c -> Collation.equal c Collation.Rtrim)
                         ix.Storage.Index.collations
                    &&
                    (* two rows whose keys differ only in trailing spaces
                       would now collide... or the inverse: distinct-under-
                       rtrim keys get folded; either way, report *)
                    Storage.Heap.row_count ts.Storage.Catalog.heap >= 2
                  then
                    Error
                      (err Errors.Unique_violation
                         "UNIQUE constraint failed: index '%s'"
                         ix.Storage.Index.index_name)
                  else
                    let* () = Ddl.build_index_entries ctx ts ix in
                    go rest)
        in
        go indexes
      end

(* ------------------------------------------------------------------ *)
(* ANALYZE                                                              *)

let analyze ctx target =
  cov ctx "maint.analyze";
  ignore target;
  match Storage.Catalog.corruption ctx.Executor.catalog with
  | Some msg -> Error (Errors.make Errors.Malformed_database msg)
  | None ->
      (* postgres crash class: extended statistics over boolean columns *)
      if
        is_dialect ctx Dialect.Postgres_like
        && bug ctx Bug.Pg_stats_analyze_crash
        && List.exists
             (fun (_, (s : Storage.Catalog.statistics)) ->
               match
                 Storage.Catalog.find_table ctx.Executor.catalog
                   s.Storage.Catalog.stat_table
               with
               | Some ts ->
                   List.exists
                     (fun c ->
                       match
                         Storage.Schema.find_column ts.Storage.Catalog.schema c
                       with
                       | Some (_, col) -> col.Storage.Schema.ty = Datatype.Bool
                       | None -> false)
                     s.Storage.Catalog.stat_columns
               | None -> false)
             ctx.Executor.catalog.Storage.Catalog.stats
      then
        raise (Errors.Crash "segfault: null extended-statistics slot in ANALYZE")
      else begin
        ctx.Executor.catalog.Storage.Catalog.analyzed <- true;
        Ok ()
      end

(* ------------------------------------------------------------------ *)
(* CHECK / REPAIR TABLE (mysql)                                         *)

let check_table ctx ~table ~for_upgrade =
  cov ctx "maint.check_table";
  let* () =
    if not (is_dialect ctx Dialect.Mysql_like) then
      Error (err Errors.Syntax_error "CHECK TABLE is mysql-specific")
    else Ok ()
  in
  match Storage.Catalog.find_table ctx.Executor.catalog table with
  | None -> Error (err Errors.No_such_table "no such table: %s" table)
  | Some ts ->
      let indexes =
        Storage.Catalog.indexes_on ctx.Executor.catalog
          ts.Storage.Catalog.schema.Storage.Schema.table_name
      in
      (* Listing 14 / CVE-2019-2879 *)
      if
        for_upgrade
        && bug ctx Bug.My_check_upgrade_expr_index_crash
        && List.exists Storage.Index.is_expression_index indexes
      then
        raise
          (Errors.Crash
             "segfault: CHECK TABLE ... FOR UPGRADE on expression index")
      else if
        bug ctx Bug.My_check_table_false_corrupt
        && List.exists
             (fun ix ->
               ix.Storage.Index.unique
               &&
               let has_null = ref false in
               Storage.Index.iter
                 (fun key _ ->
                   if Array.exists Value.is_null key then has_null := true)
                 ix;
               !has_null)
             indexes
      then Error (err Errors.Internal_error "Table '%s' check: Corrupt" table)
      else Ok ()

let repair_table ctx table =
  cov ctx "maint.repair_table";
  let* () =
    if not (is_dialect ctx Dialect.Mysql_like) then
      Error (err Errors.Syntax_error "REPAIR TABLE is mysql-specific")
    else Ok ()
  in
  match Storage.Catalog.find_table ctx.Executor.catalog table with
  | None -> Error (err Errors.No_such_table "no such table: %s" table)
  | Some ts ->
      if
        bug ctx Bug.My_repair_marks_crashed
        && ts.Storage.Catalog.schema.Storage.Schema.engine = Some A.E_myisam
      then
        Error
          (err Errors.Internal_error
           "Table '%s' is marked as crashed and last (automatic?) repair \
            failed"
           table)
      else rebuild_table_indexes ctx ts

(* ------------------------------------------------------------------ *)
(* CREATE STATISTICS / DISCARD (postgres)                               *)

let create_statistics ctx ~name ~table ~columns =
  cov ctx "maint.create_statistics";
  let* () =
    if not (is_dialect ctx Dialect.Postgres_like) then
      Error (err Errors.Syntax_error "CREATE STATISTICS is postgres-specific")
    else Ok ()
  in
  if Storage.Catalog.statistics_exists ctx.Executor.catalog name then
    Error (err Errors.Object_exists "statistics %s already exist" name)
  else
    match Storage.Catalog.find_table ctx.Executor.catalog table with
    | None -> Error (err Errors.No_such_table "no such table: %s" table)
    | Some ts ->
        let* () =
          let rec check = function
            | [] -> Ok ()
            | c :: rest ->
                if Storage.Schema.find_column ts.Storage.Catalog.schema c = None
                then Error (err Errors.No_such_column "no such column: %s" c)
                else check rest
          in
          check columns
        in
        if List.length columns < 2 then
          Error
            (err Errors.Syntax_error
               "extended statistics require at least 2 columns")
        else begin
          Storage.Catalog.add_statistics ctx.Executor.catalog
            { Storage.Catalog.stat_name = name; stat_table = table; stat_columns = columns };
          Ok ()
        end

let discard_all ctx =
  cov ctx "maint.discard";
  if not (is_dialect ctx Dialect.Postgres_like) then
    Error (err Errors.Syntax_error "DISCARD is postgres-specific")
  else Ok ()
