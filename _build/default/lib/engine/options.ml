open Sqlval

type t = {
  dialect : Dialect.t;
  values : (string, Value.t) Hashtbl.t;
  mutable like_pragma_touched : bool;
}

let known = function
  | Dialect.Sqlite_like ->
      [
        ("case_sensitive_like", Value.Int 0L);
        ("reverse_unordered_selects", Value.Int 0L);
        ("ignore_check_constraints", Value.Int 0L);
        ("cell_size_check", Value.Int 0L);
        ("legacy_file_format", Value.Int 0L);
      ]
  | Dialect.Mysql_like ->
      [
        ("key_cache_division_limit", Value.Int 100L);
        ("sql_mode", Value.Text "");
        ("max_heap_table_size", Value.Int 16777216L);
        ("sort_buffer_size", Value.Int 262144L);
        ("optimizer_switch", Value.Text "default");
      ]
  | Dialect.Postgres_like ->
      [
        ("enable_seqscan", Value.Bool true);
        ("enable_indexscan", Value.Bool true);
        ("work_mem", Value.Int 4096L);
        ("default_statistics_target", Value.Int 100L);
        ("jit", Value.Bool false);
      ]

let create dialect =
  let values = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace values k v) (known dialect);
  { dialect; values; like_pragma_touched = false }

let copy t =
  {
    dialect = t.dialect;
    values = Hashtbl.copy t.values;
    like_pragma_touched = t.like_pragma_touched;
  }

let get t name = Hashtbl.find_opt t.values (String.lowercase_ascii name)

let set t name value =
  let name = String.lowercase_ascii name in
  match Hashtbl.find_opt t.values name with
  | None ->
      Error
        (Errors.makef Errors.Invalid_option "unknown option or pragma: %s" name)
  | Some current ->
      let compatible =
        match (current, value) with
        | Value.Int _, Value.Int _
        | Value.Text _, Value.Text _
        | Value.Bool _, Value.Bool _ ->
            true
        (* booleans are settable as 0/1 everywhere *)
        | Value.Bool _, Value.Int _ | Value.Int _, Value.Bool _ -> true
        | _ -> false
      in
      if not compatible then
        Error
          (Errors.makef Errors.Invalid_option "incorrect argument type for %s"
             name)
      else begin
        if name = "case_sensitive_like" then t.like_pragma_touched <- true;
        Hashtbl.replace t.values name value;
        Ok ()
      end

let truthy = function
  | Some (Value.Int i) -> i <> 0L
  | Some (Value.Bool b) -> b
  | _ -> false

let case_sensitive_like t = truthy (get t "case_sensitive_like")
let reverse_unordered_selects t = truthy (get t "reverse_unordered_selects")
let like_pragma_touched t = t.like_pragma_touched
