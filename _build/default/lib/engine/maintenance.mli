(** Maintenance statements: VACUUM, REINDEX, ANALYZE, CHECK TABLE, REPAIR
    TABLE, CREATE STATISTICS, DISCARD.

    The paper observed that "statements that compute or recompute table
    state were error prone" (Section 4.3); most error-oracle bug classes
    are injected here. *)

val vacuum : Executor.ctx -> full:bool -> (unit, Errors.t) result
val reindex : Executor.ctx -> string option -> (unit, Errors.t) result
val analyze : Executor.ctx -> string option -> (unit, Errors.t) result

val check_table :
  Executor.ctx -> table:string -> for_upgrade:bool -> (unit, Errors.t) result

val repair_table : Executor.ctx -> string -> (unit, Errors.t) result

val create_statistics :
  Executor.ctx ->
  name:string ->
  table:string ->
  columns:string list ->
  (unit, Errors.t) result

val discard_all : Executor.ctx -> (unit, Errors.t) result
