(* EXPLAIN: a human-readable access-plan description.

   Real engines print bytecode (sqlite) or plan trees (postgres); this
   prints the planner's chosen access path per base table plus the
   pipeline stages, which is what the examples and the REPL need to make
   planner behaviour observable. *)

module A = Sqlast.Ast

let rec from_lines ctx (item : A.from_item) ~where : string list =
  match item with
  | A.F_table { name; alias } -> (
      let label =
        match alias with Some a -> name ^ " AS " ^ a | None -> name
      in
      match Storage.Catalog.find_table ctx.Executor.catalog name with
      | Some ts ->
          let path =
            Planner.choose (Executor.eval_env ctx) ctx.Executor.catalog
              ts.Storage.Catalog.schema ~where
          in
          [ Printf.sprintf "SCAN %s USING %s" label (Planner.show_path path) ]
      | None ->
          if Storage.Catalog.view_exists ctx.Executor.catalog name then
            [ Printf.sprintf "EXPAND VIEW %s" label ]
          else [ Printf.sprintf "SCAN %s (no such table)" label ])
  | A.F_join { kind; left; right; _ } ->
      let kw =
        match kind with
        | A.Inner -> "NESTED LOOP JOIN"
        | A.Left -> "NESTED LOOP LEFT JOIN"
        | A.Cross -> "NESTED LOOP CROSS JOIN"
      in
      from_lines ctx left ~where:None
      @ from_lines ctx right ~where:None
      @ [ kw ]
  | A.F_sub { alias; _ } -> [ Printf.sprintf "MATERIALIZE SUBQUERY AS %s" alias ]

let rec query_lines ctx (q : A.query) : string list =
  match q with
  | A.Q_values rows -> [ Printf.sprintf "VALUES (%d rows)" (List.length rows) ]
  | A.Q_compound (op, a, b) ->
      let kw =
        match op with
        | A.Union -> "UNION"
        | A.Union_all -> "UNION ALL"
        | A.Intersect -> "INTERSECT"
        | A.Except -> "EXCEPT"
      in
      query_lines ctx a @ query_lines ctx b @ [ "COMPOUND " ^ kw ]
  | A.Q_select s ->
      let scans =
        match s.A.sel_from with
        | [ single ] -> from_lines ctx single ~where:s.A.sel_where
        | items ->
            List.concat_map (fun it -> from_lines ctx it ~where:None) items
      in
      let stages =
        (if s.A.sel_group_by <> [] then [ "GROUP BY" ] else [])
        @ (if s.A.sel_having <> None then [ "FILTER HAVING" ] else [])
        @ (if s.A.sel_distinct then [ "DISTINCT" ] else [])
        @ (if s.A.sel_order_by <> [] then [ "SORT" ] else [])
        @
        if s.A.sel_limit <> None || s.A.sel_offset <> None then [ "LIMIT" ]
        else []
      in
      scans @ stages

let run ctx (q : A.query) : (Executor.result_set, Errors.t) result =
  Ok
    {
      Executor.rs_columns = [ "plan" ];
      rs_rows =
        List.map (fun l -> [| Sqlval.Value.Text l |]) (query_lines ctx q);
    }
