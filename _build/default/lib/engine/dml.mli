(** Data manipulation: INSERT (plus OR IGNORE / OR REPLACE), UPDATE, DELETE.

    Constraint enforcement (NOT NULL, UNIQUE via the implicit and explicit
    indexes) and index maintenance happen here; several of the paper's bug
    classes are injected at these sites (the WITHOUT ROWID / NOCASE key
    collapse of Listing 4, the REAL-primary-key corruption of Listing 10,
    stale partial indexes after UPDATE). *)

val insert :
  Executor.ctx ->
  table:string ->
  columns:string list ->
  rows:Sqlast.Ast.expr list list ->
  action:Sqlast.Ast.conflict_action ->
  (int, Errors.t) result
(** Returns the number of rows actually inserted. *)

val update :
  Executor.ctx ->
  table:string ->
  assignments:(string * Sqlast.Ast.expr) list ->
  where:Sqlast.Ast.expr option ->
  action:Sqlast.Ast.conflict_action ->
  (int, Errors.t) result

val delete :
  Executor.ctx ->
  table:string ->
  where:Sqlast.Ast.expr option ->
  (int, Errors.t) result

(** Remove a row from the heap and every index of its table. *)
val remove_row :
  Executor.ctx ->
  Storage.Catalog.table_state ->
  Storage.Row.t ->
  (unit, Errors.t) result
