type code =
  | Syntax_error
  | No_such_table
  | No_such_column
  | No_such_index
  | No_such_view
  | Object_exists
  | Ambiguous_column
  | Unique_violation
  | Not_null_violation
  | Check_violation
  | Type_error
  | Out_of_range
  | Division_by_zero
  | Invalid_function
  | Invalid_option
  | Malformed_database
  | Internal_error
  | Unsupported
  | Txn_state
[@@deriving show { with_path = false }, eq]

type t = { code : code; message : string }

let pp fmt t = Format.fprintf fmt "[%s] %s" (show_code t.code) t.message
let show t = Format.asprintf "%a" pp t
let make code message = { code; message }
let makef code fmt = Format.kasprintf (fun message -> { code; message }) fmt

type severity = Ordinary | Corruption | Internal

let severity t =
  match t.code with
  | Malformed_database -> Corruption
  | Internal_error -> Internal
  | Syntax_error | No_such_table | No_such_column | No_such_index
  | No_such_view | Object_exists | Ambiguous_column | Unique_violation
  | Not_null_violation | Check_violation | Type_error | Out_of_range
  | Division_by_zero | Invalid_function | Invalid_option | Unsupported
  | Txn_state ->
      Ordinary

exception Crash of string
