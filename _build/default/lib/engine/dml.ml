open Sqlval
module A = Sqlast.Ast

let ( let* ) = Result.bind

let cov (ctx : Executor.ctx) point =
  match ctx.Executor.coverage with None -> () | Some c -> Coverage.hit c point

let bug (ctx : Executor.ctx) b = Bug.on ctx.Executor.bugs b
let err code fmt = Errors.makef code fmt

let find_table (ctx : Executor.ctx) table =
  match Storage.Catalog.find_table ctx.Executor.catalog table with
  | Some ts -> Ok ts
  | None ->
      if Storage.Catalog.view_exists ctx.Executor.catalog table then
        Error (err Errors.Unsupported "cannot modify view %s" table)
      else Error (err Errors.No_such_table "no such table: %s" table)

(* ------------------------------------------------------------------ *)
(* Index maintenance helpers                                            *)

let indexes_of ctx (ts : Storage.Catalog.table_state) =
  Storage.Catalog.indexes_on ctx.Executor.catalog
    ts.Storage.Catalog.schema.Storage.Schema.table_name

let add_row_to_indexes ctx ts (row : Storage.Row.t) =
  let rec go = function
    | [] -> Ok ()
    | ix :: rest ->
        let* included = Ddl.row_in_partial ctx ts ix row in
        if included then begin
          let* key = Ddl.index_key_for_row ctx ts ix row in
          Storage.Index.add ix ~key ~rowid:row.Storage.Row.rowid;
          go rest
        end
        else go rest
  in
  go (indexes_of ctx ts)

let remove_row_from_indexes ctx ts (row : Storage.Row.t) =
  let rec go = function
    | [] -> Ok ()
    | ix :: rest ->
        let* included = Ddl.row_in_partial ctx ts ix row in
        if included then begin
          let* key = Ddl.index_key_for_row ctx ts ix row in
          ignore
            (Storage.Index.remove ix ~key ~rowid:row.Storage.Row.rowid);
          go rest
        end
        else go rest
  in
  go (indexes_of ctx ts)

let remove_row ctx ts (row : Storage.Row.t) =
  let* () = remove_row_from_indexes ctx ts row in
  Storage.Heap.delete ts.Storage.Catalog.heap row.Storage.Row.rowid;
  Ok ()

(* rollback helper: undo a partially indexed row without reporting further
   errors (used when index-key evaluation fails mid-insert/update, keeping
   statements atomic like a real engine) *)
let best_effort_unindex ctx ts (row : Storage.Row.t) =
  List.iter
    (fun ix ->
      match Ddl.index_key_for_row ctx ts ix row with
      | Ok key ->
          ignore (Storage.Index.remove ix ~key ~rowid:row.Storage.Row.rowid)
      | Error _ -> ())
    (indexes_of ctx ts)

(* The implicit primary-key index is the first autoindex over the PK
   columns; used by the Listing 4 injection. *)
let pk_index ctx (ts : Storage.Catalog.table_state) =
  let schema = ts.Storage.Catalog.schema in
  if schema.Storage.Schema.primary_key = [] then None
  else
    indexes_of ctx ts
    |> List.find_opt (fun ix ->
           ix.Storage.Index.unique
           && List.map
                (fun (ic : A.indexed_column) ->
                  match ic.A.ic_expr with
                  | A.Col { column; _ } -> String.lowercase_ascii column
                  | _ -> "?")
                ix.Storage.Index.definition
              = List.map String.lowercase_ascii schema.Storage.Schema.primary_key)

(* Conflicting rowids for a candidate row across all unique indexes;
   returns (index, conflicting rowids) pairs. *)
let unique_conflicts_for ctx ts (row : Storage.Row.t) =
  let schema = ts.Storage.Catalog.schema in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | ix :: rest ->
        if not ix.Storage.Index.unique then go acc rest
        else
          let* included = Ddl.row_in_partial ctx ts ix row in
          if not included then go acc rest
          else
            let* key = Ddl.index_key_for_row ctx ts ix row in
            (* Listing 4 injection: on a WITHOUT ROWID table whose PK
               column also carries a NOCASE index, the PK probe folds
               case *)
            let key =
              let is_pk_ix =
                match pk_index ctx ts with
                | Some pk -> pk.Storage.Index.index_name = ix.Storage.Index.index_name
                | None -> false
              in
              if
                is_pk_ix && schema.Storage.Schema.without_rowid
                && Dialect.equal ctx.Executor.dialect Dialect.Sqlite_like
                && bug ctx Bug.Sq_nocase_unique_pk_collapse
                &&
                (* another index on the same leading column uses NOCASE *)
                List.exists
                  (fun other ->
                    other.Storage.Index.index_name
                    <> ix.Storage.Index.index_name
                    && Array.exists
                         (fun c -> Collation.equal c Collation.Nocase)
                         other.Storage.Index.collations)
                  (indexes_of ctx ts)
              then
                Array.map
                  (fun v ->
                    match v with
                    | Value.Text s ->
                        Value.Text (Collation.key Collation.Nocase s)
                    | _ -> v)
                  key
              else key
            in
            let conflicts =
              Storage.Index.find_rowids ix key
              |> List.filter (fun id -> not (Int64.equal id row.Storage.Row.rowid))
            in
            let conflicts =
              if Array.exists Value.is_null key then [] else conflicts
            in
            (* the buggy folded key may not hit the binary index entries:
               probe under NOCASE manually *)
            let conflicts =
              if conflicts = [] && Array.exists
                   (fun v -> match v with Value.Text _ -> true | _ -> false)
                   key
                 && schema.Storage.Schema.without_rowid
                 && bug ctx Bug.Sq_nocase_unique_pk_collapse
                 && Dialect.equal ctx.Executor.dialect Dialect.Sqlite_like
                 && (match pk_index ctx ts with
                    | Some pk ->
                        pk.Storage.Index.index_name
                        = ix.Storage.Index.index_name
                    | None -> false)
                 && List.exists
                      (fun other ->
                        other.Storage.Index.index_name
                        <> ix.Storage.Index.index_name
                        && Array.exists
                             (fun c -> Collation.equal c Collation.Nocase)
                             other.Storage.Index.collations)
                      (indexes_of ctx ts)
              then begin
                let acc = ref [] in
                Storage.Index.iter
                  (fun k rowid ->
                    if
                      (not (Int64.equal rowid row.Storage.Row.rowid))
                      && Array.length k = Array.length key
                      && Array.for_all2
                           (fun a b ->
                             match (a, b) with
                             | Value.Text x, Value.Text y ->
                                 Collation.equal_under Collation.Nocase x y
                             | _ -> Value.equal a b)
                           k key
                    then acc := rowid :: !acc)
                  ix;
                !acc
              end
              else conflicts
            in
            if conflicts = [] then go acc rest
            else go ((ix, conflicts) :: acc) rest
  in
  go [] (indexes_of ctx ts)

let unique_error (ts : Storage.Catalog.table_state) (ix : Storage.Index.t) =
  let col =
    match ix.Storage.Index.definition with
    | { A.ic_expr = A.Col { column; _ }; _ } :: _ -> column
    | _ -> ix.Storage.Index.index_name
  in
  err Errors.Unique_violation "UNIQUE constraint failed: %s.%s"
    ts.Storage.Catalog.schema.Storage.Schema.table_name col

(* ------------------------------------------------------------------ *)
(* Value preparation                                                    *)

let not_null_check (ctx : Executor.ctx) (schema : Storage.Schema.table) values
    =
  let rec go i =
    if i >= Array.length schema.Storage.Schema.columns then Ok ()
    else
      let col = schema.Storage.Schema.columns.(i) in
      if col.Storage.Schema.not_null && Value.is_null values.(i) then begin
        cov ctx "dml.not_null_check";
        Error
          (err Errors.Not_null_violation "NOT NULL constraint failed: %s.%s"
             schema.Storage.Schema.table_name col.Storage.Schema.name)
      end
      else go (i + 1)
  in
  go 0

(* CHECK constraint enforcement: a check passes when it evaluates TRUE or
   NULL (SQL semantics); the sqlite pragma ignore_check_constraints skips
   enforcement entirely. *)
let check_constraints (ctx : Executor.ctx) (schema : Storage.Schema.table)
    values =
  let skip =
    Dialect.equal ctx.Executor.dialect Dialect.Sqlite_like
    &&
    match Options.get ctx.Executor.options "ignore_check_constraints" with
    | Some (Value.Int i) -> i <> 0L
    | Some (Value.Bool b) -> b
    | _ -> false
  in
  if skip || schema.Storage.Schema.checks = [] then Ok ()
  else begin
    cov ctx "dml.check_constraint";
    let row = Storage.Row.make ~rowid:0L values in
    let env = Ddl.row_env ctx schema row in
    let rec go = function
      | [] -> Ok ()
      | check :: rest -> (
          match Eval.eval_tvl env check with
          | Ok (Tvl.True | Tvl.Unknown) -> go rest
          | Ok Tvl.False ->
              Error
                (err Errors.Check_violation "CHECK constraint failed: %s"
                   schema.Storage.Schema.table_name)
          | Error e -> Error e)
    in
    go schema.Storage.Schema.checks
  end

(* Coerce one value into its column, per dialect. *)
let store_value (ctx : Executor.ctx) (col : Storage.Schema.column) v =
  Result.map_error
    (fun msg -> Errors.make Errors.Type_error msg)
    (Coerce.store ctx.Executor.dialect col.Storage.Schema.ty v)

(* sqlite: a single-column INTEGER PRIMARY KEY is an alias for the rowid;
   inserting NULL assigns the next rowid *)
let rowid_alias_column (ctx : Executor.ctx) (schema : Storage.Schema.table) =
  if
    Dialect.equal ctx.Executor.dialect Dialect.Sqlite_like
    && (not schema.Storage.Schema.without_rowid)
  then
    match schema.Storage.Schema.primary_key with
    | [ pk ] -> (
        match Storage.Schema.find_column schema pk with
        | Some (i, col) -> (
            match col.Storage.Schema.ty with
            | Datatype.Int { width = Datatype.Regular; unsigned = false } ->
                Some i
            | _ -> None)
        | None -> None)
    | _ -> None
  else None

(* ------------------------------------------------------------------ *)
(* INSERT                                                               *)

let insert ctx ~table ~columns ~rows ~action =
  cov ctx "dml.insert";
  (match action with
  | A.On_conflict_ignore -> cov ctx "dml.insert_ignore"
  | A.On_conflict_replace -> cov ctx "dml.insert_replace"
  | A.On_conflict_abort -> ());
  let* ts = find_table ctx table in
  let schema = ts.Storage.Catalog.schema in
  let ncols = Array.length schema.Storage.Schema.columns in
  (* map provided column names to indices *)
  let* targets =
    if columns = [] then
      Ok (List.init ncols (fun i -> i))
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest -> (
            match Storage.Schema.find_column schema c with
            | Some (i, _) -> go (i :: acc) rest
            | None ->
                Error
                  (err Errors.No_such_column "table %s has no column named %s"
                     table c))
      in
      go [] columns
  in
  let env = Executor.eval_env ctx in
  let insert_one exprs : (bool, Errors.t) result =
    if List.length exprs <> List.length targets then
      Error
        (err Errors.Syntax_error "%d values for %d columns" (List.length exprs)
           (List.length targets))
    else begin
      (* start from defaults/NULLs *)
      let values = Array.make ncols Value.Null in
      let* () =
        let rec defaults i =
          if i >= ncols then Ok ()
          else
            let col = schema.Storage.Schema.columns.(i) in
            let* () =
              match col.Storage.Schema.default with
              | Some d when not (List.mem i targets) ->
                  cov ctx "dml.default_value";
                  let* v = Eval.eval env d in
                  let* v = store_value ctx col v in
                  values.(i) <- v;
                  Ok ()
              | _ -> Ok ()
            in
            (* postgres SERIAL auto-assignment *)
            (match col.Storage.Schema.ty with
            | Datatype.Serial when not (List.mem i targets) ->
                values.(i) <- Value.Int schema.Storage.Schema.serial_next;
                schema.Storage.Schema.serial_next <-
                  Int64.add schema.Storage.Schema.serial_next 1L
            | _ -> ());
            defaults (i + 1)
        in
        defaults 0
      in
      let* () =
        let rec assign targets exprs =
          match (targets, exprs) with
          | [], [] -> Ok ()
          | i :: ts', e :: es ->
              let col = schema.Storage.Schema.columns.(i) in
              let* v = Eval.eval env e in
              let* v =
                match store_value ctx col v with
                | Ok v -> Ok v
                | Error e ->
                    if action = A.On_conflict_ignore then Ok Value.Null
                      (* mysql non-strict IGNORE: NULL fallback *)
                    else Error e
              in
              (* injected (intended-class): INSERT IGNORE still errors on
                 clamped out-of-range values *)
              let* () =
                if
                  action = A.On_conflict_ignore
                  && Dialect.equal ctx.Executor.dialect Dialect.Mysql_like
                  && bug ctx Bug.My_intended_ignore_clamp
                  &&
                  match (col.Storage.Schema.ty, v) with
                  | Datatype.Int { width; unsigned = false }, Value.Int stored
                    -> (
                      let lo, hi = Datatype.int_range width in
                      (stored = lo || stored = hi)
                      &&
                      match Eval.eval env e with
                      | Ok (Value.Int orig) -> orig < lo || orig > hi
                      | _ -> false)
                  | _ -> false
                then
                  Error
                    (err Errors.Internal_error
                       "Data truncated for column '%s' despite IGNORE"
                       col.Storage.Schema.name)
                else Ok ()
              in
              values.(i) <- v;
              assign ts' es
          | _ -> Error (err Errors.Syntax_error "values/columns arity mismatch")
        in
        assign targets exprs
      in
      (* sqlite rowid alias: NULL primary key auto-assigns *)
      (match rowid_alias_column ctx schema with
      | Some i when Value.is_null values.(i) ->
          values.(i) <- Value.Int ts.Storage.Catalog.heap.Storage.Heap.next_rowid
      | _ -> ());
      let* () =
        match not_null_check ctx schema values with
        | Ok () -> Ok ()
        | Error _ when action = A.On_conflict_ignore -> Ok () (* skip row *)
        | Error e -> Error e
      in
      let* () =
        match check_constraints ctx schema values with
        | Ok () -> Ok ()
        | Error _ when action = A.On_conflict_ignore -> Ok ()
        | Error e -> Error e
      in
      (* second chance for IGNORE: re-check and skip *)
      if
        Result.is_error (not_null_check ctx schema values)
        || Result.is_error (check_constraints ctx schema values)
      then Ok false
      else begin
        let candidate =
          Storage.Row.make
            ~rowid:ts.Storage.Catalog.heap.Storage.Heap.next_rowid values
        in
        cov ctx "dml.unique_check";
        let* conflicts = unique_conflicts_for ctx ts candidate in
        match (conflicts, action) with
        | [], _ -> (
            let row = Storage.Heap.insert ts.Storage.Catalog.heap values in
            match add_row_to_indexes ctx ts row with
            | Ok () -> Ok true
            | Error e ->
                (* atomicity: index-key evaluation failed, undo the row *)
                best_effort_unindex ctx ts row;
                Storage.Heap.delete ts.Storage.Catalog.heap row.Storage.Row.rowid;
                Error e)
        | _ :: _, A.On_conflict_ignore -> Ok false
        | (ix, _) :: _, A.On_conflict_abort
          when schema.Storage.Schema.without_rowid
               && bug ctx Bug.Sq_nocase_unique_pk_collapse
               && Dialect.equal ctx.Executor.dialect Dialect.Sqlite_like
               && Option.fold ~none:false
                    ~some:(fun pk ->
                      pk.Storage.Index.index_name = ix.Storage.Index.index_name)
                    (pk_index ctx ts) ->
            (* Listing 4: the insert "succeeds" but the table's primary-key
               b-tree (the WITHOUT ROWID storage) keeps only the first,
               case-folded entry — so scans see one row while the heap (and
               the pivot-row selection) holds both *)
            let row = Storage.Heap.insert ts.Storage.Catalog.heap values in
            let rec add_except = function
              | [] -> Ok ()
              | other :: rest ->
                  if
                    other.Storage.Index.index_name = ix.Storage.Index.index_name
                  then add_except rest
                  else
                    let* included = Ddl.row_in_partial ctx ts other row in
                    if included then begin
                      let* key = Ddl.index_key_for_row ctx ts other row in
                      Storage.Index.add other ~key ~rowid:row.Storage.Row.rowid;
                      add_except rest
                    end
                    else add_except rest
            in
            let* () = add_except (indexes_of ctx ts) in
            Ok true
        | (ix, _) :: _, A.On_conflict_abort -> Error (unique_error ts ix)
        | conflicts, _ ->
            (* OR REPLACE *)
            let victim_ids =
              List.concat_map snd conflicts |> List.sort_uniq Int64.compare
            in
            let* () =
              let rec drop = function
                | [] -> Ok ()
                | id :: rest -> (
                    match Storage.Heap.find ts.Storage.Catalog.heap id with
                    | Some victim ->
                        let* () = remove_row ctx ts victim in
                        drop rest
                    | None -> drop rest)
              in
              drop victim_ids
            in
            (* Listing 10-style corruption: OR REPLACE resolving conflicts
               on two unique indexes at once *)
            if
              action = A.On_conflict_replace
              && List.length conflicts >= 2
              && bug ctx Bug.Sq_or_replace_two_unique_corrupt
              && Dialect.equal ctx.Executor.dialect Dialect.Sqlite_like
            then
              Storage.Catalog.corrupt ctx.Executor.catalog
                "database disk image is malformed";
            let row = Storage.Heap.insert ts.Storage.Catalog.heap values in
            (match add_row_to_indexes ctx ts row with
            | Ok () -> Ok true
            | Error e ->
                best_effort_unindex ctx ts row;
                Storage.Heap.delete ts.Storage.Catalog.heap row.Storage.Row.rowid;
                Error e)
      end
    end
  in
  (* sqlite WITHOUT ROWID + real-affinity PK + blob key: corruption *)
  let* inserted =
    let rec go n = function
      | [] -> Ok n
      | exprs :: rest ->
          let* ok = insert_one exprs in
          go (if ok then n + 1 else n) rest
    in
    go 0 rows
  in
  (if
     Dialect.equal ctx.Executor.dialect Dialect.Sqlite_like
     && bug ctx Bug.Sq_blob_pk_without_rowid_corrupt
     && schema.Storage.Schema.without_rowid
   then
     let pk_cols =
       List.filter_map
         (fun pk -> Storage.Schema.find_column schema pk)
         schema.Storage.Schema.primary_key
     in
     let has_blob_pk =
       Storage.Heap.to_list ts.Storage.Catalog.heap
       |> List.exists (fun (r : Storage.Row.t) ->
              List.exists
                (fun (i, _) ->
                  match Storage.Row.get r i with
                  | Value.Blob _ -> true
                  | _ -> false)
                pk_cols)
     in
     if has_blob_pk then
       Storage.Catalog.corrupt ctx.Executor.catalog
         "database disk image is malformed");
  Ok inserted

(* ------------------------------------------------------------------ *)
(* UPDATE                                                               *)

let update ctx ~table ~assignments ~where ~action =
  cov ctx "dml.update";
  (match action with
  | A.On_conflict_ignore -> cov ctx "dml.update_ignore"
  | A.On_conflict_replace -> cov ctx "dml.update_replace"
  | A.On_conflict_abort -> ());
  let* ts = find_table ctx table in
  let schema = ts.Storage.Catalog.schema in
  (* mysql CSV-engine update defect *)
  let* () =
    if
      Dialect.equal ctx.Executor.dialect Dialect.Mysql_like
      && bug ctx Bug.My_csv_engine_update_error
      && schema.Storage.Schema.engine = Some A.E_csv
    then
      Error
        (err Errors.Internal_error
           "Got error 1 'unknown error' from storage engine CSV")
    else Ok ()
  in
  let* targets =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (c, e) :: rest -> (
          match Storage.Schema.find_column schema c with
          | Some (i, col) -> go ((i, col, e) :: acc) rest
          | None -> Error (err Errors.No_such_column "no such column: %s" c))
    in
    go [] assignments
  in
  let rows = Storage.Heap.to_list ts.Storage.Catalog.heap in
  let skip_partial_maintenance =
    Dialect.equal ctx.Executor.dialect Dialect.Sqlite_like
    && bug ctx Bug.Sq_partial_index_update_skip
  in
  let update_one (row : Storage.Row.t) : (bool, Errors.t) result =
    let env = Ddl.row_env ctx schema row in
    let* matches =
      match where with
      | None -> Ok true
      | Some w -> (
          match Eval.eval_tvl env w with
          | Ok Tvl.True -> Ok true
          | Ok (Tvl.False | Tvl.Unknown) -> Ok false
          | Error e -> Error e)
    in
    if not matches then Ok false
    else begin
      let new_values = Array.copy row.Storage.Row.values in
      let* () =
        let rec apply = function
          | [] -> Ok ()
          | (i, col, e) :: rest ->
              let* v = Eval.eval env e in
              let* v = store_value ctx col v in
              (* taint tracking for the injected postgres index-NULL bug *)
              if
                Dialect.equal ctx.Executor.dialect Dialect.Postgres_like
                && Value.is_null row.Storage.Row.values.(i)
                && not (Value.is_null v)
              then schema.Storage.Schema.tainted_null_update <- true;
              new_values.(i) <- v;
              apply rest
        in
        apply targets
      in
      let constraint_result =
        match not_null_check ctx schema new_values with
        | Error e -> Error e
        | Ok () -> check_constraints ctx schema new_values
      in
      match (constraint_result, action) with
      | Error _, A.On_conflict_ignore -> Ok false (* keep the old row *)
      | Error e, (A.On_conflict_abort | A.On_conflict_replace) -> Error e
      | Ok (), _ ->
      let candidate = Storage.Row.make ~rowid:row.Storage.Row.rowid new_values in
      cov ctx "dml.unique_check";
      (* detach the old row from indexes first so self-conflicts don't
         count; buggy variant skips partial indexes entirely *)
      let maintained_indexes =
        indexes_of ctx ts
        |> List.filter (fun ix ->
               not (skip_partial_maintenance && Storage.Index.is_partial ix))
      in
      let detach r =
        let rec go = function
          | [] -> Ok ()
          | ix :: rest ->
              let* included = Ddl.row_in_partial ctx ts ix r in
              if included then begin
                let* key = Ddl.index_key_for_row ctx ts ix r in
                ignore (Storage.Index.remove ix ~key ~rowid:r.Storage.Row.rowid);
                go rest
              end
              else go rest
        in
        go maintained_indexes
      in
      let attach r =
        let rec go = function
          | [] -> Ok ()
          | ix :: rest ->
              let* included = Ddl.row_in_partial ctx ts ix r in
              if included then begin
                let* key = Ddl.index_key_for_row ctx ts ix r in
                Storage.Index.add ix ~key ~rowid:r.Storage.Row.rowid;
                go rest
              end
              else go rest
        in
        go maintained_indexes
      in
      let* () = detach row in
      let* conflicts = unique_conflicts_for ctx ts candidate in
      match (conflicts, action) with
      | [], _ -> (
          ignore
            (Storage.Heap.insert_with_rowid ts.Storage.Catalog.heap
               ~rowid:row.Storage.Row.rowid new_values);
          match attach candidate with
          | Ok () -> Ok true
          | Error e ->
              (* atomicity: restore the previous row version *)
              best_effort_unindex ctx ts candidate;
              ignore
                (Storage.Heap.insert_with_rowid ts.Storage.Catalog.heap
                   ~rowid:row.Storage.Row.rowid row.Storage.Row.values);
              ignore (attach row);
              Error e)
      | _ :: _, A.On_conflict_ignore ->
          (* keep the old row *)
          let* () = attach row in
          Ok false
      | (ix, _) :: _, A.On_conflict_abort ->
          let* () = attach row in
          Error (unique_error ts ix)
      | conflicts, A.On_conflict_replace ->
          let victim_ids =
            List.concat_map snd conflicts |> List.sort_uniq Int64.compare
          in
          let* () =
            let rec drop = function
              | [] -> Ok ()
              | id :: rest -> (
                  match Storage.Heap.find ts.Storage.Catalog.heap id with
                  | Some victim ->
                      let* () = remove_row ctx ts victim in
                      drop rest
                  | None -> drop rest)
            in
            drop victim_ids
          in
          (* Listing 10: UPDATE OR REPLACE over a REAL primary key corrupts
             the database *)
          (if
             Dialect.equal ctx.Executor.dialect Dialect.Sqlite_like
             && bug ctx Bug.Sq_real_pk_or_replace_corrupt
             &&
             List.exists
               (fun pk ->
                 match Storage.Schema.find_column schema pk with
                 | Some (_, col) ->
                     Datatype.affinity col.Storage.Schema.ty = Datatype.A_real
                 | None -> false)
               schema.Storage.Schema.primary_key
           then
             Storage.Catalog.corrupt ctx.Executor.catalog
               "database disk image is malformed");
          ignore
            (Storage.Heap.insert_with_rowid ts.Storage.Catalog.heap
               ~rowid:row.Storage.Row.rowid new_values);
          let* () = attach candidate in
          Ok true
    end
  in
  let rec go n = function
    | [] -> Ok n
    | row :: rest ->
        let* changed = update_one row in
        go (if changed then n + 1 else n) rest
  in
  go 0 rows

(* ------------------------------------------------------------------ *)
(* DELETE                                                               *)

let delete ctx ~table ~where =
  cov ctx "dml.delete";
  let* ts = find_table ctx table in
  let schema = ts.Storage.Catalog.schema in
  let rows = Storage.Heap.to_list ts.Storage.Catalog.heap in
  let rec go n = function
    | [] -> Ok n
    | (row : Storage.Row.t) :: rest ->
        let env = Ddl.row_env ctx schema row in
        let* matches =
          match where with
          | None -> Ok true
          | Some w -> (
              match Eval.eval_tvl env w with
              | Ok Tvl.True -> Ok true
              | Ok (Tvl.False | Tvl.Unknown) -> Ok false
              | Error e -> Error e)
        in
        if matches then
          let* () = remove_row ctx ts row in
          go (n + 1) rest
        else go n rest
  in
  go 0 rows
