(** The engine-side expression evaluator.

    This is the component the paper's containment oracle puts under test:
    most injected containment-class bugs live here (comparison collations,
    implicit conversions, LIKE handling, operator folding).  The PQS oracle
    interpreter ({!Pqs.Interp}) re-implements the same semantics
    independently and is never bug-injected; a qcheck property asserts the
    two agree when the bug set is empty. *)

open Sqlval

(** What an expression's column reference resolves to. *)
type resolved = {
  value : Value.t;
  datatype : Datatype.t;
  collation : Collation.t;
}

type env = {
  dialect : Dialect.t;
  bugs : Bug.set;
  case_sensitive_like : bool;  (** sqlite PRAGMA state *)
  coverage : Coverage.t option;
  resolve :
    table:string option -> column:string -> (resolved, Errors.t) result;
}

(** Environment with no columns in scope (constant expressions). *)
val const_env :
  ?bugs:Bug.set -> ?case_sensitive_like:bool -> Dialect.t -> env

(** Dialect encoding of a three-valued result: INTEGER 0/1/NULL for sqlite
    and mysql, BOOLEAN/NULL for postgres. *)
val bool_value : Dialect.t -> Tvl.t -> Value.t

val eval : env -> Sqlast.Ast.expr -> (Value.t, Errors.t) result

(** Evaluate in boolean context (WHERE/JOIN/HAVING). *)
val eval_tvl : env -> Sqlast.Ast.expr -> (Tvl.t, Errors.t) result

(** Static column metadata of an expression, if it is (a decoration of) a
    column reference; comparison affinity/collation rules consult it. *)
val column_meta :
  env -> Sqlast.Ast.expr -> (Datatype.t * Collation.t) option

(** The collation governing a comparison of [a] with [b] under SQLite's
    rules (explicit COLLATE anywhere wins, else left column's collation,
    else right's, else BINARY). *)
val comparison_collation :
  env -> Sqlast.Ast.expr -> Sqlast.Ast.expr -> Collation.t
