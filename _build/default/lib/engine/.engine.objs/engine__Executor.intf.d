lib/engine/executor.pp.mli: Bug Coverage Dialect Errors Eval Format Options Sqlast Sqlval Storage Value
