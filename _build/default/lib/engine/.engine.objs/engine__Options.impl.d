lib/engine/options.pp.ml: Dialect Errors Hashtbl List Sqlval String Value
