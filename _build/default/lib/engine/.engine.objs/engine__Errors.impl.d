lib/engine/errors.pp.ml: Format Ppx_deriving_runtime
