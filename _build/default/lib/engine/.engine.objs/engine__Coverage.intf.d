lib/engine/coverage.pp.mli:
