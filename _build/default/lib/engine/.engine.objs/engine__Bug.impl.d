lib/engine/bug.pp.ml: Array Dialect List Ppx_deriving_runtime Sqlval String
