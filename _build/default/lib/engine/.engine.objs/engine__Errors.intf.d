lib/engine/errors.pp.mli: Format
