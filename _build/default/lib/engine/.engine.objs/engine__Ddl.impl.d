lib/engine/ddl.pp.ml: Array Bug Collation Coverage Datatype Dialect Errors Eval Executor List Option Printf Result Sqlast Sqlval Storage String Tvl Value
