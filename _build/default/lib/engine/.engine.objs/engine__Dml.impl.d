lib/engine/dml.pp.ml: Array Bug Coerce Collation Coverage Datatype Ddl Dialect Errors Eval Executor Int64 List Option Options Result Sqlast Sqlval Storage String Tvl Value
