lib/engine/coverage.pp.ml: Hashtbl List Option
