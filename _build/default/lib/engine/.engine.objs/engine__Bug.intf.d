lib/engine/bug.pp.mli: Format Sqlval
