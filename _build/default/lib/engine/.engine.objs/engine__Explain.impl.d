lib/engine/explain.pp.ml: Errors Executor List Planner Printf Sqlast Sqlval Storage
