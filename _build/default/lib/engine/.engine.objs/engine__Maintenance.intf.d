lib/engine/maintenance.pp.mli: Errors Executor
