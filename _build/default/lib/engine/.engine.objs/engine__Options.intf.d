lib/engine/options.pp.mli: Errors Sqlval
