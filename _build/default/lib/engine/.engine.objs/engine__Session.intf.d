lib/engine/session.pp.mli: Bug Coverage Dialect Errors Executor Format Options Sqlast Sqlval Storage
