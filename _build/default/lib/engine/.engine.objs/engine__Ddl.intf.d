lib/engine/ddl.pp.mli: Errors Eval Executor Sqlast Sqlval Storage
