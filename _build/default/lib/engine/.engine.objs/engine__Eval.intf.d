lib/engine/eval.pp.mli: Bug Collation Coverage Datatype Dialect Errors Sqlast Sqlval Tvl Value
