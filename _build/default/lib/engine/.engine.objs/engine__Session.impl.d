lib/engine/session.pp.ml: Bug Coverage Ddl Dialect Dml Errors Executor Explain Format Maintenance Options Random Result Sqlast Sqlval Storage String
