lib/engine/dml.pp.mli: Errors Executor Sqlast Storage
