lib/engine/planner.pp.mli: Eval Format Sqlast Sqlval Storage Value
