lib/engine/maintenance.pp.ml: Array Bug Collation Coverage Datatype Ddl Dialect Errors Executor Int64 List Option Options Result Sqlast Sqlval Storage Value
