lib/engine/planner.pp.ml: Array Bug Coerce Collation Coverage Datatype Dialect Eval Format Like_matcher List Sqlast Sqlval Storage String Value
