lib/engine/eval.pp.ml: Buffer Bug Bytes Char Coerce Collation Coverage Datatype Dialect Errors Float Int64 Like_matcher List Numeric Option Printf Result Sqlast Sqlval Stdlib String Tvl Value
