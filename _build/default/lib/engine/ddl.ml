open Sqlval
module A = Sqlast.Ast

let ( let* ) = Result.bind

let cov (ctx : Executor.ctx) point =
  match ctx.Executor.coverage with None -> () | Some c -> Coverage.hit c point

let err code fmt = Errors.makef code fmt

(* ------------------------------------------------------------------ *)
(* Row environments over a single table                                 *)

let row_env (ctx : Executor.ctx) (schema : Storage.Schema.table)
    (row : Storage.Row.t) : Eval.env =
  let resolve ~table ~column =
    let ok_table =
      match table with
      | None -> true
      | Some t ->
          String.lowercase_ascii t
          = String.lowercase_ascii schema.Storage.Schema.table_name
    in
    if not ok_table then
      Error (err Errors.No_such_table "no such table: %s" (Option.value ~default:"?" table))
    else
      match Storage.Schema.find_column schema column with
      | Some (i, col) ->
          Ok
            {
              Eval.value = Storage.Row.get row i;
              datatype = col.Storage.Schema.ty;
              collation = col.Storage.Schema.collation;
            }
      | None -> Error (err Errors.No_such_column "no such column: %s" column)
  in
  { (Executor.eval_env ctx) with Eval.resolve }

(* ------------------------------------------------------------------ *)
(* Index key computation                                                *)

let resolved_collations (schema : Storage.Schema.table)
    (definition : A.indexed_column list) : Collation.t array =
  Array.of_list
    (List.map
       (fun (ic : A.indexed_column) ->
         match ic.A.ic_collate with
         | Some c -> c
         | None -> (
             match ic.A.ic_expr with
             | A.Col { column; _ } -> (
                 match Storage.Schema.find_column schema column with
                 | Some (_, col) -> col.Storage.Schema.collation
                 | None -> Collation.Binary)
             | _ -> Collation.Binary))
       definition)

let index_key_for_row ctx (ts : Storage.Catalog.table_state)
    (ix : Storage.Index.t) (row : Storage.Row.t) :
    (Value.t array, Errors.t) result =
  let env = row_env ctx ts.Storage.Catalog.schema row in
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | (ic : A.indexed_column) :: rest ->
        let* v = Eval.eval env ic.A.ic_expr in
        go (v :: acc) rest
  in
  go [] ix.Storage.Index.definition

let row_in_partial ctx (ts : Storage.Catalog.table_state)
    (ix : Storage.Index.t) (row : Storage.Row.t) : (bool, Errors.t) result =
  match ix.Storage.Index.where with
  | None -> Ok true
  | Some pred -> (
      let env = row_env ctx ts.Storage.Catalog.schema row in
      match Eval.eval_tvl env pred with
      | Ok Tvl.True -> Ok true
      | Ok (Tvl.False | Tvl.Unknown) -> Ok false
      | Error e -> Error e)

let build_index_entries ctx (ts : Storage.Catalog.table_state)
    (ix : Storage.Index.t) : (unit, Errors.t) result =
  Storage.Index.clear ix;
  let rows = Storage.Heap.to_list ts.Storage.Catalog.heap in
  let rec go = function
    | [] -> Ok ()
    | row :: rest ->
        let* included = row_in_partial ctx ts ix row in
        if not included then go rest
        else
          let* key = index_key_for_row ctx ts ix row in
          let conflicts =
            Storage.Index.unique_conflicts ix ~key ~rowid:row.Storage.Row.rowid
          in
          if conflicts <> [] then
            Error
              (err Errors.Unique_violation "UNIQUE constraint failed: %s.%s"
                 ts.Storage.Catalog.schema.Storage.Schema.table_name
                 ix.Storage.Index.index_name)
          else begin
            Storage.Index.add ix ~key ~rowid:row.Storage.Row.rowid;
            go rest
          end
  in
  go rows

(* ------------------------------------------------------------------ *)
(* CREATE TABLE                                                         *)

let check_column_type (ctx : Executor.ctx) (c : A.column_def) =
  match (ctx.Executor.dialect, c.A.col_type) with
  | Dialect.Sqlite_like, Datatype.Serial ->
      Error (err Errors.Syntax_error "SERIAL is not supported by sqlite")
  | Dialect.Sqlite_like, Datatype.Int { unsigned = true; _ } ->
      Error (err Errors.Syntax_error "unsigned types are mysql-specific")
  | Dialect.Sqlite_like, _ -> Ok ()
  | Dialect.Mysql_like, Datatype.Any ->
      Error (err Errors.Syntax_error "column %s requires a type" c.A.col_name)
  | Dialect.Mysql_like, Datatype.Serial ->
      Error (err Errors.Syntax_error "SERIAL shorthand not modeled for mysql")
  | Dialect.Mysql_like, _ -> Ok ()
  | Dialect.Postgres_like, Datatype.Any ->
      Error (err Errors.Syntax_error "column %s requires a type" c.A.col_name)
  | Dialect.Postgres_like, Datatype.Int { unsigned = true; _ } ->
      Error (err Errors.Syntax_error "unsigned types are mysql-specific")
  | Dialect.Postgres_like, Datatype.Blob ->
      Ok () (* bytea *)
  | Dialect.Postgres_like, _ -> Ok ()

let implicit_index_name table n = Printf.sprintf "%s_autoindex_%d" table n

let create_unique_index_internal ctx (ts : Storage.Catalog.table_state)
    ~name ~columns : (unit, Errors.t) result =
  let schema = ts.Storage.Catalog.schema in
  let definition =
    List.map
      (fun c -> { A.ic_expr = A.col c; ic_collate = None; ic_desc = false })
      columns
  in
  let collations = resolved_collations schema definition in
  let ix =
    Storage.Index.create ~name ~table:schema.Storage.Schema.table_name
      ~unique:true ~definition ~collations ~where:None
  in
  let* () = build_index_entries ctx ts ix in
  Storage.Catalog.add_index ctx.Executor.catalog ix;
  Ok ()

let create_table ctx (ct : A.create_table) : (unit, Errors.t) result =
  cov ctx "ddl.create_table";
  let catalog = ctx.Executor.catalog in
  let name = ct.A.ct_name in
  if Storage.Catalog.table_exists catalog name
     || Storage.Catalog.view_exists catalog name
  then
    if ct.A.ct_if_not_exists then Ok ()
    else Error (err Errors.Object_exists "table %s already exists" name)
  else begin
    (* dialect feature gates *)
    let* () =
      if ct.A.ct_without_rowid then begin
        let has_pk =
          List.exists
            (function
              | A.T_primary_key _ -> true
              | A.T_unique _ | A.T_check _ -> false)
            ct.A.ct_constraints
          || List.exists
               (fun c -> List.mem A.C_primary_key c.A.col_constraints)
               ct.A.ct_columns
        in
        if not (Dialect.equal ctx.Executor.dialect Dialect.Sqlite_like) then
          Error (err Errors.Syntax_error "WITHOUT ROWID is sqlite-specific")
        else if has_pk then begin
          cov ctx "ddl.without_rowid";
          Ok ()
        end
        else
          Error
            (err Errors.Syntax_error
               "PRIMARY KEY missing on table %s WITHOUT ROWID" name)
      end
      else Ok ()
    in
    let* () =
      match ct.A.ct_engine with
      | Some _ when not (Dialect.equal ctx.Executor.dialect Dialect.Mysql_like)
        ->
          Error (err Errors.Syntax_error "ENGINE is mysql-specific")
      | _ -> Ok ()
    in
    let* parent =
      match ct.A.ct_inherits with
      | None -> Ok None
      | Some p ->
          if not (Dialect.equal ctx.Executor.dialect Dialect.Postgres_like)
          then Error (err Errors.Syntax_error "INHERITS is postgres-specific")
          else (
            cov ctx "ddl.inherits";
            match Storage.Catalog.find_table catalog p with
            | Some ts -> Ok (Some ts.Storage.Catalog.schema)
            | None -> Error (err Errors.No_such_table "no such table: %s" p))
    in
    let rec check_cols = function
      | [] -> Ok ()
      | c :: rest ->
          let* () = check_column_type ctx c in
          if c.A.col_type = Datatype.Serial then cov ctx "ddl.serial";
          check_cols rest
    in
    let* () = check_cols ct.A.ct_columns in
    (* duplicate column names *)
    let names = List.map (fun c -> String.lowercase_ascii c.A.col_name) ct.A.ct_columns in
    let* () =
      if List.length (List.sort_uniq compare names) <> List.length names then
        Error (err Errors.Syntax_error "duplicate column name in table %s" name)
      else Ok ()
    in
    (* primary key resolution *)
    let col_pk =
      List.filter_map
        (fun c ->
          if List.mem A.C_primary_key c.A.col_constraints then Some c.A.col_name
          else None)
        ct.A.ct_columns
    in
    let table_pk =
      List.filter_map
        (function
          | A.T_primary_key cols -> Some cols
          | A.T_unique _ | A.T_check _ -> None)
        ct.A.ct_constraints
    in
    let* primary_key =
      match (col_pk, table_pk) with
      | [], [] -> Ok []
      | pk, [] -> Ok pk
      | [], [ pk ] -> Ok pk
      | _ -> Error (err Errors.Syntax_error "multiple primary keys for table %s" name)
    in
    (* columns: parent's first (postgres merges same-named), then own *)
    let own_columns =
      List.map
        (fun (c : A.column_def) ->
          let collation =
            Option.value ~default:Collation.Binary c.A.col_collate
          in
          let not_null =
            List.mem A.C_not_null c.A.col_constraints
            || (List.exists
                  (fun pk -> String.lowercase_ascii pk = String.lowercase_ascii c.A.col_name)
                  primary_key
               &&
               (* sqlite rowid tables historically allow NULL PKs *)
               (ct.A.ct_without_rowid
               || not (Dialect.equal ctx.Executor.dialect Dialect.Sqlite_like)))
          in
          let default =
            List.find_map
              (function A.C_default e -> Some e | _ -> None)
              c.A.col_constraints
          in
          {
            Storage.Schema.name = c.A.col_name;
            ty = c.A.col_type;
            collation;
            not_null;
            default;
            in_primary_key =
              List.exists
                (fun pk ->
                  String.lowercase_ascii pk = String.lowercase_ascii c.A.col_name)
                primary_key;
            single_unique = List.mem A.C_unique c.A.col_constraints;
          })
        ct.A.ct_columns
    in
    let columns =
      match parent with
      | None -> Array.of_list own_columns
      | Some p ->
          (* postgres: parent columns come first; same-named own columns
             merge into (and are subsumed by) the parent's *)
          let parent_cols = Array.to_list p.Storage.Schema.columns in
          let own_extra =
            List.filter
              (fun (c : Storage.Schema.column) ->
                not
                  (List.exists
                     (fun (pc : Storage.Schema.column) ->
                       String.lowercase_ascii pc.Storage.Schema.name
                       = String.lowercase_ascii c.Storage.Schema.name)
                     parent_cols))
              own_columns
          in
          Array.of_list (parent_cols @ own_extra)
    in
    let table_uniques =
      List.filter_map
        (function
          | A.T_unique cols -> Some cols
          | A.T_primary_key _ | A.T_check _ -> None)
        ct.A.ct_constraints
    in
    (* CHECK constraints: table-level plus column-level, all evaluated in
       row context *)
    let checks =
      List.filter_map
        (function A.T_check e -> Some e | A.T_primary_key _ | A.T_unique _ -> None)
        ct.A.ct_constraints
      @ List.concat_map
          (fun (c : A.column_def) ->
            List.filter_map
              (function A.C_check e -> Some e | _ -> None)
              c.A.col_constraints)
          ct.A.ct_columns
    in
    (* note: as in postgres, the child does NOT inherit the parent's
       primary key or unique constraints — the root of paper Listing 15 *)
    let schema =
      Storage.Schema.make_table ~primary_key
        ~without_rowid:ct.A.ct_without_rowid ?engine:ct.A.ct_engine
        ?inherits:ct.A.ct_inherits ~table_uniques ~checks ~columns name
    in
    let ts = Storage.Catalog.add_table catalog schema in
    (* implicit unique indexes: PK then column uniques then table uniques *)
    let counter = ref 0 in
    let next_name () =
      incr counter;
      implicit_index_name name !counter
    in
    let* () =
      if primary_key = [] then Ok ()
      else
        create_unique_index_internal ctx ts ~name:(next_name ())
          ~columns:primary_key
    in
    let rec make_uniques = function
      | [] -> Ok ()
      | cols :: rest ->
          let* () =
            create_unique_index_internal ctx ts ~name:(next_name ()) ~columns:cols
          in
          make_uniques rest
    in
    let single_uniques =
      List.filter_map
        (fun (c : A.column_def) ->
          if List.mem A.C_unique c.A.col_constraints then Some [ c.A.col_name ]
          else None)
        ct.A.ct_columns
    in
    make_uniques (single_uniques @ table_uniques)
  end

let drop_table ctx ~if_exists name =
  cov ctx "ddl.drop_table";
  let catalog = ctx.Executor.catalog in
  if Storage.Catalog.table_exists catalog name then begin
    (* refuse to drop a parent with children (postgres needs CASCADE) *)
    if Storage.Catalog.children_of catalog name <> [] then
      Error (err Errors.Txn_state "cannot drop table %s: other objects depend on it" name)
    else begin
      ignore (Storage.Catalog.drop_table catalog name);
      Ok ()
    end
  end
  else if if_exists then Ok ()
  else Error (err Errors.No_such_table "no such table: %s" name)

(* ------------------------------------------------------------------ *)
(* ALTER TABLE                                                          *)

let alter_table ctx name (action : A.alter_action) : (unit, Errors.t) result =
  let catalog = ctx.Executor.catalog in
  match Storage.Catalog.find_table catalog name with
  | None -> Error (err Errors.No_such_table "no such table: %s" name)
  | Some ts -> (
      let schema = ts.Storage.Catalog.schema in
      match action with
      | A.Rename_table new_name ->
          cov ctx "ddl.alter_rename_table";
          if Storage.Catalog.table_exists catalog new_name then
            Error (err Errors.Object_exists "table %s already exists" new_name)
          else begin
            catalog.Storage.Catalog.tables <-
              List.map
                (fun (k, v) ->
                  if k = String.lowercase_ascii name then
                    (String.lowercase_ascii new_name, v)
                  else (k, v))
                catalog.Storage.Catalog.tables;
            schema.Storage.Schema.table_name <- new_name;
            (* keep index back-references in sync *)
            catalog.Storage.Catalog.indexes <-
              List.map
                (fun (k, ix) ->
                  if
                    String.lowercase_ascii ix.Storage.Index.on_table
                    = String.lowercase_ascii name
                  then (k, { ix with Storage.Index.on_table = new_name })
                  else (k, ix))
                catalog.Storage.Catalog.indexes;
            Ok ()
          end
      | A.Rename_column { old_name; new_name } -> (
          cov ctx "ddl.alter_rename_column";
          match Storage.Schema.find_column schema old_name with
          | None ->
              Error (err Errors.No_such_column "no such column: %s" old_name)
          | Some (i, col) ->
              if Storage.Schema.find_column schema new_name <> None then
                Error
                  (err Errors.Object_exists "duplicate column name: %s" new_name)
              else begin
                schema.Storage.Schema.columns.(i) <-
                  { col with Storage.Schema.name = new_name };
                schema.Storage.Schema.primary_key <-
                  List.map
                    (fun pk ->
                      if String.lowercase_ascii pk = String.lowercase_ascii old_name
                      then new_name
                      else pk)
                    schema.Storage.Schema.primary_key;
                (* rewrite index definitions; the injected Listing 8 defect
                   leaves expression indexes pointing at the old name *)
                let rename_expr e =
                  A.map_expr
                    (fun node ->
                      match node with
                      | A.Col { table; column }
                        when String.lowercase_ascii column
                             = String.lowercase_ascii old_name ->
                          A.Col { table; column = new_name }
                      | _ -> node)
                    e
                in
                List.iter
                  (fun ix ->
                    let buggy =
                      Dialect.equal ctx.Executor.dialect Dialect.Sqlite_like
                      && Bug.on ctx.Executor.bugs Bug.Sq_alter_rename_expr_index
                      && Storage.Index.is_expression_index ix
                    in
                    if buggy then
                      schema.Storage.Schema.broken_expr_index <- true
                    else begin
                      let definition =
                        List.map
                          (fun (ic : A.indexed_column) ->
                            { ic with A.ic_expr = rename_expr ic.A.ic_expr })
                          ix.Storage.Index.definition
                      in
                      (* mutate in place via functional update trick: the
                         record fields are immutable, so rebuild the index *)
                      let ix' = { ix with Storage.Index.definition } in
                      catalog.Storage.Catalog.indexes <-
                        List.map
                          (fun (k, v) ->
                            if
                              k
                              = String.lowercase_ascii
                                  ix.Storage.Index.index_name
                            then (k, ix')
                            else (k, v))
                          catalog.Storage.Catalog.indexes
                    end)
                  (Storage.Catalog.indexes_on catalog name);
                Ok ()
              end)
      | A.Add_column cd -> (
          cov ctx "ddl.alter_add_column";
          let* () = check_column_type ctx cd in
          match Storage.Schema.find_column schema cd.A.col_name with
          | Some _ ->
              Error
                (err Errors.Object_exists "duplicate column name: %s"
                   cd.A.col_name)
          | None ->
              let default =
                List.find_map
                  (function A.C_default e -> Some e | _ -> None)
                  cd.A.col_constraints
              in
              let* default_value =
                match default with
                | None -> Ok Value.Null
                | Some e ->
                    Eval.eval (Executor.eval_env ctx) e
              in
              let col =
                {
                  Storage.Schema.name = cd.A.col_name;
                  ty = cd.A.col_type;
                  collation =
                    Option.value ~default:Collation.Binary cd.A.col_collate;
                  not_null = List.mem A.C_not_null cd.A.col_constraints;
                  default;
                  in_primary_key = false;
                  single_unique = false;
                }
              in
              if col.Storage.Schema.not_null && default = None
                 && Storage.Heap.row_count ts.Storage.Catalog.heap > 0
              then
                Error
                  (err Errors.Not_null_violation
                     "cannot add NOT NULL column %s without default"
                     cd.A.col_name)
              else begin
                schema.Storage.Schema.checks <-
                  schema.Storage.Schema.checks
                  @ List.filter_map
                      (function A.C_check e -> Some e | _ -> None)
                      cd.A.col_constraints;
                schema.Storage.Schema.columns <-
                  Array.append schema.Storage.Schema.columns [| col |];
                (* widen existing rows *)
                let heap = ts.Storage.Catalog.heap in
                List.iter
                  (fun (r : Storage.Row.t) ->
                    ignore
                      (Storage.Heap.insert_with_rowid heap
                         ~rowid:r.Storage.Row.rowid
                         (Array.append r.Storage.Row.values [| default_value |])))
                  (Storage.Heap.to_list heap);
                Ok ()
              end)
      | A.Drop_column cname -> (
          cov ctx "ddl.alter_drop_column";
          match Storage.Schema.find_column schema cname with
          | None -> Error (err Errors.No_such_column "no such column: %s" cname)
          | Some (i, col) ->
              let indexed =
                Storage.Catalog.indexes_on catalog name
                |> List.exists (fun ix ->
                       List.exists
                         (fun (ic : A.indexed_column) ->
                           A.expr_columns ic.A.ic_expr
                           |> List.exists (fun (_, c) ->
                                  String.lowercase_ascii c
                                  = String.lowercase_ascii cname))
                         ix.Storage.Index.definition)
              in
              if col.Storage.Schema.in_primary_key || indexed then
                Error
                  (err Errors.Syntax_error
                     "cannot drop column %s: used by an index or primary key"
                     cname)
              else if Array.length schema.Storage.Schema.columns <= 1 then
                Error (err Errors.Syntax_error "cannot drop the only column")
              else begin
                schema.Storage.Schema.columns <-
                  Array.of_list
                    (List.filteri
                       (fun j _ -> j <> i)
                       (Array.to_list schema.Storage.Schema.columns));
                let heap = ts.Storage.Catalog.heap in
                List.iter
                  (fun (r : Storage.Row.t) ->
                    let values =
                      Array.of_list
                        (List.filteri
                           (fun j _ -> j <> i)
                           (Array.to_list r.Storage.Row.values))
                    in
                    ignore
                      (Storage.Heap.insert_with_rowid heap
                         ~rowid:r.Storage.Row.rowid values))
                  (Storage.Heap.to_list heap);
                Ok ()
              end))

(* ------------------------------------------------------------------ *)
(* CREATE INDEX / views                                                 *)

let create_index ctx (ci : A.create_index) : (unit, Errors.t) result =
  cov ctx "ddl.create_index";
  let catalog = ctx.Executor.catalog in
  if Storage.Catalog.index_exists catalog ci.A.ci_name then
    if ci.A.ci_if_not_exists then Ok ()
    else Error (err Errors.Object_exists "index %s already exists" ci.A.ci_name)
  else
    match Storage.Catalog.find_table catalog ci.A.ci_table with
    | None -> Error (err Errors.No_such_table "no such table: %s" ci.A.ci_table)
    | Some ts ->
        let schema = ts.Storage.Catalog.schema in
        let* () =
          if ci.A.ci_where <> None then
            if Dialect.equal ctx.Executor.dialect Dialect.Mysql_like then
              Error
                (err Errors.Syntax_error "partial indexes are not supported")
            else begin
              cov ctx "ddl.partial_index_def";
              Ok ()
            end
          else Ok ()
        in
        if ci.A.ci_unique then cov ctx "ddl.unique_index";
        let has_expr =
          List.exists
            (fun (ic : A.indexed_column) ->
              match ic.A.ic_expr with A.Col _ -> false | _ -> true)
            ci.A.ci_columns
        in
        if has_expr then cov ctx "ddl.expr_index";
        if List.exists (fun ic -> ic.A.ic_collate <> None) ci.A.ci_columns then
          cov ctx "ddl.collate_index";
        (* every referenced column must exist *)
        let missing =
          List.concat_map
            (fun (ic : A.indexed_column) -> A.expr_columns ic.A.ic_expr)
            ci.A.ci_columns
          @ (match ci.A.ci_where with
            | Some w -> A.expr_columns w
            | None -> [])
          |> List.filter (fun (_, c) -> Storage.Schema.find_column schema c = None)
        in
        let* () =
          match missing with
          | [] -> Ok ()
          | (_, c) :: _ ->
              Error (err Errors.No_such_column "no such column: %s" c)
        in
        let collations = resolved_collations schema ci.A.ci_columns in
        let ix =
          Storage.Index.create ~name:ci.A.ci_name ~table:ci.A.ci_table
            ~unique:ci.A.ci_unique ~definition:ci.A.ci_columns ~collations
            ~where:ci.A.ci_where
        in
        let* () = build_index_entries ctx ts ix in
        Storage.Catalog.add_index catalog ix;
        Ok ()

let drop_index ctx ~if_exists name =
  cov ctx "ddl.drop_index";
  if Storage.Catalog.drop_index ctx.Executor.catalog name then Ok ()
  else if if_exists then Ok ()
  else Error (err Errors.No_such_index "no such index: %s" name)

let create_view ctx name query =
  cov ctx "ddl.create_view";
  let catalog = ctx.Executor.catalog in
  if Storage.Catalog.view_exists catalog name
     || Storage.Catalog.table_exists catalog name
  then Error (err Errors.Object_exists "view %s already exists" name)
  else
    (* validate by running once *)
    let* _rs = Executor.run_query ctx query in
    Storage.Catalog.add_view catalog
      { Storage.Catalog.view_name = name; view_query = query };
    Ok ()

let drop_view ctx ~if_exists name =
  cov ctx "ddl.drop_view";
  if Storage.Catalog.drop_view ctx.Executor.catalog name then Ok ()
  else if if_exists then Ok ()
  else Error (err Errors.No_such_view "no such view: %s" name)
