(** Engine error model.

    Statements return typed errors with dialect-flavoured message text.  The
    PQS error oracle classifies an error as a bug when it is not in the
    statement's expected list (paper Section 3.3) — corruption and internal
    errors are *never* expected. *)

type code =
  | Syntax_error
  | No_such_table
  | No_such_column
  | No_such_index
  | No_such_view
  | Object_exists  (** table/index/view already exists *)
  | Ambiguous_column
  | Unique_violation
  | Not_null_violation
  | Check_violation
  | Type_error
  | Out_of_range
  | Division_by_zero
  | Invalid_function  (** unknown or dialect-unsupported function/operator *)
  | Invalid_option  (** bad PRAGMA / SET *)
  | Malformed_database  (** database corruption detected *)
  | Internal_error  (** engine invariant failure surfaced to the client *)
  | Unsupported
  | Txn_state  (** BEGIN inside txn, COMMIT outside, ... *)

val pp_code : Format.formatter -> code -> unit
val show_code : code -> string
val equal_code : code -> code -> bool

type t = { code : code; message : string }

val pp : Format.formatter -> t -> unit
val show : t -> string
val make : code -> string -> t
val makef : code -> ('a, Format.formatter, unit, t) format4 -> 'a

(** Severity classes used by the error oracle. *)
type severity =
  | Ordinary  (** may be expected, depending on the statement *)
  | Corruption  (** always a bug: the database is damaged *)
  | Internal  (** always a bug: engine invariant violation *)

val severity : t -> severity

(** The simulated SEGFAULT: raised instead of returned, mirroring a process
    crash (paper's crash oracle; e.g. Listing 14 / CVE-2019-2879). *)
exception Crash of string
