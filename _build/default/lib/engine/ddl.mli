(** Data definition: CREATE/DROP/ALTER TABLE, CREATE/DROP INDEX, views.

    Dialect rules enforced here mirror the features the paper leans on:
    sqlite's untyped columns and WITHOUT ROWID tables, mysql's storage
    engines and unsigned types, postgres's SERIAL, strict typing and table
    inheritance. *)

val create_table :
  Executor.ctx -> Sqlast.Ast.create_table -> (unit, Errors.t) result

val drop_table :
  Executor.ctx -> if_exists:bool -> string -> (unit, Errors.t) result

val alter_table :
  Executor.ctx -> string -> Sqlast.Ast.alter_action -> (unit, Errors.t) result

val create_index :
  Executor.ctx -> Sqlast.Ast.create_index -> (unit, Errors.t) result

val drop_index :
  Executor.ctx -> if_exists:bool -> string -> (unit, Errors.t) result

val create_view :
  Executor.ctx -> string -> Sqlast.Ast.query -> (unit, Errors.t) result

val drop_view :
  Executor.ctx -> if_exists:bool -> string -> (unit, Errors.t) result

(** Evaluation environment resolving columns against one row of a table. *)
val row_env :
  Executor.ctx -> Storage.Schema.table -> Storage.Row.t -> Eval.env

(** Build (or rebuild) the entries of one index from its table's rows;
    shared with REINDEX/VACUUM.  Reports a UNIQUE violation when the
    rebuilt keys conflict. *)
val build_index_entries :
  Executor.ctx ->
  Storage.Catalog.table_state ->
  Storage.Index.t ->
  (unit, Errors.t) result

(** Compute the key tuple of [index] for one row, evaluating expression
    index columns with the engine evaluator; [Error] surfaces evaluation
    failures (e.g. overflow in an expression index). *)
val index_key_for_row :
  Executor.ctx ->
  Storage.Catalog.table_state ->
  Storage.Index.t ->
  Storage.Row.t ->
  (Sqlval.Value.t array, Errors.t) result

(** Does the row satisfy the index's partial predicate (trivially true for
    total indexes)? *)
val row_in_partial :
  Executor.ctx ->
  Storage.Catalog.table_state ->
  Storage.Index.t ->
  Storage.Row.t ->
  (bool, Errors.t) result
