(** Run-time options: sqlite [PRAGMA]s and mysql/postgres [SET] variables.

    The paper's statement mix includes DBMS-specific options (Figure 3's
    OPTION category; Listings 3 and 9 are option bugs), so the engine models
    a small per-dialect option table with defaults and type checking. *)

type t

val create : Sqlval.Dialect.t -> t
val copy : t -> t

(** Known option names for the dialect with their default values. *)
val known : Sqlval.Dialect.t -> (string * Sqlval.Value.t) list

(** Set an option; errors on unknown names or mistyped values. *)
val set : t -> string -> Sqlval.Value.t -> (unit, Errors.t) result

val get : t -> string -> Sqlval.Value.t option

(** Typed accessors for the options with engine-visible semantics. *)
val case_sensitive_like : t -> bool

val reverse_unordered_selects : t -> bool

(** True when [case_sensitive_like] has ever been flipped after session
    start — the trigger condition of paper Listing 9. *)
val like_pragma_touched : t -> bool
