lib/sqlparse/parser.ml: Array Collation Datatype Format Int64 Lexer List Printf Sqlast Sqlval String Value
