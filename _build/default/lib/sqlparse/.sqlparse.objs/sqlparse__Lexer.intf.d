lib/sqlparse/lexer.mli: Format
