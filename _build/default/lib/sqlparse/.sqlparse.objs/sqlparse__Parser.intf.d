lib/sqlparse/parser.mli: Format Sqlast
