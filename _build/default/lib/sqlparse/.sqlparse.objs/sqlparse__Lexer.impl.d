lib/sqlparse/lexer.ml: Buffer Char Format Hashtbl Int64 List Printf String
