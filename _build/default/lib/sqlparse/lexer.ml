type token =
  | IDENT of string
  | KEYWORD of string
  | INT of int64
  | FLOAT of float
  | STRING of string
  | BLOB of string
  | OP of string
  | EOF

let pp_token fmt = function
  | IDENT s -> Format.fprintf fmt "ident(%s)" s
  | KEYWORD s -> Format.fprintf fmt "kw(%s)" s
  | INT i -> Format.fprintf fmt "int(%Ld)" i
  | FLOAT f -> Format.fprintf fmt "float(%g)" f
  | STRING s -> Format.fprintf fmt "str(%S)" s
  | BLOB s -> Format.fprintf fmt "blob(%S)" s
  | OP s -> Format.fprintf fmt "op(%s)" s
  | EOF -> Format.pp_print_string fmt "eof"

let show_token t = Format.asprintf "%a" pp_token t

let equal_token (a : token) (b : token) = a = b

exception Lex_error of string * int

(* Words that are always keywords; everything else lexes as an identifier.
   Dialect-specific words (PRAGMA, ENGINE, INHERITS, ...) are included
   unconditionally — the parser decides what is legal where. *)
let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "LIMIT";
    "OFFSET"; "DISTINCT"; "ALL"; "AS"; "AND"; "OR"; "NOT"; "NULL"; "IS";
    "IN"; "LIKE"; "GLOB"; "ESCAPE"; "BETWEEN"; "CASE"; "WHEN"; "THEN";
    "ELSE"; "END"; "CAST"; "COLLATE"; "CREATE"; "TABLE"; "INDEX"; "VIEW";
    "DROP"; "ALTER"; "RENAME"; "ADD"; "COLUMN"; "TO"; "INSERT"; "INTO";
    "VALUES"; "UPDATE"; "SET"; "DELETE"; "PRIMARY"; "KEY"; "UNIQUE";
    "DEFAULT"; "CHECK"; "REPAIR"; "WITHOUT"; "ROWID"; "ENGINE"; "INHERITS";
    "UNION"; "INTERSECT"; "EXCEPT"; "JOIN"; "LEFT"; "INNER"; "CROSS"; "ON";
    "IF"; "EXISTS"; "VACUUM"; "FULL"; "REINDEX"; "ANALYZE"; "PRAGMA";
    "GLOBAL"; "STATISTICS"; "DISCARD"; "BEGIN"; "COMMIT"; "ROLLBACK";
    "TRUE"; "FALSE"; "ASC"; "DESC"; "IGNORE"; "REPLACE"; "OR"; "ABORT";
    "TRANSACTION"; "DISTINCT"; "UNSIGNED"; "SIGNED"; "CONFLICT"; "DO";
    "NOTHING"; "UPGRADE"; "FOR"; "USING"; "EXPLAIN"; "OUTER";
  ]

let keyword_set =
  let t = Hashtbl.create 97 in
  List.iter (fun k -> Hashtbl.replace t k ()) keywords;
  t

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some input.[!pos + k] else None in
  let cur () = peek 0 in
  let advance () = incr pos in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let error msg = raise (Lex_error (msg, !pos)) in
  let rec skip_ws () =
    match cur () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some '-' when peek 1 = Some '-' ->
        while cur () <> None && cur () <> Some '\n' do
          advance ()
        done;
        skip_ws ()
    | Some '/' when peek 1 = Some '*' ->
        advance ();
        advance ();
        let rec close () =
          match cur () with
          | None -> error "unterminated comment"
          | Some '*' when peek 1 = Some '/' ->
              advance ();
              advance ()
          | Some _ ->
              advance ();
              close ()
        in
        close ();
        skip_ws ()
    | _ -> ()
  in
  let lex_string quote =
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      match cur () with
      | None -> error "unterminated string"
      | Some c when c = quote ->
          if peek 1 = Some quote then begin
            Buffer.add_char buf quote;
            advance ();
            advance ();
            go ()
          end
          else advance ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let lex_number () =
    let start = !pos in
    let is_float = ref false in
    while (match cur () with Some c -> is_digit c | None -> false) do
      advance ()
    done;
    (match (cur (), peek 1) with
    | Some '.', _ ->
        is_float := true;
        advance ();
        while (match cur () with Some c -> is_digit c | None -> false) do
          advance ()
        done
    | _ -> ());
    (match cur () with
    | Some ('e' | 'E') -> (
        match peek 1 with
        | Some c when is_digit c || c = '+' || c = '-' ->
            is_float := true;
            advance ();
            advance ();
            while (match cur () with Some c -> is_digit c | None -> false) do
              advance ()
            done
        | _ -> ())
    | _ -> ());
    let text = String.sub input start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> emit (FLOAT f)
      | None -> error ("bad number: " ^ text)
    else
      match Int64.of_string_opt text with
      | Some i -> emit (INT i)
      | None -> (
          (* integer literal beyond int64 lexes as a float, like sqlite *)
          match float_of_string_opt text with
          | Some f -> emit (FLOAT f)
          | None -> error ("bad number: " ^ text))
  in
  let hex_val c =
    if is_digit c then Char.code c - Char.code '0'
    else if c >= 'a' && c <= 'f' then 10 + Char.code c - Char.code 'a'
    else if c >= 'A' && c <= 'F' then 10 + Char.code c - Char.code 'A'
    else error "bad hex digit"
  in
  let lex_blob () =
    (* at X, next is quote *)
    advance ();
    let hex = lex_string '\'' in
    if String.length hex mod 2 <> 0 then error "odd-length blob literal";
    let buf = Buffer.create (String.length hex / 2) in
    let i = ref 0 in
    while !i < String.length hex do
      Buffer.add_char buf
        (Char.chr ((hex_val hex.[!i] * 16) + hex_val hex.[!i + 1]));
      i := !i + 2
    done;
    emit (BLOB (Buffer.contents buf))
  in
  let rec loop () =
    skip_ws ();
    match cur () with
    | None -> emit EOF
    | Some c ->
        (match c with
        | '\'' -> emit (STRING (lex_string '\''))
        | '"' ->
            (* double-quoted identifier *)
            emit (IDENT (lex_string '"'))
        | '`' -> emit (IDENT (lex_string '`'))
        | ('x' | 'X') when peek 1 = Some '\'' -> lex_blob ()
        | c when is_digit c -> lex_number ()
        | '.' when (match peek 1 with Some d -> is_digit d | None -> false) ->
            lex_number ()
        | c when is_ident_start c ->
            let start = !pos in
            while
              match cur () with Some c -> is_ident_char c | None -> false
            do
              advance ()
            done;
            let word = String.sub input start (!pos - start) in
            let upper = String.uppercase_ascii word in
            if Hashtbl.mem keyword_set upper then emit (KEYWORD upper)
            else emit (IDENT word)
        | _ ->
            let two () =
              match (cur (), peek 1) with
              | Some a, Some b -> Printf.sprintf "%c%c" a b
              | _ -> ""
            in
            let three () =
              match (cur (), peek 1, peek 2) with
              | Some a, Some b, Some c -> Printf.sprintf "%c%c%c" a b c
              | _ -> ""
            in
            if three () = "<=>" then begin
              emit (OP "<=>");
              advance ();
              advance ();
              advance ()
            end
            else if
              List.mem (two ())
                [ "<="; ">="; "<>"; "!="; "=="; "||"; "<<"; ">>" ]
            then begin
              emit (OP (two ()));
              advance ();
              advance ()
            end
            else if String.contains "+-*/%=<>(),.;&|~" c then begin
              emit (OP (String.make 1 c));
              advance ()
            end
            else error (Printf.sprintf "unexpected character %C" c));
        if
          match !tokens with
          | EOF :: _ -> false
          | _ -> true
        then loop ()
  in
  loop ();
  List.rev !tokens
