(** Recursive-descent SQL parser over {!Lexer} tokens.

    The grammar covers the dialect superset that {!Sqlast.Sql_printer}
    emits, so printing then parsing round-trips (property tested).  Errors
    are returned, not raised. *)

type error = { message : string; position : int }

val pp_error : Format.formatter -> error -> unit
val show_error : error -> string

(** Parse one expression (no trailing input allowed). *)
val parse_expr : string -> (Sqlast.Ast.expr, error) result

(** Parse one statement; a trailing [;] is allowed. *)
val parse_stmt : string -> (Sqlast.Ast.stmt, error) result

(** Parse a [;]-separated script. *)
val parse_script : string -> (Sqlast.Ast.stmt list, error) result
