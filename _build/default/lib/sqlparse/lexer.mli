(** SQL lexer: hand-written tokenizer shared by all three dialect
    grammars. *)

type token =
  | IDENT of string  (** bare or quoted identifier *)
  | KEYWORD of string  (** upper-cased reserved word *)
  | INT of int64
  | FLOAT of float
  | STRING of string  (** '...' literal, quotes unescaped *)
  | BLOB of string  (** X'....' literal, decoded bytes *)
  | OP of string  (** operator/punctuation: (, ), =, <=, <=>, ||, ... *)
  | EOF

val pp_token : Format.formatter -> token -> unit
val show_token : token -> string
val equal_token : token -> token -> bool

exception Lex_error of string * int  (** message, byte offset *)

(** Tokenize a full input; raises {!Lex_error} on malformed input.
    SQL comments ([--] and [/* */]) are skipped. *)
val tokenize : string -> token list
