(* The remaining paper listings as engine-level regression tests (the first
   batch lives in test_engine.ml): Listings 3, 8, 9, 11, 16, 17, 18 and the
   Listing 4/10 corruption variants, each checked with the corresponding
   injected bug off (correct behaviour) and on (the paper's symptom). *)

open Sqlval

let session ?(bugs = []) dialect =
  Engine.Session.create ~bugs:(Engine.Bug.set_of_list bugs) dialect

let run s sql =
  match Sqlparse.Parser.parse_script sql with
  | Error e -> Alcotest.failf "parse: %s" (Sqlparse.Parser.show_error e)
  | Ok stmts ->
      List.fold_left
        (fun _last stmt ->
          match Engine.Session.execute s stmt with
          | Ok r -> Ok r
          | Error e -> Error e)
        (Ok Engine.Session.Done) stmts

let expect_ok s sql =
  match run s sql with
  | Ok r -> r
  | Error e -> Alcotest.failf "unexpected error on %s: %s" sql (Engine.Errors.show e)

let expect_error s sql code =
  match run s sql with
  | Ok _ -> Alcotest.failf "expected error on %s" sql
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error code for %s" sql)
        true
        (Engine.Errors.equal_code e.Engine.Errors.code code)

let rows = function
  | Engine.Session.Rows rs -> rs.Engine.Executor.rs_rows
  | _ -> Alcotest.fail "expected rows"

(* Listing 3: SET GLOBAL key_cache_division_limit nondeterministically
   fails.  The injected fault fires with probability 1/4 per statement; we
   retry across sessions/seeds until both outcomes are observed. *)
let test_listing3 () =
  let bugs = [ Engine.Bug.My_set_key_cache_nondet ] in
  let observed_error = ref false and observed_ok = ref false in
  for seed = 1 to 64 do
    let s =
      Engine.Session.create ~seed
        ~bugs:(Engine.Bug.set_of_list bugs)
        Dialect.Mysql_like
    in
    match run s "SET GLOBAL key_cache_division_limit = 100;" with
    | Ok _ -> observed_ok := true
    | Error _ -> observed_error := true
  done;
  Alcotest.(check bool) "sometimes fails" true !observed_error;
  Alcotest.(check bool) "sometimes succeeds" true !observed_ok;
  (* without the bug it always succeeds *)
  for seed = 1 to 16 do
    let s = Engine.Session.create ~seed Dialect.Mysql_like in
    ignore (expect_ok s "SET GLOBAL key_cache_division_limit = 100;")
  done

(* Listing 8 class: ALTER RENAME COLUMN + expression index -> malformed
   schema on REINDEX *)
let test_listing8 () =
  let setup =
    "CREATE TABLE t0(c1, c2);\n\
     INSERT INTO t0(c1, c2) VALUES ('a', 1);\n\
     CREATE INDEX i0 ON t0((c1 || ''));\n\
     ALTER TABLE t0 RENAME COLUMN c1 TO c3;"
  in
  let s = session Dialect.Sqlite_like in
  ignore (expect_ok s setup);
  ignore (expect_ok s "REINDEX;");
  let s = session ~bugs:[ Engine.Bug.Sq_alter_rename_expr_index ] Dialect.Sqlite_like in
  ignore (expect_ok s setup);
  expect_error s "REINDEX;" Engine.Errors.Malformed_database

(* Listing 9: PRAGMA case_sensitive_like + LIKE expression index + VACUUM *)
let test_listing9 () =
  let setup =
    "CREATE TABLE test(c0);\n\
     CREATE INDEX index_0 ON test((c0 LIKE ''));\n\
     PRAGMA case_sensitive_like = 0;"
  in
  let s = session Dialect.Sqlite_like in
  ignore (expect_ok s setup);
  ignore (expect_ok s "VACUUM;");
  let s = session ~bugs:[ Engine.Bug.Sq_pragma_like_index_vacuum ] Dialect.Sqlite_like in
  ignore (expect_ok s setup);
  expect_error s "VACUUM;" Engine.Errors.Malformed_database

(* Listing 11: MEMORY engine rows vanish from cast-bearing joins *)
let test_listing11 () =
  let setup =
    "CREATE TABLE t0(c0 INT);\n\
     CREATE TABLE t1(c0 INT) ENGINE = MEMORY;\n\
     INSERT INTO t0(c0) VALUES (0);\n\
     INSERT INTO t1(c0) VALUES (-1);"
  in
  let q =
    "SELECT * FROM t0, t1 WHERE (CAST(t1.c0 AS UNSIGNED)) > (IFNULL('u', \
     t0.c0));"
  in
  let s = session Dialect.Mysql_like in
  ignore (expect_ok s setup);
  (* correct: CAST(-1 AS UNSIGNED) is huge, IFNULL('u', 0)='u'->0 numeric *)
  Alcotest.(check int) "correct fetches the row" 1
    (List.length (rows (expect_ok s q)));
  let s = session ~bugs:[ Engine.Bug.My_memory_join_cast ] Dialect.Mysql_like in
  ignore (expect_ok s setup);
  Alcotest.(check int) "bug drops the MEMORY rows" 0
    (List.length (rows (expect_ok s q)))

(* Listing 16 class: statistics + expression index -> 'negative bitmapset
   member' on a filtered SELECT *)
let test_listing16 () =
  let setup =
    "CREATE TABLE t0(c0 SERIAL, c1 BOOLEAN);\n\
     CREATE STATISTICS s1 ON c0, c1 FROM t0;\n\
     INSERT INTO t0(c1) VALUES (TRUE);\n\
     ANALYZE;\n\
     CREATE INDEX i0 ON t0((1 + c0));"
  in
  let q = "SELECT * FROM t0 WHERE c1 IS TRUE;" in
  let s = session Dialect.Postgres_like in
  ignore (expect_ok s setup);
  Alcotest.(check int) "correct fetches" 1 (List.length (rows (expect_ok s q)));
  let s = session ~bugs:[ Engine.Bug.Pg_stats_expr_index_bitmapset ] Dialect.Postgres_like in
  ignore (expect_ok s setup);
  expect_error s q Engine.Errors.Internal_error

(* Listing 17 class: NULL overwritten by UPDATE + index -> 'found
   unexpected null value in index' on an ordered comparison *)
let test_listing17 () =
  let setup =
    "CREATE TABLE t0(c0 TEXT);\n\
     INSERT INTO t0(c0) VALUES ('b'), ('a');\n\
     INSERT INTO t0(c0) VALUES (NULL);\n\
     UPDATE t0 SET c0 = 'a';\n\
     CREATE INDEX i0 ON t0(c0);"
  in
  let q = "SELECT * FROM t0 WHERE 'baaaa' > c0;" in
  let s = session Dialect.Postgres_like in
  ignore (expect_ok s setup);
  Alcotest.(check int) "correct fetches all" 3 (List.length (rows (expect_ok s q)));
  let s = session ~bugs:[ Engine.Bug.Pg_index_null_value_error ] Dialect.Postgres_like in
  ignore (expect_ok s setup);
  expect_error s q Engine.Errors.Internal_error

(* Listing 18: boundary value + (1 + c0) index -> VACUUM 'integer out of
   range' (classified intended by the developers) *)
let test_listing18 () =
  let setup =
    "CREATE TABLE t1(c0 INT);\n\
     INSERT INTO t1(c0) VALUES (2147483647);\n\
     CREATE INDEX i0 ON t1((1 + c0));"
  in
  let s = session Dialect.Postgres_like in
  ignore (expect_ok s setup);
  ignore (expect_ok s "VACUUM FULL;");
  let s = session ~bugs:[ Engine.Bug.Pg_intended_vacuum_overflow ] Dialect.Postgres_like in
  ignore (expect_ok s setup);
  expect_error s "VACUUM FULL;" Engine.Errors.Out_of_range

(* the Listing 10 family: corruption via OR REPLACE over two unique
   indexes *)
let test_two_unique_corruption () =
  let setup =
    "CREATE TABLE t0(c0 UNIQUE, c1 UNIQUE);\n\
     INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, 'b');"
  in
  let conflict = "INSERT OR REPLACE INTO t0(c0, c1) VALUES (1, 'b');" in
  let s = session Dialect.Sqlite_like in
  ignore (expect_ok s setup);
  ignore (expect_ok s conflict);
  Alcotest.(check int) "replace removed both victims" 1
    (List.length (rows (expect_ok s "SELECT * FROM t0;")));
  let s = session ~bugs:[ Engine.Bug.Sq_or_replace_two_unique_corrupt ] Dialect.Sqlite_like in
  ignore (expect_ok s setup);
  ignore (expect_ok s conflict);
  expect_error s "SELECT * FROM t0;" Engine.Errors.Malformed_database

(* CSV-engine UPDATE internal error (mysql engine family) *)
let test_csv_engine () =
  let setup =
    "CREATE TABLE t0(c0 INT) ENGINE = CSV;\nINSERT INTO t0(c0) VALUES (1);"
  in
  let s = session Dialect.Mysql_like in
  ignore (expect_ok s setup);
  ignore (expect_ok s "UPDATE t0 SET c0 = 2;");
  let s = session ~bugs:[ Engine.Bug.My_csv_engine_update_error ] Dialect.Mysql_like in
  ignore (expect_ok s setup);
  expect_error s "UPDATE t0 SET c0 = 2;" Engine.Errors.Internal_error

let () =
  Alcotest.run "listings2"
    [
      ( "paper listings (second batch)",
        [
          Alcotest.test_case "listing 3 (nondeterministic SET)" `Quick test_listing3;
          Alcotest.test_case "listing 8 (rename + expr index)" `Quick test_listing8;
          Alcotest.test_case "listing 9 (pragma + vacuum)" `Quick test_listing9;
          Alcotest.test_case "listing 11 (memory engine join)" `Quick test_listing11;
          Alcotest.test_case "listing 16 (bitmapset)" `Quick test_listing16;
          Alcotest.test_case "listing 17 (index null)" `Quick test_listing17;
          Alcotest.test_case "listing 18 (vacuum overflow)" `Quick test_listing18;
          Alcotest.test_case "two-unique OR REPLACE corruption" `Quick
            test_two_unique_corruption;
          Alcotest.test_case "csv engine update" `Quick test_csv_engine;
        ] );
    ]
