(* Golden semantics tests: each case pins a documented dialect behaviour
   to an exact result, readable as a specification of the engine.  The
   scripts run through the SQL text front end, so they also exercise the
   lexer/parser on realistic statements. *)

open Sqlval

type outcome = Rows of string list | Err of Engine.Errors.code

type case = {
  name : string;
  dialect : Dialect.t;
  script : string;  (** setup; must succeed *)
  query : string;
  expect : outcome;
}

let sq = Dialect.Sqlite_like
let my = Dialect.Mysql_like
let pg = Dialect.Postgres_like

let cases =
  [
    (* --- three-valued logic --- *)
    {
      name = "null propagates through comparison";
      dialect = sq;
      script = "CREATE TABLE t(c); INSERT INTO t VALUES (NULL);";
      query = "SELECT c = NULL, c <> NULL, c IS NULL FROM t";
      expect = Rows [ "NULL|NULL|1" ];
    };
    {
      name = "and/or kleene tables";
      dialect = sq;
      script = "";
      query = "SELECT NULL AND 0, NULL AND 1, NULL OR 1, NULL OR 0";
      expect = Rows [ "0|NULL|1|NULL" ];
    };
    (* --- sqlite IS over scalars --- *)
    {
      name = "IS is null-safe equality";
      dialect = sq;
      script = "";
      query = "SELECT NULL IS NULL, NULL IS 1, 1 IS 1, 1 IS NOT 2";
      expect = Rows [ "1|0|1|1" ];
    };
    (* --- affinity --- *)
    {
      name = "INT affinity converts text on insert";
      dialect = sq;
      script = "CREATE TABLE t(c INT); INSERT INTO t VALUES ('42');";
      query = "SELECT TYPEOF(c), c + 1 FROM t";
      expect = Rows [ "integer|43" ];
    };
    {
      name = "no affinity keeps text";
      dialect = sq;
      script = "CREATE TABLE t(c); INSERT INTO t VALUES ('42');";
      query = "SELECT TYPEOF(c) FROM t";
      expect = Rows [ "text" ];
    };
    (* --- collations --- *)
    {
      name = "nocase equality";
      dialect = sq;
      script = "CREATE TABLE t(c TEXT COLLATE NOCASE); INSERT INTO t VALUES ('AbC');";
      query = "SELECT COUNT(*) FROM t WHERE c = 'aBc'";
      expect = Rows [ "1" ];
    };
    {
      name = "rtrim ignores trailing spaces both sides";
      dialect = sq;
      script = "CREATE TABLE t(c TEXT COLLATE RTRIM); INSERT INTO t VALUES ('x  ');";
      query = "SELECT COUNT(*) FROM t WHERE c = 'x'";
      expect = Rows [ "1" ];
    };
    (* --- arithmetic --- *)
    {
      name = "sqlite integer overflow promotes to real";
      dialect = sq;
      script = "";
      query = "SELECT 9223372036854775807 + 1 > 0";
      expect = Rows [ "1" ];
    };
    {
      name = "mysql integer overflow errors";
      dialect = my;
      script = "";
      query = "SELECT 9223372036854775807 + 1";
      expect = Err Engine.Errors.Out_of_range;
    };
    {
      name = "sqlite text minus int is exact";
      dialect = sq;
      script = "";
      query = "SELECT '' - 2851427734582196970";
      expect = Rows [ "-2851427734582196970" ];
    };
    {
      name = "modulo by zero is NULL in sqlite";
      dialect = sq;
      script = "";
      query = "SELECT 5 % 0";
      expect = Rows [ "NULL" ];
    };
    (* --- mysql specialties --- *)
    {
      name = "unsigned cast of negative is huge";
      dialect = my;
      script = "";
      query = "SELECT CAST(-1 AS UNSIGNED) > 1000000";
      expect = Rows [ "1" ];
    };
    {
      name = "null-safe comparison never yields NULL";
      dialect = my;
      script = "";
      query = "SELECT NULL <=> NULL, NULL <=> 1, 2 <=> 2";
      expect = Rows [ "1|0|1" ];
    };
    {
      name = "tinyint clamps out of range";
      dialect = my;
      script = "CREATE TABLE t(c TINYINT); INSERT INTO t VALUES (1000);";
      query = "SELECT c FROM t";
      expect = Rows [ "127" ];
    };
    (* --- postgres specialties --- *)
    {
      name = "strict boolean WHERE";
      dialect = pg;
      script = "CREATE TABLE t(c INT); INSERT INTO t VALUES (1);";
      query = "SELECT * FROM t WHERE c + 1";
      expect = Err Engine.Errors.Type_error;
    };
    {
      name = "is distinct from";
      dialect = pg;
      script = "";
      query = "SELECT NULL IS DISTINCT FROM 1, NULL IS DISTINCT FROM NULL";
      expect = Rows [ "t|f" ];
    };
    {
      name = "serial starts at one";
      dialect = pg;
      script = "CREATE TABLE t(id SERIAL, v INT); INSERT INTO t(v) VALUES (7), (8);";
      query = "SELECT id, v FROM t ORDER BY id ASC";
      expect = Rows [ "1|7"; "2|8" ];
    };
    {
      name = "inherited rows appear in parent scans";
      dialect = pg;
      script =
        "CREATE TABLE p(c INT); CREATE TABLE k(d INT) INHERITS (p); INSERT \
         INTO p VALUES (1); INSERT INTO k(c, d) VALUES (2, 3);";
      query = "SELECT c FROM p ORDER BY c ASC";
      expect = Rows [ "1"; "2" ];
    };
    (* --- LIKE / GLOB --- *)
    {
      name = "like escape";
      dialect = sq;
      script = "";
      query = "SELECT '10%' LIKE '10!%' ESCAPE '!', '10x' LIKE '10!%' ESCAPE '!'";
      expect = Rows [ "1|0" ];
    };
    {
      name = "glob classes";
      dialect = sq;
      script = "";
      query = "SELECT 'b' GLOB '[a-c]', 'd' GLOB '[a-c]', 'd' GLOB '[^a-c]'";
      expect = Rows [ "1|0|1" ];
    };
    (* --- aggregates --- *)
    {
      name = "aggregates skip NULLs, COUNT(*) does not";
      dialect = sq;
      script = "CREATE TABLE t(c); INSERT INTO t VALUES (1), (NULL), (3);";
      query = "SELECT COUNT(*), COUNT(c), SUM(c), AVG(c), TOTAL(c) FROM t";
      expect = Rows [ "3|2|4|2.0|4.0" ];
    };
    {
      name = "aggregate over empty set";
      dialect = sq;
      script = "CREATE TABLE t(c);";
      query = "SELECT COUNT(*), SUM(c), MIN(c), TOTAL(c) FROM t";
      expect = Rows [ "0|NULL|NULL|0.0" ];
    };
    (* --- compound --- *)
    {
      name = "intersect treats NULLs as equal";
      dialect = sq;
      script = "";
      query = "SELECT NULL INTERSECT SELECT NULL";
      expect = Rows [ "NULL" ];
    };
    {
      name = "union deduplicates, union all does not";
      dialect = sq;
      script = "";
      query = "SELECT COUNT(*) FROM (SELECT 1 UNION SELECT 1 UNION ALL SELECT 1) AS s";
      expect = Rows [ "2" ];
    };
    (* --- constraints --- *)
    {
      name = "unique allows multiple NULLs";
      dialect = sq;
      script =
        "CREATE TABLE t(c UNIQUE); INSERT INTO t VALUES (NULL), (NULL), (1);";
      query = "SELECT COUNT(*) FROM t";
      expect = Rows [ "3" ];
    };
    {
      name = "check constraint with NULL passes";
      dialect = sq;
      script = "CREATE TABLE t(c CHECK (c > 0)); INSERT INTO t VALUES (NULL), (5);";
      query = "SELECT COUNT(*) FROM t";
      expect = Rows [ "2" ];
    };
    (* --- sqlite rowid alias --- *)
    {
      name = "integer primary key auto-assigns";
      dialect = sq;
      script =
        "CREATE TABLE t(id INTEGER PRIMARY KEY, v); INSERT INTO t(id, v) \
         VALUES (NULL, 'a'), (NULL, 'b');";
      query = "SELECT id FROM t ORDER BY id ASC";
      expect = Rows [ "1"; "2" ];
    };
  ]

let run_case (c : case) () =
  let session = Engine.Session.create c.dialect in
  if c.script <> "" then begin
    match Sqlparse.Parser.parse_script c.script with
    | Error e -> Alcotest.failf "setup parse: %s" (Sqlparse.Parser.show_error e)
    | Ok stmts ->
        List.iter
          (fun stmt ->
            match Engine.Session.execute session stmt with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "setup failed: %s" (Engine.Errors.show e))
          stmts
  end;
  match Sqlparse.Parser.parse_stmt c.query with
  | Error e -> Alcotest.failf "query parse: %s" (Sqlparse.Parser.show_error e)
  | Ok stmt -> (
      match (Engine.Session.execute session stmt, c.expect) with
      | Ok (Engine.Session.Rows rs), Rows expected ->
          let got =
            List.map
              (fun row ->
                String.concat "|"
                  (Array.to_list (Array.map Value.to_display row)))
              rs.Engine.Executor.rs_rows
          in
          Alcotest.(check (list string)) c.name expected got
      | Ok _, Rows _ -> Alcotest.fail "expected rows"
      | Error e, Err code ->
          Alcotest.(check bool)
            (c.name ^ " error code")
            true
            (Engine.Errors.equal_code e.Engine.Errors.code code)
      | Error e, Rows _ ->
          Alcotest.failf "unexpected error: %s" (Engine.Errors.show e)
      | Ok _, Err _ -> Alcotest.fail "expected an error")

let () =
  Alcotest.run "golden"
    [
      ( "semantics",
        List.map
          (fun c -> Alcotest.test_case c.name `Quick (run_case c))
          cases );
    ]
