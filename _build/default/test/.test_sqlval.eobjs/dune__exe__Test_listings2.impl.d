test/test_listings2.ml: Alcotest Dialect Engine List Printf Sqlparse Sqlval
