test/test_pqs.ml: Alcotest Array Dialect Engine Float Format List Option Pqs Printf QCheck QCheck_alcotest Sqlast Sqlval String Value
