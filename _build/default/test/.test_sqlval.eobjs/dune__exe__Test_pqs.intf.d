test/test_pqs.mli:
