test/test_storage.ml: Alcotest Collation Int Int64 List Option Printf QCheck QCheck_alcotest Sqlast Sqlval Storage String Value
