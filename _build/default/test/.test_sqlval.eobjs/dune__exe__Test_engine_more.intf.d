test/test_engine_more.mli:
