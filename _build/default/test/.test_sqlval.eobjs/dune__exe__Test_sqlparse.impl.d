test/test_sqlparse.ml: Alcotest Collation Datatype Dialect Int64 List Printf QCheck QCheck_alcotest Sqlast Sqlparse Sqlval Value
