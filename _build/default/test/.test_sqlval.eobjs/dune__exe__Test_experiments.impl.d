test/test_experiments.ml: Alcotest Engine Experiments List Pqs Sqlast Sqlval String
