test/test_properties.ml: Alcotest Array Datatype Dialect Engine Int64 List Pqs Printf QCheck QCheck_alcotest Sqlast Sqlparse Sqlval String Value
