test/test_extensions.ml: Alcotest Baselines Dialect Engine Int64 List Pqs Printf Sqlast Sqlval String
