test/test_sqlparse.mli:
