test/test_sqlval.ml: Alcotest Coerce Collation Datatype Dialect Format Fun Gen Int64 Like_matcher List Numeric QCheck QCheck_alcotest Result Sqlval String Tvl Value
