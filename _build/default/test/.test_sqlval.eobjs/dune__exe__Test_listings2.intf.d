test/test_listings2.mli:
