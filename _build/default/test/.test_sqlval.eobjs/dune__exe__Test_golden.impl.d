test/test_golden.ml: Alcotest Array Dialect Engine List Sqlparse Sqlval String Value
