test/test_engine.ml: Alcotest Array Collation Datatype Dialect Engine Int64 List Sqlast Sqlval Value
