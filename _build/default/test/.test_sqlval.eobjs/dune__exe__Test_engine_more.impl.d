test/test_engine_more.ml: Alcotest Array Dialect Engine List Option Pqs Printf QCheck QCheck_alcotest Sqlast Sqlparse Sqlval Storage String Value
