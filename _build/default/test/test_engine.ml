(* Engine tests: basic SQL behaviour per dialect, plus the paper listings
   transcribed as regression tests — with the corresponding injected bug
   disabled the engine is correct, with it enabled the paper's buggy
   behaviour reproduces. *)

open Sqlval
module A = Sqlast.Ast

let exec session stmt =
  match Engine.Session.execute session stmt with
  | Ok r -> r
  | Error e -> Alcotest.failf "unexpected error: %s" (Engine.Errors.show e)

let exec_err session stmt =
  match Engine.Session.execute session stmt with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> e

let rows session q =
  match Engine.Session.query session q with
  | Ok rs -> rs.Engine.Executor.rs_rows
  | Error e -> Alcotest.failf "query failed: %s" (Engine.Errors.show e)

let simple_select ?(distinct = false) ?where ?(items = [ A.Star ])
    ?(group_by = []) ?having ?(order_by = []) ?limit tables =
  A.Q_select
    {
      sel_distinct = distinct;
      sel_items = items;
      sel_from =
        List.map (fun name -> A.F_table { name; alias = None }) tables;
      sel_where = where;
      sel_group_by = group_by;
      sel_having = having;
      sel_order_by = order_by;
      sel_limit = limit;
      sel_offset = None;
    }

let create_t0 ?(ty = Datatype.Any) ?collate ?(constraints = [])
    ?(table_constraints = []) ?(without_rowid = false) ?engine ?inherits
    ?(extra_columns = []) session name =
  ignore
    (exec session
       (A.Create_table
          {
            ct_name = name;
            ct_if_not_exists = false;
            ct_columns =
              {
                col_name = "c0";
                col_type = ty;
                col_collate = collate;
                col_constraints = constraints;
              }
              :: extra_columns;
            ct_constraints = table_constraints;
            ct_without_rowid = without_rowid;
            ct_engine = engine;
            ct_inherits = inherits;
          }))

let insert_values session table values =
  ignore
    (exec session
       (A.Insert
          {
            table;
            columns = [];
            rows = List.map (fun v -> [ A.Lit v ]) values;
            action = A.On_conflict_abort;
          }))

let int_ i = Value.Int (Int64.of_int i)

(* ---------- basics ---------- *)

let test_create_insert_select () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  create_t0 s "t0";
  insert_values s "t0" [ int_ 1; int_ 2; Value.Null ];
  let r = rows s (simple_select [ "t0" ]) in
  Alcotest.(check int) "three rows" 3 (List.length r);
  let r =
    rows s
      (simple_select ~where:(A.Binary (A.Gt, A.col "c0", A.int_lit 1L)) [ "t0" ])
  in
  Alcotest.(check int) "filtered" 1 (List.length r)

let test_dialect_gates () =
  let s = Engine.Session.create Dialect.Postgres_like in
  (* postgres requires typed columns *)
  let e =
    exec_err s
      (A.Create_table
         {
           ct_name = "t0";
           ct_if_not_exists = false;
           ct_columns =
             [
               {
                 col_name = "c0";
                 col_type = Datatype.Any;
                 col_collate = None;
                 col_constraints = [];
               };
             ];
           ct_constraints = [];
           ct_without_rowid = false;
           ct_engine = None;
           ct_inherits = None;
         })
  in
  Alcotest.(check bool) "pg requires type" true
    (Engine.Errors.equal_code e.Engine.Errors.code Engine.Errors.Syntax_error);
  (* WHERE over an integer is a type error in postgres *)
  create_t0 ~ty:(Datatype.Int { width = Datatype.Regular; unsigned = false }) s "t1";
  insert_values s "t1" [ int_ 1 ];
  (match Engine.Session.query s (simple_select ~where:(A.col "c0") [ "t1" ]) with
  | Error e ->
      Alcotest.(check bool) "pg boolean where" true
        (Engine.Errors.equal_code e.Engine.Errors.code Engine.Errors.Type_error)
  | Ok _ -> Alcotest.fail "expected type error");
  (* the same is fine in sqlite *)
  let s2 = Engine.Session.create Dialect.Sqlite_like in
  create_t0 s2 "t1";
  insert_values s2 "t1" [ int_ 1 ];
  Alcotest.(check int) "sqlite implicit bool" 1
    (List.length (rows s2 (simple_select ~where:(A.col "c0") [ "t1" ])))

let test_unique_constraint () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  create_t0 ~constraints:[ A.C_unique ] s "t0";
  insert_values s "t0" [ int_ 1 ];
  let e =
    exec_err s
      (A.Insert
         {
           table = "t0";
           columns = [];
           rows = [ [ A.int_lit 1L ] ];
           action = A.On_conflict_abort;
         })
  in
  Alcotest.(check bool) "unique violation" true
    (Engine.Errors.equal_code e.Engine.Errors.code Engine.Errors.Unique_violation);
  (* NULLs never conflict *)
  insert_values s "t0" [ Value.Null; Value.Null ];
  Alcotest.(check int) "nulls ok" 3 (List.length (rows s (simple_select [ "t0" ])));
  (* OR IGNORE skips *)
  ignore
    (exec s
       (A.Insert
          {
            table = "t0";
            columns = [];
            rows = [ [ A.int_lit 1L ] ];
            action = A.On_conflict_ignore;
          }));
  Alcotest.(check int) "ignore skipped" 3
    (List.length (rows s (simple_select [ "t0" ])));
  (* OR REPLACE replaces *)
  ignore
    (exec s
       (A.Insert
          {
            table = "t0";
            columns = [];
            rows = [ [ A.int_lit 1L ] ];
            action = A.On_conflict_replace;
          }));
  Alcotest.(check int) "replace kept count" 3
    (List.length (rows s (simple_select [ "t0" ])))

let test_update_delete () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  create_t0 s "t0";
  insert_values s "t0" [ int_ 1; int_ 2; int_ 3 ];
  (match
     exec s
       (A.Update
          {
            table = "t0";
            assignments = [ ("c0", A.int_lit 9L) ];
            where = Some (A.Binary (A.Eq, A.col "c0", A.int_lit 2L));
            action = A.On_conflict_abort;
          })
   with
  | Engine.Session.Affected n -> Alcotest.(check int) "one updated" 1 n
  | _ -> Alcotest.fail "expected affected");
  (match
     exec s (A.Delete { table = "t0"; where = Some (A.Binary (A.Gt, A.col "c0", A.int_lit 2L)) })
   with
  | Engine.Session.Affected n -> Alcotest.(check int) "two deleted" 2 n
  | _ -> Alcotest.fail "expected affected");
  Alcotest.(check int) "one row left" 1
    (List.length (rows s (simple_select [ "t0" ])))

let test_index_scan_equivalence () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  create_t0 s "t0";
  insert_values s "t0" (List.map int_ [ 5; 3; 8; 3; 1 ]);
  let q = simple_select ~where:(A.Binary (A.Eq, A.col "c0", A.int_lit 3L)) [ "t0" ] in
  let before = rows s q in
  ignore
    (exec s
       (A.Create_index
          {
            ci_name = "i0";
            ci_if_not_exists = false;
            ci_table = "t0";
            ci_unique = false;
            ci_columns =
              [ { ic_expr = A.col "c0"; ic_collate = None; ic_desc = false } ];
            ci_where = None;
          }));
  let after = rows s q in
  Alcotest.(check int) "same cardinality" (List.length before) (List.length after)

let test_transactions () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  create_t0 s "t0";
  insert_values s "t0" [ int_ 1 ];
  ignore (exec s A.Begin_txn);
  insert_values s "t0" [ int_ 2 ];
  ignore (exec s A.Rollback_txn);
  Alcotest.(check int) "rolled back" 1 (List.length (rows s (simple_select [ "t0" ])));
  ignore (exec s A.Begin_txn);
  insert_values s "t0" [ int_ 3 ];
  ignore (exec s A.Commit_txn);
  Alcotest.(check int) "committed" 2 (List.length (rows s (simple_select [ "t0" ])))

let test_aggregates () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  create_t0 s "t0";
  insert_values s "t0" [ int_ 1; int_ 2; Value.Null ];
  let items =
    [
      A.Sel_expr (A.Agg (A.A_count_star, None), None);
      A.Sel_expr (A.Agg (A.A_count, Some (A.col "c0")), None);
      A.Sel_expr (A.Agg (A.A_sum, Some (A.col "c0")), None);
      A.Sel_expr (A.Agg (A.A_min, Some (A.col "c0")), None);
      A.Sel_expr (A.Agg (A.A_max, Some (A.col "c0")), None);
      A.Sel_expr (A.Agg (A.A_avg, Some (A.col "c0")), None);
    ]
  in
  match rows s (simple_select ~items [ "t0" ]) with
  | [ row ] ->
      Alcotest.(check string) "count star" "3" (Value.to_display row.(0));
      Alcotest.(check string) "count c0" "2" (Value.to_display row.(1));
      Alcotest.(check string) "sum" "3" (Value.to_display row.(2));
      Alcotest.(check string) "min" "1" (Value.to_display row.(3));
      Alcotest.(check string) "max" "2" (Value.to_display row.(4));
      Alcotest.(check string) "avg" "1.5" (Value.to_display row.(5))
  | rs -> Alcotest.failf "expected one row, got %d" (List.length rs)

let test_group_by_having () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  create_t0 s "t0";
  insert_values s "t0" [ int_ 1; int_ 1; int_ 2 ];
  let q =
    simple_select
      ~items:
        [
          A.Sel_expr (A.col "c0", None);
          A.Sel_expr (A.Agg (A.A_count_star, None), None);
        ]
      ~group_by:[ A.col "c0" ]
      ~having:(A.Binary (A.Gt, A.Agg (A.A_count_star, None), A.int_lit 1L))
      [ "t0" ]
  in
  match rows s q with
  | [ row ] ->
      Alcotest.(check string) "group key" "1" (Value.to_display row.(0));
      Alcotest.(check string) "count" "2" (Value.to_display row.(1))
  | rs -> Alcotest.failf "expected one group, got %d" (List.length rs)

let test_distinct_order_limit () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  create_t0 s "t0";
  insert_values s "t0" (List.map int_ [ 3; 1; 3; 2; 1 ]);
  let q =
    simple_select ~distinct:true
      ~order_by:[ (A.col "c0", A.Desc) ]
      ~limit:2L [ "t0" ]
  in
  let r = rows s q in
  Alcotest.(check (list string)) "distinct desc limit" [ "3"; "2" ]
    (List.map (fun row -> Value.to_display row.(0)) r)

let test_join () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  create_t0 s "t0";
  create_t0 s "t1";
  insert_values s "t0" [ int_ 1; int_ 2 ];
  insert_values s "t1" [ int_ 2; int_ 3 ];
  (* cross product *)
  let r = rows s (simple_select [ "t0"; "t1" ]) in
  Alcotest.(check int) "cross join" 4 (List.length r);
  (* inner join with ON *)
  let q =
    A.Q_select
      {
        sel_distinct = false;
        sel_items = [ A.Star ];
        sel_from =
          [
            A.F_join
              {
                kind = A.Inner;
                left = A.F_table { name = "t0"; alias = None };
                right = A.F_table { name = "t1"; alias = None };
                on =
                  Some
                    (A.Binary
                       ( A.Eq,
                         A.col ~table:"t0" "c0",
                         A.col ~table:"t1" "c0" ));
              };
          ];
        sel_where = None;
        sel_group_by = [];
        sel_having = None;
        sel_order_by = [];
        sel_limit = None;
        sel_offset = None;
      }
  in
  Alcotest.(check int) "inner join" 1 (List.length (rows s q))

let test_views () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  create_t0 s "t0";
  insert_values s "t0" [ int_ 1; int_ 2; int_ 2 ];
  ignore
    (exec s
       (A.Create_view { name = "v0"; query = simple_select ~distinct:true [ "t0" ] }));
  Alcotest.(check int) "view rows" 2 (List.length (rows s (simple_select [ "v0" ])));
  let r =
    rows s
      (simple_select ~where:(A.Binary (A.Ge, A.col "c0", A.int_lit 1L)) [ "v0" ])
  in
  Alcotest.(check int) "view with where" 2 (List.length r)

let test_compound () =
  let s = Engine.Session.create Dialect.Sqlite_like in
  create_t0 s "t0";
  insert_values s "t0" [ int_ 1; int_ 2 ];
  let values_q vs = A.Q_values (List.map (fun v -> [ A.Lit v ]) vs) in
  let inter =
    A.Q_compound (A.Intersect, values_q [ int_ 2; int_ 5 ], simple_select [ "t0" ])
  in
  Alcotest.(check int) "intersect" 1 (List.length (rows s inter));
  let union =
    A.Q_compound (A.Union, values_q [ int_ 2; int_ 5 ], simple_select [ "t0" ])
  in
  Alcotest.(check int) "union" 3 (List.length (rows s union));
  let except =
    A.Q_compound (A.Except, simple_select [ "t0" ], values_q [ int_ 2 ])
  in
  Alcotest.(check int) "except" 1 (List.length (rows s except))

let test_inheritance_scan () =
  let s = Engine.Session.create Dialect.Postgres_like in
  create_t0
    ~ty:(Datatype.Int { width = Datatype.Regular; unsigned = false })
    s "t0";
  create_t0
    ~ty:(Datatype.Int { width = Datatype.Regular; unsigned = false })
    ~inherits:"t0" s "t1";
  insert_values s "t0" [ int_ 1 ];
  insert_values s "t1" [ int_ 2 ];
  Alcotest.(check int) "parent scan includes child" 2
    (List.length (rows s (simple_select [ "t0" ])));
  Alcotest.(check int) "child scan is child only" 1
    (List.length (rows s (simple_select [ "t1" ])))

(* ---------- paper listings ---------- *)

(* Listing 1: partial index + IS NOT *)
let listing1 ~bugged () =
  let bugs =
    if bugged then Engine.Bug.singleton Engine.Bug.Sq_partial_index_implies_not_null
    else Engine.Bug.empty_set
  in
  let s = Engine.Session.create ~bugs Dialect.Sqlite_like in
  create_t0 s "t0";
  ignore
    (exec s
       (A.Create_index
          {
            ci_name = "i0";
            ci_if_not_exists = false;
            ci_table = "t0";
            ci_unique = false;
            ci_columns =
              [ { ic_expr = A.int_lit 1L; ic_collate = None; ic_desc = false } ];
            ci_where =
              Some (A.Is { negated = true; arg = A.col "c0"; rhs = A.Is_null });
          }));
  insert_values s "t0" [ int_ 0; int_ 1; int_ 2; int_ 3; Value.Null ];
  let q =
    simple_select
      ~where:
        (A.Is { negated = true; arg = A.col ~table:"t0" "c0"; rhs = A.Is_expr (A.int_lit 1L) })
      [ "t0" ]
  in
  rows s q

let test_listing1 () =
  (* correct: 0,2,3 and NULL are fetched (NULL IS NOT 1 is TRUE) *)
  Alcotest.(check int) "correct fetches NULL too" 4 (List.length (listing1 ~bugged:false ()));
  Alcotest.(check int) "bug drops the NULL pivot" 3 (List.length (listing1 ~bugged:true ()))

(* Listing 4: WITHOUT ROWID + NOCASE index *)
let listing4 ~bugged () =
  let bugs =
    if bugged then Engine.Bug.singleton Engine.Bug.Sq_nocase_unique_pk_collapse
    else Engine.Bug.empty_set
  in
  let s = Engine.Session.create ~bugs Dialect.Sqlite_like in
  create_t0 ~ty:Datatype.Text ~constraints:[ A.C_primary_key ]
    ~without_rowid:true s "t0";
  ignore
    (exec s
       (A.Create_index
          {
            ci_name = "i0";
            ci_if_not_exists = false;
            ci_table = "t0";
            ci_unique = false;
            ci_columns =
              [
                {
                  ic_expr = A.col "c0";
                  ic_collate = Some Collation.Nocase;
                  ic_desc = false;
                };
              ];
            ci_where = None;
          }));
  insert_values s "t0" [ Value.Text "A" ];
  insert_values s "t0" [ Value.Text "a" ];
  rows s (simple_select [ "t0" ])

let test_listing4 () =
  Alcotest.(check int) "correct keeps both rows" 2 (List.length (listing4 ~bugged:false ()));
  Alcotest.(check int) "bug collapses to one row" 1 (List.length (listing4 ~bugged:true ()))

(* Listing 5 class: RTRIM comparison *)
let listing5 ~bugged () =
  let bugs =
    if bugged then Engine.Bug.singleton Engine.Bug.Sq_rtrim_compare_asymmetric
    else Engine.Bug.empty_set
  in
  let s = Engine.Session.create ~bugs Dialect.Sqlite_like in
  create_t0 ~collate:Collation.Rtrim s "t0";
  insert_values s "t0" [ Value.Text " " ];
  (* under RTRIM, ' ' = '' *)
  rows s
    (simple_select ~where:(A.Binary (A.Eq, A.col "c0", A.text_lit "")) [ "t0" ])

let test_listing5 () =
  Alcotest.(check int) "correct fetches" 1 (List.length (listing5 ~bugged:false ()));
  (* buggy comparison trims left (' ' -> '') vs right ('') — both equal;
     trigger the asymmetry the other way around *)
  let bugs = Engine.Bug.singleton Engine.Bug.Sq_rtrim_compare_asymmetric in
  let s = Engine.Session.create ~bugs Dialect.Sqlite_like in
  create_t0 ~collate:Collation.Rtrim s "t0";
  insert_values s "t0" [ Value.Text "" ];
  let r =
    rows s
      (simple_select ~where:(A.Binary (A.Eq, A.col "c0", A.text_lit "  ")) [ "t0" ])
  in
  Alcotest.(check int) "bug misses row" 0 (List.length r);
  let s2 = Engine.Session.create Dialect.Sqlite_like in
  create_t0 ~collate:Collation.Rtrim s2 "t0";
  insert_values s2 "t0" [ Value.Text "" ];
  let r2 =
    rows s2
      (simple_select ~where:(A.Binary (A.Eq, A.col "c0", A.text_lit "  ")) [ "t0" ])
  in
  Alcotest.(check int) "correct fetches row" 1 (List.length r2)

(* Listing 7: LIKE on INT-affinity column *)
let listing7 ~bugged () =
  let bugs =
    if bugged then Engine.Bug.singleton Engine.Bug.Sq_like_int_affinity_opt
    else Engine.Bug.empty_set
  in
  let s = Engine.Session.create ~bugs Dialect.Sqlite_like in
  create_t0
    ~ty:(Datatype.Int { width = Datatype.Regular; unsigned = false })
    ~collate:Collation.Nocase ~constraints:[ A.C_unique ] s "t0";
  insert_values s "t0" [ Value.Text "./" ];
  rows s
    (simple_select
       ~where:
         (A.Like
            {
              negated = false;
              arg = A.col ~table:"t0" "c0";
              pattern = A.text_lit "./";
              escape = None;
            })
       [ "t0" ])

let test_listing7 () =
  Alcotest.(check int) "correct matches" 1 (List.length (listing7 ~bugged:false ()));
  Alcotest.(check int) "bug fetches no rows" 0 (List.length (listing7 ~bugged:true ()))

(* Listing 2: '' - huge integer *)
let test_listing2 () =
  let run ~bugged =
    let bugs =
      if bugged then Engine.Bug.singleton Engine.Bug.Sq_text_int_subtract_real
      else Engine.Bug.empty_set
    in
    let s = Engine.Session.create ~bugs Dialect.Sqlite_like in
    let q =
      A.Q_select
        {
          sel_distinct = false;
          sel_items =
            [
              A.Sel_expr
                ( A.Binary (A.Sub, A.text_lit "", A.int_lit 2851427734582196970L),
                  None );
            ];
          sel_from = [];
          sel_where = None;
          sel_group_by = [];
          sel_having = None;
          sel_order_by = [];
          sel_limit = None;
          sel_offset = None;
        }
    in
    match rows s q with
    | [ [| v |] ] -> v
    | _ -> Alcotest.fail "expected one value"
  in
  Alcotest.(check string) "correct exact" "-2851427734582196970"
    (Value.to_display (run ~bugged:false));
  Alcotest.(check string) "bug loses precision" "-2851427734582196736"
    (Value.to_display (run ~bugged:true))

(* Listing 13: double negation *)
let test_listing13 () =
  let run ~bugged =
    let bugs =
      if bugged then Engine.Bug.singleton Engine.Bug.My_double_negation_fold
      else Engine.Bug.empty_set
    in
    let s = Engine.Session.create ~bugs Dialect.Mysql_like in
    create_t0 ~ty:(Datatype.Int { width = Datatype.Regular; unsigned = false }) s "t0";
    insert_values s "t0" [ int_ 1 ];
    rows s
      (simple_select
         ~where:
           (A.Binary
              ( A.Neq,
                A.int_lit 123L,
                A.Unary (A.Not, A.Unary (A.Not, A.int_lit 123L)) ))
         [ "t0" ])
  in
  Alcotest.(check int) "correct fetches row" 1 (List.length (run ~bugged:false));
  Alcotest.(check int) "bug drops row" 0 (List.length (run ~bugged:true))

(* Listing 15: inheritance + GROUP BY *)
let test_listing15 () =
  let run ~bugged =
    let bugs =
      if bugged then Engine.Bug.singleton Engine.Bug.Pg_inherit_group_by_dedup
      else Engine.Bug.empty_set
    in
    let s = Engine.Session.create ~bugs Dialect.Postgres_like in
    let int_ty = Datatype.Int { width = Datatype.Regular; unsigned = false } in
    ignore
      (exec s
         (A.Create_table
            {
              ct_name = "t0";
              ct_if_not_exists = false;
              ct_columns =
                [
                  {
                    col_name = "c0";
                    col_type = int_ty;
                    col_collate = None;
                    col_constraints = [ A.C_primary_key ];
                  };
                  {
                    col_name = "c1";
                    col_type = int_ty;
                    col_collate = None;
                    col_constraints = [];
                  };
                ];
              ct_constraints = [];
              ct_without_rowid = false;
              ct_engine = None;
              ct_inherits = None;
            }));
    create_t0 ~ty:int_ty ~inherits:"t0" s "t1";
    ignore
      (exec s
         (A.Insert
            {
              table = "t0";
              columns = [ "c0"; "c1" ];
              rows = [ [ A.int_lit 0L; A.int_lit 0L ] ];
              action = A.On_conflict_abort;
            }));
    ignore
      (exec s
         (A.Insert
            {
              table = "t1";
              columns = [ "c0"; "c1" ];
              rows = [ [ A.int_lit 0L; A.int_lit 1L ] ];
              action = A.On_conflict_abort;
            }));
    rows s
      (simple_select
         ~items:[ A.Sel_expr (A.col "c0", None); A.Sel_expr (A.col "c1", None) ]
         ~group_by:[ A.col "c0"; A.col "c1" ]
         [ "t0" ])
  in
  Alcotest.(check int) "correct: two groups" 2 (List.length (run ~bugged:false));
  Alcotest.(check int) "bug merges into one" 1 (List.length (run ~bugged:true))

(* Listing 14: CHECK TABLE ... FOR UPGRADE crash *)
let test_listing14 () =
  let bugs = Engine.Bug.singleton Engine.Bug.My_check_upgrade_expr_index_crash in
  let s = Engine.Session.create ~bugs Dialect.Mysql_like in
  create_t0 ~ty:(Datatype.Int { width = Datatype.Regular; unsigned = false }) s "t0";
  ignore
    (exec s
       (A.Create_index
          {
            ci_name = "i0";
            ci_if_not_exists = false;
            ci_table = "t0";
            ci_unique = false;
            ci_columns =
              [
                {
                  ic_expr = A.Binary (A.Add, A.col "c0", A.int_lit 1L);
                  ic_collate = None;
                  ic_desc = false;
                };
              ];
            ci_where = None;
          }));
  insert_values s "t0" [ int_ 1 ];
  (match
     Engine.Session.execute s (A.Check_table { table = "t0"; for_upgrade = true })
   with
  | exception Engine.Errors.Crash _ -> ()
  | _ -> Alcotest.fail "expected a crash");
  (* without the bug no crash *)
  let s2 = Engine.Session.create Dialect.Mysql_like in
  create_t0 ~ty:(Datatype.Int { width = Datatype.Regular; unsigned = false }) s2 "t0";
  insert_values s2 "t0" [ int_ 1 ];
  ignore (exec s2 (A.Check_table { table = "t0"; for_upgrade = true }))

(* Listing 10: REAL PK + UPDATE OR REPLACE corruption *)
let test_listing10 () =
  let bugs = Engine.Bug.singleton Engine.Bug.Sq_real_pk_or_replace_corrupt in
  let s = Engine.Session.create ~bugs Dialect.Sqlite_like in
  ignore
    (exec s
       (A.Create_table
          {
            ct_name = "t1";
            ct_if_not_exists = false;
            ct_columns =
              [
                {
                  col_name = "c0";
                  col_type = Datatype.Any;
                  col_collate = None;
                  col_constraints = [];
                };
                {
                  col_name = "c1";
                  col_type = Datatype.Real;
                  col_collate = None;
                  col_constraints = [ A.C_primary_key ];
                };
              ];
            ct_constraints = [];
            ct_without_rowid = false;
            ct_engine = None;
            ct_inherits = None;
          }));
  ignore
    (exec s
       (A.Insert
          {
            table = "t1";
            columns = [ "c0"; "c1" ];
            rows =
              [
                [ A.int_lit 1L; A.int_lit 9223372036854775807L ];
                [ A.int_lit 1L; A.int_lit 0L ];
              ];
            action = A.On_conflict_abort;
          }));
  ignore
    (exec s
       (A.Update
          {
            table = "t1";
            assignments = [ ("c1", A.int_lit 1L) ];
            where = None;
            action = A.On_conflict_replace;
          }));
  let e = exec_err s (A.Select_stmt (simple_select [ "t1" ])) in
  Alcotest.(check bool) "malformed database" true
    (Engine.Errors.equal_code e.Engine.Errors.code Engine.Errors.Malformed_database)

(* engine/oracle soundness probe: mysql <=> out-of-range *)
let test_listing12 () =
  let run ~bugged =
    let bugs =
      if bugged then Engine.Bug.singleton Engine.Bug.My_null_safe_eq_out_of_range
      else Engine.Bug.empty_set
    in
    let s = Engine.Session.create ~bugs Dialect.Mysql_like in
    create_t0 ~ty:(Datatype.Int { width = Datatype.Tiny; unsigned = false }) s "t0";
    insert_values s "t0" [ Value.Null ];
    rows s
      (simple_select
         ~where:
           (A.Unary
              ( A.Not,
                A.Binary (A.Null_safe_eq, A.col ~table:"t0" "c0", A.int_lit 2035382037L) ))
         [ "t0" ])
  in
  Alcotest.(check int) "correct fetches row" 1 (List.length (run ~bugged:false));
  Alcotest.(check int) "bug drops row" 0 (List.length (run ~bugged:true))

let () =
  Alcotest.run "engine"
    [
      ( "basics",
        [
          Alcotest.test_case "create/insert/select" `Quick test_create_insert_select;
          Alcotest.test_case "dialect gates" `Quick test_dialect_gates;
          Alcotest.test_case "unique constraints" `Quick test_unique_constraint;
          Alcotest.test_case "update/delete" `Quick test_update_delete;
          Alcotest.test_case "index scan equivalence" `Quick test_index_scan_equivalence;
          Alcotest.test_case "transactions" `Quick test_transactions;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "group by/having" `Quick test_group_by_having;
          Alcotest.test_case "distinct/order/limit" `Quick test_distinct_order_limit;
          Alcotest.test_case "joins" `Quick test_join;
          Alcotest.test_case "views" `Quick test_views;
          Alcotest.test_case "compound queries" `Quick test_compound;
          Alcotest.test_case "inheritance scan" `Quick test_inheritance_scan;
        ] );
      ( "paper listings",
        [
          Alcotest.test_case "listing 1 (partial index IS NOT)" `Quick test_listing1;
          Alcotest.test_case "listing 2 (text - int precision)" `Quick test_listing2;
          Alcotest.test_case "listing 4 (nocase without rowid)" `Quick test_listing4;
          Alcotest.test_case "listing 5 (rtrim compare)" `Quick test_listing5;
          Alcotest.test_case "listing 7 (like int affinity)" `Quick test_listing7;
          Alcotest.test_case "listing 10 (real pk corruption)" `Quick test_listing10;
          Alcotest.test_case "listing 12 (null-safe eq range)" `Quick test_listing12;
          Alcotest.test_case "listing 13 (double negation)" `Quick test_listing13;
          Alcotest.test_case "listing 14 (check table crash)" `Quick test_listing14;
          Alcotest.test_case "listing 15 (inheritance group by)" `Quick test_listing15;
        ] );
    ]
