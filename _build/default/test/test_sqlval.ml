(* Unit and property tests for the value-domain substrate. *)

open Sqlval

let check_value = Alcotest.testable Value.pp Value.equal

let tvl =
  Alcotest.testable
    (fun fmt t -> Format.pp_print_string fmt (Tvl.show t))
    Tvl.equal

(* ---------- Tvl ---------- *)

let test_tvl_tables () =
  Alcotest.(check tvl) "not unknown" Tvl.Unknown (Tvl.not_ Tvl.Unknown);
  Alcotest.(check tvl) "not true" Tvl.False (Tvl.not_ Tvl.True);
  Alcotest.(check tvl) "false and unknown" Tvl.False
    (Tvl.and_ Tvl.False Tvl.Unknown);
  Alcotest.(check tvl) "true and unknown" Tvl.Unknown
    (Tvl.and_ Tvl.True Tvl.Unknown);
  Alcotest.(check tvl) "true or unknown" Tvl.True (Tvl.or_ Tvl.True Tvl.Unknown);
  Alcotest.(check tvl) "false or unknown" Tvl.Unknown
    (Tvl.or_ Tvl.False Tvl.Unknown)

let tvl_gen = QCheck.Gen.oneofl Tvl.all

let tvl_arb = QCheck.make ~print:Tvl.show tvl_gen

let prop_de_morgan =
  QCheck.Test.make ~name:"tvl De Morgan" ~count:200
    (QCheck.pair tvl_arb tvl_arb) (fun (a, b) ->
      Tvl.equal (Tvl.not_ (Tvl.and_ a b)) (Tvl.or_ (Tvl.not_ a) (Tvl.not_ b)))

let prop_lazy_agrees =
  QCheck.Test.make ~name:"tvl lazy agrees with strict" ~count:200
    (QCheck.pair tvl_arb tvl_arb) (fun (a, b) ->
      Tvl.equal (Tvl.and_lazy a (fun () -> b)) (Tvl.and_ a b)
      && Tvl.equal (Tvl.or_lazy a (fun () -> b)) (Tvl.or_ a b))

(* ---------- Collation ---------- *)

let test_collations () =
  Alcotest.(check bool) "nocase eq" true (Collation.equal_under Nocase "ABC" "abc");
  Alcotest.(check bool) "nocase neq" false (Collation.equal_under Nocase "ab" "abc");
  Alcotest.(check bool) "rtrim eq" true (Collation.equal_under Rtrim "a " "a    ");
  Alcotest.(check bool) "rtrim empty" true (Collation.equal_under Rtrim "" "   ");
  Alcotest.(check bool) "rtrim leading" false (Collation.equal_under Rtrim " a" "a");
  Alcotest.(check bool) "binary strict" false (Collation.equal_under Binary "a" "A")

let short_string_gen = QCheck.Gen.(string_size ~gen:(char_range ' ' 'z') (0 -- 8))

let prop_collation_key_consistent =
  QCheck.Test.make ~name:"collation compare = key compare" ~count:500
    QCheck.(
      triple
        (make ~print:Collation.show (Gen.oneofl Collation.all))
        (make ~print:Fun.id short_string_gen)
        (make ~print:Fun.id short_string_gen))
    (fun (c, a, b) ->
      let direct = Collation.compare c a b in
      let keyed = String.compare (Collation.key c a) (Collation.key c b) in
      compare direct 0 = compare keyed 0)

(* ---------- Numeric ---------- *)

let test_checked_arith () =
  Alcotest.(check (option int64)) "add overflow" None
    (Numeric.checked_add Int64.max_int 1L);
  Alcotest.(check (option int64)) "add ok" (Some 5L) (Numeric.checked_add 2L 3L);
  Alcotest.(check (option int64)) "sub overflow" None
    (Numeric.checked_sub Int64.min_int 1L);
  Alcotest.(check (option int64)) "mul overflow" None
    (Numeric.checked_mul 4611686018427387904L 2L);
  Alcotest.(check (option int64)) "mul min_int by -1" None
    (Numeric.checked_mul Int64.min_int (-1L));
  Alcotest.(check (option int64)) "neg min_int" None
    (Numeric.checked_neg Int64.min_int);
  Alcotest.(check (option int64)) "div by zero" None (Numeric.checked_div 1L 0L);
  Alcotest.(check (option int64)) "div min by -1" None
    (Numeric.checked_div Int64.min_int (-1L));
  Alcotest.(check (option int64)) "rem" (Some 1L) (Numeric.checked_rem 7L 3L)

let test_numeric_prefix () =
  let check_prefix name s expected =
    let actual =
      match Numeric.numeric_prefix s with
      | `Int i -> "int:" ^ Int64.to_string i
      | `Real r -> "real:" ^ string_of_float r
      | `None -> "none"
    in
    Alcotest.(check string) name expected actual
  in
  check_prefix "plain int" "12" "int:12";
  check_prefix "prefix int" "12abc" "int:12";
  check_prefix "real" "1.5x" "real:1.5";
  check_prefix "exponent" "2e3" "real:2000.";
  check_prefix "none" "abc" "none";
  check_prefix "sign only" "-" "none";
  check_prefix "negative" "-42z" "int:-42";
  check_prefix "leading spaces" "  7" "int:7";
  check_prefix "dot only" "." "none";
  check_prefix "dot lead" ".5" "real:0.5"

let test_parse_exact () =
  let is_none s = Alcotest.(check bool) s true (Numeric.parse_exact s = None) in
  Alcotest.(check bool) "exact int" true (Numeric.parse_exact "42" = Some (`Int 42L));
  Alcotest.(check bool) "exact real" true (Numeric.parse_exact "1.5" = Some (`Real 1.5));
  is_none "12abc";
  is_none "";
  is_none "1.2.3"

let prop_checked_add_model =
  QCheck.Test.make ~name:"checked_add matches arbitrary-precision model"
    ~count:1000
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      let model =
        let open Int64 in
        let exact = add a b in
        (* detect overflow via sign analysis *)
        if a >= 0L && b >= 0L && exact < 0L then None
        else if a < 0L && b < 0L && exact >= 0L then None
        else Some exact
      in
      Numeric.checked_add a b = model)

let test_unsigned () =
  Alcotest.(check int) "-1 unsigned is max" 1
    (compare (Numeric.unsigned_compare (-1L) 5L) 0);
  Alcotest.(check (float 1e6)) "-1 as unsigned float" 1.8446744073709552e19
    (Numeric.unsigned_to_float (-1L))

(* ---------- Value ordering ---------- *)

let test_value_order () =
  let lt a b =
    Alcotest.(check bool)
      (Value.show a ^ " < " ^ Value.show b)
      true
      (Value.compare_total a b < 0)
  in
  lt Value.Null (Value.Int 0L);
  lt (Value.Int 5L) (Value.Text "");
  lt (Value.Text "zzz") (Value.Blob "");
  lt (Value.Int 1L) (Value.Real 1.5);
  lt (Value.Real 0.5) (Value.Int 1L);
  (* precision: int beyond 2^53 vs the float it would round to *)
  lt (Value.Int 9007199254740993L) (Value.Real 9007199254740994.0);
  Alcotest.(check int) "huge int vs equal-rounded float" 1
    (Value.compare_total (Value.Int Int64.max_int) (Value.Real 9.007199254740992e15))

let value_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Value.Null);
        (4, map (fun i -> Value.Int i) (map Int64.of_int small_signed_int));
        (1, map (fun i -> Value.Int i) ui64);
        (3, map (fun f -> Value.Real f) (float_bound_inclusive 1000.0));
        (3, map (fun s -> Value.Text s) small_string);
        (1, map (fun s -> Value.Blob s) small_string);
        (1, map (fun b -> Value.Bool b) bool);
      ])

let value_arb = QCheck.make ~print:Value.show value_gen

let prop_order_total =
  QCheck.Test.make ~name:"compare_total is a total order" ~count:1000
    (QCheck.triple value_arb value_arb value_arb) (fun (a, b, c) ->
      let ( <= ) x y = Value.compare_total x y <= 0 in
      (* antisymmetry + transitivity spot checks *)
      ((not (a <= b && b <= a)) || Value.compare_total a b = 0)
      && ((not (a <= b && b <= c)) || a <= c))

let prop_literal_roundtrip_class =
  QCheck.Test.make ~name:"sql literal keeps storage class" ~count:500 value_arb
    (fun v ->
      (* literal rendering never produces the empty string *)
      String.length (Value.to_sql_literal v) > 0)

(* ---------- Like matcher ---------- *)

let test_like () =
  let m ?(cs = true) p t = Like_matcher.like ~case_sensitive:cs ~pattern:p t in
  Alcotest.(check bool) "exact" true (m "abc" "abc");
  Alcotest.(check bool) "percent any" true (m "a%" "abcdef");
  Alcotest.(check bool) "percent empty" true (m "a%" "a");
  Alcotest.(check bool) "underscore" true (m "a_c" "abc");
  Alcotest.(check bool) "underscore strict" false (m "a_c" "ac");
  Alcotest.(check bool) "middle" true (m "%b%" "abc");
  Alcotest.(check bool) "case insensitive" true (m ~cs:false "ABC" "abc");
  Alcotest.(check bool) "case sensitive" false (m "ABC" "abc");
  Alcotest.(check bool) "double percent" true (m "%%" "anything");
  Alcotest.(check bool) "slash dot" true (m "./" "./");
  Alcotest.(check bool) "empty pattern" false (m "" "x");
  Alcotest.(check bool) "empty both" true (m "" "");
  Alcotest.(check bool) "escape"
    true
    (Like_matcher.like ~case_sensitive:true ~escape:'\\' ~pattern:"a\\%b" "a%b");
  Alcotest.(check bool) "escape no match"
    false
    (Like_matcher.like ~case_sensitive:true ~escape:'\\' ~pattern:"a\\%b" "axb")

let test_glob () =
  let g p t = Like_matcher.glob ~pattern:p t in
  Alcotest.(check bool) "star" true (g "a*" "abc");
  Alcotest.(check bool) "question" true (g "a?c" "abc");
  Alcotest.(check bool) "class" true (g "[a-c]x" "bx");
  Alcotest.(check bool) "class neg" false (g "[^a-c]x" "bx");
  Alcotest.(check bool) "class neg match" true (g "[^a-c]x" "dx");
  Alcotest.(check bool) "case sensitive" false (g "ABC" "abc");
  Alcotest.(check bool) "unterminated class" false (g "[ab" "a")

let test_literal_prefix () =
  Alcotest.(check string) "prefix" "ab" (Like_matcher.literal_prefix "ab%cd");
  Alcotest.(check string) "no wildcard" "abcd" (Like_matcher.literal_prefix "abcd");
  Alcotest.(check string) "leading wildcard" "" (Like_matcher.literal_prefix "%ab");
  Alcotest.(check string) "escape kept"
    "a%"
    (Like_matcher.literal_prefix ~escape:'\\' "a\\%%rest")

let prop_like_prefix_sound =
  QCheck.Test.make ~name:"literal_prefix is a true prefix of matches"
    ~count:500
    QCheck.(
      pair (make ~print:Fun.id short_string_gen) (make ~print:Fun.id short_string_gen))
    (fun (pattern, text) ->
      if Like_matcher.like ~case_sensitive:true ~pattern text then
        let p = Like_matcher.literal_prefix pattern in
        String.length p <= String.length text
        && String.sub text 0 (String.length p) = p
      else true)

(* ---------- Coerce ---------- *)

let test_to_tvl () =
  let ok d v = Result.get_ok (Coerce.to_tvl d v) in
  Alcotest.(check tvl) "sqlite 0" Tvl.False (ok Dialect.Sqlite_like (Value.Int 0L));
  Alcotest.(check tvl) "sqlite 2" Tvl.True (ok Dialect.Sqlite_like (Value.Int 2L));
  Alcotest.(check tvl) "sqlite null" Tvl.Unknown (ok Dialect.Sqlite_like Value.Null);
  Alcotest.(check tvl) "sqlite text number" Tvl.True
    (ok Dialect.Sqlite_like (Value.Text "1x"));
  Alcotest.(check tvl) "sqlite text junk" Tvl.False
    (ok Dialect.Sqlite_like (Value.Text "abc"));
  Alcotest.(check tvl) "mysql small double text" Tvl.True
    (ok Dialect.Mysql_like (Value.Text "0.5"));
  Alcotest.(check bool) "pg rejects int" true
    (Result.is_error (Coerce.to_tvl Dialect.Postgres_like (Value.Int 1L)));
  Alcotest.(check tvl) "pg bool" Tvl.True
    (ok Dialect.Postgres_like (Value.Bool true))

let test_affinity () =
  Alcotest.(check check_value) "text to int" (Value.Int 42L)
    (Coerce.apply_affinity Datatype.A_integer (Value.Text "42"));
  Alcotest.(check check_value) "text junk stays" (Value.Text "x1")
    (Coerce.apply_affinity Datatype.A_integer (Value.Text "x1"));
  Alcotest.(check check_value) "real integral to int" (Value.Int 3L)
    (Coerce.apply_affinity Datatype.A_integer (Value.Real 3.0));
  Alcotest.(check check_value) "int to text" (Value.Text "7")
    (Coerce.apply_affinity Datatype.A_text (Value.Int 7L));
  Alcotest.(check check_value) "none keeps" (Value.Text "1")
    (Coerce.apply_affinity Datatype.A_none (Value.Text "1"))

let test_store () =
  (* mysql clamps out-of-range TINYINT (non-strict mode) *)
  Alcotest.(check check_value) "mysql tinyint clamp" (Value.Int 127L)
    (Result.get_ok
       (Coerce.store Dialect.Mysql_like
          (Datatype.Int { width = Datatype.Tiny; unsigned = false })
          (Value.Int 1000L)));
  Alcotest.(check check_value) "mysql unsigned clamp low" (Value.Int 0L)
    (Result.get_ok
       (Coerce.store Dialect.Mysql_like
          (Datatype.Int { width = Datatype.Tiny; unsigned = true })
          (Value.Int (-5L))));
  (* postgres strict: text into int errors *)
  Alcotest.(check bool) "pg strict" true
    (Result.is_error
       (Coerce.store Dialect.Postgres_like
          (Datatype.Int { width = Datatype.Regular; unsigned = false })
          (Value.Text "1")));
  Alcotest.(check bool) "pg int out of range" true
    (Result.is_error
       (Coerce.store Dialect.Postgres_like
          (Datatype.Int { width = Datatype.Regular; unsigned = false })
          (Value.Int 3000000000L)));
  (* sqlite stores anything *)
  Alcotest.(check check_value) "sqlite any" (Value.Text "abc")
    (Result.get_ok
       (Coerce.store Dialect.Sqlite_like
          (Datatype.Int { width = Datatype.Regular; unsigned = false })
          (Value.Text "abc")))

let test_cast () =
  Alcotest.(check check_value) "sqlite cast text to int" (Value.Int 1L)
    (Result.get_ok
       (Coerce.cast Dialect.Sqlite_like
          (Datatype.Int { width = Datatype.Regular; unsigned = false })
          (Value.Text "1.9")));
  Alcotest.(check check_value) "mysql cast unsigned of -1"
    (Value.Real 1.8446744073709552e19)
    (Result.get_ok
       (Coerce.cast Dialect.Mysql_like
          (Datatype.Int { width = Datatype.Big; unsigned = true })
          (Value.Int (-1L))));
  Alcotest.(check bool) "pg cast invalid text" true
    (Result.is_error
       (Coerce.cast Dialect.Postgres_like
          (Datatype.Int { width = Datatype.Regular; unsigned = false })
          (Value.Text "abc")));
  Alcotest.(check check_value) "pg cast text true" (Value.Bool true)
    (Result.get_ok
       (Coerce.cast Dialect.Postgres_like Datatype.Bool (Value.Text "true")))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_de_morgan;
      prop_lazy_agrees;
      prop_collation_key_consistent;
      prop_checked_add_model;
      prop_order_total;
      prop_literal_roundtrip_class;
      prop_like_prefix_sound;
    ]

let () =
  Alcotest.run "sqlval"
    [
      ( "tvl",
        [
          Alcotest.test_case "truth tables" `Quick test_tvl_tables;
        ] );
      ("collation", [ Alcotest.test_case "builtin collations" `Quick test_collations ]);
      ( "numeric",
        [
          Alcotest.test_case "checked arithmetic" `Quick test_checked_arith;
          Alcotest.test_case "numeric prefix" `Quick test_numeric_prefix;
          Alcotest.test_case "parse exact" `Quick test_parse_exact;
          Alcotest.test_case "unsigned helpers" `Quick test_unsigned;
        ] );
      ("value", [ Alcotest.test_case "cross-class order" `Quick test_value_order ]);
      ( "like",
        [
          Alcotest.test_case "like" `Quick test_like;
          Alcotest.test_case "glob" `Quick test_glob;
          Alcotest.test_case "literal prefix" `Quick test_literal_prefix;
        ] );
      ( "coerce",
        [
          Alcotest.test_case "to_tvl" `Quick test_to_tvl;
          Alcotest.test_case "affinity" `Quick test_affinity;
          Alcotest.test_case "store" `Quick test_store;
          Alcotest.test_case "cast" `Quick test_cast;
        ] );
      ("properties", qcheck_cases);
    ]
