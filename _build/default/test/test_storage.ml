(* Unit and property tests for the storage substrate: B-tree (against a
   reference model), heap, schema, index and catalog. *)

open Sqlval

module Itree = Storage.Btree.Make (struct
  type key = int

  let compare = Int.compare
end)

(* ---------- B-tree unit tests ---------- *)

let test_btree_basic () =
  let t = Itree.create () in
  Alcotest.(check bool) "empty" true (Itree.is_empty t);
  for i = 1 to 100 do
    Itree.insert t i (i * 10)
  done;
  Itree.check_invariants t;
  Alcotest.(check int) "length" 100 (Itree.length t);
  Alcotest.(check (list int)) "find 42" [ 420 ] (Itree.find_all t 42);
  Alcotest.(check (list int)) "find missing" [] (Itree.find_all t 1000);
  Alcotest.(check bool) "mem" true (Itree.mem t 7);
  let items = Itree.to_list t in
  Alcotest.(check int) "to_list length" 100 (List.length items);
  Alcotest.(check bool) "sorted" true
    (List.sort compare items = items)

let test_btree_duplicates () =
  let t = Itree.create () in
  Itree.insert t 5 1;
  Itree.insert t 5 2;
  Itree.insert t 5 3;
  Itree.insert t 4 0;
  Itree.check_invariants t;
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3 ] (Itree.find_all t 5);
  Alcotest.(check bool) "remove middle" true
    (Itree.remove ~veq:Int.equal t 5 2);
  Alcotest.(check (list int)) "after remove" [ 1; 3 ] (Itree.find_all t 5);
  Alcotest.(check bool) "remove absent value" false
    (Itree.remove ~veq:Int.equal t 5 99);
  Itree.check_invariants t

let test_btree_range () =
  let t = Itree.create () in
  List.iter (fun i -> Itree.insert t i i) [ 1; 3; 5; 7; 9; 11 ];
  let collect ?lo ?hi () =
    let acc = ref [] in
    Itree.iter_range ?lo ?hi (fun k _ -> acc := k :: !acc) t;
    List.rev !acc
  in
  Alcotest.(check (list int)) "closed range" [ 3; 5; 7 ]
    (collect ~lo:(3, true) ~hi:(7, true) ());
  Alcotest.(check (list int)) "open lo" [ 5; 7 ]
    (collect ~lo:(3, false) ~hi:(7, true) ());
  Alcotest.(check (list int)) "hi only" [ 1; 3 ] (collect ~hi:(4, true) ());
  Alcotest.(check (list int)) "lo only" [ 9; 11 ] (collect ~lo:(8, true) ());
  Alcotest.(check (list int)) "all" [ 1; 3; 5; 7; 9; 11 ] (collect ())

let test_btree_min_max () =
  let t = Itree.create () in
  Alcotest.(check bool) "empty min" true (Itree.min_binding t = None);
  List.iter (fun i -> Itree.insert t i (-i)) [ 42; 7; 99; 13 ];
  Alcotest.(check bool) "min" true (Itree.min_binding t = Some (7, -7));
  Alcotest.(check bool) "max" true (Itree.max_binding t = Some (99, -99))

(* ---------- B-tree property tests against a reference model ---------- *)

type op = Insert of int * int | Remove of int * int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun k v -> Insert (k mod 50, v)) small_nat small_nat);
        (1, map2 (fun k v -> Remove (k mod 50, v)) small_nat small_nat);
      ])

let print_op = function
  | Insert (k, v) -> Printf.sprintf "ins(%d,%d)" k v
  | Remove (k, v) -> Printf.sprintf "del(%d,%d)" k v

let apply_model model = function
  | Insert (k, v) -> model @ [ (k, v) ]
  | Remove (k, v) ->
      let rec drop_first = function
        | [] -> []
        | (k', v') :: rest when k' = k && v' = v -> rest
        | kv :: rest -> kv :: drop_first rest
      in
      drop_first model

let apply_tree t = function
  | Insert (k, v) -> Itree.insert t k v
  | Remove (k, v) -> ignore (Itree.remove ~veq:Int.equal t k v)

let sorted_stable model =
  List.stable_sort (fun (a, _) (b, _) -> compare a b) model

let prop_btree_model =
  QCheck.Test.make ~name:"btree matches list model under random ops"
    ~count:300
    (QCheck.make
       ~print:(fun ops -> String.concat ";" (List.map print_op ops))
       QCheck.Gen.(list_size (1 -- 200) op_gen))
    (fun ops ->
      let t = Itree.create () in
      let model =
        List.fold_left
          (fun model op ->
            apply_tree t op;
            apply_model model op)
          [] ops
      in
      Itree.check_invariants t;
      Itree.to_list t = sorted_stable model)

let prop_btree_range_model =
  QCheck.Test.make ~name:"btree range scan matches filtered model" ~count:300
    (QCheck.pair
       (QCheck.make
          ~print:(fun ops -> String.concat ";" (List.map print_op ops))
          QCheck.Gen.(list_size (1 -- 100) op_gen))
       (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun (ops, (lo, hi)) ->
      let lo = lo mod 50 and hi = hi mod 50 in
      let lo, hi = (min lo hi, max lo hi) in
      let t = Itree.create () in
      let model =
        List.fold_left
          (fun model op ->
            apply_tree t op;
            apply_model model op)
          [] ops
      in
      let expect =
        sorted_stable model |> List.filter (fun (k, _) -> k >= lo && k <= hi)
      in
      let acc = ref [] in
      Itree.iter_range ~lo:(lo, true) ~hi:(hi, true)
        (fun k v -> acc := (k, v) :: !acc)
        t;
      List.rev !acc = expect)

(* ---------- Heap ---------- *)

let test_heap () =
  let h = Storage.Heap.create () in
  let r1 = Storage.Heap.insert h [| Value.Int 1L |] in
  let r2 = Storage.Heap.insert h [| Value.Int 2L |] in
  Alcotest.(check int) "count" 2 (Storage.Heap.row_count h);
  Alcotest.(check bool) "rowids increase" true
    Storage.Row.(r1.rowid < r2.rowid);
  Storage.Heap.delete h r1.Storage.Row.rowid;
  Alcotest.(check int) "count after delete" 1 (Storage.Heap.row_count h);
  let r3 = Storage.Heap.insert h [| Value.Int 3L |] in
  Alcotest.(check bool) "rowid not reused" true
    Storage.Row.(r3.rowid > r2.rowid);
  let scan = Storage.Heap.to_list h in
  Alcotest.(check (list int)) "scan order by rowid"
    [ Int64.to_int r2.Storage.Row.rowid; Int64.to_int r3.Storage.Row.rowid ]
    (List.map (fun r -> Int64.to_int r.Storage.Row.rowid) scan);
  let copy = Storage.Heap.deep_copy h in
  Storage.Heap.delete h r2.Storage.Row.rowid;
  Alcotest.(check int) "deep copy unaffected" 2 (Storage.Heap.row_count copy)

(* ---------- Index ---------- *)

let mk_index ?(unique = false) ?(collations = [| Collation.Binary |]) () =
  Storage.Index.create ~name:"i0" ~table:"t0" ~unique
    ~definition:[ { Sqlast.Ast.ic_expr = Sqlast.Ast.col "c0"; ic_collate = None; ic_desc = false } ]
    ~collations ~where:None

let test_index_basic () =
  let ix = mk_index () in
  Storage.Index.add ix ~key:[| Value.Int 1L |] ~rowid:10L;
  Storage.Index.add ix ~key:[| Value.Int 1L |] ~rowid:11L;
  Storage.Index.add ix ~key:[| Value.Int 2L |] ~rowid:12L;
  Alcotest.(check int) "entries" 3 (Storage.Index.entry_count ix);
  Alcotest.(check (list int64)) "find" [ 10L; 11L ]
    (Storage.Index.find_rowids ix [| Value.Int 1L |]);
  Alcotest.(check bool) "remove" true
    (Storage.Index.remove ix ~key:[| Value.Int 1L |] ~rowid:10L);
  Alcotest.(check (list int64)) "after remove" [ 11L ]
    (Storage.Index.find_rowids ix [| Value.Int 1L |]);
  Storage.Index.check_invariants ix

let test_index_collation () =
  let ix = mk_index ~unique:true ~collations:[| Collation.Nocase |] () in
  Storage.Index.add ix ~key:[| Value.Text "A" |] ~rowid:1L;
  (* 'a' collides with 'A' under NOCASE: the unique probe must see it *)
  Alcotest.(check (list int64)) "nocase conflict" [ 1L ]
    (Storage.Index.unique_conflicts ix ~key:[| Value.Text "a" |] ~rowid:2L);
  (* NULL keys never conflict *)
  Storage.Index.add ix ~key:[| Value.Null |] ~rowid:3L;
  Alcotest.(check (list int64)) "null no conflict" []
    (Storage.Index.unique_conflicts ix ~key:[| Value.Null |] ~rowid:4L)

let test_index_rtrim () =
  let ix = mk_index ~unique:true ~collations:[| Collation.Rtrim |] () in
  Storage.Index.add ix ~key:[| Value.Text "x " |] ~rowid:1L;
  Alcotest.(check (list int64)) "rtrim lookup ignores trailing spaces" [ 1L ]
    (Storage.Index.find_rowids ix [| Value.Text "x      " |])

(* ---------- Catalog ---------- *)

let mk_schema name =
  Storage.Schema.make_table ~columns:[| Storage.Schema.column "c0" |] name

let test_catalog () =
  let cat = Storage.Catalog.create () in
  let _ts = Storage.Catalog.add_table cat (mk_schema "t0") in
  Alcotest.(check bool) "exists" true (Storage.Catalog.table_exists cat "t0");
  Alcotest.(check bool) "case insensitive" true
    (Storage.Catalog.table_exists cat "T0");
  Alcotest.(check (list string)) "names" [ "t0" ]
    (Storage.Catalog.table_names cat);
  let ix = mk_index () in
  Storage.Catalog.add_index cat ix;
  Alcotest.(check int) "indexes on t0" 1
    (List.length (Storage.Catalog.indexes_on cat "t0"));
  Alcotest.(check bool) "drop table drops indexes" true
    (Storage.Catalog.drop_table cat "t0");
  Alcotest.(check int) "indexes gone" 0
    (List.length (Storage.Catalog.indexes_on cat "t0"));
  Alcotest.(check bool) "drop missing" false
    (Storage.Catalog.drop_table cat "t0")

let test_catalog_snapshot () =
  let cat = Storage.Catalog.create () in
  let ts = Storage.Catalog.add_table cat (mk_schema "t0") in
  ignore (Storage.Heap.insert ts.Storage.Catalog.heap [| Value.Int 1L |]);
  let snap = Storage.Catalog.snapshot cat in
  ignore (Storage.Heap.insert ts.Storage.Catalog.heap [| Value.Int 2L |]);
  ignore (Storage.Catalog.add_table cat (mk_schema "t1"));
  Storage.Catalog.corrupt cat "malformed";
  Storage.Catalog.restore cat snap;
  Alcotest.(check bool) "t1 rolled back" false
    (Storage.Catalog.table_exists cat "t1");
  Alcotest.(check bool) "corruption rolled back" true
    (Storage.Catalog.corruption cat = None);
  let ts' = Option.get (Storage.Catalog.find_table cat "t0") in
  Alcotest.(check int) "row rolled back" 1
    (Storage.Heap.row_count ts'.Storage.Catalog.heap)

let test_catalog_inheritance () =
  let cat = Storage.Catalog.create () in
  ignore (Storage.Catalog.add_table cat (mk_schema "t0"));
  let child = { (mk_schema "t1") with Storage.Schema.inherits = Some "t0" } in
  ignore (Storage.Catalog.add_table cat child);
  Alcotest.(check (list string)) "children" [ "t1" ]
    (Storage.Catalog.children_of cat "t0")

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_btree_model; prop_btree_range_model ]

let () =
  Alcotest.run "storage"
    [
      ( "btree",
        [
          Alcotest.test_case "basic" `Quick test_btree_basic;
          Alcotest.test_case "duplicates" `Quick test_btree_duplicates;
          Alcotest.test_case "range" `Quick test_btree_range;
          Alcotest.test_case "min/max" `Quick test_btree_min_max;
        ] );
      ("heap", [ Alcotest.test_case "basic" `Quick test_heap ]);
      ( "index",
        [
          Alcotest.test_case "basic" `Quick test_index_basic;
          Alcotest.test_case "nocase unique" `Quick test_index_collation;
          Alcotest.test_case "rtrim lookup" `Quick test_index_rtrim;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "tables and indexes" `Quick test_catalog;
          Alcotest.test_case "snapshot/restore" `Quick test_catalog_snapshot;
          Alcotest.test_case "inheritance" `Quick test_catalog_inheritance;
        ] );
      ("properties", qcheck_cases);
    ]
