(* Parser tests: unit coverage for each statement form (including the SQL
   text of the paper's listings) and a print→parse→print fixpoint property
   over random expressions. *)

open Sqlval
module A = Sqlast.Ast

let parse_stmt_exn sql =
  match Sqlparse.Parser.parse_stmt sql with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse failed on %S: %s" sql (Sqlparse.Parser.show_error e)

let parse_expr_exn sql =
  match Sqlparse.Parser.parse_expr sql with
  | Ok e -> e
  | Error e -> Alcotest.failf "parse failed on %S: %s" sql (Sqlparse.Parser.show_error e)

let roundtrip_stmt dialect sql =
  let s = parse_stmt_exn sql in
  let printed = Sqlast.Sql_printer.stmt dialect s in
  let s2 = parse_stmt_exn printed in
  let printed2 = Sqlast.Sql_printer.stmt dialect s2 in
  Alcotest.(check string) ("fixpoint: " ^ sql) printed printed2

(* ---------- lexer ---------- *)

let test_lexer () =
  let toks = Sqlparse.Lexer.tokenize "SELECT c0 FROM t0 WHERE c0 <=> 'a''b' -- x" in
  Alcotest.(check int) "token count" 9 (List.length toks);
  (match Sqlparse.Lexer.tokenize "X'0aFF'" with
  | [ Sqlparse.Lexer.BLOB b; Sqlparse.Lexer.EOF ] ->
      Alcotest.(check string) "blob bytes" "\x0a\xff" b
  | _ -> Alcotest.fail "blob lexing");
  (match Sqlparse.Lexer.tokenize "1.5e3 /* c */ 42" with
  | [ Sqlparse.Lexer.FLOAT f; Sqlparse.Lexer.INT i; Sqlparse.Lexer.EOF ] ->
      Alcotest.(check (float 0.001) ) "float" 1500.0 f;
      Alcotest.(check int64) "int" 42L i
  | _ -> Alcotest.fail "number lexing");
  match Sqlparse.Lexer.tokenize "\"quoted id\"" with
  | [ Sqlparse.Lexer.IDENT s; Sqlparse.Lexer.EOF ] ->
      Alcotest.(check string) "quoted ident" "quoted id" s
  | _ -> Alcotest.fail "quoted identifier"

(* ---------- expressions ---------- *)

let test_expr_precedence () =
  let e = parse_expr_exn "1 + 2 * 3" in
  Alcotest.(check bool) "mul binds tighter" true
    (A.equal_expr e
       (A.Binary (A.Add, A.int_lit 1L, A.Binary (A.Mul, A.int_lit 2L, A.int_lit 3L))));
  let e = parse_expr_exn "1 = 2 OR 3 = 4 AND 5 = 6" in
  (match e with
  | A.Binary (A.Or, _, A.Binary (A.And, _, _)) -> ()
  | _ -> Alcotest.fail "AND binds tighter than OR");
  let e = parse_expr_exn "NOT 1 = 2" in
  match e with
  | A.Unary (A.Not, A.Binary (A.Eq, _, _)) -> ()
  | _ -> Alcotest.fail "NOT is lower than comparison"

let test_expr_forms () =
  let forms =
    [
      "c0 IS NOT 1";
      "c0 IS NULL";
      "c0 IS NOT NULL";
      "t0.c0 IS TRUE";
      "c0 IN (1, 2, NULL)";
      "c0 NOT IN (1)";
      "c0 LIKE './' ESCAPE '\\'";
      "c0 NOT LIKE 'a%'";
      "c0 GLOB '[a-c]*'";
      "c0 BETWEEN 1 AND 2";
      "c0 NOT BETWEEN 1 AND 2";
      "CAST(c0 AS INT)";
      "CAST(c0 AS UNSIGNED)";
      "CASE WHEN c0 THEN 1 ELSE 2 END";
      "CASE c0 WHEN 1 THEN 2 END";
      "COALESCE(c0, 1, 2)";
      "COUNT(*)";
      "MIN(c0 COLLATE NOCASE)";
      "c0 COLLATE RTRIM";
      "x'00ff'";
      "c0 <=> 5";
      "c0 IS DISTINCT FROM 5";
      "-c0 + +3 - ~4";
      "(1 || 'a') || c0";
      "1 << 2 >> 3 & 4 | 5";
    ]
  in
  List.iter (fun sql -> ignore (parse_expr_exn sql)) forms

(* ---------- paper listings parse ---------- *)

let test_paper_listings_parse () =
  let scripts =
    [
      (* Listing 1 *)
      "CREATE TABLE t0(c0);\n\
       CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL;\n\
       INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL);\n\
       SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1;";
      (* Listing 2 *)
      "SELECT '' - 2851427734582196970;";
      (* Listing 3 *)
      "SET GLOBAL key_cache_division_limit = 100;";
      (* Listing 4 *)
      "CREATE TABLE t0(c0 TEXT PRIMARY KEY) WITHOUT ROWID;\n\
       CREATE INDEX i0 ON t0(c0 COLLATE NOCASE);\n\
       INSERT INTO t0(c0) VALUES ('A');\n\
       INSERT INTO t0(c0) VALUES ('a');\n\
       SELECT * FROM t0;";
      (* Listing 7 *)
      "CREATE TABLE t0(c0 INT UNIQUE COLLATE NOCASE);\n\
       INSERT INTO t0(c0) VALUES ('./');\n\
       SELECT * FROM t0 WHERE t0.c0 LIKE './';";
      (* Listing 11 *)
      "CREATE TABLE t0(c0 INT);\n\
       CREATE TABLE t1(c0 INT) ENGINE = MEMORY;\n\
       INSERT INTO t0(c0) VALUES (0);\n\
       INSERT INTO t1(c0) VALUES (-1);\n\
       SELECT * FROM t0, t1 WHERE (CAST(t1.c0 AS UNSIGNED)) > (IFNULL('u', t0.c0));";
      (* Listing 12 *)
      "CREATE TABLE t0(c0 TINYINT);\n\
       INSERT INTO t0(c0) VALUES(NULL);\n\
       SELECT * FROM t0 WHERE NOT(t0.c0 <=> 2035382037);";
      (* Listing 14 *)
      "CREATE TABLE t0(c0 INT);\n\
       CREATE INDEX i0 ON t0((t0.c0 || 1));\n\
       INSERT INTO t0(c0) VALUES (1);\n\
       CHECK TABLE t0 FOR UPGRADE;";
      (* Listing 15 *)
      "CREATE TABLE t0(c0 INT PRIMARY KEY, c1 INT);\n\
       CREATE TABLE t1(c0 INT) INHERITS (t0);\n\
       INSERT INTO t0(c0, c1) VALUES(0, 0);\n\
       INSERT INTO t1(c0, c1) VALUES(0, 1);\n\
       SELECT c0, c1 FROM t0 GROUP BY c0, c1;";
      (* Listing 16 *)
      "CREATE TABLE t0(c0 SERIAL, c1 BOOLEAN);\n\
       CREATE STATISTICS s1 ON c0, c1 FROM t0;\n\
       INSERT INTO t0(c1) VALUES(TRUE);\n\
       ANALYZE;\n\
       CREATE INDEX i0 ON t0(c0, (t0.c1 AND t0.c1));\n\
       SELECT * FROM (SELECT t0.c0 FROM t0 WHERE (((t0.c1) AND (t0.c1)) OR \
       FALSE) IS TRUE) AS result WHERE result.c0 IS NULL;";
      (* Listing 18 *)
      "CREATE TABLE t1(c0 INT);\n\
       INSERT INTO t1(c0) VALUES (2147483647);\n\
       UPDATE t1 SET c0 = 0;\n\
       CREATE INDEX i0 ON t1((1 + t1.c0));\n\
       VACUUM FULL;";
    ]
  in
  List.iteri
    (fun i script ->
      match Sqlparse.Parser.parse_script script with
      | Ok stmts ->
          Alcotest.(check bool)
            (Printf.sprintf "script %d nonempty" i)
            true
            (List.length stmts > 0)
      | Error e ->
          Alcotest.failf "script %d failed: %s" i (Sqlparse.Parser.show_error e))
    scripts

(* ---------- statements round trip ---------- *)

let test_stmt_roundtrip () =
  let sqlite = Dialect.Sqlite_like in
  List.iter (roundtrip_stmt sqlite)
    [
      "CREATE TABLE t0(c0 TEXT COLLATE NOCASE PRIMARY KEY, c1 BLOB UNIQUE, \
       PRIMARY KEY (c0, c1)) WITHOUT ROWID";
      "CREATE TABLE IF NOT EXISTS t1(c0 INT NOT NULL DEFAULT 3)";
      "CREATE UNIQUE INDEX i0 ON t0(c0 COLLATE RTRIM DESC, (c0 + 1)) WHERE \
       c0 IS NOT NULL";
      "DROP TABLE IF EXISTS t0";
      "ALTER TABLE t0 RENAME COLUMN c0 TO c9";
      "ALTER TABLE t0 ADD COLUMN c2 REAL";
      "INSERT OR REPLACE INTO t0(c0) VALUES (1), (NULL)";
      "UPDATE OR IGNORE t0 SET c0 = 1 WHERE c0 > 2";
      "DELETE FROM t0 WHERE c0 IS NULL";
      "SELECT DISTINCT t0.c0 FROM t0, t1 WHERE t0.c0 = t1.c0 ORDER BY t0.c0 \
       DESC LIMIT 3 OFFSET 1";
      "SELECT c0, COUNT(*) FROM t0 GROUP BY c0 HAVING COUNT(*) > 1";
      "SELECT * FROM t0 JOIN t1 ON t0.c0 = t1.c0 LEFT JOIN t2 ON t1.c0 = \
       t2.c0";
      "VALUES (1, 'a'), (2, 'b')";
      "SELECT 1 INTERSECT SELECT c0 FROM t0";
      "REINDEX i0";
      "VACUUM";
      "ANALYZE t0";
      "PRAGMA case_sensitive_like = 1";
      "BEGIN";
      "COMMIT";
      "ROLLBACK";
      "CREATE VIEW v0 AS SELECT DISTINCT c0 FROM t0";
      "DROP VIEW IF EXISTS v0";
      "SELECT s.c0 FROM (SELECT c0 FROM t0 WHERE c0 > 1) AS s";
      "EXPLAIN SELECT * FROM t0 WHERE c0 = 1";
    ];
  let mysql = Dialect.Mysql_like in
  List.iter (roundtrip_stmt mysql)
    [
      "CREATE TABLE t0(c0 TINYINT UNSIGNED, c1 BIGINT) ENGINE = MEMORY";
      "INSERT IGNORE INTO t0(c0) VALUES (300)";
      "CHECK TABLE t0 FOR UPGRADE";
      "REPAIR TABLE t0";
      "SET GLOBAL key_cache_division_limit = 100";
      "SELECT * FROM t0 WHERE NOT (t0.c0 <=> 2035382037)";
    ];
  let pg = Dialect.Postgres_like in
  List.iter (roundtrip_stmt pg)
    [
      "CREATE TABLE t1(c0 INT) INHERITS (t0)";
      "CREATE TABLE t0(c0 SERIAL, c1 BOOLEAN)";
      "CREATE STATISTICS s1 ON c0, c1 FROM t0";
      "DISCARD ALL";
      "VACUUM FULL";
      "SELECT * FROM t0 WHERE c0 IS DISTINCT FROM 5";
    ]

(* ---------- property: print/parse fixpoint on random exprs ---------- *)

let lit_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return A.null_lit);
        (4, map (fun i -> A.int_lit (Int64.of_int i)) (int_range (-1000) 1000));
        (2, map (fun f -> A.Lit (Value.Real f)) (float_bound_inclusive 100.0));
        ( 3,
          map
            (fun s -> A.text_lit s)
            (string_size ~gen:(char_range ' ' 'z') (0 -- 6)) );
        ( 1,
          map
            (fun s -> A.Lit (Value.Blob s))
            (string_size ~gen:(char_range 'a' 'f') (0 -- 4)) );
      ])

let expr_gen =
  let open QCheck.Gen in
  sized (fun size ->
      fix
        (fun self size ->
          if size <= 0 then
            oneof [ lit_gen; return (A.col "c0"); return (A.col ~table:"t0" "c1") ]
          else
            let sub = self (size / 2) in
            frequency
              [
                (2, lit_gen);
                ( 3,
                  map3
                    (fun op a b -> A.Binary (op, a, b))
                    (oneofl
                       [
                         A.Eq; A.Neq; A.Lt; A.Le; A.Gt; A.Ge; A.And; A.Or;
                         A.Add; A.Sub; A.Mul; A.Div; A.Rem; A.Concat;
                         A.Bit_and; A.Bit_or; A.Shift_left; A.Shift_right;
                         A.Null_safe_eq;
                       ])
                    sub sub );
                ( 2,
                  map2
                    (fun op a -> A.Unary (op, a))
                    (oneofl [ A.Not; A.Neg; A.Pos; A.Bit_not ])
                    sub );
                ( 1,
                  map2
                    (fun negated a ->
                      A.Is { negated; arg = a; rhs = A.Is_null })
                    bool sub );
                ( 1,
                  map3
                    (fun a lo hi -> A.Between { negated = false; arg = a; lo; hi })
                    sub sub sub );
                ( 1,
                  map2
                    (fun a list -> A.In_list { negated = false; arg = a; list })
                    sub
                    (list_size (1 -- 3) sub) );
                ( 1,
                  map2
                    (fun a p ->
                      A.Like { negated = false; arg = a; pattern = p; escape = None })
                    sub lit_gen );
                (1, map (fun a -> A.Cast (Datatype.Text, a)) sub);
                (1, map (fun a -> A.Collate (a, Collation.Nocase)) sub);
                ( 1,
                  map2
                    (fun c r ->
                      A.Case { operand = None; branches = [ (c, r) ]; else_ = Some r })
                    sub sub );
                (1, map (fun args -> A.Func (A.F_coalesce, args)) (list_size (1 -- 3) sub));
              ])
        size)

let prop_print_parse_fixpoint =
  QCheck.Test.make ~name:"print/parse/print fixpoint (sqlite syntax)" ~count:500
    (QCheck.make
       ~print:(fun e -> Sqlast.Sql_printer.expr Dialect.Sqlite_like e)
       expr_gen)
    (fun e ->
      let d = Dialect.Sqlite_like in
      let printed = Sqlast.Sql_printer.expr d e in
      match Sqlparse.Parser.parse_expr printed with
      | Error err ->
          QCheck.Test.fail_reportf "unparseable %s: %s" printed
            (Sqlparse.Parser.show_error err)
      | Ok e2 -> (
          (* the fixpoint is reached after one normalization round: compare
             iteration 2 against iteration 3 *)
          let printed2 = Sqlast.Sql_printer.expr d e2 in
          match Sqlparse.Parser.parse_expr printed2 with
          | Error err ->
              QCheck.Test.fail_reportf "unparseable %s: %s" printed2
                (Sqlparse.Parser.show_error err)
          | Ok e3 ->
              let printed3 = Sqlast.Sql_printer.expr d e3 in
              if printed2 <> printed3 then
                QCheck.Test.fail_reportf "not a fixpoint:\n%s\n%s" printed2
                  printed3
              else true))

let () =
  Alcotest.run "sqlparse"
    [
      ("lexer", [ Alcotest.test_case "tokens" `Quick test_lexer ]);
      ( "expr",
        [
          Alcotest.test_case "precedence" `Quick test_expr_precedence;
          Alcotest.test_case "forms" `Quick test_expr_forms;
        ] );
      ( "stmt",
        [
          Alcotest.test_case "paper listings" `Quick test_paper_listings_parse;
          Alcotest.test_case "round trips" `Quick test_stmt_roundtrip;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_print_parse_fixpoint ] );
    ]
