(* Dialect tour: the same logical step expressed against all three dialect
   personalities, showing why differential testing across real DBMS is so
   hard (paper Sections 1-2): each statement below is legal in exactly one
   dialect, and even shared syntax diverges in semantics.

     dune exec examples/dialect_tour.exe *)

open Sqlval

let try_sql dialect sql =
  let session = Engine.Session.create dialect in
  let outcome =
    match Sqlparse.Parser.parse_script sql with
    | Error e -> "parse error: " ^ Sqlparse.Parser.show_error e
    | Ok stmts -> (
        let last = ref "ok" in
        (try
           List.iter
             (fun stmt ->
               match Engine.Session.execute session stmt with
               | Ok (Engine.Session.Rows rs) ->
                   last :=
                     Printf.sprintf "%d row(s): %s"
                       (List.length rs.Engine.Executor.rs_rows)
                       (String.concat "; "
                          (List.map
                             (fun row ->
                               String.concat "|"
                                 (Array.to_list
                                    (Array.map Value.to_display row)))
                             rs.Engine.Executor.rs_rows))
               | Ok _ -> ()
               | Error e ->
                   last := "error: " ^ Engine.Errors.show e;
                   raise Exit)
             stmts
         with Exit -> ());
        !last)
  in
  Printf.printf "  %-10s %s\n" (Dialect.name dialect) outcome

let section title sql =
  Printf.printf "\n%s\n%s\n" title sql;
  List.iter (fun d -> try_sql d sql) Dialect.all

let () =
  section "-- untyped columns are a sqlite specialty"
    "CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES ('anything'); SELECT * \
     FROM t0;";
  section "-- IS NOT over scalars (the paper's Listing 1 operator)"
    "CREATE TABLE t0(c0 INT); INSERT INTO t0(c0) VALUES (NULL); SELECT * \
     FROM t0 WHERE c0 IS NOT 1;";
  section "-- the null-safe comparison spelled per dialect: <=> is mysql"
    "CREATE TABLE t0(c0 INT); INSERT INTO t0(c0) VALUES (NULL); SELECT * \
     FROM t0 WHERE NOT (c0 <=> 1);";
  section "-- implicit boolean conversion: WHERE over an integer"
    "CREATE TABLE t0(c0 INT); INSERT INTO t0(c0) VALUES (2); SELECT * FROM \
     t0 WHERE c0;";
  section "-- storage engines are mysql-specific"
    "CREATE TABLE t0(c0 INT) ENGINE = MEMORY; INSERT INTO t0(c0) VALUES (1); \
     SELECT * FROM t0;";
  section "-- table inheritance is postgres-specific"
    "CREATE TABLE t0(c0 INT); CREATE TABLE t1(c1 INT) INHERITS (t0); INSERT \
     INTO t1(c0, c1) VALUES (1, 2); SELECT * FROM t0;";
  section "-- out-of-range inserts: clamped by mysql, rejected by postgres"
    "CREATE TABLE t0(c0 TINYINT); INSERT INTO t0(c0) VALUES (1000); SELECT * \
     FROM t0;";
  section "-- division by zero: NULL in sqlite/mysql, an error in postgres"
    "SELECT 1 / 0;"
