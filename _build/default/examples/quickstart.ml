(* Quickstart: open a session on the sqlite-like engine, run SQL text, and
   read result sets.

     dune exec examples/quickstart.exe *)

let exec session sql =
  Printf.printf "sql> %s\n" sql;
  match Sqlparse.Parser.parse_stmt sql with
  | Error e -> Printf.printf "parse error: %s\n" (Sqlparse.Parser.show_error e)
  | Ok stmt -> (
      match Engine.Session.execute session stmt with
      | Ok (Engine.Session.Rows rs) ->
          Printf.printf "     %s\n" (String.concat "|" rs.Engine.Executor.rs_columns);
          List.iter
            (fun row ->
              Printf.printf "     %s\n"
                (String.concat "|"
                   (Array.to_list (Array.map Sqlval.Value.to_display row))))
            rs.Engine.Executor.rs_rows
      | Ok (Engine.Session.Affected n) -> Printf.printf "     ok, %d rows\n" n
      | Ok Engine.Session.Done -> Printf.printf "     ok\n"
      | Error e -> Printf.printf "     error: %s\n" (Engine.Errors.show e))

let () =
  let session = Engine.Session.create Sqlval.Dialect.Sqlite_like in
  List.iter (exec session)
    [
      "CREATE TABLE users(id INTEGER PRIMARY KEY, name TEXT COLLATE NOCASE, \
       score REAL)";
      "CREATE INDEX users_by_name ON users(name)";
      "INSERT INTO users(id, name, score) VALUES (1, 'Ada', 3.5), (2, 'bob', \
       1.25), (3, 'Eve', NULL)";
      (* NOCASE collation: 'ADA' matches 'Ada' *)
      "SELECT id, name FROM users WHERE name = 'ADA'";
      (* three-valued logic: Eve's NULL score is in neither branch *)
      "SELECT name FROM users WHERE score > 2";
      "SELECT name FROM users WHERE NOT (score > 2)";
      "SELECT name FROM users WHERE (score > 2) IS NULL";
      (* aggregates and grouping *)
      "SELECT COUNT(*), AVG(score) FROM users";
      (* sqlite stores anything anywhere: text in the REAL column *)
      "INSERT INTO users(id, name, score) VALUES (4, 'Mallory', 'not-a-score')";
      "SELECT name, TYPEOF(score) FROM users ORDER BY id ASC";
      (* transactions *)
      "BEGIN";
      "DELETE FROM users WHERE id >= 1";
      "ROLLBACK";
      "SELECT COUNT(*) FROM users";
    ]
