(* Metamorphic aggregate testing (the paper's Section 7 future work): the
   whole-table aggregates must equal the combination over the three-valued
   partitions WHERE p / WHERE NOT p / WHERE p IS NULL.

   This example shows a manual check on a hand-built table and then lets
   the random harness expose a row-losing planner defect that PQS's
   single-row oracle would need a pivot for.

     dune exec examples/metamorphic_hunt.exe *)

open Sqlval

let () =
  (* manual partition check *)
  let session = Engine.Session.create Dialect.Sqlite_like in
  let setup =
    "CREATE TABLE t0(c0);\n\
     INSERT INTO t0(c0) VALUES (1), (5), (NULL), (9), (NULL);"
  in
  (match Sqlparse.Parser.parse_script setup with
  | Ok stmts -> List.iter (fun s -> ignore (Engine.Session.execute session s)) stmts
  | Error e -> failwith (Sqlparse.Parser.show_error e));
  let count sql =
    match Sqlparse.Parser.parse_stmt sql with
    | Ok stmt -> (
        match Engine.Session.execute session stmt with
        | Ok (Engine.Session.Rows rs) -> (
            match rs.Engine.Executor.rs_rows with
            | [ [| Value.Int n |] ] -> n
            | _ -> -1L)
        | _ -> -1L)
    | Error _ -> -1L
  in
  let whole = count "SELECT COUNT(*) FROM t0" in
  let p = count "SELECT COUNT(*) FROM t0 WHERE c0 > 4" in
  let not_p = count "SELECT COUNT(*) FROM t0 WHERE NOT (c0 > 4)" in
  let null_p = count "SELECT COUNT(*) FROM t0 WHERE (c0 > 4) IS NULL" in
  Printf.printf
    "partition relation on a correct engine:\n\
    \  COUNT(whole) = %Ld;  p: %Ld  +  NOT p: %Ld  +  p IS NULL: %Ld  =  %Ld\n\n"
    whole p not_p null_p
    (Int64.add p (Int64.add not_p null_p));

  (* random harness against an injected row-losing defect *)
  let bug = Engine.Bug.Sq_partial_index_implies_not_null in
  Printf.printf "hunting %s with the metamorphic harness...\n%!"
    (Engine.Bug.show bug);
  let stats =
    Pqs.Metamorphic.run ~seed:11
      ~bugs:(Engine.Bug.set_of_list [ bug ])
      ~max_checks:6000 Dialect.Sqlite_like
  in
  Printf.printf "checks: %d, violations: %d\n" stats.Pqs.Metamorphic.checks
    (List.length stats.Pqs.Metamorphic.findings);
  match stats.Pqs.Metamorphic.findings with
  | (msg, script) :: _ ->
      Printf.printf "\nfirst violation: %s\nreproduction (%d statements):\n%s\n"
        msg (List.length script)
        (Sqlast.Sql_printer.script Dialect.Sqlite_like script)
  | [] -> print_endline "none found — try a larger budget"
