(* The PQS pipeline, step by step (paper Figure 1), against a hand-built
   database — every intermediate artifact printed.

     dune exec examples/pqs_pipeline.exe *)

open Sqlval
module A = Sqlast.Ast

let dialect = Dialect.Sqlite_like

let () =
  (* step 1: a database (normally randomly generated) *)
  let session = Engine.Session.create dialect in
  let script =
    "CREATE TABLE t0(c0, c1 TEXT COLLATE NOCASE);\n\
     CREATE TABLE t1(c0 INT);\n\
     INSERT INTO t0(c0, c1) VALUES (3, 'a'), (NULL, 'B'), (7, 'c');\n\
     INSERT INTO t1(c0) VALUES (-5), (0);"
  in
  print_endline "step 1 — create a random database:";
  print_endline script;
  (match Sqlparse.Parser.parse_script script with
  | Ok stmts ->
      List.iter (fun s -> ignore (Engine.Session.execute session s)) stmts
  | Error e -> failwith (Sqlparse.Parser.show_error e));

  (* step 2: select a pivot row per table *)
  let rng = Pqs.Rng.make ~seed:5 in
  let tables = Pqs.Schema_info.tables_of_session session in
  let pivot =
    List.map
      (fun (ti : Pqs.Schema_info.table_info) ->
        let rows =
          Pqs.Schema_info.rows_of_table session ti.Pqs.Schema_info.ti_name
        in
        (ti, Pqs.Rng.pick rng rows))
      tables
  in
  print_endline "\nstep 2 — pick a pivot row from each table:";
  List.iter
    (fun ((ti : Pqs.Schema_info.table_info), row) ->
      Printf.printf "  %s -> (%s)\n" ti.Pqs.Schema_info.ti_name
        (String.concat ", "
           (Array.to_list (Array.map Value.to_sql_literal row))))
    pivot;

  (* step 3: generate a random condition over the schema *)
  let env = Pqs.Interp.env_of_pivot dialect pivot in
  let gen_ctx =
    {
      Pqs.Gen_expr.rng;
      dialect;
      tables;
      max_depth = 3;
      pool =
        List.concat_map (fun (_, row) -> Array.to_list row) pivot
        |> List.filter (fun v -> not (Value.is_null v));
    }
  in
  let raw = Pqs.Gen_expr.condition gen_ctx in
  Printf.printf "\nstep 3 — random condition:\n  %s\n"
    (Sqlast.Sql_printer.expr dialect raw);

  (* step 4: evaluate on the pivot and rectify to TRUE *)
  (match Pqs.Interp.eval_tvl env raw with
  | Ok t -> Printf.printf "\nstep 4 — oracle evaluation: %s\n" (Tvl.show t)
  | Error e -> Printf.printf "\nstep 4 — oracle evaluation failed: %s\n" e);
  let rectified, raw_truth =
    match Pqs.Rectify.rectify env raw with
    | Ok (r, t) -> (r, t)
    | Error e -> failwith e
  in
  Printf.printf "  raw truth %s, rectified:\n  %s\n" (Tvl.show raw_truth)
    (Sqlast.Sql_printer.expr dialect rectified);

  (* step 5-7: synthesize the query and check containment via INTERSECT *)
  match
    Pqs.Gen_query.synthesize ~rng ~dialect ~pivot ~case_sensitive_like:false
      ~max_depth:3 ~check_expressions:false ()
  with
  | Error e -> Printf.printf "synthesis failed: %s\n" e
  | Ok t -> (
      let stmt = Pqs.Gen_query.containment_stmt t in
      Printf.printf "\nsteps 5-7 — containment check:\n  %s\n"
        (Sqlast.Sql_printer.stmt dialect stmt);
      match Engine.Session.execute session stmt with
      | Ok (Engine.Session.Rows rs) ->
          if rs.Engine.Executor.rs_rows = [] then
            print_endline
              "\n  pivot row NOT contained -> the engine has a bug!"
          else
            print_endline
              "\n  pivot row contained -> this check passes (the engine is \
               correct)"
      | Ok _ -> ()
      | Error e -> Printf.printf "query failed: %s\n" (Engine.Errors.show e))
