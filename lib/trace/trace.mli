(** Flight recorder: bounded ring-buffer round tracing and repro bundles.

    A recorder is filled by the runner and the engine with the structured,
    causal record of the current round: every statement executed (with its
    outcome and latency), the pivot row chosen, each generated expression
    with its interpreter verdict and rectification, planner access-path
    decisions, and per-operator executor annotations (rows in/out, B-tree
    visits, wall time — the same data that powers [EXPLAIN ANALYZE]).

    The buffer is pre-sized at creation and recording is O(1): when full,
    the oldest entry is evicted ([dropped] counts evictions).  The {!noop}
    sink turns every operation into a single branch, so the recorder can
    be threaded unconditionally — the same zero-cost-when-disabled
    discipline as [Telemetry.noop].  Recording never draws randomness and
    never changes engine control flow, so tracing is campaign-neutral
    (gated by `bench trace`).

    When an oracle fires, the recorder drains into a {!Bundle}: a
    replayable [repro.sql] with a self-describing header, the event log as
    [trace.json], and expected-vs-actual metadata as [bundle.json].
    `sqlancer replay <repro.sql>` re-runs a bundle and confirms the
    verdict. *)

open Sqlval

(** {1 Events} *)

module Event : sig
  type outcome =
    | Rows of int  (** a row-returning statement, with its row count *)
    | Affected of int
    | Done
    | Error of string
    | Crashed of string  (** simulated SEGFAULT *)

  type t =
    | Statement of { stmt : Sqlast.Ast.stmt; outcome : outcome; dur_ns : int }
    | Pivot of { source : string; row : string list }
        (** pivot row chosen from [source]; values as SQL literals *)
    | Expr of {
        raw : Sqlast.Ast.expr;
        verdict : Tvl.t;  (** the interpreter's verdict on the raw tree *)
        rectified : Sqlast.Ast.expr;
      }
    | Plan of { table : string; path : string }
        (** planner access-path decision for a single-table scan *)
    | Op of {
        op : string;  (** executor operator: SCAN, FILTER, SORT, ... *)
        detail : string;
        rows_in : int;
        rows_out : int;
        batches : int;
            (** row blocks processed; 0 under the row-at-a-time
                interpreted backend, >= 1 under the compiled backend *)
        btree_nodes : int;  (** B-tree node visits charged to this operator *)
        btree_entries : int;
        dur_ns : int;
      }
    | Oracle_fired of { oracle : string; message : string; phase : string }
    | Note of string

  (** The [type] tag used in the JSON export. *)
  val kind : t -> string
end

type entry = { ts_ns : int; event : Event.t }
(** One recorded event; [ts_ns] is monotonic nanoseconds from the round
    start ({!begin_round}). *)

(** {1 The recorder} *)

type t

(** A fresh enabled recorder; the ring holds [capacity] entries (default
    1024, minimum 1), allocated once up front. *)
val create : ?capacity:int -> unit -> t

(** The disabled sink: every operation is a single branch. *)
val noop : t

val enabled : t -> bool

(** Reset the ring for a new round: clears all entries, zeroes the
    dropped count and restarts the timestamp origin. *)
val begin_round : t -> seed:int -> dialect:Dialect.t -> unit

(** O(1); evicts the oldest entry when the ring is full. *)
val record : t -> Event.t -> unit

(** Like {!record} but stamps the entry with [now_ns] (a
    {!Telemetry.Clock.now_ns_int} reading) instead of reading the clock
    again — for call sites that just read it to compute a duration. *)
val record_at : t -> now_ns:int -> Event.t -> unit

val note : t -> string -> unit

(** Entries oldest-first; at most [capacity] of them. *)
val events : t -> entry list

val length : t -> int

(** Evictions since {!begin_round}: total recorded = length + dropped. *)
val dropped : t -> int

val capacity : t -> int
val seed : t -> int
val dialect : t -> Dialect.t

(** The [trace.json] document: round metadata plus every surviving event
    with SQL rendered in the round's dialect. *)
val to_json : t -> string

(** {1 Bundles} *)

(** JSON string escaping shared by the trace and bundle writers. *)
val json_string : string -> string

val mkdir_p : string -> unit

(** Write [text] to [path], truncating. *)
val write_text : string -> string -> unit

module Bundle : sig
  type t = {
    b_seed : int;
    b_dialect : Dialect.t;
    b_oracle : string;
        (** stable oracle token (e.g. ["containment"]), understood by the
            replay harness *)
    b_message : string;
    b_phase : string;  (** funnel phase in which the oracle fired *)
    b_bugs : string list;  (** enabled injected bugs, for faithful replay *)
    b_statements : Sqlast.Ast.stmt list;
    b_expected : string option;
    b_actual : string option;
    b_plan : string list;  (** annotated plan of the failing query *)
    b_trace_json : string;  (** drained recorder ({!to_json}) *)
  }

  (** The [repro.sql] content: a [-- key: value] self-describing header
      followed by the replayable script. *)
  val script_text : t -> string

  (** [bundle-<seed>-<oracle>], the directory written by {!write}. *)
  val dir_name : t -> string

  val to_json : t -> string

  (** Write [repro.sql], [bundle.json] and [trace.json] under
      [dir/bundle-<seed>-<oracle>/]; returns the [repro.sql] path (the
      replay entry point). *)
  val write : dir:string -> t -> string

  (** Replace the statement body of an existing [repro.sql] with a
      reduced script, preserving the header and adding a
      [-- reduced: true] marker.  Used after test-case reduction. *)
  val rewrite_script :
    sql_path:string -> dialect:Dialect.t -> Sqlast.Ast.stmt list -> unit

  (** Split a repro script into its header pairs and SQL body. *)
  val parse_script_text : string -> (string * string) list * string
end
