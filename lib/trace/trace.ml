(* Flight recorder: a bounded ring buffer of structured per-round events.

   Each runner round (and each EXPLAIN ANALYZE execution) fills a recorder
   with the causal record of what happened: every statement sent to the
   engine, the pivot row chosen, each generated expression with its
   interpreter verdict and rectification, planner access-path decisions
   and per-operator executor annotations.  In steady state the recorder is
   nearly free: the buffer is pre-sized at creation, recording is O(1)
   with no allocation beyond the entry itself, and the [Noop] sink turns
   every operation into a single branch (the same discipline as
   [Telemetry.noop]).  When an oracle fires the recorder drains into a
   self-contained repro bundle (module {!Bundle}).

   Recording never draws randomness and never changes engine control
   flow, so enabling the recorder is campaign-neutral: the bug set of a
   run is identical with tracing on or off (gated by `bench trace`). *)

open Sqlval
module A = Sqlast.Ast

(* ------------------------------------------------------------------ *)
(* Events                                                              *)

module Event = struct
  type outcome =
    | Rows of int
    | Affected of int
    | Done
    | Error of string
    | Crashed of string

  type t =
    | Statement of { stmt : A.stmt; outcome : outcome; dur_ns : int }
    | Pivot of { source : string; row : string list }
    | Expr of { raw : A.expr; verdict : Tvl.t; rectified : A.expr }
    | Plan of { table : string; path : string }
    | Op of {
        op : string;
        detail : string;
        rows_in : int;
        rows_out : int;
        batches : int;
        btree_nodes : int;
        btree_entries : int;
        dur_ns : int;
      }
    | Oracle_fired of { oracle : string; message : string; phase : string }
    | Note of string

  let kind = function
    | Statement _ -> "statement"
    | Pivot _ -> "pivot"
    | Expr _ -> "expression"
    | Plan _ -> "plan"
    | Op _ -> "operator"
    | Oracle_fired _ -> "oracle"
    | Note _ -> "note"
end

type entry = { ts_ns : int; event : Event.t }

(* ------------------------------------------------------------------ *)
(* The ring buffer                                                     *)

(* The hot path is structure-of-arrays on purpose.  An [entry array] ring
   costs a 3-word record plus a boxed int64 per event, all of it retained
   by the (major-heap) ring until the round ends — measured at ~8% of
   campaign wall time in GC promotion and barrier work.  Storing the
   event pointer and an immediate-int timestamp in two parallel arrays
   keeps [record] down to one barriered store; [entry] values are only
   materialised on the cold drain path ({!events}). *)
type state = {
  capacity : int;
  ev : Event.t array;
  ts : int array; (* ns since t0; an immediate int, so no write barrier *)
  mutable len : int;
  mutable next : int; (* write cursor *)
  mutable dropped : int;
  mutable t0 : int;
  mutable seed : int;
  mutable dialect : Dialect.t;
}

type t = Noop | Rec of state

let dummy_event = Event.Note ""

let create ?(capacity = 1024) () =
  let capacity = max 1 capacity in
  Rec
    {
      capacity;
      ev = Array.make capacity dummy_event;
      ts = Array.make capacity 0;
      len = 0;
      next = 0;
      dropped = 0;
      t0 = Telemetry.Clock.now_ns_int ();
      seed = 0;
      dialect = Dialect.Sqlite_like;
    }

let noop = Noop
let enabled = function Noop -> false | Rec _ -> true

let begin_round t ~seed ~dialect =
  match t with
  | Noop -> ()
  | Rec s ->
      (* drop references to the previous round's events so their graphs
         (statement ASTs, detail strings) can be collected promptly *)
      Array.fill s.ev 0 (min s.len s.capacity) dummy_event;
      s.len <- 0;
      s.next <- 0;
      s.dropped <- 0;
      s.t0 <- Telemetry.Clock.now_ns_int ();
      s.seed <- seed;
      s.dialect <- dialect

(* variant for call sites that just read the clock to compute a duration:
   reuses that reading as the entry timestamp instead of taking another *)
let record_at t ~now_ns event =
  match t with
  | Noop -> ()
  | Rec s ->
      s.ev.(s.next) <- event;
      s.ts.(s.next) <- now_ns - s.t0;
      s.next <- (s.next + 1) mod s.capacity;
      if s.len < s.capacity then s.len <- s.len + 1
      else s.dropped <- s.dropped + 1

let record t event =
  match t with
  | Noop -> ()
  | Rec _ -> record_at t ~now_ns:(Telemetry.Clock.now_ns_int ()) event

let note t msg = record t (Event.Note msg)

let events = function
  | Noop -> []
  | Rec s ->
      let start = (s.next - s.len + s.capacity) mod s.capacity in
      List.init s.len (fun i ->
          let j = (start + i) mod s.capacity in
          { ts_ns = s.ts.(j); event = s.ev.(j) })

let length = function Noop -> 0 | Rec s -> s.len
let dropped = function Noop -> 0 | Rec s -> s.dropped
let capacity = function Noop -> 0 | Rec s -> s.capacity
let seed = function Noop -> 0 | Rec s -> s.seed
let dialect = function Noop -> Dialect.Sqlite_like | Rec s -> s.dialect

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let entry_json dialect e =
  let base = [ ("ts_ns", string_of_int e.ts_ns) ] in
  let fields =
    match e.event with
    | Event.Statement { stmt; outcome; dur_ns } ->
        let outcome_fields =
          match outcome with
          | Event.Rows n -> [ ("outcome", {|"rows"|}); ("rows", string_of_int n) ]
          | Event.Affected n ->
              [ ("outcome", {|"affected"|}); ("rows", string_of_int n) ]
          | Event.Done -> [ ("outcome", {|"ok"|}) ]
          | Event.Error msg ->
              [ ("outcome", {|"error"|}); ("error", json_string msg) ]
          | Event.Crashed msg ->
              [ ("outcome", {|"crash"|}); ("error", json_string msg) ]
        in
        [
          ("type", {|"statement"|});
          ("sql", json_string (Sqlast.Sql_printer.stmt dialect stmt));
        ]
        @ outcome_fields
        @ [ ("dur_ns", string_of_int dur_ns) ]
    | Event.Pivot { source; row } ->
        [
          ("type", {|"pivot"|});
          ("source", json_string source);
          ("row", "[" ^ String.concat "," (List.map json_string row) ^ "]");
        ]
    | Event.Expr { raw; verdict; rectified } ->
        [
          ("type", {|"expression"|});
          ("raw", json_string (Sqlast.Sql_printer.expr dialect raw));
          ("verdict", json_string (Tvl.show verdict));
          ("rectified", json_string (Sqlast.Sql_printer.expr dialect rectified));
        ]
    | Event.Plan { table; path } ->
        [
          ("type", {|"plan"|});
          ("table", json_string table);
          ("path", json_string path);
        ]
    | Event.Op { op; detail; rows_in; rows_out; batches; btree_nodes;
                 btree_entries; dur_ns } ->
        [
          ("type", {|"operator"|});
          ("op", json_string op);
          ("detail", json_string detail);
          ("rows_in", string_of_int rows_in);
          ("rows_out", string_of_int rows_out);
          ("batches", string_of_int batches);
          ("btree_nodes", string_of_int btree_nodes);
          ("btree_entries", string_of_int btree_entries);
          ("dur_ns", string_of_int dur_ns);
        ]
    | Event.Oracle_fired { oracle; message; phase } ->
        [
          ("type", {|"oracle"|});
          ("oracle", json_string oracle);
          ("message", json_string message);
          ("phase", json_string phase);
        ]
    | Event.Note msg -> [ ("type", {|"note"|}); ("note", json_string msg) ]
  in
  obj (base @ fields)

let to_json t =
  let d = dialect t in
  obj
    [
      ("round_seed", string_of_int (seed t));
      ("dialect", json_string (Dialect.name d));
      ("clock", json_string Telemetry.Clock.source);
      ("capacity", string_of_int (capacity t));
      ("dropped", string_of_int (dropped t));
      ( "events",
        "[" ^ String.concat "," (List.map (entry_json d) (events t)) ^ "]" );
    ]
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Repro bundles                                                       *)

let mkdir_p path =
  let rec go p =
    if p = "" || p = "." || p = "/" || Sys.file_exists p then ()
    else begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let write_text path text =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc text)

module Bundle = struct
  type t = {
    b_seed : int;
    b_dialect : Dialect.t;
    b_oracle : string; (* stable token, e.g. "containment" *)
    b_message : string;
    b_phase : string;
    b_bugs : string list;
    b_statements : A.stmt list;
    b_expected : string option;
    b_actual : string option;
    b_plan : string list;
    b_trace_json : string;
  }

  let one_line s =
    String.map (function '\n' | '\r' -> ' ' | c -> c) s

  let header b =
    [
      "-- pqs repro bundle";
      Printf.sprintf "-- dialect: %s" (Dialect.name b.b_dialect);
      Printf.sprintf "-- seed: %d" b.b_seed;
      Printf.sprintf "-- oracle: %s" b.b_oracle;
      Printf.sprintf "-- phase: %s" b.b_phase;
      Printf.sprintf "-- bugs: %s" (String.concat "," b.b_bugs);
      Printf.sprintf "-- message: %s" (one_line b.b_message);
    ]

  let script_text b =
    String.concat "\n"
      (header b
      @ [ Sqlast.Sql_printer.script b.b_dialect b.b_statements ])
    ^ "\n"

  let dir_name b = Printf.sprintf "bundle-%06d-%s" b.b_seed b.b_oracle

  let to_json b =
    obj
      [
        ("seed", string_of_int b.b_seed);
        ("dialect", json_string (Dialect.name b.b_dialect));
        ("oracle", json_string b.b_oracle);
        ("message", json_string b.b_message);
        ("phase", json_string b.b_phase);
        ( "bugs",
          "[" ^ String.concat "," (List.map json_string b.b_bugs) ^ "]" );
        ("statements", string_of_int (List.length b.b_statements));
        ( "expected",
          match b.b_expected with None -> "null" | Some s -> json_string s );
        ( "actual",
          match b.b_actual with None -> "null" | Some s -> json_string s );
        ( "plan",
          "[" ^ String.concat "," (List.map json_string b.b_plan) ^ "]" );
      ]
    ^ "\n"

  let write ~dir b =
    let bundle_dir = Filename.concat dir (dir_name b) in
    mkdir_p bundle_dir;
    let sql_path = Filename.concat bundle_dir "repro.sql" in
    write_text sql_path (script_text b);
    write_text (Filename.concat bundle_dir "bundle.json") (to_json b);
    write_text (Filename.concat bundle_dir "trace.json") b.b_trace_json;
    sql_path

  (* After reducer minimization the bundle's script is re-derived in
     place: the self-describing header lines are kept (plus a marker) and
     the statement body is replaced with the reduced script. *)
  let rewrite_script ~sql_path ~dialect stmts =
    let headers =
      if not (Sys.file_exists sql_path) then []
      else begin
        let ic = open_in sql_path in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
            let acc = ref [] in
            (try
               while true do
                 let line = input_line ic in
                 if String.length line >= 2 && String.sub line 0 2 = "--" then
                   acc := line :: !acc
               done
             with End_of_file -> ());
            List.rev !acc)
      end
    in
    let headers =
      List.filter
        (fun l -> not (String.length l >= 10 && String.sub l 0 10 = "-- reduced"))
        headers
      @ [ "-- reduced: true" ]
    in
    write_text sql_path
      (String.concat "\n" (headers @ [ Sqlast.Sql_printer.script dialect stmts ])
      ^ "\n")

  (* Parse the self-describing header of a repro script back into
     (key, value) pairs; the SQL body is everything that is not a comment
     line. *)
  let parse_script_text text =
    let lines = String.split_on_char '\n' text in
    let headers, body =
      List.fold_left
        (fun (hs, body) line ->
          let trimmed = String.trim line in
          if String.length trimmed >= 2 && String.sub trimmed 0 2 = "--" then
            let rest = String.trim (String.sub trimmed 2 (String.length trimmed - 2)) in
            match String.index_opt rest ':' with
            | Some i ->
                let key = String.trim (String.sub rest 0 i) in
                let value =
                  String.trim (String.sub rest (i + 1) (String.length rest - i - 1))
                in
                ((key, value) :: hs, body)
            | None -> (hs, body)
          else (hs, line :: body))
        ([], []) lines
    in
    (List.rev headers, String.concat "\n" (List.rev body))
end
