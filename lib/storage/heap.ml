(* Table heap: rowid-addressed row storage.  Scan order is rowid order, as
   in a rowid table.  Sized for PQS workloads (tens of rows, paper
   Section 3.4), so simplicity beats asymptotics. *)

type t = {
  mutable rows : (int64, Row.t) Hashtbl.t;
  mutable next_rowid : int64;
  (* read-path profiling: full scans started and rows they produced *)
  mutable scans : int;
  mutable rows_scanned : int;
  (* point fetches by rowid: flight-recorder operator annotations read
     deltas of this around index-driven lookups *)
  mutable lookups : int;
}

let create () =
  {
    rows = Hashtbl.create 16;
    next_rowid = 1L;
    scans = 0;
    rows_scanned = 0;
    lookups = 0;
  }

let profile h = (h.scans, h.rows_scanned)
let lookup_count h = h.lookups

let note_scan h =
  h.scans <- h.scans + 1;
  h.rows_scanned <- h.rows_scanned + Hashtbl.length h.rows
let row_count h = Hashtbl.length h.rows

let alloc_rowid h =
  let id = h.next_rowid in
  h.next_rowid <- Int64.add id 1L;
  id

let insert h values =
  let rowid = alloc_rowid h in
  let row = Row.make ~rowid values in
  Hashtbl.replace h.rows rowid row;
  row

(* Insert preserving a caller-chosen rowid (used by OR REPLACE re-insertion
   and by transaction rollback). *)
let insert_with_rowid h ~rowid values =
  if rowid >= h.next_rowid then h.next_rowid <- Int64.add rowid 1L;
  let row = Row.make ~rowid values in
  Hashtbl.replace h.rows rowid row;
  row

let delete h rowid = Hashtbl.remove h.rows rowid
let find h rowid =
  h.lookups <- h.lookups + 1;
  Hashtbl.find_opt h.rows rowid

let rowids_sorted h =
  Hashtbl.fold (fun id _ acc -> id :: acc) h.rows [] |> List.sort Int64.compare

let iter f h =
  note_scan h;
  List.iter (fun id -> f (Hashtbl.find h.rows id)) (rowids_sorted h)

let to_list h =
  note_scan h;
  List.map (fun id -> Hashtbl.find h.rows id) (rowids_sorted h)

let clear h =
  Hashtbl.reset h.rows;
  h.next_rowid <- 1L

let copy h =
  {
    rows = Hashtbl.copy h.rows;
    next_rowid = h.next_rowid;
    scans = 0;
    rows_scanned = 0;
    lookups = 0;
  }

let deep_copy h =
  let rows = Hashtbl.create (Hashtbl.length h.rows) in
  Hashtbl.iter (fun id r -> Hashtbl.replace rows id (Row.copy r)) h.rows;
  { rows; next_rowid = h.next_rowid; scans = 0; rows_scanned = 0; lookups = 0 }

let nth_row h n =
  match List.nth_opt (rowids_sorted h) n with
  | None -> None
  | Some id -> Hashtbl.find_opt h.rows id
