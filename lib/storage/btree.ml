(* Classic CLRS B-tree of minimum degree [t_min], with mutable nodes.

   Duplicate user keys are supported by tagging every entry with a unique
   sequence number and ordering internally by (key, seq); internal keys are
   therefore distinct and deletion is the standard unique-key algorithm.
   Equal user keys enumerate in insertion order because seq increases. *)

module Make (Ord : sig
  type key

  val compare : key -> key -> int
end) =
struct
  let t_min = 4
  let max_entries = (2 * t_min) - 1

  type 'v entry = { ukey : Ord.key; seq : int; value : 'v }

  type 'v node = {
    mutable entries : 'v entry array;
    mutable children : 'v node array; (* empty iff leaf *)
  }

  type 'v t = {
    mutable root : 'v node;
    mutable size : int;
    mutable next_seq : int;
    (* read-path profiling: cumulative over the tree's lifetime, bumped by
       [range_walk] only (inserts/deletes are not profiled) *)
    mutable nodes_visited : int;
    mutable entries_scanned : int;
  }

  let leaf_node entries = { entries; children = [||] }

  let create () =
    {
      root = leaf_node [||];
      size = 0;
      next_seq = 0;
      nodes_visited = 0;
      entries_scanned = 0;
    }

  let profile t = (t.nodes_visited, t.entries_scanned)
  let length t = t.size
  let is_empty t = t.size = 0
  let is_leaf n = Array.length n.children = 0

  let cmp_entry a b =
    let c = Ord.compare a.ukey b.ukey in
    if c <> 0 then c else compare a.seq b.seq

  let array_insert a i x =
    let n = Array.length a in
    Array.init (n + 1) (fun j ->
        if j < i then a.(j) else if j = i then x else a.(j - 1))

  let array_remove a i =
    let n = Array.length a in
    Array.init (n - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

  (* first index whose entry is >= e *)
  let lower_bound entries e =
    let n = Array.length entries in
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cmp_entry entries.(mid) e < 0 then go (mid + 1) hi else go lo mid
    in
    go 0 n

  (* ---------------- insertion ---------------- *)

  let split_child parent i =
    let child = parent.children.(i) in
    let mid = t_min - 1 in
    let median = child.entries.(mid) in
    let right =
      {
        entries = Array.sub child.entries (mid + 1) (t_min - 1);
        children =
          (if is_leaf child then [||] else Array.sub child.children t_min t_min);
      }
    in
    child.entries <- Array.sub child.entries 0 mid;
    if not (is_leaf child) then
      child.children <- Array.sub child.children 0 t_min;
    parent.entries <- array_insert parent.entries i median;
    parent.children <- array_insert parent.children (i + 1) right

  let rec insert_nonfull node e =
    let i = lower_bound node.entries e in
    if is_leaf node then node.entries <- array_insert node.entries i e
    else begin
      let i =
        if Array.length node.children.(i).entries = max_entries then begin
          split_child node i;
          if cmp_entry e node.entries.(i) > 0 then i + 1 else i
        end
        else i
      in
      insert_nonfull node.children.(i) e
    end

  let insert t key value =
    let e = { ukey = key; seq = t.next_seq; value } in
    t.next_seq <- t.next_seq + 1;
    if Array.length t.root.entries = max_entries then begin
      let old_root = t.root in
      let new_root = { entries = [||]; children = [| old_root |] } in
      split_child new_root 0;
      t.root <- new_root
    end;
    insert_nonfull t.root e;
    t.size <- t.size + 1

  (* ---------------- traversal ---------------- *)

  (* In-order walk over entries whose user key may satisfy the bounds; each
     emitted entry is additionally filtered by the exact bound predicates.
     Subtree [i] of a node holds internal keys between separators [i-1] and
     [i], hence user keys in [sep_{i-1}.ukey, sep_i.ukey]; we prune subtrees
     whose user-key interval cannot intersect [lo, hi].  [f] may raise [Exit]
     to stop early. *)
  let range_walk ?lo ?hi f t =
    let above_lo k =
      match lo with
      | None -> true
      | Some (bound, inclusive) ->
          let c = Ord.compare k bound in
          if inclusive then c >= 0 else c > 0
    in
    let below_hi k =
      match hi with
      | None -> true
      | Some (bound, inclusive) ->
          let c = Ord.compare k bound in
          if inclusive then c <= 0 else c < 0
    in
    let rec walk node =
      let n = Array.length node.entries in
      t.nodes_visited <- t.nodes_visited + 1;
      t.entries_scanned <- t.entries_scanned + n;
      if is_leaf node then
        Array.iter
          (fun e -> if above_lo e.ukey && below_hi e.ukey then f e)
          node.entries
      else
        for i = 0 to n do
          (* subtree i spans user keys [sep_{i-1}.ukey, sep_i.ukey] *)
          let subtree_possible =
            (i = n || above_lo node.entries.(i).ukey)
            && (i = 0 || below_hi node.entries.(i - 1).ukey)
          in
          if subtree_possible then walk node.children.(i);
          if i < n then begin
            let e = node.entries.(i) in
            if above_lo e.ukey && below_hi e.ukey then f e
          end
        done
    in
    try walk t.root with Exit -> ()

  let iter_range ?lo ?hi f t = range_walk ?lo ?hi (fun e -> f e.ukey e.value) t
  let iter f t = iter_range f t

  let to_list t =
    let acc = ref [] in
    iter (fun k v -> acc := (k, v) :: !acc) t;
    List.rev !acc

  let find_all t key =
    let acc = ref [] in
    iter_range ~lo:(key, true) ~hi:(key, true) (fun _ v -> acc := v :: !acc) t;
    List.rev !acc

  let mem t key = find_all t key <> []

  let min_binding t =
    let rec go node =
      if Array.length node.entries = 0 then None
      else if is_leaf node then
        let e = node.entries.(0) in
        Some (e.ukey, e.value)
      else go node.children.(0)
    in
    go t.root

  let max_binding t =
    let rec go node =
      let n = Array.length node.entries in
      if n = 0 then None
      else if is_leaf node then
        let e = node.entries.(n - 1) in
        Some (e.ukey, e.value)
      else go node.children.(n)
    in
    go t.root

  (* ---------------- deletion ---------------- *)

  let merge_children node i =
    (* merge children i and i+1 around separator i; returns the merged child *)
    let left = node.children.(i) and right = node.children.(i + 1) in
    let sep = node.entries.(i) in
    left.entries <- Array.concat [ left.entries; [| sep |]; right.entries ];
    if not (is_leaf left) then
      left.children <- Array.append left.children right.children;
    node.entries <- array_remove node.entries i;
    node.children <- array_remove node.children (i + 1);
    left

  (* Ensure child [i] has >= t_min entries before descending (CLRS case 3);
     returns the index of the child that now covers the same key range. *)
  let fill node i =
    let child = node.children.(i) in
    if Array.length child.entries >= t_min then i
    else
      let nkeys = Array.length node.entries in
      if i > 0 && Array.length node.children.(i - 1).entries >= t_min then begin
        (* rotate right: parent separator down, left sibling's max up *)
        let left = node.children.(i - 1) in
        let ln = Array.length left.entries in
        child.entries <- array_insert child.entries 0 node.entries.(i - 1);
        node.entries.(i - 1) <- left.entries.(ln - 1);
        left.entries <- array_remove left.entries (ln - 1);
        if not (is_leaf left) then begin
          let lc = Array.length left.children in
          let moved = left.children.(lc - 1) in
          left.children <- array_remove left.children (lc - 1);
          child.children <- array_insert child.children 0 moved
        end;
        i
      end
      else if i < nkeys && Array.length node.children.(i + 1).entries >= t_min
      then begin
        (* rotate left: parent separator down, right sibling's min up *)
        let right = node.children.(i + 1) in
        child.entries <-
          array_insert child.entries (Array.length child.entries)
            node.entries.(i);
        node.entries.(i) <- right.entries.(0);
        right.entries <- array_remove right.entries 0;
        if not (is_leaf right) then begin
          let moved = right.children.(0) in
          right.children <- array_remove right.children 0;
          child.children <-
            array_insert child.children (Array.length child.children) moved
        end;
        i
      end
      else begin
        let li = if i < nkeys then i else i - 1 in
        ignore (merge_children node li);
        li
      end

  let rec delete_min node =
    if is_leaf node then begin
      let e = node.entries.(0) in
      node.entries <- array_remove node.entries 0;
      e
    end
    else delete_min node.children.(fill node 0)

  let rec delete_max node =
    if is_leaf node then begin
      let n = Array.length node.entries in
      let e = node.entries.(n - 1) in
      node.entries <- array_remove node.entries (n - 1);
      e
    end
    else begin
      let i = fill node (Array.length node.children - 1) in
      delete_max node.children.(min i (Array.length node.children - 1))
    end

  (* Delete the (unique) entry comparing equal to [e]; assumes it exists. *)
  let rec delete_entry node e =
    let i = lower_bound node.entries e in
    let found =
      i < Array.length node.entries && cmp_entry node.entries.(i) e = 0
    in
    if found then begin
      if is_leaf node then node.entries <- array_remove node.entries i
      else
        let left = node.children.(i) and right = node.children.(i + 1) in
        if Array.length left.entries >= t_min then
          node.entries.(i) <- delete_max left
        else if Array.length right.entries >= t_min then
          node.entries.(i) <- delete_min right
        else
          (* both poor: merge around the target, then delete from the merge *)
          delete_entry (merge_children node i) e
    end
    else if is_leaf node then raise Not_found
    else
      (* e is strictly between separators i-1 and i, so it lives in subtree
         i; [fill] preserves that subtree's coverage and returns its index *)
      delete_entry node.children.(fill node i) e

  let remove ~veq t key value =
    let target = ref None in
    range_walk ~lo:(key, true) ~hi:(key, true)
      (fun e ->
        if veq e.value value then begin
          target := Some e;
          raise Exit
        end)
      t;
    match !target with
    | None -> false
    | Some e ->
        delete_entry t.root e;
        if Array.length t.root.entries = 0 && not (is_leaf t.root) then
          t.root <- t.root.children.(0);
        t.size <- t.size - 1;
        true

  (* ---------------- invariants ---------------- *)

  let check_invariants t =
    let fail msg = invalid_arg ("Btree invariant violated: " ^ msg) in
    let count = ref 0 in
    let rec max_entry nd =
      let m = Array.length nd.entries in
      if is_leaf nd then nd.entries.(m - 1) else max_entry nd.children.(m)
    in
    let rec min_entry nd =
      if is_leaf nd then nd.entries.(0) else min_entry nd.children.(0)
    in
    let rec check node ~is_root ~depth =
      let n = Array.length node.entries in
      count := !count + n;
      if not is_root && n < t_min - 1 then fail "underfull node";
      if n > max_entries then fail "overfull node";
      for i = 0 to n - 2 do
        if cmp_entry node.entries.(i) node.entries.(i + 1) >= 0 then
          fail "entries out of order"
      done;
      if is_leaf node then depth
      else begin
        if Array.length node.children <> n + 1 then fail "children arity";
        let depths =
          Array.to_list node.children
          |> List.map (fun c -> check c ~is_root:false ~depth:(depth + 1))
        in
        (match depths with
        | [] -> fail "internal node without children"
        | d :: rest ->
            if List.exists (fun d' -> d' <> d) rest then
              fail "non-uniform leaf depth");
        for i = 0 to n - 1 do
          let sep = node.entries.(i) in
          if Array.length node.children.(i).entries > 0
             && cmp_entry (max_entry node.children.(i)) sep >= 0
          then fail "left subtree >= separator";
          if Array.length node.children.(i + 1).entries > 0
             && cmp_entry (min_entry node.children.(i + 1)) sep <= 0
          then fail "right subtree <= separator"
        done;
        List.hd depths
      end
    in
    ignore (check t.root ~is_root:true ~depth:0);
    if !count <> t.size then fail "size mismatch"
end
