(** In-memory B-tree.

    This is the ordered structure backing every index of the engine (the
    paper's findings lean heavily on index interactions: partial indexes,
    collating-sequence keys, skip-scan, REINDEX).  Keys are ordered by the
    functor argument; duplicate keys are allowed and preserved in insertion
    order, so UNIQUE enforcement is done by the caller via {!find_all}. *)

module Make (Ord : sig
  type key

  val compare : key -> key -> int
end) : sig
  type 'v t

  val create : unit -> 'v t
  val length : 'v t -> int
  val is_empty : 'v t -> bool

  (** Insert a binding; duplicates of [key] are kept. *)
  val insert : 'v t -> Ord.key -> 'v -> unit

  (** Remove the first binding with this exact key and value (values compared
      with [veq]); returns whether a binding was removed. *)
  val remove : veq:('v -> 'v -> bool) -> 'v t -> Ord.key -> 'v -> bool

  (** All values bound to keys equal to [key], in insertion order. *)
  val find_all : 'v t -> Ord.key -> 'v list

  val mem : 'v t -> Ord.key -> bool

  (** In-order traversal. *)
  val iter : (Ord.key -> 'v -> unit) -> 'v t -> unit

  val to_list : 'v t -> (Ord.key * 'v) list

  (** In-order traversal of keys in [\[lo, hi\]]; [None] bounds are open.
      Bounds are inclusive or exclusive per the flags. *)
  val iter_range :
    ?lo:Ord.key * bool ->
    ?hi:Ord.key * bool ->
    (Ord.key -> 'v -> unit) ->
    'v t ->
    unit

  val min_binding : 'v t -> (Ord.key * 'v) option
  val max_binding : 'v t -> (Ord.key * 'v) option

  (** Validate B-tree structural invariants (node fill, key ordering, uniform
      leaf depth); raises [Invalid_argument] on violation.  Used by the
      property-based tests. *)
  val check_invariants : 'v t -> unit

  (** [(nodes_visited, entries_scanned)] accumulated by read-path traversals
      ({!iter}, {!iter_range}, {!find_all}, …) over the tree's lifetime.
      Insert/delete rebalancing is not counted.  Telemetry scrapes deltas of
      these around index operations. *)
  val profile : 'v t -> int * int
end
