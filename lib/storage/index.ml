(* Secondary index: a B-tree from canonicalized key tuples to rowids.

   Collations are applied when building the key (NOCASE folds case, RTRIM
   strips trailing spaces), so the tree itself orders keys with the plain
   cross-class value ordering and UNIQUE enforcement "sees through" the
   collation — the behaviour whose SQLite implementation held the paper's
   first reported bug (Listing 4). *)

open Sqlval

let key_compare (a : Value.t array) (b : Value.t array) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la || i >= lb then compare la lb
    else
      let c = Value.compare_total a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

module Tree = Btree.Make (struct
  type key = Value.t array

  let compare = key_compare
end)

type tree = int64 Tree.t

type t = {
  index_name : string;
  on_table : string;
  unique : bool;
  definition : Sqlast.Ast.indexed_column list;
  collations : Collation.t array; (* resolved, one per indexed column *)
  where : Sqlast.Ast.expr option; (* partial-index predicate *)
  mutable tree : tree;
}

let create ~name ~table ~unique ~definition ~collations ~where =
  {
    index_name = name;
    on_table = table;
    unique;
    definition;
    collations;
    where;
    tree = Tree.create ();
  }

let is_partial t = t.where <> None
let entry_count t = Tree.length t.tree

let is_expression_index t =
  List.exists
    (fun (ic : Sqlast.Ast.indexed_column) ->
      match ic.Sqlast.Ast.ic_expr with
      | Sqlast.Ast.Col _ -> false
      | _ -> true)
    t.definition

(* Fold each text component under the index's collation so equal-under-
   collation keys become byte-equal. *)
let canonical_key t (raw : Value.t array) : Value.t array =
  Array.mapi
    (fun i v ->
      match v with
      | Value.Text s when i < Array.length t.collations ->
          Value.Text (Collation.key t.collations.(i) s)
      | _ -> v)
    raw

let add t ~key ~rowid = Tree.insert t.tree (canonical_key t key) rowid

let remove t ~key ~rowid =
  Tree.remove ~veq:Int64.equal t.tree (canonical_key t key) rowid

let find_rowids t key = Tree.find_all t.tree (canonical_key t key)

(* Rowids of entries equal to [key] other than [rowid]; non-empty means a
   UNIQUE violation when inserting [rowid]. *)
let unique_conflicts t ~key ~rowid =
  if not t.unique then []
  else
    find_rowids t key
    |> List.filter (fun id -> not (Int64.equal id rowid))
    |> List.filter (fun _ ->
           (* NULLs never conflict in SQL UNIQUE semantics *)
           not (Array.exists Value.is_null key))

let iter_range ?lo ?hi f t =
  let lo = Option.map (fun (k, incl) -> (canonical_key t k, incl)) lo in
  let hi = Option.map (fun (k, incl) -> (canonical_key t k, incl)) hi in
  Tree.iter_range ?lo ?hi f t.tree

let iter f t = Tree.iter f t.tree
let clear t = t.tree <- Tree.create ()

let copy t =
  let tree = Tree.create () in
  Tree.iter (fun k v -> Tree.insert tree k v) t.tree;
  { t with tree }

let check_invariants t = Tree.check_invariants t.tree
let tree_profile t = Tree.profile t.tree
