(** Secondary index: a B-tree from canonicalized key tuples to rowids.

    Collations are applied when the key is built (NOCASE folds case, RTRIM
    strips trailing spaces), so the tree itself orders keys with the plain
    cross-class value ordering and UNIQUE enforcement "sees through" the
    collation — the behaviour whose SQLite implementation held the paper's
    first reported bug (Listing 4).

    Key *computation* (evaluating expression index columns against a row)
    lives in {!Ddl}, because it needs the engine evaluator — which is also
    what lets injected evaluator bugs corrupt indexes realistically. *)

open Sqlval

(** Lexicographic cross-class comparison of key tuples; shorter tuples
    order before their extensions. *)
val key_compare : Value.t array -> Value.t array -> int

(** The underlying b-tree of key tuples to rowids. *)
type tree

type t = {
  index_name : string;
  on_table : string;
  unique : bool;
  definition : Sqlast.Ast.indexed_column list;
  collations : Collation.t array;  (** resolved, one per indexed column *)
  where : Sqlast.Ast.expr option;  (** partial-index predicate *)
  mutable tree : tree;
}

val create :
  name:string ->
  table:string ->
  unique:bool ->
  definition:Sqlast.Ast.indexed_column list ->
  collations:Collation.t array ->
  where:Sqlast.Ast.expr option ->
  t

val is_partial : t -> bool
val entry_count : t -> int

(** Does any indexed column hold a non-trivial expression? *)
val is_expression_index : t -> bool

(** Fold text components under the index collations so equal-under-
    collation keys become byte-equal. *)
val canonical_key : t -> Value.t array -> Value.t array

val add : t -> key:Value.t array -> rowid:int64 -> unit
val remove : t -> key:Value.t array -> rowid:int64 -> bool
val find_rowids : t -> Value.t array -> int64 list

(** Rowids already bound to an equal key other than [rowid]; non-empty
    means inserting [rowid] violates UNIQUE.  Keys containing NULL never
    conflict (SQL UNIQUE semantics). *)
val unique_conflicts : t -> key:Value.t array -> rowid:int64 -> int64 list

val iter_range :
  ?lo:Value.t array * bool ->
  ?hi:Value.t array * bool ->
  (Value.t array -> int64 -> unit) ->
  t ->
  unit

val iter : (Value.t array -> int64 -> unit) -> t -> unit
val clear : t -> unit

(** Deep copy (rebuilds the tree); transaction snapshots. *)
val copy : t -> t

val check_invariants : t -> unit

(** [(nodes_visited, entries_scanned)] of the backing B-tree's read path
    (see {!Btree.Make.profile}); telemetry scrapes deltas around index
    operations. *)
val tree_profile : t -> int * int
