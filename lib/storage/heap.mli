(** Table heap: rowid-addressed row storage.

    Scan order is rowid order, like a rowid table.  Rowids grow
    monotonically and are never reused (until VACUUM rebuilds the heap).
    Sized for PQS workloads — tens of rows per table (paper Section 3.4) —
    so simplicity beats asymptotics. *)

type t = {
  mutable rows : (int64, Row.t) Hashtbl.t;
  mutable next_rowid : int64;
  mutable scans : int;  (** full scans started (read-path profiling) *)
  mutable rows_scanned : int;  (** rows those scans produced *)
  mutable lookups : int;  (** point fetches by rowid ({!find}) *)
}

val create : unit -> t
val row_count : t -> int

(** Allocate the next rowid without inserting. *)
val alloc_rowid : t -> int64

(** Insert values under a fresh rowid; returns the stored row. *)
val insert : t -> Sqlval.Value.t array -> Row.t

(** Insert (or overwrite) under a caller-chosen rowid; used by UPDATE
    in-place rewrites and transaction rollback. *)
val insert_with_rowid : t -> rowid:int64 -> Sqlval.Value.t array -> Row.t

val delete : t -> int64 -> unit
val find : t -> int64 -> Row.t option

(** All live rowids in ascending order (the scan order). *)
val rowids_sorted : t -> int64 list

val iter : (Row.t -> unit) -> t -> unit
val to_list : t -> Row.t list

(** Drop every row and reset the rowid counter (VACUUM's rebuild). *)
val clear : t -> unit

(** Shallow copy: shares row objects. *)
val copy : t -> t

(** Deep copy: fresh rows, used by transaction snapshots. *)
val deep_copy : t -> t

val nth_row : t -> int -> Row.t option

(** [(scans, rows_scanned)] accumulated by {!iter}/{!to_list} over this
    heap's lifetime; copies start from zero. *)
val profile : t -> int * int

(** Point fetches by rowid since creation; flight-recorder operator
    annotations read deltas of this around index-driven row lookups. *)
val lookup_count : t -> int
