type entry = { hits : int; first_seed : int }

(* Canonical representation: association list sorted by point name.  Every
   constructor below preserves the ordering, so structurally equal values
   are exactly the equal frontiers and [union] is commutative by
   construction. *)
type t = (string * entry) list

let empty = []

let combine a b =
  { hits = a.hits + b.hits; first_seed = min a.first_seed b.first_seed }

let rec insert point e = function
  | [] -> [ (point, e) ]
  | (p, e') :: rest as l ->
      let c = String.compare point p in
      if c < 0 then (point, e) :: l
      else if c = 0 then (p, combine e e') :: rest
      else (p, e') :: insert point e rest

let hit t ~seed point = insert point { hits = 1; first_seed = seed } t

let of_points ~seed points =
  (* sort once and merge adjacent duplicates: O(n log n), not the O(n^2)
     of repeated sorted-insertion — this is the per-round accounting path
     (a round's expr-kind multiset is the large input) *)
  List.sort String.compare points
  |> List.fold_left
       (fun acc p ->
         match acc with
         | (p', e) :: rest when String.equal p p' ->
             (p', { e with hits = e.hits + 1 }) :: rest
         | _ -> (p, { hits = 1; first_seed = seed }) :: acc)
       []
  |> List.rev

let rec union a b =
  match (a, b) with
  | [], t | t, [] -> t
  | (pa, ea) :: ra, (pb, eb) :: rb ->
      let c = String.compare pa pb in
      if c < 0 then (pa, ea) :: union ra b
      else if c > 0 then (pb, eb) :: union a rb
      else (pa, combine ea eb) :: union ra rb

let union_all = List.fold_left union empty
let points t = t

let of_entries entries =
  (* re-canonicalize: decoded input may be unsorted or carry duplicates *)
  List.sort (fun (a, _) (b, _) -> String.compare a b) entries
  |> List.fold_left
       (fun acc (p, e) ->
         match acc with
         | (p', e') :: rest when String.equal p p' ->
             (p', combine e e') :: rest
         | _ -> (p, e) :: acc)
       []
  |> List.rev
let hits t point =
  match List.assoc_opt point t with Some e -> e.hits | None -> 0

let cardinal = List.length

(* ------------------------------------------------------------------ *)
(* Universe-relative views                                              *)

let hit_in ~universe t =
  List.fold_left
    (fun acc p -> if hits t p > 0 then acc + 1 else acc)
    0 universe

let fraction ~universe t =
  match universe with
  | [] -> 0.0
  | _ ->
      float_of_int (hit_in ~universe t) /. float_of_int (List.length universe)

let cold ~universe t = List.filter (fun p -> hits t p = 0) universe

let coldest ?(n = 10) ~universe t =
  let ranked = List.mapi (fun i p -> (hits t p, i, p)) universe in
  let sorted = List.sort compare ranked in
  let rec take k = function
    | [] -> []
    | (h, _, p) :: rest -> if k = 0 then [] else (p, h) :: take (k - 1) rest
  in
  take n sorted

(* ------------------------------------------------------------------ *)
(* Export                                                               *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ~universe ?(bundles = []) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"universe\": %d,\n" (List.length universe));
  Buffer.add_string buf
    (Printf.sprintf "  \"hit\": %d,\n" (hit_in ~universe t));
  Buffer.add_string buf
    (Printf.sprintf "  \"fraction\": %.4f,\n" (fraction ~universe t));
  Buffer.add_string buf "  \"points\": [";
  List.iteri
    (fun i (p, e) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"point\": \"%s\", \"hits\": %d, \"first_seed\": %d}"
           (json_escape p) e.hits e.first_seed))
    t;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"cold\": [";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape p)))
    (cold ~universe t);
  Buffer.add_string buf "],\n";
  Buffer.add_string buf "  \"bundles\": [";
  List.iteri
    (fun i b ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape b)))
    bundles;
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

let write_json ~universe ?bundles t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ~universe ?bundles t))
