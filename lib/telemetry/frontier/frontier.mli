(** The coverage frontier: which named feature points a campaign has and
    has not exercised.

    A frontier is an immutable value mapping point names (query-shape
    fingerprints, expression kinds, planner paths — the caller decides the
    vocabulary) to hit counts plus the earliest seed that first hit them.
    Frontiers obey the same monoid laws as [Stats]: {!union} is
    associative {e and} commutative with {!empty} as identity, so
    campaign shards can merge their frontiers in any grouping and arrive
    at the identical value.  The representation is canonical (a sorted
    association list), so structural equality [( = )] is frontier
    equality — the law tests rely on this.

    Universe-relative views ({!fraction}, {!cold}, {!coldest}) take the
    vocabulary as an explicit [universe] so the frontier itself stays a
    pure mergeable value; points outside the universe are never dropped
    (they count as extras, mirroring [Engine.Coverage]). *)

type entry = {
  hits : int;  (** times the point was exercised *)
  first_seed : int;
      (** smallest seed (campaign round id) that first hit the point —
          merging takes the minimum, so the value is shard-independent *)
}

type t

val empty : t

(** [hit t ~seed point] counts one exercise of [point] by round [seed]. *)
val hit : t -> seed:int -> string -> t

(** [of_points ~seed points] counts each listed point once (duplicates
    accumulate). *)
val of_points : seed:int -> string list -> t

(** Associative, commutative; {!empty} is a two-sided identity.  Hit
    counts add, [first_seed] takes the minimum. *)
val union : t -> t -> t

val union_all : t list -> t

(** All points with their entries, sorted by point name. *)
val points : t -> (string * entry) list

(** Rebuild a frontier from decoded [(point, entry)] pairs (the inverse
    of {!points}); input may be unsorted and may carry duplicates, which
    combine as in {!union}. *)
val of_entries : (string * entry) list -> t

(** Hit count of one point (0 when never hit). *)
val hits : t -> string -> int

(** Number of distinct points hit. *)
val cardinal : t -> int

(** {1 Universe-relative views} *)

(** How many universe points the frontier has hit. *)
val hit_in : universe:string list -> t -> int

(** Fraction of [universe] points hit, in [0, 1]. *)
val fraction : universe:string list -> t -> float

(** Universe points never hit, in universe order — the stale frontier the
    dashboard lists and guided generation aims at. *)
val cold : universe:string list -> t -> string list

(** Up to [n] universe points with the fewest hits (never-hit points
    first, then ascending hit count; ties in universe order). *)
val coldest : ?n:int -> universe:string list -> t -> (string * int) list

(** {1 Export} *)

(** JSON snapshot:
    [{"universe":N,"hit":N,"fraction":F,"points":[{"point":..,"hits":..,
    "first_seed":..},...],"cold":[...],"bundles":[...]}].  [bundles]
    cross-links the repro bundles the campaign wrote alongside this
    frontier (empty list when none). *)
val to_json : universe:string list -> ?bundles:string list -> t -> string

val write_json :
  universe:string list -> ?bundles:string list -> t -> string -> unit
