(** End-to-end telemetry: a metrics registry, phase spans and export.

    The registry holds named {e counters}, {e gauges} and fixed-bucket
    latency {e histograms}, each optionally labelled (Prometheus-style
    [name{k="v",...}] series).  Registries are single-domain mutable
    values; campaigns give every worker domain its own registry and fold
    them after [Domain.join] with {!merge_into} — the same pattern as
    [Engine.Coverage] — and {!merge} obeys the same monoid laws as
    [Stats.merge]: it is associative, a freshly {!create}d registry is a
    left and right identity, and histogram bucket layouts are preserved.

    Telemetry is opt-in and zero-cost when disabled: the {!noop} sink
    turns every operation into a single branch, so code can thread a
    registry unconditionally.  Recording never draws randomness and never
    changes control flow, so enabling telemetry is campaign-neutral by
    construction: the bug set and merged [Stats] of a run are identical
    with telemetry on or off.

    Metric naming follows the Prometheus conventions documented in
    README's Observability section: loop-level metrics are [pqs_*],
    engine-internal metrics are [minidb_*]; counters end in [_total],
    latency histograms in [_seconds]. *)

(** Monotonic time.  All duration measurements in the tool go through
    this clock so wall-clock jumps (NTP steps, suspend/resume) can never
    produce negative or wildly wrong elapsed values.  Backed by
    [CLOCK_MONOTONIC] via the bechamel stub ([Unix.clock_gettime] is not
    exposed by the OCaml Unix library). *)
module Clock : sig
  (** Nanoseconds from an arbitrary fixed origin; never decreases. *)
  val now_ns : unit -> int64

  (** Same reading as an immediate [int] (no [Int64] boxing), for hot
      per-event instrumentation.  63 bits of nanoseconds cannot overflow
      in practice. *)
  val now_ns_int : unit -> int

  (** Seconds from the same origin, for duration arithmetic. *)
  val now : unit -> float

  (** Identifies the backing clock (["clock_monotonic"]). *)
  val source : string
end

type t
(** A metrics registry, or the disabled sink. *)

(** A fresh, enabled, empty registry. *)
val create : unit -> t

(** The disabled sink: every recording operation is a no-op, every read
    returns the empty value. *)
val noop : t

val enabled : t -> bool

(** {1 Recording} *)

(** [inc t name] adds [by] (default 1) to the counter series
    [(name, labels)], creating it at zero first.  Counters only grow. *)
val inc : t -> ?labels:(string * string) list -> ?by:int -> string -> unit

(** [set_gauge t name v] sets the gauge series to [v]. *)
val set_gauge : t -> ?labels:(string * string) list -> string -> float -> unit

(** [observe t name v] records one observation into the histogram series.
    The bucket layout is fixed at the series' first observation
    ({!default_buckets} unless [?buckets] is given) and is immutable
    afterwards; merging series with different layouts raises
    [Invalid_argument]. *)
val observe :
  t -> ?labels:(string * string) list -> ?buckets:float array -> string ->
  float -> unit

(** Latency buckets in seconds, 1µs to 10s. *)
val default_buckets : float array

(** {1 The span taxonomy}

    The pipeline's phases form a closed set (see README, Observability):
    loop-side phases record into [pqs_phase_seconds{phase=...}], engine-
    side phases into [minidb_phase_seconds{phase=...}].  Timing through
    the enum ({!Span.timed}) resolves the series by array index, which is
    what the per-statement hot paths use; the string-based {!Span.time}
    remains for ad-hoc spans. *)
module Phase : sig
  type t =
    | Gen_db  (** random schema + data generation *)
    | Pivot  (** pivot row selection *)
    | Gen_expr  (** random expression generation *)
    | Rectify  (** expression rectification (includes its evaluations) *)
    | Interp
        (** standalone expression evaluation, outside rectification *)
    | Containment  (** executing the containment check on the engine *)
    | Lint  (** static analysis self-check oracle *)
    | Plan_diff  (** multi-plan differential execution oracle *)
    | Const_opt  (** constant-optimization (CODDTest) oracle *)
    | Parse  (** SQL text parsing (engine) *)
    | Plan  (** access-path planning (engine) *)
    | Execute  (** statement execution (engine) *)

  (** The [phase=...] label value, e.g. ["gen_db"]. *)
  val name : t -> string

  (** The histogram family the phase records into. *)
  val metric : t -> string

  val all : t list
end

(** {1 Pre-resolved handles}

    Hot paths that record into the same series thousands of times per
    second can resolve the series once and skip the per-operation label
    matching and table lookup.  Handles made from the {!noop} sink are
    inert.  A handle stays valid for the life of its registry: merging
    updates series cells in place and never invalidates them. *)

type counter_handle
type histogram_handle

(** Resolve (creating if needed) the counter series once.  Raises
    [Invalid_argument] if the series exists with a different type. *)
val counter_handle :
  t -> ?labels:(string * string) list -> string -> counter_handle

val histogram_handle :
  t -> ?labels:(string * string) list -> ?buckets:float array -> string ->
  histogram_handle

val inc_handle : ?by:int -> counter_handle -> unit
val observe_handle : histogram_handle -> float -> unit

(** {1 Phase spans} *)

module Span : sig
  (** [time t phase f] runs [f ()] and records its monotonic duration
      into the histogram [metric] (default ["pqs_phase_seconds"]) with
      label [phase="<phase>"].  The duration is recorded even when [f]
      raises.  Spans may nest; nested phases are each charged their own
      wall time (so e.g. [rectify] time includes the [interp] calls it
      makes).  On the {!noop} sink this is a single branch around
      [f ()]. *)
  val time : t -> ?metric:string -> string -> (unit -> 'a) -> 'a

  (** [timed t phase f]: like {!time} for a taxonomy phase, resolving the
      series through the registry's per-phase cache — the hot-path form
      used throughout the pipeline. *)
  val timed : t -> Phase.t -> (unit -> 'a) -> 'a

  type handle
  (** A span whose series has been resolved up front, for sites inside
      tight loops.  From {!noop} the handle is inert. *)

  val handle : t -> ?metric:string -> string -> handle

  (** Like {!time} but through a pre-resolved {!handle}. *)
  val time_with : handle -> (unit -> 'a) -> 'a
end

(** {1 Merging} *)

(** Fold [src]'s series into [dst] (counters and histogram cells add,
    gauges add, histogram [sum]/[count] add).  No-op when either side is
    {!noop}.  Raises [Invalid_argument] if a histogram series exists on
    both sides with different bucket layouts. *)
val merge_into : dst:t -> src:t -> unit

(** Pure variant: a fresh registry holding [a]'s and [b]'s series summed.
    Associative, and a fresh empty registry is an identity (witnessed on
    {!snapshot}s). *)
val merge : t -> t -> t

(** {1 Reading} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : (float * int) list;
          (** (upper bound, cumulative count) pairs in increasing bound
              order; the implicit [+Inf] bucket is the total count *)
      sum : float;
      count : int;
    }

type sample = {
  s_name : string;
  s_labels : (string * string) list;  (** sorted by label key *)
  s_value : value;
}

(** Every series, sorted by (name, labels) — a deterministic, comparable
    view of the registry (the merge-law tests compare snapshots). *)
val snapshot : t -> sample list

(** Fold one {!sample} back into the registry with the {!merge_into}
    semantics (counters and gauges add, cumulative histogram buckets
    unfold into per-bucket cells) — so recording every sample of a
    {!snapshot} equals merging the snapshotted registry.  The fleet
    aggregator uses this to fold worker heartbeat snapshots received over
    process boundaries.  Raises [Invalid_argument] on a type or bucket
    layout clash, like {!merge_into}. *)
val record_sample : t -> sample -> unit

(** Current counter value; 0 when the series does not exist. *)
val counter_value : t -> ?labels:(string * string) list -> string -> int

val histogram_count : t -> ?labels:(string * string) list -> string -> int
val histogram_sum : t -> ?labels:(string * string) list -> string -> float

(** Prometheus-style quantile estimate from the bucket counts (linear
    interpolation within the bucket); [None] when the series is missing
    or empty.  [q] in [0, 1]. *)
val quantile :
  t -> ?labels:(string * string) list -> string -> float -> float option

(** {1 Export} *)

(** Prometheus text exposition format: one [# HELP] / [# TYPE] pair per
    metric family, then the series lines; histograms expand to
    [_bucket{le="..."}] (cumulative, ending at [le="+Inf"]), [_sum] and
    [_count]. *)
val to_prometheus : t -> string

(** JSON snapshot: [{"clock":"...","metrics":[...]}] with one object per
    series; histogram buckets are cumulative, mirroring the Prometheus
    export. *)
val to_json : t -> string

(** Write {!to_json} if [path] ends in [.json], else {!to_prometheus}. *)
val write_file : t -> string -> unit

(** [write_atomic path content] writes [content] through a same-directory
    temp file and atomic rename, so concurrent readers never observe a
    partial file.  The building block for every periodically re-exported
    snapshot (campaign [--metrics-every], fleet state files). *)
val write_atomic : string -> string -> unit

(** {!write_file} through {!write_atomic}. *)
val write_file_atomic : t -> string -> unit

(** {1 Chrome trace events} *)

(** Minimal trace-event-format writer (the [chrome://tracing] / Perfetto
    JSON format): complete ("ph":"X") events on worker timelines plus
    metadata naming them. *)
module Trace : sig
  type arg = Int of int | Float of float | Str of string

  type event

  (** A complete event: [ts_us]/[dur_us] are microseconds from the trace
      origin; [tid] is the worker timeline. *)
  val complete :
    name:string -> ?cat:string -> ?args:(string * arg) list -> ts_us:float ->
    dur_us:float -> tid:int -> unit -> event

  (** Metadata event naming a worker timeline. *)
  val thread_name : tid:int -> string -> event

  (** Metadata event naming the process. *)
  val process_name : string -> event

  (** The [{"traceEvents":[...]}] JSON document. *)
  val to_json : event list -> string

  val write : string -> event list -> unit
end
