(* Metrics registry, phase spans, monotonic clock and exporters.

   A registry is a plain hashtable of series owned by one domain; cross-
   domain aggregation is merge-after-join (Campaign gives each worker its
   own registry), so no operation here takes a lock.  The Noop sink makes
   every recording a single branch so instrumentation can stay threaded
   unconditionally through the hot paths. *)

module Clock = struct
  (* the bechamel stub's external, redeclared here so reads compile to a
     direct noalloc call with an unboxed result — through the
     [Monotonic_clock.now] alias every read costs two calls and a boxed
     int64, which the span hot path pays twice per span *)
  external clock_ns : unit -> (int64[@unboxed])
    = "clock_linux_get_time_bytecode" "clock_linux_get_time_native"
    [@@noalloc]

  let now_ns () = clock_ns ()

  (* alloc-free variant for per-event instrumentation: the unboxed
     external result is narrowed to an immediate int in-register, so no
     Int64 box is ever created (63 bits of nanoseconds ≈ 292 years) *)
  let[@inline] now_ns_int () = Int64.to_int (clock_ns ())
  let[@inline] now () = Int64.to_float (clock_ns ()) *. 1e-9
  let source = "clock_monotonic"
end

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 5e-4; 1e-3; 5e-3; 0.025; 0.1; 0.5; 2.5; 10.0 |]

type hist = {
  h_bounds : float array;
  h_cells : int array; (* per-bucket (non-cumulative) observation counts *)
  mutable h_overflow : int; (* observations above the last bound *)
  mutable h_sum : float;
  mutable h_count : int;
}

type counter_cell = { mutable c : int }
type gauge_cell = { mutable g : float }

type metric =
  | M_counter of counter_cell
  | M_gauge of gauge_cell
  | M_hist of hist

type series = {
  se_name : string;
  se_labels : (string * string) list; (* sorted by key *)
  se_metric : metric;
}

(* The fixed span taxonomy (README "Observability"): loop phases record
   into pqs_phase_seconds, engine phases into minidb_phase_seconds.  A
   closed enum lets each registry keep a per-phase cache array, so timing
   a phase costs an array read instead of a table lookup. *)
module Phase = struct
  type t =
    | Gen_db
    | Pivot
    | Gen_expr
    | Rectify
    | Interp
    | Containment
    | Lint
    | Plan_diff
    | Const_opt
    | Parse
    | Plan
    | Execute

  let index = function
    | Gen_db -> 0
    | Pivot -> 1
    | Gen_expr -> 2
    | Rectify -> 3
    | Interp -> 4
    | Containment -> 5
    | Lint -> 6
    | Plan_diff -> 7
    | Const_opt -> 8
    | Parse -> 9
    | Plan -> 10
    | Execute -> 11

  let count = 12

  let name = function
    | Gen_db -> "gen_db"
    | Pivot -> "pivot"
    | Gen_expr -> "gen_expr"
    | Rectify -> "rectify"
    | Interp -> "interp"
    | Containment -> "containment"
    | Lint -> "lint"
    | Plan_diff -> "plan_diff"
    | Const_opt -> "const_opt"
    | Parse -> "parse"
    | Plan -> "plan"
    | Execute -> "execute"

  let metric = function
    | Parse | Plan | Execute -> "minidb_phase_seconds"
    | Gen_db | Pivot | Gen_expr | Rectify | Interp | Containment | Lint
    | Plan_diff | Const_opt ->
        "pqs_phase_seconds"

  let all =
    [
      Gen_db; Pivot; Gen_expr; Rectify; Interp; Containment; Lint; Plan_diff;
      Const_opt; Parse; Plan; Execute;
    ]
end

type state = {
  tbl : (string, series) Hashtbl.t;
  (* memo for singleton-label series resolution on the hot path, keyed
     (name, label key, label value); entries alias the metric records in
     [tbl], which merging mutates in place, so the memo never goes stale *)
  memo1 : (string * string * string, metric) Hashtbl.t;
  (* per-phase histogram cache, indexed by [Phase.index]; filled on first
     use so untouched phases don't appear in exports *)
  phases : hist option array;
}

type t = Noop | Active of state

let create () =
  Active
    {
      tbl = Hashtbl.create 64;
      memo1 = Hashtbl.create 32;
      phases = Array.make Phase.count None;
    }

let noop = Noop
let enabled = function Noop -> false | Active _ -> true

let canon_labels = function
  | ([] | [ _ ]) as labels -> labels
  | labels -> List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let series_key name labels =
  match labels with
  | [] -> name
  | labels ->
      let b = Buffer.create 32 in
      Buffer.add_string b name;
      List.iter
        (fun (k, v) ->
          Buffer.add_char b '\x00';
          Buffer.add_string b k;
          Buffer.add_char b '\x01';
          Buffer.add_string b v)
        labels;
      Buffer.contents b

let find_or_create st name labels mk =
  let labels = canon_labels labels in
  let key = series_key name labels in
  match Hashtbl.find_opt st.tbl key with
  | Some s -> s.se_metric
  | None ->
      let m = mk () in
      Hashtbl.replace st.tbl key
        { se_name = name; se_labels = labels; se_metric = m };
      m

(* single-label series are the common hot case (phase=..., kind=...,
   path=...); resolve them through [memo1] to skip the key building *)
let find_fast st name labels mk =
  match labels with
  | [ (k, v) ] -> (
      let key = (name, k, v) in
      match Hashtbl.find_opt st.memo1 key with
      | Some m -> m
      | None ->
          let m = find_or_create st name labels mk in
          Hashtbl.replace st.memo1 key m;
          m)
  | _ -> find_or_create st name labels mk

let inc t ?(labels = []) ?(by = 1) name =
  match t with
  | Noop -> ()
  | Active st -> (
      match find_fast st name labels (fun () -> M_counter { c = 0 }) with
      | M_counter r -> r.c <- r.c + by
      | _ -> invalid_arg ("Telemetry.inc: " ^ name ^ " is not a counter"))

let set_gauge t ?(labels = []) name v =
  match t with
  | Noop -> ()
  | Active st -> (
      match find_fast st name labels (fun () -> M_gauge { g = 0.0 }) with
      | M_gauge r -> r.g <- v
      | _ -> invalid_arg ("Telemetry.set_gauge: " ^ name ^ " is not a gauge"))

let fresh_hist bounds =
  {
    h_bounds = Array.copy bounds;
    h_cells = Array.make (Array.length bounds) 0;
    h_overflow = 0;
    h_sum = 0.0;
    h_count = 0;
  }

let[@inline] hist_observe h v =
  let n = Array.length h.h_bounds in
  let rec place i =
    if i >= n then h.h_overflow <- h.h_overflow + 1
    else if v <= h.h_bounds.(i) then h.h_cells.(i) <- h.h_cells.(i) + 1
    else place (i + 1)
  in
  place 0;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let observe t ?(labels = []) ?(buckets = default_buckets) name v =
  match t with
  | Noop -> ()
  | Active st -> (
      match find_fast st name labels (fun () -> M_hist (fresh_hist buckets)) with
      | M_hist h -> hist_observe h v
      | _ -> invalid_arg ("Telemetry.observe: " ^ name ^ " is not a histogram"))

(* Pre-resolved handles: [None] is the inert (noop) handle; [Some cell]
   aliases the series cell in [tbl], which merging mutates in place, so
   handles never go stale. *)
type counter_handle = counter_cell option
type histogram_handle = hist option

let counter_handle t ?(labels = []) name =
  match t with
  | Noop -> None
  | Active st -> (
      match find_fast st name labels (fun () -> M_counter { c = 0 }) with
      | M_counter r -> Some r
      | _ ->
          invalid_arg ("Telemetry.counter_handle: " ^ name ^ " is not a counter"))

let histogram_handle t ?(labels = []) ?(buckets = default_buckets) name =
  match t with
  | Noop -> None
  | Active st -> (
      match find_fast st name labels (fun () -> M_hist (fresh_hist buckets)) with
      | M_hist h -> Some h
      | _ ->
          invalid_arg
            ("Telemetry.histogram_handle: " ^ name ^ " is not a histogram"))

let inc_handle ?(by = 1) = function
  | None -> ()
  | Some r -> r.c <- r.c + by

let observe_handle h v =
  match h with None -> () | Some h -> hist_observe h v

let span_hist st metric phase =
  match
    find_fast st metric
      [ ("phase", phase) ]
      (fun () -> M_hist (fresh_hist default_buckets))
  with
  | M_hist h -> h
  | _ -> invalid_arg ("Telemetry.Span.time: " ^ metric ^ " is not a histogram")

module Span = struct
  let time t ?(metric = "pqs_phase_seconds") phase f =
    match t with
    | Noop -> f ()
    | Active st -> (
        let h = span_hist st metric phase in
        let t0 = Clock.now () in
        match f () with
        | r ->
            hist_observe h (Clock.now () -. t0);
            r
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            hist_observe h (Clock.now () -. t0);
            Printexc.raise_with_backtrace e bt)

  type handle = hist option

  let handle t ?(metric = "pqs_phase_seconds") phase =
    match t with Noop -> None | Active st -> Some (span_hist st metric phase)

  let phase_hist st p =
    let i = Phase.index p in
    match Array.unsafe_get st.phases i with
    | Some h -> h
    | None ->
        let h = span_hist st (Phase.metric p) (Phase.name p) in
        st.phases.(i) <- Some h;
        h

  let timed t p f =
    match t with
    | Noop -> f ()
    | Active st -> (
        let h = phase_hist st p in
        let t0 = Clock.now () in
        match f () with
        | r ->
            hist_observe h (Clock.now () -. t0);
            r
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            hist_observe h (Clock.now () -. t0);
            Printexc.raise_with_backtrace e bt)

  let time_with h f =
    match h with
    | None -> f ()
    | Some h -> (
        let t0 = Clock.now () in
        match f () with
        | r ->
            hist_observe h (Clock.now () -. t0);
            r
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            hist_observe h (Clock.now () -. t0);
            Printexc.raise_with_backtrace e bt)
end

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)

let add_into_metric ~name dst src =
  match (dst, src) with
  | M_counter d, M_counter s -> d.c <- d.c + s.c
  | M_gauge d, M_gauge s -> d.g <- d.g +. s.g
  | M_hist d, M_hist s ->
      if d.h_bounds <> s.h_bounds then
        invalid_arg
          ("Telemetry.merge: histogram " ^ name ^ " has mismatched buckets");
      Array.iteri (fun i n -> d.h_cells.(i) <- d.h_cells.(i) + n) s.h_cells;
      d.h_overflow <- d.h_overflow + s.h_overflow;
      d.h_sum <- d.h_sum +. s.h_sum;
      d.h_count <- d.h_count + s.h_count
  | _ -> invalid_arg ("Telemetry.merge: series " ^ name ^ " changed type")

let merge_into ~dst ~src =
  match (dst, src) with
  | Noop, _ | _, Noop -> ()
  | Active d, Active s ->
      Hashtbl.iter
        (fun key se ->
          let mk () =
            match se.se_metric with
            | M_counter _ -> M_counter { c = 0 }
            | M_gauge _ -> M_gauge { g = 0.0 }
            | M_hist h -> M_hist (fresh_hist h.h_bounds)
          in
          let target =
            match Hashtbl.find_opt d.tbl key with
            | Some s' -> s'.se_metric
            | None ->
                let m = mk () in
                Hashtbl.replace d.tbl key { se with se_metric = m };
                m
          in
          add_into_metric ~name:se.se_name target se.se_metric)
        s.tbl

let merge a b =
  let t = create () in
  merge_into ~dst:t ~src:a;
  merge_into ~dst:t ~src:b;
  t

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : (float * int) list;
      sum : float;
      count : int;
    }

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : value;
}

let value_of_metric = function
  | M_counter { c } -> Counter c
  | M_gauge { g } -> Gauge g
  | M_hist h ->
      let acc = ref 0 in
      let buckets =
        Array.to_list
          (Array.mapi
             (fun i bound ->
               acc := !acc + h.h_cells.(i);
               (bound, !acc))
             h.h_bounds)
      in
      Histogram { buckets; sum = h.h_sum; count = h.h_count }

let snapshot t =
  match t with
  | Noop -> []
  | Active st ->
      Hashtbl.fold
        (fun _ se acc ->
          {
            s_name = se.se_name;
            s_labels = se.se_labels;
            s_value = value_of_metric se.se_metric;
          }
          :: acc)
        st.tbl []
      |> List.sort (fun a b ->
             match String.compare a.s_name b.s_name with
             | 0 -> compare a.s_labels b.s_labels
             | c -> c)

(* re-inject a decoded sample with merge semantics (counters and gauges
   add, histogram cumulative buckets unfold back into cells) — the fleet
   aggregator's path for folding worker heartbeat snapshots *)
let record_sample t (s : sample) =
  match t with
  | Noop -> ()
  | Active st -> (
      match s.s_value with
      | Counter c -> (
          match
            find_fast st s.s_name s.s_labels (fun () -> M_counter { c = 0 })
          with
          | M_counter r -> r.c <- r.c + c
          | _ ->
              invalid_arg
                ("Telemetry.record_sample: " ^ s.s_name ^ " is not a counter"))
      | Gauge g -> (
          match
            find_fast st s.s_name s.s_labels (fun () -> M_gauge { g = 0.0 })
          with
          | M_gauge r -> r.g <- r.g +. g
          | _ ->
              invalid_arg
                ("Telemetry.record_sample: " ^ s.s_name ^ " is not a gauge"))
      | Histogram { buckets; sum; count } -> (
          let bounds = Array.of_list (List.map fst buckets) in
          match
            find_fast st s.s_name s.s_labels (fun () ->
                M_hist (fresh_hist bounds))
          with
          | M_hist h ->
              if h.h_bounds <> bounds then
                invalid_arg
                  ("Telemetry.record_sample: histogram " ^ s.s_name
                 ^ " has mismatched buckets");
              let prev = ref 0 in
              List.iteri
                (fun i (_, cum) ->
                  h.h_cells.(i) <- h.h_cells.(i) + (cum - !prev);
                  prev := cum)
                buckets;
              h.h_overflow <- h.h_overflow + (count - !prev);
              h.h_sum <- h.h_sum +. sum;
              h.h_count <- h.h_count + count
          | _ ->
              invalid_arg
                ("Telemetry.record_sample: " ^ s.s_name
               ^ " is not a histogram")))

let find_metric t name labels =
  match t with
  | Noop -> None
  | Active st -> (
      match
        Hashtbl.find_opt st.tbl (series_key name (canon_labels labels))
      with
      | Some se -> Some se.se_metric
      | None -> None)

let counter_value t ?(labels = []) name =
  match find_metric t name labels with Some (M_counter { c }) -> c | _ -> 0

let histogram_count t ?(labels = []) name =
  match find_metric t name labels with
  | Some (M_hist h) -> h.h_count
  | _ -> 0

let histogram_sum t ?(labels = []) name =
  match find_metric t name labels with
  | Some (M_hist h) -> h.h_sum
  | _ -> 0.0

(* Prometheus-style estimate: find the bucket holding the q-rank, then
   interpolate linearly inside it.  Observations beyond the last bound
   clamp to the last finite bound, like promQL's histogram_quantile. *)
let quantile t ?(labels = []) name q =
  match find_metric t name labels with
  | Some (M_hist h) when h.h_count > 0 ->
      let n = Array.length h.h_bounds in
      let rank = q *. float_of_int h.h_count in
      let rec go i cum =
        if i >= n then Some h.h_bounds.(n - 1)
        else
          let cum' = cum + h.h_cells.(i) in
          if float_of_int cum' >= rank && h.h_cells.(i) > 0 then
            let lo = if i = 0 then 0.0 else h.h_bounds.(i - 1) in
            let hi = h.h_bounds.(i) in
            let frac =
              (rank -. float_of_int cum) /. float_of_int h.h_cells.(i)
            in
            Some (lo +. ((hi -. lo) *. Float.max 0.0 (Float.min 1.0 frac)))
          else go (i + 1) cum'
      in
      go 0 0
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let help_of = function
  | "pqs_phase_seconds" -> "Wall time of each PQS pipeline phase."
  | "minidb_phase_seconds" ->
      "Wall time of engine-side phases (parse, plan, execute)."
  | "pqs_round_seconds" ->
      "Wall time of one complete database round (one seed)."
  | "pqs_rounds_total" -> "Database rounds completed."
  | "pqs_statements_total" -> "Statements issued by the PQS loop."
  | "pqs_queries_total" -> "Containment checks issued."
  | "pqs_pivots_total" -> "Pivot rows selected."
  | "pqs_plans_enumerated_total" ->
      "Forced plans enumerated by the plan-diff oracle."
  | "pqs_plan_divergences_total" ->
      "Result-set divergences found by the plan-diff oracle."
  | "pqs_reports_total" -> "Bug reports recorded."
  | "pqs_rectify_retries_total" ->
      "Synthesis attempts abandoned because the oracle could not evaluate \
       the expression."
  | "pqs_rectify_postcondition_failures_total" ->
      "Rectified expressions that failed the TRUE/FALSE postcondition check."
  | "pqs_campaign_domains" -> "Worker domains of the campaign."
  | "pqs_campaign_seeds" -> "Seed range size of the campaign."
  | "minidb_statements_total" ->
      "Statements executed by the engine, by statement kind."
  | "minidb_statement_seconds" ->
      "Engine statement execution latency, by statement kind."
  | "minidb_plan_choices_total" -> "Access paths chosen by the planner."
  | "minidb_rows_scanned_total" -> "Rows produced by full table scans."
  | "minidb_index_rows_total" -> "Rows fetched through index access paths."
  | "minidb_btree_node_visits_total" ->
      "B-tree nodes visited by index lookups."
  | "minidb_btree_entries_scanned_total" ->
      "B-tree entries examined by index lookups."
  | "minidb_heap_rows_scanned_total" -> "Heap rows read by table scans."
  | "pqs_fleet_shards_live" ->
      "Fleet shards currently running with fresh heartbeats."
  | "pqs_fleet_shards_total" -> "Fleet shards ever spawned."
  | "pqs_fleet_rounds_total" -> "Database rounds completed fleet-wide."
  | "pqs_fleet_statements_total" -> "Statements issued fleet-wide."
  | "pqs_fleet_reports_total" -> "Bug reports recorded fleet-wide."
  | "pqs_fleet_distinct_fingerprints" ->
      "Distinct minimized-repro fingerprints discovered fleet-wide."
  | "pqs_fleet_rounds_per_sec" -> "Fleet-wide throughput in rounds per second."
  | "pqs_fleet_shard_rounds_per_sec" ->
      "Per-shard throughput from the latest heartbeat."
  | "pqs_fleet_frontier_points_hit" ->
      "Universe frontier points hit by the merged fleet frontier."
  | "pqs_fleet_frontier_fraction" ->
      "Fraction of the frontier universe hit by the merged fleet frontier."
  | name -> "Metric " ^ name ^ "."

(* Prometheus renders integers bare and floats with enough digits to
   round-trip; %.9g keeps exports readable and stable across platforms. *)
let num f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label v))
             labels)
      ^ "}"

(* labels plus an extra [le] pair, for histogram bucket lines *)
let render_labels_le labels le =
  render_labels (labels @ [ ("le", le) ])

let to_prometheus t =
  let b = Buffer.create 1024 in
  let last_family = ref "" in
  List.iter
    (fun s ->
      if s.s_name <> !last_family then begin
        last_family := s.s_name;
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n" s.s_name (help_of s.s_name));
        let ty =
          match s.s_value with
          | Counter _ -> "counter"
          | Gauge _ -> "gauge"
          | Histogram _ -> "histogram"
        in
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" s.s_name ty)
      end;
      match s.s_value with
      | Counter c ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" s.s_name (render_labels s.s_labels) c)
      | Gauge g ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" s.s_name (render_labels s.s_labels)
               (num g))
      | Histogram { buckets; sum; count } ->
          List.iter
            (fun (bound, cum) ->
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" s.s_name
                   (render_labels_le s.s_labels (num bound))
                   cum))
            buckets;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" s.s_name
               (render_labels_le s.s_labels "+Inf")
               count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" s.s_name
               (render_labels s.s_labels) (num sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" s.s_name
               (render_labels s.s_labels) count))
    (snapshot t);
  Buffer.contents b

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> json_string k ^ ":" ^ json_string v)
         labels)
  ^ "}"

let to_json t =
  let sample_json s =
    let common =
      Printf.sprintf "\"name\":%s,\"labels\":%s" (json_string s.s_name)
        (json_labels s.s_labels)
    in
    match s.s_value with
    | Counter c -> Printf.sprintf "{%s,\"type\":\"counter\",\"value\":%d}" common c
    | Gauge g ->
        Printf.sprintf "{%s,\"type\":\"gauge\",\"value\":%s}" common (num g)
    | Histogram { buckets; sum; count } ->
        let bs =
          List.map
            (fun (bound, cum) ->
              Printf.sprintf "{\"le\":%s,\"count\":%d}" (num bound) cum)
            buckets
          @ [ Printf.sprintf "{\"le\":\"+Inf\",\"count\":%d}" count ]
        in
        Printf.sprintf
          "{%s,\"type\":\"histogram\",\"sum\":%s,\"count\":%d,\"buckets\":[%s]}"
          common (num sum) count (String.concat "," bs)
  in
  Printf.sprintf "{\"clock\":%s,\"metrics\":[%s]}\n"
    (json_string Clock.source)
    (String.concat "," (List.map sample_json (snapshot t)))

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (if Filename.check_suffix path ".json" then to_json t
         else to_prometheus t))

(* same-directory temp + rename, so concurrent readers (Prometheus
   scrapers, [sqlancer top --fleet]) never observe a partial file *)
let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let write_file_atomic t path =
  write_atomic path
    (if Filename.check_suffix path ".json" then to_json t else to_prometheus t)

(* ------------------------------------------------------------------ *)
(* Chrome trace events                                                 *)

module Trace = struct
  type arg = Int of int | Float of float | Str of string

  type event = {
    ev_name : string;
    ev_cat : string;
    ev_ph : string;
    ev_ts_us : float;
    ev_dur_us : float option;
    ev_tid : int;
    ev_args : (string * arg) list;
  }

  let complete ~name ?(cat = "pqs") ?(args = []) ~ts_us ~dur_us ~tid () =
    {
      ev_name = name;
      ev_cat = cat;
      ev_ph = "X";
      ev_ts_us = ts_us;
      ev_dur_us = Some dur_us;
      ev_tid = tid;
      ev_args = args;
    }

  let metadata ~name ~tid args =
    {
      ev_name = name;
      ev_cat = "__metadata";
      ev_ph = "M";
      ev_ts_us = 0.0;
      ev_dur_us = None;
      ev_tid = tid;
      ev_args = args;
    }

  let thread_name ~tid name = metadata ~name:"thread_name" ~tid [ ("name", Str name) ]
  let process_name name = metadata ~name:"process_name" ~tid:0 [ ("name", Str name) ]

  let arg_json = function
    | Int i -> string_of_int i
    | Float f -> num f
    | Str s -> json_string s

  let event_json e =
    let fields =
      [
        ("name", json_string e.ev_name);
        ("cat", json_string e.ev_cat);
        ("ph", json_string e.ev_ph);
        ("ts", num e.ev_ts_us);
        ("pid", "1");
        ("tid", string_of_int e.ev_tid);
      ]
      @ (match e.ev_dur_us with
        | Some d -> [ ("dur", num d) ]
        | None -> [])
      @
      match e.ev_args with
      | [] -> []
      | args ->
          [
            ( "args",
              "{"
              ^ String.concat ","
                  (List.map
                     (fun (k, v) -> json_string k ^ ":" ^ arg_json v)
                     args)
              ^ "}" );
          ]
    in
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
    ^ "}"

  let to_json events =
    "{\"traceEvents\":[\n"
    ^ String.concat ",\n" (List.map event_json events)
    ^ "\n],\"displayTimeUnit\":\"ms\"}\n"

  let write path events =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_json events))
end
