(** EXPLAIN: render the access plan the executor would use.

    Produces the human-readable plan lines behind [EXPLAIN <query>]
    (sqlite's [EXPLAIN QUERY PLAN] flavour): one line per scan, derived
    table, or compound arm, naming the {!Planner.path} chosen for each
    single-table FROM clause. *)

val from_lines :
  Executor.ctx -> Sqlast.Ast.from_item -> where:Sqlast.Ast.expr option -> string list
(** Plan lines for one FROM item under the given WHERE clause (the clause
    is only consulted for plain single-table scans). *)

val query_lines : Executor.ctx -> Sqlast.Ast.query -> string list
(** Plan lines for a whole query, recursing into derived tables and
    compound arms. *)

val run :
  Executor.ctx ->
  Sqlast.Ast.query ->
  (Executor.result_set, Errors.t) result
(** Execute [EXPLAIN q]: a one-column result set of {!query_lines}. *)

val run_analyze :
  ?run:(Executor.ctx -> Sqlast.Ast.query -> (Executor.result_set, Errors.t) result) ->
  Executor.ctx ->
  Sqlast.Ast.query ->
  (Executor.result_set, Errors.t) result
(** Execute [EXPLAIN ANALYZE q]: really runs the query under a private
    flight recorder and renders each operator event as an annotated plan
    line — rows in/out, B-tree node/entry visits, wall time, and (under
    the compiled backend) block counts as [batches=… rows/batch=…] —
    ending with a [RESULT (rows=…, total=…)] summary.  [run] selects the
    execution backend's query runner (default {!Executor.run_query}, the
    interpreter).  Errors from the underlying query pass through. *)
