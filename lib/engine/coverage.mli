(** Feature-point coverage instrumentation.

    The paper reports line/branch coverage of the DBMS under a 24-hour
    SQLancer run (Table 4).  We cannot instrument machine code, so the
    engine registers named feature points (operator evaluations per dialect,
    planner decisions, DDL/DML paths, maintenance commands) and counts hits;
    the Table 4 reproduction reports the hit fraction per dialect. *)

type t

val create : unit -> t

(** Declare-and-count: hits register the point in the universe on first use;
    the static universe below seeds the denominator so that unexercised
    features count against coverage. *)
val hit : t -> string -> unit

val hit_count : t -> string -> int
val points_hit : t -> int
val universe_size : t -> int
val fraction : t -> float
val reset : t -> unit

(** Merge the hits of [src] into [dst] (used to aggregate worker runs). *)
val merge_into : dst:t -> src:t -> unit

(** Functional variant: a fresh instrument holding the summed hits of both
    arguments — campaign workers' private instruments fold into a total. *)
val union : t -> t -> t

(** Every point with its hit count, sorted by point name: the canonical
    comparable view of an instrument (the monoid-law property tests
    compare {!union} results through it). *)
val points : t -> (string * int) list

(** All statically declared feature points. *)
val static_universe : string list
