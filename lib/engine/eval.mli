(** The engine-side expression evaluator.

    This is the component the paper's containment oracle puts under test:
    most injected containment-class bugs live here (comparison collations,
    implicit conversions, LIKE handling, operator folding).  The PQS oracle
    interpreter ({!Pqs.Interp}) re-implements the same semantics
    independently and is never bug-injected; a qcheck property asserts the
    two agree when the bug set is empty. *)

open Sqlval

(** What an expression's column reference resolves to. *)
type resolved = {
  value : Value.t;
  datatype : Datatype.t;
  collation : Collation.t;
}

type env = {
  dialect : Dialect.t;
  bugs : Bug.set;
  case_sensitive_like : bool;  (** sqlite PRAGMA state *)
  coverage : Coverage.t option;
  resolve :
    table:string option -> column:string -> (resolved, Errors.t) result;
}

(** Environment with no columns in scope (constant expressions). *)
val const_env :
  ?bugs:Bug.set -> ?case_sensitive_like:bool -> Dialect.t -> env

(** Dialect encoding of a three-valued result: INTEGER 0/1/NULL for sqlite
    and mysql, BOOLEAN/NULL for postgres. *)
val bool_value : Dialect.t -> Tvl.t -> Value.t

val eval : env -> Sqlast.Ast.expr -> (Value.t, Errors.t) result

(** Evaluate in boolean context (WHERE/JOIN/HAVING). *)
val eval_tvl : env -> Sqlast.Ast.expr -> (Tvl.t, Errors.t) result

(** Static column metadata of an expression, if it is (a decoration of) a
    column reference; comparison affinity/collation rules consult it. *)
val column_meta :
  env -> Sqlast.Ast.expr -> (Datatype.t * Collation.t) option

(** The collation governing a comparison of [a] with [b] under SQLite's
    rules (explicit COLLATE anywhere wins, else left column's collation,
    else right's, else BINARY). *)
val comparison_collation :
  env -> Sqlast.Ast.expr -> Sqlast.Ast.expr -> Collation.t

(** The explicit collation of [e] (COLLATE node, or a non-BINARY column
    collation), if any. *)
val explicit_collation : env -> Sqlast.Ast.expr -> Collation.t option

(** {1 Value-level operator bodies}

    The post-operand-evaluation bodies of the evaluator, shared with the
    closure compiler ({!Compile}) so both execution backends inherit one
    definition of every dialect quirk and injected bug.  Expression
    arguments ([ea]/[eb]/[arg]/…) are consulted only for statically
    resolvable column metadata (collation, affinity, declared width),
    never for row values. *)

(** Truth value of a value in boolean context. *)
val value_tvl : env -> Value.t -> (Tvl.t, Errors.t) result

(** Comparison operators ([=], [<>], [<], [<=], [>], [>=], [<=>]). *)
val compare_op :
  env ->
  Sqlast.Ast.binop ->
  Sqlast.Ast.expr ->
  Sqlast.Ast.expr ->
  Value.t ->
  Value.t ->
  (Value.t, Errors.t) result

(** The static slice of a comparison — collation, affinity adjustments,
    metadata-gated bug decisions — computed once from the operand
    expressions and the binding layout.  {!compare_op} is
    [compare_apply] of [compare_prep]; the compiled backend preps at
    compile time and replays per row. *)
type cmp_prep

val compare_prep :
  env -> Sqlast.Ast.binop -> Sqlast.Ast.expr -> Sqlast.Ast.expr -> cmp_prep

val compare_apply :
  env -> cmp_prep -> Value.t -> Value.t -> (Value.t, Errors.t) result

(** Arithmetic operators ([+], [-], [*], [/], [%]). *)
val arith :
  env ->
  Sqlast.Ast.binop ->
  Sqlast.Ast.expr ->
  Sqlast.Ast.expr ->
  Value.t ->
  Value.t ->
  (Value.t, Errors.t) result

(** Bitwise operators ([&], [|], [<<], [>>]). *)
val bitop :
  env -> Sqlast.Ast.binop -> Value.t -> Value.t -> (Value.t, Errors.t) result

(** Unary minus. *)
val neg_value : env -> Value.t -> (Value.t, Errors.t) result

(** Bitwise complement. *)
val bit_not_value : env -> Value.t -> (Value.t, Errors.t) result

(** Negate [t] when [negated], then encode with {!bool_value}. *)
val is_finish : env -> negated:bool -> Tvl.t -> (Value.t, Errors.t) result

(** [IS \[NOT\] TRUE/FALSE] of an evaluated operand;
    [want] is [True] for IS TRUE, [False] for IS FALSE. *)
val is_bool_value :
  env -> negated:bool -> want:Tvl.t -> Value.t -> (Value.t, Errors.t) result

(** [\[NOT\] BETWEEN] of evaluated operands; [arg]/[lo]/[hi] are the
    operand expressions (metadata only). *)
val between_value :
  env ->
  negated:bool ->
  arg:Sqlast.Ast.expr ->
  lo:Sqlast.Ast.expr ->
  hi:Sqlast.Ast.expr ->
  Value.t ->
  Value.t ->
  Value.t ->
  (Value.t, Errors.t) result

(** Static slice of a BETWEEN ({!between_value} = apply of prep). *)
type between_prep

val between_prep :
  env ->
  negated:bool ->
  arg:Sqlast.Ast.expr ->
  lo:Sqlast.Ast.expr ->
  hi:Sqlast.Ast.expr ->
  between_prep

val between_apply :
  env ->
  between_prep ->
  Value.t ->
  Value.t ->
  Value.t ->
  (Value.t, Errors.t) result

(** Verdict of an IN list that ran out of items without a match. *)
val in_empty_tvl : env -> saw_null:bool -> Tvl.t

(** Decode an evaluated ESCAPE operand to its escape character. *)
val like_escape_char : Value.t -> (char option, Errors.t) result

(** [\[NOT\] LIKE] of evaluated operands. *)
val like_value :
  env ->
  negated:bool ->
  arg:Sqlast.Ast.expr ->
  Value.t ->
  Value.t ->
  char option ->
  (Value.t, Errors.t) result

(** Static slice of a LIKE ({!like_value} = apply of prep). *)
type like_prep

val like_prep : env -> negated:bool -> arg:Sqlast.Ast.expr -> like_prep

val like_apply :
  env ->
  like_prep ->
  Value.t ->
  Value.t ->
  char option ->
  (Value.t, Errors.t) result

(** [\[NOT\] GLOB] of evaluated operands (sqlite dialect only; the
    dialect check happens before operand evaluation). *)
val glob_value :
  env -> negated:bool -> Value.t -> Value.t -> (Value.t, Errors.t) result

(** [CAST (v AS ty)] of an evaluated operand. *)
val cast_value : env -> Datatype.t -> Value.t -> (Value.t, Errors.t) result

(** Scalar function application over evaluated arguments; the expression
    list is consulted for metadata only (NULLIF collation, TYPEOF
    affinity). *)
val apply_func :
  env ->
  Sqlast.Ast.func ->
  Value.t list ->
  Sqlast.Ast.expr list ->
  (Value.t, Errors.t) result

(** Whether [f] exists in the dialect. *)
val func_available : Dialect.t -> Sqlast.Ast.func -> bool

(** The [func.*] coverage-point suffix of [f]. *)
val func_point : Sqlast.Ast.func -> string
