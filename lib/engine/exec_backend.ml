(* The execution-backend seam: one interface, two implementations.

   The tree-walking interpreter is the reference semantics; the closure
   compiler is the fast path.  Everything that runs a query — sessions,
   EXPLAIN ANALYZE, forced-plan probes — goes through a backend value,
   so the two implementations stay interchangeable and each can serve
   as a differential cross-check of the other. *)

type kind = Interpreted | Compiled

let all = [ Interpreted; Compiled ]
let name = function Interpreted -> "interpreted" | Compiled -> "compiled"

let description = function
  | Interpreted -> "tree-walking row-at-a-time evaluator (reference)"
  | Compiled -> "closure-compiled batched executor"

let of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "interpreted" | "interp" -> Ok Interpreted
  | "compiled" | "compile" -> Ok Compiled
  | other ->
      Error
        (Printf.sprintf
           "unknown execution backend %S (expected \"interpreted\" or \
            \"compiled\")"
           other)

module type S = sig
  val name : string

  val run_query :
    Executor.ctx -> Sqlast.Ast.query -> (Executor.result_set, Errors.t) result
end

module Interpreted_backend : S = struct
  let name = "interpreted"
  let run_query = Executor.run_query
end

module Compiled_backend : S = struct
  let name = "compiled"
  let run_query = Compile.run_query
end

let of_kind : kind -> (module S) = function
  | Interpreted -> (module Interpreted_backend)
  | Compiled -> (module Compiled_backend)

let run_query kind =
  let (module B) = of_kind kind in
  B.run_query
