(** The compiled execution backend.

    Translates a planned query into OCaml closures over a mutable
    current-row environment (column references become array-slot reads
    resolved at compile time) and drives the operator pipeline — scan,
    filter, project, distinct, sort, limit — over fixed-size row blocks
    instead of walking the expression AST once per row.

    Value-level semantics are not duplicated: closures call the operator
    bodies exported by {!Eval}, so every dialect quirk and injected bug
    behaves identically under both backends, and the two produce the
    same result multisets, the same errors, the same coverage points in
    the same order, and the same flight-recorder operator stream (the
    compiled backend additionally reports non-zero [batches] counts).

    Joins (nested loops with the ON predicate compiled once against the
    combined binding layout), comma-FROM cross products and derived
    tables all compile; query shapes outside the compiler (views,
    aggregation) fall back to {!Executor.run_query}, so this entry
    point is total over the query AST. *)

(** Rows per operator block. *)
val block_size : int

(** Can this query be compiled, or would {!run_query} fall back to the
    interpreter?  Exposed for tests and EXPLAIN annotations. *)
val query_supported : Executor.ctx -> Sqlast.Ast.query -> bool

val run_query :
  Executor.ctx -> Sqlast.Ast.query -> (Executor.result_set, Errors.t) result
