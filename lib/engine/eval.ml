open Sqlval
module A = Sqlast.Ast

let ( let* ) = Result.bind

type resolved = {
  value : Value.t;
  datatype : Datatype.t;
  collation : Collation.t;
}

type env = {
  dialect : Dialect.t;
  bugs : Bug.set;
  case_sensitive_like : bool;
  coverage : Coverage.t option;
  resolve :
    table:string option -> column:string -> (resolved, Errors.t) result;
}

let const_env ?(bugs = Bug.empty_set) ?(case_sensitive_like = false) dialect =
  {
    dialect;
    bugs;
    case_sensitive_like;
    coverage = None;
    resolve =
      (fun ~table:_ ~column ->
        Error (Errors.makef Errors.No_such_column "no such column: %s" column));
  }

let cov env point =
  match env.coverage with None -> () | Some c -> Coverage.hit c point

let bug env b = Bug.on env.bugs b

let bool_value dialect (t : Tvl.t) : Value.t =
  match dialect with
  | Dialect.Postgres_like -> (
      match t with
      | Tvl.True -> Value.Bool true
      | Tvl.False -> Value.Bool false
      | Tvl.Unknown -> Value.Null)
  | Dialect.Sqlite_like | Dialect.Mysql_like -> (
      match t with
      | Tvl.True -> Value.Int 1L
      | Tvl.False -> Value.Int 0L
      | Tvl.Unknown -> Value.Null)

(* Truth value of a value, with the mysql TEXT-double truncation bug
   injected here so that every boolean context inherits it. *)
let value_tvl env (v : Value.t) : (Tvl.t, Errors.t) result =
  let buggy_trunc =
    Dialect.equal env.dialect Dialect.Mysql_like
    && bug env Bug.My_text_double_bool_trunc
  in
  match v with
  | Value.Text s when buggy_trunc -> (
      match Numeric.numeric_prefix s with
      | `Real r ->
          Ok (Tvl.of_bool (Int64.of_float (Float.trunc r) <> 0L))
      | `Int _ | `None ->
          Result.map_error (Errors.make Errors.Type_error)
            (Coerce.to_tvl env.dialect v))
  | _ ->
      Result.map_error (Errors.make Errors.Type_error)
        (Coerce.to_tvl env.dialect v)

(* ------------------------------------------------------------------ *)
(* Static metadata                                                     *)

let rec column_meta env (e : A.expr) : (Datatype.t * Collation.t) option =
  match e with
  | A.Col { table; column } -> (
      match env.resolve ~table ~column with
      | Ok r -> Some (r.datatype, r.collation)
      | Error _ -> None)
  | A.Collate (inner, c) -> (
      match column_meta env inner with
      | Some (dt, _) -> Some (dt, c)
      | None -> Some (Datatype.Any, c))
  | A.Cast (ty, _) -> Some (ty, Collation.Binary)
  | A.Unary (A.Pos, inner) -> column_meta env inner
  | _ -> None

let rec explicit_collation env (e : A.expr) : Collation.t option =
  match e with
  | A.Collate (_, c) -> Some c
  | A.Col _ -> (
      match column_meta env e with
      | Some (_, c) when not (Collation.equal c Collation.Binary) -> Some c
      | _ -> None)
  | A.Unary (A.Pos, inner) -> explicit_collation env inner
  | _ -> None

let comparison_collation env a b =
  match explicit_collation env a with
  | Some c -> c
  | None -> (
      match explicit_collation env b with Some c -> c | None -> Collation.Binary)

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)

(* SQLite applies NUMERIC affinity to a TEXT/BLOB operand when the other
   side has numeric affinity (and TEXT affinity symmetrically); the paper's
   Listing 7 class depends on this machinery. *)
let adjust_numeric v =
  match v with
  | Value.Text _ | Value.Blob _ -> Coerce.apply_affinity Datatype.A_numeric v
  | _ -> v

let adjust_text v =
  match v with
  | Value.Int _ | Value.Real _ -> Coerce.apply_affinity Datatype.A_text v
  | _ -> v

(* The affinity decision only reads operand metadata, so it can be taken
   once per (expression pair, binding layout) and reused per row — the
   compiled backend does exactly that via the [*_prep] entry points. *)
let sqlite_affinity_prep env ea eb : (Value.t -> Value.t) * (Value.t -> Value.t)
    =
  if bug env Bug.Sq_affinity_compare_skip then (Fun.id, Fun.id)
  else
    let affinity_of e =
      Option.map (fun (dt, _) -> Datatype.affinity dt) (column_meta env e)
    in
    let numericish = function
      | Some Datatype.A_integer | Some Datatype.A_real | Some Datatype.A_numeric
        ->
          true
      | Some Datatype.A_text | Some Datatype.A_blob | Some Datatype.A_none
      | None ->
          false
    in
    let textish aff = aff = Some Datatype.A_text in
    let aa = affinity_of ea and ab = affinity_of eb in
    if numericish aa && not (numericish ab) then (Fun.id, adjust_numeric)
    else if numericish ab && not (numericish aa) then (adjust_numeric, Fun.id)
    else if textish aa && ab = None then (Fun.id, adjust_text)
    else if textish ab && aa = None then (adjust_text, Fun.id)
    else (Fun.id, Fun.id)

let text_compare env coll a b =
  if Collation.equal coll Collation.Rtrim
     && bug env Bug.Sq_rtrim_compare_asymmetric
  then
    (* trims only the left operand *)
    String.compare (Collation.key Collation.Rtrim a) b
  else Collation.compare coll a b

(* Cross-class comparison like Value.compare_total but with the engine's
   collation hook, so the RTRIM injection point covers it. *)
let compare_values env coll (a : Value.t) (b : Value.t) : int =
  match (a, b) with
  | Value.Text x, Value.Text y -> text_compare env coll x y
  | _ -> Value.compare_total ~collation:coll a b

let pg_comparable (a : Value.t) (b : Value.t) =
  let open Value in
  match (storage_class a, storage_class b) with
  | C_null, _ | _, C_null -> true
  | (C_int | C_real), (C_int | C_real) -> true
  | C_text, C_text | C_blob, C_blob | C_bool, C_bool -> true
  | _ -> false

let pg_type_mismatch a b =
  Errors.makef Errors.Type_error "operator does not exist: %s vs %s"
    (Value.show a) (Value.show b)

let op_of_compare op c =
  match op with
  | A.Eq -> c = 0
  | A.Neq -> c <> 0
  | A.Lt -> c < 0
  | A.Le -> c <= 0
  | A.Gt -> c > 0
  | A.Ge -> c >= 0
  | _ -> invalid_arg "op_of_compare"

(* mysql compares numerically unless both operands are text or both blob *)
let mysql_comparison_values (va : Value.t) (vb : Value.t) =
  match (va, vb) with
  | Value.Text _, Value.Text _ | Value.Blob _, Value.Blob _ -> (va, vb)
  | _ -> (Coerce.to_numeric va, Coerce.to_numeric vb)

let literal_int (e : A.expr) =
  match e with A.Lit (Value.Int i) -> Some i | _ -> None

let int_column_width env e =
  match column_meta env e with
  | Some (Datatype.Int { width; _ }, _) -> Some width
  | _ -> None

(* The static slice of a comparison: everything derived from the operand
   expressions and binding metadata (never from row values), computed
   once and replayed per row by {!compare_apply}. *)
type cmp_prep = {
  cp_op : A.binop;
  cp_coll : Collation.t;
  cp_null_safe : bool;
  cp_oor_nullsafe : bool;  (* mysql <=> against an out-of-range literal *)
  cp_fa : Value.t -> Value.t;  (* sqlite affinity pre-adjustment, operand a *)
  cp_fb : Value.t -> Value.t;
}

let compare_prep env op ea eb : cmp_prep =
  let coll = comparison_collation env ea eb in
  let null_safe = match op with A.Null_safe_eq -> true | _ -> false in
  (* mysql Listing 12 class: <=> against an out-of-range literal *)
  let out_of_range_nullsafe =
    null_safe
    && Dialect.equal env.dialect Dialect.Mysql_like
    && bug env Bug.My_null_safe_eq_out_of_range
    &&
    let beyond e_col e_lit =
      match (int_column_width env e_col, literal_int e_lit) with
      | Some w, Some i ->
          let lo, hi = Datatype.int_range w in
          i < lo || i > hi
      | _ -> false
    in
    beyond ea eb || beyond eb ea
  in
  let fa, fb =
    match env.dialect with
    | Dialect.Sqlite_like -> (
        let fa, fb = sqlite_affinity_prep env ea eb in
        (* Listing-7-style folding bug: literals carry no affinity, but the
           buggy constant folder coerces a text literal compared against a
           numeric literal anyway, so 'abc' > 5 goes through 0 > 5. *)
        if bug env Bug.Sq_fold_affinity_cmp then
          let numericish = function
            | Value.Int _ | Value.Real _ -> true
            | _ -> false
          and textish = function Value.Text _ -> true | _ -> false in
          match (ea, eb) with
          | A.Lit la, A.Lit lb when numericish la && textish lb ->
              (fa, Coerce.to_numeric)
          | A.Lit la, A.Lit lb when textish la && numericish lb ->
              (Coerce.to_numeric, fb)
          | _ -> (fa, fb)
        else (fa, fb))
    | Dialect.Mysql_like | Dialect.Postgres_like -> (Fun.id, Fun.id)
  in
  {
    cp_op = op;
    cp_coll = coll;
    cp_null_safe = null_safe;
    cp_oor_nullsafe = out_of_range_nullsafe;
    cp_fa = fa;
    cp_fb = fb;
  }

let compare_apply env (p : cmp_prep) (va : Value.t) (vb : Value.t) :
    (Value.t, Errors.t) result =
  if p.cp_oor_nullsafe then Ok (bool_value env.dialect Tvl.Unknown)
  else if p.cp_null_safe then begin
    (* null-safe equality never yields NULL *)
    let eq =
      match (va, vb) with
      | Value.Null, Value.Null -> true
      | Value.Null, _ | _, Value.Null -> false
      | _ -> (
          match env.dialect with
          | Dialect.Sqlite_like ->
              compare_values env p.cp_coll (p.cp_fa va) (p.cp_fb vb) = 0
          | Dialect.Mysql_like ->
              let va, vb = mysql_comparison_values va vb in
              compare_values env p.cp_coll va vb = 0
          | Dialect.Postgres_like -> compare_values env p.cp_coll va vb = 0)
    in
    if Dialect.equal env.dialect Dialect.Postgres_like
       && not (pg_comparable va vb)
    then Error (pg_type_mismatch va vb)
    else Ok (bool_value env.dialect (Tvl.of_bool eq))
  end
  else if Value.is_null va || Value.is_null vb then
    Ok (bool_value env.dialect Tvl.Unknown)
  else
    match env.dialect with
    | Dialect.Sqlite_like ->
        Ok
          (bool_value env.dialect
             (Tvl.of_bool
                (op_of_compare p.cp_op
                   (compare_values env p.cp_coll (p.cp_fa va) (p.cp_fb vb)))))
    | Dialect.Mysql_like ->
        let va, vb = mysql_comparison_values va vb in
        Ok
          (bool_value env.dialect
             (Tvl.of_bool
                (op_of_compare p.cp_op (compare_values env p.cp_coll va vb))))
    | Dialect.Postgres_like ->
        if not (pg_comparable va vb) then Error (pg_type_mismatch va vb)
        else
          Ok
            (bool_value env.dialect
               (Tvl.of_bool
                  (op_of_compare p.cp_op (compare_values env p.cp_coll va vb))))

let compare_op env op ea eb (va : Value.t) (vb : Value.t) :
    (Value.t, Errors.t) result =
  compare_apply env (compare_prep env op ea eb) va vb

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)

let overflow_error = Errors.make Errors.Out_of_range "BIGINT value is out of range"

let pg_numeric_operand (v : Value.t) =
  match v with
  | Value.Int _ | Value.Real _ | Value.Null -> Ok v
  | _ ->
      Error
        (Errors.makef Errors.Type_error
           "operator does not exist for operand %s" (Value.show v))

let int_arith env op (x : int64) (y : int64) : (Value.t, Errors.t) result =
  let checked f real_f =
    match f x y with
    | Some r -> Ok (Value.Int r)
    | None -> (
        match env.dialect with
        | Dialect.Sqlite_like ->
            (* sqlite promotes overflowing integer arithmetic to REAL *)
            Ok (Value.Real (real_f (Int64.to_float x) (Int64.to_float y)))
        | Dialect.Mysql_like | Dialect.Postgres_like -> Error overflow_error)
  in
  match op with
  | A.Add -> checked Numeric.checked_add ( +. )
  | A.Sub -> checked Numeric.checked_sub ( -. )
  | A.Mul -> checked Numeric.checked_mul ( *. )
  | A.Div -> (
      match env.dialect with
      | Dialect.Mysql_like ->
          (* mysql / is always real division; NULL on zero *)
          if y = 0L then Ok Value.Null
          else Ok (Value.Real (Int64.to_float x /. Int64.to_float y))
      | Dialect.Sqlite_like -> (
          match Numeric.checked_div x y with
          | Some r -> Ok (Value.Int r)
          | None ->
              if y = 0L then Ok Value.Null
              else Ok (Value.Real (Int64.to_float x /. Int64.to_float y)))
      | Dialect.Postgres_like -> (
          match Numeric.checked_div x y with
          | Some r -> Ok (Value.Int r)
          | None ->
              if y = 0L then
                Error (Errors.make Errors.Division_by_zero "division by zero")
              else Error overflow_error))
  | A.Rem -> (
      match Numeric.checked_rem x y with
      | Some r -> Ok (Value.Int r)
      | None -> (
          match env.dialect with
          | Dialect.Sqlite_like | Dialect.Mysql_like -> Ok Value.Null
          | Dialect.Postgres_like ->
              Error (Errors.make Errors.Division_by_zero "division by zero")))
  | _ -> invalid_arg "int_arith"

let real_arith env op (x : float) (y : float) : (Value.t, Errors.t) result =
  match op with
  | A.Add -> Ok (Value.Real (x +. y))
  | A.Sub -> Ok (Value.Real (x -. y))
  | A.Mul -> Ok (Value.Real (x *. y))
  | A.Div ->
      if y = 0.0 then
        match env.dialect with
        | Dialect.Sqlite_like | Dialect.Mysql_like -> Ok Value.Null
        | Dialect.Postgres_like ->
            Error (Errors.make Errors.Division_by_zero "division by zero")
      else Ok (Value.Real (x /. y))
  | A.Rem ->
      if y = 0.0 then
        match env.dialect with
        | Dialect.Sqlite_like | Dialect.Mysql_like -> Ok Value.Null
        | Dialect.Postgres_like ->
            Error (Errors.make Errors.Division_by_zero "division by zero")
      else Ok (Value.Real (Float.rem x y))
  | _ -> invalid_arg "real_arith"

let arith env op ea eb (va : Value.t) (vb : Value.t) :
    (Value.t, Errors.t) result =
  ignore ea;
  if Value.is_null va || Value.is_null vb then Ok Value.Null
  else
    (* paper Listing 2 class: TEXT operand routes subtraction through
       double precision, losing low bits of large integers *)
    let text_involved =
      match (va, vb) with
      | Value.Text _, _ | _, Value.Text _ -> true
      | _ -> false
    in
    ignore eb;
    if
      Dialect.equal env.dialect Dialect.Sqlite_like
      && bug env Bug.Sq_text_int_subtract_real
      && (match op with A.Sub -> true | _ -> false)
      && text_involved
    then
      let to_f v =
        match Coerce.to_numeric v with
        | Value.Int i -> Int64.to_float i
        | Value.Real r -> r
        | _ -> 0.0
      in
      let r = to_f va -. to_f vb in
      if Numeric.real_is_exact_int r || Float.is_integer r then
        Ok (Value.Int (Int64.of_float r))
      else Ok (Value.Real r)
    else
      let* na, nb =
        match env.dialect with
        | Dialect.Sqlite_like | Dialect.Mysql_like ->
            Ok (Coerce.to_numeric va, Coerce.to_numeric vb)
        | Dialect.Postgres_like ->
            let* a = pg_numeric_operand va in
            let* b = pg_numeric_operand vb in
            Ok (a, b)
      in
      match (na, nb) with
      | Value.Int x, Value.Int y -> int_arith env op x y
      | Value.Real x, Value.Real y -> real_arith env op x y
      | Value.Int x, Value.Real y -> real_arith env op (Int64.to_float x) y
      | Value.Real x, Value.Int y -> real_arith env op x (Int64.to_float y)
      | _ -> Ok Value.Null

(* Bitwise operators work on 64-bit integers; operands are cast the way
   sqlite's CAST AS INTEGER does. *)
let to_int64 (v : Value.t) : int64 option =
  match Coerce.sqlite_cast_int v with Value.Int i -> Some i | _ -> None

let bitop env op (va : Value.t) (vb : Value.t) : (Value.t, Errors.t) result =
  if Value.is_null va || Value.is_null vb then Ok Value.Null
  else
    match env.dialect with
    | Dialect.Postgres_like -> (
        match (va, vb) with
        | Value.Int x, Value.Int y -> (
            match op with
            | A.Bit_and -> Ok (Value.Int (Int64.logand x y))
            | A.Bit_or -> Ok (Value.Int (Int64.logor x y))
            | A.Shift_left ->
                if y < 0L || y > 63L then Ok (Value.Int 0L)
                else Ok (Value.Int (Int64.shift_left x (Int64.to_int y)))
            | A.Shift_right ->
                if y < 0L || y > 63L then Ok (Value.Int 0L)
                else Ok (Value.Int (Int64.shift_right x (Int64.to_int y)))
            | _ -> invalid_arg "bitop")
        | _ -> Error (pg_type_mismatch va vb))
    | Dialect.Sqlite_like | Dialect.Mysql_like -> (
        match (to_int64 va, to_int64 vb) with
        | Some x, Some y -> (
            (* sqlite: a negative shift amount shifts the other way *)
            let shift dir x y =
              let y, dir =
                if y < 0L then (Int64.neg y, not dir) else (y, dir)
              in
              if y > 63L then 0L
              else if dir then Int64.shift_left x (Int64.to_int y)
              else Int64.shift_right x (Int64.to_int y)
            in
            match op with
            | A.Bit_and -> Ok (Value.Int (Int64.logand x y))
            | A.Bit_or -> Ok (Value.Int (Int64.logor x y))
            | A.Shift_left -> Ok (Value.Int (shift true x y))
            | A.Shift_right -> Ok (Value.Int (shift false x y))
            | _ -> invalid_arg "bitop")
        | _ -> Ok Value.Null)

(* ------------------------------------------------------------------ *)
(* Scalar functions                                                    *)

let func_available dialect (f : A.func) =
  match (f, dialect) with
  | (A.F_typeof | A.F_quote), Dialect.Sqlite_like -> true
  | (A.F_typeof | A.F_quote), _ -> false
  | A.F_ifnull, (Dialect.Sqlite_like | Dialect.Mysql_like) -> true
  | A.F_ifnull, Dialect.Postgres_like -> false
  | A.F_instr, (Dialect.Sqlite_like | Dialect.Mysql_like) -> true
  | A.F_instr, Dialect.Postgres_like -> false
  | (A.F_least | A.F_greatest), (Dialect.Mysql_like | Dialect.Postgres_like) ->
      true
  | (A.F_least | A.F_greatest), Dialect.Sqlite_like -> false
  | ( ( A.F_abs | A.F_length | A.F_lower | A.F_upper | A.F_coalesce
      | A.F_nullif | A.F_trim | A.F_ltrim | A.F_rtrim | A.F_substr
      | A.F_replace | A.F_hex | A.F_round | A.F_sign ),
      _ ) ->
      true

let wrong_arity name =
  Errors.makef Errors.Invalid_function "wrong number of arguments to %s" name

let pg_wants_text name (v : Value.t) =
  match v with
  | Value.Text _ | Value.Null -> Ok ()
  | _ ->
      Error
        (Errors.makef Errors.Type_error "function %s(%s) does not exist" name
           (Value.show v))

let text_of env (v : Value.t) = Coerce.to_text env.dialect v

let apply_func env (f : A.func) (args : Value.t list) (arg_exprs : A.expr list)
    : (Value.t, Errors.t) result =
  let strict_pg = Dialect.equal env.dialect Dialect.Postgres_like in
  let null_if_any_null k =
    if List.exists Value.is_null args then Ok Value.Null else k ()
  in
  match (f, args) with
  | A.F_abs, [ v ] ->
      null_if_any_null (fun () ->
          match Coerce.to_numeric v with
          | Value.Int i -> (
              if strict_pg && not (Value.is_numeric v) then
                Error (Errors.make Errors.Type_error "abs(non-numeric)")
              else
                match Numeric.checked_neg i with
                | Some n -> Ok (Value.Int (if i < 0L then n else i))
                | None -> (
                    match env.dialect with
                    | Dialect.Sqlite_like ->
                        Error
                          (Errors.make Errors.Out_of_range "integer overflow")
                    | _ -> Error overflow_error))
          | Value.Real r -> Ok (Value.Real (Float.abs r))
          | _ -> Ok (Value.Int 0L))
  | A.F_abs, _ -> Error (wrong_arity "ABS")
  | A.F_length, [ v ] ->
      null_if_any_null (fun () ->
          match v with
          | Value.Text s -> Ok (Value.Int (Int64.of_int (String.length s)))
          | Value.Blob s -> Ok (Value.Int (Int64.of_int (String.length s)))
          | _ ->
              if strict_pg then
                Error (Errors.make Errors.Type_error "length(non-text)")
              else
                Ok (Value.Int (Int64.of_int (String.length (text_of env v)))))
  | A.F_length, _ -> Error (wrong_arity "LENGTH")
  | (A.F_lower | A.F_upper), [ v ] ->
      null_if_any_null (fun () ->
          let* () = if strict_pg then pg_wants_text "lower" v else Ok () in
          let s = text_of env v in
          let s' =
            match f with
            | A.F_lower -> String.lowercase_ascii s
            | _ -> String.uppercase_ascii s
          in
          Ok (Value.Text s'))
  | (A.F_lower | A.F_upper), _ -> Error (wrong_arity "LOWER/UPPER")
  | A.F_coalesce, [] -> Error (wrong_arity "COALESCE")
  | A.F_coalesce, vs -> (
      match List.find_opt (fun v -> not (Value.is_null v)) vs with
      | Some v -> Ok v
      | None -> Ok Value.Null)
  | A.F_ifnull, [ a; b ] -> Ok (if Value.is_null a then b else a)
  | A.F_ifnull, _ -> Error (wrong_arity "IFNULL")
  | A.F_nullif, [ a; b ] ->
      if Value.is_null a then Ok Value.Null
      else if Value.is_null b then Ok a
      else
        let e0 = List.nth_opt arg_exprs 0 and e1 = List.nth_opt arg_exprs 1 in
        let coll =
          match (e0, e1) with
          | Some x, Some y -> comparison_collation env x y
          | _ -> Collation.Binary
        in
        if compare_values env coll a b = 0 then Ok Value.Null else Ok a
  | A.F_nullif, _ -> Error (wrong_arity "NULLIF")
  | A.F_typeof, [ v ] ->
      (* intended-class injection: TYPEOF reports the declared affinity for
         text stored in INTEGER columns (devs: works as documented) *)
      let declared_int =
        bug env Bug.Sq_intended_typeof_affinity
        &&
        match arg_exprs with
        | [ e ] -> (
            match column_meta env e with
            | Some (dt, _) -> Datatype.affinity dt = Datatype.A_integer
            | None -> false)
        | _ -> false
      in
      let name =
        match v with
        | Value.Null -> "null"
        | Value.Int _ -> "integer"
        | Value.Real _ -> "real"
        | Value.Text _ -> if declared_int then "integer" else "text"
        | Value.Blob _ -> "blob"
        | Value.Bool _ -> "integer"
      in
      Ok (Value.Text name)
  | A.F_typeof, _ -> Error (wrong_arity "TYPEOF")
  | (A.F_trim | A.F_ltrim | A.F_rtrim), [ v ] ->
      null_if_any_null (fun () ->
          let* () = if strict_pg then pg_wants_text "trim" v else Ok () in
          let s = text_of env v in
          let ltrim s =
            let n = String.length s in
            let i = ref 0 in
            while !i < n && s.[!i] = ' ' do
              incr i
            done;
            String.sub s !i (n - !i)
          in
          let rtrim s =
            let n = ref (String.length s) in
            while !n > 0 && s.[!n - 1] = ' ' do
              decr n
            done;
            String.sub s 0 !n
          in
          let s' =
            match f with
            | A.F_trim -> ltrim (rtrim s)
            | A.F_ltrim -> ltrim s
            | _ -> rtrim s
          in
          Ok (Value.Text s'))
  | (A.F_trim | A.F_ltrim | A.F_rtrim), _ -> Error (wrong_arity "TRIM")
  | A.F_substr, ([ _; _ ] | [ _; _; _ ]) ->
      null_if_any_null (fun () ->
          match args with
          | v :: rest ->
              let s = text_of env v in
              let nums =
                List.map
                  (fun x ->
                    match Coerce.to_numeric x with
                    | Value.Int i -> Int64.to_int i
                    | Value.Real r -> int_of_float r
                    | _ -> 0)
                  rest
              in
              let len = String.length s in
              let start, count =
                match nums with
                | [ st ] -> (st, len)
                | [ st; ct ] -> (st, ct)
                | _ -> (1, len)
              in
              (* 1-based; negative start counts from the end (sqlite) *)
              let start0 =
                if start > 0 then start - 1
                else if start < 0 then Stdlib.max 0 (len + start)
                else 0
              in
              let count = Stdlib.max 0 count in
              let start0 = Stdlib.min start0 len in
              let count = Stdlib.min count (len - start0) in
              Ok (Value.Text (String.sub s start0 count))
          | [] -> Error (wrong_arity "SUBSTR"))
  | A.F_substr, _ -> Error (wrong_arity "SUBSTR")
  | A.F_replace, [ s; from_s; to_s ] ->
      null_if_any_null (fun () ->
          let s = text_of env s
          and f_ = text_of env from_s
          and t_ = text_of env to_s in
          if f_ = "" then Ok (Value.Text s)
          else begin
            let buf = Buffer.create (String.length s) in
            let flen = String.length f_ in
            let i = ref 0 in
            while !i <= String.length s - flen do
              if String.sub s !i flen = f_ then begin
                Buffer.add_string buf t_;
                i := !i + flen
              end
              else begin
                Buffer.add_char buf s.[!i];
                incr i
              end
            done;
            Buffer.add_string buf (String.sub s !i (String.length s - !i));
            Ok (Value.Text (Buffer.contents buf))
          end)
  | A.F_replace, _ -> Error (wrong_arity "REPLACE")
  | A.F_instr, [ hay; needle ] ->
      null_if_any_null (fun () ->
          let h = text_of env hay and n = text_of env needle in
          let hl = String.length h and nl = String.length n in
          let rec find i =
            if i + nl > hl then 0
            else if String.sub h i nl = n then i + 1
            else find (i + 1)
          in
          Ok (Value.Int (Int64.of_int (find 0))))
  | A.F_instr, _ -> Error (wrong_arity "INSTR")
  | A.F_hex, [ v ] ->
      null_if_any_null (fun () ->
          let s = text_of env v in
          let buf = Buffer.create (2 * String.length s) in
          String.iter
            (fun c -> Buffer.add_string buf (Printf.sprintf "%02X" (Char.code c)))
            s;
          Ok (Value.Text (Buffer.contents buf)))
  | A.F_hex, _ -> Error (wrong_arity "HEX")
  | A.F_round, ([ _ ] | [ _; _ ]) ->
      null_if_any_null (fun () ->
          match args with
          | v :: rest ->
              let digits =
                match rest with
                | [ d ] -> (
                    match Coerce.to_numeric d with
                    | Value.Int i -> Int64.to_int i
                    | Value.Real r -> int_of_float r
                    | _ -> 0)
                | _ -> 0
              in
              let* () =
                if strict_pg && not (Value.is_numeric v) then
                  Error (Errors.make Errors.Type_error "round(non-numeric)")
                else Ok ()
              in
              (match Coerce.to_numeric v with
              | Value.Int i when digits >= 0 -> Ok (Value.Real (Int64.to_float i))
              | Value.Int i -> Ok (Value.Real (Int64.to_float i))
              | Value.Real r ->
                  let scale = 10.0 ** float_of_int (Stdlib.max 0 digits) in
                  Ok (Value.Real (Float.round (r *. scale) /. scale))
              | _ -> Ok (Value.Real 0.0))
          | [] -> Error (wrong_arity "ROUND"))
  | A.F_round, _ -> Error (wrong_arity "ROUND")
  | A.F_sign, [ v ] ->
      null_if_any_null (fun () ->
          match Coerce.to_numeric v with
          | Value.Int i -> Ok (Value.Int (Int64.of_int (compare i 0L)))
          | Value.Real r -> Ok (Value.Int (Int64.of_int (compare r 0.0)))
          | _ -> Ok Value.Null)
  | A.F_sign, _ -> Error (wrong_arity "SIGN")
  | (A.F_least | A.F_greatest), [] -> Error (wrong_arity "LEAST/GREATEST")
  | (A.F_least | A.F_greatest), vs ->
      let pick cmp_keep =
        (* mysql: NULL poisons; postgres: NULLs are skipped *)
        let non_null = List.filter (fun v -> not (Value.is_null v)) vs in
        if Dialect.equal env.dialect Dialect.Mysql_like
           && List.length non_null <> List.length vs
        then Ok Value.Null
        else if non_null = [] then Ok Value.Null
        else if
          Dialect.equal env.dialect Dialect.Mysql_like
          && bug env Bug.My_least_mixed_types
          && List.exists Value.is_numeric non_null
          && List.exists
               (fun v -> match v with Value.Text _ -> true | _ -> false)
               non_null
        then
          (* buggy: lexicographic over text renderings *)
          let best =
            List.fold_left
              (fun acc v ->
                let ta = text_of env acc and tv = text_of env v in
                if cmp_keep (String.compare tv ta) then v else acc)
              (List.hd non_null) (List.tl non_null)
          in
          Ok best
        else
          let best =
            List.fold_left
              (fun acc v ->
                if cmp_keep (Value.compare_total v acc) then v else acc)
              (List.hd non_null) (List.tl non_null)
          in
          Ok best
      in
      (match f with
      | A.F_least -> pick (fun c -> c < 0)
      | _ -> pick (fun c -> c > 0))
  | A.F_quote, [ v ] -> Ok (Value.Text (Value.to_sql_literal v))
  | A.F_quote, _ -> Error (wrong_arity "QUOTE")

(* ------------------------------------------------------------------ *)
(* Value-level predicate bodies                                        *)

(* The post-operand-evaluation bodies of the predicate evaluators,
   shared verbatim by the tree-walking interpreter below and the closure
   compiler (Engine.Compile): every dialect quirk and injected bug that
   depends only on operand *values* (plus statically resolvable column
   metadata) lives here, so both execution backends inherit identical
   semantics from one definition. *)

let neg_value env (v : Value.t) : (Value.t, Errors.t) result =
  if Value.is_null v then Ok Value.Null
  else
    match env.dialect with
    | Dialect.Postgres_like -> (
        let* n = pg_numeric_operand v in
        match n with
        | Value.Int i -> (
            match Numeric.checked_neg i with
            | Some r -> Ok (Value.Int r)
            | None -> Error overflow_error)
        | Value.Real r -> Ok (Value.Real (-.r))
        | _ -> Ok Value.Null)
    | Dialect.Sqlite_like | Dialect.Mysql_like -> (
        match Coerce.to_numeric v with
        | Value.Int i -> (
            match Numeric.checked_neg i with
            | Some r -> Ok (Value.Int r)
            | None -> Ok (Value.Real 9.223372036854775808e18))
        | Value.Real r -> Ok (Value.Real (-.r))
        | _ -> Ok Value.Null)

let bit_not_value env (v : Value.t) : (Value.t, Errors.t) result =
  if Value.is_null v then Ok Value.Null
  else
    match env.dialect with
    | Dialect.Postgres_like -> (
        match v with
        | Value.Int i -> Ok (Value.Int (Int64.lognot i))
        | _ -> Error (Errors.make Errors.Type_error "~ requires integer"))
    | Dialect.Sqlite_like | Dialect.Mysql_like -> (
        match to_int64 v with
        | Some i -> Ok (Value.Int (Int64.lognot i))
        | None -> Ok Value.Null)

let is_finish env ~negated t =
  let t = if negated then Tvl.not_ t else t in
  Ok (bool_value env.dialect t)

let is_bool_value env ~negated ~(want : Tvl.t) (v : Value.t) :
    (Value.t, Errors.t) result =
  match v with
  | Value.Null ->
      (* IS TRUE/FALSE of NULL is FALSE; IS NOT TRUE of NULL is TRUE —
         unless the injected Listing-1-adjacent bug flips it *)
      if
        negated
        && Dialect.equal env.dialect Dialect.Sqlite_like
        && bug env Bug.Sq_is_not_true_null
      then Ok (bool_value env.dialect Tvl.False)
      else is_finish env ~negated Tvl.False
  | _ ->
      let* t = value_tvl env v in
      is_finish env ~negated (Tvl.of_bool (Tvl.equal t want))

(* The static slice of a BETWEEN: collation choice and the two sqlite
   affinity adjustments, all metadata-driven. *)
type between_prep = {
  bp_negated : bool;
  bp_coll : Collation.t;
  bp_lo : (Value.t -> Value.t) * (Value.t -> Value.t);
  bp_hi : (Value.t -> Value.t) * (Value.t -> Value.t);
}

let between_prep env ~negated ~arg ~lo ~hi : between_prep =
  let coll =
    if bug env Bug.Sq_between_collate_ignored
       && Dialect.equal env.dialect Dialect.Sqlite_like
    then Collation.Binary
    else
      match explicit_collation env arg with
      | Some c -> c
      | None -> comparison_collation env lo hi
  in
  let adj a b =
    match env.dialect with
    | Dialect.Sqlite_like -> sqlite_affinity_prep env a b
    | Dialect.Mysql_like | Dialect.Postgres_like -> (Fun.id, Fun.id)
  in
  { bp_negated = negated; bp_coll = coll; bp_lo = adj arg lo; bp_hi = adj arg hi }

let between_apply env (p : between_prep) (v : Value.t) (vl : Value.t)
    (vh : Value.t) : (Value.t, Errors.t) result =
  let* () =
    if Dialect.equal env.dialect Dialect.Postgres_like
       && not (pg_comparable v vl && pg_comparable v vh)
    then Error (pg_type_mismatch v vl)
    else Ok ()
  in
  let bound (fa, fb) w cmp =
    if Value.is_null v || Value.is_null w then Tvl.Unknown
    else
      let x, y =
        match env.dialect with
        | Dialect.Sqlite_like -> (fa v, fb w)
        | Dialect.Mysql_like -> mysql_comparison_values v w
        | Dialect.Postgres_like -> (v, w)
      in
      Tvl.of_bool (cmp (compare_values env p.bp_coll x y) 0)
  in
  let ge_lo = bound p.bp_lo vl ( >= ) in
  let le_hi = bound p.bp_hi vh ( <= ) in
  let t = Tvl.and_ ge_lo le_hi in
  let negated = p.bp_negated in
  let t = if negated then Tvl.not_ t else t in
  Ok (bool_value env.dialect t)

let between_value env ~negated ~arg ~lo ~hi (v : Value.t) (vl : Value.t)
    (vh : Value.t) : (Value.t, Errors.t) result =
  between_apply env (between_prep env ~negated ~arg ~lo ~hi) v vl vh

(* the IN-list walk fell off the end without a match: NULL items poison
   the verdict to UNKNOWN unless the injected bug forces FALSE *)
let in_empty_tvl env ~saw_null : Tvl.t =
  if saw_null then
    if
      Dialect.equal env.dialect Dialect.Sqlite_like
      && bug env Bug.Sq_null_in_list_false
    then Tvl.False
    else Tvl.Unknown
  else Tvl.False

let like_escape_char (ve : Value.t) : (char option, Errors.t) result =
  match ve with
  | Value.Text s when String.length s = 1 -> Ok (Some s.[0])
  | Value.Null -> Ok None
  | _ ->
      Error
        (Errors.make Errors.Invalid_function
           "ESCAPE expression must be a single character")

(* The static slice of a LIKE: case sensitivity and the integer-affinity
   optimization bugs, both decided from the argument's metadata. *)
type like_prep = {
  lp_negated : bool;
  lp_case_sensitive : bool;
  lp_int_affinity_buggy : bool;
}

let like_prep env ~negated ~arg : like_prep =
  let case_sensitive =
    match env.dialect with
    | Dialect.Postgres_like -> true
    | Dialect.Mysql_like -> false
    | Dialect.Sqlite_like ->
        let base = env.case_sensitive_like in
        (* injected: LIKE on a NOCASE column becomes case sensitive *)
        if
          bug env Bug.Sq_nocase_like_case_sensitive
          &&
          match column_meta env arg with
          | Some (_, Collation.Nocase) -> true
          | _ -> false
        then true
        else base
  in
  (* paper Listing 7 class: on an INTEGER-affinity column the optimized
     LIKE compares numeric prefixes instead of text *)
  let int_affinity_buggy =
    Dialect.equal env.dialect Dialect.Sqlite_like
    && ((bug env Bug.Sq_like_int_affinity_opt
         &&
         match column_meta env arg with
         | Some (dt, _) -> Datatype.affinity dt = Datatype.A_integer
         | None -> false)
       || (bug env Bug.Sq_dup_like_opt_nocase
           &&
           match column_meta env arg with
           | Some (dt, c) ->
               Datatype.affinity dt = Datatype.A_integer
               && Collation.equal c Collation.Nocase
           | None -> false))
  in
  {
    lp_negated = negated;
    lp_case_sensitive = case_sensitive;
    lp_int_affinity_buggy = int_affinity_buggy;
  }

let like_apply env (lp : like_prep) (v : Value.t) (p : Value.t)
    (esc : char option) : (Value.t, Errors.t) result =
  if Value.is_null v || Value.is_null p then
    Ok (bool_value env.dialect Tvl.Unknown)
  else
    let* () =
      if Dialect.equal env.dialect Dialect.Postgres_like then
        match (v, p) with
        | (Value.Text _ | Value.Null), (Value.Text _ | Value.Null) -> Ok ()
        | _ -> Error (pg_type_mismatch v p)
      else Ok ()
    in
    let negated = lp.lp_negated in
    let case_sensitive = lp.lp_case_sensitive in
    let int_affinity_buggy = lp.lp_int_affinity_buggy in
    let matched =
      if int_affinity_buggy then
        (* the optimized LIKE ranges over numeric keys: non-numeric text
           never matches, numeric text matches on numeric equality *)
        match
          ( Numeric.parse_exact (text_of env v),
            Numeric.parse_exact (text_of env p) )
        with
        | Some a, Some b -> a = b
        | _ -> false
      else
        Like_matcher.like ~case_sensitive ?escape:esc
          ~pattern:(text_of env p) (text_of env v)
    in
    let t = Tvl.of_bool matched in
    let t = if negated then Tvl.not_ t else t in
    Ok (bool_value env.dialect t)

let like_value env ~negated ~arg (v : Value.t) (p : Value.t)
    (esc : char option) : (Value.t, Errors.t) result =
  like_apply env (like_prep env ~negated ~arg) v p esc

let glob_value env ~negated (v : Value.t) (p : Value.t) :
    (Value.t, Errors.t) result =
  if Value.is_null v || Value.is_null p then
    Ok (bool_value env.dialect Tvl.Unknown)
  else
    let pat = text_of env p in
    let pat =
      (* injected: character-class range upper bounds become exclusive,
         implemented by shrinking each range in the pattern *)
      if bug env Bug.Sq_glob_range_exclusive then begin
        let b = Bytes.of_string pat in
        let n = Bytes.length b in
        for i = 0 to n - 3 do
          if
            Bytes.get b i = '-'
            && i > 0
            && Bytes.get b (i + 1) <> ']'
            && Char.code (Bytes.get b (i + 1)) > 0
          then Bytes.set b (i + 1) (Char.chr (Char.code (Bytes.get b (i + 1)) - 1))
        done;
        Bytes.to_string b
      end
      else pat
    in
    let matched = Like_matcher.glob ~pattern:pat (text_of env v) in
    let t = Tvl.of_bool matched in
    let t = if negated then Tvl.not_ t else t in
    Ok (bool_value env.dialect t)

let cast_value env ty (v : Value.t) : (Value.t, Errors.t) result =
  (* mysql unsigned-cast bug: negative integers keep their signed value *)
  match (env.dialect, ty) with
  | Dialect.Mysql_like, Datatype.Int { unsigned = true; _ }
    when bug env Bug.My_unsigned_cast_signed_compare
         || bug env Bug.My_dup_unsigned_compare -> (
      match Coerce.to_numeric v with
      | Value.Int i -> Ok (Value.Int i) (* buggy: stays signed *)
      | Value.Real r -> Ok (Value.Int (Int64.of_float (Float.round r)))
      | Value.Null -> Ok Value.Null
      | _ -> Ok (Value.Int 0L))
  | _ ->
      Result.map_error (Errors.make Errors.Type_error)
        (Coerce.cast env.dialect ty v)

(* ------------------------------------------------------------------ *)
(* Main evaluator                                                      *)

let rec eval env (e : A.expr) : (Value.t, Errors.t) result =
  match e with
  | A.Lit v -> Ok v
  | A.Col { table; column } ->
      let* r = env.resolve ~table ~column in
      Ok r.value
  | A.Unary (op, inner) -> eval_unary env op inner
  | A.Binary (op, a, b) -> eval_binary env op a b
  | A.Is { negated; arg; rhs } -> eval_is env ~negated arg rhs
  | A.Between { negated; arg; lo; hi } -> eval_between env ~negated arg lo hi
  | A.In_list { negated; arg; list } -> eval_in env ~negated arg list
  | A.Like { negated; arg; pattern; escape } ->
      eval_like env ~negated arg pattern escape
  | A.Glob { negated; arg; pattern } -> eval_glob env ~negated arg pattern
  | A.Cast (ty, inner) -> eval_cast env ty inner
  | A.Func (f, args) -> eval_func env f args
  | A.Agg _ ->
      Error
        (Errors.make Errors.Invalid_function
           "misuse of aggregate function in scalar context")
  | A.Case { operand; branches; else_ } -> eval_case env operand branches else_
  | A.Collate (inner, _) -> eval env inner

and eval_tvl env e : (Tvl.t, Errors.t) result =
  let* v = eval env e in
  value_tvl env v

and eval_unary env op inner =
  match op with
  | A.Not -> (
      cov env "unop.not";
      (* mysql Listing 13 class: NOT(NOT x) folded away *)
      match inner with
      | A.Unary (A.Not, grandchild)
        when Dialect.equal env.dialect Dialect.Mysql_like
             && bug env Bug.My_double_negation_fold ->
          eval env grandchild
      (* constant folder treats the NULL literal as FALSE under NOT *)
      | A.Lit Value.Null
        when Dialect.equal env.dialect Dialect.Sqlite_like
             && bug env Bug.Sq_fold_not_null_true ->
          Ok (bool_value env.dialect Tvl.True)
      | _ ->
          let* t = eval_tvl env inner in
          Ok (bool_value env.dialect (Tvl.not_ t)))
  | A.Neg ->
      cov env "unop.neg";
      let* v = eval env inner in
      neg_value env v
  | A.Pos ->
      cov env "unop.pos";
      eval env inner
  | A.Bit_not ->
      cov env "unop.bit_not";
      let* v = eval env inner in
      bit_not_value env v

and eval_binary env op a b =
  match op with
  | A.And
    when (match (a, b) with
         | A.Lit Value.Null, _ | _, A.Lit Value.Null -> true
         | _ -> false)
         && Dialect.equal env.dialect Dialect.Sqlite_like
         && bug env Bug.Sq_fold_null_and ->
      (* constant folder rewrites `NULL AND x` to NULL without checking
         whether x is FALSE; operands are skipped like the engine's
         short-circuit would not *)
      cov env "binop.and";
      Ok (bool_value env.dialect Tvl.Unknown)
  | A.And ->
      cov env "binop.and";
      let* ta = eval_tvl env a in
      if Tvl.equal ta Tvl.False then Ok (bool_value env.dialect Tvl.False)
      else
        let* tb = eval_tvl env b in
        Ok (bool_value env.dialect (Tvl.and_ ta tb))
  | A.Or ->
      cov env "binop.or";
      let* ta = eval_tvl env a in
      if Tvl.equal ta Tvl.True then Ok (bool_value env.dialect Tvl.True)
      else
        let* tb = eval_tvl env b in
        Ok (bool_value env.dialect (Tvl.or_ ta tb))
  | A.Concat when Dialect.equal env.dialect Dialect.Mysql_like ->
      (* mysql: || is logical OR by default *)
      cov env "binop.concat";
      eval_binary env A.Or a b
  | A.Concat ->
      cov env "binop.concat";
      let* va = eval env a in
      let* vb = eval env b in
      if Value.is_null va || Value.is_null vb then Ok Value.Null
      else Ok (Value.Text (text_of env va ^ text_of env vb))
  | A.Eq | A.Neq | A.Lt | A.Le | A.Gt | A.Ge | A.Null_safe_eq ->
      let point =
        match op with
        | A.Eq -> "binop.eq"
        | A.Neq -> "binop.neq"
        | A.Lt -> "binop.lt"
        | A.Le -> "binop.le"
        | A.Gt -> "binop.gt"
        | A.Ge -> "binop.ge"
        | _ -> "binop.nullsafe_eq"
      in
      cov env point;
      let* va = eval env a in
      let* vb = eval env b in
      compare_op env op a b va vb
  | A.Add | A.Sub | A.Mul | A.Div | A.Rem ->
      let point =
        match op with
        | A.Add -> "binop.add"
        | A.Sub -> "binop.sub"
        | A.Mul -> "binop.mul"
        | A.Div -> "binop.div"
        | _ -> "binop.rem"
      in
      cov env point;
      let* va = eval env a in
      let* vb = eval env b in
      arith env op a b va vb
  | A.Bit_and | A.Bit_or | A.Shift_left | A.Shift_right ->
      let point =
        match op with
        | A.Bit_and -> "binop.bit_and"
        | A.Bit_or -> "binop.bit_or"
        | A.Shift_left -> "binop.shl"
        | _ -> "binop.shr"
      in
      cov env point;
      let* va = eval env a in
      let* vb = eval env b in
      bitop env op va vb

and eval_is env ~negated arg rhs =
  cov env "pred.is";
  let finish t = is_finish env ~negated t in
  match rhs with
  | A.Is_null ->
      let* v = eval env arg in
      finish (Tvl.of_bool (Value.is_null v))
  | A.Is_true | A.Is_false ->
      let* v = eval env arg in
      let want = match rhs with A.Is_true -> Tvl.True | _ -> Tvl.False in
      is_bool_value env ~negated ~want v
  | A.Is_expr other ->
      (* sqlite's IS: null-safe equality over scalars *)
      if not (Dialect.equal env.dialect Dialect.Sqlite_like) then
        Error
          (Errors.make Errors.Invalid_function
             "IS over scalars is sqlite-specific")
      else
        let* va = eval env arg in
        let* vb = eval env other in
        let* r = compare_op env A.Null_safe_eq arg other va vb in
        let* t = value_tvl env r in
        finish t
  | A.Is_distinct_from other ->
      if not (Dialect.equal env.dialect Dialect.Postgres_like) then
        Error
          (Errors.make Errors.Invalid_function
             "IS DISTINCT FROM is postgres-specific")
      else
        let* va = eval env arg in
        let* vb = eval env other in
        let* r = compare_op env A.Null_safe_eq arg other va vb in
        let* t = value_tvl env r in
        finish (Tvl.not_ t)

and eval_between env ~negated arg lo hi =
  cov env "pred.between";
  let* v = eval env arg in
  let* vl = eval env lo in
  let* vh = eval env hi in
  between_value env ~negated ~arg ~lo ~hi v vl vh

and eval_in env ~negated arg list =
  cov env "pred.in";
  let* v = eval env arg in
  if Value.is_null v then Ok (bool_value env.dialect Tvl.Unknown)
  else
    let rec walk saw_null = function
      | [] -> Ok (in_empty_tvl env ~saw_null)
      | item :: rest ->
          let* vi = eval env item in
          if Value.is_null vi then walk true rest
          else
            let* r = compare_op env A.Eq arg item v vi in
            let* t = value_tvl env r in
            if Tvl.equal t Tvl.True then Ok Tvl.True else walk saw_null rest
    in
    let* t = walk false list in
    let t = if negated then Tvl.not_ t else t in
    Ok (bool_value env.dialect t)

and eval_like env ~negated arg pattern escape =
  cov env "pred.like";
  let* v = eval env arg in
  let* p = eval env pattern in
  let* esc =
    match escape with
    | None -> Ok None
    | Some e ->
        let* ve = eval env e in
        like_escape_char ve
  in
  like_value env ~negated ~arg v p esc

and eval_glob env ~negated arg pattern =
  cov env "pred.glob";
  if not (Dialect.equal env.dialect Dialect.Sqlite_like) then
    Error (Errors.make Errors.Invalid_function "GLOB is sqlite-specific")
  else
    let* v = eval env arg in
    let* p = eval env pattern in
    glob_value env ~negated v p

and eval_cast env ty inner =
  cov env "pred.cast";
  let* v = eval env inner in
  cast_value env ty v

and eval_func env f args =
  cov env ("func." ^ func_point f);
  if not (func_available env.dialect f) then
    Error
      (Errors.makef Errors.Invalid_function "no such function in %s dialect"
         (Dialect.name env.dialect))
  else
    let rec eval_args acc = function
      | [] -> Ok (List.rev acc)
      | a :: rest ->
          let* v = eval env a in
          eval_args (v :: acc) rest
    in
    let* vs = eval_args [] args in
    apply_func env f vs args

and func_point = function
  | A.F_abs -> "abs"
  | A.F_length -> "length"
  | A.F_lower -> "lower"
  | A.F_upper -> "upper"
  | A.F_coalesce -> "coalesce"
  | A.F_ifnull -> "ifnull"
  | A.F_nullif -> "nullif"
  | A.F_typeof -> "typeof"
  | A.F_trim -> "trim"
  | A.F_ltrim -> "ltrim"
  | A.F_rtrim -> "rtrim"
  | A.F_substr -> "substr"
  | A.F_replace -> "replace"
  | A.F_instr -> "instr"
  | A.F_hex -> "hex"
  | A.F_round -> "round"
  | A.F_sign -> "sign"
  | A.F_least -> "least"
  | A.F_greatest -> "greatest"
  | A.F_quote -> "quote"

and eval_case env operand branches else_ =
  cov env "pred.case";
  let buggy_null_when =
    Dialect.equal env.dialect Dialect.Sqlite_like && bug env Bug.Sq_case_null_when
  in
  match operand with
  | None ->
      let rec walk = function
        | [] -> (
            match else_ with Some e -> eval env e | None -> Ok Value.Null)
        | (cond, result) :: rest ->
            let* t = eval_tvl env cond in
            let taken =
              Tvl.equal t Tvl.True
              || (buggy_null_when && Tvl.equal t Tvl.Unknown)
            in
            if taken then eval env result else walk rest
      in
      walk branches
  | Some op_expr ->
      let* v = eval env op_expr in
      let rec walk = function
        | [] -> (
            match else_ with Some e -> eval env e | None -> Ok Value.Null)
        | (cond, result) :: rest ->
            let* vc = eval env cond in
            let* r = compare_op env A.Eq op_expr cond v vc in
            let* t = value_tvl env r in
            let taken =
              Tvl.equal t Tvl.True
              || (buggy_null_when && Tvl.equal t Tvl.Unknown)
            in
            if taken then eval env result else walk rest
      in
      walk branches
