(** Catalog of injectable defects.

    The paper evaluates PQS by the real bugs it found in SQLite, MySQL and
    PostgreSQL over three months.  That experiment is not re-runnable, so the
    reproduction implants a ground-truth catalog of defects into the engine,
    one per reported bug *class*, each modeled on a concrete finding (the
    [paper_ref] field cites the paper listing or section it mirrors).  The
    catalog is scaled down from the paper's 123 reports by a factor of ~2.4
    while preserving the per-DBMS and per-oracle proportions; EXPERIMENTS.md
    records the scaling.

    Every bug is independently toggleable; with no bugs enabled the engine is
    correct (property-tested), so any oracle report under an enabled bug is a
    true detection of that bug. *)

type t =
  (* --- sqlite-like: containment-oracle bugs --- *)
  | Sq_partial_index_implies_not_null
  | Sq_nocase_unique_pk_collapse
  | Sq_rtrim_compare_asymmetric
  | Sq_like_int_affinity_opt
  | Sq_skip_scan_distinct
  | Sq_text_int_subtract_real
  | Sq_is_not_true_null
  | Sq_partial_index_update_skip
  | Sq_nocase_like_case_sensitive
  | Sq_between_collate_ignored
  | Sq_glob_range_exclusive
  | Sq_affinity_compare_skip
  | Sq_desc_index_range
  | Sq_view_distinct_pushdown
  | Sq_null_in_list_false
  | Sq_case_null_when
  | Sq_or_index_dedup
  | Sq_vacuum_index_desync
  (* --- sqlite-like: error-oracle bugs --- *)
  | Sq_pragma_like_index_vacuum
  | Sq_real_pk_or_replace_corrupt
  | Sq_reindex_rtrim_unique
  | Sq_alter_rename_expr_index
  | Sq_blob_pk_without_rowid_corrupt
  | Sq_vacuum_partial_index_corrupt
  | Sq_or_replace_two_unique_corrupt
  (* --- sqlite-like: crash --- *)
  | Sq_agg_collate_crash
  (* --- sqlite-like: reports closed as intended / duplicate --- *)
  | Sq_intended_pragma_vacuum
  | Sq_intended_typeof_affinity
  | Sq_dup_like_opt_nocase
  (* --- mysql-like: containment --- *)
  | My_memory_join_cast
  | My_unsigned_cast_signed_compare
  | My_null_safe_eq_out_of_range
  | My_text_double_bool_trunc
  | My_double_negation_fold
  | My_least_mixed_types
  (* --- mysql-like: error --- *)
  | My_set_key_cache_nondet
  | My_repair_marks_crashed
  | My_check_table_false_corrupt
  | My_csv_engine_update_error
  (* --- mysql-like: crash --- *)
  | My_check_upgrade_expr_index_crash
  (* --- mysql-like: intended / duplicate --- *)
  | My_intended_ignore_clamp
  | My_dup_unsigned_compare
  | My_dup_memory_join
  (* --- postgres-like: containment --- *)
  | Pg_inherit_group_by_dedup
  (* --- postgres-like: error --- *)
  | Pg_stats_expr_index_bitmapset
  | Pg_index_null_value_error
  | Pg_reindex_deadlock
  (* --- postgres-like: crash --- *)
  | Pg_stats_analyze_crash
  (* --- postgres-like: intended / duplicate --- *)
  | Pg_intended_vacuum_overflow
  | Pg_intended_vacuum_full_deadlock
  | Pg_intended_bool_cast_error
  | Pg_dup_bitmapset_crash
  | Pg_dup_index_null_error
  (* --- sqlite-like: constant-folding bugs (const-opt oracle) --- *)
  | Sq_fold_null_and
  | Sq_fold_affinity_cmp
  | Sq_fold_not_null_true

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val all : t list

(** Oracle expected to detect the bug (paper Table 3's columns). *)
type oracle_class = O_containment | O_error | O_crash

val pp_oracle_class : Format.formatter -> oracle_class -> unit
val show_oracle_class : oracle_class -> string
val equal_oracle_class : oracle_class -> oracle_class -> bool

(** Report status modeled after paper Table 2's columns. *)
type status = Fixed | Verified | Intended | Duplicate

val pp_status : Format.formatter -> status -> unit
val show_status : status -> string
val equal_status : status -> status -> bool

type info = {
  dialect : Sqlval.Dialect.t;
  oracle : oracle_class;
  status : status;
  paper_ref : string;  (** paper listing/section the bug class mirrors *)
  summary : string;
}

val info : t -> info

(** True bugs resulted in fixes or confirmation (paper: 99 of 123). *)
val is_true_bug : t -> bool

val of_string : string -> t option
val for_dialect : Sqlval.Dialect.t -> t list

(** An enabled-bug set, as carried by a session. *)
type set

val empty_set : set
val set_of_list : t list -> set
val singleton : t -> set
val on : set -> t -> bool
val to_list : set -> t list
