open Sqlval
module A = Sqlast.Ast

type bound = Value.t * bool

type path =
  | Full_scan
  | Index_eq of { index : Storage.Index.t; key : Value.t array }
  | Index_range of {
      index : Storage.Index.t;
      lo : bound option;
      hi : bound option;
    }
  | Index_like_prefix of { index : Storage.Index.t; prefix : string }
  | Partial_index_scan of { index : Storage.Index.t }
  | Skip_scan of { index : Storage.Index.t }
  | Or_union of path list

(* plain string building, no Format: the flight recorder renders a path
   per traced scan, so this sits on the tracing hot path *)
let rec show_path = function
  | Full_scan -> "full-scan"
  | Index_eq { index; _ } ->
      "index-eq(" ^ index.Storage.Index.index_name ^ ")"
  | Index_range { index; _ } ->
      "index-range(" ^ index.Storage.Index.index_name ^ ")"
  | Index_like_prefix { index; prefix } ->
      Printf.sprintf "index-like(%s,%S)" index.Storage.Index.index_name prefix
  | Partial_index_scan { index } ->
      "partial-index(" ^ index.Storage.Index.index_name ^ ")"
  | Skip_scan { index } ->
      "skip-scan(" ^ index.Storage.Index.index_name ^ ")"
  | Or_union ps -> "or-union(" ^ String.concat "," (List.map show_path ps) ^ ")"

let pp_path fmt p = Format.pp_print_string fmt (show_path p)

(* Structural identity of a path: [show_path] omits probe keys and range
   bounds, so two different probes over the same index would collapse.
   Used to dedup enumerated candidates and to recognise the default. *)
let rec signature = function
  | Full_scan -> "F"
  | Index_eq { index; key } ->
      "E:" ^ index.Storage.Index.index_name ^ ":"
      ^ String.concat "," (List.map Value.show (Array.to_list key))
  | Index_range { index; lo; hi } ->
      let b = function
        | None -> "-"
        | Some (v, incl) -> Value.show v ^ if incl then "i" else "x"
      in
      "R:" ^ index.Storage.Index.index_name ^ ":" ^ b lo ^ ":" ^ b hi
  | Index_like_prefix { index; prefix } ->
      "L:" ^ index.Storage.Index.index_name ^ ":" ^ prefix
  | Partial_index_scan { index } -> "P:" ^ index.Storage.Index.index_name
  | Skip_scan { index } -> "S:" ^ index.Storage.Index.index_name
  | Or_union ps -> "O(" ^ String.concat "|" (List.map signature ps) ^ ")"

let label = function
  | Full_scan -> "full_scan"
  | Index_eq _ -> "index_eq"
  | Index_range _ -> "index_range"
  | Index_like_prefix _ -> "index_like_prefix"
  | Partial_index_scan _ -> "partial_index"
  | Skip_scan _ -> "skip_scan"
  | Or_union _ -> "or_union"

let rec conjuncts = function
  | A.Binary (A.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* A constant expression (no column references) evaluated with the correct
   engine semantics; planner constants must match run-time values. *)
let const_value env e =
  if A.expr_columns e = [] then
    match Eval.eval { env with Eval.resolve = (Eval.const_env env.Eval.dialect).Eval.resolve } e with
    | Ok v -> Some v
    | Error _ -> None
  else None

(* Is [e] a bare reference to [column] (possibly qualified)? *)
let is_column_ref column = function
  | A.Col { column = c; _ } -> String.lowercase_ascii c = String.lowercase_ascii column
  | _ -> false

(* First indexed column name of a single-column (or leading-column) index,
   when it is a plain column. *)
let leading_column (ix : Storage.Index.t) =
  match ix.Storage.Index.definition with
  | { A.ic_expr = A.Col { column; _ }; _ } :: _ -> Some column
  | _ -> None

let is_not_null_predicate = function
  | A.Is { negated = true; arg = A.Col { column; _ }; rhs = A.Is_null } ->
      Some column
  | A.Unary (A.Not, A.Is { negated = false; arg = A.Col { column; _ }; rhs = A.Is_null })
    ->
      Some column
  | _ -> None

let implies_predicate env ~where ~predicate =
  let buggy =
    Dialect.equal env.Eval.dialect Dialect.Sqlite_like
    && Bug.on env.Eval.bugs Bug.Sq_partial_index_implies_not_null
  in
  List.exists
    (fun conj ->
      A.equal_expr conj predicate
      ||
      match is_not_null_predicate predicate with
      | None -> false
      | Some col -> (
          match conj with
          (* sound: c = <non-null constant> implies c NOT NULL *)
          | A.Binary (A.Eq, a, b) -> (
              let check side other =
                is_column_ref col side
                &&
                match const_value env other with
                | Some v -> not (Value.is_null v)
                | None -> false
              in
              check a b || check b a)
          (* unsound (Listing 1): c IS NOT <non-null constant>, including
             the NOT-wrapped spellings the rectifier produces *)
          | A.Is { negated = true; arg; rhs = A.Is_expr other }
          | A.Unary
              (A.Not, A.Is { negated = false; arg; rhs = A.Is_expr other })
          | A.Unary (A.Not, A.Binary (A.Null_safe_eq, arg, other))
            when buggy && is_column_ref col arg -> (
              match const_value env other with
              | Some v -> not (Value.is_null v)
              | None -> false)
          | A.Unary (A.Not, A.Binary (A.Null_safe_eq, other, arg))
            when buggy && is_column_ref col arg -> (
              match const_value env other with
              | Some v -> not (Value.is_null v)
              | None -> false)
          | _ -> false))
    where

(* Collation compatibility: an index probe is valid only when the query
   comparison collation matches the index key collation. *)
let index_collation (ix : Storage.Index.t) =
  match ix.Storage.Index.collations with
  | [||] -> Collation.Binary
  | cs -> cs.(0)

(* Apply the stored-key canonical conversion the way an INSERT would, so
   probe keys align with stored keys (sqlite affinity). *)
let probe_value env (table : Storage.Schema.table) column (v : Value.t) =
  match Storage.Schema.find_column table column with
  | Some (_, col) when Dialect.equal env.Eval.dialect Dialect.Sqlite_like ->
      Coerce.apply_affinity (Datatype.affinity col.Storage.Schema.ty) v
  | _ -> v

(* A probe is sound only when index-key ordering agrees with the dialect's
   comparison semantics for this (column, literal) pair.  sqlite's affinity
   conversion makes any literal probeable; mysql and postgres coerce (or
   reject) cross-class comparisons, so the literal's storage class must
   match the column's declared class. *)
let probe_class_ok env (table : Storage.Schema.table) column (v : Value.t) =
  if Dialect.equal env.Eval.dialect Dialect.Sqlite_like then true
  else
    match Storage.Schema.find_column table column with
    | None -> false
    | Some (_, col) -> (
        match (col.Storage.Schema.ty, v) with
        | (Datatype.Int _ | Datatype.Serial), Value.Int _ -> true
        | Datatype.Bool, (Value.Int _ | Value.Bool _) -> true
        | Datatype.Real, Value.Real _ -> true
        | Datatype.Text, Value.Text _ -> true
        | Datatype.Blob, Value.Blob _ -> true
        | (Datatype.Any | Datatype.Int _ | Datatype.Serial | Datatype.Real
          | Datatype.Text | Datatype.Blob | Datatype.Bool), _ ->
            false)

let cov env point =
  match env.Eval.coverage with
  | None -> ()
  | Some c -> Coverage.hit c point

(* Try to derive a probe/range path for one conjunct against one index.
   Only single-column indexes are probed: the b-tree compares full key
   tuples, so a 1-element probe key cannot address a multi-column index
   (multi-column indexes are used by skip-scans and partial scans). *)
let conjunct_path env table (ix : Storage.Index.t) conj =
  if List.length ix.Storage.Index.definition <> 1 then None
  else
  match leading_column ix with
  | None -> None
  | Some col -> (
      (* an index probe is valid only when the comparison collation equals
         the index key collation *)
      let coll_ok other_side =
        let coll = Eval.comparison_collation env (A.col col) other_side in
        Collation.equal coll (index_collation ix)
      in
      match conj with
      | A.Binary (A.Eq, a, b) when is_column_ref col a -> (
          match const_value env b with
          | Some v
            when (not (Value.is_null v))
                 && coll_ok b
                 && probe_class_ok env table col v ->
              Some (Index_eq { index = ix; key = [| probe_value env table col v |] })
          | _ -> None)
      | A.Binary (A.Eq, a, b) when is_column_ref col b -> (
          match const_value env a with
          | Some v
            when (not (Value.is_null v))
                 && coll_ok a
                 && probe_class_ok env table col v ->
              Some (Index_eq { index = ix; key = [| probe_value env table col v |] })
          | _ -> None)
      | A.Binary (((A.Lt | A.Le | A.Gt | A.Ge) as op), a, b)
        when is_column_ref col a -> (
          match const_value env b with
          | Some v
            when (not (Value.is_null v))
                 && coll_ok b
                 && probe_class_ok env table col v -> (
              let v = probe_value env table col v in
              let desc =
                match ix.Storage.Index.definition with
                | ic :: _ -> ic.A.ic_desc
                | [] -> false
              in
              let strict_lo_bug =
                desc
                && Dialect.equal env.Eval.dialect Dialect.Sqlite_like
                && Bug.on env.Eval.bugs Bug.Sq_desc_index_range
              in
              if desc then cov env "plan.desc_index";
              match op with
              | A.Gt ->
                  if strict_lo_bug then
                    (* buggy: strict lower bound over a DESC index yields
                       an empty candidate set *)
                    Some
                      (Index_range
                         { index = ix; lo = Some (v, false); hi = Some (v, false) })
                  else Some (Index_range { index = ix; lo = Some (v, false); hi = None })
              | A.Ge -> Some (Index_range { index = ix; lo = Some (v, true); hi = None })
              | A.Lt -> Some (Index_range { index = ix; lo = None; hi = Some (v, false) })
              | A.Le -> Some (Index_range { index = ix; lo = None; hi = Some (v, true) })
              | _ -> None)
          | _ -> None)
      | A.Binary (((A.Lt | A.Le | A.Gt | A.Ge) as op), a, b)
        when is_column_ref col b -> (
          (* mirrored orientation: lit OP col *)
          match const_value env a with
          | Some v
            when (not (Value.is_null v))
                 && coll_ok a
                 && probe_class_ok env table col v -> (
              let v = probe_value env table col v in
              let desc =
                match ix.Storage.Index.definition with
                | ic :: _ -> ic.A.ic_desc
                | [] -> false
              in
              let strict_lo_bug =
                desc
                && Dialect.equal env.Eval.dialect Dialect.Sqlite_like
                && Bug.on env.Eval.bugs Bug.Sq_desc_index_range
              in
              if desc then cov env "plan.desc_index";
              match op with
              | A.Lt ->
                  (* lit < col ⇔ col > lit *)
                  if strict_lo_bug then
                    Some
                      (Index_range
                         { index = ix; lo = Some (v, false); hi = Some (v, false) })
                  else
                    Some (Index_range { index = ix; lo = Some (v, false); hi = None })
              | A.Le -> Some (Index_range { index = ix; lo = Some (v, true); hi = None })
              | A.Gt -> Some (Index_range { index = ix; lo = None; hi = Some (v, false) })
              | A.Ge -> Some (Index_range { index = ix; lo = None; hi = Some (v, true) })
              | _ -> None)
          | _ -> None)
      | A.Like { negated = false; arg; pattern = A.Lit (Value.Text pat); escape = None }
        when is_column_ref col arg -> (
          let case_sensitive =
            match env.Eval.dialect with
            | Dialect.Postgres_like -> true
            | Dialect.Mysql_like -> false
            | Dialect.Sqlite_like -> env.Eval.case_sensitive_like
          in
          let compatible =
            (case_sensitive && Collation.equal (index_collation ix) Collation.Binary)
            || ((not case_sensitive)
               && Collation.equal (index_collation ix) Collation.Nocase)
          in
          let prefix = Like_matcher.literal_prefix pat in
          if
            compatible
            && String.length prefix > 0
            && probe_class_ok env table col (Value.Text prefix)
          then Some (Index_like_prefix { index = ix; prefix })
          else None)
      | _ -> None)

(* A skip-scan candidate: a multi-column index whose later column is
   constrained by an equality conjunct (the Listing 6 setting). *)
let skip_scan_applicable cs (ix : Storage.Index.t) =
  List.length ix.Storage.Index.definition >= 2
  &&
  let later_cols =
    List.filteri (fun i _ -> i > 0) ix.Storage.Index.definition
    |> List.filter_map (fun ic ->
           match ic.A.ic_expr with
           | A.Col { column; _ } -> Some column
           | _ -> None)
  in
  List.exists
    (fun conj ->
      match conj with
      | A.Binary (A.Eq, a, b) ->
          List.exists (fun c -> is_column_ref c a || is_column_ref c b) later_cols
      | _ -> false)
    cs

(* usable indexes under a WHERE conjunction: total indexes always;
   partial indexes only when the predicate is implied *)
let usable_indexes env indexes cs =
  List.filter
    (fun ix ->
      match ix.Storage.Index.where with
      | None -> true
      | Some pred -> implies_predicate env ~where:cs ~predicate:pred)
    indexes

let choose env catalog (table : Storage.Schema.table) ~where =
  let indexes =
    Storage.Catalog.indexes_on catalog table.Storage.Schema.table_name
  in
  (* a parent table's indexes do not cover postgres-inherited child rows:
     inheritance scans always go through the full append scan *)
  if Storage.Catalog.children_of catalog table.Storage.Schema.table_name <> []
  then Full_scan
  else
  match where with
  | None -> Full_scan
  | Some w -> (
      let cs = conjuncts w in
      let usable = usable_indexes env indexes cs in
      (* 0. after ANALYZE the statistics make a multi-column index look
         cheap: a skip-scan is preferred when a later index column is
         constrained (the Listing 6 setting) *)
      let skip_scan_of () =
        if not catalog.Storage.Catalog.analyzed then None
        else List.find_opt (skip_scan_applicable cs) usable
      in
      match skip_scan_of () with
      | Some ix ->
          cov env "plan.skip_scan";
          Skip_scan { index = ix }
      | None ->
      (* 1. probe/range on a conjunct *)
      let probe =
        List.fold_left
          (fun acc ix ->
            match acc with
            | Some _ -> acc
            | None ->
                List.fold_left
                  (fun acc conj ->
                    match acc with
                    | Some _ -> acc
                    | None -> conjunct_path env table ix conj)
                  None cs)
          None usable
      in
      match probe with
      | Some p ->
          (match p with
          | Index_eq _ -> cov env "plan.index_eq"
          | Index_range _ -> cov env "plan.index_range"
          | Index_like_prefix _ -> cov env "plan.index_like_prefix"
          | _ -> ());
          p
      | None -> (
          (* 2. OR of two indexable equalities *)
          let or_path =
            let or_conjunct =
              List.find_opt
                (function A.Binary (A.Or, _, _) -> true | _ -> false)
                cs
            in
            match or_conjunct with
            | Some (A.Binary (A.Or, a, b)) -> (
                let pa =
                  List.fold_left
                    (fun acc ix ->
                      match acc with
                      | Some _ -> acc
                      | None -> conjunct_path env table ix a)
                    None usable
                in
                let pb =
                  List.fold_left
                    (fun acc ix ->
                      match acc with
                      | Some _ -> acc
                      | None -> conjunct_path env table ix b)
                    None usable
                in
                match (pa, pb) with
                | Some x, Some y ->
                    cov env "plan.or_union";
                    Some (Or_union [ x; y ])
                | _ -> None)
            | Some _ | None -> None
          in
          match or_path with
          | Some p -> p
          | None -> (
              (* 3. scan a usable partial index covering the predicate *)
              let partial =
                List.find_opt (fun ix -> ix.Storage.Index.where <> None) usable
              in
              match partial with
              | Some ix ->
                  cov env "plan.partial_index";
                  Partial_index_scan { index = ix }
              | None ->
                  cov env "plan.full_scan";
                  Full_scan)))

(* Enumerate every access path the engine could soundly take for [table]
   under [where].  The list always starts with [Full_scan]; the
   distinctive paths (skip scans, OR unions) come before plain probes so
   a bounded fan-out keeps the plans most likely to disagree.  Unlike
   [choose], the skip-scan candidate is not gated on ANALYZE: the
   executor re-applies the full WHERE to every candidate row and indexes
   store NULL keys, so any index read is a sound superset of the
   matching rows regardless of statistics. *)
let enumerate env catalog (table : Storage.Schema.table) ~where =
  let indexes =
    Storage.Catalog.indexes_on catalog table.Storage.Schema.table_name
  in
  if Storage.Catalog.children_of catalog table.Storage.Schema.table_name <> []
  then [ Full_scan ]
  else
    match where with
    | None -> [ Full_scan ]
    | Some w ->
        let cs = conjuncts w in
        let usable = usable_indexes env indexes cs in
        let skips =
          List.filter (skip_scan_applicable cs) usable
          |> List.map (fun ix -> Skip_scan { index = ix })
        in
        let first_path c =
          List.fold_left
            (fun acc ix ->
              match acc with Some _ -> acc | None -> conjunct_path env table ix c)
            None usable
        in
        let ors =
          List.filter_map
            (function
              | A.Binary (A.Or, a, b) -> (
                  match (first_path a, first_path b) with
                  | Some x, Some y -> Some (Or_union [ x; y ])
                  | _ -> None)
              | _ -> None)
            cs
        in
        let probes =
          List.concat_map
            (fun ix -> List.filter_map (conjunct_path env table ix) cs)
            usable
        in
        let partials =
          List.filter (fun ix -> ix.Storage.Index.where <> None) usable
          |> List.map (fun ix -> Partial_index_scan { index = ix })
        in
        let seen = Hashtbl.create 8 in
        List.filter
          (fun p ->
            let s = signature p in
            if Hashtbl.mem seen s then false
            else (
              Hashtbl.add seen s ();
              true))
          (Full_scan :: (skips @ ors @ probes @ partials))
