(** A database session: the engine's public statement API.

    Each session owns a catalog (one "database file"), an enabled-bug set,
    run-time options and a deterministic RNG (for the one injected
    nondeterministic defect, paper Listing 3).  PQS workers run one session
    per thread on a distinct database, as the paper describes
    (Section 3.4). *)

open Sqlval

type t

type exec_result =
  | Rows of Executor.result_set
  | Affected of int
  | Done

val pp_exec_result : Format.formatter -> exec_result -> unit

val create :
  ?seed:int ->
  ?bugs:Bug.set ->
  ?coverage:Coverage.t ->
  ?telemetry:Telemetry.t ->
  ?recorder:Trace.t ->
  ?backend:Exec_backend.kind ->
  Dialect.t ->
  t
(** [recorder] (default {!Trace.noop}) is the flight recorder threaded
    into the executor context: the engine feeds it planner access-path
    decisions and per-operator annotations while the caller (the PQS
    runner) records statements, pivots and expressions on the same
    ring.

    [backend] (default {!Exec_backend.Interpreted}) selects the
    execution backend every query in this session runs under —
    [Select_stmt], {!query}, {!query_forced} and [EXPLAIN ANALYZE] all
    route through it. *)

val dialect : t -> Dialect.t

(** The execution backend this session was created with. *)
val backend : t -> Exec_backend.kind
val catalog : t -> Storage.Catalog.t
val bugs : t -> Bug.set
val options : t -> Options.t
val ctx : t -> Executor.ctx

(** Number of statements executed so far (throughput accounting). *)
val statements_executed : t -> int

(** Execute one statement.  Logic errors come back as [Error]; the
    simulated SEGFAULT propagates as the {!Errors.Crash} exception, like a
    process crash would.  With an enabled telemetry registry each
    statement is timed into [minidb_phase_seconds{phase="execute"}] and
    [minidb_statement_seconds{kind=...}] (crashing statements included). *)
val execute : t -> Sqlast.Ast.stmt -> (exec_result, Errors.t) result

(** Convenience: run a query and expect rows. *)
val query : t -> Sqlast.Ast.query -> (Executor.result_set, Errors.t) result

(** Run a query with {!Executor.forced} plan overrides, bypassing
    {!execute}: plan-diff oracle re-runs neither count as campaign
    statements, nor touch the per-statement telemetry, nor record
    coverage hits — forced re-execution is campaign-neutral by
    construction.  [Errors.Crash] propagates like it does from
    {!execute}. *)
val query_forced :
  t ->
  force:Executor.forced ->
  Sqlast.Ast.query ->
  (Executor.result_set, Errors.t) result

(** Static plan lines for a query ({!Explain.query_lines}) without
    executing it or touching the per-statement counters; used when a repro
    bundle wants the annotated plan of the failing query.  [?force]
    renders the plan under those overrides, each forced scan annotated
    ["(forced)"]. *)
val plan_lines : ?force:Executor.forced -> t -> Sqlast.Ast.query -> string list

(** Table names in creation order (the introspection PQS uses instead of
    tracking state itself, paper Section 3.4). *)
val table_names : t -> string list

val view_names : t -> string list
