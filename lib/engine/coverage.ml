type t = {
  counts : (string, int) Hashtbl.t;
  mutable extra : int; (* points hit but not statically declared *)
}

(* The static universe enumerates the engine's feature points.  Dialect-
   specific points are prefixed so that a run against one dialect cannot
   reach another dialect's points, mirroring the per-DBMS coverage gap the
   paper reports (user management, replication etc. that SQLancer does not
   touch are modeled by the maintenance/option/admin groups below). *)
let static_universe =
  let binops =
    [ "eq"; "neq"; "lt"; "le"; "gt"; "ge"; "nullsafe_eq"; "and"; "or"; "add";
      "sub"; "mul"; "div"; "rem"; "concat"; "bit_and"; "bit_or"; "shl"; "shr" ]
  in
  let unops = [ "not"; "neg"; "pos"; "bit_not" ] in
  let funcs =
    [ "abs"; "length"; "lower"; "upper"; "coalesce"; "ifnull"; "nullif";
      "typeof"; "trim"; "ltrim"; "rtrim"; "substr"; "replace"; "instr";
      "hex"; "round"; "sign"; "least"; "greatest"; "quote" ]
  in
  let preds = [ "is"; "between"; "in"; "like"; "glob"; "case"; "cast"; "collate" ] in
  let aggs = [ "count"; "count_star"; "sum"; "avg"; "min"; "max"; "total" ] in
  let planner =
    [ "full_scan"; "index_eq"; "index_range"; "index_like_prefix";
      "partial_index"; "skip_scan"; "desc_index"; "or_union" ]
  in
  let exec =
    [ "distinct"; "order_by"; "limit"; "group_by"; "having"; "join_inner";
      "join_left"; "join_cross"; "view_expand"; "compound_union";
      "compound_intersect"; "compound_except"; "values"; "subquery" ]
  in
  let ddl =
    [ "create_table"; "drop_table"; "create_index"; "drop_index";
      "create_view"; "drop_view"; "alter_rename_table"; "alter_rename_column";
      "alter_add_column"; "alter_drop_column"; "without_rowid"; "inherits";
      "engine_memory"; "engine_csv"; "engine_myisam"; "unique_index";
      "partial_index_def"; "expr_index"; "collate_index"; "serial" ]
  in
  let dml =
    [ "insert"; "insert_ignore"; "insert_replace"; "update"; "update_ignore";
      "update_replace"; "delete"; "default_value"; "not_null_check";
      "unique_check"; "check_constraint" ]
  in
  let maintenance =
    [ "vacuum"; "vacuum_full"; "reindex"; "analyze"; "check_table";
      "repair_table"; "create_statistics"; "discard"; "pragma"; "set_option";
      "begin"; "commit"; "rollback" ]
  in
  (* Features the tool never exercises, charged to the denominator the way
     untested DBMS subsystems depress the paper's coverage numbers. *)
  let untested =
    [ "admin.user_management"; "admin.replication"; "admin.backup";
      "admin.console"; "admin.prepared_statements"; "admin.savepoints";
      "admin.triggers"; "admin.foreign_keys_enforce"; "admin.window_functions";
      "admin.cte"; "admin.subquery_correlated"; "admin.json"; "admin.arrays";
      "admin.fulltext"; "admin.partitioning"; "admin.charsets";
      "admin.timezones"; "admin.explain"; "admin.locking"; "admin.vacuum_auto" ]
  in
  let group prefix names = List.map (fun n -> prefix ^ "." ^ n) names in
  group "binop" binops @ group "unop" unops @ group "func" funcs
  @ group "pred" preds @ group "agg" aggs @ group "plan" planner
  @ group "exec" exec @ group "ddl" ddl @ group "dml" dml
  @ group "maint" maintenance @ untested

let create () =
  let counts = Hashtbl.create 256 in
  List.iter (fun p -> Hashtbl.replace counts p 0) static_universe;
  { counts; extra = 0 }

let hit t point =
  match Hashtbl.find_opt t.counts point with
  | Some n -> Hashtbl.replace t.counts point (n + 1)
  | None ->
      Hashtbl.replace t.counts point 1;
      t.extra <- t.extra + 1

let hit_count t point = Option.value ~default:0 (Hashtbl.find_opt t.counts point)

let points_hit t =
  Hashtbl.fold (fun _ n acc -> if n > 0 then acc + 1 else acc) t.counts 0

let universe_size t = Hashtbl.length t.counts

let fraction t =
  if universe_size t = 0 then 0.0
  else float_of_int (points_hit t) /. float_of_int (universe_size t)

let reset t =
  Hashtbl.reset t.counts;
  List.iter (fun p -> Hashtbl.replace t.counts p 0) static_universe;
  t.extra <- 0

let merge_into ~dst ~src =
  Hashtbl.iter
    (fun p n ->
      match Hashtbl.find_opt dst.counts p with
      | Some m -> Hashtbl.replace dst.counts p (m + n)
      | None ->
          (* a point [src] saw that [dst] never did is necessarily outside
             the static universe (create pre-seeds every static point), so
             it must count as an extra — silently adding it without the
             bump made [universe_size]/[fraction] disagree between a
             directly-hit instrument and a merged one *)
          Hashtbl.replace dst.counts p n;
          dst.extra <- dst.extra + 1)
    src.counts

let points t =
  Hashtbl.fold (fun p n acc -> (p, n) :: acc) t.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let union a b =
  let t = create () in
  merge_into ~dst:t ~src:a;
  merge_into ~dst:t ~src:b;
  t
