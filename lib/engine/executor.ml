open Sqlval
module A = Sqlast.Ast

let ( let* ) = Result.bind

(* handles for the per-query profiling counters, resolved once per
   session: these fire several times per statement, so the registry
   lookup (a string-keyed hash per inc) would dominate the telemetry
   overhead budget if paid on every bump *)
type profile = {
  p_btree_nodes : Telemetry.counter_handle;
  p_btree_entries : Telemetry.counter_handle;
  p_index_rows : Telemetry.counter_handle;
  p_heap_rows : Telemetry.counter_handle;
  p_scan_rows : Telemetry.counter_handle;
  p_plan : Telemetry.counter_handle array; (* indexed by [plan_index] *)
}

(* the planner's access paths form a closed set, so the per-path series of
   minidb_plan_choices_total can be pre-resolved like the rest *)
let plan_index = function
  | Planner.Full_scan -> 0
  | Planner.Index_eq _ -> 1
  | Planner.Index_range _ -> 2
  | Planner.Index_like_prefix _ -> 3
  | Planner.Partial_index_scan _ -> 4
  | Planner.Skip_scan _ -> 5
  | Planner.Or_union _ -> 6

let plan_labels =
  [|
    "full_scan"; "index_eq"; "index_range"; "index_like_prefix";
    "partial_index"; "skip_scan"; "or_union";
  |]

let make_profile tele =
  {
    p_btree_nodes = Telemetry.counter_handle tele "minidb_btree_node_visits_total";
    p_btree_entries =
      Telemetry.counter_handle tele "minidb_btree_entries_scanned_total";
    p_index_rows = Telemetry.counter_handle tele "minidb_index_rows_total";
    p_heap_rows = Telemetry.counter_handle tele "minidb_heap_rows_scanned_total";
    p_scan_rows = Telemetry.counter_handle tele "minidb_rows_scanned_total";
    p_plan =
      Array.map
        (fun label ->
          Telemetry.counter_handle tele
            ~labels:[ ("path", label) ]
            "minidb_plan_choices_total")
        plan_labels;
  }

(* A forced access path for one scan site.  Sites are keyed by the
   lowercase effective alias, the lowercase base-table name AND the scan's
   WHERE clause: a path derived for one (schema, where) pair is only sound
   at a scan with the same schema and the same residual filter, so an
   identical key is both necessary and sufficient (a view-internal scan of
   the same table has a different WHERE and is never matched). *)
type forced_site = {
  fs_alias : string;
  fs_table : string;
  fs_where : A.expr option;
  fs_path : Planner.path;
}

type forced = {
  f_sites : forced_site list;
  f_swap_join : bool;
      (* iterate two-table inner/cross joins right-major; binding order
         (and therefore projection) is unchanged, only scan order moves *)
}

let no_force = { f_sites = []; f_swap_join = false }

let show_forced f =
  let sites =
    List.map (fun s -> s.fs_alias ^ "=" ^ Planner.show_path s.fs_path) f.f_sites
  in
  let sites = if f.f_swap_join then sites @ [ "swap-join" ] else sites in
  String.concat ";" sites

type ctx = {
  dialect : Dialect.t;
  bugs : Bug.set;
  options : Options.t;
  coverage : Coverage.t option;
  catalog : Storage.Catalog.t;
  telemetry : Telemetry.t;
  profile : profile;
  recorder : Trace.t;
      (* flight recorder: planner decisions and per-operator annotations
         stream into it when enabled (runner rounds, EXPLAIN ANALYZE) *)
  force : forced option;
      (* plan-diff oracle: override the planner at matching scan sites *)
}

let forced_path_for ctx ~alias ~table ~where =
  match ctx.force with
  | None -> None
  | Some f ->
      let alias = String.lowercase_ascii alias
      and table = String.lowercase_ascii table in
      List.find_map
        (fun s ->
          if
            String.equal s.fs_alias alias
            && String.equal s.fs_table table
            && Option.equal A.equal_expr s.fs_where where
          then Some s.fs_path
          else None)
        f.f_sites

let swap_join_forced ctx =
  match ctx.force with Some f -> f.f_swap_join | None -> false

(* ------------------------------------------------------------------ *)
(* Flight-recorder operator annotations.  All call sites are guarded on
   [tracing ctx] so the disabled path costs one branch and never calls
   the clock or counts rows. *)

let tracing ctx = Trace.enabled ctx.recorder
let op_clock ctx = if tracing ctx then Telemetry.Clock.now_ns_int () else 0

let op_event ctx ~op ?(detail = "") ~rows_in ~rows_out ?(batches = 0)
    ?(btree = (0, 0)) ~t0 () =
  if tracing ctx then begin
    let now = Telemetry.Clock.now_ns_int () in
    Trace.record_at ctx.recorder ~now_ns:now
      (Trace.Event.Op
         {
           op;
           detail;
           rows_in;
           rows_out;
           batches;
           btree_nodes = fst btree;
           btree_entries = snd btree;
           dur_ns = now - t0;
         })
  end

(* indexes a path reads, for charging B-tree visits to the scan operator *)
let rec path_indexes = function
  | Planner.Full_scan -> []
  | Planner.Index_eq { index; _ }
  | Planner.Index_range { index; _ }
  | Planner.Index_like_prefix { index; _ }
  | Planner.Partial_index_scan { index }
  | Planner.Skip_scan { index } ->
      [ index ]
  | Planner.Or_union paths -> List.concat_map path_indexes paths

let path_btree_profile path =
  List.fold_left
    (fun (n, e) ix ->
      let n', e' = Storage.Index.tree_profile ix in
      (n + n', e + e'))
    (0, 0) (path_indexes path)

type result_set = { rs_columns : string list; rs_rows : Value.t array list }

let pp_result_set fmt rs =
  Format.fprintf fmt "%s@." (String.concat "|" rs.rs_columns);
  List.iter
    (fun row ->
      Format.fprintf fmt "%s@."
        (String.concat "|" (List.map Value.to_display (Array.to_list row))))
    rs.rs_rows

let result_contains rs row =
  let row = Array.of_list row in
  List.exists
    (fun r ->
      Array.length r = Array.length row && Array.for_all2 Value.equal r row)
    rs.rs_rows

let cov ctx point =
  match ctx.coverage with None -> () | Some c -> Coverage.hit c point

let bug ctx b = Bug.on ctx.bugs b

(* Run [f] and charge the B-tree read work it caused on [index] (scraped
   as deltas of the tree's cumulative profile) to the engine counters. *)
let profile_index ctx index f =
  if not (Telemetry.enabled ctx.telemetry) then f ()
  else begin
    let n0, e0 = Storage.Index.tree_profile index in
    let r = f () in
    let n1, e1 = Storage.Index.tree_profile index in
    Telemetry.inc_handle ~by:(n1 - n0) ctx.profile.p_btree_nodes;
    Telemetry.inc_handle ~by:(e1 - e0) ctx.profile.p_btree_entries;
    r
  end

let count_index_rows ctx rowids =
  if Telemetry.enabled ctx.telemetry then
    Telemetry.inc_handle ~by:(List.length rowids) ctx.profile.p_index_rows;
  rowids

(* ------------------------------------------------------------------ *)
(* Bindings                                                            *)

type binding = {
  b_alias : string; (* lowercase alias (or table name) *)
  b_columns : (string * Datatype.t * Collation.t) array;
  b_values : Value.t array;
}

let binding_of_table (schema : Storage.Schema.table) ~alias values =
  {
    b_alias = String.lowercase_ascii alias;
    b_columns =
      Array.map
        (fun (c : Storage.Schema.column) ->
          (String.lowercase_ascii c.Storage.Schema.name, c.ty, c.collation))
        schema.Storage.Schema.columns;
    b_values = values;
  }

let resolve_in (bindings : binding list) ~table ~column :
    (Eval.resolved, Errors.t) result =
  let col = String.lowercase_ascii column in
  let lookup b =
    let rec go i =
      if i >= Array.length b.b_columns then None
      else
        let name, dt, coll = b.b_columns.(i) in
        if name = col then
          Some { Eval.value = b.b_values.(i); datatype = dt; collation = coll }
        else go (i + 1)
    in
    go 0
  in
  match table with
  | Some t -> (
      let t = String.lowercase_ascii t in
      match List.find_opt (fun b -> b.b_alias = t) bindings with
      | None -> Error (Errors.makef Errors.No_such_table "no such table: %s" t)
      | Some b -> (
          match lookup b with
          | Some r -> Ok r
          | None ->
              Error
                (Errors.makef Errors.No_such_column "no such column: %s.%s" t
                   column)))
  | None -> (
      let hits = List.filter_map lookup bindings in
      match hits with
      | [ r ] -> Ok r
      | [] ->
          Error (Errors.makef Errors.No_such_column "no such column: %s" column)
      | _ :: _ ->
          Error
            (Errors.makef Errors.Ambiguous_column "ambiguous column name: %s"
               column))

let eval_env ctx : Eval.env =
  {
    Eval.dialect = ctx.dialect;
    bugs = ctx.bugs;
    case_sensitive_like = Options.case_sensitive_like ctx.options;
    coverage = ctx.coverage;
    resolve = (Eval.const_env ctx.dialect).Eval.resolve;
  }

let env_for ctx bindings : Eval.env =
  { (eval_env ctx) with Eval.resolve = resolve_in bindings }

(* env whose resolver sees the table's columns with NULL values: the
   planner needs collation/affinity metadata, not row values *)
let planner_env ctx (schema : Storage.Schema.table) ~alias =
  let null_binding =
    binding_of_table schema ~alias
      (Array.map
         (fun (_ : Storage.Schema.column) -> Value.Null)
         schema.Storage.Schema.columns)
  in
  env_for ctx [ null_binding ]

(* ------------------------------------------------------------------ *)
(* Table scans                                                         *)

(* Project a child row onto the parent's columns by column name. *)
let project_child (parent : Storage.Schema.table) (child : Storage.Schema.table)
    (row : Storage.Row.t) : Storage.Row.t =
  let values =
    Array.map
      (fun (pc : Storage.Schema.column) ->
        match Storage.Schema.find_column child pc.Storage.Schema.name with
        | Some (i, _) -> Storage.Row.get row i
        | None -> Value.Null)
      parent.Storage.Schema.columns
  in
  Storage.Row.make ~rowid:row.Storage.Row.rowid values

let rec scan_table ctx (ts : Storage.Catalog.table_state) :
    (Storage.Row.t * Storage.Schema.table) list =
  let own =
    List.map (fun r -> (r, ts.Storage.Catalog.schema)) (Storage.Heap.to_list ts.Storage.Catalog.heap)
  in
  if Telemetry.enabled ctx.telemetry then
    Telemetry.inc_handle ~by:(List.length own) ctx.profile.p_heap_rows;
  let parent = ts.Storage.Catalog.schema in
  let children =
    Storage.Catalog.children_of ctx.catalog parent.Storage.Schema.table_name
  in
  let child_rows =
    List.concat_map
      (fun child_name ->
        match Storage.Catalog.find_table ctx.catalog child_name with
        | None -> []
        | Some child_ts ->
            scan_table ctx child_ts
            |> List.map (fun (row, sch) ->
                   (project_child parent sch row, parent)))
      children
  in
  own @ child_rows

(* The implicit unique index over the primary-key columns, if any: for
   WITHOUT ROWID tables it *is* the table storage, so full scans read
   through it (which is what makes the Listing 4 defect observable). *)
let pk_index_of ctx (schema : Storage.Schema.table) =
  if schema.Storage.Schema.primary_key = [] then None
  else
    Storage.Catalog.indexes_on ctx.catalog schema.Storage.Schema.table_name
    |> List.find_opt (fun ix ->
           ix.Storage.Index.unique
           && List.map
                (fun (ic : A.indexed_column) ->
                  match ic.A.ic_expr with
                  | A.Col { column; _ } -> String.lowercase_ascii column
                  | _ -> "?")
                ix.Storage.Index.definition
              = List.map String.lowercase_ascii
                  schema.Storage.Schema.primary_key)

(* Candidate rowids for a single-table WHERE via the planner; [None] means
   scan everything. *)
let rec path_rowids ?(distinct = false) ctx (path : Planner.path) :
    int64 list option =
  ignore distinct;
  match path with
  | Planner.Full_scan -> None
  | Planner.Index_eq { index; key } ->
      Some
        (count_index_rows ctx
           (profile_index ctx index (fun () ->
                Storage.Index.find_rowids index key)))
  | Planner.Index_range { index; lo; hi } ->
      let rowids =
        profile_index ctx index (fun () ->
            let acc = ref [] in
            let wrap = Option.map (fun (v, incl) -> ([| v |], incl)) in
            Storage.Index.iter_range ?lo:(wrap lo) ?hi:(wrap hi)
              (fun _ rowid -> acc := rowid :: !acc)
              index;
            List.rev !acc)
      in
      Some (count_index_rows ctx rowids)
  | Planner.Index_like_prefix { index; prefix } ->
      let rowids =
        profile_index ctx index (fun () ->
            let acc = ref [] in
            Storage.Index.iter_range
              ~lo:([| Value.Text prefix |], true)
              ~hi:([| Value.Text (prefix ^ "\255") |], true)
              (fun _ rowid -> acc := rowid :: !acc)
              index;
            List.rev !acc)
      in
      Some (count_index_rows ctx rowids)
  | Planner.Partial_index_scan { index } ->
      let rowids =
        profile_index ctx index (fun () ->
            let acc = ref [] in
            Storage.Index.iter (fun _ rowid -> acc := rowid :: !acc) index;
            List.rev !acc)
      in
      Some (count_index_rows ctx rowids)
  | Planner.Skip_scan { index } ->
      Some
        (count_index_rows ctx
           (profile_index ctx index (fun () ->
                skip_scan_rowids ~distinct ctx index)))
  | Planner.Or_union paths ->
      let first_non_empty = ref false in
      let rowids =
        List.concat_map
          (fun p ->
            if
              !first_non_empty
              && Dialect.equal ctx.dialect Dialect.Sqlite_like
              && bug ctx Bug.Sq_or_index_dedup
            then [] (* buggy: later branches skipped once one matched *)
            else
              match path_rowids ~distinct ctx p with
              | Some ids ->
                  if ids <> [] then first_non_empty := true;
                  ids
              | None -> [])
          paths
      in
      Some (List.sort_uniq Int64.compare rowids)

and skip_scan_rowids ?(distinct = false) ctx (index : Storage.Index.t) =
  let acc = ref [] in
  if
    distinct
    && Dialect.equal ctx.dialect Dialect.Sqlite_like
    && bug ctx Bug.Sq_skip_scan_distinct
  then begin
    (* buggy: the skip-scan enumerates distinct leading-key values and the
       DISTINCT flag makes it emit only one row per leading value *)
    let seen = Hashtbl.create 16 in
    Storage.Index.iter
      (fun key rowid ->
        let k = if Array.length key = 0 then "" else Value.show key.(0) in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.replace seen k ();
          acc := rowid :: !acc
        end)
      index
  end
  else Storage.Index.iter (fun _ rowid -> acc := rowid :: !acc) index;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* FROM evaluation                                                     *)

type from_ctx = {
  in_join : bool; (* more than one base table in the query *)
  cond_has_cast : bool;
  cond_has_ifnull : bool;
  distinct : bool; (* the query is SELECT DISTINCT (Listing 6 trigger) *)
}

let expr_has f e = A.fold_expr (fun acc x -> acc || f x) false e

let has_cast = expr_has (function A.Cast _ -> true | _ -> false)
let has_ifnull = expr_has (function A.Func (A.F_ifnull, _) -> true | _ -> false)

type scanned = {
  tuples : binding list list;
  used_skip_scan : bool;
}

let view_columns (rs : result_set) = rs.rs_columns

(* Scan one base table under [where]: injected planner/index bug gates,
   access-path choice (with forced-plan override), rowid fetch, and the
   SCAN flight-recorder annotation.  Shared by the interpreted executor
   below and the compiled backend (Compile), which passes [block_size]
   so the SCAN operator reports its batch count. *)
let scan_rows ctx fctx ~where ~table:name ~alias:alias_name ?block_size
    (ts : Storage.Catalog.table_state) :
    ((Storage.Row.t * Storage.Schema.table) list * bool, Errors.t) result =
  let schema = ts.Storage.Catalog.schema in
          let table_indexes =
            Storage.Catalog.indexes_on ctx.catalog
              schema.Storage.Schema.table_name
          in
          (* postgres Listing 16 class: extended statistics + an
             expression/partial index break planning with an internal
             error (or, for the duplicate report, a crash) *)
          let stats_trigger =
            Dialect.equal ctx.dialect Dialect.Postgres_like
            && Storage.Catalog.statistics_on ctx.catalog
                 schema.Storage.Schema.table_name
               <> []
            && List.exists
                 (fun ix ->
                   Storage.Index.is_expression_index ix
                   || Storage.Index.is_partial ix)
                 table_indexes
            && where <> None
          in
          let* () =
            if stats_trigger && bug ctx Bug.Pg_dup_bitmapset_crash then
              raise
                (Errors.Crash
                   "segfault: negative bitmapset member in planner")
            else if stats_trigger && bug ctx Bug.Pg_stats_expr_index_bitmapset
            then
              Error
                (Errors.make Errors.Internal_error
                   "negative bitmapset member not allowed")
            else Ok ()
          in
          (* postgres Listing 17 class: an index over rows whose NULLs
             were overwritten by UPDATE trips an internal error on
             ordered comparisons *)
          let null_taint_trigger =
            Dialect.equal ctx.dialect Dialect.Postgres_like
            && schema.Storage.Schema.tainted_null_update
            && table_indexes <> []
            && (match where with
               | Some w ->
                   expr_has
                     (function
                       | A.Binary ((A.Lt | A.Le | A.Gt | A.Ge), _, _) -> true
                       | _ -> false)
                     w
               | None -> false)
          in
          let* () =
            if
              null_taint_trigger
              && (bug ctx Bug.Pg_index_null_value_error
                 || bug ctx Bug.Pg_dup_index_null_error)
            then
              Error
                (Errors.makef Errors.Internal_error
                   "found unexpected null value in index \"%s\""
                   (match table_indexes with
                   | ix :: _ -> ix.Storage.Index.index_name
                   | [] -> "?"))
            else Ok ()
          in
          (* mysql Listing 11 class: MEMORY-engine rows vanish from joins
             whose condition contains a CAST (or IFNULL for the duplicate
             report) *)
          let memory_bug =
            fctx.in_join
            && Dialect.equal ctx.dialect Dialect.Mysql_like
            && schema.Storage.Schema.engine = Some A.E_memory
            && ((bug ctx Bug.My_memory_join_cast && fctx.cond_has_cast)
               || (bug ctx Bug.My_dup_memory_join && fctx.cond_has_ifnull))
          in
          if memory_bug then Ok ([], false)
          else begin
            (match schema.Storage.Schema.engine with
            | Some A.E_memory -> cov ctx "ddl.engine_memory"
            | Some A.E_csv -> cov ctx "ddl.engine_csv"
            | Some A.E_myisam -> cov ctx "ddl.engine_myisam"
            | Some A.E_innodb | None -> ());
            (* planner only for single-table queries; its env resolves the
               table's columns (values irrelevant) so collation/affinity
               checks see the schema *)
            let forced =
              if fctx.in_join then None
              else forced_path_for ctx ~alias:alias_name ~table:name ~where
            in
            let path =
              if fctx.in_join then Planner.Full_scan
              else
                let path =
                  match forced with
                  | Some p -> p
                  | None ->
                      Telemetry.Span.timed ctx.telemetry Telemetry.Phase.Plan
                        (fun () ->
                          Planner.choose
                            (planner_env ctx schema ~alias:alias_name)
                            ctx.catalog schema ~where)
                in
                Telemetry.inc_handle ctx.profile.p_plan.(plan_index path);
                path
            in
            let used_skip_scan =
              match path with Planner.Skip_scan _ -> true | _ -> false
            in
            let shown_path =
              if tracing ctx then
                Planner.show_path path
                ^ if Option.is_some forced then " (forced)" else ""
              else ""
            in
            if tracing ctx && not fctx.in_join then
              Trace.record ctx.recorder
                (Trace.Event.Plan { table = alias_name; path = shown_path });
            let scan_t0 = op_clock ctx in
            let scan_b0 =
              if tracing ctx then path_btree_profile path else (0, 0)
            in
            let full_scan () =
              match pk_index_of ctx schema with
              | Some pk when schema.Storage.Schema.without_rowid ->
                  (* WITHOUT ROWID: the PK b-tree is the table *)
                  let acc = ref [] in
                  Storage.Index.iter (fun _ rowid -> acc := rowid :: !acc) pk;
                  List.sort Int64.compare !acc
                  |> List.filter_map (fun rowid ->
                         match
                           Storage.Heap.find ts.Storage.Catalog.heap rowid
                         with
                         | Some r -> Some (r, schema)
                         | None -> None)
              | _ -> scan_table ctx ts
            in
            let rows =
              match path_rowids ~distinct:fctx.distinct ctx path with
              | None ->
                  cov ctx "plan.full_scan";
                  let rows = full_scan () in
                  if Telemetry.enabled ctx.telemetry then
                    Telemetry.inc_handle ~by:(List.length rows)
                      ctx.profile.p_scan_rows;
                  rows
              | Some rowids ->
                  List.filter_map
                    (fun rowid ->
                      match Storage.Heap.find ts.Storage.Catalog.heap rowid with
                      | Some r -> Some (r, schema)
                      | None -> None)
                    rowids
            in
            if tracing ctx then begin
              let b1 = path_btree_profile path in
              let n_out = List.length rows in
              let batches =
                match block_size with
                | None -> 0
                | Some bs -> Stdlib.max 1 ((n_out + bs - 1) / bs)
              in
              op_event ctx ~op:"SCAN"
                ~detail:(alias_name ^ " USING " ^ shown_path)
                ~rows_in:(Storage.Heap.row_count ts.Storage.Catalog.heap)
                ~rows_out:n_out ~batches
                ~btree:(fst b1 - fst scan_b0, snd b1 - snd scan_b0)
                ~t0:scan_t0 ()
            end;
            Ok (rows, used_skip_scan)
          end

(* Returns the binding tuples of one FROM item. *)
let rec from_tuples ctx fctx ~where (item : A.from_item) :
    (scanned, Errors.t) result =
  match item with
  | A.F_table { name; alias } -> (
      let alias_name = Option.value ~default:name alias in
      match Storage.Catalog.find_table ctx.catalog name with
      | Some ts ->
          let* rows, used_skip_scan =
            scan_rows ctx fctx ~where ~table:name ~alias:alias_name ts
          in
          let tuples =
            List.map
              (fun (row, sch) ->
                [ binding_of_table sch ~alias:alias_name row.Storage.Row.values ])
              rows
          in
          Ok { tuples; used_skip_scan }
      | None -> (
          match Storage.Catalog.find_view ctx.catalog name with
          | Some v ->
              cov ctx "exec.view_expand";
              let view_t0 = op_clock ctx in
              let* rs = run_query ctx v.Storage.Catalog.view_query in
              let rows =
                (* injected: WHERE pushdown into a DISTINCT view drops the
                   last row *)
                let is_distinct_view =
                  match v.Storage.Catalog.view_query with
                  | A.Q_select s -> s.A.sel_distinct
                  | _ -> false
                in
                if
                  is_distinct_view && where <> None
                  && Dialect.equal ctx.dialect Dialect.Sqlite_like
                  && bug ctx Bug.Sq_view_distinct_pushdown
                then
                  match List.rev rs.rs_rows with
                  | [] -> []
                  | _ :: rest -> List.rev rest
                else rs.rs_rows
              in
              let columns =
                Array.of_list
                  (List.map
                     (fun c ->
                       (String.lowercase_ascii c, Datatype.Any, Collation.Binary))
                     (view_columns rs))
              in
              let tuples =
                List.map
                  (fun row ->
                    [
                      {
                        b_alias = String.lowercase_ascii alias_name;
                        b_columns = columns;
                        b_values = row;
                      };
                    ])
                  rows
              in
              if tracing ctx then
                op_event ctx ~op:"VIEW" ~detail:alias_name
                  ~rows_in:(List.length rs.rs_rows)
                  ~rows_out:(List.length rows) ~t0:view_t0 ();
              Ok { tuples; used_skip_scan = false }
          | None ->
              Error
                (Errors.makef Errors.No_such_table "no such table: %s" name)))
  | A.F_sub { sub; alias } ->
      (* derived table: materialize the subquery; columns are untyped and
         binary-collated, like a view expansion *)
      cov ctx "exec.subquery";
      let sub_t0 = op_clock ctx in
      let* rs = run_query ctx sub in
      let columns =
        Array.of_list
          (List.map
             (fun c ->
               (String.lowercase_ascii c, Datatype.Any, Collation.Binary))
             rs.rs_columns)
      in
      let tuples =
        List.map
          (fun row ->
            [
              {
                b_alias = String.lowercase_ascii alias;
                b_columns = columns;
                b_values = row;
              };
            ])
          rs.rs_rows
      in
      (if tracing ctx then
         let n = List.length rs.rs_rows in
         op_event ctx ~op:"SUBQUERY" ~detail:alias ~rows_in:n ~rows_out:n
           ~t0:sub_t0 ());
      Ok { tuples; used_skip_scan = false }
  | A.F_join { kind; left; right; on } ->
      (match kind with
      | A.Inner -> cov ctx "exec.join_inner"
      | A.Left -> cov ctx "exec.join_left"
      | A.Cross -> cov ctx "exec.join_cross");
      let* l = from_tuples ctx fctx ~where:None left in
      let* r = from_tuples ctx fctx ~where:None right in
      let join_t0 = op_clock ctx in
      (* a NULL-padded binding per table of the right side: taken from the
         first right tuple, or built from the schemas when it is empty *)
      let rec null_shape item =
        match item with
        | A.F_table { name; alias } -> (
            match Storage.Catalog.find_table ctx.catalog name with
            | Some ts ->
                let schema = ts.Storage.Catalog.schema in
                [
                  binding_of_table schema
                    ~alias:(Option.value ~default:name alias)
                    (Array.map
                       (fun (_ : Storage.Schema.column) -> Value.Null)
                       schema.Storage.Schema.columns);
                ]
            | None -> [])
        | A.F_join { left; right; _ } -> null_shape left @ null_shape right
        | A.F_sub _ -> []
      in
      let null_extend tuple =
        match r.tuples with
        | sample :: _ ->
            tuple
            @ List.map
                (fun b ->
                  { b with b_values = Array.map (fun _ -> Value.Null) b.b_values })
                sample
        | [] -> tuple @ null_shape right
      in
      let rec combine acc = function
        | [] -> Ok (List.rev acc)
        | lt :: rest ->
            let rec walk_right acc_r matched = function
              | [] ->
                  let acc_r =
                    if (not matched) && kind = A.Left then
                      null_extend lt :: acc_r
                    else acc_r
                  in
                  Ok acc_r
              | rt :: more -> (
                  let combined = lt @ rt in
                  match (kind, on) with
                  | A.Cross, _ | _, None ->
                      walk_right (combined :: acc_r) true more
                  | _, Some cond -> (
                      match Eval.eval_tvl (env_for ctx combined) cond with
                      | Ok Tvl.True -> walk_right (combined :: acc_r) true more
                      | Ok (Tvl.False | Tvl.Unknown) ->
                          walk_right acc_r matched more
                      | Error e -> Error e))
            in
            let* produced = walk_right [] false r.tuples in
            combine (List.rev_append produced acc) rest
      in
      (* forced join-order swap: the right side drives the outer loop, the
         left is re-walked per right tuple.  Bindings still concatenate in
         textual order (lt @ rt) so projection and resolution are
         unchanged — only the scan order moves, which must not be
         observable for inner/cross joins.  LEFT joins are never swapped:
         their NULL extension is asymmetric. *)
      let swap =
        swap_join_forced ctx
        && match kind with A.Inner | A.Cross -> true | A.Left -> false
      in
      let rec combine_swapped acc = function
        | [] -> Ok (List.rev acc)
        | rt :: rest ->
            let rec walk_left acc_l = function
              | [] -> Ok acc_l
              | lt :: more -> (
                  let combined = lt @ rt in
                  match (kind, on) with
                  | A.Cross, _ | _, None -> walk_left (combined :: acc_l) more
                  | _, Some cond -> (
                      match Eval.eval_tvl (env_for ctx combined) cond with
                      | Ok Tvl.True -> walk_left (combined :: acc_l) more
                      | Ok (Tvl.False | Tvl.Unknown) -> walk_left acc_l more
                      | Error e -> Error e))
            in
            let* produced = walk_left [] l.tuples in
            combine_swapped (List.rev_append produced acc) rest
      in
      let* tuples =
        if swap then combine_swapped [] r.tuples else combine [] l.tuples
      in
      if tracing ctx then
        op_event ctx ~op:"JOIN"
          ~detail:
            ((match kind with
             | A.Inner -> "INNER"
             | A.Left -> "LEFT"
             | A.Cross -> "CROSS")
            ^ if swap then " (forced swap)" else "")
          ~rows_in:(List.length l.tuples + List.length r.tuples)
          ~rows_out:(List.length tuples) ~t0:join_t0 ();
      Ok
        {
          tuples;
          used_skip_scan = l.used_skip_scan || r.used_skip_scan;
        }

(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)

and compute_agg ctx (tuples : binding list list) (agg : A.expr) :
    (Value.t, Errors.t) result =
  match agg with
  | A.Agg (f, arg) -> (
      (match f with
      | A.A_count_star -> cov ctx "agg.count_star"
      | A.A_count -> cov ctx "agg.count"
      | A.A_sum -> cov ctx "agg.sum"
      | A.A_avg -> cov ctx "agg.avg"
      | A.A_min -> cov ctx "agg.min"
      | A.A_max -> cov ctx "agg.max"
      | A.A_total -> cov ctx "agg.total");
      (* injected crash: MIN/MAX over a COLLATE expression *)
      (match (f, arg) with
      | (A.A_min | A.A_max), Some a
        when Dialect.equal ctx.dialect Dialect.Sqlite_like
             && bug ctx Bug.Sq_agg_collate_crash
             && expr_has (function A.Collate _ -> true | _ -> false) a ->
          raise
            (Errors.Crash
               "segfault: stale collation sequence in aggregate comparator")
      | _ -> ());
      match f with
      | A.A_count_star ->
          Ok (Value.Int (Int64.of_int (List.length tuples)))
      | A.A_count -> (
          match arg with
          | None -> Ok (Value.Int (Int64.of_int (List.length tuples)))
          | Some a ->
              let* vs = eval_over ctx tuples a in
              let n = List.length (List.filter (fun v -> not (Value.is_null v)) vs) in
              Ok (Value.Int (Int64.of_int n)))
      | A.A_sum | A.A_avg | A.A_total -> (
          let* vs =
            match arg with
            | Some a -> eval_over ctx tuples a
            | None -> Error (Errors.make Errors.Invalid_function "SUM requires an argument")
          in
          let nums =
            List.filter_map
              (fun v ->
                if Value.is_null v then None else Some (Coerce.to_numeric v))
              vs
          in
          match f with
          | A.A_total ->
              let total =
                List.fold_left
                  (fun acc v ->
                    match v with
                    | Value.Int i -> acc +. Int64.to_float i
                    | Value.Real r -> acc +. r
                    | _ -> acc)
                  0.0 nums
              in
              Ok (Value.Real total)
          | A.A_sum | A.A_avg ->
              if nums = [] then Ok Value.Null
              else begin
                let all_int =
                  List.for_all
                    (fun v -> match v with Value.Int _ -> true | _ -> false)
                    nums
                in
                let sum_result =
                  if all_int then begin
                    let overflow = ref false in
                    let s =
                      List.fold_left
                        (fun acc v ->
                          match v with
                          | Value.Int i -> (
                              match Numeric.checked_add acc i with
                              | Some r -> r
                              | None ->
                                  overflow := true;
                                  acc)
                          | _ -> acc)
                        0L nums
                    in
                    if !overflow then Error (Errors.make Errors.Out_of_range "integer overflow")
                    else Ok (Value.Int s)
                  end
                  else
                    Ok
                      (Value.Real
                         (List.fold_left
                            (fun acc v ->
                              match v with
                              | Value.Int i -> acc +. Int64.to_float i
                              | Value.Real r -> acc +. r
                              | _ -> acc)
                            0.0 nums))
                in
                let* s = sum_result in
                if f = A.A_avg then
                  let total =
                    match s with
                    | Value.Int i -> Int64.to_float i
                    | Value.Real r -> r
                    | _ -> 0.0
                  in
                  Ok (Value.Real (total /. float_of_int (List.length nums)))
                else Ok s
              end
          | _ -> assert false)
      | A.A_min | A.A_max -> (
          let* vs =
            match arg with
            | Some a -> eval_over ctx tuples a
            | None -> Error (Errors.make Errors.Invalid_function "MIN requires an argument")
          in
          let non_null = List.filter (fun v -> not (Value.is_null v)) vs in
          match non_null with
          | [] -> Ok Value.Null
          | first :: rest ->
              let keep =
                match f with
                | A.A_min -> fun c -> c < 0
                | _ -> fun c -> c > 0
              in
              Ok
                (List.fold_left
                   (fun acc v ->
                     if keep (Value.compare_total v acc) then v else acc)
                   first rest)))
  | _ -> Error (Errors.make Errors.Internal_error "compute_agg on non-aggregate")

and eval_over ctx tuples e =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tuple :: rest ->
        let* v = Eval.eval (env_for ctx tuple) e in
        go (v :: acc) rest
  in
  go [] tuples

(* ------------------------------------------------------------------ *)
(* SELECT pipeline                                                     *)

and output_columns ctx (bindings_sample : binding list) items :
    (string list, Errors.t) result =
  ignore ctx;
  let item_columns = function
    | A.Star ->
        Ok
          (List.concat_map
             (fun b ->
               Array.to_list (Array.map (fun (n, _, _) -> n) b.b_columns))
             bindings_sample)
    | A.Table_star t -> (
        let t = String.lowercase_ascii t in
        match List.find_opt (fun b -> b.b_alias = t) bindings_sample with
        | Some b -> Ok (Array.to_list (Array.map (fun (n, _, _) -> n) b.b_columns))
        | None -> Error (Errors.makef Errors.No_such_table "no such table: %s" t))
    | A.Sel_expr (_, Some alias) -> Ok [ alias ]
    | A.Sel_expr (A.Col { column; _ }, None) -> Ok [ column ]
    | A.Sel_expr (e, None) -> Ok [ Sqlast.Sql_printer.expr Dialect.Sqlite_like e ]
  in
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | item :: rest ->
        let* cols = item_columns item in
        go (cols :: acc) rest
  in
  go [] items

and project_row ctx tuple items : (Value.t array, Errors.t) result =
  let env = env_for ctx tuple in
  let item_values = function
    | A.Star -> Ok (List.concat_map (fun b -> Array.to_list b.b_values) tuple)
    | A.Table_star t -> (
        let t = String.lowercase_ascii t in
        match List.find_opt (fun b -> b.b_alias = t) tuple with
        | Some b -> Ok (Array.to_list b.b_values)
        | None -> Error (Errors.makef Errors.No_such_table "no such table: %s" t))
    | A.Sel_expr (e, _) ->
        let* v = Eval.eval env e in
        Ok [ v ]
  in
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.concat (List.rev acc)))
    | item :: rest ->
        let* vs = item_values item in
        go (vs :: acc) rest
  in
  go [] items

and row_key (row : Value.t array) =
  String.concat "\x00"
    (Array.to_list
       (Array.map
          (fun v ->
            match v with
            | Value.Text s -> "t:" ^ s
            | Value.Int i -> "i:" ^ Int64.to_string i
            | Value.Real r ->
                if Numeric.real_is_exact_int r then
                  "i:" ^ Int64.to_string (Int64.of_float r)
                else "r:" ^ string_of_float r
            | Value.Blob s -> "b:" ^ s
            | Value.Bool b -> "i:" ^ if b then "1" else "0"
            | Value.Null -> "n")
          row))

and dedup_by : 'a. key:('a -> string) -> 'a list -> 'a list =
 fun ~key rows ->
  let seen = Hashtbl.create 16 in
  List.filter
    (fun row ->
      let k = key row in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    rows

and dedup_rows rows = dedup_by ~key:row_key rows

and select_has_agg (s : A.select) =
  s.A.sel_group_by <> []
  || List.exists
       (function
         | A.Sel_expr (e, _) -> A.has_agg e
         | A.Star | A.Table_star _ -> false)
       s.A.sel_items
  || (match s.A.sel_having with Some h -> A.has_agg h | None -> false)

and run_select ctx (s : A.select) : (result_set, Errors.t) result =
  let where = s.A.sel_where in
  if s.A.sel_from = [] then begin
    (* constant SELECT *)
    let* columns = output_columns ctx [] s.A.sel_items in
    let* row = project_row ctx [] s.A.sel_items in
    let* rows =
      match where with
      | None -> Ok [ row ]
      | Some w -> (
          match Eval.eval_tvl (env_for ctx []) w with
          | Ok Tvl.True -> Ok [ row ]
          | Ok (Tvl.False | Tvl.Unknown) -> Ok []
          | Error e -> Error e)
    in
    Ok { rs_columns = columns; rs_rows = rows }
  end
  else begin
    let cond_has_cast =
      (match where with Some w -> has_cast w | None -> false)
      || List.exists
           (function
             | A.Sel_expr (e, _) -> has_cast e
             | A.Star | A.Table_star _ -> false)
           s.A.sel_items
    in
    let cond_has_ifnull =
      match where with Some w -> has_ifnull w | None -> false
    in
    let base_table_count =
      let rec count = function
        | A.F_table _ -> 1
        | A.F_join { left; right; _ } -> count left + count right
        | A.F_sub _ -> 1
      in
      List.fold_left (fun acc it -> acc + count it) 0 s.A.sel_from
    in
    let fctx =
      {
        in_join = base_table_count > 1;
        cond_has_cast;
        cond_has_ifnull;
        distinct = s.A.sel_distinct;
      }
    in
    (* FROM: cross product of the comma-separated items *)
    let* scans =
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
            let* sc = from_tuples ctx fctx ~where item in
            go (sc :: acc) rest
      in
      go [] s.A.sel_from
    in
    let used_skip_scan = List.exists (fun sc -> sc.used_skip_scan) scans in
    let tuples =
      match scans with
      | [] -> []
      | [ a; b ] when swap_join_forced ctx ->
          (* forced join-order swap for the two-item comma FROM: iterate
             the second table in the outer loop; bindings stay in textual
             order so projection is unchanged *)
          List.concat_map
            (fun tr -> List.map (fun tl -> tl @ tr) a.tuples)
            b.tuples
      | first :: rest ->
          List.fold_left
            (fun acc sc ->
              List.concat_map
                (fun tl -> List.map (fun tr -> tl @ tr) sc.tuples)
                acc)
            first.tuples rest
    in
    (* WHERE *)
    let filter_t0 = op_clock ctx in
    let* filtered =
      match where with
      | None -> Ok tuples
      | Some w ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | tuple :: rest -> (
                match Eval.eval_tvl (env_for ctx tuple) w with
                | Ok Tvl.True -> go (tuple :: acc) rest
                | Ok (Tvl.False | Tvl.Unknown) -> go acc rest
                | Error e -> Error e)
          in
          go [] tuples
    in
    if tracing ctx && where <> None then
      op_event ctx ~op:"FILTER" ~detail:"WHERE"
        ~rows_in:(List.length tuples)
        ~rows_out:(List.length filtered) ~t0:filter_t0 ();
    let sample_bindings =
      match filtered with
      | t :: _ -> t
      | [] -> ( match tuples with t :: _ -> t | [] -> [])
    in
    let* columns = output_columns ctx sample_bindings s.A.sel_items in
    (* GROUP BY / aggregation *)
    let agg_t0 = op_clock ctx in
    let* out_rows_with_keys =
      if select_has_agg s then begin
        cov ctx "exec.group_by";
        let* groups = group_tuples ctx s filtered in
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | group :: rest ->
              let* keep =
                match s.A.sel_having with
                | None -> Ok true
                | Some h ->
                    cov ctx "exec.having";
                    let* h' = substitute_aggs ctx group h in
                    let env =
                      env_for ctx (match group with t :: _ -> t | [] -> [])
                    in
                    (match Eval.eval_tvl env h' with
                    | Ok Tvl.True -> Ok true
                    | Ok (Tvl.False | Tvl.Unknown) -> Ok false
                    | Error e -> Error e)
              in
              if not keep then go acc rest
              else
                let rep = match group with t :: _ -> t | [] -> [] in
                let* items' =
                  let rec sub acc = function
                    | [] -> Ok (List.rev acc)
                    | A.Sel_expr (e, a) :: more ->
                        let* e' = substitute_aggs ctx group e in
                        sub (A.Sel_expr (e', a) :: acc) more
                    | it :: more -> sub (it :: acc) more
                  in
                  sub [] s.A.sel_items
                in
                let* row = project_row ctx rep items' in
                let* keys = order_keys ctx rep group s in
                go ((row, keys) :: acc) rest
        in
        go [] groups
      end
      else
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | tuple :: rest ->
              let* row = project_row ctx tuple s.A.sel_items in
              let* keys = order_keys ctx tuple [ tuple ] s in
              go ((row, keys) :: acc) rest
        in
        go [] filtered
    in
    if tracing ctx && select_has_agg s then
      op_event ctx ~op:"AGGREGATE"
        ~detail:(if s.A.sel_group_by = [] then "" else "GROUP BY")
        ~rows_in:(List.length filtered)
        ~rows_out:(List.length out_rows_with_keys) ~t0:agg_t0 ();
    (* DISTINCT *)
    ignore used_skip_scan;
    let out_rows_with_keys =
      if s.A.sel_distinct then begin
        cov ctx "exec.distinct";
        let d_t0 = op_clock ctx in
        let n_in = if tracing ctx then List.length out_rows_with_keys else 0 in
        let deduped =
          dedup_by ~key:(fun (row, _) -> row_key row) out_rows_with_keys
        in
        if tracing ctx then
          op_event ctx ~op:"DISTINCT" ~rows_in:n_in
            ~rows_out:(List.length deduped) ~t0:d_t0 ();
        deduped
      end
      else out_rows_with_keys
    in
    (* ORDER BY *)
    let ordered =
      if s.A.sel_order_by = [] then
        if Options.reverse_unordered_selects ctx.options then
          List.rev out_rows_with_keys
        else out_rows_with_keys
      else begin
        cov ctx "exec.order_by";
        let sort_t0 = op_clock ctx in
        (* sort keys are compared under each ORDER BY expression's
           collation (explicit COLLATE or the column's), like sqlite *)
        let dirs_and_colls =
          List.map
            (fun (e, dir) ->
              let coll =
                match Eval.column_meta (env_for ctx sample_bindings) e with
                | Some (_, c) -> c
                | None -> Collation.Binary
              in
              let coll =
                match e with A.Collate (_, c) -> c | _ -> coll
              in
              (dir, coll))
            s.A.sel_order_by
        in
        List.stable_sort
          (fun (_, ka) (_, kb) ->
            let rec cmp ks1 ks2 dcs =
              match (ks1, ks2, dcs) with
              | k1 :: r1, k2 :: r2, (d, coll) :: rd ->
                  let c = Value.compare_total ~collation:coll k1 k2 in
                  let c = match d with A.Asc -> c | A.Desc -> -c in
                  if c <> 0 then c else cmp r1 r2 rd
              | _ -> 0
            in
            cmp ka kb dirs_and_colls)
          out_rows_with_keys
        |> fun sorted ->
        (if tracing ctx then
           let n = List.length sorted in
           op_event ctx ~op:"SORT"
             ~detail:(Printf.sprintf "%d keys" (List.length s.A.sel_order_by))
             ~rows_in:n ~rows_out:n ~t0:sort_t0 ());
        sorted
      end
    in
    (* LIMIT / OFFSET *)
    let limit_t0 = op_clock ctx in
    let rows = List.map fst ordered in
    let pre_limit = if tracing ctx then List.length rows else 0 in
    let rows =
      match s.A.sel_offset with
      | None -> rows
      | Some off ->
          cov ctx "exec.limit";
          let off = Int64.to_int off in
          if off <= 0 then rows
          else List.filteri (fun i _ -> i >= off) rows
    in
    let rows =
      match s.A.sel_limit with
      | None -> rows
      | Some n ->
          cov ctx "exec.limit";
          let n = Int64.to_int n in
          if n < 0 then rows else List.filteri (fun i _ -> i < n) rows
    in
    if tracing ctx && (s.A.sel_limit <> None || s.A.sel_offset <> None) then
      op_event ctx ~op:"LIMIT" ~rows_in:pre_limit
        ~rows_out:(List.length rows) ~t0:limit_t0 ();
    Ok { rs_columns = columns; rs_rows = rows }
  end

and order_keys ctx tuple group s =
  (* aggregate queries order by substituted expressions *)
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (e, _) :: rest ->
        let* e' =
          if select_has_agg s then substitute_aggs ctx group e else Ok e
        in
        let* v = Eval.eval (env_for ctx tuple) e' in
        go (v :: acc) rest
  in
  go [] s.A.sel_order_by

and group_tuples ctx (s : A.select) (tuples : binding list list) :
    (binding list list list, Errors.t) result =
  if s.A.sel_group_by = [] then
    (* one group over everything, even when empty *)
    Ok [ tuples ]
  else begin
    (* postgres Listing 15 class: inherited tables break the primary-key
       functional dependency the grouping relies on *)
    let group_exprs =
      let pk_only =
        Dialect.equal ctx.dialect Dialect.Postgres_like
        && bug ctx Bug.Pg_inherit_group_by_dedup
        &&
        match s.A.sel_from with
        | [ A.F_table { name; _ } ] -> (
            match Storage.Catalog.find_table ctx.catalog name with
            | Some ts ->
                let schema = ts.Storage.Catalog.schema in
                Storage.Catalog.children_of ctx.catalog
                  schema.Storage.Schema.table_name
                <> []
                && schema.Storage.Schema.primary_key <> []
                && List.for_all
                     (fun pk ->
                       List.exists
                         (fun g ->
                           match g with
                           | A.Col { column; _ } ->
                               String.lowercase_ascii column
                               = String.lowercase_ascii pk
                           | _ -> false)
                         s.A.sel_group_by)
                     schema.Storage.Schema.primary_key
            | None -> false)
        | _ -> false
      in
      if pk_only then
        (* buggy: group by the primary key columns only *)
        match s.A.sel_from with
        | [ A.F_table { name; _ } ] -> (
            match Storage.Catalog.find_table ctx.catalog name with
            | Some ts ->
                List.map
                  (fun pk -> A.col pk)
                  ts.Storage.Catalog.schema.Storage.Schema.primary_key
            | None -> s.A.sel_group_by)
        | _ -> s.A.sel_group_by
      else s.A.sel_group_by
    in
    let table = Hashtbl.create 16 in
    let order = ref [] in
    let rec go = function
      | [] -> Ok ()
      | tuple :: rest ->
          let env = env_for ctx tuple in
          let rec keys acc = function
            | [] -> Ok (List.rev acc)
            | g :: more ->
                let* v = Eval.eval env g in
                keys (v :: acc) more
          in
          let* ks = keys [] group_exprs in
          let k = row_key (Array.of_list ks) in
          (match Hashtbl.find_opt table k with
          | Some group -> Hashtbl.replace table k (tuple :: group)
          | None ->
              Hashtbl.replace table k [ tuple ];
              order := k :: !order);
          go rest
    in
    let* () = go tuples in
    Ok (List.rev_map (fun k -> List.rev (Hashtbl.find table k)) !order)
  end

and substitute_aggs ctx group e : (A.expr, Errors.t) result =
  let aggs = A.collect_aggs e in
  let rec compute acc = function
    | [] -> Ok (List.rev acc)
    | a :: rest ->
        let* v = compute_agg ctx group a in
        compute ((a, v) :: acc) rest
  in
  let* table = compute [] aggs in
  Ok
    (A.map_expr
       (fun node ->
         match node with
         | A.Agg _ -> (
             match List.find_opt (fun (a, _) -> A.equal_expr a node) table with
             | Some (_, v) -> A.Lit v
             | None -> node)
         | _ -> node)
       e)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

and run_query ctx (q : A.query) : (result_set, Errors.t) result =
  (* corruption gates every read (paper: 'malformed database' is always an
     unexpected error) *)
  match Storage.Catalog.corruption ctx.catalog with
  | Some msg -> Error (Errors.make Errors.Malformed_database msg)
  | None -> (
      match q with
      | A.Q_select s -> run_select ctx s
      | A.Q_values rows ->
          cov ctx "exec.values";
          let env = env_for ctx [] in
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | row :: rest ->
                let rec vals acc' = function
                  | [] -> Ok (Array.of_list (List.rev acc'))
                  | e :: more ->
                      let* v = Eval.eval env e in
                      vals (v :: acc') more
                in
                let* r = vals [] row in
                go (r :: acc) rest
          in
          let* rows = go [] rows in
          let width = match rows with r :: _ -> Array.length r | [] -> 0 in
          let columns = List.init width (fun i -> Printf.sprintf "column%d" (i + 1)) in
          Ok { rs_columns = columns; rs_rows = rows }
      | A.Q_compound (op, qa, qb) ->
          (match op with
          | A.Union | A.Union_all -> cov ctx "exec.compound_union"
          | A.Intersect -> cov ctx "exec.compound_intersect"
          | A.Except -> cov ctx "exec.compound_except");
          let* ra = run_query ctx qa in
          let* rb = run_query ctx qb in
          let compound_t0 = op_clock ctx in
          let wa = List.length ra.rs_columns and wb = List.length rb.rs_columns in
          if wa <> wb then
            Error
              (Errors.make Errors.Syntax_error
                 "SELECTs to the left and right of a compound operator do \
                  not have the same number of result columns")
          else
            let keyset rows =
              let t = Hashtbl.create 16 in
              List.iter (fun r -> Hashtbl.replace t (row_key r) ()) rows;
              t
            in
            let rows =
              match op with
              | A.Union -> dedup_rows (ra.rs_rows @ rb.rs_rows)
              | A.Union_all -> ra.rs_rows @ rb.rs_rows
              | A.Intersect ->
                  let inb = keyset rb.rs_rows in
                  dedup_rows
                    (List.filter (fun r -> Hashtbl.mem inb (row_key r)) ra.rs_rows)
              | A.Except ->
                  let inb = keyset rb.rs_rows in
                  dedup_rows
                    (List.filter
                       (fun r -> not (Hashtbl.mem inb (row_key r)))
                       ra.rs_rows)
            in
            if tracing ctx then
              op_event ctx ~op:"COMPOUND"
                ~detail:
                  (match op with
                  | A.Union -> "UNION"
                  | A.Union_all -> "UNION ALL"
                  | A.Intersect -> "INTERSECT"
                  | A.Except -> "EXCEPT")
                ~rows_in:(List.length ra.rs_rows + List.length rb.rs_rows)
                ~rows_out:(List.length rows) ~t0:compound_t0 ();
            Ok { rs_columns = ra.rs_columns; rs_rows = rows })
