(* The compiled execution backend: queries become OCaml closures.

   A supported query is translated once into a tree of closures over a
   mutable current-row slot, then the operator pipeline (scan, filter,
   project, sort, distinct, limit) drives those closures over fixed-size
   row blocks instead of re-walking the expression AST per row.  All
   value-level semantics — every dialect quirk and injected bug — come
   from Eval's shared operator bodies, so the compiled backend detects
   exactly the bugs the interpreter does; the closures only replicate
   the interpreter's control flow (evaluation order, short circuits,
   coverage points) and pre-resolve what is static (column slots,
   dialect checks, structural bug folds).

   Shapes outside the compiler's reach (views, aggregation) delegate to
   Executor.run_query, so the backend is total and never changes
   observable behaviour — only how fast it happens. *)

open Sqlval
module A = Sqlast.Ast

let ( let* ) = Result.bind

(* Rows per operator block.  Small enough to stay cache-resident over
   the widest generated tables, large enough to amortize the per-block
   bookkeeping. *)
let block_size = 64

let batches_of n = Stdlib.max 1 ((n + block_size - 1) / block_size)

(* ------------------------------------------------------------------ *)
(* Compilation environment                                             *)

(* A compiled scalar expression: evaluate against the row currently in
   [cur].  Compilation resolves column references to value-array slots
   up front; the closures share one Eval.env whose resolver reads the
   current row, so Eval's metadata-driven helpers (collation, affinity,
   LIKE column checks) see exactly what the interpreter's per-tuple
   environment shows them. *)
type thunk = unit -> (Value.t, Errors.t) result

(* The row under evaluation is a tuple: one value array per FROM-clause
   binding, in binding order — the compiled mirror of the interpreter's
   [Executor.binding list] tuples, with the (identical-per-source)
   metadata hoisted out into the static [layout]. *)
type cenv = {
  env : Eval.env;
  layout : Executor.binding list;  (* null-valued; static metadata *)
  cur : Value.t array array ref;  (* per-binding values of the tuple *)
}

(* Slot resolution replicates Executor.resolve_in (same lookup rules,
   same error messages) but yields binding and column indices instead of
   a value. *)
let resolve_slot (bindings : Executor.binding list) ~table ~column :
    (int * int * Datatype.t * Collation.t, Errors.t) result =
  let col = String.lowercase_ascii column in
  let lookup bi (b : Executor.binding) =
    let rec go i =
      if i >= Array.length b.Executor.b_columns then None
      else
        let name, dt, coll = b.Executor.b_columns.(i) in
        if name = col then Some (bi, i, dt, coll) else go (i + 1)
    in
    go 0
  in
  match table with
  | Some t -> (
      let t = String.lowercase_ascii t in
      let rec find bi = function
        | [] -> None
        | b :: rest ->
            if b.Executor.b_alias = t then Some (bi, b) else find (bi + 1) rest
      in
      match find 0 bindings with
      | None -> Error (Errors.makef Errors.No_such_table "no such table: %s" t)
      | Some (bi, b) -> (
          match lookup bi b with
          | Some r -> Ok r
          | None ->
              Error
                (Errors.makef Errors.No_such_column "no such column: %s.%s" t
                   column)))
  | None -> (
      match List.filter_map Fun.id (List.mapi lookup bindings) with
      | [ r ] -> Ok r
      | [] ->
          Error (Errors.makef Errors.No_such_column "no such column: %s" column)
      | _ :: _ ->
          Error
            (Errors.makef Errors.Ambiguous_column "ambiguous column name: %s"
               column))

let null_values_of (b : Executor.binding) =
  Array.map (fun _ -> Value.Null) b.Executor.b_values

let make_cenv ctx (layout : Executor.binding list) : cenv =
  let cur = ref (Array.of_list (List.map null_values_of layout)) in
  let cache : (string option * string, (int * int * Datatype.t * Collation.t, Errors.t) result) Hashtbl.t =
    Hashtbl.create 8
  in
  let slot ~table ~column =
    match Hashtbl.find_opt cache (table, column) with
    | Some r -> r
    | None ->
        let r = resolve_slot layout ~table ~column in
        Hashtbl.add cache (table, column) r;
        r
  in
  let resolve ~table ~column =
    match slot ~table ~column with
    | Ok (bi, i, dt, coll) ->
        Ok { Eval.value = (!cur).(bi).(i); datatype = dt; collation = coll }
    | Error e -> Error e
  in
  { env = { (Executor.eval_env ctx) with Eval.resolve }; layout; cur }

let cov env point =
  match env.Eval.coverage with None -> () | Some c -> Coverage.hit c point

let cov_ctx (ctx : Executor.ctx) point =
  match ctx.Executor.coverage with None -> () | Some c -> Coverage.hit c point

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)

(* Mirrors Eval.eval case by case: identical coverage points in
   identical order and multiplicity, identical short-circuiting,
   identical error precedence.  Static decisions (slot lookups, dialect
   rejections, the mysql double-negation fold) happen here, once. *)
let rec compile_expr (c : cenv) (e : A.expr) : thunk =
  let env = c.env in
  let dialect = env.Eval.dialect in
  let tvl (t : thunk) =
    let* v = t () in
    Eval.value_tvl env v
  in
  match e with
  | A.Lit v -> fun () -> Ok v
  | A.Col { table; column } -> (
      match resolve_slot c.layout ~table ~column with
      | Ok (bi, i, _, _) ->
          let cur = c.cur in
          fun () -> Ok (!cur).(bi).(i)
      | Error err -> fun () -> Error err)
  | A.Collate (inner, _) -> compile_expr c inner
  | A.Agg _ ->
      let err =
        Errors.make Errors.Invalid_function
          "misuse of aggregate function in scalar context"
      in
      fun () -> Error err
  | A.Unary (A.Not, inner) -> (
      match inner with
      | A.Unary (A.Not, grandchild)
        when Dialect.equal dialect Dialect.Mysql_like
             && Bug.on env.Eval.bugs Bug.My_double_negation_fold ->
          (* mysql Listing 13 class: NOT(NOT x) folded away; the inner
             NOT's coverage point is skipped, like the interpreter *)
          let cg = compile_expr c grandchild in
          fun () ->
            cov env "unop.not";
            cg ()
      (* constant folder treats the NULL literal as FALSE under NOT *)
      | A.Lit Value.Null
        when Dialect.equal dialect Dialect.Sqlite_like
             && Bug.on env.Eval.bugs Bug.Sq_fold_not_null_true ->
          fun () ->
            cov env "unop.not";
            Ok (Eval.bool_value dialect Tvl.True)
      | _ ->
          let ci = compile_expr c inner in
          fun () ->
            cov env "unop.not";
            let* t = tvl ci in
            Ok (Eval.bool_value dialect (Tvl.not_ t)))
  | A.Unary (A.Neg, inner) ->
      let ci = compile_expr c inner in
      fun () ->
        cov env "unop.neg";
        let* v = ci () in
        Eval.neg_value env v
  | A.Unary (A.Pos, inner) ->
      let ci = compile_expr c inner in
      fun () ->
        cov env "unop.pos";
        ci ()
  | A.Unary (A.Bit_not, inner) ->
      let ci = compile_expr c inner in
      fun () ->
        cov env "unop.bit_not";
        let* v = ci () in
        Eval.bit_not_value env v
  | A.Binary (op, a, b) -> compile_binary c op a b
  | A.Is { negated; arg; rhs } -> compile_is c ~negated arg rhs
  | A.Between { negated; arg; lo; hi } ->
      let ca = compile_expr c arg in
      let cl = compile_expr c lo in
      let ch = compile_expr c hi in
      let prep = Eval.between_prep env ~negated ~arg ~lo ~hi in
      fun () ->
        cov env "pred.between";
        let* v = ca () in
        let* vl = cl () in
        let* vh = ch () in
        Eval.between_apply env prep v vl vh
  | A.In_list { negated; arg; list } ->
      let ca = compile_expr c arg in
      let items =
        List.map
          (fun item -> (Eval.compare_prep c.env A.Eq arg item, compile_expr c item))
          list
      in
      fun () ->
        cov env "pred.in";
        let* v = ca () in
        if Value.is_null v then Ok (Eval.bool_value dialect Tvl.Unknown)
        else
          let rec walk saw_null = function
            | [] -> Ok (Eval.in_empty_tvl env ~saw_null)
            | (prep, ci) :: rest ->
                let* vi = ci () in
                if Value.is_null vi then walk true rest
                else
                  let* r = Eval.compare_apply env prep v vi in
                  let* t = Eval.value_tvl env r in
                  if Tvl.equal t Tvl.True then Ok Tvl.True
                  else walk saw_null rest
          in
          let* t = walk false items in
          let t = if negated then Tvl.not_ t else t in
          Ok (Eval.bool_value dialect t)
  | A.Like { negated; arg; pattern; escape } ->
      let ca = compile_expr c arg in
      let cp = compile_expr c pattern in
      let cesc = Option.map (compile_expr c) escape in
      let prep = Eval.like_prep env ~negated ~arg in
      fun () ->
        cov env "pred.like";
        let* v = ca () in
        let* p = cp () in
        let* esc =
          match cesc with
          | None -> Ok None
          | Some ce ->
              let* ve = ce () in
              Eval.like_escape_char ve
        in
        Eval.like_apply env prep v p esc
  | A.Glob { negated; arg; pattern } ->
      if not (Dialect.equal dialect Dialect.Sqlite_like) then
        let err =
          Errors.make Errors.Invalid_function "GLOB is sqlite-specific"
        in
        fun () ->
          cov env "pred.glob";
          Error err
      else
        let ca = compile_expr c arg in
        let cp = compile_expr c pattern in
        fun () ->
          cov env "pred.glob";
          let* v = ca () in
          let* p = cp () in
          Eval.glob_value env ~negated v p
  | A.Cast (ty, inner) ->
      let ci = compile_expr c inner in
      fun () ->
        cov env "pred.cast";
        let* v = ci () in
        Eval.cast_value env ty v
  | A.Func (f, args) ->
      let point = "func." ^ Eval.func_point f in
      if not (Eval.func_available dialect f) then
        let err =
          Errors.makef Errors.Invalid_function "no such function in %s dialect"
            (Dialect.name dialect)
        in
        fun () ->
          cov env point;
          Error err
      else
        let cargs = List.map (compile_expr c) args in
        fun () ->
          cov env point;
          let rec eval_args acc = function
            | [] -> Ok (List.rev acc)
            | t :: rest ->
                let* v = t () in
                eval_args (v :: acc) rest
          in
          let* vs = eval_args [] cargs in
          Eval.apply_func env f vs args
  | A.Case { operand; branches; else_ } ->
      let buggy_null_when =
        Dialect.equal dialect Dialect.Sqlite_like
        && Bug.on env.Eval.bugs Bug.Sq_case_null_when
      in
      let celse = Option.map (compile_expr c) else_ in
      let else_thunk () =
        match celse with Some ce -> ce () | None -> Ok Value.Null
      in
      (match operand with
      | None ->
          let cbranches =
            List.map
              (fun (cond, result) ->
                (compile_expr c cond, compile_expr c result))
              branches
          in
          fun () ->
            cov env "pred.case";
            let rec walk = function
              | [] -> else_thunk ()
              | (ccond, cres) :: rest ->
                  let* t = tvl ccond in
                  let taken =
                    Tvl.equal t Tvl.True
                    || (buggy_null_when && Tvl.equal t Tvl.Unknown)
                  in
                  if taken then cres () else walk rest
            in
            walk cbranches
      | Some op_expr ->
          let cop = compile_expr c op_expr in
          let cbranches =
            List.map
              (fun (cond, result) ->
                ( Eval.compare_prep env A.Eq op_expr cond,
                  compile_expr c cond,
                  compile_expr c result ))
              branches
          in
          fun () ->
            cov env "pred.case";
            let* v = cop () in
            let rec walk = function
              | [] -> else_thunk ()
              | (prep, ccond, cres) :: rest ->
                  let* vc = ccond () in
                  let* r = Eval.compare_apply env prep v vc in
                  let* t = Eval.value_tvl env r in
                  let taken =
                    Tvl.equal t Tvl.True
                    || (buggy_null_when && Tvl.equal t Tvl.Unknown)
                  in
                  if taken then cres () else walk rest
            in
            walk cbranches)

and compile_binary c op a b : thunk =
  let env = c.env in
  let dialect = env.Eval.dialect in
  let tvl (t : thunk) =
    let* v = t () in
    Eval.value_tvl env v
  in
  match op with
  | A.And
    when (match (a, b) with
         | A.Lit Value.Null, _ | _, A.Lit Value.Null -> true
         | _ -> false)
         && Dialect.equal dialect Dialect.Sqlite_like
         && Bug.on env.Eval.bugs Bug.Sq_fold_null_and ->
      (* constant folder rewrites `NULL AND x` to NULL without checking
         whether x is FALSE; operand thunks are skipped, like the
         interpreter *)
      fun () ->
        cov env "binop.and";
        Ok (Eval.bool_value dialect Tvl.Unknown)
  | A.And ->
      let ca = compile_expr c a in
      let cb = compile_expr c b in
      fun () ->
        cov env "binop.and";
        let* ta = tvl ca in
        if Tvl.equal ta Tvl.False then Ok (Eval.bool_value dialect Tvl.False)
        else
          let* tb = tvl cb in
          Ok (Eval.bool_value dialect (Tvl.and_ ta tb))
  | A.Or ->
      let ca = compile_expr c a in
      let cb = compile_expr c b in
      fun () ->
        cov env "binop.or";
        let* ta = tvl ca in
        if Tvl.equal ta Tvl.True then Ok (Eval.bool_value dialect Tvl.True)
        else
          let* tb = tvl cb in
          Ok (Eval.bool_value dialect (Tvl.or_ ta tb))
  | A.Concat when Dialect.equal dialect Dialect.Mysql_like ->
      (* mysql: || is logical OR by default; both coverage points fire,
         like the interpreter's delegation *)
      let c_or = compile_binary c A.Or a b in
      fun () ->
        cov env "binop.concat";
        c_or ()
  | A.Concat ->
      let ca = compile_expr c a in
      let cb = compile_expr c b in
      fun () ->
        cov env "binop.concat";
        let* va = ca () in
        let* vb = cb () in
        if Value.is_null va || Value.is_null vb then Ok Value.Null
        else
          Ok
            (Value.Text
               (Coerce.to_text dialect va ^ Coerce.to_text dialect vb))
  | A.Eq | A.Neq | A.Lt | A.Le | A.Gt | A.Ge | A.Null_safe_eq ->
      let point =
        match op with
        | A.Eq -> "binop.eq"
        | A.Neq -> "binop.neq"
        | A.Lt -> "binop.lt"
        | A.Le -> "binop.le"
        | A.Gt -> "binop.gt"
        | A.Ge -> "binop.ge"
        | _ -> "binop.nullsafe_eq"
      in
      let ca = compile_expr c a in
      let cb = compile_expr c b in
      let prep = Eval.compare_prep env op a b in
      fun () ->
        cov env point;
        let* va = ca () in
        let* vb = cb () in
        Eval.compare_apply env prep va vb
  | A.Add | A.Sub | A.Mul | A.Div | A.Rem ->
      let point =
        match op with
        | A.Add -> "binop.add"
        | A.Sub -> "binop.sub"
        | A.Mul -> "binop.mul"
        | A.Div -> "binop.div"
        | _ -> "binop.rem"
      in
      let ca = compile_expr c a in
      let cb = compile_expr c b in
      fun () ->
        cov env point;
        let* va = ca () in
        let* vb = cb () in
        Eval.arith env op a b va vb
  | A.Bit_and | A.Bit_or | A.Shift_left | A.Shift_right ->
      let point =
        match op with
        | A.Bit_and -> "binop.bit_and"
        | A.Bit_or -> "binop.bit_or"
        | A.Shift_left -> "binop.shl"
        | _ -> "binop.shr"
      in
      let ca = compile_expr c a in
      let cb = compile_expr c b in
      fun () ->
        cov env point;
        let* va = ca () in
        let* vb = cb () in
        Eval.bitop env op va vb

and compile_is c ~negated arg rhs : thunk =
  let env = c.env in
  let dialect = env.Eval.dialect in
  match rhs with
  | A.Is_null ->
      let ca = compile_expr c arg in
      fun () ->
        cov env "pred.is";
        let* v = ca () in
        Eval.is_finish env ~negated (Tvl.of_bool (Value.is_null v))
  | A.Is_true | A.Is_false ->
      let want = match rhs with A.Is_true -> Tvl.True | _ -> Tvl.False in
      let ca = compile_expr c arg in
      fun () ->
        cov env "pred.is";
        let* v = ca () in
        Eval.is_bool_value env ~negated ~want v
  | A.Is_expr other ->
      if not (Dialect.equal dialect Dialect.Sqlite_like) then
        let err =
          Errors.make Errors.Invalid_function
            "IS over scalars is sqlite-specific"
        in
        fun () ->
          cov env "pred.is";
          Error err
      else
        let ca = compile_expr c arg in
        let cb = compile_expr c other in
        let prep = Eval.compare_prep env A.Null_safe_eq arg other in
        fun () ->
          cov env "pred.is";
          let* va = ca () in
          let* vb = cb () in
          let* r = Eval.compare_apply env prep va vb in
          let* t = Eval.value_tvl env r in
          Eval.is_finish env ~negated t
  | A.Is_distinct_from other ->
      if not (Dialect.equal dialect Dialect.Postgres_like) then
        let err =
          Errors.make Errors.Invalid_function
            "IS DISTINCT FROM is postgres-specific"
        in
        fun () ->
          cov env "pred.is";
          Error err
      else
        let ca = compile_expr c arg in
        let cb = compile_expr c other in
        let prep = Eval.compare_prep env A.Null_safe_eq arg other in
        fun () ->
          cov env "pred.is";
          let* va = ca () in
          let* vb = cb () in
          let* r = Eval.compare_apply env prep va vb in
          let* t = Eval.value_tvl env r in
          Eval.is_finish env ~negated (Tvl.not_ t)

(* ------------------------------------------------------------------ *)
(* Projection                                                          *)

(* A compiled SELECT item: fills output values for the current row. *)
type proj =
  | P_star  (* every binding's values, in binding order *)
  | P_binding of int  (* t.*: one binding's values *)
  | P_error of Errors.t  (* t.* naming no binding: fails at projection *)
  | P_expr of thunk

let compile_items c items =
  List.map
    (function
      | A.Star -> P_star
      | A.Table_star t -> (
          let tl = String.lowercase_ascii t in
          let rec find i = function
            | [] ->
                P_error
                  (Errors.makef Errors.No_such_table "no such table: %s" tl)
            | b :: rest ->
                if b.Executor.b_alias = tl then P_binding i
                else find (i + 1) rest
          in
          find 0 c.layout)
      | A.Sel_expr (e, _) -> P_expr (compile_expr c e))
    items

(* Project the tuple currently in [c.cur] through the compiled item
   list ([tuple] is the same array the caller stored into [c.cur]). *)
let project (tuple : Value.t array array) projs :
    (Value.t array, Errors.t) result =
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.concat (List.rev acc)))
    | p :: rest -> (
        match p with
        | P_star ->
            go
              (List.concat_map Array.to_list (Array.to_list tuple) :: acc)
              rest
        | P_binding i -> go (Array.to_list tuple.(i) :: acc) rest
        | P_error e -> Error e
        | P_expr t ->
            let* v = t () in
            go ([ v ] :: acc) rest)
  in
  go [] projs

(* ------------------------------------------------------------------ *)
(* Supported shapes                                                    *)

(* Everything except aggregation (GROUP BY / aggregate items / aggregate
   HAVING) and view expansion compiles; both fall back.  An [F_table]
   naming neither a table nor anything also falls back, so the "no such
   table" error comes from the one interpreted code path. *)
let rec query_supported ctx = function
  | A.Q_values _ -> true
  | A.Q_compound (_, qa, qb) ->
      query_supported ctx qa && query_supported ctx qb
  | A.Q_select s -> select_supported ctx s

and select_supported ctx (s : A.select) =
  (not (Executor.select_has_agg s))
  && List.for_all (from_item_supported ctx) s.A.sel_from

and from_item_supported ctx = function
  | A.F_table { name; _ } ->
      Option.is_some (Storage.Catalog.find_table ctx.Executor.catalog name)
  | A.F_sub { sub; _ } -> query_supported ctx sub
  | A.F_join { left; right; _ } ->
      from_item_supported ctx left && from_item_supported ctx right

(* ------------------------------------------------------------------ *)
(* The batched pipeline                                                *)

(* A materialized FROM item: static per-binding metadata plus the
   tuples, one value array per binding (joins contribute the bindings
   of both sides, concatenated in textual order). *)
type source = {
  src_layout : Executor.binding list;
  src_tuples : Value.t array array list;
}

(* Evaluate the compiled WHERE predicate over the tuples in blocks of
   [block_size], compacting survivors per block; the FILTER operator
   annotation reports the block count. *)
let filter_rows ctx (c : cenv) pred (rows : Value.t array array array) :
    (Value.t array array list, Errors.t) result =
  match pred with
  | None -> Ok (Array.to_list rows)
  | Some p ->
      let filter_t0 = Executor.op_clock ctx in
      let n = Array.length rows in
      let acc = ref [] in
      let err = ref None in
      let i = ref 0 in
      let batches = ref 0 in
      while !err = None && !i < n do
        let hi = Stdlib.min n (!i + block_size) in
        incr batches;
        let j = ref !i in
        while !err = None && !j < hi do
          let row = rows.(!j) in
          c.cur := row;
          (match p () with
          | Ok v -> (
              match Eval.value_tvl c.env v with
              | Ok Tvl.True -> acc := row :: !acc
              | Ok (Tvl.False | Tvl.Unknown) -> ()
              | Error e -> err := Some e)
          | Error e -> err := Some e);
          incr j
        done;
        i := hi
      done;
      (match !err with
      | Some e -> Error e
      | None ->
          let filtered = List.rev !acc in
          if Executor.tracing ctx then
            Executor.op_event ctx ~op:"FILTER" ~detail:"WHERE" ~rows_in:n
              ~rows_out:(List.length filtered)
              ~batches:(Stdlib.max 1 !batches) ~t0:filter_t0 ();
          Ok filtered)

(* One compiled-and-executed SELECT. *)
let rec run_select ctx (s : A.select) : (Executor.result_set, Errors.t) result =
  let where = s.A.sel_where in
  if s.A.sel_from = [] then begin
    (* constant SELECT: project once, keep the row if WHERE passes;
       DISTINCT/ORDER BY/LIMIT do not apply, like the interpreter *)
    let c = make_cenv ctx [] in
    let* columns = Executor.output_columns ctx [] s.A.sel_items in
    let projs = compile_items c s.A.sel_items in
    let* row = project [||] projs in
    let* rows =
      match where with
      | None -> Ok [ row ]
      | Some w -> (
          let p = compile_expr c w in
          match p () with
          | Ok v -> (
              match Eval.value_tvl c.env v with
              | Ok Tvl.True -> Ok [ row ]
              | Ok (Tvl.False | Tvl.Unknown) -> Ok []
              | Error e -> Error e)
          | Error e -> Error e)
    in
    Ok { Executor.rs_columns = columns; rs_rows = rows }
  end
  else begin
    let cond_has_cast =
      (match where with Some w -> Executor.has_cast w | None -> false)
      || List.exists
           (function
             | A.Sel_expr (e, _) -> Executor.has_cast e
             | A.Star | A.Table_star _ -> false)
           s.A.sel_items
    in
    let cond_has_ifnull =
      match where with Some w -> Executor.has_ifnull w | None -> false
    in
    let base_table_count =
      let rec count = function
        | A.F_table _ -> 1
        | A.F_join { left; right; _ } -> count left + count right
        | A.F_sub _ -> 1
      in
      List.fold_left (fun acc it -> acc + count it) 0 s.A.sel_from
    in
    let fctx =
      {
        Executor.in_join = base_table_count > 1;
        cond_has_cast;
        cond_has_ifnull;
        distinct = s.A.sel_distinct;
      }
    in
    (* FROM: materialize each comma item, then the cross product, in
       the interpreter's order (scans and their flight-recorder events
       happen in textual order even under a forced join swap) *)
    let* sources =
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
            let* src = materialize ctx fctx ~where item in
            go (src :: acc) rest
      in
      go [] s.A.sel_from
    in
    let layout = List.concat_map (fun src -> src.src_layout) sources in
    let c = make_cenv ctx layout in
    (* WHERE *)
    let pred = Option.map (compile_expr c) where in
    let* filtered, product_nonempty =
      match (sources, pred) with
      | [ a; b ], Some p ->
          (* fused cross product + filter for the two-item comma FROM:
             the predicate runs against the cenv's scratch tuple with the
             halves blitted in, and the combined tuple is allocated only
             for surviving rows; iteration order, coverage, the FILTER
             event's counts and the forced join swap all match the
             materialize-then-filter path *)
          let na = List.length a.src_layout
          and nb = List.length b.src_layout in
          let scratch = !(c.cur) in
          let la = Array.of_list a.src_tuples
          and lb = Array.of_list b.src_tuples in
          let filter_t0 = Executor.op_clock ctx in
          let n = Array.length la * Array.length lb in
          let acc = ref [] in
          let err = ref None in
          let eval_tuple tl tr =
            Array.blit tl 0 scratch 0 na;
            Array.blit tr 0 scratch na nb;
            match p () with
            | Ok v -> (
                match Eval.value_tvl c.env v with
                | Ok Tvl.True -> acc := Array.append tl tr :: !acc
                | Ok (Tvl.False | Tvl.Unknown) -> ()
                | Error e -> err := Some e)
            | Error e -> err := Some e
          in
          let outer, inner, tuple_of =
            if Executor.swap_join_forced ctx then
              (* second table in the outer loop; binding order stays
                 textual so the predicate and projection are unchanged *)
              (lb, la, fun o i -> eval_tuple i o)
            else (la, lb, fun o i -> eval_tuple o i)
          in
          let no = Array.length outer and ni = Array.length inner in
          let oi = ref 0 in
          while !err = None && !oi < no do
            let o = outer.(!oi) in
            let ii = ref 0 in
            while !err = None && !ii < ni do
              tuple_of o inner.(!ii);
              incr ii
            done;
            incr oi
          done;
          (match !err with
          | Some e -> Error e
          | None ->
              let rows = List.rev !acc in
              if Executor.tracing ctx then
                Executor.op_event ctx ~op:"FILTER" ~detail:"WHERE" ~rows_in:n
                  ~rows_out:(List.length rows)
                  ~batches:
                    (Stdlib.max 1 ((n + block_size - 1) / block_size))
                  ~t0:filter_t0 ();
              Ok (rows, n > 0))
      | _ ->
          let tuples =
            match sources with
            | [] -> []
            | [ a; b ] when Executor.swap_join_forced ctx ->
                (* forced join-order swap for the two-item comma FROM:
                   iterate the second table in the outer loop; binding
                   order stays textual so projection is unchanged *)
                List.concat_map
                  (fun tr ->
                    List.map (fun tl -> Array.append tl tr) a.src_tuples)
                  b.src_tuples
            | first :: rest ->
                List.fold_left
                  (fun acc src ->
                    List.concat_map
                      (fun tl ->
                        List.map (fun tr -> Array.append tl tr) src.src_tuples)
                      acc)
                  first.src_tuples rest
          in
          let* f = filter_rows ctx c pred (Array.of_list tuples) in
          Ok (f, match tuples with [] -> false | _ :: _ -> true)
    in
    (* output columns come from a sample tuple: the runtime layout when
       the FROM produced tuples, nothing when it was empty (observable:
       [*] over an empty product has no columns) *)
    let sample = if product_nonempty then c.layout else [] in
    let* columns = Executor.output_columns ctx sample s.A.sel_items in
    (* projection + ORDER BY keys, block at a time *)
    let projs = compile_items c s.A.sel_items in
    let order_thunks =
      List.map (fun (e, _) -> compile_expr c e) s.A.sel_order_by
    in
    let* out_rows_with_keys =
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | values :: rest ->
            c.cur := values;
            let* row = project values projs in
            let rec keys acc' = function
              | [] -> Ok (List.rev acc')
              | t :: more ->
                  let* v = t () in
                  keys (v :: acc') more
            in
            let* ks = keys [] order_thunks in
            go ((row, ks) :: acc) rest
      in
      go [] filtered
    in
    (* DISTINCT *)
    let out_rows_with_keys =
      if s.A.sel_distinct then begin
        cov_ctx ctx "exec.distinct";
        let d_t0 = Executor.op_clock ctx in
        let n_in =
          if Executor.tracing ctx then List.length out_rows_with_keys else 0
        in
        let seen = Hashtbl.create 16 in
        let deduped =
          List.filter
            (fun (row, _) ->
              let k = Executor.row_key row in
              if Hashtbl.mem seen k then false
              else begin
                Hashtbl.replace seen k ();
                true
              end)
            out_rows_with_keys
        in
        if Executor.tracing ctx then
          Executor.op_event ctx ~op:"DISTINCT" ~rows_in:n_in
            ~rows_out:(List.length deduped) ~batches:(batches_of n_in)
            ~t0:d_t0 ();
        deduped
      end
      else out_rows_with_keys
    in
    (* ORDER BY *)
    let ordered =
      if s.A.sel_order_by = [] then
        if Options.reverse_unordered_selects ctx.Executor.options then
          List.rev out_rows_with_keys
        else out_rows_with_keys
      else begin
        cov_ctx ctx "exec.order_by";
        let sort_t0 = Executor.op_clock ctx in
        (* per-key collations from the static layout env: identical to
           the interpreter's sample tuple whenever any row exists, and
           irrelevant when none does *)
        let dirs_and_colls =
          List.map
            (fun (e, dir) ->
              let coll =
                match Eval.column_meta c.env e with
                | Some (_, cl) -> cl
                | None -> Collation.Binary
              in
              let coll = match e with A.Collate (_, cl) -> cl | _ -> coll in
              (dir, coll))
            s.A.sel_order_by
        in
        List.stable_sort
          (fun (_, ka) (_, kb) ->
            let rec cmp ks1 ks2 dcs =
              match (ks1, ks2, dcs) with
              | k1 :: r1, k2 :: r2, (d, coll) :: rd ->
                  let cm = Value.compare_total ~collation:coll k1 k2 in
                  let cm = match d with A.Asc -> cm | A.Desc -> -cm in
                  if cm <> 0 then cm else cmp r1 r2 rd
              | _ -> 0
            in
            cmp ka kb dirs_and_colls)
          out_rows_with_keys
        |> fun sorted ->
        (if Executor.tracing ctx then
           let n = List.length sorted in
           Executor.op_event ctx ~op:"SORT"
             ~detail:
               (Printf.sprintf "%d keys" (List.length s.A.sel_order_by))
             ~rows_in:n ~rows_out:n ~batches:(batches_of n) ~t0:sort_t0 ());
        sorted
      end
    in
    (* LIMIT / OFFSET *)
    let limit_t0 = Executor.op_clock ctx in
    let rows = List.map fst ordered in
    let pre_limit = if Executor.tracing ctx then List.length rows else 0 in
    let rows =
      match s.A.sel_offset with
      | None -> rows
      | Some off ->
          cov_ctx ctx "exec.limit";
          let off = Int64.to_int off in
          if off <= 0 then rows
          else List.filteri (fun i _ -> i >= off) rows
    in
    let rows =
      match s.A.sel_limit with
      | None -> rows
      | Some n ->
          cov_ctx ctx "exec.limit";
          let n = Int64.to_int n in
          if n < 0 then rows else List.filteri (fun i _ -> i < n) rows
    in
    if
      Executor.tracing ctx
      && (s.A.sel_limit <> None || s.A.sel_offset <> None)
    then
      Executor.op_event ctx ~op:"LIMIT" ~rows_in:pre_limit
        ~rows_out:(List.length rows) ~batches:(batches_of pre_limit)
        ~t0:limit_t0 ();
    Ok { Executor.rs_columns = columns; rs_rows = rows }
  end

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

and run_query ctx (q : A.query) : (Executor.result_set, Errors.t) result =
  (* corruption gates every read, like the interpreter *)
  match Storage.Catalog.corruption ctx.Executor.catalog with
  | Some msg -> Error (Errors.make Errors.Malformed_database msg)
  | None ->
      if not (query_supported ctx q) then Executor.run_query ctx q
      else run_supported ctx q

and run_supported ctx (q : A.query) =
  match q with
  | A.Q_select s -> run_select ctx s
  | A.Q_values rows ->
      cov_ctx ctx "exec.values";
      let c = make_cenv ctx [] in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | row :: rest ->
            let thunks = List.map (compile_expr c) row in
            let rec vals acc' = function
              | [] -> Ok (Array.of_list (List.rev acc'))
              | t :: more ->
                  let* v = t () in
                  vals (v :: acc') more
            in
            let* r = vals [] thunks in
            go (r :: acc) rest
      in
      let* rows = go [] rows in
      let width = match rows with r :: _ -> Array.length r | [] -> 0 in
      let columns =
        List.init width (fun i -> Printf.sprintf "column%d" (i + 1))
      in
      Ok { Executor.rs_columns = columns; rs_rows = rows }
  | A.Q_compound (op, qa, qb) ->
      (match op with
      | A.Union | A.Union_all -> cov_ctx ctx "exec.compound_union"
      | A.Intersect -> cov_ctx ctx "exec.compound_intersect"
      | A.Except -> cov_ctx ctx "exec.compound_except");
      let* ra = run_query ctx qa in
      let* rb = run_query ctx qb in
      let compound_t0 = Executor.op_clock ctx in
      let wa = List.length ra.Executor.rs_columns
      and wb = List.length rb.Executor.rs_columns in
      if wa <> wb then
        Error
          (Errors.make Errors.Syntax_error
             "SELECTs to the left and right of a compound operator do \
              not have the same number of result columns")
      else
        let keyset rows =
          let t = Hashtbl.create 16 in
          List.iter
            (fun r -> Hashtbl.replace t (Executor.row_key r) ())
            rows;
          t
        in
        let rows =
          match op with
          | A.Union ->
              Executor.dedup_rows
                (ra.Executor.rs_rows @ rb.Executor.rs_rows)
          | A.Union_all -> ra.Executor.rs_rows @ rb.Executor.rs_rows
          | A.Intersect ->
              (* left-driven: a left row is in the output iff its key
                 appears anywhere on the right, so hash the (typically
                 tiny — the containment check's VALUES side) left and
                 stop scanning the right once every left key has been
                 seen *)
              let want = keyset ra.Executor.rs_rows in
              let missing = ref (Hashtbl.length want) in
              let found = Hashtbl.create 16 in
              let rec scan = function
                | [] -> ()
                | r :: rest ->
                    if !missing > 0 then begin
                      let k = Executor.row_key r in
                      (if Hashtbl.mem want k && not (Hashtbl.mem found k)
                       then begin
                         Hashtbl.replace found k ();
                         decr missing
                       end);
                      scan rest
                    end
              in
              scan rb.Executor.rs_rows;
              Executor.dedup_rows
                (List.filter
                   (fun r -> Hashtbl.mem found (Executor.row_key r))
                   ra.Executor.rs_rows)
          | A.Except ->
              let inb = keyset rb.Executor.rs_rows in
              Executor.dedup_rows
                (List.filter
                   (fun r -> not (Hashtbl.mem inb (Executor.row_key r)))
                   ra.Executor.rs_rows)
        in
        let n_in =
          List.length ra.Executor.rs_rows + List.length rb.Executor.rs_rows
        in
        if Executor.tracing ctx then
          Executor.op_event ctx ~op:"COMPOUND"
            ~detail:
              (match op with
              | A.Union -> "UNION"
              | A.Union_all -> "UNION ALL"
              | A.Intersect -> "INTERSECT"
              | A.Except -> "EXCEPT")
            ~rows_in:n_in ~rows_out:(List.length rows)
            ~batches:(batches_of n_in) ~t0:compound_t0 ();
        Ok { Executor.rs_columns = ra.Executor.rs_columns; rs_rows = rows }

(* One FROM item, materialized: the compiled mirror of the interpreter's
   from_tuples — identical coverage points, operator events, scan-site
   bug behaviour and error order, with the join's ON predicate compiled
   once against the combined layout instead of re-walked per pair. *)
and materialize ctx fctx ~where (item : A.from_item) :
    (source, Errors.t) result =
  match item with
  | A.F_table { name; alias } -> (
      let alias_name = Option.value ~default:name alias in
      match Storage.Catalog.find_table ctx.Executor.catalog name with
      | Some ts ->
          let* rows, _used_skip_scan =
            Executor.scan_rows ctx fctx ~where ~table:name ~alias:alias_name
              ~block_size ts
          in
          let schema = ts.Storage.Catalog.schema in
          let layout =
            [
              Executor.binding_of_table schema ~alias:alias_name
                (Array.map
                   (fun (_ : Storage.Schema.column) -> Value.Null)
                   schema.Storage.Schema.columns);
            ]
          in
          Ok
            {
              src_layout = layout;
              src_tuples =
                List.map (fun (r, _) -> [| r.Storage.Row.values |]) rows;
            }
      | None -> assert false (* query_supported: views fall back *))
  | A.F_sub { sub; alias } ->
      (* derived table, materialized through the compiled pipeline;
         columns are untyped and binary-collated, like the interpreter *)
      cov_ctx ctx "exec.subquery";
      let sub_t0 = Executor.op_clock ctx in
      let* rs = run_query ctx sub in
      let columns =
        Array.of_list
          (List.map
             (fun cname ->
               (String.lowercase_ascii cname, Datatype.Any, Collation.Binary))
             rs.Executor.rs_columns)
      in
      let layout =
        [
          {
            Executor.b_alias = String.lowercase_ascii alias;
            b_columns = columns;
            b_values = Array.map (fun _ -> Value.Null) columns;
          };
        ]
      in
      (if Executor.tracing ctx then
         let n = List.length rs.Executor.rs_rows in
         Executor.op_event ctx ~op:"SUBQUERY" ~detail:alias ~rows_in:n
           ~rows_out:n ~batches:(batches_of n) ~t0:sub_t0 ());
      Ok
        {
          src_layout = layout;
          src_tuples = List.map (fun row -> [| row |]) rs.Executor.rs_rows;
        }
  | A.F_join { kind; left; right; on } ->
      (match kind with
      | A.Inner -> cov_ctx ctx "exec.join_inner"
      | A.Left -> cov_ctx ctx "exec.join_left"
      | A.Cross -> cov_ctx ctx "exec.join_cross");
      let* l = materialize ctx fctx ~where:None left in
      let* r = materialize ctx fctx ~where:None right in
      run_join ctx ~kind ~on ~right_item:right l r

(* Nested-loop join over two materialized sides.  The ON predicate is
   compiled once against [left @ right] and evaluated against a scratch
   tuple whose halves are refreshed by the loops; everything observable
   (coverage, evaluation order, LEFT null extension, the forced join
   swap, the JOIN event's row counts) matches the interpreter. *)
and run_join ctx ~kind ~on ~right_item (l : source) (r : source) :
    (source, Errors.t) result =
  let join_t0 = Executor.op_clock ctx in
  let nl = List.length l.src_layout and nr = List.length r.src_layout in
  let full_layout = l.src_layout @ r.src_layout in
  let con =
    match on with
    | None -> None
    | Some cond ->
        let c = make_cenv ctx full_layout in
        Some (c, compile_expr c cond)
  in
  (* blit target: the cenv's own null tuple, so compile-time metadata
     resolution (collation/affinity prep) saw properly-shaped arrays *)
  let scratch = match con with Some (c, _) -> !(c.cur) | None -> [||] in
  let set_left lt =
    match con with Some _ -> Array.blit lt 0 scratch 0 nl | None -> ()
  in
  let set_right rt =
    match con with Some _ -> Array.blit rt 0 scratch nl nr | None -> ()
  in
  let eval_on c p =
    let* v = p () in
    Eval.value_tvl c.env v
  in
  (* the NULL-padded right extension for unmatched LEFT rows: shaped
     like the first right tuple, or built from the schemas when the
     right side is empty — where a derived table contributes nothing,
     exactly like the interpreter's null_shape, so the layout shrinks *)
  let rec null_shape item =
    match item with
    | A.F_table { name; alias } -> (
        match Storage.Catalog.find_table ctx.Executor.catalog name with
        | Some ts ->
            let schema = ts.Storage.Catalog.schema in
            [
              Executor.binding_of_table schema
                ~alias:(Option.value ~default:name alias)
                (Array.map
                   (fun (_ : Storage.Schema.column) -> Value.Null)
                   schema.Storage.Schema.columns);
            ]
        | None -> [])
    | A.F_join { left; right; _ } -> null_shape left @ null_shape right
    | A.F_sub _ -> []
  in
  let out_layout, ext =
    match r.src_tuples with
    | sample :: _ ->
        ( full_layout,
          Array.map (Array.map (fun (_ : Value.t) -> Value.Null)) sample )
    | [] ->
        let shape = null_shape right_item in
        ( l.src_layout @ shape,
          Array.of_list (List.map (fun b -> b.Executor.b_values) shape) )
  in
  let combine () =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | lt :: rest ->
          set_left lt;
          let rec walk_right acc_r matched = function
            | [] ->
                let acc_r =
                  if (not matched) && kind = A.Left then
                    Array.append lt ext :: acc_r
                  else acc_r
                in
                Ok acc_r
            | rt :: more -> (
                match (kind, con) with
                | A.Cross, _ | _, None ->
                    walk_right (Array.append lt rt :: acc_r) true more
                | _, Some (c, p) -> (
                    set_right rt;
                    match eval_on c p with
                    | Ok Tvl.True ->
                        walk_right (Array.append lt rt :: acc_r) true more
                    | Ok (Tvl.False | Tvl.Unknown) ->
                        walk_right acc_r matched more
                    | Error e -> Error e))
          in
          let* produced = walk_right [] false r.src_tuples in
          go (List.rev_append produced acc) rest
    in
    go [] l.src_tuples
  in
  (* forced join-order swap: right side drives the outer loop; bindings
     still concatenate in textual order.  LEFT joins are never swapped:
     their NULL extension is asymmetric. *)
  let swap =
    Executor.swap_join_forced ctx
    && match kind with A.Inner | A.Cross -> true | A.Left -> false
  in
  let combine_swapped () =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | rt :: rest ->
          set_right rt;
          let rec walk_left acc_l = function
            | [] -> Ok acc_l
            | lt :: more -> (
                match (kind, con) with
                | A.Cross, _ | _, None ->
                    walk_left (Array.append lt rt :: acc_l) more
                | _, Some (c, p) -> (
                    set_left lt;
                    match eval_on c p with
                    | Ok Tvl.True ->
                        walk_left (Array.append lt rt :: acc_l) more
                    | Ok (Tvl.False | Tvl.Unknown) -> walk_left acc_l more
                    | Error e -> Error e))
          in
          let* produced = walk_left [] l.src_tuples in
          go (List.rev_append produced acc) rest
    in
    go [] r.src_tuples
  in
  let* tuples = if swap then combine_swapped () else combine () in
  if Executor.tracing ctx then
    Executor.op_event ctx ~op:"JOIN"
      ~detail:
        ((match kind with
         | A.Inner -> "INNER"
         | A.Left -> "LEFT"
         | A.Cross -> "CROSS")
        ^ if swap then " (forced swap)" else "")
      ~rows_in:(List.length l.src_tuples + List.length r.src_tuples)
      ~rows_out:(List.length tuples)
      ~batches:(batches_of (List.length tuples))
      ~t0:join_t0 ();
  Ok { src_layout = out_layout; src_tuples = tuples }
