(* EXPLAIN: a human-readable access-plan description.

   Real engines print bytecode (sqlite) or plan trees (postgres); this
   prints the planner's chosen access path per base table plus the
   pipeline stages, which is what the examples and the REPL need to make
   planner behaviour observable. *)

module A = Sqlast.Ast

let swap_forced ctx =
  match ctx.Executor.force with
  | Some f -> f.Executor.f_swap_join
  | None -> false

let rec from_lines ctx (item : A.from_item) ~where : string list =
  match item with
  | A.F_table { name; alias } -> (
      let label =
        match alias with Some a -> name ^ " AS " ^ a | None -> name
      in
      match Storage.Catalog.find_table ctx.Executor.catalog name with
      | Some ts ->
          let alias_name = Option.value ~default:name alias in
          let path, forced =
            match
              Executor.forced_path_for ctx ~alias:alias_name ~table:name ~where
            with
            | Some p -> (p, " (forced)")
            | None ->
                (* the same null-binding table-scoped env the executor
                   plans with: column collations must resolve identically
                   or EXPLAIN can print a different path than the one the
                   executor takes *)
                ( Planner.choose
                    (Executor.planner_env ctx ts.Storage.Catalog.schema
                       ~alias:alias_name)
                    ctx.Executor.catalog ts.Storage.Catalog.schema ~where,
                  "" )
          in
          [
            Printf.sprintf "SCAN %s USING %s%s" label (Planner.show_path path)
              forced;
          ]
      | None ->
          if Storage.Catalog.view_exists ctx.Executor.catalog name then
            [ Printf.sprintf "EXPAND VIEW %s" label ]
          else [ Printf.sprintf "SCAN %s (no such table)" label ])
  | A.F_join { kind; left; right; _ } ->
      let kw =
        match kind with
        | A.Inner -> "NESTED LOOP JOIN"
        | A.Left -> "NESTED LOOP LEFT JOIN"
        | A.Cross -> "NESTED LOOP CROSS JOIN"
      in
      let kw =
        match kind with
        | (A.Inner | A.Cross) when swap_forced ctx ->
            kw ^ " (forced swap)"
        | _ -> kw
      in
      from_lines ctx left ~where:None
      @ from_lines ctx right ~where:None
      @ [ kw ]
  | A.F_sub { alias; _ } -> [ Printf.sprintf "MATERIALIZE SUBQUERY AS %s" alias ]

let rec query_lines ctx (q : A.query) : string list =
  match q with
  | A.Q_values rows -> [ Printf.sprintf "VALUES (%d rows)" (List.length rows) ]
  | A.Q_compound (op, a, b) ->
      let kw =
        match op with
        | A.Union -> "UNION"
        | A.Union_all -> "UNION ALL"
        | A.Intersect -> "INTERSECT"
        | A.Except -> "EXCEPT"
      in
      query_lines ctx a @ query_lines ctx b @ [ "COMPOUND " ^ kw ]
  | A.Q_select s ->
      let scans =
        match s.A.sel_from with
        | [ single ] -> from_lines ctx single ~where:s.A.sel_where
        | items ->
            List.concat_map (fun it -> from_lines ctx it ~where:None) items
            @
            if List.length items = 2 && swap_forced ctx then
              [ "SWAP JOIN ORDER (forced)" ]
            else []
      in
      let stages =
        (if s.A.sel_group_by <> [] then [ "GROUP BY" ] else [])
        @ (if s.A.sel_having <> None then [ "FILTER HAVING" ] else [])
        @ (if s.A.sel_distinct then [ "DISTINCT" ] else [])
        @ (if s.A.sel_order_by <> [] then [ "SORT" ] else [])
        @
        if s.A.sel_limit <> None || s.A.sel_offset <> None then [ "LIMIT" ]
        else []
      in
      scans @ stages

let run ctx (q : A.query) : (Executor.result_set, Errors.t) result =
  Ok
    {
      Executor.rs_columns = [ "plan" ];
      rs_rows =
        List.map (fun l -> [| Sqlval.Value.Text l |]) (query_lines ctx q);
    }

(* EXPLAIN ANALYZE: execute the query under a private flight recorder and
   render the per-operator annotations it collected (rows in/out, B-tree
   visits, wall time) as plan lines, postgres-style.  [run] is the
   execution backend's query runner (default: the interpreter), so the
   plan annotations describe the backend the session actually uses. *)
let run_analyze ?(run = Executor.run_query) ctx (q : A.query) :
    (Executor.result_set, Errors.t) result =
  let recorder = Trace.create ~capacity:512 () in
  Trace.begin_round recorder ~seed:0 ~dialect:ctx.Executor.dialect;
  let ctx = { ctx with Executor.recorder } in
  let t0 = Telemetry.Clock.now_ns_int () in
  match run ctx q with
  | Error e -> Error e
  | Ok rs ->
      let total_ns = Telemetry.Clock.now_ns_int () - t0 in
      let ms ns = float_of_int ns /. 1e6 in
      let op_line (e : Trace.entry) =
        match e.Trace.event with
        | Trace.Event.Op
            { op; detail; rows_in; rows_out; batches; btree_nodes;
              btree_entries; dur_ns } ->
            let btree =
              if btree_nodes = 0 && btree_entries = 0 then ""
              else Printf.sprintf " btree=%d/%d" btree_nodes btree_entries
            in
            let batched =
              if batches <= 0 then ""
              else
                Printf.sprintf " batches=%d rows/batch=%.1f" batches
                  (float_of_int rows_out /. float_of_int batches)
            in
            let detail = if detail = "" then "" else " " ^ detail in
            Some
              (Printf.sprintf "%s%s (in=%d out=%d%s%s %.3f ms)" op detail
                 rows_in rows_out batched btree (ms dur_ns))
        | _ -> None
      in
      let lines = List.filter_map op_line (Trace.events recorder) in
      let lines =
        lines
        @ [
            Printf.sprintf "RESULT (rows=%d total=%.3f ms)"
              (List.length rs.Executor.rs_rows)
              (ms total_ns);
          ]
      in
      Ok
        {
          Executor.rs_columns = [ "plan" ];
          rs_rows = List.map (fun l -> [| Sqlval.Value.Text l |]) lines;
        }
