open Sqlval
module A = Sqlast.Ast

let ( let* ) = Result.bind

(* kind labels of minidb_statement_seconds / minidb_statements_total;
   indexed so per-statement recording goes through pre-resolved handles *)
let kind_names =
  [| "select"; "insert"; "update"; "delete"; "ddl"; "txn"; "explain"; "maint" |]

type t = {
  dialect : Dialect.t;
  catalog : Storage.Catalog.t;
  bugs : Bug.set;
  options : Options.t;
  coverage : Coverage.t option;
  telemetry : Telemetry.t;
  recorder : Trace.t;
  backend : Exec_backend.kind;
  run : Executor.ctx -> A.query -> (Executor.result_set, Errors.t) result;
      (* the backend's run_query, resolved once at creation *)
  exec_hist : Telemetry.histogram_handle;
  kind_handles :
    (Telemetry.histogram_handle * Telemetry.counter_handle) array;
  profile : Executor.profile;
  rng : Random.State.t;
  mutable txn_snapshot : Storage.Catalog.snapshot option;
  mutable stmt_count : int;
}

type exec_result =
  | Rows of Executor.result_set
  | Affected of int
  | Done

let pp_exec_result fmt = function
  | Rows rs -> Executor.pp_result_set fmt rs
  | Affected n -> Format.fprintf fmt "affected %d" n
  | Done -> Format.pp_print_string fmt "ok"

let create ?(seed = 42) ?(bugs = Bug.empty_set) ?coverage
    ?(telemetry = Telemetry.noop) ?(recorder = Trace.noop)
    ?(backend = Exec_backend.Interpreted) dialect =
  {
    dialect;
    catalog = Storage.Catalog.create ();
    bugs;
    options = Options.create dialect;
    coverage;
    telemetry;
    recorder;
    backend;
    run = Exec_backend.run_query backend;
    exec_hist =
      Telemetry.histogram_handle telemetry
        ~labels:[ ("phase", "execute") ]
        "minidb_phase_seconds";
    kind_handles =
      Array.map
        (fun kind ->
          ( Telemetry.histogram_handle telemetry
              ~labels:[ ("kind", kind) ]
              "minidb_statement_seconds",
            Telemetry.counter_handle telemetry
              ~labels:[ ("kind", kind) ]
              "minidb_statements_total" ))
        kind_names;
    profile = Executor.make_profile telemetry;
    rng = Random.State.make [| seed |];
    txn_snapshot = None;
    stmt_count = 0;
  }

let dialect t = t.dialect
let backend t = t.backend
let catalog t = t.catalog
let bugs t = t.bugs
let options t = t.options
let statements_executed t = t.stmt_count

let ctx t : Executor.ctx =
  {
    Executor.dialect = t.dialect;
    bugs = t.bugs;
    options = t.options;
    coverage = t.coverage;
    catalog = t.catalog;
    telemetry = t.telemetry;
    profile = t.profile;
    recorder = t.recorder;
    force = None;
  }

let table_names t = Storage.Catalog.table_names t.catalog
let view_names t = Storage.Catalog.view_names t.catalog

let cov t point =
  match t.coverage with None -> () | Some c -> Coverage.hit c point

let err code fmt = Errors.makef code fmt

(* Statements that read or write the database are rejected once the
   database is corrupted (paper: 'malformed database disk image' is always
   unexpected). *)
let touches_data = function
  | A.Begin_txn | A.Commit_txn | A.Rollback_txn | A.Set_option _ | A.Pragma _
  | A.Discard_all ->
      false
  | A.Create_table _ | A.Drop_table _ | A.Alter_table _ | A.Create_index _
  | A.Drop_index _ | A.Reindex _ | A.Create_view _ | A.Drop_view _
  | A.Insert _ | A.Update _ | A.Delete _ | A.Select_stmt _ | A.Vacuum _
  | A.Analyze _ | A.Check_table _ | A.Repair_table _ | A.Create_statistics _
  | A.Explain _ | A.Explain_analyze _ ->
      true

let set_option t ~global ~name ~value =
  cov t (match t.dialect with Dialect.Sqlite_like -> "maint.pragma" | _ -> "maint.set_option");
  let* () =
    match t.dialect with
    | Dialect.Sqlite_like ->
        Error (err Errors.Syntax_error "SET is not supported; use PRAGMA")
    | Dialect.Mysql_like | Dialect.Postgres_like -> Ok ()
  in
  (* Listing 3: SET GLOBAL key_cache_division_limit nondeterministically
     fails *)
  if
    Dialect.equal t.dialect Dialect.Mysql_like
    && Bug.on t.bugs Bug.My_set_key_cache_nondet
    && String.lowercase_ascii name = "key_cache_division_limit"
    && global
    && Random.State.int t.rng 4 = 0
  then
    Error
      (Errors.make Errors.Invalid_option
         "ERROR 1210 (HY000): Incorrect arguments to SET")
  else Options.set t.options name value

let pragma t ~name ~value =
  cov t "maint.pragma";
  let* () =
    match t.dialect with
    | Dialect.Sqlite_like -> Ok ()
    | Dialect.Mysql_like | Dialect.Postgres_like ->
        Error (err Errors.Syntax_error "PRAGMA is sqlite-specific")
  in
  match value with
  | None -> (
      match Options.get t.options name with
      | Some _ -> Ok ()
      | None -> Ok () (* unknown pragmas are silently ignored, like sqlite *))
  | Some v -> (
      match Options.set t.options name v with
      | Ok () -> Ok ()
      | Error _ -> Ok () (* sqlite ignores unknown pragmas *))

(* index into [kind_names], the [kind=...] dimension of
   minidb_statement_seconds / minidb_statements_total *)
let stmt_kind_index = function
  | A.Select_stmt _ -> 0
  | A.Insert _ -> 1
  | A.Update _ -> 2
  | A.Delete _ -> 3
  | A.Create_table _ | A.Drop_table _ | A.Alter_table _ | A.Create_index _
  | A.Drop_index _ | A.Create_view _ | A.Drop_view _ ->
      4
  | A.Begin_txn | A.Commit_txn | A.Rollback_txn -> 5
  | A.Explain _ | A.Explain_analyze _ -> 6
  | A.Reindex _ | A.Vacuum _ | A.Analyze _ | A.Check_table _
  | A.Repair_table _ | A.Create_statistics _ | A.Discard_all | A.Set_option _
  | A.Pragma _ ->
      7

let execute_raw t (stmt : A.stmt) : (exec_result, Errors.t) result =
  t.stmt_count <- t.stmt_count + 1;
  let c = ctx t in
  let* () =
    match Storage.Catalog.corruption t.catalog with
    | Some msg when touches_data stmt ->
        Error (Errors.make Errors.Malformed_database msg)
    | _ -> Ok ()
  in
  match stmt with
  | A.Create_table ct ->
      let* () = Ddl.create_table c ct in
      Ok Done
  | A.Drop_table { if_exists; name } ->
      let* () = Ddl.drop_table c ~if_exists name in
      Ok Done
  | A.Alter_table { table; action } ->
      let* () = Ddl.alter_table c table action in
      Ok Done
  | A.Create_index ci ->
      let* () = Ddl.create_index c ci in
      Ok Done
  | A.Drop_index { if_exists; name } ->
      let* () = Ddl.drop_index c ~if_exists name in
      Ok Done
  | A.Reindex target ->
      let* () = Maintenance.reindex c target in
      Ok Done
  | A.Create_view { name; query } ->
      let* () = Ddl.create_view c name query in
      Ok Done
  | A.Drop_view { if_exists; name } ->
      let* () = Ddl.drop_view c ~if_exists name in
      Ok Done
  | A.Insert { table; columns; rows; action } ->
      let* n = Dml.insert c ~table ~columns ~rows ~action in
      Ok (Affected n)
  | A.Update { table; assignments; where; action } ->
      let* n = Dml.update c ~table ~assignments ~where ~action in
      Ok (Affected n)
  | A.Delete { table; where } ->
      let* n = Dml.delete c ~table ~where in
      Ok (Affected n)
  | A.Select_stmt q ->
      let* rs = t.run c q in
      Ok (Rows rs)
  | A.Vacuum { full } ->
      let* () = Maintenance.vacuum c ~full in
      Ok Done
  | A.Analyze target ->
      let* () = Maintenance.analyze c target in
      Ok Done
  | A.Check_table { table; for_upgrade } ->
      let* () = Maintenance.check_table c ~table ~for_upgrade in
      Ok Done
  | A.Repair_table table ->
      let* () = Maintenance.repair_table c table in
      Ok Done
  | A.Set_option { global; name; value } ->
      let* () = set_option t ~global ~name ~value in
      Ok Done
  | A.Pragma { name; value } ->
      let* () = pragma t ~name ~value in
      Ok Done
  | A.Create_statistics { name; table; columns } ->
      let* () = Maintenance.create_statistics c ~name ~table ~columns in
      Ok Done
  | A.Discard_all ->
      let* () = Maintenance.discard_all c in
      Ok Done
  | A.Begin_txn ->
      cov t "maint.begin";
      if t.txn_snapshot <> None then
        Error (err Errors.Txn_state "cannot start a transaction within a transaction")
      else begin
        t.txn_snapshot <- Some (Storage.Catalog.snapshot t.catalog);
        Ok Done
      end
  | A.Commit_txn ->
      cov t "maint.commit";
      if t.txn_snapshot = None then
        Error (err Errors.Txn_state "cannot commit - no transaction is active")
      else begin
        t.txn_snapshot <- None;
        Ok Done
      end
  | A.Explain q ->
      cov t "admin.explain";
      let* rs = Explain.run c q in
      Ok (Rows rs)
  | A.Explain_analyze q ->
      cov t "admin.explain_analyze";
      let* rs = Explain.run_analyze ~run:t.run c q in
      Ok (Rows rs)
  | A.Rollback_txn -> (
      cov t "maint.rollback";
      match t.txn_snapshot with
      | None ->
          Error (err Errors.Txn_state "cannot rollback - no transaction is active")
      | Some snap ->
          Storage.Catalog.restore t.catalog snap;
          t.txn_snapshot <- None;
          Ok Done)

(* One clock pair covers the phase histogram, the per-kind latency
   histogram and the statement counter, all through handles resolved at
   session creation; the simulated SEGFAULT ([Errors.Crash]) still
   propagates and is still timed. *)
let execute t (stmt : A.stmt) : (exec_result, Errors.t) result =
  if not (Telemetry.enabled t.telemetry) then execute_raw t stmt
  else begin
    let kind_hist, kind_count = t.kind_handles.(stmt_kind_index stmt) in
    let record t0 =
      let dt = Telemetry.Clock.now () -. t0 in
      Telemetry.observe_handle t.exec_hist dt;
      Telemetry.observe_handle kind_hist dt;
      Telemetry.inc_handle kind_count
    in
    let t0 = Telemetry.Clock.now () in
    match execute_raw t stmt with
    | r ->
        record t0;
        r
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        record t0;
        Printexc.raise_with_backtrace e bt
  end

let plan_lines ?force t q =
  Explain.query_lines { (ctx t) with Executor.force } q

let query t q =
  match execute t (A.Select_stmt q) with
  | Ok (Rows rs) -> Ok rs
  | Ok _ -> Error (Errors.make Errors.Internal_error "query returned no rows")
  | Error e -> Error e

(* Plan-diff re-executions: run a query under a forced plan without going
   through [execute], so oracle re-runs neither count as campaign
   statements nor perturb the per-kind telemetry; coverage is stripped too,
   so forced runs can never add coverage hits a plain run would not. *)
let query_forced t ~force q =
  t.run { (ctx t) with Executor.force = Some force; coverage = None } q
