(** The execution-backend API.

    A backend is how a session turns a query AST into a result set.  Two
    implementations exist: the row-at-a-time tree-walking interpreter
    ({!Executor}), which is the reference semantics, and the
    closure-compiling batched executor ({!Compile}).  They are
    observably identical — same results, same errors, same coverage and
    operator events (modulo the compiled backend's non-zero batch
    counts) — which is itself checked differentially by tests and the
    campaign gate.

    Select a backend per {!Session} ([Session.create ~backend]) or per
    campaign ([--backend] on the CLI). *)

type kind = Interpreted | Compiled

val all : kind list

(** ["interpreted"] / ["compiled"]: the CLI and report spelling. *)
val name : kind -> string

val description : kind -> string

(** Parse a CLI spelling (case-insensitive; ["interp"]/["compile"]
    abbreviations accepted). *)
val of_name : string -> (kind, string) result

module type S = sig
  val name : string

  val run_query :
    Executor.ctx -> Sqlast.Ast.query -> (Executor.result_set, Errors.t) result
end

val of_kind : kind -> (module S)

(** [run_query kind] is [let (module B) = of_kind kind in B.run_query]. *)
val run_query :
  kind -> Executor.ctx -> Sqlast.Ast.query -> (Executor.result_set, Errors.t) result
