(** Access-path selection for single-table scans.

    The planner analyses the WHERE conjunction and picks an index probe,
    an index range scan, a LIKE-prefix range, a partial-index scan, a
    skip-scan, or an OR-union of probes; anything else falls back to the
    full table scan.  The executor re-applies the full WHERE filter to the
    candidate rows, so with no bugs enabled every path is sound (property
    tested: path candidates ⊇ matching rows).

    Injected planner defects mirror the paper's optimization bugs: the
    unsound [IS NOT x ⇒ NOT NULL] partial-index inference (Listing 1), the
    DESC-index strict-bound range bug, the OR-union early exit, and the
    skip-scan/DISTINCT interaction (Listing 6, completed in the executor). *)

open Sqlval

type bound = Value.t * bool (* value, inclusive *)

type path =
  | Full_scan
  | Index_eq of { index : Storage.Index.t; key : Value.t array }
  | Index_range of {
      index : Storage.Index.t;
      lo : bound option;
      hi : bound option;
    }
  | Index_like_prefix of { index : Storage.Index.t; prefix : string }
  | Partial_index_scan of { index : Storage.Index.t }
  | Skip_scan of { index : Storage.Index.t }
  | Or_union of path list

val pp_path : Format.formatter -> path -> unit
val show_path : path -> string

(** Structural identity of a path, including probe keys and range bounds
    ([show_path] omits both).  Two paths with equal signatures visit the
    same candidate rows. *)
val signature : path -> string

(** Stable lowercase label of the path constructor, used as the
    [path="..."] label of [minidb_plan_choices_total]. *)
val label : path -> string

(** Split an expression into its top-level AND conjuncts. *)
val conjuncts : Sqlast.Ast.expr -> Sqlast.Ast.expr list

(** Does the WHERE conjunction imply the partial index predicate?  The
    sound rules accept a syntactically equal conjunct and the
    equality-implies-NOT-NULL rule; the buggy rule (Listing 1) also accepts
    [c IS NOT lit]. *)
val implies_predicate :
  Eval.env -> where:Sqlast.Ast.expr list -> predicate:Sqlast.Ast.expr -> bool

val choose :
  Eval.env ->
  Storage.Catalog.t ->
  Storage.Schema.table ->
  where:Sqlast.Ast.expr option ->
  path

(** Every access path the engine could soundly take for this scan, the
    full scan always first and [signature]-deduplicated.  The skip-scan
    candidates are not gated on ANALYZE (any index read is a sound
    superset since the executor re-applies the WHERE filter), so the
    result is a superset of what [choose] can pick; it always contains
    [choose]'s answer for the same arguments.  Deterministic: depends
    only on the catalog, the schema and the WHERE clause. *)
val enumerate :
  Eval.env ->
  Storage.Catalog.t ->
  Storage.Schema.table ->
  where:Sqlast.Ast.expr option ->
  path list
