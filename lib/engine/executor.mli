(** Query execution: the SELECT pipeline.

    Single-table scans go through {!Planner} and always re-apply the WHERE
    filter to the candidate rows; joins are nested loops over the FROM
    cross product; views expand inline; GROUP BY/HAVING, DISTINCT, ORDER
    BY, LIMIT/OFFSET and the compound operators (UNION/INTERSECT/EXCEPT —
    INTERSECT being what PQS's containment check uses) complete the
    pipeline. *)

open Sqlval

type profile
(** Pre-resolved handles for the per-query engine counters (rows scanned,
    index rows, B-tree visits).  Resolved once per session — these fire
    several times per statement, so they must not pay a registry lookup
    each time.  From {!Telemetry.noop} every handle is inert. *)

val make_profile : Telemetry.t -> profile

(** A forced access path for one scan site, keyed by the lowercase
    effective alias, the lowercase base-table name and the scan's WHERE
    clause.  A path is only sound at a scan with the same schema and the
    same residual filter, so only an exact key match applies it. *)
type forced_site = {
  fs_alias : string;
  fs_table : string;
  fs_where : Sqlast.Ast.expr option;
  fs_path : Planner.path;
}

type forced = {
  f_sites : forced_site list;
  f_swap_join : bool;
      (** iterate two-table inner/cross joins (and two-item comma FROMs)
          right-major; binding order and projection are unchanged, only
          the scan order moves.  LEFT joins are never swapped. *)
}

(** No overrides: behaves exactly like [force = None]. *)
val no_force : forced

val show_forced : forced -> string

type ctx = {
  dialect : Dialect.t;
  bugs : Bug.set;
  options : Options.t;
  coverage : Coverage.t option;
  catalog : Storage.Catalog.t;
  telemetry : Telemetry.t;  (** {!Telemetry.noop} unless profiling *)
  profile : profile;
  recorder : Trace.t;
      (** flight recorder for plan/operator events; {!Trace.noop} unless a
          round is being traced *)
  force : forced option;
      (** plan-diff oracle: override the planner at matching scan sites;
          forced paths are annotated ["(forced)"] in EXPLAIN and traces *)
}

(** The forced path for a scan site, when one matches. *)
val forced_path_for :
  ctx ->
  alias:string ->
  table:string ->
  where:Sqlast.Ast.expr option ->
  Planner.path option

(** env whose resolver sees the table's columns with NULL values: what the
    planner needs (collation/affinity metadata, not row values). *)
val planner_env : ctx -> Storage.Schema.table -> alias:string -> Eval.env

type result_set = { rs_columns : string list; rs_rows : Value.t array list }

val pp_result_set : Format.formatter -> result_set -> unit

(** Does the result set contain this exact row (value equality)? *)
val result_contains : result_set -> Value.t list -> bool

val eval_env : ctx -> Eval.env

(** Canonical multiset key of a result row: the same encoding the engine
    uses for DISTINCT and the compound operators, so numeric values that
    compare equal (e.g. [1] and [1.0]) collapse to the same key. *)
val row_key : Value.t array -> string

val run_query : ctx -> Sqlast.Ast.query -> (result_set, Errors.t) result

(** Rows of one table including postgres-inherited children (projected onto
    the parent's columns), in scan order.  Shared with DML and maintenance. *)
val scan_table :
  ctx -> Storage.Catalog.table_state -> (Storage.Row.t * Storage.Schema.table) list

(** {1 Shared with the compiled backend}

    The pieces of the interpreted pipeline that {!Compile} reuses so the
    two execution backends share one definition of name resolution,
    scan-site bug injection, access-path choice and flight-recorder
    annotation. *)

(** One FROM-clause row source in scope: lowercase alias, column
    metadata, current row values. *)
type binding = {
  b_alias : string;
  b_columns : (string * Datatype.t * Collation.t) array;
  b_values : Value.t array;
}

val binding_of_table :
  Storage.Schema.table -> alias:string -> Value.t array -> binding

(** Column-reference resolution over in-scope bindings: qualified
    references must match an alias; unqualified references must match
    exactly one column across all bindings. *)
val resolve_in :
  binding list ->
  table:string option ->
  column:string ->
  (Eval.resolved, Errors.t) result

(** {!eval_env} with {!resolve_in} over the given bindings. *)
val env_for : ctx -> binding list -> Eval.env

(** Is the plan-diff join-order swap forced for this query?  (Applies to
    two-table inner/cross joins and two-item comma FROMs; see {!forced}.) *)
val swap_join_forced : ctx -> bool

(** Query-level facts the scan-site bug injections consult. *)
type from_ctx = {
  in_join : bool;
  cond_has_cast : bool;
  cond_has_ifnull : bool;
  distinct : bool;
}

val has_cast : Sqlast.Ast.expr -> bool
val has_ifnull : Sqlast.Ast.expr -> bool

(** Scan one base table under [where]: injected planner/index bug gates,
    access-path choice (honouring {!ctx.force}), rowid fetch, and the
    SCAN flight-recorder annotation.  Returns the rows (paired with the
    schema that typed each row) and whether a skip scan was used.
    [block_size] makes the SCAN operator event report batch counts (the
    compiled backend passes its block size; the interpreter omits it and
    reports [batches = 0]). *)
val scan_rows :
  ctx ->
  from_ctx ->
  where:Sqlast.Ast.expr option ->
  table:string ->
  alias:string ->
  ?block_size:int ->
  Storage.Catalog.table_state ->
  ((Storage.Row.t * Storage.Schema.table) list * bool, Errors.t) result

(** Output column names of a SELECT item list against a sample tuple
    (empty when the scan produced no rows, which is observable: [*]
    contributes no columns and [t.*] fails). *)
val output_columns :
  ctx -> binding list -> Sqlast.Ast.select_item list ->
  (string list, Errors.t) result

(** Whether the SELECT uses aggregation (GROUP BY, aggregate items, or an
    aggregate HAVING). *)
val select_has_agg : Sqlast.Ast.select -> bool

(** First-occurrence deduplication under {!row_key}. *)
val dedup_rows : Value.t array list -> Value.t array list

val tracing : ctx -> bool

(** A [Telemetry.Clock] reading when tracing, else [0]. *)
val op_clock : ctx -> int

(** Record an operator event on the flight recorder (no-op unless
    tracing).  [batches] is 0 for row-at-a-time operators. *)
val op_event :
  ctx ->
  op:string ->
  ?detail:string ->
  rows_in:int ->
  rows_out:int ->
  ?batches:int ->
  ?btree:int * int ->
  t0:int ->
  unit ->
  unit
