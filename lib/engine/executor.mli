(** Query execution: the SELECT pipeline.

    Single-table scans go through {!Planner} and always re-apply the WHERE
    filter to the candidate rows; joins are nested loops over the FROM
    cross product; views expand inline; GROUP BY/HAVING, DISTINCT, ORDER
    BY, LIMIT/OFFSET and the compound operators (UNION/INTERSECT/EXCEPT —
    INTERSECT being what PQS's containment check uses) complete the
    pipeline. *)

open Sqlval

type profile
(** Pre-resolved handles for the per-query engine counters (rows scanned,
    index rows, B-tree visits).  Resolved once per session — these fire
    several times per statement, so they must not pay a registry lookup
    each time.  From {!Telemetry.noop} every handle is inert. *)

val make_profile : Telemetry.t -> profile

type ctx = {
  dialect : Dialect.t;
  bugs : Bug.set;
  options : Options.t;
  coverage : Coverage.t option;
  catalog : Storage.Catalog.t;
  telemetry : Telemetry.t;  (** {!Telemetry.noop} unless profiling *)
  profile : profile;
  recorder : Trace.t;
      (** flight recorder for plan/operator events; {!Trace.noop} unless a
          round is being traced *)
}

type result_set = { rs_columns : string list; rs_rows : Value.t array list }

val pp_result_set : Format.formatter -> result_set -> unit

(** Does the result set contain this exact row (value equality)? *)
val result_contains : result_set -> Value.t list -> bool

val eval_env : ctx -> Eval.env

val run_query : ctx -> Sqlast.Ast.query -> (result_set, Errors.t) result

(** Rows of one table including postgres-inherited children (projected onto
    the parent's columns), in scan order.  Shared with DML and maintenance. *)
val scan_table :
  ctx -> Storage.Catalog.table_state -> (Storage.Row.t * Storage.Schema.table) list
