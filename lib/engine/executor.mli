(** Query execution: the SELECT pipeline.

    Single-table scans go through {!Planner} and always re-apply the WHERE
    filter to the candidate rows; joins are nested loops over the FROM
    cross product; views expand inline; GROUP BY/HAVING, DISTINCT, ORDER
    BY, LIMIT/OFFSET and the compound operators (UNION/INTERSECT/EXCEPT —
    INTERSECT being what PQS's containment check uses) complete the
    pipeline. *)

open Sqlval

type profile
(** Pre-resolved handles for the per-query engine counters (rows scanned,
    index rows, B-tree visits).  Resolved once per session — these fire
    several times per statement, so they must not pay a registry lookup
    each time.  From {!Telemetry.noop} every handle is inert. *)

val make_profile : Telemetry.t -> profile

(** A forced access path for one scan site, keyed by the lowercase
    effective alias, the lowercase base-table name and the scan's WHERE
    clause.  A path is only sound at a scan with the same schema and the
    same residual filter, so only an exact key match applies it. *)
type forced_site = {
  fs_alias : string;
  fs_table : string;
  fs_where : Sqlast.Ast.expr option;
  fs_path : Planner.path;
}

type forced = {
  f_sites : forced_site list;
  f_swap_join : bool;
      (** iterate two-table inner/cross joins (and two-item comma FROMs)
          right-major; binding order and projection are unchanged, only
          the scan order moves.  LEFT joins are never swapped. *)
}

(** No overrides: behaves exactly like [force = None]. *)
val no_force : forced

val show_forced : forced -> string

type ctx = {
  dialect : Dialect.t;
  bugs : Bug.set;
  options : Options.t;
  coverage : Coverage.t option;
  catalog : Storage.Catalog.t;
  telemetry : Telemetry.t;  (** {!Telemetry.noop} unless profiling *)
  profile : profile;
  recorder : Trace.t;
      (** flight recorder for plan/operator events; {!Trace.noop} unless a
          round is being traced *)
  force : forced option;
      (** plan-diff oracle: override the planner at matching scan sites;
          forced paths are annotated ["(forced)"] in EXPLAIN and traces *)
}

(** The forced path for a scan site, when one matches. *)
val forced_path_for :
  ctx ->
  alias:string ->
  table:string ->
  where:Sqlast.Ast.expr option ->
  Planner.path option

(** env whose resolver sees the table's columns with NULL values: what the
    planner needs (collation/affinity metadata, not row values). *)
val planner_env : ctx -> Storage.Schema.table -> alias:string -> Eval.env

type result_set = { rs_columns : string list; rs_rows : Value.t array list }

val pp_result_set : Format.formatter -> result_set -> unit

(** Does the result set contain this exact row (value equality)? *)
val result_contains : result_set -> Value.t list -> bool

val eval_env : ctx -> Eval.env

(** Canonical multiset key of a result row: the same encoding the engine
    uses for DISTINCT and the compound operators, so numeric values that
    compare equal (e.g. [1] and [1.0]) collapse to the same key. *)
val row_key : Value.t array -> string

val run_query : ctx -> Sqlast.Ast.query -> (result_set, Errors.t) result

(** Rows of one table including postgres-inherited children (projected onto
    the parent's columns), in scan order.  Shared with DML and maintenance. *)
val scan_table :
  ctx -> Storage.Catalog.table_state -> (Storage.Row.t * Storage.Schema.table) list
