open Sqlval

type t =
  | Sq_partial_index_implies_not_null
  | Sq_nocase_unique_pk_collapse
  | Sq_rtrim_compare_asymmetric
  | Sq_like_int_affinity_opt
  | Sq_skip_scan_distinct
  | Sq_text_int_subtract_real
  | Sq_is_not_true_null
  | Sq_partial_index_update_skip
  | Sq_nocase_like_case_sensitive
  | Sq_between_collate_ignored
  | Sq_glob_range_exclusive
  | Sq_affinity_compare_skip
  | Sq_desc_index_range
  | Sq_view_distinct_pushdown
  | Sq_null_in_list_false
  | Sq_case_null_when
  | Sq_or_index_dedup
  | Sq_vacuum_index_desync
  | Sq_pragma_like_index_vacuum
  | Sq_real_pk_or_replace_corrupt
  | Sq_reindex_rtrim_unique
  | Sq_alter_rename_expr_index
  | Sq_blob_pk_without_rowid_corrupt
  | Sq_vacuum_partial_index_corrupt
  | Sq_or_replace_two_unique_corrupt
  | Sq_agg_collate_crash
  | Sq_intended_pragma_vacuum
  | Sq_intended_typeof_affinity
  | Sq_dup_like_opt_nocase
  | My_memory_join_cast
  | My_unsigned_cast_signed_compare
  | My_null_safe_eq_out_of_range
  | My_text_double_bool_trunc
  | My_double_negation_fold
  | My_least_mixed_types
  | My_set_key_cache_nondet
  | My_repair_marks_crashed
  | My_check_table_false_corrupt
  | My_csv_engine_update_error
  | My_check_upgrade_expr_index_crash
  | My_intended_ignore_clamp
  | My_dup_unsigned_compare
  | My_dup_memory_join
  | Pg_inherit_group_by_dedup
  | Pg_stats_expr_index_bitmapset
  | Pg_index_null_value_error
  | Pg_reindex_deadlock
  | Pg_stats_analyze_crash
  | Pg_intended_vacuum_overflow
  | Pg_intended_vacuum_full_deadlock
  | Pg_intended_bool_cast_error
  | Pg_dup_bitmapset_crash
  | Pg_dup_index_null_error
  (* --- sqlite-like: constant-folding bugs (const-opt oracle) --- *)
  | Sq_fold_null_and
  | Sq_fold_affinity_cmp
  | Sq_fold_not_null_true
[@@deriving show { with_path = false }, eq, enum]

let all =
  let rec build i acc =
    if i < min then acc
    else
      match of_enum i with
      | Some b -> build (i - 1) (b :: acc)
      | None -> build (i - 1) acc
  in
  build max []

type oracle_class = O_containment | O_error | O_crash
[@@deriving show { with_path = false }, eq]

type status = Fixed | Verified | Intended | Duplicate
[@@deriving show { with_path = false }, eq]

type info = {
  dialect : Dialect.t;
  oracle : oracle_class;
  status : status;
  paper_ref : string;
  summary : string;
}

let sq = Dialect.Sqlite_like
let my = Dialect.Mysql_like
let pg = Dialect.Postgres_like

let mk dialect oracle status paper_ref summary =
  { dialect; oracle; status; paper_ref; summary }

let info = function
  | Sq_partial_index_implies_not_null ->
      mk sq O_containment Fixed "Listing 1"
        "planner assumes `c IS NOT x` implies `c NOT NULL` and uses a \
         partial index, dropping the NULL pivot row"
  | Sq_nocase_unique_pk_collapse ->
      mk sq O_containment Fixed "Listing 4"
        "WITHOUT ROWID primary key probes fold case when a NOCASE index \
         exists on the column, collapsing 'A' and 'a'"
  | Sq_rtrim_compare_asymmetric ->
      mk sq O_containment Fixed "Listing 5"
        "RTRIM collation trims only the left comparison operand"
  | Sq_like_int_affinity_opt ->
      mk sq O_containment Fixed "Listing 7"
        "LIKE optimization on an INTEGER-affinity column compares the \
         numeric prefix instead of the text"
  | Sq_skip_scan_distinct ->
      mk sq O_containment Fixed "Listing 6"
        "skip-scan under DISTINCT after ANALYZE deduplicates by the first \
         index column only"
  | Sq_text_int_subtract_real ->
      mk sq O_containment Fixed "Listing 2"
        "TEXT minus INTEGER routed through double precision, losing \
         low-order bits of large integers"
  | Sq_is_not_true_null ->
      mk sq O_containment Fixed "Sec. 1 (IS NOT semantics)"
        "`x IS NOT TRUE` yields FALSE for NULL operands instead of TRUE"
  | Sq_partial_index_update_skip ->
      mk sq O_containment Fixed "Sec. 4.4 (index bugs)"
        "UPDATE does not re-evaluate partial-index membership, leaving \
         stale entries that index scans trust"
  | Sq_nocase_like_case_sensitive ->
      mk sq O_containment Fixed "Sec. 4.4 (COLLATE bugs)"
        "LIKE on a NOCASE column becomes case sensitive"
  | Sq_between_collate_ignored ->
      mk sq O_containment Fixed "Sec. 4.4 (COLLATE bugs)"
        "BETWEEN ignores the column collation for text bounds"
  | Sq_glob_range_exclusive ->
      mk sq O_containment Fixed "Sec. 4.4"
        "GLOB character classes treat the range upper bound as exclusive"
  | Sq_affinity_compare_skip ->
      mk sq O_containment Fixed "Sec. 4.4 (type flexibility)"
        "comparisons skip applying INTEGER affinity to text operands"
  | Sq_desc_index_range ->
      mk sq O_containment Fixed "Sec. 4.4 (index bugs)"
        "range scans over DESC indexes drop rows for strict bounds"
  | Sq_view_distinct_pushdown ->
      mk sq O_containment Fixed "Sec. 4.2 (VIEWs tested)"
        "WHERE pushdown into a DISTINCT view filters before deduplication"
  | Sq_null_in_list_false ->
      mk sq O_containment Fixed "Sec. 3.2 (three-valued logic)"
        "IN returns FALSE instead of NULL when the list contains NULL and \
         nothing matches"
  | Sq_case_null_when ->
      mk sq O_containment Fixed "Sec. 3.2"
        "CASE treats a NULL condition as satisfied"
  | Sq_or_index_dedup ->
      mk sq O_containment Fixed "Sec. 4.4 (incorrect optimizations)"
        "OR handled as an index-scan union skips the second branch whenever \
         the first matched anything"
  | Sq_vacuum_index_desync ->
      mk sq O_containment Fixed "Sec. 4.3 (VACUUM error prone)"
        "VACUUM renumbers rowids without rebuilding indexes, so index scans \
         resolve to missing rows"
  | Sq_pragma_like_index_vacuum ->
      mk sq O_error Fixed "Listing 9"
        "VACUUM reports 'malformed database schema' when a LIKE expression \
         index meets a changed case_sensitive_like pragma"
  | Sq_real_pk_or_replace_corrupt ->
      mk sq O_error Fixed "Listing 10"
        "UPDATE OR REPLACE on a REAL primary key corrupts the database \
         ('database disk image is malformed')"
  | Sq_reindex_rtrim_unique ->
      mk sq O_error Fixed "Sec. 4.4 (REINDEX bugs)"
        "REINDEX rebuilds RTRIM unique keys untrimmed and reports a \
         spurious 'UNIQUE constraint failed'"
  | Sq_alter_rename_expr_index ->
      mk sq O_error Fixed "Listing 8"
        "ALTER TABLE RENAME COLUMN leaves expression indexes referring to \
         the old name; the next REINDEX reports a malformed schema"
  | Sq_blob_pk_without_rowid_corrupt ->
      mk sq O_error Fixed "Sec. 4.4"
        "inserting a BLOB key into a WITHOUT ROWID real-affinity primary \
         key corrupts the database image"
  | Sq_vacuum_partial_index_corrupt ->
      mk sq O_error Fixed "Sec. 4.3"
        "VACUUM with a partial index present corrupts the database image"
  | Sq_or_replace_two_unique_corrupt ->
      mk sq O_error Fixed "Sec. 4.4"
        "OR REPLACE resolving conflicts on two unique indexes at once \
         corrupts the database image"
  | Sq_agg_collate_crash ->
      mk sq O_crash Fixed "Sec. 4.2 (crash bugs)"
        "MIN/MAX over a COLLATE expression dereferences a stale collation \
         pointer (simulated SEGFAULT)"
  | Sq_intended_pragma_vacuum ->
      mk sq O_error Intended "Listing 9 discussion"
        "PRAGMA-dependent schema semantics reported as a defect; developers \
         documented it as a design limitation"
  | Sq_intended_typeof_affinity ->
      mk sq O_containment Intended "Sec. 4.2 (intended behaviour)"
        "TYPEOF after affinity conversion differs from the declared type; \
         works as documented"
  | Sq_dup_like_opt_nocase ->
      mk sq O_containment Duplicate "Sec. 4.4 (4 LIKE bugs)"
        "second manifestation of the LIKE optimization defect, via NOCASE; \
         closed as duplicate"
  | My_memory_join_cast ->
      mk my O_containment Fixed "Listing 11"
        "rows of MEMORY-engine tables are skipped in joins whose condition \
         contains a CAST"
  | My_unsigned_cast_signed_compare ->
      mk my O_containment Fixed "Listing 11"
        "CAST(x AS UNSIGNED) results compare with signed semantics"
  | My_null_safe_eq_out_of_range ->
      mk my O_containment Verified "Listing 12"
        "<=> against a constant exceeding the column type's range yields \
         NULL instead of FALSE"
  | My_text_double_bool_trunc ->
      mk my O_containment Verified "Sec. 4.5 (value range bugs)"
        "small doubles stored in TEXT evaluate to FALSE in boolean contexts \
         (truncated to integer)"
  | My_double_negation_fold ->
      mk my O_containment Verified "Listing 13"
        "NOT(NOT x) is folded away although x is not boolean"
  | My_least_mixed_types ->
      mk my O_containment Fixed "Sec. 4.5"
        "LEAST/GREATEST with mixed numeric and text operands compare \
         lexicographically"
  | My_set_key_cache_nondet ->
      mk my O_error Fixed "Listing 3"
        "SET GLOBAL key_cache_division_limit nondeterministically fails \
         with 'Incorrect arguments to SET'"
  | My_repair_marks_crashed ->
      mk my O_error Fixed "Sec. 4.3 (REPAIR TABLE)"
        "REPAIR TABLE reports 'Table is marked as crashed' on a healthy \
         table"
  | My_check_table_false_corrupt ->
      mk my O_error Verified "Sec. 4.3 (CHECK TABLE)"
        "CHECK TABLE reports corruption for tables with NULL-bearing \
         unique indexes"
  | My_csv_engine_update_error ->
      mk my O_error Verified "Sec. 2 (CSV engine)"
        "UPDATE on a CSV-engine table fails with an internal storage-engine \
         error"
  | My_check_upgrade_expr_index_crash ->
      mk my O_crash Fixed "Listing 14 / CVE-2019-2879"
        "CHECK TABLE ... FOR UPGRADE crashes when the table has an \
         expression index"
  | My_intended_ignore_clamp ->
      mk my O_error Intended "Sec. 4.5"
        "INSERT IGNORE clamps out-of-range values with only a warning; \
         reported, works as intended"
  | My_dup_unsigned_compare ->
      mk my O_containment Duplicate "Sec. 4.5 (unsigned bugs)"
        "second unsigned-comparison manifestation; closed as duplicate"
  | My_dup_memory_join ->
      mk my O_containment Duplicate "Sec. 4.5 (engine bugs)"
        "MEMORY-engine row loss re-reported through IFNULL; duplicate"
  | Pg_inherit_group_by_dedup ->
      mk pg O_containment Fixed "Listing 15"
        "GROUP BY assumes the parent's PRIMARY KEY holds across inherited \
         tables and merges distinct rows"
  | Pg_stats_expr_index_bitmapset ->
      mk pg O_error Fixed "Listing 16"
        "extended statistics plus an expression index make the planner \
         fail with 'negative bitmapset member not allowed'"
  | Pg_index_null_value_error ->
      mk pg O_error Fixed "Listing 17"
        "an index built after UPDATE of NULL-bearing rows trips 'found \
         unexpected null value in index' during comparisons"
  | Pg_reindex_deadlock ->
      mk pg O_error Verified "Sec. 4.6"
        "REINDEX reports 'deadlock detected' without concurrent activity"
  | Pg_stats_analyze_crash ->
      mk pg O_crash Verified "Sec. 4.6 (crash duplicates)"
        "ANALYZE crashes when extended statistics cover a boolean \
         expression column"
  | Pg_intended_vacuum_overflow ->
      mk pg O_error Intended "Listing 18"
        "VACUUM FULL fails with 'integer out of range' via an expression \
         index; developers declined to change it"
  | Pg_intended_vacuum_full_deadlock ->
      mk pg O_error Intended "Sec. 4.6 (false positives)"
        "routine VACUUM FULL under load deadlocks; usage discouraged \
         instead of fixed"
  | Pg_intended_bool_cast_error ->
      mk pg O_error Intended "Sec. 5 (strict typing)"
        "casting malformed text to boolean errors; strictness is intended"
  | Pg_dup_bitmapset_crash ->
      mk pg O_crash Duplicate "Sec. 4.6 (Listing 16 duplicates)"
        "crash with the same 'negative bitmapset member' root cause; \
         duplicate"
  | Pg_dup_index_null_error ->
      mk pg O_error Duplicate "Sec. 4.6"
        "second trigger of the unexpected-NULL index error; duplicate"
  | Sq_fold_null_and ->
      mk sq O_containment Fixed "Sec. 6 (CODDTest extension)"
        "constant folder rewrites `NULL AND x` to NULL without checking \
         whether x is FALSE, so `NULL AND FALSE` evaluates to NULL \
         instead of FALSE on literal operands"
  | Sq_fold_affinity_cmp ->
      mk sq O_containment Fixed "Sec. 6 (CODDTest extension)"
        "constant folder applies NUMERIC affinity to a text literal \
         compared against a numeric literal, although literals carry no \
         affinity; 'abc' > 5 folds via 0 > 5"
  | Sq_fold_not_null_true ->
      mk sq O_containment Verified "Sec. 6 (CODDTest extension)"
        "constant folder simplifies `NOT NULL` to TRUE (treating NULL as \
         FALSE) instead of propagating NULL"

let is_true_bug b =
  match (info b).status with
  | Fixed | Verified -> true
  | Intended | Duplicate -> false

let of_string s =
  List.find_opt (fun b -> String.lowercase_ascii (show b) = String.lowercase_ascii s) all

let for_dialect d = List.filter (fun b -> Dialect.equal (info b).dialect d) all

type set = bool array (* indexed by to_enum *)

let empty_set : set = Array.make (max + 1) false

let set_of_list bugs =
  let s = Array.make (max + 1) false in
  List.iter (fun b -> s.(to_enum b) <- true) bugs;
  s

let singleton b = set_of_list [ b ]
let on (s : set) b = s.(to_enum b)

let to_list (s : set) =
  List.filter (fun b -> s.(to_enum b)) all
