open Sqlval
module A = Sqlast.Ast

type error = { message : string; position : int }

let pp_error fmt e =
  Format.fprintf fmt "parse error at token %d: %s" e.position e.message

let show_error e = Format.asprintf "%a" pp_error e

exception Fail of string * int

type state = { tokens : Lexer.token array; mutable pos : int }

let cur st = st.tokens.(st.pos)
let peek st k =
  if st.pos + k < Array.length st.tokens then st.tokens.(st.pos + k)
  else Lexer.EOF

let advance st = st.pos <- st.pos + 1
let fail st msg = raise (Fail (msg, st.pos))

let eat_kw st kw =
  match cur st with
  | Lexer.KEYWORD k when k = kw -> advance st
  | t -> fail st (Printf.sprintf "expected %s, found %s" kw (Lexer.show_token t))

let try_kw st kw =
  match cur st with
  | Lexer.KEYWORD k when k = kw ->
      advance st;
      true
  | _ -> false

let eat_op st op =
  match cur st with
  | Lexer.OP o when o = op -> advance st
  | t -> fail st (Printf.sprintf "expected %s, found %s" op (Lexer.show_token t))

let try_op st op =
  match cur st with
  | Lexer.OP o when o = op ->
      advance st;
      true
  | _ -> false

let ident st =
  match cur st with
  | Lexer.IDENT s ->
      advance st;
      s
  | t -> fail st ("expected identifier, found " ^ Lexer.show_token t)

(* ------------------------------------------------------------------ *)
(* Types                                                                *)

let parse_type st : Datatype.t =
  let word () =
    match cur st with
    | Lexer.IDENT s ->
        advance st;
        String.uppercase_ascii s
    | Lexer.KEYWORD ("UNSIGNED" | "SIGNED") as t -> (
        match t with
        | Lexer.KEYWORD k ->
            advance st;
            k
        | _ -> assert false)
    | t -> fail st ("expected type name, found " ^ Lexer.show_token t)
  in
  let base = word () in
  let full =
    match cur st with
    | Lexer.KEYWORD "UNSIGNED" ->
        advance st;
        base ^ " UNSIGNED"
    | Lexer.IDENT s when String.uppercase_ascii s = "PRECISION" ->
        (* DOUBLE PRECISION *)
        advance st;
        base
    | _ -> base
  in
  match full with
  | "UNSIGNED" -> Datatype.Int { width = Datatype.Big; unsigned = true }
  | "SIGNED" -> Datatype.Int { width = Datatype.Big; unsigned = false }
  | "NUMERIC" -> Datatype.Any
  | s -> (
      match Datatype.of_sql s with
      | Some t -> t
      | None -> fail st ("unknown type: " ^ s))

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)

let func_of_name = function
  | "ABS" -> Some A.F_abs
  | "LENGTH" -> Some A.F_length
  | "LOWER" -> Some A.F_lower
  | "UPPER" -> Some A.F_upper
  | "COALESCE" -> Some A.F_coalesce
  | "IFNULL" -> Some A.F_ifnull
  | "NULLIF" -> Some A.F_nullif
  | "TYPEOF" -> Some A.F_typeof
  | "TRIM" -> Some A.F_trim
  | "LTRIM" -> Some A.F_ltrim
  | "RTRIM" -> Some A.F_rtrim
  | "SUBSTR" | "SUBSTRING" -> Some A.F_substr
  | "REPLACE" -> Some A.F_replace
  | "INSTR" -> Some A.F_instr
  | "HEX" -> Some A.F_hex
  | "ROUND" -> Some A.F_round
  | "SIGN" -> Some A.F_sign
  | "LEAST" -> Some A.F_least
  | "GREATEST" -> Some A.F_greatest
  | "QUOTE" -> Some A.F_quote
  | _ -> None

let agg_of_name = function
  | "COUNT" -> Some A.A_count
  | "SUM" -> Some A.A_sum
  | "AVG" -> Some A.A_avg
  | "MIN" -> Some A.A_min
  | "MAX" -> Some A.A_max
  | "TOTAL" -> Some A.A_total
  | _ -> None

let rec parse_expr_or st : A.expr =
  let lhs = parse_expr_and st in
  if try_kw st "OR" then A.Binary (A.Or, lhs, parse_expr_or st) else lhs

and parse_expr_and st : A.expr =
  let lhs = parse_expr_not st in
  if try_kw st "AND" then A.Binary (A.And, lhs, parse_expr_and st) else lhs

and parse_expr_not st : A.expr =
  if try_kw st "NOT" then A.Unary (A.Not, parse_expr_not st)
  else parse_expr_cmp st

and parse_expr_cmp st : A.expr =
  let lhs = parse_expr_bit st in
  let rec postfix lhs =
    match cur st with
    | Lexer.OP "=" | Lexer.OP "==" ->
        advance st;
        postfix (A.Binary (A.Eq, lhs, parse_expr_bit st))
    | Lexer.OP "<>" | Lexer.OP "!=" ->
        advance st;
        postfix (A.Binary (A.Neq, lhs, parse_expr_bit st))
    | Lexer.OP "<=" ->
        advance st;
        postfix (A.Binary (A.Le, lhs, parse_expr_bit st))
    | Lexer.OP ">=" ->
        advance st;
        postfix (A.Binary (A.Ge, lhs, parse_expr_bit st))
    | Lexer.OP "<" ->
        advance st;
        postfix (A.Binary (A.Lt, lhs, parse_expr_bit st))
    | Lexer.OP ">" ->
        advance st;
        postfix (A.Binary (A.Gt, lhs, parse_expr_bit st))
    | Lexer.OP "<=>" ->
        advance st;
        postfix (A.Binary (A.Null_safe_eq, lhs, parse_expr_bit st))
    | Lexer.KEYWORD "IS" -> (
        advance st;
        let negated = try_kw st "NOT" in
        match cur st with
        | Lexer.KEYWORD "NULL" ->
            advance st;
            postfix (A.Is { negated; arg = lhs; rhs = A.Is_null })
        | Lexer.KEYWORD "TRUE" ->
            advance st;
            postfix (A.Is { negated; arg = lhs; rhs = A.Is_true })
        | Lexer.KEYWORD "FALSE" ->
            advance st;
            postfix (A.Is { negated; arg = lhs; rhs = A.Is_false })
        | Lexer.KEYWORD "DISTINCT" ->
            advance st;
            eat_kw st "FROM";
            let rhs = parse_expr_bit st in
            if negated then postfix (A.Binary (A.Null_safe_eq, lhs, rhs))
            else
              postfix
                (A.Is { negated = false; arg = lhs; rhs = A.Is_distinct_from rhs })
        | _ ->
            let rhs = parse_expr_bit st in
            if negated then
              postfix (A.Is { negated = true; arg = lhs; rhs = A.Is_expr rhs })
            else postfix (A.Binary (A.Null_safe_eq, lhs, rhs)))
    | Lexer.KEYWORD "IN" ->
        advance st;
        eat_op st "(";
        let list = parse_expr_list st in
        eat_op st ")";
        postfix (A.In_list { negated = false; arg = lhs; list })
    | Lexer.KEYWORD "LIKE" ->
        advance st;
        let pattern = parse_expr_bit st in
        let escape =
          if try_kw st "ESCAPE" then Some (parse_expr_bit st) else None
        in
        postfix (A.Like { negated = false; arg = lhs; pattern; escape })
    | Lexer.KEYWORD "GLOB" ->
        advance st;
        let pattern = parse_expr_bit st in
        postfix (A.Glob { negated = false; arg = lhs; pattern })
    | Lexer.KEYWORD "BETWEEN" ->
        advance st;
        let lo = parse_expr_bit st in
        eat_kw st "AND";
        let hi = parse_expr_bit st in
        postfix (A.Between { negated = false; arg = lhs; lo; hi })
    | Lexer.KEYWORD "NOT" when peek st 1 = Lexer.KEYWORD "NULL" ->
        (* sqlite's postfix "expr NOT NULL" (Listing 1 uses it) *)
        advance st;
        advance st;
        postfix (A.Is { negated = true; arg = lhs; rhs = A.Is_null })
    | Lexer.KEYWORD "NOT" -> (
        (* a NOT IN / NOT LIKE / NOT GLOB / NOT BETWEEN *)
        match peek st 1 with
        | Lexer.KEYWORD ("IN" | "LIKE" | "GLOB" | "BETWEEN") -> (
            advance st;
            match cur st with
            | Lexer.KEYWORD "IN" ->
                advance st;
                eat_op st "(";
                let list = parse_expr_list st in
                eat_op st ")";
                postfix (A.In_list { negated = true; arg = lhs; list })
            | Lexer.KEYWORD "LIKE" ->
                advance st;
                let pattern = parse_expr_bit st in
                let escape =
                  if try_kw st "ESCAPE" then Some (parse_expr_bit st) else None
                in
                postfix (A.Like { negated = true; arg = lhs; pattern; escape })
            | Lexer.KEYWORD "GLOB" ->
                advance st;
                let pattern = parse_expr_bit st in
                postfix (A.Glob { negated = true; arg = lhs; pattern })
            | Lexer.KEYWORD "BETWEEN" ->
                advance st;
                let lo = parse_expr_bit st in
                eat_kw st "AND";
                let hi = parse_expr_bit st in
                postfix (A.Between { negated = true; arg = lhs; lo; hi })
            | _ -> assert false)
        | _ -> lhs)
    | _ -> lhs
  in
  postfix lhs

and parse_expr_bit st : A.expr =
  let lhs = parse_expr_add st in
  let rec go lhs =
    match cur st with
    | Lexer.OP "&" ->
        advance st;
        go (A.Binary (A.Bit_and, lhs, parse_expr_add st))
    | Lexer.OP "|" ->
        advance st;
        go (A.Binary (A.Bit_or, lhs, parse_expr_add st))
    | Lexer.OP "<<" ->
        advance st;
        go (A.Binary (A.Shift_left, lhs, parse_expr_add st))
    | Lexer.OP ">>" ->
        advance st;
        go (A.Binary (A.Shift_right, lhs, parse_expr_add st))
    | _ -> lhs
  in
  go lhs

and parse_expr_add st : A.expr =
  let lhs = parse_expr_mul st in
  let rec go lhs =
    match cur st with
    | Lexer.OP "+" ->
        advance st;
        go (A.Binary (A.Add, lhs, parse_expr_mul st))
    | Lexer.OP "-" ->
        advance st;
        go (A.Binary (A.Sub, lhs, parse_expr_mul st))
    | _ -> lhs
  in
  go lhs

and parse_expr_mul st : A.expr =
  let lhs = parse_expr_concat st in
  let rec go lhs =
    match cur st with
    | Lexer.OP "*" ->
        advance st;
        go (A.Binary (A.Mul, lhs, parse_expr_concat st))
    | Lexer.OP "/" ->
        advance st;
        go (A.Binary (A.Div, lhs, parse_expr_concat st))
    | Lexer.OP "%" ->
        advance st;
        go (A.Binary (A.Rem, lhs, parse_expr_concat st))
    | _ -> lhs
  in
  go lhs

and parse_expr_concat st : A.expr =
  let lhs = parse_expr_unary st in
  if try_op st "||" then A.Binary (A.Concat, lhs, parse_expr_concat st)
  else lhs

and parse_expr_unary st : A.expr =
  match cur st with
  | Lexer.OP "-" -> (
      (* fold a directly negated numeric literal so that "-426" parses as
         the literal it was printed from; postfix COLLATE still applies *)
      match peek st 1 with
      | Lexer.INT i when i <> Int64.min_int ->
          advance st;
          advance st;
          collate_loop st (A.Lit (Value.Int (Int64.neg i)))
      | Lexer.FLOAT f when f = 9.223372036854775808e18 ->
          (* "-9223372036854775808": the magnitude does not fit int64 so it
             lexed as a float, but the negated value is exactly min_int *)
          advance st;
          advance st;
          collate_loop st (A.Lit (Value.Int Int64.min_int))
      | Lexer.FLOAT f ->
          advance st;
          advance st;
          collate_loop st (A.Lit (Value.Real (-.f)))
      | _ ->
          advance st;
          A.Unary (A.Neg, parse_expr_unary st))
  | Lexer.OP "+" ->
      advance st;
      A.Unary (A.Pos, parse_expr_unary st)
  | Lexer.OP "~" ->
      advance st;
      A.Unary (A.Bit_not, parse_expr_unary st)
  | _ -> parse_expr_postfix st

and parse_expr_postfix st : A.expr = collate_loop st (parse_expr_primary st)

and collate_loop st e : A.expr =
  if try_kw st "COLLATE" then begin
    let name = ident st in
    match Collation.of_keyword name with
    | Some c -> collate_loop st (A.Collate (e, c))
    | None -> fail st ("unknown collation: " ^ name)
  end
  else e

and parse_expr_list st : A.expr list =
  let first = parse_expr_or st in
  let rec go acc =
    if try_op st "," then go (parse_expr_or st :: acc) else List.rev acc
  in
  go [ first ]

and parse_expr_primary st : A.expr =
  match cur st with
  | Lexer.INT i ->
      advance st;
      A.Lit (Value.Int i)
  | Lexer.FLOAT f ->
      advance st;
      A.Lit (Value.Real f)
  | Lexer.STRING s ->
      advance st;
      A.Lit (Value.Text s)
  | Lexer.BLOB b ->
      advance st;
      A.Lit (Value.Blob b)
  | Lexer.KEYWORD "NULL" ->
      advance st;
      A.Lit Value.Null
  | Lexer.KEYWORD "TRUE" ->
      advance st;
      A.Lit (Value.Bool true)
  | Lexer.KEYWORD "FALSE" ->
      advance st;
      A.Lit (Value.Bool false)
  | Lexer.OP "(" ->
      advance st;
      let e = parse_expr_or st in
      eat_op st ")";
      e
  | Lexer.KEYWORD "CAST" ->
      advance st;
      eat_op st "(";
      let e = parse_expr_or st in
      eat_kw st "AS";
      let ty = parse_type st in
      eat_op st ")";
      A.Cast (ty, e)
  | Lexer.KEYWORD "CASE" ->
      advance st;
      let operand =
        match cur st with
        | Lexer.KEYWORD "WHEN" -> None
        | _ -> Some (parse_expr_or st)
      in
      let rec branches acc =
        if try_kw st "WHEN" then begin
          let c = parse_expr_or st in
          eat_kw st "THEN";
          let r = parse_expr_or st in
          branches ((c, r) :: acc)
        end
        else List.rev acc
      in
      let branches = branches [] in
      let else_ = if try_kw st "ELSE" then Some (parse_expr_or st) else None in
      eat_kw st "END";
      A.Case { operand; branches; else_ }
  | Lexer.KEYWORD "REPLACE" when peek st 1 = Lexer.OP "(" ->
      (* REPLACE is both a keyword (INSERT OR REPLACE) and a function *)
      advance st;
      eat_op st "(";
      let args = parse_expr_list st in
      eat_op st ")";
      A.Func (A.F_replace, args)
  | Lexer.IDENT name when peek st 1 = Lexer.OP "(" -> (
      let upper = String.uppercase_ascii name in
      advance st;
      eat_op st "(";
      if upper = "COUNT" && try_op st "*" then begin
        eat_op st ")";
        A.Agg (A.A_count_star, None)
      end
      else
        match agg_of_name upper with
        | Some agg ->
            let arg = parse_expr_or st in
            eat_op st ")";
            A.Agg (agg, Some arg)
        | None -> (
            match func_of_name upper with
            | Some f ->
                let args =
                  match cur st with
                  | Lexer.OP ")" -> []
                  | _ -> parse_expr_list st
                in
                eat_op st ")";
                A.Func (f, args)
            | None -> fail st ("unknown function: " ^ name)))
  | Lexer.IDENT name -> (
      advance st;
      if try_op st "." then
        let column = ident st in
        A.Col { table = Some name; column }
      else A.Col { table = None; column = name })
  | t -> fail st ("unexpected token in expression: " ^ Lexer.show_token t)

(* ------------------------------------------------------------------ *)
(* Queries                                                              *)

let rec parse_query st : A.query =
  let first = parse_query_atom st in
  let rec go lhs =
    match cur st with
    | Lexer.KEYWORD "UNION" ->
        advance st;
        let op = if try_kw st "ALL" then A.Union_all else A.Union in
        go (A.Q_compound (op, lhs, parse_query_atom st))
    | Lexer.KEYWORD "INTERSECT" ->
        advance st;
        go (A.Q_compound (A.Intersect, lhs, parse_query_atom st))
    | Lexer.KEYWORD "EXCEPT" ->
        advance st;
        go (A.Q_compound (A.Except, lhs, parse_query_atom st))
    | _ -> lhs
  in
  go first

and parse_query_atom st : A.query =
  match cur st with
  | Lexer.KEYWORD "SELECT" -> A.Q_select (parse_select st)
  | Lexer.KEYWORD "VALUES" ->
      advance st;
      let rec rows acc =
        eat_op st "(";
        let row = parse_expr_list st in
        eat_op st ")";
        if try_op st "," then rows (row :: acc) else List.rev (row :: acc)
      in
      A.Q_values (rows [])
  | Lexer.OP "(" ->
      advance st;
      let q = parse_query st in
      eat_op st ")";
      q
  | t -> fail st ("expected SELECT or VALUES, found " ^ Lexer.show_token t)

and parse_select st : A.select =
  eat_kw st "SELECT";
  let distinct = try_kw st "DISTINCT" in
  ignore (try_kw st "ALL");
  let parse_item () =
    if try_op st "*" then A.Star
    else
      match (cur st, peek st 1, peek st 2) with
      | Lexer.IDENT t, Lexer.OP ".", Lexer.OP "*" ->
          advance st;
          advance st;
          advance st;
          A.Table_star t
      | _ ->
          let e = parse_expr_or st in
          let alias =
            if try_kw st "AS" then Some (ident st)
            else
              match cur st with
              | Lexer.IDENT a ->
                  advance st;
                  Some a
              | _ -> None
          in
          A.Sel_expr (e, alias)
  in
  let rec items acc =
    let it = parse_item () in
    if try_op st "," then items (it :: acc) else List.rev (it :: acc)
  in
  let sel_items = items [] in
  let sel_from =
    if try_kw st "FROM" then begin
      let rec from_items acc =
        let it = parse_from_item st in
        if try_op st "," then from_items (it :: acc) else List.rev (it :: acc)
      in
      from_items []
    end
    else []
  in
  let sel_where = if try_kw st "WHERE" then Some (parse_expr_or st) else None in
  let sel_group_by =
    if try_kw st "GROUP" then begin
      eat_kw st "BY";
      parse_expr_list st
    end
    else []
  in
  let sel_having = if try_kw st "HAVING" then Some (parse_expr_or st) else None in
  let sel_order_by =
    if try_kw st "ORDER" then begin
      eat_kw st "BY";
      let one () =
        let e = parse_expr_or st in
        let dir =
          if try_kw st "DESC" then A.Desc
          else begin
            ignore (try_kw st "ASC");
            A.Asc
          end
        in
        (e, dir)
      in
      let rec go acc =
        let x = one () in
        if try_op st "," then go (x :: acc) else List.rev (x :: acc)
      in
      go []
    end
    else []
  in
  let int_value () =
    match cur st with
    | Lexer.INT i ->
        advance st;
        i
    | Lexer.OP "-" -> (
        advance st;
        match cur st with
        | Lexer.INT i ->
            advance st;
            Int64.neg i
        | t -> fail st ("expected integer, found " ^ Lexer.show_token t))
    | t -> fail st ("expected integer, found " ^ Lexer.show_token t)
  in
  let sel_limit = if try_kw st "LIMIT" then Some (int_value ()) else None in
  let sel_offset = if try_kw st "OFFSET" then Some (int_value ()) else None in
  {
    A.sel_distinct = distinct;
    sel_items;
    sel_from;
    sel_where;
    sel_group_by;
    sel_having;
    sel_order_by;
    sel_limit;
    sel_offset;
  }

and parse_from_item st : A.from_item =
  let primary () =
    match cur st with
    | Lexer.OP "(" ->
        (* derived table: ( <query> ) AS alias *)
        advance st;
        let sub = parse_query st in
        eat_op st ")";
        ignore (try_kw st "AS");
        let alias = ident st in
        A.F_sub { sub; alias }
    | _ ->
        let name = ident st in
        let alias =
          if try_kw st "AS" then Some (ident st)
          else
            match cur st with
            | Lexer.IDENT a ->
                advance st;
                Some a
            | _ -> None
        in
        A.F_table { name; alias }
  in
  let rec joins left =
    match cur st with
    | Lexer.KEYWORD "JOIN" ->
        advance st;
        finish_join A.Inner left
    | Lexer.KEYWORD "INNER" ->
        advance st;
        eat_kw st "JOIN";
        finish_join A.Inner left
    | Lexer.KEYWORD "LEFT" ->
        advance st;
        ignore (try_kw st "OUTER");
        eat_kw st "JOIN";
        finish_join A.Left left
    | Lexer.KEYWORD "CROSS" ->
        advance st;
        eat_kw st "JOIN";
        finish_join A.Cross left
    | _ -> left
  and finish_join kind left =
    let right = primary () in
    let on = if try_kw st "ON" then Some (parse_expr_or st) else None in
    joins (A.F_join { kind; left; right; on })
  in
  joins (primary ())

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)

let parse_column_def st : A.column_def =
  let col_name = ident st in
  let col_type =
    match cur st with
    | Lexer.IDENT _ | Lexer.KEYWORD "UNSIGNED" -> parse_type st
    | _ -> Datatype.Any
  in
  let col_collate = ref None in
  let constraints = ref [] in
  let rec go () =
    match cur st with
    | Lexer.KEYWORD "COLLATE" -> (
        advance st;
        let c = ident st in
        match Collation.of_keyword c with
        | Some coll ->
            col_collate := Some coll;
            go ()
        | None -> fail st ("unknown collation: " ^ c))
    | Lexer.KEYWORD "PRIMARY" ->
        advance st;
        eat_kw st "KEY";
        constraints := A.C_primary_key :: !constraints;
        go ()
    | Lexer.KEYWORD "UNIQUE" ->
        advance st;
        constraints := A.C_unique :: !constraints;
        go ()
    | Lexer.KEYWORD "NOT" ->
        advance st;
        eat_kw st "NULL";
        constraints := A.C_not_null :: !constraints;
        go ()
    | Lexer.KEYWORD "DEFAULT" ->
        advance st;
        (* unary level: negative literal defaults are common *)
        let e = parse_expr_unary st in
        constraints := A.C_default e :: !constraints;
        go ()
    | Lexer.KEYWORD "CHECK" ->
        advance st;
        eat_op st "(";
        let e = parse_expr_or st in
        eat_op st ")";
        constraints := A.C_check e :: !constraints;
        go ()
    | _ -> ()
  in
  go ();
  { A.col_name; col_type; col_collate = !col_collate; col_constraints = List.rev !constraints }

let parse_name_list st =
  let rec go acc =
    let n = ident st in
    if try_op st "," then go (n :: acc) else List.rev (n :: acc)
  in
  go []

let parse_create_table st : A.stmt =
  (* after CREATE TABLE *)
  let if_not_exists =
    if try_kw st "IF" then begin
      eat_kw st "NOT";
      eat_kw st "EXISTS";
      true
    end
    else false
  in
  let name = ident st in
  eat_op st "(";
  let columns = ref [] in
  let constraints = ref [] in
  let rec go () =
    (match cur st with
    | Lexer.KEYWORD "PRIMARY" ->
        advance st;
        eat_kw st "KEY";
        eat_op st "(";
        let cols = parse_name_list st in
        eat_op st ")";
        constraints := A.T_primary_key cols :: !constraints
    | Lexer.KEYWORD "UNIQUE" ->
        advance st;
        eat_op st "(";
        let cols = parse_name_list st in
        eat_op st ")";
        constraints := A.T_unique cols :: !constraints
    | Lexer.KEYWORD "CHECK" ->
        advance st;
        eat_op st "(";
        let e = parse_expr_or st in
        eat_op st ")";
        constraints := A.T_check e :: !constraints
    | _ -> columns := parse_column_def st :: !columns);
    if try_op st "," then go ()
  in
  go ();
  eat_op st ")";
  let inherits =
    if try_kw st "INHERITS" then begin
      eat_op st "(";
      let p = ident st in
      eat_op st ")";
      Some p
    end
    else None
  in
  let without_rowid =
    if try_kw st "WITHOUT" then begin
      eat_kw st "ROWID";
      true
    end
    else false
  in
  let engine =
    if try_kw st "ENGINE" then begin
      eat_op st "=";
      match String.uppercase_ascii (ident st) with
      | "INNODB" -> Some A.E_innodb
      | "MEMORY" -> Some A.E_memory
      | "MYISAM" -> Some A.E_myisam
      | "CSV" -> Some A.E_csv
      | e -> fail st ("unknown engine: " ^ e)
    end
    else None
  in
  A.Create_table
    {
      A.ct_name = name;
      ct_if_not_exists = if_not_exists;
      ct_columns = List.rev !columns;
      ct_constraints = List.rev !constraints;
      ct_without_rowid = without_rowid;
      ct_engine = engine;
      ct_inherits = inherits;
    }

let parse_create_index st ~unique : A.stmt =
  let if_not_exists =
    if try_kw st "IF" then begin
      eat_kw st "NOT";
      eat_kw st "EXISTS";
      true
    end
    else false
  in
  let name = ident st in
  eat_kw st "ON";
  let table = ident st in
  eat_op st "(";
  let one () =
    let e = parse_expr_postfix st in
    let e, coll =
      match e with A.Collate (inner, c) -> (inner, Some c) | e -> (e, None)
    in
    let desc = try_kw st "DESC" in
    ignore (try_kw st "ASC");
    { A.ic_expr = e; ic_collate = coll; ic_desc = desc }
  in
  let rec cols acc =
    let c = one () in
    if try_op st "," then cols (c :: acc) else List.rev (c :: acc)
  in
  let columns = cols [] in
  eat_op st ")";
  let where = if try_kw st "WHERE" then Some (parse_expr_or st) else None in
  A.Create_index
    {
      A.ci_name = name;
      ci_if_not_exists = if_not_exists;
      ci_table = table;
      ci_unique = unique;
      ci_columns = columns;
      ci_where = where;
    }

let parse_if_exists st =
  if try_kw st "IF" then begin
    eat_kw st "EXISTS";
    true
  end
  else false

let parse_conflict_prefix st =
  (* after INSERT/UPDATE keyword: OR IGNORE / OR REPLACE / IGNORE *)
  if try_kw st "OR" then
    if try_kw st "IGNORE" then A.On_conflict_ignore
    else if try_kw st "REPLACE" then A.On_conflict_replace
    else fail st "expected IGNORE or REPLACE after OR"
  else if try_kw st "IGNORE" then A.On_conflict_ignore
  else A.On_conflict_abort

let rec parse_stmt_inner st : A.stmt =
  match cur st with
  | Lexer.KEYWORD "EXPLAIN" ->
      advance st;
      let analyze = try_kw st "ANALYZE" in
      (match parse_stmt_inner st with
      | A.Select_stmt q -> if analyze then A.Explain_analyze q else A.Explain q
      | _ -> fail st "EXPLAIN supports only queries")
  | Lexer.KEYWORD "CREATE" -> (
      advance st;
      match cur st with
      | Lexer.KEYWORD "TABLE" ->
          advance st;
          parse_create_table st
      | Lexer.KEYWORD "UNIQUE" ->
          advance st;
          eat_kw st "INDEX";
          parse_create_index st ~unique:true
      | Lexer.KEYWORD "INDEX" ->
          advance st;
          parse_create_index st ~unique:false
      | Lexer.KEYWORD "VIEW" ->
          advance st;
          let name = ident st in
          eat_kw st "AS";
          let q = parse_query st in
          A.Create_view { name; query = q }
      | Lexer.KEYWORD "STATISTICS" ->
          advance st;
          let name = ident st in
          eat_kw st "ON";
          let columns = parse_name_list st in
          eat_kw st "FROM";
          let table = ident st in
          A.Create_statistics { name; table; columns }
      | t -> fail st ("unexpected token after CREATE: " ^ Lexer.show_token t))
  | Lexer.KEYWORD "DROP" -> (
      advance st;
      match cur st with
      | Lexer.KEYWORD "TABLE" ->
          advance st;
          let if_exists = parse_if_exists st in
          A.Drop_table { if_exists; name = ident st }
      | Lexer.KEYWORD "INDEX" ->
          advance st;
          let if_exists = parse_if_exists st in
          A.Drop_index { if_exists; name = ident st }
      | Lexer.KEYWORD "VIEW" ->
          advance st;
          let if_exists = parse_if_exists st in
          A.Drop_view { if_exists; name = ident st }
      | t -> fail st ("unexpected token after DROP: " ^ Lexer.show_token t))
  | Lexer.KEYWORD "ALTER" -> (
      advance st;
      eat_kw st "TABLE";
      let table = ident st in
      match cur st with
      | Lexer.KEYWORD "RENAME" -> (
          advance st;
          match cur st with
          | Lexer.KEYWORD "TO" ->
              advance st;
              A.Alter_table { table; action = A.Rename_table (ident st) }
          | Lexer.KEYWORD "COLUMN" ->
              advance st;
              let old_name = ident st in
              eat_kw st "TO";
              let new_name = ident st in
              A.Alter_table
                { table; action = A.Rename_column { old_name; new_name } }
          | _ ->
              let old_name = ident st in
              eat_kw st "TO";
              let new_name = ident st in
              A.Alter_table
                { table; action = A.Rename_column { old_name; new_name } })
      | Lexer.KEYWORD "ADD" ->
          advance st;
          ignore (try_kw st "COLUMN");
          A.Alter_table { table; action = A.Add_column (parse_column_def st) }
      | Lexer.KEYWORD "DROP" ->
          advance st;
          ignore (try_kw st "COLUMN");
          A.Alter_table { table; action = A.Drop_column (ident st) }
      | t -> fail st ("unexpected token after ALTER TABLE: " ^ Lexer.show_token t))
  | Lexer.KEYWORD "INSERT" ->
      advance st;
      let action = parse_conflict_prefix st in
      eat_kw st "INTO";
      let table = ident st in
      let columns =
        if try_op st "(" then begin
          let cols = parse_name_list st in
          eat_op st ")";
          cols
        end
        else []
      in
      eat_kw st "VALUES";
      let rec rows acc =
        eat_op st "(";
        let row = parse_expr_list st in
        eat_op st ")";
        if try_op st "," then rows (row :: acc) else List.rev (row :: acc)
      in
      let rows = rows [] in
      let action =
        if try_kw st "ON" then begin
          eat_kw st "CONFLICT";
          eat_kw st "DO";
          eat_kw st "NOTHING";
          A.On_conflict_ignore
        end
        else action
      in
      A.Insert { table; columns; rows; action }
  | Lexer.KEYWORD "UPDATE" ->
      advance st;
      let action = parse_conflict_prefix st in
      let table = ident st in
      eat_kw st "SET";
      let one () =
        let c = ident st in
        eat_op st "=";
        (c, parse_expr_or st)
      in
      let rec assignments acc =
        let a = one () in
        if try_op st "," then assignments (a :: acc) else List.rev (a :: acc)
      in
      let assignments = assignments [] in
      let where = if try_kw st "WHERE" then Some (parse_expr_or st) else None in
      A.Update { table; assignments; where; action }
  | Lexer.KEYWORD "DELETE" ->
      advance st;
      eat_kw st "FROM";
      let table = ident st in
      let where = if try_kw st "WHERE" then Some (parse_expr_or st) else None in
      A.Delete { table; where }
  | Lexer.KEYWORD ("SELECT" | "VALUES") -> A.Select_stmt (parse_query st)
  | Lexer.KEYWORD "VACUUM" ->
      advance st;
      A.Vacuum { full = try_kw st "FULL" }
  | Lexer.KEYWORD "REINDEX" -> (
      advance st;
      match cur st with
      | Lexer.IDENT n ->
          advance st;
          A.Reindex (Some n)
      | _ -> A.Reindex None)
  | Lexer.KEYWORD "ANALYZE" -> (
      advance st;
      match cur st with
      | Lexer.IDENT n ->
          advance st;
          A.Analyze (Some n)
      | _ -> A.Analyze None)
  | Lexer.KEYWORD "CHECK" ->
      advance st;
      eat_kw st "TABLE";
      let table = ident st in
      let for_upgrade =
        if try_kw st "FOR" then begin
          eat_kw st "UPGRADE";
          true
        end
        else false
      in
      A.Check_table { table; for_upgrade }
  | Lexer.KEYWORD "REPAIR" ->
      advance st;
      eat_kw st "TABLE";
      A.Repair_table (ident st)
  | Lexer.KEYWORD "SET" ->
      advance st;
      let global = try_kw st "GLOBAL" in
      let name = ident st in
      eat_op st "=";
      let value =
        match parse_expr_primary st with
        | A.Lit v -> v
        | A.Unary (A.Neg, A.Lit (Value.Int i)) -> Value.Int (Int64.neg i)
        | _ -> fail st "expected a literal option value"
      in
      A.Set_option { global; name; value }
  | Lexer.KEYWORD "PRAGMA" ->
      advance st;
      let name = ident st in
      if try_op st "=" then
        let value =
          match parse_expr_primary st with
          | A.Lit v -> v
          | _ -> fail st "expected a literal pragma value"
        in
        A.Pragma { name; value = Some value }
      else A.Pragma { name; value = None }
  | Lexer.KEYWORD "DISCARD" ->
      advance st;
      eat_kw st "ALL";
      A.Discard_all
  | Lexer.KEYWORD "BEGIN" ->
      advance st;
      ignore (try_kw st "TRANSACTION");
      A.Begin_txn
  | Lexer.KEYWORD "COMMIT" ->
      advance st;
      A.Commit_txn
  | Lexer.KEYWORD "ROLLBACK" ->
      advance st;
      A.Rollback_txn
  | t -> fail st ("unexpected token at statement start: " ^ Lexer.show_token t)

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)

let with_tokens input f =
  match Lexer.tokenize input with
  | exception Lexer.Lex_error (message, position) -> Error { message; position }
  | tokens -> (
      let st = { tokens = Array.of_list tokens; pos = 0 } in
      match f st with
      | v -> v
      | exception Fail (message, position) -> Error { message; position })

let parse_expr input =
  with_tokens input (fun st ->
      let e = parse_expr_or st in
      match cur st with
      | Lexer.EOF -> Ok e
      | t -> Error { message = "trailing input: " ^ Lexer.show_token t; position = st.pos })

let parse_stmt input =
  with_tokens input (fun st ->
      let s = parse_stmt_inner st in
      ignore (try_op st ";");
      match cur st with
      | Lexer.EOF -> Ok s
      | t -> Error { message = "trailing input: " ^ Lexer.show_token t; position = st.pos })

let parse_script input =
  with_tokens input (fun st ->
      let rec go acc =
        match cur st with
        | Lexer.EOF -> Ok (List.rev acc)
        | Lexer.OP ";" ->
            advance st;
            go acc
        | _ ->
            let s = parse_stmt_inner st in
            go (s :: acc)
      in
      go [])
