(* Telemetry overhead benchmark.

   Runs the same fixed seed range twice — once with the Noop sink and once
   with a live metrics registry — asserts the merged bug-report sets are
   identical (the campaign-neutrality contract), and records both walls
   plus the overhead fraction in BENCH_telemetry.json.  The acceptance
   budget is <5% overhead; the configurations run interleaved and each
   keeps its best wall, so GC pauses, scheduler hiccups and system drift
   don't land on one side of the comparison. *)

open Sqlval

let report_key (r : Pqs.Bug_report.t) =
  (r.Pqs.Bug_report.seed, Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle,
   Pqs.Bug_report.script r)

(* run the two configurations back to back [n] times and keep each one's
   best wall: interleaving means slow system drift (CPU frequency, page
   cache, a noisy neighbour) hits both sides equally instead of biasing
   whichever configuration happened to run second *)
let best_interleaved ~n run_a run_b =
  let best cur (c, w) =
    match cur with
    | Some (_, w') when (w' : float) <= w -> cur
    | _ -> Some (c, w)
  in
  let rec go a b k =
    if k = 0 then (Option.get a, Option.get b)
    else go (best a (run_a ())) (best b (run_b ())) (k - 1)
  in
  go None None n

let json ~dialect ~databases ~noop_wall ~live_wall ~overhead ~identical
    ~spans ~statements =
  String.concat "\n"
    [
      "{";
      "  \"benchmark\": \"telemetry\",";
      Printf.sprintf "  \"dialect\": %S," (Dialect.name dialect);
      Printf.sprintf "  \"databases\": %d," databases;
      Printf.sprintf "  \"statements\": %d," statements;
      Printf.sprintf "  \"noop_wall_s\": %.4f," noop_wall;
      Printf.sprintf "  \"enabled_wall_s\": %.4f," live_wall;
      Printf.sprintf "  \"overhead_fraction\": %.4f," overhead;
      Printf.sprintf "  \"spans_recorded\": %d," spans;
      Printf.sprintf "  \"budget_fraction\": 0.05,";
      Printf.sprintf "  \"within_budget\": %b," (overhead < 0.05);
      Printf.sprintf "  \"identical_reports\": %b" identical;
      "}";
    ]
  ^ "\n"

let run ?(databases = 300) ?(out = "BENCH_telemetry.json") () =
  let dialect = Dialect.Sqlite_like in
  let bugs = Engine.Bug.set_of_list (Engine.Bug.for_dialect dialect) in
  let seed_lo = 1 and seed_hi = 1 + databases in
  let campaign telemetry () =
    let config = Pqs.Runner.Config.make ~bugs ~telemetry dialect in
    let c = Pqs.Campaign.run ~domains:1 ~seed_lo ~seed_hi config in
    (c, c.Pqs.Campaign.elapsed)
  in
  ignore (campaign Telemetry.noop ()) (* warm-up: fault code paths in *);
  let live_tele = Telemetry.create () in
  let (noop_c, noop_wall), (live_c, live_wall) =
    best_interleaved ~n:6 (campaign Telemetry.noop) (campaign live_tele)
  in
  let overhead =
    if noop_wall <= 0.0 then 0.0 else (live_wall -. noop_wall) /. noop_wall
  in
  let identical =
    List.map report_key (Pqs.Campaign.reports noop_c)
    = List.map report_key (Pqs.Campaign.reports live_c)
  in
  let spans =
    (* phase histograms carry a {phase=...} label per series, so sum counts
       across the whole snapshot rather than looking one series up *)
    List.fold_left
      (fun acc (s : Telemetry.sample) ->
        match s.Telemetry.s_value with
        | Telemetry.Histogram { count; _ }
          when s.Telemetry.s_name = "pqs_phase_seconds"
               || s.Telemetry.s_name = "minidb_phase_seconds" ->
            acc + count
        | _ -> acc)
      0
      (Telemetry.snapshot live_tele)
  in
  let statements = noop_c.Pqs.Campaign.stats.Pqs.Stats.statements in
  let oc = open_out out in
  output_string oc
    (json ~dialect ~databases ~noop_wall ~live_wall ~overhead ~identical
       ~spans ~statements);
  close_out oc;
  let row label wall (c : Pqs.Campaign.t) =
    [
      label;
      string_of_int c.Pqs.Campaign.stats.Pqs.Stats.statements;
      string_of_int (List.length (Pqs.Campaign.reports c));
      Printf.sprintf "%.3f" wall;
      Printf.sprintf "%.0f"
        (float_of_int c.Pqs.Campaign.stats.Pqs.Stats.statements /. wall);
    ]
  in
  Fmt_table.print
    ~title:
      (Printf.sprintf
         "Telemetry overhead — %d databases, best of 6 interleaved; \
          overhead %.1f%% \
          (budget 5%%), %d spans, report sets identical: %b (written to %s)"
         databases (100.0 *. overhead) spans identical out)
    ~columns:[ "sink"; "statements"; "reports"; "seconds"; "stmts/s" ]
    [ row "noop" noop_wall noop_c; row "enabled" live_wall live_c ];
  if overhead >= 0.05 then
    Printf.printf
      "WARNING: telemetry overhead %.1f%% exceeds the 5%% budget\n"
      (100.0 *. overhead);
  if not identical then
    Printf.printf
      "WARNING: enabling telemetry changed the report set — \
       campaign-neutrality violated\n"
