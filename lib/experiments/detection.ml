type outcome = {
  bug : Engine.Bug.t;
  report : Pqs.Bug_report.t option;
  queries_budget : int;
}

type t = outcome list

let hunt_bug ~budget ~seeds bug =
  let info = Engine.Bug.info bug in
  let rec go = function
    | [] -> None
    | seed :: rest -> (
        let config =
          (* defaults plus the const-opt oracle: the constant-folding bug
             family only manifests on the re-executed simplified variant,
             and appending after the defaults preserves report priority
             for every other class *)
          Pqs.Runner.Config.make ~seed
            ~bugs:(Engine.Bug.set_of_list [ bug ])
            ~oracles:(Pqs.Oracle.defaults @ [ Pqs.Const_opt.oracle () ])
            info.Engine.Bug.dialect
        in
        match Pqs.Runner.hunt config ~max_queries:budget with
        | Some r -> Some r
        | None -> go rest)
  in
  go seeds

let run_all ?(budget = 30000) ?(seeds = [ 7; 77; 777 ]) ?(progress = false) ()
    =
  List.map
    (fun bug ->
      let report = hunt_bug ~budget ~seeds bug in
      if progress then
        Printf.printf "  %-42s %s\n%!" (Engine.Bug.show bug)
          (match report with
          | Some r -> "detected (" ^ Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle ^ ")"
          | None -> "NOT detected");
      { bug; report; queries_budget = budget })
    Engine.Bug.all

let detected t = List.filter (fun o -> o.report <> None) t
let missed t = List.filter (fun o -> o.report = None) t

let by_dialect t d =
  List.filter
    (fun o -> Sqlval.Dialect.equal (Engine.Bug.info o.bug).Engine.Bug.dialect d)
    t

let with_reductions t =
  List.map
    (fun o ->
      match o.report with
      | None -> o
      | Some r when r.Pqs.Bug_report.reduced <> None -> o
      | Some r ->
          let bugs = Engine.Bug.set_of_list [ o.bug ] in
          { o with report = Some (Pqs.Reducer.reduce_report r ~bugs) })
    t
