(* Fleet observability benchmark — the `make fleet` gate.

   Three checks over one fixed seed range:

   1. Scaling: runs the fleet at 1 worker and at N workers and records
      both rounds/sec.  The gate is per-core efficiency
      [(rate_N / rate_1) / min(N, cores)] >= 0.8 — on a multi-core host
      that demands near-linear speedup, on a single-core CI box it
      demands the N-process fleet stays within 20% of one process (the
      supervisor + heartbeat overhead bound).  The visible core count is
      recorded so the number is interpretable either way.

   2. Exact merge: the N-worker aggregate's {!Fleet.Aggregate.totals}
      (rounds, counters, frontier, minimized-repro fingerprint multiset)
      must equal the same projection of a sequential
      {!Pqs.Campaign.run} over the identical seed range.

   3. Kill recovery: a run with [chaos_kill_after] SIGKILLs one shard
      mid-lease; the supervisor must requeue the unfinished tail
      (requeued_seeds > 0) and the final totals must still be exact —
      no seed lost, none double-merged.

   Writes BENCH_fleet.json. *)

open Sqlval

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let temp_fleet_dir tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "pqs-fleet-bench-%d-%s" (Unix.getpid ()) tag)

(* the reference applies the worker's own reduction, so fingerprints are
   computed from identical minimized repros on both sides *)
let reference_totals ~bugs (c : Pqs.Campaign.t) =
  Fleet.Aggregate.totals_of_stats
    ~fingerprint:(fun r ->
      Pqs.Bug_report.fingerprint (Pqs.Reducer.reduce_report r ~bugs))
    c.Pqs.Campaign.stats

let make_config ~bugs dialect =
  Pqs.Runner.Config.make ~bugs ~telemetry:(Telemetry.create ()) dialect

let run_fleet ~bugs ~dialect ~workers ~chunk ?chaos ~tag ~seed_lo ~seed_hi ()
    =
  let dir = temp_fleet_dir tag in
  rm_rf dir;
  let fc =
    {
      (Fleet.Supervisor.default ~dir) with
      Fleet.Supervisor.workers;
      chunk;
      heartbeat_every = 8;
      chaos_kill_after = chaos;
    }
  in
  let r =
    Fleet.Supervisor.run fc (make_config ~bugs dialect) ~seed_lo ~seed_hi
  in
  rm_rf dir;
  r

let rate (r : Fleet.Supervisor.result) =
  if r.Fleet.Supervisor.elapsed > 0.0 then
    float_of_int (Fleet.Aggregate.rounds r.Fleet.Supervisor.agg)
    /. r.Fleet.Supervisor.elapsed
  else 0.0

let json ~dialect ~databases ~workers ~cores ~rate1 ~raten ~scaling
    ~efficiency ~merge_ok ~chaos ~pass =
  let rk, chaos_merge_ok = chaos in
  String.concat "\n"
    [
      "{";
      "  \"benchmark\": \"fleet\",";
      Printf.sprintf "  \"dialect\": %S," (Dialect.name dialect);
      Printf.sprintf "  \"databases\": %d," databases;
      Printf.sprintf "  \"workers\": %d," workers;
      Printf.sprintf "  \"cores\": %d," cores;
      Printf.sprintf "  \"rounds_per_sec_1\": %.1f," rate1;
      Printf.sprintf "  \"rounds_per_sec_%d\": %.1f," workers raten;
      Printf.sprintf "  \"scaling\": %.3f," scaling;
      Printf.sprintf "  \"efficiency_per_core\": %.3f," efficiency;
      Printf.sprintf "  \"exact_merge\": %b," merge_ok;
      Printf.sprintf
        "  \"kill_recovery\": { \"chaos_kills\": %d, \"requeued_seeds\": \
         %d, \"rounds\": %d, \"exact_merge\": %b },"
        rk.Fleet.Supervisor.chaos_kills rk.Fleet.Supervisor.requeued_seeds
        (Fleet.Aggregate.rounds rk.Fleet.Supervisor.agg)
        chaos_merge_ok;
      Printf.sprintf "  \"pass\": %b" pass;
      "}";
    ]
  ^ "\n"

let run ?(workers = 4) ?(databases = 192) ?(out = "BENCH_fleet.json") () =
  let dialect = Dialect.Sqlite_like in
  let bugs = Engine.Bug.set_of_list (Engine.Bug.for_dialect dialect) in
  let seed_lo = 1 and seed_hi = 1 + databases in
  Printf.printf "\nFleet bench: %d databases, up to %d workers...\n%!"
    databases workers;
  (* sequential reference for the exact-merge projection *)
  let seq =
    Pqs.Campaign.run ~domains:1 ~seed_lo ~seed_hi
      (make_config ~bugs dialect)
  in
  let reference = reference_totals ~bugs seq in
  (* scaling: 1 worker vs N workers *)
  let r1 =
    run_fleet ~bugs ~dialect ~workers:1 ~chunk:32 ~tag:"w1" ~seed_lo ~seed_hi
      ()
  in
  let rn =
    run_fleet ~bugs ~dialect ~workers ~chunk:32 ~tag:"wn" ~seed_lo ~seed_hi ()
  in
  let merged = Fleet.Aggregate.totals rn.Fleet.Supervisor.agg in
  let merge_ok = Fleet.Aggregate.equal_totals reference merged in
  if not merge_ok then begin
    Printf.printf "exact-merge FAILED:\n";
    List.iter (Printf.printf "  %s\n")
      (Fleet.Aggregate.diff_totals reference merged)
  end;
  (* kill recovery: SIGKILL one shard a quarter of the way in; long
     leases so the killed shard has an unfinished tail to requeue *)
  let rk =
    run_fleet ~bugs ~dialect ~workers:2 ~chunk:(max 16 (databases / 2))
      ~chaos:(databases / 4) ~tag:"chaos" ~seed_lo ~seed_hi ()
  in
  let chaos_merge_ok =
    Fleet.Aggregate.equal_totals reference
      (Fleet.Aggregate.totals rk.Fleet.Supervisor.agg)
  in
  if not chaos_merge_ok then begin
    Printf.printf "kill-recovery exact-merge FAILED:\n";
    List.iter (Printf.printf "  %s\n")
      (Fleet.Aggregate.diff_totals reference
         (Fleet.Aggregate.totals rk.Fleet.Supervisor.agg))
  end;
  let cores = Domain.recommended_domain_count () in
  let rate1 = rate r1 and raten = rate rn in
  let scaling = if rate1 > 0.0 then raten /. rate1 else 0.0 in
  let efficiency = scaling /. float_of_int (min workers (max 1 cores)) in
  let recovered =
    rk.Fleet.Supervisor.chaos_kills = 1
    && rk.Fleet.Supervisor.requeued_seeds > 0
    && chaos_merge_ok
  in
  let pass = efficiency >= 0.8 && merge_ok && recovered in
  let oc = open_out out in
  output_string oc
    (json ~dialect ~databases ~workers ~cores ~rate1 ~raten ~scaling
       ~efficiency ~merge_ok
       ~chaos:(rk, chaos_merge_ok)
       ~pass);
  close_out oc;
  let row label (r : Fleet.Supervisor.result) extra =
    [
      label;
      string_of_int (Fleet.Aggregate.rounds r.Fleet.Supervisor.agg);
      string_of_int
        (Fleet.Aggregate.distinct_reports r.Fleet.Supervisor.agg);
      Printf.sprintf "%.2f" r.Fleet.Supervisor.elapsed;
      Printf.sprintf "%.0f" (rate r);
      extra;
    ]
  in
  Fmt_table.print
    ~title:
      (Printf.sprintf
         "Fleet scaling — %d databases on %d core(s); efficiency %.2f \
          (gate >= 0.80), exact merge %b, kill recovery %b (written to %s)"
         databases cores efficiency merge_ok recovered out)
    ~columns:
      [ "mode"; "rounds"; "distinct"; "seconds"; "rounds/s"; "notes" ]
    [
      row "1 worker" r1 "";
      row (Printf.sprintf "%d workers" workers) rn
        (if merge_ok then "merge exact" else "MERGE MISMATCH");
      row "2 workers + SIGKILL" rk
        (Printf.sprintf "requeued %d seed(s)%s"
           rk.Fleet.Supervisor.requeued_seeds
           (if chaos_merge_ok then ", merge exact" else ", MERGE MISMATCH"));
    ];
  if not pass then exit 1
