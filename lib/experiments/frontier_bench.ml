(* Coverage-guided generation benchmark.

   Two gates for the frontier subsystem, recorded in BENCH_frontier.json:

   - Detection speedup: for every injected SQLite bug, hunt seeds 1..
     blind and guided and count containment checks to the first
     detection.  The acceptance target is a >= 1.5x median speedup with a
     guided report set that is identical to or a superset of the blind
     one (guided must never *lose* a bug the blind campaign finds).

   - Accounting overhead: frontier recording runs even with --guided off
     (fingerprints per query, one fold per round), so its cost is
     estimated in isolation — fingerprinting a synthesized corpus and
     replaying a blind campaign's per-round point lists through
     of_points/union — and compared against the campaign wall.  Budget:
     <= 5%. *)

open Sqlval

let median = function
  | [] -> 0.0
  | l ->
      let a = Array.of_list (List.sort compare l) in
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* containment checks issued until [bug] is first detected, hunting
   seeds 1.. (None when the budget runs out first).  Guided hunts thread
   one bias frontier across rounds, exactly like a campaign worker. *)
let checks_to_detect ~budget ~guided bug =
  let dialect = (Engine.Bug.info bug).Engine.Bug.dialect in
  let config =
    Pqs.Runner.Config.make
      ~bugs:(Engine.Bug.set_of_list [ bug ])
      ~guided dialect
  in
  let bias = ref Frontier.empty in
  let rec go seed checks =
    if checks >= budget then None
    else
      let st = Pqs.Runner.run_round ~bias config ~db_seed:seed in
      let checks = checks + st.Pqs.Stats.queries in
      if st.Pqs.Stats.reports <> [] then Some checks else go (seed + 1) checks
  in
  go 1 0

(* a corpus of synthesized query ASTs, for timing fingerprint extraction
   on realistic inputs *)
let query_corpus ~dialect ~seeds ~per_seed =
  List.concat_map
    (fun seed ->
      let rng = Pqs.Rng.make ~seed in
      let session =
        Engine.Session.create ~seed ~bugs:Engine.Bug.empty_set dialect
      in
      let gen_cfg =
        Pqs.Gen_db.Config.(
          make dialect |> with_rng rng |> with_max_rows 5
          |> with_extra_statements 4)
      in
      let exec stmt =
        match Engine.Session.execute session stmt with
        | Ok _ | Error _ -> ()
        | exception Engine.Errors.Crash _ -> ()
      in
      List.iter exec (Pqs.Gen_db.initial_statements gen_cfg);
      List.iter exec (Pqs.Gen_db.fill_statements gen_cfg session);
      let sources =
        Pqs.Schema_info.tables_of_session session
        |> List.filter_map (fun (ti : Pqs.Schema_info.table_info) ->
               match
                 Pqs.Schema_info.rows_of_table session
                   ti.Pqs.Schema_info.ti_name
               with
               | [] -> None
               | rows -> Some (ti, rows))
      in
      if sources = [] then []
      else
        List.filter_map
          (fun _ ->
            let chosen = Pqs.Rng.sample rng 1 sources in
            let pivot =
              List.map
                (fun ((ti : Pqs.Schema_info.table_info), rows) ->
                  (ti, Pqs.Rng.pick rng rows))
                chosen
            in
            match
              Pqs.Gen_query.synthesize ~rng ~dialect ~pivot
                ~case_sensitive_like:false ~max_depth:4
                ~check_expressions:true ()
            with
            | Ok t -> Some t.Pqs.Gen_query.query
            | Error _ -> None)
          (List.init per_seed Fun.id))
    seeds

let json ~budget ~bugs ~speedup ~meets_target ~blind_detected
    ~guided_detected ~superset ~campaign_wall ~overhead ~per_bug =
  let bug_row (name, b, g) =
    let cell = function Some c -> string_of_int c | None -> "null" in
    Printf.sprintf
      "    {\"bug\": %S, \"blind_checks\": %s, \"guided_checks\": %s}" name
      (cell b) (cell g)
  in
  String.concat "\n"
    ([
       "{";
       "  \"benchmark\": \"frontier\",";
       "  \"dialect\": \"sqlite\",";
       Printf.sprintf "  \"budget_checks\": %d," budget;
       Printf.sprintf "  \"bugs\": %d," bugs;
       Printf.sprintf "  \"median_speedup\": %.3f," speedup;
       "  \"target_speedup\": 1.5,";
       Printf.sprintf "  \"meets_target\": %b," meets_target;
       Printf.sprintf "  \"blind_detected\": %d," blind_detected;
       Printf.sprintf "  \"guided_detected\": %d," guided_detected;
       Printf.sprintf "  \"superset_reports\": %b," superset;
       Printf.sprintf "  \"campaign_wall_s\": %.4f," campaign_wall;
       Printf.sprintf "  \"accounting_overhead_fraction\": %.4f," overhead;
       "  \"overhead_budget_fraction\": 0.05,";
       Printf.sprintf "  \"within_overhead_budget\": %b," (overhead < 0.05);
       "  \"per_bug\": [";
     ]
    @ [ String.concat ",\n" (List.map bug_row per_bug) ]
    @ [ "  ]"; "}" ])
  ^ "\n"

let run ?(budget = 2000) ?(overhead_databases = 80)
    ?(out = "BENCH_frontier.json") () =
  let dialect = Dialect.Sqlite_like in
  let catalog = Engine.Bug.for_dialect dialect in
  let rows =
    List.map
      (fun bug ->
        let blind = checks_to_detect ~budget ~guided:false bug in
        let guided = checks_to_detect ~budget ~guided:true bug in
        (bug, blind, guided))
      catalog
  in
  (* a bug neither mode detects within the budget says nothing about the
     speedup; one-sided misses count the miss at the full budget *)
  let ratios =
    List.filter_map
      (fun (_, b, g) ->
        match (b, g) with
        | None, None -> None
        | b, g ->
            let v = function
              | Some c -> float_of_int (max 1 c)
              | None -> float_of_int budget
            in
            Some (v b /. v g))
      rows
  in
  let speedup = median ratios in
  let superset =
    List.for_all (fun (_, b, g) -> b = None || g <> None) rows
  in
  let detected which =
    List.length (List.filter (fun r -> which r <> None) rows)
  in
  let blind_detected = detected (fun (_, b, _) -> b) in
  let guided_detected = detected (fun (_, _, g) -> g) in
  (* ---- accounting overhead, guidance off ---- *)
  let config =
    Pqs.Runner.Config.make ~bugs:Engine.Bug.empty_set ~guided:false dialect
  in
  let c =
    Pqs.Campaign.run ~domains:1 ~seed_lo:1
      ~seed_hi:(1 + overhead_databases) config
  in
  (* best-of-3 campaign wall: the denominator of the overhead fraction is
     the noisiest term, and rounds are deterministic per seed, so minima
     are comparable (same idiom as the telemetry/trace gates) *)
  let wall =
    List.fold_left
      (fun acc _ ->
        let c' =
          Pqs.Campaign.run ~domains:1 ~seed_lo:1
            ~seed_hi:(1 + overhead_databases) config
        in
        min acc c'.Pqs.Campaign.elapsed)
      c.Pqs.Campaign.elapsed [ (); () ]
  in
  let per_round_points =
    List.map
      (fun (o : Pqs.Campaign.outcome) ->
        Frontier.points o.Pqs.Campaign.round.Pqs.Stats.frontier
        |> List.concat_map (fun (p, e) ->
               List.init e.Frontier.hits (fun _ -> p)))
      c.Pqs.Campaign.outcomes
  in
  (* best-of-batches microbench: per-batch means, minimum across batches
     (robust to scheduler noise, same idiom as the campaign wall above) *)
  let time ~outer ~inner f =
    let best = ref infinity in
    for _ = 1 to outer do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to inner do
        f ()
      done;
      let dt = (Unix.gettimeofday () -. t0) /. float_of_int inner in
      if dt < !best then best := dt
    done;
    !best
  in
  let fold_cost =
    time ~outer:6 ~inner:10 (fun () ->
        ignore
          (List.fold_left
             (fun acc pts ->
               Frontier.union acc (Frontier.of_points ~seed:1 pts))
             Frontier.empty per_round_points))
  in
  let corpus = query_corpus ~dialect ~seeds:[ 11; 12; 13 ] ~per_seed:8 in
  let fp_cost =
    if corpus = [] then 0.0
    else
      time ~outer:6 ~inner:50 (fun () ->
          List.iter (fun q -> ignore (Pqs.Gen_bias.fingerprint q)) corpus)
      /. float_of_int (List.length corpus)
  in
  let queries = c.Pqs.Campaign.stats.Pqs.Stats.queries in
  let overhead =
    if wall <= 0.0 then 0.0
    else (fold_cost +. (fp_cost *. float_of_int queries)) /. wall
  in
  let per_bug =
    List.map (fun (bug, b, g) -> (Engine.Bug.show bug, b, g)) rows
  in
  let oc = open_out out in
  output_string oc
    (json ~budget ~bugs:(List.length catalog) ~speedup
       ~meets_target:(speedup >= 1.5) ~blind_detected ~guided_detected
       ~superset ~campaign_wall:wall ~overhead ~per_bug);
  close_out oc;
  let cell = function Some c -> string_of_int c | None -> "miss" in
  Fmt_table.print
    ~title:
      (Printf.sprintf
         "Guided vs blind time-to-first-detection — budget %d checks/bug; \
          median speedup %.2fx (target 1.5x), guided superset: %b, \
          accounting overhead %.2f%% of a %d-database blind campaign \
          (budget 5%%) (written to %s)"
         budget speedup superset (100.0 *. overhead) overhead_databases out)
    ~columns:[ "bug"; "blind checks"; "guided checks" ]
    (List.map (fun (name, b, g) -> [ name; cell b; cell g ]) per_bug);
  if speedup < 1.5 then
    Printf.printf
      "WARNING: guided median speedup %.2fx below the 1.5x target\n" speedup;
  if not superset then
    Printf.printf
      "WARNING: guided hunting missed a bug the blind hunt detects\n";
  if overhead >= 0.05 then
    Printf.printf
      "WARNING: frontier accounting overhead %.1f%% exceeds the 5%% budget\n"
      (100.0 *. overhead)
