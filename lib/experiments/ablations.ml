(* Ablations for the design choices DESIGN.md calls out.

   1. Rectification (paper step 4): without it, random conditions evaluate
      TRUE only a fraction of the time, so "pivot missing" stops being a
      bug signal — every miss is a false alarm.  We measure the raw
      truth-value distribution and the false-alarm rate.
   2. Expression depth (paper Algorithm 1's max depth): deeper expressions
      exercise more of the evaluator but fail oracle evaluation more often
      (dialect-specific runtime errors), trading throughput for coverage.
   3. The expressions-on-columns extension (paper Sec. 3.4): how many of
      the containment-class detections needed expression targets. *)

open Sqlval

let rectification ~queries =
  List.map
    (fun rectify ->
      let config =
        Pqs.Runner.Config.make ~seed:99 ~rectify ~verify_ground_truth:false
          Dialect.Sqlite_like
      in
      let stats = Pqs.Runner.run ~max_queries:queries config in
      (rectify, stats))
    [ true; false ]

(* depth sweep measured directly on the generator+oracle: average node
   count of generated conditions and the rate at which the oracle cannot
   evaluate them (mysql's error-on-overflow arithmetic makes failures
   depth-dependent) *)
let depth_sweep ~samples =
  let dialect = Dialect.Mysql_like in
  List.map
    (fun max_depth ->
      let rng = Pqs.Rng.make ~seed:99 in
      let session = Engine.Session.create dialect in
      let cfg =
        Pqs.Gen_db.Config.(make ~seed:99 dialect |> with_rng rng)
      in
      List.iter
        (fun st -> ignore (Engine.Session.execute session st))
        (Pqs.Gen_db.initial_statements cfg);
      List.iter
        (fun st -> ignore (Engine.Session.execute session st))
        (Pqs.Gen_db.fill_statements cfg session);
      let tables = Pqs.Schema_info.tables_of_session session in
      let pivot =
        List.filter_map
          (fun (ti : Pqs.Schema_info.table_info) ->
            match
              Pqs.Schema_info.rows_of_table session ti.Pqs.Schema_info.ti_name
            with
            | row :: _ -> Some (ti, row)
            | [] -> None)
          tables
      in
      let env = Pqs.Interp.env_of_pivot dialect pivot in
      let gen_ctx =
        { Pqs.Gen_expr.rng; dialect; tables; max_depth; pool = [] }
      in
      let sizes = ref 0 and failures = ref 0 in
      for _ = 1 to samples do
        let e = Pqs.Gen_expr.condition gen_ctx in
        sizes := !sizes + Sqlast.Ast.expr_size e;
        match Pqs.Rectify.rectify env e with
        | Ok _ -> ()
        | Error _ -> incr failures
      done;
      (max_depth, float_of_int !sizes /. float_of_int samples, !failures))
    [ 2; 4; 6; 8; 10 ]

let run ?(queries = 1500) () =
  (* 1. rectification *)
  let rows =
    rectification ~queries
    |> List.map (fun (rectify, (stats : Pqs.Stats.t)) ->
           let dist =
             stats.Pqs.Stats.truth_values
             |> List.map (fun (t, n) ->
                    Printf.sprintf "%s:%d" (Tvl.show t) n)
             |> String.concat " "
           in
           [
             (if rectify then "with rectification" else "no rectification");
             string_of_int stats.Pqs.Stats.queries;
             string_of_int (List.length stats.Pqs.Stats.reports);
             dist;
           ])
  in
  Fmt_table.print
    ~title:
      "Ablation 1 — rectification off: every pivot miss is a false alarm \
       (engine is correct in both runs)"
    ~columns:[ "mode"; "queries"; "false alarms"; "raw truth values" ]
    rows;
  (* 2. depth sweep *)
  let rows =
    depth_sweep ~samples:(max 200 queries)
    |> List.map (fun (depth, avg_size, failures) ->
           [
             string_of_int depth;
             Printf.sprintf "%.1f" avg_size;
             string_of_int failures;
           ])
  in
  Fmt_table.print
    ~title:
      "Ablation 2 — expression depth (mysql): deeper trees are larger and \
       fail oracle evaluation more often (overflow errors)"
    ~columns:[ "max depth"; "avg condition nodes"; "oracle failures" ]
    rows;
  (* 3. expressions-on-columns extension *)
  let detections extension =
    List.length
      (List.filter
         (fun bug ->
           let info = Engine.Bug.info bug in
           Engine.Bug.equal_oracle_class info.Engine.Bug.oracle
             Engine.Bug.O_containment
           &&
           let config =
             Pqs.Runner.Config.make ~seed:7
               ~bugs:(Engine.Bug.set_of_list [ bug ])
               ~check_expressions:extension info.Engine.Bug.dialect
           in
           Pqs.Runner.hunt config ~max_queries:4000 <> None)
         Engine.Bug.all)
  in
  let with_ext = detections true in
  let without_ext = detections false in
  Fmt_table.print
    ~title:
      "Ablation 3 — expressions-on-columns extension (paper Sec. 3.4), \
       containment-class bugs found at a fixed small budget"
    ~columns:[ "mode"; "containment bugs found" ]
    [
      [ "with expression targets"; string_of_int with_ext ];
      [ "column targets only"; string_of_int without_ext ];
    ]
