(* Campaign throughput benchmark.

   Runs the same fixed seed range twice — sequentially (one domain) and
   sharded across N domains — asserts that the merged bug-report sets are
   identical (the campaign determinism contract), and records both
   statements/sec numbers in BENCH_campaign.json so later PRs have a perf
   trajectory.  On a multi-core host the campaign number should approach
   [domains] times the sequential one; the JSON records the visible core
   count so single-core CI results are interpretable. *)

open Sqlval

let report_key (r : Pqs.Bug_report.t) =
  (r.Pqs.Bug_report.seed, Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle,
   Pqs.Bug_report.script r)

let json ~dialect ~databases ~domains ~cores ~seq ~par ~identical =
  let line (c : Pqs.Campaign.t) =
    Printf.sprintf
      "{ \"statements\": %d, \"queries\": %d, \"reports\": %d, \
       \"wall_s\": %.3f, \"statements_per_sec\": %.1f }"
      c.Pqs.Campaign.stats.Pqs.Stats.statements
      c.Pqs.Campaign.stats.Pqs.Stats.queries
      (List.length (Pqs.Campaign.reports c))
      c.Pqs.Campaign.elapsed
      (Pqs.Campaign.statements_per_sec c)
  in
  let speedup =
    let s = Pqs.Campaign.statements_per_sec seq in
    if s <= 0.0 then 0.0 else Pqs.Campaign.statements_per_sec par /. s
  in
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"benchmark\": \"campaign\",";
      Printf.sprintf "  \"dialect\": %S," (Dialect.name dialect);
      Printf.sprintf "  \"databases\": %d," databases;
      Printf.sprintf "  \"domains\": %d," domains;
      Printf.sprintf "  \"cores\": %d," cores;
      Printf.sprintf "  \"sequential\": %s," (line seq);
      Printf.sprintf "  \"campaign\": %s," (line par);
      Printf.sprintf "  \"speedup\": %.2f," speedup;
      Printf.sprintf "  \"identical_reports\": %b" identical;
      "}";
    ]
  ^ "\n"

let run ?(domains = 4) ?(databases = 64) ?(out = "BENCH_campaign.json") () =
  let dialect = Dialect.Sqlite_like in
  let bugs = Engine.Bug.set_of_list (Engine.Bug.for_dialect dialect) in
  let config = Pqs.Runner.Config.make ~bugs dialect in
  let seed_lo = 1 and seed_hi = 1 + databases in
  let seq = Pqs.Campaign.run ~domains:1 ~seed_lo ~seed_hi config in
  let par = Pqs.Campaign.run ~domains ~seed_lo ~seed_hi config in
  let identical =
    List.map report_key (Pqs.Campaign.reports seq)
    = List.map report_key (Pqs.Campaign.reports par)
  in
  let cores = Domain.recommended_domain_count () in
  let oc = open_out out in
  output_string oc
    (json ~dialect ~databases ~domains ~cores ~seq ~par ~identical);
  close_out oc;
  let row label (c : Pqs.Campaign.t) =
    [
      label;
      string_of_int c.Pqs.Campaign.stats.Pqs.Stats.statements;
      string_of_int (List.length (Pqs.Campaign.reports c));
      Printf.sprintf "%.2f" c.Pqs.Campaign.elapsed;
      Printf.sprintf "%.0f" (Pqs.Campaign.statements_per_sec c);
    ]
  in
  Fmt_table.print
    ~title:
      (Printf.sprintf
         "Campaign throughput — %d databases, %d domains on %d core(s); \
          report sets identical: %b (written to %s)"
         databases domains cores identical out)
    ~columns:[ "mode"; "statements"; "reports"; "seconds"; "stmts/s" ]
    [ row "sequential" seq; row (Printf.sprintf "%d domains" domains) par ]
