(* Section 3.4 reproduction: statement throughput and the row-count
   trade-off.

   Paper: "SQLancer generates 5,000 to 20,000 statements per second,
   depending on the DBMS under test", and restricting tables to 10-30 rows
   avoids join blow-up (100 rows across 3 joined tables would already mean
   a million-row cross product). *)

open Sqlval

let time f =
  let t0 = Telemetry.Clock.now () in
  let r = f () in
  (r, Telemetry.Clock.now () -. t0)

let per_dialect ~queries =
  List.map
    (fun d ->
      let config = Pqs.Runner.Config.make ~seed:13 d in
      let stats, elapsed =
        time (fun () -> Pqs.Runner.run ~max_queries:queries config)
      in
      (d, stats, elapsed))
    Dialect.all

let rows_sweep ~queries =
  List.map
    (fun max_rows ->
      let config =
        Pqs.Runner.Config.make ~seed:13 ~max_rows Dialect.Sqlite_like
      in
      let stats, elapsed =
        time (fun () -> Pqs.Runner.run ~max_queries:queries config)
      in
      (max_rows, stats, elapsed))
    [ 5; 15; 30; 100 ]

let run ?(queries = 2000) () =
  let rows =
    per_dialect ~queries
    |> List.map (fun (d, (stats : Pqs.Stats.t), elapsed) ->
           [
             Dialect.display_name d;
             string_of_int stats.Pqs.Stats.statements;
             Printf.sprintf "%.2f" elapsed;
             Printf.sprintf "%.0f"
               (float_of_int stats.Pqs.Stats.statements /. elapsed);
           ])
  in
  Fmt_table.print
    ~title:
      "Throughput (paper Sec. 3.4: 5,000-20,000 statements/second, \
       DBMS-dependent)"
    ~columns:[ "DBMS"; "statements"; "seconds"; "stmts/s" ]
    rows;
  let rows =
    rows_sweep ~queries:(queries / 2)
    |> List.map (fun (max_rows, (stats : Pqs.Stats.t), elapsed) ->
           [
             string_of_int max_rows;
             Printf.sprintf "%.2f" elapsed;
             Printf.sprintf "%.0f"
               (float_of_int stats.Pqs.Stats.statements /. elapsed);
           ])
  in
  Fmt_table.print
    ~title:
      "Rows-per-table sweep (paper Sec. 3.4: low row counts keep joined \
       queries from blowing up)"
    ~columns:[ "max rows"; "seconds"; "stmts/s" ]
    rows
