(* Flight-recorder overhead benchmark (the `bench trace` gate).

   Runs the same fixed seed range twice — once with the recorder disabled
   (the Noop sink) and once with always-on flight recording — asserts the
   merged bug-report sets are identical (tracing, like telemetry, must be
   campaign-neutral: it never draws randomness or changes control flow),
   and records both walls plus the overhead fraction in BENCH_trace.json.
   The acceptance budget is <5% overhead; the configurations run
   interleaved and each keeps its best wall, so GC pauses and system drift
   don't land on one side of the comparison. *)

open Sqlval

let report_key (r : Pqs.Bug_report.t) =
  (r.Pqs.Bug_report.seed, Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle,
   Pqs.Bug_report.script r)

(* Interleaved minima: alternate the two configurations and keep each
   arm's best wall.  Run-to-run noise (scheduling, co-tenant load, GC
   phase alignment) is almost entirely additive, so the minimum is the
   right estimator of each arm's true cost and slow outliers never skew
   the comparison — a per-pair median was tried and measured noisier.

   Sampling is adaptive: each arm's minimum only converges downward
   toward its true floor as samples accumulate, so when the estimate
   sits near the budget boundary (where a single unlucky window on the
   shared-core CI machine could flip the verdict) we keep taking
   batches until it settles below [settle] or [max_runs] is spent.
   Extra batches refine both arms symmetrically; they cannot bias the
   ratio, only de-noise it. *)
let best_interleaved ~batch ~max_runs ~settle run_a run_b =
  let best cur (c, w) =
    match cur with
    | Some (_, w') when (w' : float) <= w -> cur
    | _ -> Some (c, w)
  in
  let rec go a b runs =
    let a = ref a and b = ref b in
    for _ = 1 to batch do
      a := best !a (run_a ());
      b := best !b (run_b ())
    done;
    let _, wa = Option.get !a and _, wb = Option.get !b in
    let runs = runs + batch in
    if runs >= max_runs || (wb -. wa) /. wa < settle then
      (Option.get !a, Option.get !b)
    else go !a !b runs
  in
  go None None 0

let json ~dialect ~databases ~off_wall ~on_wall ~overhead ~identical
    ~statements ~reports =
  String.concat "\n"
    [
      "{";
      "  \"benchmark\": \"trace\",";
      Printf.sprintf "  \"dialect\": %S," (Dialect.name dialect);
      Printf.sprintf "  \"databases\": %d," databases;
      Printf.sprintf "  \"statements\": %d," statements;
      Printf.sprintf "  \"reports\": %d," reports;
      Printf.sprintf "  \"recorder_off_wall_s\": %.4f," off_wall;
      Printf.sprintf "  \"recorder_on_wall_s\": %.4f," on_wall;
      Printf.sprintf "  \"overhead_fraction\": %.4f," overhead;
      Printf.sprintf "  \"budget_fraction\": 0.05,";
      Printf.sprintf "  \"within_budget\": %b," (overhead < 0.05);
      Printf.sprintf "  \"identical_reports\": %b" identical;
      "}";
    ]
  ^ "\n"

let run ?(databases = 300) ?(out = "BENCH_trace.json") () =
  let dialect = Dialect.Sqlite_like in
  let bugs = Engine.Bug.set_of_list (Engine.Bug.for_dialect dialect) in
  let seed_lo = 1 and seed_hi = 1 + databases in
  let campaign ~trace () =
    (* settle the heap outside the timed region so a major collection
       owed to the previous iteration's garbage never lands mid-run *)
    Gc.full_major ();
    let config = Pqs.Runner.Config.make ~bugs ~trace dialect in
    let c = Pqs.Campaign.run ~domains:1 ~seed_lo ~seed_hi config in
    (c, c.Pqs.Campaign.elapsed)
  in
  (* warm up both arms: fault code paths in and let each arm's first-run
     costs (lazy forcing, page faults, branch history) fall outside the
     timed comparison *)
  ignore (campaign ~trace:false ());
  ignore (campaign ~trace:true ());
  let (off_c, off_wall), (on_c, on_wall) =
    best_interleaved ~batch:7 ~max_runs:28 ~settle:0.04
      (campaign ~trace:false) (campaign ~trace:true)
  in
  let overhead =
    if off_wall <= 0.0 then 0.0 else (on_wall -. off_wall) /. off_wall
  in
  let identical =
    List.map report_key (Pqs.Campaign.reports off_c)
    = List.map report_key (Pqs.Campaign.reports on_c)
  in
  let statements = off_c.Pqs.Campaign.stats.Pqs.Stats.statements in
  let reports = List.length (Pqs.Campaign.reports off_c) in
  let oc = open_out out in
  output_string oc
    (json ~dialect ~databases ~off_wall ~on_wall ~overhead ~identical
       ~statements ~reports);
  close_out oc;
  let row label wall (c : Pqs.Campaign.t) =
    [
      label;
      string_of_int c.Pqs.Campaign.stats.Pqs.Stats.statements;
      string_of_int (List.length (Pqs.Campaign.reports c));
      Printf.sprintf "%.3f" wall;
      Printf.sprintf "%.0f"
        (float_of_int c.Pqs.Campaign.stats.Pqs.Stats.statements /. wall);
    ]
  in
  Fmt_table.print
    ~title:
      (Printf.sprintf
         "Flight-recorder overhead — %d databases, interleaved minima; \
          overhead %.1f%% (budget 5%%), report sets identical: %b (written \
          to %s)"
         databases (100.0 *. overhead) identical out)
    ~columns:[ "recorder"; "statements"; "reports"; "seconds"; "stmts/s" ]
    [ row "noop" off_wall off_c; row "on" on_wall on_c ];
  if overhead >= 0.05 then
    Printf.printf
      "WARNING: flight-recorder overhead %.1f%% exceeds the 5%% budget\n"
      (100.0 *. overhead);
  if not identical then
    Printf.printf
      "WARNING: enabling the flight recorder changed the report set — \
       campaign-neutrality violated\n"
