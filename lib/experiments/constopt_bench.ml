(* Constant-optimization oracle overhead benchmark (the `bench constopt`
   gate).

   Runs the same fixed seed range twice — once with the paper's default
   oracles and once with the CODDTest-style constant-optimization oracle
   appended — asserts the merged bug-report sets are identical (the
   oracle's single re-execution per eligible check goes through
   Session.query_forced, which counts no statements, records no coverage
   and draws no randomness, so on a bug-free engine it must be
   campaign-neutral), and records both walls plus the overhead fraction
   in BENCH_constopt.json.  The acceptance budget is <15% overhead; the
   configurations run interleaved and each keeps its best wall, like
   trace_bench. *)

open Sqlval

let budget = 0.15

let report_key (r : Pqs.Bug_report.t) =
  (r.Pqs.Bug_report.seed, Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle,
   Pqs.Bug_report.script r)

(* interleaved minima, identical rationale to Trace_bench.best_interleaved *)
let best_interleaved ~batch ~max_runs ~settle run_a run_b =
  let best cur (c, w) =
    match cur with
    | Some (_, w') when (w' : float) <= w -> cur
    | _ -> Some (c, w)
  in
  let rec go a b runs =
    let a = ref a and b = ref b in
    for _ = 1 to batch do
      a := best !a (run_a ());
      b := best !b (run_b ())
    done;
    let _, wa = Option.get !a and _, wb = Option.get !b in
    let runs = runs + batch in
    if runs >= max_runs || (wb -. wa) /. wa < settle then
      (Option.get !a, Option.get !b)
    else go !a !b runs
  in
  go None None 0

let json ~dialect ~databases ~off_wall ~on_wall ~overhead ~identical
    ~statements ~const_checks ~reports =
  String.concat "\n"
    [
      "{";
      "  \"benchmark\": \"constopt\",";
      Printf.sprintf "  \"dialect\": %S," (Dialect.name dialect);
      Printf.sprintf "  \"databases\": %d," databases;
      Printf.sprintf "  \"statements\": %d," statements;
      Printf.sprintf "  \"const_checks\": %d," const_checks;
      Printf.sprintf "  \"reports\": %d," reports;
      Printf.sprintf "  \"oracle_off_wall_s\": %.4f," off_wall;
      Printf.sprintf "  \"oracle_on_wall_s\": %.4f," on_wall;
      Printf.sprintf "  \"overhead_fraction\": %.4f," overhead;
      Printf.sprintf "  \"budget_fraction\": %.2f," budget;
      Printf.sprintf "  \"within_budget\": %b," (overhead < budget);
      Printf.sprintf "  \"identical_reports\": %b" identical;
      "}";
    ]
  ^ "\n"

let run ?(databases = 300) ?(out = "BENCH_constopt.json") () =
  let dialect = Dialect.Sqlite_like in
  let seed_lo = 1 and seed_hi = 1 + databases in
  let campaign ~const_opt () =
    Gc.full_major ();
    let oracles =
      if const_opt then Pqs.Oracle.defaults @ [ Pqs.Const_opt.oracle () ]
      else Pqs.Oracle.defaults
    in
    let config = Pqs.Runner.Config.make ~oracles dialect in
    let c = Pqs.Campaign.run ~domains:1 ~seed_lo ~seed_hi config in
    (c, c.Pqs.Campaign.elapsed)
  in
  ignore (campaign ~const_opt:false ());
  ignore (campaign ~const_opt:true ());
  let (off_c, off_wall), (on_c, on_wall) =
    best_interleaved ~batch:7 ~max_runs:28 ~settle:0.04
      (campaign ~const_opt:false) (campaign ~const_opt:true)
  in
  let overhead =
    if off_wall <= 0.0 then 0.0 else (on_wall -. off_wall) /. off_wall
  in
  let identical =
    List.map report_key (Pqs.Campaign.reports off_c)
    = List.map report_key (Pqs.Campaign.reports on_c)
  in
  let statements = off_c.Pqs.Campaign.stats.Pqs.Stats.statements in
  let const_checks = on_c.Pqs.Campaign.stats.Pqs.Stats.const_checks in
  let reports = List.length (Pqs.Campaign.reports off_c) in
  let oc = open_out out in
  output_string oc
    (json ~dialect ~databases ~off_wall ~on_wall ~overhead ~identical
       ~statements ~const_checks ~reports);
  close_out oc;
  let row label wall (c : Pqs.Campaign.t) =
    [
      label;
      string_of_int c.Pqs.Campaign.stats.Pqs.Stats.statements;
      string_of_int c.Pqs.Campaign.stats.Pqs.Stats.const_checks;
      string_of_int (List.length (Pqs.Campaign.reports c));
      Printf.sprintf "%.3f" wall;
      Printf.sprintf "%.0f"
        (float_of_int c.Pqs.Campaign.stats.Pqs.Stats.statements /. wall);
    ]
  in
  Fmt_table.print
    ~title:
      (Printf.sprintf
         "Const-opt oracle overhead — %d databases, interleaved minima; \
          overhead %.1f%% (budget %.0f%%), report sets identical: %b \
          (written to %s)"
         databases (100.0 *. overhead) (100.0 *. budget) identical out)
    ~columns:
      [
        "oracles"; "statements"; "const-checks"; "reports"; "seconds";
        "stmts/s";
      ]
    [ row "defaults" off_wall off_c; row "defaults+const-opt" on_wall on_c ];
  if overhead >= budget then
    Printf.printf
      "WARNING: const-opt oracle overhead %.1f%% exceeds the %.0f%% budget\n"
      (100.0 *. overhead) (100.0 *. budget);
  if not identical then
    Printf.printf
      "WARNING: enabling the const-opt oracle changed the report set — \
       campaign-neutrality violated\n"
