(* Execution-backend speedup benchmark (the `bench compile` gate).

   Runs the same fixed seed range twice — once with the tree-walking
   interpreter backend and once with the closure-compiling batched
   backend — asserts the merged bug-report sets are identical (the
   backends are observationally equivalent; test_compile proves it
   query-by-query, this gate re-proves it campaign-end-to-end), and
   records both walls plus the rounds-per-second speedup in
   BENCH_compile.json.  The acceptance target is a >=2x campaign
   speedup; the configurations run interleaved and each keeps its best
   wall, like trace_bench.

   The campaign config is query-weighted (more rows per table, more
   queries per pivot than the hunting default) so the per-round mix
   reflects a query-execution-bound campaign — the workload the
   compiled backend exists for.  Both backends run the identical
   config, so the comparison stays apples-to-apples. *)

open Sqlval

let target_speedup = 2.0

(* query-weighted round shape: deeper tables and a heavier query mix
   than the hunting default (max_rows 6, queries_per_pivot 6) *)
let bench_config dialect =
  Pqs.Runner.Config.make ~max_rows:60 ~queries_per_pivot:12 dialect

let report_key (r : Pqs.Bug_report.t) =
  (r.Pqs.Bug_report.seed, Pqs.Bug_report.oracle_label r.Pqs.Bug_report.oracle,
   Pqs.Bug_report.script r)

(* interleaved minima, identical rationale to Trace_bench.best_interleaved *)
let best_interleaved ~batch ~max_runs ~settle run_a run_b =
  let best cur (c, w) =
    match cur with
    | Some (_, w') when (w' : float) <= w -> cur
    | _ -> Some (c, w)
  in
  let rec go a b runs =
    let a = ref a and b = ref b in
    for _ = 1 to batch do
      a := best !a (run_a ());
      b := best !b (run_b ())
    done;
    let _, wa = Option.get !a and _, wb = Option.get !b in
    let runs = runs + batch in
    if runs >= max_runs || (wb -. wa) /. wa < settle then
      (Option.get !a, Option.get !b)
    else go !a !b runs
  in
  go None None 0

let json ~dialect ~databases ~interp_wall ~compiled_wall ~speedup ~identical
    ~statements ~reports =
  String.concat "\n"
    [
      "{";
      "  \"benchmark\": \"compile\",";
      Printf.sprintf "  \"dialect\": %S," (Dialect.name dialect);
      Printf.sprintf "  \"databases\": %d," databases;
      Printf.sprintf "  \"statements\": %d," statements;
      Printf.sprintf "  \"reports\": %d," reports;
      Printf.sprintf "  \"interpreted_wall_s\": %.4f," interp_wall;
      Printf.sprintf "  \"compiled_wall_s\": %.4f," compiled_wall;
      Printf.sprintf "  \"interpreted_rounds_per_s\": %.2f,"
        (float_of_int databases /. interp_wall);
      Printf.sprintf "  \"compiled_rounds_per_s\": %.2f,"
        (float_of_int databases /. compiled_wall);
      Printf.sprintf "  \"speedup\": %.3f," speedup;
      Printf.sprintf "  \"target_speedup\": %.1f," target_speedup;
      Printf.sprintf "  \"met_target\": %b," (speedup >= target_speedup);
      Printf.sprintf "  \"identical_reports\": %b" identical;
      "}";
    ]
  ^ "\n"

let run ?(databases = 100) ?(out = "BENCH_compile.json") () =
  let dialect = Dialect.Sqlite_like in
  let seed_lo = 1 and seed_hi = 1 + databases in
  let campaign ~backend () =
    Gc.full_major ();
    let config = Pqs.Runner.Config.with_backend backend (bench_config dialect) in
    let c = Pqs.Campaign.run ~domains:1 ~seed_lo ~seed_hi config in
    (c, c.Pqs.Campaign.elapsed)
  in
  let interp = campaign ~backend:Engine.Exec_backend.Interpreted in
  let compiled = campaign ~backend:Engine.Exec_backend.Compiled in
  ignore (interp ());
  ignore (compiled ());
  let (i_c, i_wall), (c_c, c_wall) =
    best_interleaved ~batch:7 ~max_runs:28 ~settle:0.04 interp compiled
  in
  let speedup = if c_wall <= 0.0 then 0.0 else i_wall /. c_wall in
  let identical =
    List.map report_key (Pqs.Campaign.reports i_c)
    = List.map report_key (Pqs.Campaign.reports c_c)
  in
  let statements = i_c.Pqs.Campaign.stats.Pqs.Stats.statements in
  let reports = List.length (Pqs.Campaign.reports i_c) in
  let oc = open_out out in
  output_string oc
    (json ~dialect ~databases ~interp_wall:i_wall ~compiled_wall:c_wall
       ~speedup ~identical ~statements ~reports);
  close_out oc;
  let row label wall (c : Pqs.Campaign.t) =
    [
      label;
      string_of_int c.Pqs.Campaign.stats.Pqs.Stats.statements;
      string_of_int (List.length (Pqs.Campaign.reports c));
      Printf.sprintf "%.3f" wall;
      Printf.sprintf "%.1f" (float_of_int databases /. wall);
      Printf.sprintf "%.0f"
        (float_of_int c.Pqs.Campaign.stats.Pqs.Stats.statements /. wall);
    ]
  in
  Fmt_table.print
    ~title:
      (Printf.sprintf
         "Execution-backend speedup — %d query-weighted databases, \
          interleaved minima; speedup %.2fx (target %.1fx), report sets \
          identical: %b (written to %s)"
         databases speedup target_speedup identical out)
    ~columns:
      [ "backend"; "statements"; "reports"; "seconds"; "rounds/s"; "stmts/s" ]
    [ row "interpreted" i_wall i_c; row "compiled" c_wall c_c ];
  if speedup < target_speedup then
    Printf.printf
      "WARNING: compiled-backend speedup %.2fx is below the %.1fx target\n"
      speedup target_speedup;
  if not identical then
    Printf.printf
      "WARNING: switching the execution backend changed the report set — \
       backend equivalence violated\n"
