(* Table 4 reproduction: testing-tool size and DBMS coverage.

   Paper: per-DBMS SQLancer component LOC (SQLite 6,501 / MySQL 3,995 /
   PostgreSQL 4,981, shared 918) against the DBMS LOC, plus line/branch
   coverage of a 24h run (SQLite 43.0%, MySQL 24.4%, PostgreSQL 23.7%).

   We measure (i) source LOC of the PQS library against the engine
   substrate, with a per-dialect attribution proxy (lines inside
   dialect-gated branches), and (ii) engine feature-point coverage of a
   timed PQS run per dialect — the denominator includes feature groups the
   tool never touches, mirroring the untested DBMS subsystems that depress
   the paper's percentages. *)

open Sqlval

let rec find_repo_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_repo_root parent

let loc_of_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then 0
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli")
    |> List.fold_left
         (fun acc f ->
           let path = Filename.concat dir f in
           let ic = open_in path in
           let n = ref 0 in
           (try
              while true do
                ignore (input_line ic);
                incr n
              done
            with End_of_file -> ());
           close_in ic;
           acc + !n)
         0

let count_mentions dir needle =
  if not (Sys.file_exists dir && Sys.is_directory dir) then 0
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
    |> List.fold_left
         (fun acc f ->
           let ic = open_in (Filename.concat dir f) in
           let n = ref 0 in
           (try
              while true do
                let line = input_line ic in
                let rec contains i =
                  i + String.length needle <= String.length line
                  && (String.sub line i (String.length needle) = needle
                     || contains (i + 1))
                in
                if contains 0 then incr n
              done
            with End_of_file -> ());
           close_in ic;
           acc + !n)
         0

let coverage_run dialect ~queries =
  let cov = Engine.Coverage.create () in
  let config = Pqs.Runner.Config.make ~seed:31 ~coverage:cov dialect in
  ignore (Pqs.Runner.run ~max_queries:queries config);
  cov

let run ?(coverage_queries = 2000) () =
  (match find_repo_root (Sys.getcwd ()) with
  | None ->
      Printf.printf
        "\n== Table 4 — component LOC ==\n(source tree not found from cwd; \
         skipping the LOC measurement)\n"
  | Some root ->
      let dir d = Filename.concat root d in
      let pqs_loc = loc_of_dir (dir "lib/core") in
      let engine_loc =
        loc_of_dir (dir "lib/engine")
        + loc_of_dir (dir "lib/storage")
        + loc_of_dir (dir "lib/sqlval")
        + loc_of_dir (dir "lib/sqlast")
        + loc_of_dir (dir "lib/sqlparse")
      in
      let mentions d =
        count_mentions (dir "lib/core") d + count_mentions (dir "lib/engine") d
      in
      let rows =
        List.map
          (fun (d, ctor, paper_loc, paper_cov) ->
            [
              Dialect.display_name d;
              string_of_int (mentions ctor);
              paper_loc;
              paper_cov;
            ])
          [
            (Dialect.Sqlite_like, "Sqlite_like", "6,501", "43.0%");
            (Dialect.Mysql_like, "Mysql_like", "3,995", "24.4%");
            (Dialect.Postgres_like, "Postgres_like", "4,981", "23.7%");
          ]
      in
      Fmt_table.print
        ~title:
          (Printf.sprintf
             "Table 4a — tool size: pqs library %d LOC vs engine substrate %d \
              LOC (ratio %.2f); per-dialect rows count dialect-gated lines"
             pqs_loc engine_loc
             (float_of_int pqs_loc /. float_of_int (max 1 engine_loc)))
        ~columns:[ "DBMS"; "dialect-gated lines"; "paper tool LOC"; "paper cov" ]
        rows);
  let rows =
    List.map
      (fun d ->
        let cov = coverage_run d ~queries:coverage_queries in
        [
          Dialect.display_name d;
          string_of_int (Engine.Coverage.points_hit cov);
          string_of_int (Engine.Coverage.universe_size cov);
          Printf.sprintf "%.1f%%" (100.0 *. Engine.Coverage.fraction cov);
        ])
      Dialect.all
  in
  Fmt_table.print
    ~title:
      (Printf.sprintf
         "Table 4b — engine feature coverage of a %d-query PQS run (paper: \
          43.0%% / 24.4%% / 23.7%% line coverage)"
         coverage_queries)
    ~columns:[ "DBMS"; "points hit"; "universe"; "coverage" ]
    rows
