(** Line tailer for machine-written JSONL files that is robust to
    partial writes, truncation and rotation.

    The fleet aggregator tails per-shard heartbeat files and [sqlancer
    top] tails a campaign trace that may be hours old and logrotated.
    Each {!poll} returns every {e complete} line appended since the last
    poll; a trailing unterminated line is buffered until its newline
    arrives (or discarded by {!drain} / on rotation), so a reader never
    sees a torn record.

    Rotation and truncation are detected by watching the path's inode
    and size: when the file shrinks in place the tailer restarts from
    offset 0, and when the path points at a new inode the old file is
    read to EOF first and then the new one is opened — both surface as a
    {!Rotated} event so accumulating consumers can reset instead of
    double counting.  A missing file is not an error; the tailer waits
    for it to appear. *)

type t

type event =
  | Line of string  (** one complete line, without the newline *)
  | Rotated
      (** the file was truncated or replaced; subsequent lines are from
          the fresh file *)

(** Tail [path]; the file need not exist yet. *)
val create : string -> t

val path : t -> string

(** All events since the previous poll, in order. *)
val poll : t -> event list

(** Like {!poll}, but for a writer that is known to have stopped (e.g. a
    reaped worker): reads to EOF and {e discards} any trailing
    unterminated line — a crash mid-write can never complete it. *)
val drain : t -> event list

(** Byte offset of the first unconsumed byte (diagnostics). *)
val offset : t -> int

val close : t -> unit
