type config = {
  workers : int;
  chunk : int;
  heartbeat_every : int;
  stall_after : float;
  poll : float;
  dir : string;
  export_every : float;
  chaos_kill_after : int option;
}

let default ~dir =
  {
    workers = 2;
    chunk = 32;
    heartbeat_every = 8;
    stall_after = 30.0;
    poll = 0.05;
    dir;
    export_every = 2.0;
    chaos_kill_after = None;
  }

let shard_file dir shard = Filename.concat dir (Printf.sprintf "shard-%d.jsonl" shard)

let shard_files dir =
  (try Array.to_list (Sys.readdir dir) with Sys_error _ -> [])
  |> List.filter_map (fun name ->
         match Scanf.sscanf_opt name "shard-%d.jsonl%!" (fun i -> i) with
         | Some i -> Some (i, Filename.concat dir name)
         | None -> None)
  |> List.sort compare

type result = {
  agg : Aggregate.t;
  elapsed : float;
  spawned : int;
  watchdog_kills : int;
  chaos_kills : int;
  crashes : int;
  requeued_seeds : int;
  decode_errors : int;
}

(* ------------------------------------------------------------------ *)
(* Worker (child process)                                              *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* runs inside the forked child: single-domain round loop over the
   leased range, one heartbeat delta per batch, then _exit (no at_exit
   handlers — the parent's channel buffers were inherited) *)
let worker_loop fleet (rc : Pqs.Runner.config) ~shard ~slot ~lo ~hi =
  let fd =
    Unix.openfile (shard_file fleet.dir shard)
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  (* same nursery sizing rationale as Campaign.run *)
  let () =
    let g = Gc.get () in
    if g.Gc.minor_heap_size < 1 lsl 21 then
      Gc.set { g with Gc.minor_heap_size = 1 lsl 21 }
  in
  let recorder = Pqs.Runner.recorder_for rc in
  let bias = ref Frontier.empty in
  let bugs = rc.Pqs.Runner.Config.bugs in
  let seq = ref 0 in
  let emit ~next ~rounds ~batch_wall ~stats ~tele =
    let reports =
      List.map
        (fun (r : Pqs.Bug_report.t) ->
          let r = Pqs.Reducer.reduce_report r ~bugs in
          {
            Heartbeat.rm_fingerprint = Pqs.Bug_report.fingerprint r;
            rm_oracle = Pqs.Bug_report.oracle_token r.Pqs.Bug_report.oracle;
            rm_seed = r.Pqs.Bug_report.seed;
            rm_bundle = r.Pqs.Bug_report.bundle;
          })
        stats.Pqs.Stats.reports
    in
    let hb =
      {
        Heartbeat.version = Heartbeat.current_version;
        shard;
        slot;
        seq = !seq;
        at = Unix.gettimeofday ();
        range_lo = lo;
        range_hi = hi;
        next_seed = next;
        rounds;
        rounds_per_sec =
          (if batch_wall > 0.0 then float_of_int rounds /. batch_wall else 0.0);
        counters = Heartbeat.counters_of_stats stats;
        frontier = stats.Pqs.Stats.frontier;
        reports;
        telemetry = Telemetry.snapshot tele;
      }
    in
    incr seq;
    write_all fd (Heartbeat.encode hb ^ "\n")
  in
  let rec batches seed =
    if seed < hi then begin
      let batch_hi = min hi (seed + max 1 fleet.heartbeat_every) in
      (* a fresh registry per batch makes the heartbeat's telemetry an
         exact delta; mirror Campaign's per-round recording *)
      let tele =
        if Telemetry.enabled rc.Pqs.Runner.Config.telemetry then
          Telemetry.create ()
        else Telemetry.noop
      in
      let config = Pqs.Runner.Config.with_telemetry tele rc in
      let t0 = Telemetry.Clock.now () in
      let rounds = ref [] in
      for s = seed to batch_hi - 1 do
        let r0 = Telemetry.Clock.now () in
        let round = Pqs.Runner.run_round ~recorder ~bias config ~db_seed:s in
        Telemetry.observe tele "pqs_round_seconds"
          (Telemetry.Clock.now () -. r0);
        Telemetry.inc tele "pqs_rounds_total";
        rounds := round :: !rounds
      done;
      let stats = Pqs.Stats.merge_all (List.rev !rounds) in
      emit ~next:batch_hi ~rounds:(batch_hi - seed)
        ~batch_wall:(Telemetry.Clock.now () -. t0)
        ~stats ~tele;
      batches batch_hi
    end
  in
  batches lo;
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)

type slot = {
  sl_slot : int;
  sl_pid : int;
  sl_shard : int;
  sl_lo : int;
  sl_hi : int;
  mutable sl_watermark : int;
  sl_tail : Tail.t;
}

let run ?(log = fun _ -> ()) fleet (rc : Pqs.Runner.config) ~seed_lo ~seed_hi =
  if fleet.workers < 1 then invalid_arg "Supervisor.run: workers < 1";
  (try Unix.mkdir fleet.dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let agg = Aggregate.create ~dialect:rc.Pqs.Runner.Config.dialect in
  let queue = Range_queue.create ~chunk:fleet.chunk ~lo:seed_lo ~hi:seed_hi in
  let slots : slot option array = Array.make fleet.workers None in
  let shard_counter = ref 0 in
  let spawned = ref 0 in
  let watchdog_kills = ref 0 in
  let chaos_kills = ref 0 in
  let crashes = ref 0 in
  let requeued_seeds = ref 0 in
  let decode_errors = ref 0 in
  let chaos_armed = ref (fleet.chaos_kill_after <> None) in
  let t0 = Telemetry.Clock.now () in
  let now () = Telemetry.Clock.now () -. t0 in

  let feed_line line =
    match Heartbeat.decode line with
    | Ok hb ->
        Aggregate.feed agg ~now:(now ()) hb;
        (match slots.(hb.Heartbeat.slot) with
        | Some sl when sl.sl_shard = hb.Heartbeat.shard ->
            sl.sl_watermark <- max sl.sl_watermark hb.Heartbeat.next_seed
        | _ -> ())
    | Error msg ->
        incr decode_errors;
        log (Printf.sprintf "decode error: %s" msg)
  in
  let consume events =
    List.iter (function Tail.Line l -> feed_line l | Tail.Rotated -> ()) events
  in

  let spawn slot_idx (lo, hi) =
    incr shard_counter;
    incr spawned;
    let shard = !shard_counter in
    let path = shard_file fleet.dir shard in
    (* the worker appends; make sure the tail starts from an empty file *)
    (try Sys.remove path with Sys_error _ -> ());
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (try
           worker_loop fleet rc ~shard ~slot:slot_idx ~lo ~hi;
           Unix._exit 0
         with _ -> Unix._exit 3)
    | pid ->
        slots.(slot_idx) <-
          Some
            {
              sl_slot = slot_idx;
              sl_pid = pid;
              sl_shard = shard;
              sl_lo = lo;
              sl_hi = hi;
              sl_watermark = lo;
              sl_tail = Tail.create path;
            };
        Aggregate.note_spawn agg ~shard ~slot:slot_idx ~lo ~hi ~now:(now ());
        log
          (Printf.sprintf "shard %d spawned (slot %d, pid %d, seeds [%d,%d))"
             shard slot_idx pid lo hi)
  in

  (* a shard is gone (reaped or killed): drain the remaining complete
     heartbeat lines, then requeue the uncovered tail of its lease *)
  let retire sl state =
    consume (Tail.drain sl.sl_tail);
    Tail.close sl.sl_tail;
    Aggregate.set_state agg ~shard:sl.sl_shard state;
    if sl.sl_watermark < sl.sl_hi then begin
      Range_queue.requeue queue ~lo:sl.sl_watermark ~hi:sl.sl_hi;
      requeued_seeds := !requeued_seeds + (sl.sl_hi - sl.sl_watermark);
      log
        (Printf.sprintf "shard %d: requeued seeds [%d,%d)" sl.sl_shard
           sl.sl_watermark sl.sl_hi)
    end;
    slots.(sl.sl_slot) <- None
  in

  let state_json () =
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf
         "{\"type\":\"fleet_state\",\"supervisor_pid\":%d,\"pending\":%d,\
          \"slots\":["
         (Unix.getpid ()) (Range_queue.pending queue));
    let first = ref true in
    Array.iter
      (function
        | None -> ()
        | Some sl ->
            if not !first then Buffer.add_char b ',';
            first := false;
            Buffer.add_string b
              (Printf.sprintf
                 "{\"slot\":%d,\"shard\":%d,\"pid\":%d,\"range\":[%d,%d],\
                  \"watermark\":%d}"
                 sl.sl_slot sl.sl_shard sl.sl_pid sl.sl_lo sl.sl_hi
                 sl.sl_watermark))
      slots;
    Buffer.add_string b "]}\n";
    Buffer.contents b
  in
  let export ~status =
    let n = now () in
    let reg =
      Aggregate.export_registry agg ~now:n ~stall_after:fleet.stall_after
        ~elapsed:n
    in
    Telemetry.write_atomic
      (Filename.concat fleet.dir "metrics.prom")
      (Telemetry.to_prometheus reg);
    Telemetry.write_atomic
      (Filename.concat fleet.dir "fleet.json")
      (Aggregate.snapshot_json agg ~elapsed:n ~status);
    Telemetry.write_atomic (Filename.concat fleet.dir "state.json") (state_json ())
  in

  let last_export = ref neg_infinity in
  let finished () =
    Range_queue.is_empty queue && Array.for_all Option.is_none slots
  in
  while not (finished ()) do
    (* refill empty slots *)
    Array.iteri
      (fun i -> function
        | Some _ -> ()
        | None -> (
            match Range_queue.lease queue with
            | Some r -> spawn i r
            | None -> ()))
      slots;
    Unix.sleepf fleet.poll;
    (* ingest heartbeats *)
    Array.iter
      (function None -> () | Some sl -> consume (Tail.poll sl.sl_tail))
      slots;
    (* reap exited workers *)
    Array.iter
      (function
        | None -> ()
        | Some sl -> (
            match Unix.waitpid [ Unix.WNOHANG ] sl.sl_pid with
            | 0, _ -> ()
            | _, status ->
                consume (Tail.drain sl.sl_tail);
                if status = Unix.WEXITED 0 && sl.sl_watermark >= sl.sl_hi then
                  retire sl Aggregate.Done
                else begin
                  incr crashes;
                  log
                    (Printf.sprintf "shard %d: abnormal exit (%s)" sl.sl_shard
                       (match status with
                       | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                       | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                       | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
                  retire sl Aggregate.Crashed
                end
            | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                retire sl Aggregate.Crashed))
      slots;
    (* watchdog: stalled shards are killed and their lease tail requeued *)
    Array.iter
      (function
        | None -> ()
        | Some sl ->
            let stale =
              match Aggregate.find_shard agg sl.sl_shard with
              | Some sh -> now () -. sh.Aggregate.sh_last > fleet.stall_after
              | None -> false
            in
            if stale then begin
              Aggregate.set_state agg ~shard:sl.sl_shard Aggregate.Stalled;
              log
                (Printf.sprintf "shard %d: stalled, killing pid %d" sl.sl_shard
                   sl.sl_pid);
              (try Unix.kill sl.sl_pid Sys.sigkill
               with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] sl.sl_pid);
              incr watchdog_kills;
              retire sl Aggregate.Killed
            end)
      slots;
    (* fault injection for the kill-recovery gate *)
    (match fleet.chaos_kill_after with
    | Some threshold when !chaos_armed && Aggregate.rounds agg >= threshold -> (
        let victim =
          Array.to_list slots |> List.filter_map Fun.id
          |> List.sort (fun a b -> compare a.sl_slot b.sl_slot)
          |> function
          | [] -> None
          | sl :: _ -> Some sl
        in
        match victim with
        | Some sl ->
            chaos_armed := false;
            incr chaos_kills;
            log
              (Printf.sprintf "chaos: SIGKILL shard %d (pid %d)" sl.sl_shard
                 sl.sl_pid);
            (try Unix.kill sl.sl_pid Sys.sigkill with Unix.Unix_error _ -> ())
        | None -> ())
    | _ -> ());
    if now () -. !last_export >= fleet.export_every then begin
      last_export := now ();
      export ~status:"running"
    end
  done;
  export ~status:"done";
  {
    agg;
    elapsed = now ();
    spawned = !spawned;
    watchdog_kills = !watchdog_kills;
    chaos_kills = !chaos_kills;
    crashes = !crashes;
    requeued_seeds = !requeued_seeds;
    decode_errors = !decode_errors;
  }
