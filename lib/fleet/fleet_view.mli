(** [sqlancer top --fleet]: rebuild a live fleet picture from the
    heartbeat files alone.

    The viewer is a separate process from the supervisor, so it shares no
    clock with the workers; per-shard heartbeat age comes from the shard
    files' mtimes.  {!refresh} is incremental — it discovers newly
    spawned shard files and tails known ones (surviving rotation and
    truncation via {!Tail}), so calling it in a redraw loop tails a
    fleet that is still running. *)

open Sqlval

type t

val create : dialect:Dialect.t -> dir:string -> t

(** Discover new shard files and fold any new heartbeat lines in. *)
val refresh : t -> unit

val aggregate : t -> Aggregate.t

(** Terminal snapshot: fleet totals, per-shard health rows (state,
    lease, watermark, rate, heartbeat age), merged oracle funnel and
    frontier, deduplicated findings with their first-discovering shard.
    [stall_after] controls when a shard with no fresh heartbeats renders
    as stalled.  With [ansi] the output starts with a clear-screen
    sequence. *)
val render : ?ansi:bool -> ?stale:int -> ?stall_after:float -> t -> string

(** The same snapshot as a self-contained HTML report. *)
val render_html : ?stale:int -> ?stall_after:float -> t -> string
