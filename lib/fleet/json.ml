type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

(* Recursive-descent over a string with an explicit cursor.  The inputs
   are single heartbeat/state lines (a few KB), so there is no need for
   incremental or streaming parsing — strictness is the feature: any
   truncated tail must surface as an error, never as a silently shorter
   value. *)

type cursor = { s : string; mutable i : int }

let fail c msg = raise (Fail (Printf.sprintf "%s at byte %d" msg c.i))
let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word v =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let hex_digit = function
  | '0' .. '9' as ch -> Char.code ch - Char.code '0'
  | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
  | _ -> -1

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.i <- c.i + 1
    | Some '\\' -> (
        c.i <- c.i + 1;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some ch ->
            c.i <- c.i + 1;
            (match ch with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if c.i + 4 > String.length c.s then fail c "short \\u escape";
                let v =
                  List.fold_left
                    (fun acc k ->
                      let d = hex_digit c.s.[c.i + k] in
                      if d < 0 then fail c "bad \\u escape" else (acc * 16) + d)
                    0 [ 0; 1; 2; 3 ]
                in
                c.i <- c.i + 4;
                (* our own emitters only escape control bytes this way;
                   other code points round-trip as UTF-8 literals *)
                if v < 0x80 then Buffer.add_char b (Char.chr v)
                else Buffer.add_string b (Printf.sprintf "\\u%04x" v)
            | _ -> fail c "unknown escape");
            go ())
    | Some ch ->
        c.i <- c.i + 1;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.i in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.i < String.length c.s && is_num_char c.s.[c.i] do
    c.i <- c.i + 1
  done;
  match float_of_string_opt (String.sub c.s start (c.i - start)) with
  | Some f -> Num f
  | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' -> parse_obj c
  | Some '[' -> parse_arr c
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

and parse_obj c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then begin
    c.i <- c.i + 1;
    Obj []
  end
  else
    let rec fields acc =
      skip_ws c;
      let key = parse_string c in
      skip_ws c;
      expect c ':';
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' ->
          c.i <- c.i + 1;
          fields ((key, v) :: acc)
      | Some '}' ->
          c.i <- c.i + 1;
          Obj (List.rev ((key, v) :: acc))
      | _ -> fail c "expected ',' or '}'"
    in
    fields []

and parse_arr c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then begin
    c.i <- c.i + 1;
    Arr []
  end
  else
    let rec items acc =
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' ->
          c.i <- c.i + 1;
          items (v :: acc)
      | Some ']' ->
          c.i <- c.i + 1;
          Arr (List.rev (v :: acc))
      | _ -> fail c "expected ',' or ']'"
    in
    items []

let parse s =
  let c = { s; i = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.i = String.length s then Ok v
      else Error (Printf.sprintf "trailing garbage at byte %d" c.i)
  | exception Fail msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 1e15 ->
      Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.add_char b '"';
  Buffer.contents b
