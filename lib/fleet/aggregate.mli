(** Live fleet aggregation: fold shard heartbeats into fleet-wide
    totals with the existing monoid unions.

    Counters add, frontiers merge with [Frontier.union], telemetry
    deltas fold with [Telemetry.record_sample] — so the aggregate over
    any interleaving of shard heartbeats equals the sequential reference
    over the same seeds ({!totals} is the comparable projection; [make
    fleet] asserts the equality, [test_fleet] the split/merge law).
    Findings are deduplicated fleet-wide by minimized-repro fingerprint,
    remembering the {e first} shard that discovered each one.

    One aggregate serves both the supervisor (which also drives the
    watchdog off {!shard} liveness data) and [sqlancer top --fleet]
    (which rebuilds one from the heartbeat files alone). *)

open Sqlval

type shard_state =
  | Running
  | Done  (** exited cleanly with its lease complete *)
  | Stalled  (** heartbeats stopped; the watchdog is about to kill it *)
  | Killed  (** killed by the watchdog (lease tail requeued) *)
  | Crashed  (** exited abnormally on its own (lease tail requeued) *)

val state_name : shard_state -> string
val state_of_name : string -> shard_state option

type shard = {
  sh_shard : int;
  sh_slot : int;
  mutable sh_state : shard_state;
  mutable sh_lo : int;
  mutable sh_hi : int;  (** current lease *)
  mutable sh_next : int;  (** progress watermark *)
  mutable sh_seq : int;  (** last heartbeat sequence number, -1 if none *)
  mutable sh_rounds : int;
  mutable sh_reports : int;
  mutable sh_rate : float;  (** rounds/sec from the latest heartbeat *)
  mutable sh_last : float;
      (** aggregator-clock time of the last heartbeat arrival (or of the
          spawn), the watchdog's staleness input *)
}

type finding = {
  f_fingerprint : string;
  f_oracle : string;
  f_shard : int;  (** first shard that discovered it *)
  f_seed : int;  (** seed of the first discovery *)
  f_bundle : string option;
  f_count : int;  (** total findings sharing the fingerprint *)
}

type t

val create : dialect:Dialect.t -> t
val dialect : t -> Dialect.t

(** Register a freshly spawned shard so the watchdog clock starts at
    spawn, not at the first heartbeat. *)
val note_spawn :
  t -> shard:int -> slot:int -> lo:int -> hi:int -> now:float -> unit

(** Fold one heartbeat in.  [now] is the aggregator's clock (arrival
    time), used only for liveness. *)
val feed : t -> now:float -> Heartbeat.t -> unit

val set_state : t -> shard:int -> shard_state -> unit
val find_shard : t -> int -> shard option

(** All shards, ascending id. *)
val shards : t -> shard list

val rounds : t -> int
val counters : t -> Heartbeat.counters
val frontier : t -> Frontier.t

(** Deduplicated findings in discovery order. *)
val findings : t -> finding list

(** Distinct fingerprints / total reports. *)
val distinct_reports : t -> int

val total_reports : t -> int

(** Per-oracle firing counts, descending — the merged funnel. *)
val oracle_funnel : t -> (string * int) list

(** The merged worker telemetry (phase histograms etc.). *)
val telemetry : t -> Telemetry.t

(** Shards in [Running] state whose last heartbeat is at most
    [stall_after] old. *)
val live_count : t -> now:float -> stall_after:float -> int

(** {1 The exact-merge projection} *)

type totals = {
  tt_rounds : int;
  tt_counters : Heartbeat.counters;
  tt_frontier : Frontier.t;
  tt_fingerprints : (string * string) list;
      (** (fingerprint, oracle) multiset, sorted *)
}

val totals : t -> totals

(** The same projection of a sequential run's merged [Stats];
    [fingerprint] maps a report to its minimized-repro fingerprint. *)
val totals_of_stats :
  fingerprint:(Pqs.Bug_report.t -> string) -> Pqs.Stats.t -> totals

val equal_totals : totals -> totals -> bool

(** Human-readable difference of two projections, for gate failures. *)
val diff_totals : totals -> totals -> string list

(** {1 Export} *)

(** A fresh registry holding the fleet gauges ([pqs_fleet_shards_live],
    [pqs_fleet_shard_rounds_per_sec{shard=...}],
    [pqs_fleet_frontier_fraction], [pqs_fleet_distinct_fingerprints],
    ...) merged with the workers' own telemetry. *)
val export_registry :
  t -> now:float -> stall_after:float -> elapsed:float -> Telemetry.t

(** The fleet JSON snapshot: totals, per-shard health, deduplicated
    findings cross-linking their repro bundles. *)
val snapshot_json : t -> elapsed:float -> status:string -> string
