(** Work-stealing seed-range queue.

    The fleet's seed range [\[lo, hi)] is split into fixed-size chunks
    that worker slots lease one at a time: fast shards come back for
    more, so load balances without any cross-process coordination beyond
    the supervisor handing out leases.  When the watchdog kills a shard,
    the {e unfinished} tail of its lease ([\[watermark, hi)]) is
    {!requeue}d at the front, so the replacement shard resumes exactly
    where the heartbeats stopped — no seed lost, none double-run.

    Single-process (supervisor-side) state; not thread-safe. *)

type t

(** [create ~chunk ~lo ~hi] splits [\[lo, hi)] into leases of at most
    [chunk] seeds (the last one may be shorter). *)
val create : chunk:int -> lo:int -> hi:int -> t

(** Next lease, or [None] when everything has been handed out.
    Requeued ranges are served before fresh chunks. *)
val lease : t -> (int * int) option

(** Return the unfinished part of a lease; empty ranges are ignored. *)
val requeue : t -> lo:int -> hi:int -> unit

(** Seeds not yet leased (including requeued ones). *)
val pending : t -> int

val is_empty : t -> bool
