(** The fleet supervisor: N worker {e processes} over one seed range.

    Scaling out goes through processes, not domains, so one wedged or
    crashed shard can never take the campaign down — the unit the paper
    runs for months.  The supervisor leases seed-range chunks from a
    work-stealing {!Range_queue} to worker slots; each lease forks one
    worker process (a {e shard}) that runs its rounds inline and appends
    {!Heartbeat} deltas to its own file under {!config.dir}.  The
    supervisor tails those files live, folds every heartbeat into an
    {!Aggregate} with the existing monoid unions, and periodically
    exports [metrics.prom] / [fleet.json] / [state.json] snapshots via
    atomic rename.

    The watchdog marks a shard stalled when its heartbeats stop for
    {!config.stall_after} seconds, SIGKILLs it, and requeues the
    unfinished tail of its lease from the last decoded watermark — so a
    killed shard loses no seeds and double-merges none, and the final
    aggregate still satisfies the exact-merge invariant ({!Aggregate.totals}
    equal to a sequential reference over the same range; [make fleet]
    gates on it).

    Workers run their rounds single-domain, so forking is safe; the
    caller must not have spawned other domains.  With
    [Runner.Config.guided] each shard's bias is local to its lease, so
    guided fleet results are not comparable to a sequential reference —
    the exact-merge invariant is stated for blind configs. *)

type config = {
  workers : int;  (** worker slots (concurrent shard processes) *)
  chunk : int;  (** seeds per lease *)
  heartbeat_every : int;  (** rounds per heartbeat batch *)
  stall_after : float;
      (** seconds without a heartbeat before the watchdog kills a shard *)
  poll : float;  (** supervisor poll interval, seconds *)
  dir : string;  (** fleet directory (created if missing) *)
  export_every : float;
      (** seconds between [metrics.prom] / [fleet.json] snapshot exports *)
  chaos_kill_after : int option;
      (** fault-injection hook: once the merged round count reaches this,
          SIGKILL one running shard (once) — the kill-recovery gate *)
}

val default : dir:string -> config

(** Per-shard heartbeat file under a fleet directory,
    [<dir>/shard-<id>.jsonl]. *)
val shard_file : string -> int -> string

(** Heartbeat files present under a fleet directory, ascending shard id. *)
val shard_files : string -> (int * string) list

type result = {
  agg : Aggregate.t;  (** the final fleet aggregate *)
  elapsed : float;
  spawned : int;  (** shards ever forked *)
  watchdog_kills : int;
  chaos_kills : int;
  crashes : int;  (** abnormal worker exits not caused by the supervisor *)
  requeued_seeds : int;  (** seeds re-leased after kills and crashes *)
  decode_errors : int;  (** heartbeat lines that failed strict decode *)
}

(** Run the fleet over [\[seed_lo, seed_hi)].  [log] receives one-line
    progress events (spawn, stall, kill, requeue, export). *)
val run :
  ?log:(string -> unit) ->
  config ->
  Pqs.Runner.config ->
  seed_lo:int ->
  seed_hi:int ->
  result
