open Sqlval

type t = {
  v_dialect : Dialect.t;
  v_dir : string;
  v_agg : Aggregate.t;
  v_universe : string list;
  mutable v_tails : (int * Tail.t) list;
  mutable v_decode_errors : int;
}

let create ~dialect ~dir =
  {
    v_dialect = dialect;
    v_dir = dir;
    v_agg = Aggregate.create ~dialect;
    v_universe = Pqs.Gen_bias.universe dialect;
    v_tails = [];
    v_decode_errors = 0;
  }

let aggregate t = t.v_agg

let refresh t =
  List.iter
    (fun (shard, path) ->
      if not (List.mem_assoc shard t.v_tails) then
        t.v_tails <- t.v_tails @ [ (shard, Tail.create path) ])
    (Supervisor.shard_files t.v_dir);
  let now = Unix.gettimeofday () in
  List.iter
    (fun (_, tail) ->
      List.iter
        (function
          | Tail.Rotated -> ()
          | Tail.Line line -> (
              match Heartbeat.decode line with
              | Ok hb -> Aggregate.feed t.v_agg ~now hb
              | Error _ -> t.v_decode_errors <- t.v_decode_errors + 1))
        (Tail.poll tail))
    t.v_tails

(* heartbeat age from the shard file's mtime: the only liveness signal
   comparable across processes *)
let heartbeat_age t shard ~now =
  match Unix.stat (Supervisor.shard_file t.v_dir shard) with
  | st -> Some (now -. st.Unix.st_mtime)
  | exception Unix.Unix_error _ -> None

(* the viewer has no watchdog; classify shards from progress + age *)
let shard_view_state t (sh : Aggregate.shard) ~now ~stall_after =
  match sh.Aggregate.sh_state with
  | (Aggregate.Killed | Aggregate.Crashed | Aggregate.Stalled) as s -> s
  | _ when sh.Aggregate.sh_next >= sh.Aggregate.sh_hi -> Aggregate.Done
  | _ -> (
      match heartbeat_age t sh.Aggregate.sh_shard ~now with
      | Some age when age > stall_after -> Aggregate.Stalled
      | _ -> Aggregate.Running)

let fleet_rate agg =
  List.fold_left
    (fun acc (sh : Aggregate.shard) ->
      if sh.Aggregate.sh_next < sh.Aggregate.sh_hi then
        acc +. sh.Aggregate.sh_rate
      else acc)
    0.0 (Aggregate.shards agg)

let bar width frac =
  let filled = int_of_float (frac *. float_of_int width) in
  let filled = max 0 (min width filled) in
  String.concat ""
    (List.init width (fun i -> if i < filled then "#" else "-"))

let short_fp fp = if String.length fp > 12 then String.sub fp 0 12 else fp

let render ?(ansi = false) ?(stale = 10) ?(stall_after = 30.0) t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if ansi then Buffer.add_string buf "\027[2J\027[H";
  let now = Unix.gettimeofday () in
  let agg = t.v_agg in
  let shards = Aggregate.shards agg in
  let states =
    List.map (fun sh -> (sh, shard_view_state t sh ~now ~stall_after)) shards
  in
  let live =
    List.length (List.filter (fun (_, s) -> s = Aggregate.Running) states)
  in
  add "pqs fleet — %s (%s)\n" (Dialect.display_name t.v_dialect) t.v_dir;
  add
    "shards %d live / %d total   rounds %d   rounds/s %.1f   distinct repros \
     %d (of %d findings)\n"
    live (List.length shards) (Aggregate.rounds agg) (fleet_rate agg)
    (Aggregate.distinct_reports agg)
    (Aggregate.total_reports agg);
  let frontier = Aggregate.frontier agg in
  let frac = Frontier.fraction ~universe:t.v_universe frontier in
  add "frontier [%s] %d/%d (%.1f%%)\n" (bar 32 frac)
    (Frontier.hit_in ~universe:t.v_universe frontier)
    (List.length t.v_universe) (100.0 *. frac);
  if shards = [] then add "shards: (no heartbeats yet)\n"
  else begin
    add "  %-5s %-8s %-4s %-16s %-8s %-7s %-7s %s\n" "shard" "state" "slot"
      "lease" "next" "rounds" "rps" "hb-age";
    List.iter
      (fun ((sh : Aggregate.shard), state) ->
        add "  %-5d %-8s %-4d %-16s %-8d %-7d %-7.1f %s\n"
          sh.Aggregate.sh_shard
          (Aggregate.state_name state)
          sh.Aggregate.sh_slot
          (Printf.sprintf "[%d,%d)" sh.Aggregate.sh_lo sh.Aggregate.sh_hi)
          sh.Aggregate.sh_next sh.Aggregate.sh_rounds sh.Aggregate.sh_rate
          (match heartbeat_age t sh.Aggregate.sh_shard ~now with
          | Some age -> Printf.sprintf "%.1fs" age
          | None -> "n/a"))
      states
  end;
  (match Aggregate.oracle_funnel agg with
  | [] -> add "oracle funnel: (no findings yet)\n"
  | funnel ->
      add "oracle funnel:\n";
      List.iter (fun (o, c) -> add "  %-14s %d\n" o c) funnel);
  (match Aggregate.findings agg with
  | [] -> ()
  | findings ->
      add "findings (distinct repros, first-discovering shard):\n";
      List.iter
        (fun (f : Aggregate.finding) ->
          add "  %s  %-14s shard %d seed %d  ×%d%s\n"
            (short_fp f.Aggregate.f_fingerprint)
            f.Aggregate.f_oracle f.Aggregate.f_shard f.Aggregate.f_seed
            f.Aggregate.f_count
            (match f.Aggregate.f_bundle with
            | Some b -> "  " ^ b
            | None -> ""))
        findings);
  let cold =
    Frontier.coldest ~n:stale ~universe:t.v_universe frontier
    |> List.filter (fun (_, hits) -> hits = 0)
  in
  (match cold with
  | [] -> add "frontier fully exercised\n"
  | cold ->
      add "stale points (%d coldest):\n" (List.length cold);
      List.iter (fun (p, _) -> add "  %s\n" p) cold);
  Buffer.contents buf

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_html ?(stale = 25) ?(stall_after = 30.0) t =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let now = Unix.gettimeofday () in
  let agg = t.v_agg in
  let shards = Aggregate.shards agg in
  let frontier = Aggregate.frontier agg in
  let frac = Frontier.fraction ~universe:t.v_universe frontier in
  add "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  add "<title>pqs fleet report — %s</title>\n"
    (html_escape (Dialect.display_name t.v_dialect));
  add
    "<style>body{font-family:monospace;margin:2em;background:#111;color:#eee}\n\
     table{border-collapse:collapse;margin:1em 0}\n\
     td,th{border:1px solid #444;padding:4px 10px;text-align:left}\n\
     .bar{background:#333;width:320px;height:14px;display:inline-block}\n\
     .fill{background:#4c4;height:14px;display:block}\n\
     h1,h2{color:#8cf}.cold{color:#fa6}.bad{color:#f66}</style></head><body>\n";
  add "<h1>pqs fleet — %s</h1>\n"
    (html_escape (Dialect.display_name t.v_dialect));
  add "<p>%s</p>\n" (html_escape t.v_dir);
  add
    "<table><tr><th>shards</th><th>rounds</th><th>rounds/s</th>\
     <th>reports</th><th>distinct repros</th></tr>";
  add "<tr><td>%d</td><td>%d</td><td>%.1f</td><td>%d</td><td>%d</td></tr>\
       </table>\n"
    (List.length shards) (Aggregate.rounds agg) (fleet_rate agg)
    (Aggregate.total_reports agg)
    (Aggregate.distinct_reports agg);
  add "<h2>Shards</h2>\n";
  add
    "<table><tr><th>shard</th><th>state</th><th>slot</th><th>lease</th>\
     <th>next</th><th>rounds</th><th>rps</th><th>hb age</th></tr>";
  List.iter
    (fun (sh : Aggregate.shard) ->
      let state = shard_view_state t sh ~now ~stall_after in
      let cls =
        match state with
        | Aggregate.Stalled | Aggregate.Killed | Aggregate.Crashed ->
            " class=\"bad\""
        | _ -> ""
      in
      add
        "<tr><td>%d</td><td%s>%s</td><td>%d</td><td>[%d,%d)</td><td>%d</td>\
         <td>%d</td><td>%.1f</td><td>%s</td></tr>"
        sh.Aggregate.sh_shard cls
        (Aggregate.state_name state)
        sh.Aggregate.sh_slot sh.Aggregate.sh_lo sh.Aggregate.sh_hi
        sh.Aggregate.sh_next sh.Aggregate.sh_rounds sh.Aggregate.sh_rate
        (match heartbeat_age t sh.Aggregate.sh_shard ~now with
        | Some age -> Printf.sprintf "%.1fs" age
        | None -> "n/a"))
    shards;
  add "</table>\n";
  add "<h2>Coverage frontier</h2>\n";
  add
    "<p><span class=\"bar\"><span class=\"fill\" style=\"width:%.1f%%\">\
     </span></span> %d/%d points (%.1f%%)</p>\n"
    (100.0 *. frac)
    (Frontier.hit_in ~universe:t.v_universe frontier)
    (List.length t.v_universe) (100.0 *. frac);
  add "<h2>Oracle funnel</h2>\n";
  (match Aggregate.oracle_funnel agg with
  | [] -> add "<p>(no findings)</p>\n"
  | funnel ->
      add "<table><tr><th>oracle</th><th>firings</th></tr>";
      List.iter
        (fun (o, c) -> add "<tr><td>%s</td><td>%d</td></tr>" (html_escape o) c)
        funnel;
      add "</table>\n");
  add "<h2>Distinct findings</h2>\n";
  (match Aggregate.findings agg with
  | [] -> add "<p>(no findings)</p>\n"
  | findings ->
      add
        "<table><tr><th>fingerprint</th><th>oracle</th><th>first shard</th>\
         <th>first seed</th><th>count</th><th>bundle</th></tr>";
      List.iter
        (fun (f : Aggregate.finding) ->
          add
            "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td>\
             <td>%s</td></tr>"
            (html_escape (short_fp f.Aggregate.f_fingerprint))
            (html_escape f.Aggregate.f_oracle)
            f.Aggregate.f_shard f.Aggregate.f_seed f.Aggregate.f_count
            (match f.Aggregate.f_bundle with
            | Some b -> html_escape b
            | None -> "-"))
        findings;
      add "</table>\n");
  add "<h2>Stale frontier points</h2>\n";
  let cold =
    Frontier.coldest ~n:stale ~universe:t.v_universe frontier
    |> List.filter (fun (_, hits) -> hits = 0)
  in
  (match cold with
  | [] -> add "<p>frontier fully exercised</p>\n"
  | cold ->
      add "<table><tr><th>point</th></tr>";
      List.iter
        (fun (p, _) -> add "<tr><td class=\"cold\">%s</td></tr>" (html_escape p))
        cold;
      add "</table>\n");
  add "</body></html>\n";
  Buffer.contents buf
