type event = Line of string | Rotated

type t = {
  t_path : string;
  mutable fd : Unix.file_descr option;
  mutable ino : int;  (** inode of the opened file *)
  mutable off : int;  (** bytes consumed from the opened file *)
  partial : Buffer.t;  (** unterminated tail of the last read *)
  chunk : Bytes.t;
}

let create path =
  {
    t_path = path;
    fd = None;
    ino = -1;
    off = 0;
    partial = Buffer.create 256;
    chunk = Bytes.create 65536;
  }

let path t = t.t_path

let close t =
  (match t.fd with Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ()) | None -> ());
  t.fd <- None;
  t.ino <- -1;
  t.off <- 0;
  Buffer.clear t.partial

let try_open t =
  match Unix.openfile t.t_path [ Unix.O_RDONLY ] 0 with
  | fd ->
      let st = Unix.fstat fd in
      t.fd <- Some fd;
      t.ino <- st.Unix.st_ino;
      t.off <- 0;
      Buffer.clear t.partial;
      true
  | exception Unix.Unix_error _ -> false

(* read from the current offset to EOF, splitting into complete lines;
   the unterminated tail stays in [t.partial] *)
let read_lines t fd acc =
  let rec go acc =
    match Unix.read fd t.chunk 0 (Bytes.length t.chunk) with
    | 0 | (exception Unix.Unix_error (Unix.EINTR, _, _)) -> acc
    | n ->
        t.off <- t.off + n;
        let rec split acc start =
          match Bytes.index_from_opt t.chunk start '\n' with
          | Some i when i < n ->
              Buffer.add_subbytes t.partial t.chunk start (i - start);
              let line = Buffer.contents t.partial in
              Buffer.clear t.partial;
              split (Line line :: acc) (i + 1)
          | _ ->
              Buffer.add_subbytes t.partial t.chunk start (n - start);
              acc
        in
        go (split acc 0)
  in
  go acc

let poll t =
  (* detect in-place truncation and path rotation before reading: a
     shrunk or replaced file means our offset points into stale data *)
  let events = ref [] in
  (match t.fd with
  | None -> ignore (try_open t)
  | Some fd -> (
      let cur = try Some (Unix.fstat fd) with Unix.Unix_error _ -> None in
      let on_path = try Some (Unix.stat t.t_path) with Unix.Unix_error _ -> None in
      match (cur, on_path) with
      | Some cur, _ when cur.Unix.st_size < t.off ->
          (* truncated in place: restart from the top of the same file *)
          ignore (Unix.lseek fd 0 Unix.SEEK_SET);
          t.off <- 0;
          Buffer.clear t.partial;
          events := [ Rotated ]
      | Some _, Some st when st.Unix.st_ino <> t.ino ->
          (* rotated: finish the old file, then switch to the new one *)
          events := List.rev (read_lines t fd []);
          close t;
          if try_open t then events := !events @ [ Rotated ]
      | Some _, None ->
          (* path deleted; keep draining the open file until it reappears *)
          ()
      | None, _ -> close t
      | _ -> ()));
  match t.fd with
  | None -> !events
  | Some fd -> !events @ List.rev (read_lines t fd [])

let drain t =
  let events = poll t in
  Buffer.clear t.partial;
  events

let offset t = t.off - Buffer.length t.partial
