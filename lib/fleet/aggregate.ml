open Sqlval

type shard_state = Running | Done | Stalled | Killed | Crashed

let state_name = function
  | Running -> "running"
  | Done -> "done"
  | Stalled -> "stalled"
  | Killed -> "killed"
  | Crashed -> "crashed"

let state_of_name = function
  | "running" -> Some Running
  | "done" -> Some Done
  | "stalled" -> Some Stalled
  | "killed" -> Some Killed
  | "crashed" -> Some Crashed
  | _ -> None

type shard = {
  sh_shard : int;
  sh_slot : int;
  mutable sh_state : shard_state;
  mutable sh_lo : int;
  mutable sh_hi : int;
  mutable sh_next : int;
  mutable sh_seq : int;
  mutable sh_rounds : int;
  mutable sh_reports : int;
  mutable sh_rate : float;
  mutable sh_last : float;
}

type finding = {
  f_fingerprint : string;
  f_oracle : string;
  f_shard : int;
  f_seed : int;
  f_bundle : string option;
  f_count : int;
}

type t = {
  agg_dialect : Dialect.t;
  universe : string list;
  shards_tbl : (int, shard) Hashtbl.t;
  mutable agg_rounds : int;
  mutable agg_counters : Heartbeat.counters;
  mutable agg_frontier : Frontier.t;
  mutable agg_total_reports : int;
  findings_tbl : (string, finding) Hashtbl.t;
  mutable findings_order : string list;  (** reverse discovery order *)
  agg_telemetry : Telemetry.t;
}

let create ~dialect =
  {
    agg_dialect = dialect;
    universe = Pqs.Gen_bias.universe dialect;
    shards_tbl = Hashtbl.create 16;
    agg_rounds = 0;
    agg_counters = Heartbeat.zero_counters;
    agg_frontier = Frontier.empty;
    agg_total_reports = 0;
    findings_tbl = Hashtbl.create 16;
    findings_order = [];
    agg_telemetry = Telemetry.create ();
  }

let dialect t = t.agg_dialect

let get_shard t ~shard ~slot ~now =
  match Hashtbl.find_opt t.shards_tbl shard with
  | Some s -> s
  | None ->
      let s =
        {
          sh_shard = shard;
          sh_slot = slot;
          sh_state = Running;
          sh_lo = 0;
          sh_hi = 0;
          sh_next = 0;
          sh_seq = -1;
          sh_rounds = 0;
          sh_reports = 0;
          sh_rate = 0.0;
          sh_last = now;
        }
      in
      Hashtbl.replace t.shards_tbl shard s;
      s

let note_spawn t ~shard ~slot ~lo ~hi ~now =
  let s = get_shard t ~shard ~slot ~now in
  s.sh_lo <- lo;
  s.sh_hi <- hi;
  s.sh_next <- lo;
  s.sh_last <- now;
  s.sh_state <- Running

let feed t ~now (hb : Heartbeat.t) =
  let s = get_shard t ~shard:hb.Heartbeat.shard ~slot:hb.Heartbeat.slot ~now in
  s.sh_lo <- hb.Heartbeat.range_lo;
  s.sh_hi <- hb.Heartbeat.range_hi;
  s.sh_next <- hb.Heartbeat.next_seed;
  s.sh_seq <- max s.sh_seq hb.Heartbeat.seq;
  s.sh_rounds <- s.sh_rounds + hb.Heartbeat.rounds;
  s.sh_reports <- s.sh_reports + List.length hb.Heartbeat.reports;
  s.sh_rate <- hb.Heartbeat.rounds_per_sec;
  s.sh_last <- now;
  t.agg_rounds <- t.agg_rounds + hb.Heartbeat.rounds;
  t.agg_counters <- Heartbeat.add_counters t.agg_counters hb.Heartbeat.counters;
  t.agg_frontier <- Frontier.union t.agg_frontier hb.Heartbeat.frontier;
  t.agg_total_reports <- t.agg_total_reports + List.length hb.Heartbeat.reports;
  List.iter
    (fun (r : Heartbeat.report_meta) ->
      match Hashtbl.find_opt t.findings_tbl r.Heartbeat.rm_fingerprint with
      | Some f ->
          Hashtbl.replace t.findings_tbl r.Heartbeat.rm_fingerprint
            { f with f_count = f.f_count + 1 }
      | None ->
          Hashtbl.replace t.findings_tbl r.Heartbeat.rm_fingerprint
            {
              f_fingerprint = r.Heartbeat.rm_fingerprint;
              f_oracle = r.Heartbeat.rm_oracle;
              f_shard = hb.Heartbeat.shard;
              f_seed = r.Heartbeat.rm_seed;
              f_bundle = r.Heartbeat.rm_bundle;
              f_count = 1;
            };
          t.findings_order <- r.Heartbeat.rm_fingerprint :: t.findings_order)
    hb.Heartbeat.reports;
  List.iter
    (fun sample -> Telemetry.record_sample t.agg_telemetry sample)
    hb.Heartbeat.telemetry

let set_state t ~shard state =
  match Hashtbl.find_opt t.shards_tbl shard with
  | Some s -> s.sh_state <- state
  | None -> ()

let find_shard t shard = Hashtbl.find_opt t.shards_tbl shard

let shards t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.shards_tbl []
  |> List.sort (fun a b -> compare a.sh_shard b.sh_shard)

let rounds t = t.agg_rounds
let counters t = t.agg_counters
let frontier t = t.agg_frontier

let findings t =
  List.rev_map (fun fp -> Hashtbl.find t.findings_tbl fp) t.findings_order

let distinct_reports t = Hashtbl.length t.findings_tbl
let total_reports t = t.agg_total_reports

let oracle_funnel t =
  let tbl = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ f ->
      let prev =
        match Hashtbl.find_opt tbl f.f_oracle with Some n -> n | None -> 0
      in
      Hashtbl.replace tbl f.f_oracle (prev + f.f_count))
    t.findings_tbl;
  Hashtbl.fold (fun o n acc -> (o, n) :: acc) tbl []
  |> List.sort (fun (oa, a) (ob, b) ->
         match compare b a with 0 -> compare oa ob | c -> c)

let telemetry t = t.agg_telemetry

let live_count t ~now ~stall_after =
  Hashtbl.fold
    (fun _ s acc ->
      if s.sh_state = Running && now -. s.sh_last <= stall_after then acc + 1
      else acc)
    t.shards_tbl 0

(* ------------------------------------------------------------------ *)
(* The exact-merge projection                                          *)

type totals = {
  tt_rounds : int;
  tt_counters : Heartbeat.counters;
  tt_frontier : Frontier.t;
  tt_fingerprints : (string * string) list;
}

let totals t =
  let fps =
    Hashtbl.fold
      (fun fp f acc -> List.init f.f_count (fun _ -> (fp, f.f_oracle)) @ acc)
      t.findings_tbl []
  in
  {
    tt_rounds = t.agg_rounds;
    tt_counters = t.agg_counters;
    tt_frontier = t.agg_frontier;
    tt_fingerprints = List.sort compare fps;
  }

let totals_of_stats ~fingerprint (s : Pqs.Stats.t) =
  let fps =
    List.map
      (fun (r : Pqs.Bug_report.t) ->
        (fingerprint r, Pqs.Bug_report.oracle_token r.Pqs.Bug_report.oracle))
      s.Pqs.Stats.reports
  in
  {
    tt_rounds = s.Pqs.Stats.databases;
    tt_counters = Heartbeat.counters_of_stats s;
    tt_frontier = s.Pqs.Stats.frontier;
    tt_fingerprints = List.sort compare fps;
  }

let equal_totals a b =
  a.tt_rounds = b.tt_rounds
  && a.tt_counters = b.tt_counters
  && Frontier.points a.tt_frontier = Frontier.points b.tt_frontier
  && a.tt_fingerprints = b.tt_fingerprints

let diff_totals a b =
  let diffs = ref [] in
  let note fmt = Printf.ksprintf (fun s -> diffs := s :: !diffs) fmt in
  if a.tt_rounds <> b.tt_rounds then
    note "rounds: %d vs %d" a.tt_rounds b.tt_rounds;
  List.iter2
    (fun (name, x) (_, y) -> if x <> y then note "%s: %d vs %d" name x y)
    (Heartbeat.counter_fields a.tt_counters)
    (Heartbeat.counter_fields b.tt_counters);
  if Frontier.points a.tt_frontier <> Frontier.points b.tt_frontier then
    note "frontier: %d vs %d points"
      (Frontier.cardinal a.tt_frontier)
      (Frontier.cardinal b.tt_frontier);
  if a.tt_fingerprints <> b.tt_fingerprints then
    note "fingerprints: %d vs %d"
      (List.length a.tt_fingerprints)
      (List.length b.tt_fingerprints);
  List.rev !diffs

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let export_registry t ~now ~stall_after ~elapsed =
  let reg = Telemetry.create () in
  Telemetry.set_gauge reg "pqs_fleet_shards_live"
    (float_of_int (live_count t ~now ~stall_after));
  Telemetry.set_gauge reg "pqs_fleet_shards_total"
    (float_of_int (Hashtbl.length t.shards_tbl));
  Telemetry.inc reg ~by:t.agg_rounds "pqs_fleet_rounds_total";
  Telemetry.inc reg ~by:t.agg_counters.Heartbeat.statements
    "pqs_fleet_statements_total";
  Telemetry.inc reg ~by:t.agg_total_reports "pqs_fleet_reports_total";
  Telemetry.set_gauge reg "pqs_fleet_distinct_fingerprints"
    (float_of_int (distinct_reports t));
  Telemetry.set_gauge reg "pqs_fleet_rounds_per_sec"
    (if elapsed > 0.0 then float_of_int t.agg_rounds /. elapsed else 0.0);
  let labels = [ ("dialect", Dialect.name t.agg_dialect) ] in
  Telemetry.set_gauge reg ~labels "pqs_fleet_frontier_points_hit"
    (float_of_int (Frontier.hit_in ~universe:t.universe t.agg_frontier));
  Telemetry.set_gauge reg ~labels "pqs_fleet_frontier_fraction"
    (Frontier.fraction ~universe:t.universe t.agg_frontier);
  List.iter
    (fun s ->
      Telemetry.set_gauge reg
        ~labels:[ ("shard", string_of_int s.sh_shard) ]
        "pqs_fleet_shard_rounds_per_sec" s.sh_rate)
    (shards t);
  Telemetry.merge_into ~dst:reg ~src:t.agg_telemetry;
  reg

let snapshot_json t ~elapsed ~status =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let c = t.agg_counters in
  add "{\n  \"type\": \"fleet\",\n  \"version\": %d,\n" Heartbeat.current_version;
  add "  \"dialect\": %s,\n" (Json.quote (Dialect.name t.agg_dialect));
  add "  \"status\": %s,\n" (Json.quote status);
  add "  \"elapsed_s\": %.3f,\n" elapsed;
  add "  \"rounds\": %d,\n" t.agg_rounds;
  add "  \"statements\": %d,\n" c.Heartbeat.statements;
  add "  \"queries\": %d,\n" c.Heartbeat.queries;
  add "  \"reports\": %d,\n" t.agg_total_reports;
  add "  \"distinct_reports\": %d,\n" (distinct_reports t);
  add "  \"rounds_per_sec\": %.2f,\n"
    (if elapsed > 0.0 then float_of_int t.agg_rounds /. elapsed else 0.0);
  add "  \"frontier\": {\"hit\": %d, \"universe\": %d, \"fraction\": %.4f},\n"
    (Frontier.hit_in ~universe:t.universe t.agg_frontier)
    (List.length t.universe)
    (Frontier.fraction ~universe:t.universe t.agg_frontier);
  add "  \"shards\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      add
        "\n    {\"shard\": %d, \"slot\": %d, \"state\": %s, \"range\": [%d, \
         %d], \"next\": %d, \"rounds\": %d, \"reports\": %d, \"rps\": %.2f}"
        s.sh_shard s.sh_slot
        (Json.quote (state_name s.sh_state))
        s.sh_lo s.sh_hi s.sh_next s.sh_rounds s.sh_reports s.sh_rate)
    (shards t);
  add "\n  ],\n  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      add
        "\n    {\"fingerprint\": %s, \"oracle\": %s, \"first_shard\": %d, \
         \"first_seed\": %d, \"count\": %d%s}"
        (Json.quote f.f_fingerprint) (Json.quote f.f_oracle) f.f_shard f.f_seed
        f.f_count
        (match f.f_bundle with
        | Some path -> Printf.sprintf ", \"bundle\": %s" (Json.quote path)
        | None -> ""))
    (findings t);
  add "\n  ]\n}\n";
  Buffer.contents b
