(** The fleet heartbeat: a versioned JSONL record carrying one shard's
    monoid deltas.

    Every worker process periodically appends one {!t} per batch of
    completed rounds to its per-shard file under the fleet directory.  A
    heartbeat is a pure {e delta}: the batch's {!counters} (the additive
    projection of [Stats]), the batch's [Frontier] points, the batch's
    telemetry registry snapshot, and the minimized-repro fingerprints of
    any findings.  Deltas merge with the existing monoid unions, so the
    supervisor's aggregation over arbitrarily split and interleaved
    heartbeats is {e exactly} the sequential reference over the same
    seeds — the fleet's exact-merge invariant ([make fleet] asserts it,
    [test_fleet] proves the split/merge property).

    [next_seed] is the progress watermark: the first seed of the leased
    range {e not yet covered by any emitted heartbeat}.  A killed shard
    is requeued from its last decoded watermark, so no seed is lost and
    none is double-merged.

    The codec is strict and versioned: {!decode} rejects partial lines
    (the tailer simply waits for the terminating newline) and unknown
    versions, and ignores unknown fields, so records can grow. *)

type counters = {
  databases : int;
  pivots : int;
  queries : int;
  statements : int;
  interp_failures : int;
  false_positives : int;
  negative_checks : int;
  lint_checks : int;
  lint_diagnostics : int;
  plan_checks : int;
  plan_divergences : int;
  const_checks : int;
  const_divergences : int;
  truth_true : int;
  truth_false : int;
  truth_unknown : int;
}
(** The additive integer projection of [Stats.t] — everything except the
    report list (carried as {!report_meta}) and the frontier (carried as
    explicit points). *)

val zero_counters : counters
val counters_of_stats : Pqs.Stats.t -> counters
val add_counters : counters -> counters -> counters

(** The record as a named field list, in declaration order — the codec
    and diff reporting walk this so they can never drift from the record
    shape. *)
val counter_fields : counters -> (string * int) list

type report_meta = {
  rm_fingerprint : string;
      (** hex digest of the minimized repro ([Bug_report.fingerprint]) *)
  rm_oracle : string;  (** [Bug_report.oracle_token] *)
  rm_seed : int;
  rm_bundle : string option;  (** repro bundle path, when one was written *)
}

type t = {
  version : int;  (** codec version; this writer emits {!current_version} *)
  shard : int;  (** worker spawn id (unique per fleet) *)
  slot : int;  (** supervisor slot the shard runs in *)
  seq : int;  (** per-shard sequence number, from 0 *)
  at : float;  (** worker wall-clock seconds (informational only) *)
  range_lo : int;
  range_hi : int;  (** the leased seed range *)
  next_seed : int;  (** progress watermark, see above *)
  rounds : int;  (** rounds covered by this delta *)
  rounds_per_sec : float;  (** the shard's rate over this batch *)
  counters : counters;
  frontier : Frontier.t;
  reports : report_meta list;
  telemetry : Telemetry.sample list;
      (** snapshot of a per-batch registry (a delta by construction) *)
}

val current_version : int

(** One JSON object, no trailing newline.  Point names, oracle tokens and
    fingerprints are escaped, so any path/value round-trips. *)
val encode : t -> string

(** Strict decode; [Error] on truncation, syntax errors, or an
    unsupported version.  Unknown fields are ignored. *)
val decode : string -> (t, string) result

(** Structural equality of the mergeable payload (counters, frontier,
    report multiset), the exact-merge test relation. *)
val equal_payload : t -> t -> bool
