(** Minimal JSON values: just enough to decode the fleet's own
    machine-written heartbeat and state records.

    The encoder side of those records is hand-built (printf over escaped
    strings, like every other exporter in the tree), so this module only
    has to parse what we emit: objects, arrays, strings with the standard
    escapes, numbers, booleans and null.  It is a strict recursive-descent
    parser — trailing garbage or a truncated document is an [Error], which
    is what makes the heartbeat tailer robust to partial writes. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** fields in document order *)

(** Parse one complete JSON document; [Error msg] on any syntax error,
    truncation or trailing garbage. *)
val parse : string -> (t, string) result

(** {1 Accessors} — total lookups for decoding hand-written records. *)

(** Field of an object ([None] for other constructors or missing key). *)
val member : string -> t -> t option

val to_int : t -> int option

(** Accepts both [Num] and integer-valued floats. *)
val to_float : t -> float option

val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option

(** {1 Encoding helper} *)

(** Escape a string into a quoted JSON literal. *)
val quote : string -> string
