type t = {
  mutable front : (int * int) list;  (** requeued ranges, served first *)
  rest : (int * int) Queue.t;
}

let create ~chunk ~lo ~hi =
  let chunk = max 1 chunk in
  let rest = Queue.create () in
  let rec fill lo =
    if lo < hi then begin
      Queue.add (lo, min hi (lo + chunk)) rest;
      fill (lo + chunk)
    end
  in
  fill lo;
  { front = []; rest }

let lease t =
  match t.front with
  | r :: tl ->
      t.front <- tl;
      Some r
  | [] -> ( match Queue.take_opt t.rest with Some r -> Some r | None -> None)

let requeue t ~lo ~hi = if lo < hi then t.front <- (lo, hi) :: t.front

let pending t =
  let span (lo, hi) = hi - lo in
  List.fold_left (fun acc r -> acc + span r) 0 t.front
  + Queue.fold (fun acc r -> acc + span r) 0 t.rest

let is_empty t = t.front = [] && Queue.is_empty t.rest
