open Sqlval

type counters = {
  databases : int;
  pivots : int;
  queries : int;
  statements : int;
  interp_failures : int;
  false_positives : int;
  negative_checks : int;
  lint_checks : int;
  lint_diagnostics : int;
  plan_checks : int;
  plan_divergences : int;
  const_checks : int;
  const_divergences : int;
  truth_true : int;
  truth_false : int;
  truth_unknown : int;
}

let zero_counters =
  {
    databases = 0;
    pivots = 0;
    queries = 0;
    statements = 0;
    interp_failures = 0;
    false_positives = 0;
    negative_checks = 0;
    lint_checks = 0;
    lint_diagnostics = 0;
    plan_checks = 0;
    plan_divergences = 0;
    const_checks = 0;
    const_divergences = 0;
    truth_true = 0;
    truth_false = 0;
    truth_unknown = 0;
  }

let truth_count tv (s : Pqs.Stats.t) =
  match List.assoc_opt tv s.Pqs.Stats.truth_values with
  | Some n -> n
  | None -> 0

let counters_of_stats (s : Pqs.Stats.t) =
  {
    databases = s.Pqs.Stats.databases;
    pivots = s.Pqs.Stats.pivots;
    queries = s.Pqs.Stats.queries;
    statements = s.Pqs.Stats.statements;
    interp_failures = s.Pqs.Stats.interp_failures;
    false_positives = s.Pqs.Stats.false_positives;
    negative_checks = s.Pqs.Stats.negative_checks;
    lint_checks = s.Pqs.Stats.lint_checks;
    lint_diagnostics = s.Pqs.Stats.lint_diagnostics;
    plan_checks = s.Pqs.Stats.plan_checks;
    plan_divergences = s.Pqs.Stats.plan_divergences;
    const_checks = s.Pqs.Stats.const_checks;
    const_divergences = s.Pqs.Stats.const_divergences;
    truth_true = truth_count Tvl.True s;
    truth_false = truth_count Tvl.False s;
    truth_unknown = truth_count Tvl.Unknown s;
  }

let add_counters a b =
  {
    databases = a.databases + b.databases;
    pivots = a.pivots + b.pivots;
    queries = a.queries + b.queries;
    statements = a.statements + b.statements;
    interp_failures = a.interp_failures + b.interp_failures;
    false_positives = a.false_positives + b.false_positives;
    negative_checks = a.negative_checks + b.negative_checks;
    lint_checks = a.lint_checks + b.lint_checks;
    lint_diagnostics = a.lint_diagnostics + b.lint_diagnostics;
    plan_checks = a.plan_checks + b.plan_checks;
    plan_divergences = a.plan_divergences + b.plan_divergences;
    const_checks = a.const_checks + b.const_checks;
    const_divergences = a.const_divergences + b.const_divergences;
    truth_true = a.truth_true + b.truth_true;
    truth_false = a.truth_false + b.truth_false;
    truth_unknown = a.truth_unknown + b.truth_unknown;
  }

(* the codec walks counters as a named field list so encode and decode
   can never drift from the record shape *)
let counter_fields c =
  [
    ("databases", c.databases);
    ("pivots", c.pivots);
    ("queries", c.queries);
    ("statements", c.statements);
    ("interp_failures", c.interp_failures);
    ("false_positives", c.false_positives);
    ("negative_checks", c.negative_checks);
    ("lint_checks", c.lint_checks);
    ("lint_diagnostics", c.lint_diagnostics);
    ("plan_checks", c.plan_checks);
    ("plan_divergences", c.plan_divergences);
    ("const_checks", c.const_checks);
    ("const_divergences", c.const_divergences);
    ("truth_true", c.truth_true);
    ("truth_false", c.truth_false);
    ("truth_unknown", c.truth_unknown);
  ]

let counters_of_json j =
  let get name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some n -> n
    | None -> 0
  in
  {
    databases = get "databases";
    pivots = get "pivots";
    queries = get "queries";
    statements = get "statements";
    interp_failures = get "interp_failures";
    false_positives = get "false_positives";
    negative_checks = get "negative_checks";
    lint_checks = get "lint_checks";
    lint_diagnostics = get "lint_diagnostics";
    plan_checks = get "plan_checks";
    plan_divergences = get "plan_divergences";
    const_checks = get "const_checks";
    const_divergences = get "const_divergences";
    truth_true = get "truth_true";
    truth_false = get "truth_false";
    truth_unknown = get "truth_unknown";
  }

type report_meta = {
  rm_fingerprint : string;
  rm_oracle : string;
  rm_seed : int;
  rm_bundle : string option;
}

type t = {
  version : int;
  shard : int;
  slot : int;
  seq : int;
  at : float;
  range_lo : int;
  range_hi : int;
  next_seed : int;
  rounds : int;
  rounds_per_sec : float;
  counters : counters;
  frontier : Frontier.t;
  reports : report_meta list;
  telemetry : Telemetry.sample list;
}

let current_version = 1

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let encode_telemetry_sample b (s : Telemetry.sample) =
  Buffer.add_string b "{\"name\":";
  Buffer.add_string b (Json.quote s.Telemetry.s_name);
  Buffer.add_string b ",\"labels\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Json.quote k);
      Buffer.add_char b ':';
      Buffer.add_string b (Json.quote v))
    s.Telemetry.s_labels;
  Buffer.add_string b "},";
  (match s.Telemetry.s_value with
  | Telemetry.Counter c ->
      Buffer.add_string b (Printf.sprintf "\"type\":\"counter\",\"value\":%d" c)
  | Telemetry.Gauge g ->
      Buffer.add_string b
        (Printf.sprintf "\"type\":\"gauge\",\"value\":%s" (num g))
  | Telemetry.Histogram { buckets; sum; count } ->
      Buffer.add_string b
        (Printf.sprintf "\"type\":\"histogram\",\"sum\":%s,\"count\":%d,"
           (num sum) count);
      Buffer.add_string b "\"buckets\":[";
      List.iteri
        (fun i (le, cum) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"le\":%s,\"count\":%d}" (num le) cum))
        buckets;
      Buffer.add_char b ']');
  Buffer.add_char b '}'

let encode hb =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"type\":\"heartbeat\",\"v\":%d,\"shard\":%d,\"slot\":%d,\
        \"seq\":%d,\"at\":%.3f,\"range\":[%d,%d],\"next\":%d,\
        \"rounds\":%d,\"rps\":%s"
       hb.version hb.shard hb.slot hb.seq hb.at hb.range_lo hb.range_hi
       hb.next_seed hb.rounds (num hb.rounds_per_sec));
  Buffer.add_string b ",\"stats\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" name v))
    (counter_fields hb.counters);
  Buffer.add_string b "},\"points\":[";
  List.iteri
    (fun i (p, e) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"p\":%s,\"h\":%d,\"s\":%d}" (Json.quote p)
           e.Frontier.hits e.Frontier.first_seed))
    (Frontier.points hb.frontier);
  Buffer.add_string b "],\"reports\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"fp\":%s,\"oracle\":%s,\"seed\":%d"
           (Json.quote r.rm_fingerprint)
           (Json.quote r.rm_oracle) r.rm_seed);
      (match r.rm_bundle with
      | Some path ->
          Buffer.add_string b (",\"bundle\":" ^ Json.quote path)
      | None -> ());
      Buffer.add_char b '}')
    hb.reports;
  Buffer.add_string b "],\"telemetry\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      encode_telemetry_sample b s)
    hb.telemetry;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "heartbeat: bad or missing field %S" name)

let decode_points j =
  match Option.bind (Json.member "points" j) Json.to_list with
  | None -> Error "heartbeat: bad or missing field \"points\""
  | Some items ->
      let rec go acc = function
        | [] -> Ok (Frontier.of_entries (List.rev acc))
        | item :: rest -> (
            let p = Option.bind (Json.member "p" item) Json.to_str in
            let h = Option.bind (Json.member "h" item) Json.to_int in
            let s = Option.bind (Json.member "s" item) Json.to_int in
            match (p, h, s) with
            | Some p, Some hits, Some first_seed ->
                go ((p, { Frontier.hits; first_seed }) :: acc) rest
            | _ -> Error "heartbeat: malformed frontier point")
      in
      go [] items

let decode_reports j =
  match Option.bind (Json.member "reports" j) Json.to_list with
  | None -> Error "heartbeat: bad or missing field \"reports\""
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            let fp = Option.bind (Json.member "fp" item) Json.to_str in
            let oracle = Option.bind (Json.member "oracle" item) Json.to_str in
            let seed = Option.bind (Json.member "seed" item) Json.to_int in
            let bundle = Option.bind (Json.member "bundle" item) Json.to_str in
            match (fp, oracle, seed) with
            | Some rm_fingerprint, Some rm_oracle, Some rm_seed ->
                go
                  ({ rm_fingerprint; rm_oracle; rm_seed; rm_bundle = bundle }
                  :: acc)
                  rest
            | _ -> Error "heartbeat: malformed report entry")
      in
      go [] items

let decode_telemetry j =
  match Option.bind (Json.member "telemetry" j) Json.to_list with
  | None -> Error "heartbeat: bad or missing field \"telemetry\""
  | Some items ->
      let decode_labels item =
        match Json.member "labels" item with
        | Some (Json.Obj fields) ->
            let rec go acc = function
              | [] -> Some (List.rev acc)
              | (k, Json.Str v) :: rest -> go ((k, v) :: acc) rest
              | _ -> None
            in
            go [] fields
        | _ -> None
      in
      let decode_sample item =
        let* name =
          match Option.bind (Json.member "name" item) Json.to_str with
          | Some n -> Ok n
          | None -> Error "heartbeat: telemetry sample without name"
        in
        let* labels =
          match decode_labels item with
          | Some l -> Ok l
          | None -> Error "heartbeat: telemetry sample with bad labels"
        in
        let* value =
          match Option.bind (Json.member "type" item) Json.to_str with
          | Some "counter" -> (
              match Option.bind (Json.member "value" item) Json.to_int with
              | Some v -> Ok (Telemetry.Counter v)
              | None -> Error "heartbeat: bad counter value")
          | Some "gauge" -> (
              match Option.bind (Json.member "value" item) Json.to_float with
              | Some v -> Ok (Telemetry.Gauge v)
              | None -> Error "heartbeat: bad gauge value")
          | Some "histogram" -> (
              let sum = Option.bind (Json.member "sum" item) Json.to_float in
              let count = Option.bind (Json.member "count" item) Json.to_int in
              let buckets =
                Option.bind (Json.member "buckets" item) Json.to_list
                |> Option.map
                     (List.filter_map (fun bj ->
                          match
                            ( Option.bind (Json.member "le" bj) Json.to_float,
                              Option.bind (Json.member "count" bj) Json.to_int
                            )
                          with
                          | Some le, Some c -> Some (le, c)
                          | _ -> None))
              in
              match (sum, count, buckets) with
              | Some sum, Some count, Some buckets ->
                  Ok (Telemetry.Histogram { buckets; sum; count })
              | _ -> Error "heartbeat: bad histogram sample")
          | _ -> Error "heartbeat: telemetry sample with unknown type"
        in
        Ok { Telemetry.s_name = name; s_labels = labels; s_value = value }
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
            let* s = decode_sample item in
            go (s :: acc) rest
      in
      go [] items

let decode line =
  let* j = Json.parse line in
  let* ty = field "type" Json.to_str j in
  if ty <> "heartbeat" then Error (Printf.sprintf "not a heartbeat: %S" ty)
  else
    let* version = field "v" Json.to_int j in
    if version > current_version then
      Error (Printf.sprintf "heartbeat: unsupported version %d" version)
    else
      let* shard = field "shard" Json.to_int j in
      let* slot = field "slot" Json.to_int j in
      let* seq = field "seq" Json.to_int j in
      let* at = field "at" Json.to_float j in
      let* range =
        match Option.bind (Json.member "range" j) Json.to_list with
        | Some [ lo; hi ] -> (
            match (Json.to_int lo, Json.to_int hi) with
            | Some lo, Some hi -> Ok (lo, hi)
            | _ -> Error "heartbeat: malformed range")
        | _ -> Error "heartbeat: bad or missing field \"range\""
      in
      let* next_seed = field "next" Json.to_int j in
      let* rounds = field "rounds" Json.to_int j in
      let* rounds_per_sec = field "rps" Json.to_float j in
      let* counters =
        match Json.member "stats" j with
        | Some stats -> Ok (counters_of_json stats)
        | None -> Error "heartbeat: bad or missing field \"stats\""
      in
      let* frontier = decode_points j in
      let* reports = decode_reports j in
      let* telemetry = decode_telemetry j in
      Ok
        {
          version;
          shard;
          slot;
          seq;
          at;
          range_lo = fst range;
          range_hi = snd range;
          next_seed;
          rounds;
          rounds_per_sec;
          counters;
          frontier;
          reports;
          telemetry;
        }

let equal_payload a b =
  a.counters = b.counters
  && Frontier.points a.frontier = Frontier.points b.frontier
  && List.sort compare a.reports = List.sort compare b.reports
