(* SQL abstract syntax shared by the engine, the parser and PQS.

   The AST is a superset of the three dialects: dialect-specific constructs
   (IS over scalars, <=>, WITHOUT ROWID, ENGINE=, INHERITS, PRAGMA, ...) are
   present unconditionally; each dialect's generator only produces its own
   subset and the printer spells them in the dialect's syntax. *)

open Sqlval

type unop =
  | Not
  | Neg
  | Pos
  | Bit_not
[@@deriving show { with_path = false }, eq]

type binop =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Null_safe_eq  (* mysql's <=>; printed as IS in sqlite *)
  | And
  | Or
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Concat
  | Bit_and
  | Bit_or
  | Shift_left
  | Shift_right
[@@deriving show { with_path = false }, eq]

(* Scalar functions implemented by all dialects (the engine rejects the ones
   a dialect lacks, mirroring per-dialect feature sets). *)
type func =
  | F_abs
  | F_length
  | F_lower
  | F_upper
  | F_coalesce
  | F_ifnull
  | F_nullif
  | F_typeof (* sqlite *)
  | F_trim
  | F_ltrim
  | F_rtrim
  | F_substr
  | F_replace
  | F_instr
  | F_hex
  | F_round
  | F_sign
  | F_least (* mysql/postgres *)
  | F_greatest (* mysql/postgres *)
  | F_quote (* sqlite *)
[@@deriving show { with_path = false }, eq]

type agg_func =
  | A_count_star
  | A_count
  | A_sum
  | A_avg
  | A_min
  | A_max
  | A_total (* sqlite *)
[@@deriving show { with_path = false }, eq]

type expr =
  | Lit of Value.t
  | Col of { table : string option; column : string }
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Is of { negated : bool; arg : expr; rhs : is_rhs }
  | Between of { negated : bool; arg : expr; lo : expr; hi : expr }
  | In_list of { negated : bool; arg : expr; list : expr list }
  | Like of { negated : bool; arg : expr; pattern : expr; escape : expr option }
  | Glob of { negated : bool; arg : expr; pattern : expr } (* sqlite *)
  | Cast of Datatype.t * expr
  | Func of func * expr list
  | Agg of agg_func * expr option
  | Case of {
      operand : expr option;
      branches : (expr * expr) list;
      else_ : expr option;
    }
  | Collate of expr * Collation.t

and is_rhs =
  | Is_null
  | Is_true
  | Is_false
  | Is_expr of expr (* sqlite: IS / IS NOT over arbitrary scalars *)
  | Is_distinct_from of expr (* postgres *)
[@@deriving show { with_path = false }, eq]

type col_constraint =
  | C_primary_key
  | C_unique
  | C_not_null
  | C_default of expr
  | C_check of expr
[@@deriving show { with_path = false }, eq]

type column_def = {
  col_name : string;
  col_type : Datatype.t;
  col_collate : Collation.t option;
  col_constraints : col_constraint list;
}
[@@deriving show { with_path = false }, eq]

type table_constraint =
  | T_primary_key of string list
  | T_unique of string list
  | T_check of expr
[@@deriving show { with_path = false }, eq]

(* mysql storage engines; Csv is the "non-standard storage engine" example
   from the paper's background section *)
type table_engine = E_innodb | E_memory | E_myisam | E_csv
[@@deriving show { with_path = false }, eq]

type create_table = {
  ct_name : string;
  ct_if_not_exists : bool;
  ct_columns : column_def list;
  ct_constraints : table_constraint list;
  ct_without_rowid : bool; (* sqlite *)
  ct_engine : table_engine option; (* mysql *)
  ct_inherits : string option; (* postgres *)
}
[@@deriving show { with_path = false }, eq]

type indexed_column = {
  ic_expr : expr; (* column reference or expression index *)
  ic_collate : Collation.t option;
  ic_desc : bool;
}
[@@deriving show { with_path = false }, eq]

type create_index = {
  ci_name : string;
  ci_if_not_exists : bool;
  ci_table : string;
  ci_unique : bool;
  ci_columns : indexed_column list;
  ci_where : expr option; (* partial index *)
}
[@@deriving show { with_path = false }, eq]

type order_dir = Asc | Desc [@@deriving show { with_path = false }, eq]

type select_item =
  | Star
  | Table_star of string
  | Sel_expr of expr * string option (* expression with optional alias *)
[@@deriving show { with_path = false }, eq]

type join_kind = Inner | Left | Cross
[@@deriving show { with_path = false }, eq]

type compound_op = Union | Union_all | Intersect | Except
[@@deriving show { with_path = false }, eq]

type from_item =
  | F_table of { name : string; alias : string option }
  | F_join of {
      kind : join_kind;
      left : from_item;
      right : from_item;
      on : expr option;
    }
  | F_sub of { sub : query; alias : string } (* derived table *)
[@@deriving show { with_path = false }, eq]

and select = {
  sel_distinct : bool;
  sel_items : select_item list;
  sel_from : from_item list; (* comma-separated cross product *)
  sel_where : expr option;
  sel_group_by : expr list;
  sel_having : expr option;
  sel_order_by : (expr * order_dir) list;
  sel_limit : int64 option;
  sel_offset : int64 option;
}

and query =
  | Q_select of select
  | Q_values of expr list list
  | Q_compound of compound_op * query * query
[@@deriving show { with_path = false }, eq]

type conflict_action = On_conflict_abort | On_conflict_ignore | On_conflict_replace
[@@deriving show { with_path = false }, eq]

type alter_action =
  | Rename_table of string
  | Rename_column of { old_name : string; new_name : string }
  | Add_column of column_def
  | Drop_column of string
[@@deriving show { with_path = false }, eq]

type stmt =
  | Create_table of create_table
  | Drop_table of { if_exists : bool; name : string }
  | Alter_table of { table : string; action : alter_action }
  | Create_index of create_index
  | Drop_index of { if_exists : bool; name : string }
  | Reindex of string option (* sqlite/postgres *)
  | Create_view of { name : string; query : query }
  | Drop_view of { if_exists : bool; name : string }
  | Insert of {
      table : string;
      columns : string list; (* empty = all columns in order *)
      rows : expr list list;
      action : conflict_action;
    }
  | Update of {
      table : string;
      assignments : (string * expr) list;
      where : expr option;
      action : conflict_action;
    }
  | Delete of { table : string; where : expr option }
  | Select_stmt of query
  | Vacuum of { full : bool } (* postgres has FULL; sqlite plain *)
  | Analyze of string option
  | Check_table of { table : string; for_upgrade : bool } (* mysql *)
  | Repair_table of string (* mysql *)
  | Set_option of { global : bool; name : string; value : Value.t } (* my/pg *)
  | Pragma of { name : string; value : Value.t option } (* sqlite *)
  | Create_statistics of { name : string; table : string; columns : string list }
    (* postgres *)
  | Discard_all (* postgres *)
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Explain of query (* prints the access plan; never generated by PQS *)
  | Explain_analyze of query
    (* executes the query and prints the plan annotated with per-operator
       actuals (rows in/out, B-tree visits, wall time) *)
[@@deriving show { with_path = false }, eq]

(* ------------------------------------------------------------------ *)
(* Helpers used across generators and tests                           *)

let lit v = Lit v
let int_lit i = Lit (Value.Int i)
let text_lit s = Lit (Value.Text s)
let null_lit = Lit Value.Null
let col ?table column = Col { table; column }
let not_ e = Unary (Not, e)
let isnull e = Is { negated = false; arg = e; rhs = Is_null }

(* Statement-kind labels used by the Figure 3 reproduction; categories follow
   the paper's axis labels. *)
let stmt_kind = function
  | Create_table _ -> "CREATE TABLE"
  | Drop_table _ -> "DROP TABLE"
  | Alter_table _ -> "ALTER TABLE"
  | Create_index _ -> "CREATE INDEX"
  | Drop_index _ -> "DROP INDEX"
  | Reindex _ -> "REINDEX"
  | Create_view _ -> "CREATE VIEW"
  | Drop_view _ -> "DROP VIEW"
  | Insert _ -> "INSERT"
  | Update _ -> "UPDATE"
  | Delete _ -> "DELETE"
  | Select_stmt _ -> "SELECT"
  | Vacuum _ -> "VACUUM"
  | Analyze _ -> "ANALYZE"
  | Check_table _ | Repair_table _ -> "REPAIR/CHECK TABLE"
  | Set_option _ | Pragma _ -> "OPTION"
  | Create_statistics _ -> "CREATE STATS"
  | Discard_all -> "DISCARD"
  | Begin_txn | Commit_txn | Rollback_txn -> "TRANSACTION"
  | Explain _ | Explain_analyze _ -> "EXPLAIN"

(* All kinds in the display order of the paper's Figure 3 (bottom-up). *)
let all_stmt_kinds =
  [
    "CREATE TABLE"; "INSERT"; "SELECT"; "CREATE INDEX"; "ALTER TABLE";
    "UPDATE"; "OPTION"; "ANALYZE"; "REINDEX"; "VACUUM"; "CREATE VIEW";
    "TRANSACTION"; "DROP INDEX"; "REPAIR/CHECK TABLE"; "CREATE STATS";
    "DISCARD"; "DROP TABLE"; "DROP VIEW"; "DELETE";
  ]

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Lit _ | Col _ -> acc
  | Unary (_, a) | Cast (_, a) | Collate (a, _) -> fold_expr f acc a
  | Binary (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Is { arg; rhs; _ } -> (
      let acc = fold_expr f acc arg in
      match rhs with
      | Is_null | Is_true | Is_false -> acc
      | Is_expr b | Is_distinct_from b -> fold_expr f acc b)
  | Between { arg; lo; hi; _ } ->
      fold_expr f (fold_expr f (fold_expr f acc arg) lo) hi
  | In_list { arg; list; _ } ->
      List.fold_left (fold_expr f) (fold_expr f acc arg) list
  | Like { arg; pattern; escape; _ } ->
      let acc = fold_expr f (fold_expr f acc arg) pattern in
      Option.fold ~none:acc ~some:(fold_expr f acc) escape
  | Glob { arg; pattern; _ } -> fold_expr f (fold_expr f acc arg) pattern
  | Func (_, args) -> List.fold_left (fold_expr f) acc args
  | Agg (_, arg) -> Option.fold ~none:acc ~some:(fold_expr f acc) arg
  | Case { operand; branches; else_ } ->
      let acc = Option.fold ~none:acc ~some:(fold_expr f acc) operand in
      let acc =
        List.fold_left
          (fun acc (c, r) -> fold_expr f (fold_expr f acc c) r)
          acc branches
      in
      Option.fold ~none:acc ~some:(fold_expr f acc) else_

let expr_size e = fold_expr (fun n _ -> n + 1) 0 e

(* Bottom-up rewrite: [f] sees each node after its children were rewritten
   and may replace it. *)
let rec map_expr f e =
  let r = map_expr f in
  let e' =
    match e with
    | Lit _ | Col _ -> e
    | Unary (op, a) -> Unary (op, r a)
    | Binary (op, a, b) -> Binary (op, r a, r b)
    | Is { negated; arg; rhs } ->
        let rhs' =
          match rhs with
          | Is_null | Is_true | Is_false -> rhs
          | Is_expr b -> Is_expr (r b)
          | Is_distinct_from b -> Is_distinct_from (r b)
        in
        Is { negated; arg = r arg; rhs = rhs' }
    | Between { negated; arg; lo; hi } ->
        Between { negated; arg = r arg; lo = r lo; hi = r hi }
    | In_list { negated; arg; list } ->
        In_list { negated; arg = r arg; list = List.map r list }
    | Like { negated; arg; pattern; escape } ->
        Like { negated; arg = r arg; pattern = r pattern; escape = Option.map r escape }
    | Glob { negated; arg; pattern } ->
        Glob { negated; arg = r arg; pattern = r pattern }
    | Cast (ty, a) -> Cast (ty, r a)
    | Func (fn, args) -> Func (fn, List.map r args)
    | Agg (a, arg) -> Agg (a, Option.map r arg)
    | Case { operand; branches; else_ } ->
        Case
          {
            operand = Option.map r operand;
            branches = List.map (fun (c, v) -> (r c, r v)) branches;
            else_ = Option.map r else_;
          }
    | Collate (a, c) -> Collate (r a, c)
  in
  f e'

(* All aggregate sub-expressions, outermost first, deduplicated. *)
let collect_aggs e =
  let aggs =
    fold_expr
      (fun acc e -> match e with Agg _ -> e :: acc | _ -> acc)
      [] e
    |> List.rev
  in
  List.fold_left (fun acc a -> if List.exists (equal_expr a) acc then acc else acc @ [ a ]) [] aggs

let has_agg e = collect_aggs e <> []

let rec query_has_agg = function
  | Q_select s ->
      s.sel_group_by <> []
      || List.exists
           (function Sel_expr (e, _) -> has_agg e | Star | Table_star _ -> false)
           s.sel_items
      || (match s.sel_having with Some h -> has_agg h | None -> false)
  | Q_values _ -> false
  | Q_compound (_, a, b) -> query_has_agg a || query_has_agg b

let expr_columns e =
  fold_expr
    (fun acc e ->
      match e with
      | Col { table; column } -> (table, column) :: acc
      | _ -> acc)
    [] e
  |> List.rev

(* Maximum nesting depth; generators bound it (paper Algorithm 1). *)
let rec expr_depth e =
  let child_depth es = List.fold_left (fun d x -> max d (expr_depth x)) 0 es in
  match e with
  | Lit _ | Col _ -> 1
  | Unary (_, a) | Cast (_, a) | Collate (a, _) -> 1 + expr_depth a
  | Binary (_, a, b) -> 1 + child_depth [ a; b ]
  | Is { arg; rhs; _ } -> (
      match rhs with
      | Is_null | Is_true | Is_false -> 1 + expr_depth arg
      | Is_expr b | Is_distinct_from b -> 1 + child_depth [ arg; b ])
  | Between { arg; lo; hi; _ } -> 1 + child_depth [ arg; lo; hi ]
  | In_list { arg; list; _ } -> 1 + child_depth (arg :: list)
  | Like { arg; pattern; escape; _ } ->
      1 + child_depth (arg :: pattern :: Option.to_list escape)
  | Glob { arg; pattern; _ } -> 1 + child_depth [ arg; pattern ]
  | Func (_, args) -> 1 + child_depth args
  | Agg (_, arg) -> 1 + child_depth (Option.to_list arg)
  | Case { operand; branches; else_ } ->
      let es =
        Option.to_list operand
        @ List.concat_map (fun (c, r) -> [ c; r ]) branches
        @ Option.to_list else_
      in
      1 + child_depth es
