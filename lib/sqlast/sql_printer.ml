open Sqlval
open Ast

(* unary minus takes a trailing space: "--" would start a SQL comment *)
let unop_to_sql = function
  | Not -> "NOT "
  | Neg -> "- "
  | Pos -> "+"
  | Bit_not -> "~"

let binop_to_sql dialect = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Null_safe_eq -> (
      match dialect with
      | Dialect.Sqlite_like -> "IS"
      | Dialect.Mysql_like -> "<=>"
      | Dialect.Postgres_like -> "IS NOT DISTINCT FROM")
  | And -> "AND"
  | Or -> "OR"
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Concat -> "||"
  | Bit_and -> "&"
  | Bit_or -> "|"
  | Shift_left -> "<<"
  | Shift_right -> ">>"

let func_to_sql = function
  | F_abs -> "ABS"
  | F_length -> "LENGTH"
  | F_lower -> "LOWER"
  | F_upper -> "UPPER"
  | F_coalesce -> "COALESCE"
  | F_ifnull -> "IFNULL"
  | F_nullif -> "NULLIF"
  | F_typeof -> "TYPEOF"
  | F_trim -> "TRIM"
  | F_ltrim -> "LTRIM"
  | F_rtrim -> "RTRIM"
  | F_substr -> "SUBSTR"
  | F_replace -> "REPLACE"
  | F_instr -> "INSTR"
  | F_hex -> "HEX"
  | F_round -> "ROUND"
  | F_sign -> "SIGN"
  | F_least -> "LEAST"
  | F_greatest -> "GREATEST"
  | F_quote -> "QUOTE"

let agg_to_sql = function
  | A_count_star | A_count -> "COUNT"
  | A_sum -> "SUM"
  | A_avg -> "AVG"
  | A_min -> "MIN"
  | A_max -> "MAX"
  | A_total -> "TOTAL"

let rec expr dialect e =
  let pe x = expr dialect x in
  match e with
  | Lit v -> Value.to_sql_literal v
  | Col { table = None; column } -> column
  | Col { table = Some t; column } -> t ^ "." ^ column
  | Unary (op, a) -> "(" ^ unop_to_sql op ^ pe a ^ ")"
  | Binary (op, a, b) ->
      "(" ^ pe a ^ " " ^ binop_to_sql dialect op ^ " " ^ pe b ^ ")"
  | Is { negated; arg; rhs } -> (
      let neg = if negated then " NOT" else "" in
      match rhs with
      | Is_null -> "(" ^ pe arg ^ " IS" ^ neg ^ " NULL)"
      | Is_true -> "(" ^ pe arg ^ " IS" ^ neg ^ " TRUE)"
      | Is_false -> "(" ^ pe arg ^ " IS" ^ neg ^ " FALSE)"
      | Is_expr b -> "(" ^ pe arg ^ " IS" ^ neg ^ " " ^ pe b ^ ")"
      | Is_distinct_from b ->
          let kw = if negated then " IS NOT DISTINCT FROM " else " IS DISTINCT FROM " in
          "(" ^ pe arg ^ kw ^ pe b ^ ")")
  | Between { negated; arg; lo; hi } ->
      let neg = if negated then " NOT" else "" in
      "(" ^ pe arg ^ neg ^ " BETWEEN " ^ pe lo ^ " AND " ^ pe hi ^ ")"
  | In_list { negated; arg; list } ->
      let neg = if negated then " NOT" else "" in
      "(" ^ pe arg ^ neg ^ " IN (" ^ String.concat ", " (List.map pe list) ^ "))"
  | Like { negated; arg; pattern; escape } ->
      let neg = if negated then " NOT" else "" in
      let esc =
        match escape with None -> "" | Some x -> " ESCAPE " ^ pe x
      in
      "(" ^ pe arg ^ neg ^ " LIKE " ^ pe pattern ^ esc ^ ")"
  | Glob { negated; arg; pattern } ->
      let neg = if negated then " NOT" else "" in
      "(" ^ pe arg ^ neg ^ " GLOB " ^ pe pattern ^ ")"
  | Cast (ty, a) -> (
      match (dialect, ty) with
      | Dialect.Mysql_like, Datatype.Int { unsigned = true; _ } ->
          "CAST(" ^ pe a ^ " AS UNSIGNED)"
      | Dialect.Mysql_like, Datatype.Int { unsigned = false; _ } ->
          "CAST(" ^ pe a ^ " AS SIGNED)"
      | _ ->
          let name = match Datatype.to_sql ty with "" -> "NUMERIC" | s -> s in
          "CAST(" ^ pe a ^ " AS " ^ name ^ ")")
  | Func (f, args) ->
      func_to_sql f ^ "(" ^ String.concat ", " (List.map pe args) ^ ")"
  | Agg (A_count_star, _) -> "COUNT(*)"
  | Agg (f, arg) ->
      let inner = match arg with None -> "*" | Some a -> pe a in
      agg_to_sql f ^ "(" ^ inner ^ ")"
  | Case { operand; branches; else_ } ->
      let buf = Buffer.create 64 in
      Buffer.add_string buf "CASE";
      Option.iter (fun o -> Buffer.add_string buf (" " ^ pe o)) operand;
      List.iter
        (fun (c, r) ->
          Buffer.add_string buf (" WHEN " ^ pe c ^ " THEN " ^ pe r))
        branches;
      Option.iter (fun x -> Buffer.add_string buf (" ELSE " ^ pe x)) else_;
      Buffer.add_string buf " END";
      Buffer.contents buf
  | Collate (a, c) -> "(" ^ pe a ^ " COLLATE " ^ Collation.to_keyword c ^ ")"

let select_item dialect = function
  | Star -> "*"
  | Table_star t -> t ^ ".*"
  | Sel_expr (e, None) -> expr dialect e
  | Sel_expr (e, Some alias) -> expr dialect e ^ " AS " ^ alias

let rec from_item dialect = function
  | F_table { name; alias = None } -> name
  | F_table { name; alias = Some a } -> name ^ " AS " ^ a
  | F_join { kind; left; right; on } ->
      let kw =
        match kind with
        | Inner -> " JOIN "
        | Left -> " LEFT JOIN "
        | Cross -> " CROSS JOIN "
      in
      let on_s =
        match on with None -> "" | Some e -> " ON " ^ expr dialect e
      in
      from_item dialect left ^ kw ^ from_item dialect right ^ on_s
  | F_sub { sub; alias } -> "(" ^ query dialect sub ^ ") AS " ^ alias

and select dialect s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.sel_distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf
    (String.concat ", " (List.map (select_item dialect) s.sel_items));
  if s.sel_from <> [] then begin
    Buffer.add_string buf " FROM ";
    Buffer.add_string buf
      (String.concat ", " (List.map (from_item dialect) s.sel_from))
  end;
  Option.iter
    (fun w -> Buffer.add_string buf (" WHERE " ^ expr dialect w))
    s.sel_where;
  if s.sel_group_by <> [] then
    Buffer.add_string buf
      (" GROUP BY " ^ String.concat ", " (List.map (expr dialect) s.sel_group_by));
  Option.iter
    (fun h -> Buffer.add_string buf (" HAVING " ^ expr dialect h))
    s.sel_having;
  if s.sel_order_by <> [] then begin
    let one (e, dir) =
      expr dialect e ^ match dir with Asc -> " ASC" | Desc -> " DESC"
    in
    Buffer.add_string buf
      (" ORDER BY " ^ String.concat ", " (List.map one s.sel_order_by))
  end;
  Option.iter
    (fun n -> Buffer.add_string buf (" LIMIT " ^ Int64.to_string n))
    s.sel_limit;
  Option.iter
    (fun n -> Buffer.add_string buf (" OFFSET " ^ Int64.to_string n))
    s.sel_offset;
  Buffer.contents buf

and query dialect = function
  | Q_select s -> select dialect s
  | Q_values rows ->
      let one row =
        "(" ^ String.concat ", " (List.map (expr dialect) row) ^ ")"
      in
      "VALUES " ^ String.concat ", " (List.map one rows)
  | Q_compound (op, a, b) ->
      let kw =
        match op with
        | Union -> " UNION "
        | Union_all -> " UNION ALL "
        | Intersect -> " INTERSECT "
        | Except -> " EXCEPT "
      in
      query dialect a ^ kw ^ query dialect b

let col_constraint dialect = function
  | C_primary_key -> "PRIMARY KEY"
  | C_unique -> "UNIQUE"
  | C_not_null -> "NOT NULL"
  | C_default e -> "DEFAULT " ^ expr dialect e
  | C_check e -> "CHECK (" ^ expr dialect e ^ ")"

let column_def dialect c =
  let buf = Buffer.create 32 in
  Buffer.add_string buf c.col_name;
  let ty = Datatype.to_sql c.col_type in
  if ty <> "" then Buffer.add_string buf (" " ^ ty);
  Option.iter
    (fun coll ->
      Buffer.add_string buf (" COLLATE " ^ Collation.to_keyword coll))
    c.col_collate;
  List.iter
    (fun k -> Buffer.add_string buf (" " ^ col_constraint dialect k))
    c.col_constraints;
  Buffer.contents buf

let table_constraint dialect = function
  | T_primary_key cols -> "PRIMARY KEY (" ^ String.concat ", " cols ^ ")"
  | T_unique cols -> "UNIQUE (" ^ String.concat ", " cols ^ ")"
  | T_check e -> "CHECK (" ^ expr dialect e ^ ")"

let engine_name = function
  | E_innodb -> "InnoDB"
  | E_memory -> "MEMORY"
  | E_myisam -> "MyISAM"
  | E_csv -> "CSV"

let create_table dialect ct =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "CREATE TABLE ";
  if ct.ct_if_not_exists then Buffer.add_string buf "IF NOT EXISTS ";
  Buffer.add_string buf ct.ct_name;
  let cols = List.map (column_def dialect) ct.ct_columns in
  let constraints = List.map (table_constraint dialect) ct.ct_constraints in
  Buffer.add_string buf ("(" ^ String.concat ", " (cols @ constraints) ^ ")");
  Option.iter
    (fun parent -> Buffer.add_string buf (" INHERITS (" ^ parent ^ ")"))
    ct.ct_inherits;
  if ct.ct_without_rowid then Buffer.add_string buf " WITHOUT ROWID";
  Option.iter
    (fun e -> Buffer.add_string buf (" ENGINE = " ^ engine_name e))
    ct.ct_engine;
  Buffer.contents buf

let create_index dialect ci =
  let buf = Buffer.create 96 in
  Buffer.add_string buf "CREATE ";
  if ci.ci_unique then Buffer.add_string buf "UNIQUE ";
  Buffer.add_string buf "INDEX ";
  if ci.ci_if_not_exists then Buffer.add_string buf "IF NOT EXISTS ";
  Buffer.add_string buf (ci.ci_name ^ " ON " ^ ci.ci_table);
  let one ic =
    let base =
      match ic.ic_expr with
      | Col { table = None; column } -> column
      | e -> "(" ^ expr dialect e ^ ")"
    in
    let coll =
      match ic.ic_collate with
      | None -> ""
      | Some c -> " COLLATE " ^ Collation.to_keyword c
    in
    base ^ coll ^ if ic.ic_desc then " DESC" else ""
  in
  Buffer.add_string buf ("(" ^ String.concat ", " (List.map one ci.ci_columns) ^ ")");
  Option.iter
    (fun w -> Buffer.add_string buf (" WHERE " ^ expr dialect w))
    ci.ci_where;
  Buffer.contents buf

let conflict_suffix dialect = function
  | On_conflict_abort -> ("", "")
  | On_conflict_ignore -> (
      match dialect with
      | Dialect.Sqlite_like -> (" OR IGNORE", "")
      | Dialect.Mysql_like -> (" IGNORE", "")
      | Dialect.Postgres_like -> ("", " ON CONFLICT DO NOTHING"))
  | On_conflict_replace -> (
      match dialect with
      | Dialect.Sqlite_like -> (" OR REPLACE", "")
      | Dialect.Mysql_like | Dialect.Postgres_like -> (" OR REPLACE", ""))

let stmt dialect st =
  match st with
  | Create_table ct -> create_table dialect ct
  | Drop_table { if_exists; name } ->
      "DROP TABLE " ^ (if if_exists then "IF EXISTS " else "") ^ name
  | Alter_table { table; action } -> (
      let prefix = "ALTER TABLE " ^ table ^ " " in
      match action with
      | Rename_table n -> prefix ^ "RENAME TO " ^ n
      | Rename_column { old_name; new_name } ->
          prefix ^ "RENAME COLUMN " ^ old_name ^ " TO " ^ new_name
      | Add_column c -> prefix ^ "ADD COLUMN " ^ column_def dialect c
      | Drop_column c -> prefix ^ "DROP COLUMN " ^ c)
  | Create_index ci -> create_index dialect ci
  | Drop_index { if_exists; name } ->
      "DROP INDEX " ^ (if if_exists then "IF EXISTS " else "") ^ name
  | Reindex None -> "REINDEX"
  | Reindex (Some name) -> "REINDEX " ^ name
  | Create_view { name; query = q } ->
      "CREATE VIEW " ^ name ^ " AS " ^ query dialect q
  | Drop_view { if_exists; name } ->
      "DROP VIEW " ^ (if if_exists then "IF EXISTS " else "") ^ name
  | Insert { table; columns; rows; action } ->
      let kw, suffix = conflict_suffix dialect action in
      let cols =
        if columns = [] then ""
        else "(" ^ String.concat ", " columns ^ ")"
      in
      let one row =
        "(" ^ String.concat ", " (List.map (expr dialect) row) ^ ")"
      in
      "INSERT" ^ kw ^ " INTO " ^ table ^ cols ^ " VALUES "
      ^ String.concat ", " (List.map one rows)
      ^ suffix
  | Update { table; assignments; where; action } ->
      let kw =
        match (action, dialect) with
        | On_conflict_abort, _ -> ""
        | On_conflict_ignore, Dialect.Mysql_like -> " IGNORE"
        | On_conflict_ignore, _ -> " OR IGNORE"
        | On_conflict_replace, _ -> " OR REPLACE"
      in
      let one (c, e) = c ^ " = " ^ expr dialect e in
      "UPDATE" ^ kw ^ " " ^ table ^ " SET "
      ^ String.concat ", " (List.map one assignments)
      ^ (match where with None -> "" | Some w -> " WHERE " ^ expr dialect w)
  | Delete { table; where } ->
      "DELETE FROM " ^ table
      ^ (match where with None -> "" | Some w -> " WHERE " ^ expr dialect w)
  | Select_stmt q -> query dialect q
  | Vacuum { full } -> if full then "VACUUM FULL" else "VACUUM"
  | Analyze None -> "ANALYZE"
  | Analyze (Some t) -> "ANALYZE " ^ t
  | Check_table { table; for_upgrade } ->
      "CHECK TABLE " ^ table ^ if for_upgrade then " FOR UPGRADE" else ""
  | Repair_table t -> "REPAIR TABLE " ^ t
  | Set_option { global; name; value } ->
      let scope = if global then "GLOBAL " else "" in
      "SET " ^ scope ^ name ^ " = " ^ Value.to_sql_literal value
  | Pragma { name; value } -> (
      match value with
      | None -> "PRAGMA " ^ name
      | Some v -> "PRAGMA " ^ name ^ " = " ^ Value.to_sql_literal v)
  | Create_statistics { name; table; columns } ->
      "CREATE STATISTICS " ^ name ^ " ON " ^ String.concat ", " columns
      ^ " FROM " ^ table
  | Discard_all -> "DISCARD ALL"
  | Begin_txn -> "BEGIN"
  | Commit_txn -> "COMMIT"
  | Rollback_txn -> "ROLLBACK"
  | Explain q -> "EXPLAIN " ^ query dialect q
  | Explain_analyze q -> "EXPLAIN ANALYZE " ^ query dialect q

let script dialect stmts =
  String.concat "\n" (List.map (fun s -> stmt dialect s ^ ";") stmts)
