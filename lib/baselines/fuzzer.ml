open Sqlval
module A = Sqlast.Ast

type config = {
  dialect : Dialect.t;
  bugs : Engine.Bug.set;
  seed : int;
  detect_errors : bool;
}

let default_config ?(seed = 1) ?(bugs = Engine.Bug.empty_set) dialect =
  { dialect; bugs; seed; detect_errors = true }

type stats = {
  mutable databases : int;
  mutable statements : int;
  mutable queries : int;
  mutable reports : Pqs.Bug_report.t list;
}

(* The fuzzer shares PQS's statement and expression generators (so the two
   techniques explore the same input space), but its queries are raw: no
   pivot, no rectification, no containment check. *)
let random_query rng dialect tables : A.query =
  let gen_ctx =
    { Pqs.Gen_expr.rng; dialect; tables; max_depth = 4; pool = [] }
  in
  let items =
    if Pqs.Rng.bool rng then [ A.Star ]
    else
      List.init (Pqs.Rng.int_in rng 1 3) (fun _ ->
          A.Sel_expr (Pqs.Gen_expr.scalar gen_ctx, None))
  in
  let from =
    Pqs.Rng.sample rng
      (Pqs.Rng.int_in rng 1 (max 1 (List.length tables)))
      tables
    |> List.map (fun (ti : Pqs.Schema_info.table_info) ->
           A.F_table { name = ti.Pqs.Schema_info.ti_name; alias = None })
  in
  A.Q_select
    {
      A.sel_distinct = Pqs.Rng.bool rng;
      sel_items = items;
      sel_from = from;
      sel_where =
        (if Pqs.Rng.chance rng 0.8 then Some (Pqs.Gen_expr.condition gen_ctx) else None);
      sel_group_by = [];
      sel_having = None;
      sel_order_by = [];
      sel_limit = (if Pqs.Rng.chance rng 0.3 then Some 10L else None);
      sel_offset = None;
    }

let run ~max_queries config =
  let stats = { databases = 0; statements = 0; queries = 0; reports = [] } in
  let rec db_round () =
    if stats.queries >= max_queries || stats.databases >= max 50 max_queries
    then stats
    else begin
      let db_seed = config.seed + (stats.databases * 6007) in
      stats.databases <- stats.databases + 1;
      let rng = Pqs.Rng.make ~seed:db_seed in
      let session =
        Engine.Session.create ~seed:db_seed ~bugs:config.bugs config.dialect
      in
      let log = ref [] in
      let report oracle message =
        stats.reports <-
          {
            Pqs.Bug_report.dialect = config.dialect;
            oracle;
            message;
            statements = List.rev !log;
            reduced = None;
            seed = db_seed;
            phase = "fuzz";
            bundle = None;
          }
          :: stats.reports
      in
      let exec stmt : bool =
        (* returns true when a finding ended the round *)
        log := stmt :: !log;
        stats.statements <- stats.statements + 1;
        match Engine.Session.execute session stmt with
        | Ok _ -> false
        | Error e ->
            (* a fuzzer only reacts to sanitizer-grade signals *)
            if
              config.detect_errors
              && (match Engine.Errors.severity e with
                 | Engine.Errors.Corruption | Engine.Errors.Internal -> true
                 | Engine.Errors.Ordinary -> false)
            then begin
              report Pqs.Bug_report.Error_oracle (Engine.Errors.show e);
              true
            end
            else false
        | exception Engine.Errors.Crash msg ->
            report Pqs.Bug_report.Crash msg;
            true
      in
      let gen_cfg =
        Pqs.Gen_db.Config.(make config.dialect |> with_rng rng)
      in
      let found =
        List.exists exec (Pqs.Gen_db.initial_statements gen_cfg)
        || List.exists exec (Pqs.Gen_db.fill_statements gen_cfg session)
        ||
        let rec extra n =
          n > 0
          && (List.exists exec (Pqs.Gen_db.random_statements gen_cfg session)
             || extra (n - 1))
        in
        extra 8
      in
      if not found then begin
        let tables = Pqs.Schema_info.tables_of_session session in
        if tables <> [] then begin
          let rec queries q =
            q > 0
            &&
            (stats.queries <- stats.queries + 1;
             exec (A.Select_stmt (random_query rng config.dialect tables))
             || queries (q - 1))
          in
          ignore (queries 20)
        end
      end;
      db_round ()
    end
  in
  db_round ()

let hunt config ~max_queries =
  let stats = run ~max_queries config in
  match List.rev stats.reports with r :: _ -> Some r | [] -> None
