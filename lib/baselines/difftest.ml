open Sqlval
module A = Sqlast.Ast

type config = { bugs : Engine.Bug.set; seed : int }

let default_config ?(seed = 1) ?(bugs = Engine.Bug.empty_set) () =
  { bugs; seed }

type finding = {
  query_text : string;
  mismatched : (Dialect.t * int) list;
}

(* a pure value, mergeable across runs like [Pqs.Stats.t]: [merge_stats]
   is associative with [empty_stats] as identity *)
type stats = {
  queries : int;
  statements : int;
  findings : finding list;
}

let empty_stats = { queries = 0; statements = 0; findings = [] }

let merge_stats a b =
  {
    queries = a.queries + b.queries;
    statements = a.statements + b.statements;
    findings = a.findings @ b.findings;
  }

(* ------------------------------------------------------------------ *)
(* Common-core generation: accepted, with identical semantics, by all
   three dialect personalities                                          *)

type core_col = { cc_name : string; cc_type : Datatype.t }

let core_schema rng =
  let ncols = Pqs.Rng.int_in rng 1 3 in
  List.init ncols (fun i ->
      {
        cc_name = Printf.sprintf "c%d" i;
        cc_type =
          Pqs.Rng.pick rng
            [
              Datatype.Int { width = Datatype.Regular; unsigned = false };
              Datatype.Text;
              Datatype.Real;
            ];
      })

let core_literal rng (ty : Datatype.t) =
  if Pqs.Rng.chance rng 0.15 then Value.Null
  else
    match ty with
    | Datatype.Text -> Value.Text (Pqs.Rng.small_string rng)
    | Datatype.Real -> Value.Real (Pqs.Rng.interesting_real rng)
    | _ -> Value.Int (Int64.of_int (Pqs.Rng.int_in rng (-100) 100))

let rec core_condition rng cols depth : A.expr =
  let col () =
    let c = Pqs.Rng.pick rng cols in
    (A.col c.cc_name, c.cc_type)
  in
  let leaf () =
    let c, ty = col () in
    match Pqs.Rng.pick_weighted rng [ (5, `Cmp); (2, `Is_null); (2, `Between); (1, `In) ] with
    | `Cmp ->
        let op = Pqs.Rng.pick rng [ A.Eq; A.Neq; A.Lt; A.Le; A.Gt; A.Ge ] in
        A.Binary (op, c, A.Lit (core_literal rng ty))
    | `Is_null -> A.Is { negated = Pqs.Rng.bool rng; arg = c; rhs = A.Is_null }
    | `Between ->
        A.Between
          {
            negated = false;
            arg = c;
            lo = A.Lit (core_literal rng ty);
            hi = A.Lit (core_literal rng ty);
          }
    | `In ->
        A.In_list
          {
            negated = Pqs.Rng.bool rng;
            arg = c;
            list =
              List.init (Pqs.Rng.int_in rng 1 3) (fun _ ->
                  A.Lit (core_literal rng ty));
          }
  in
  if depth <= 0 then leaf ()
  else
    match Pqs.Rng.pick_weighted rng [ (4, `Leaf); (2, `And); (2, `Or); (1, `Not) ] with
    | `Leaf -> leaf ()
    | `And ->
        A.Binary
          (A.And, core_condition rng cols (depth - 1), core_condition rng cols (depth - 1))
    | `Or ->
        A.Binary
          (A.Or, core_condition rng cols (depth - 1), core_condition rng cols (depth - 1))
    | `Not -> A.Unary (A.Not, core_condition rng cols (depth - 1))

let core_create cols : A.stmt =
  A.Create_table
    {
      A.ct_name = "t0";
      ct_if_not_exists = false;
      ct_columns =
        List.map
          (fun c ->
            {
              A.col_name = c.cc_name;
              col_type = c.cc_type;
              col_collate = None;
              col_constraints = [];
            })
          cols;
      ct_constraints = [];
      ct_without_rowid = false;
      ct_engine = None;
      ct_inherits = None;
    }

let core_insert rng cols : A.stmt =
  let nrows = Pqs.Rng.int_in rng 1 4 in
  A.Insert
    {
      table = "t0";
      columns = [];
      rows =
        List.init nrows (fun _ ->
            List.map (fun c -> A.Lit (core_literal rng c.cc_type)) cols);
      action = A.On_conflict_abort;
    }

(* ------------------------------------------------------------------ *)

(* Result sets compared as sorted bags of display strings: collapses the
   Int/Bool encoding difference without hiding real differences. *)
let canonical_rows (rs : Engine.Executor.result_set) =
  rs.Engine.Executor.rs_rows
  |> List.map (fun row ->
         String.concat "|"
           (Array.to_list
              (Array.map
                 (fun v ->
                   match v with
                   | Value.Bool b -> if b then "1" else "0"
                   | v -> Value.to_display v)
                 row)))
  |> List.sort String.compare

let run ~max_queries config =
  let stats = ref empty_stats in
  let rec db_round round =
    if !stats.queries >= max_queries || round > max 50 max_queries then !stats
    else begin
      let rng = Pqs.Rng.make ~seed:(config.seed + (round * 6991)) in
      let cols = core_schema rng in
      let sessions =
        List.map
          (fun d -> (d, Engine.Session.create ~bugs:config.bugs d))
          Dialect.all
      in
      let exec_all stmt =
        stats :=
          merge_stats !stats
            { empty_stats with statements = List.length sessions };
        List.iter
          (fun (_, s) ->
            match Engine.Session.execute s stmt with
            | Ok _ | Error _ -> ()
            | exception Engine.Errors.Crash _ -> ())
          sessions
      in
      exec_all (core_create cols);
      for _ = 1 to Pqs.Rng.int_in rng 1 3 do
        exec_all (core_insert rng cols)
      done;
      for _ = 1 to 15 do
        if !stats.queries < max_queries then begin
          stats := merge_stats !stats { empty_stats with queries = 1 };
          let q =
            A.Q_select
              {
                A.sel_distinct = Pqs.Rng.chance rng 0.3;
                sel_items =
                  List.map (fun c -> A.Sel_expr (A.col c.cc_name, None)) cols;
                sel_from = [ A.F_table { name = "t0"; alias = None } ];
                sel_where = Some (core_condition rng cols 2);
                sel_group_by = [];
                sel_having = None;
                sel_order_by = [];
                sel_limit = None;
                sel_offset = None;
              }
          in
          stats :=
            merge_stats !stats
              { empty_stats with statements = List.length sessions };
          let results =
            List.map
              (fun (d, s) ->
                match Engine.Session.query s q with
                | Ok rs -> (d, Some (canonical_rows rs))
                | Error _ -> (d, None)
                | exception Engine.Errors.Crash _ -> (d, None))
              sessions
          in
          let distinct_outcomes =
            List.sort_uniq compare (List.filter_map snd results)
          in
          if List.length distinct_outcomes > 1 then
            stats :=
              merge_stats !stats
                {
                  empty_stats with
                  findings =
                    [
                      {
                        query_text =
                          Sqlast.Sql_printer.query Dialect.Sqlite_like q;
                        mismatched =
                          List.map
                            (fun (d, r) ->
                              ( d,
                                match r with
                                | Some rows -> List.length rows
                                | None -> -1 ))
                            results;
                      };
                    ];
                }
        end
      done;
      db_round (round + 1)
    end
  in
  db_round 0
