(** RAGS-style differential testing (Slutz 1998; paper Sections 1, 2, 6).

    Runs identical common-core SQL on all three dialect personalities and
    compares the fetched result sets.  The common core is what all three
    accept: typed columns (INT/TEXT/REAL), standard comparisons and
    predicates — no collations, storage engines, inheritance, [IS NOT] over
    scalars, [<=>], untyped columns or dialect options.

    The paper's two criticisms are both observable here: (1) most injected
    bugs live behind dialect-specific features the common core cannot
    express, so differential testing cannot trigger them; (2) a bug shared
    by all engines would produce identical (wrong) results — modeled by
    enabling the same bug set on every session. *)

type config = {
  bugs : Engine.Bug.set;  (** enabled on every compared engine *)
  seed : int;
}

val default_config : ?seed:int -> ?bugs:Engine.Bug.set -> unit -> config

type finding = {
  query_text : string;
  mismatched : (Sqlval.Dialect.t * int) list;
      (** result-set cardinality per dialect *)
}

type stats = {
  queries : int;
  statements : int;
  findings : finding list;  (** in chronological order *)
}

val empty_stats : stats

(** Sum the counters and append [b]'s findings after [a]'s.  Associative,
    with {!empty_stats} as left and right identity — the same monoid laws
    as [Pqs.Stats.merge], so partial runs can be combined. *)
val merge_stats : stats -> stats -> stats

val run : max_queries:int -> config -> stats
