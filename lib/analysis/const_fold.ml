(* Sound 3VL constant folding on top of the engine evaluator.

   The folder deliberately owns no expression semantics: every value it
   produces comes from {!Engine.Eval} on a bug-free environment, so the
   fold is dialect-correct (affinity, collation, three-valued logic) by
   construction and can never drift from the engine.  What this module
   adds is the *static* side: building evaluator environments from
   pivot-row bindings, deciding which subtrees carry outward-visible
   column metadata (and therefore must not be replaced by literals), and
   the operational substitution checks the simplifier uses before it
   rewrites an operand of a metadata-sensitive node (comparison, BETWEEN,
   LIKE) into a literal: the rewrite is emitted only when the engine's own
   prep/apply split provably computes the same value for the substituted
   operands. *)

open Sqlval
module A = Sqlast.Ast
module E = Engine.Eval

type binding = {
  b_table : string;
  b_column : string;
  b_value : Value.t;
  b_type : Datatype.t;
  b_collation : Collation.t;
}

(* name resolution mirrors Interp.env_of_pivot: case-insensitive, an
   unqualified name matching several bindings is ambiguous *)
let env ?(case_sensitive_like = false) dialect (bindings : binding list) :
    E.env =
  let resolve ~table ~column =
    let matches b =
      match table with
      | None -> true
      | Some t -> String.lowercase_ascii t = String.lowercase_ascii b.b_table
    in
    let col = String.lowercase_ascii column in
    let hits =
      List.filter
        (fun b ->
          matches b && String.lowercase_ascii b.b_column = col)
        bindings
    in
    match hits with
    | [ b ] ->
        Ok
          {
            E.value = b.b_value;
            datatype = b.b_type;
            collation = b.b_collation;
          }
    | [] ->
        Error
          (Engine.Errors.make Engine.Errors.No_such_column
             ("no such column: " ^ column))
    | _ :: _ ->
        Error
          (Engine.Errors.make Engine.Errors.Ambiguous_column
             ("ambiguous column name: " ^ column))
  in
  {
    E.dialect;
    bugs = Engine.Bug.empty_set;
    case_sensitive_like;
    coverage = None;
    resolve;
  }

let const_env ?case_sensitive_like dialect =
  E.const_env ?case_sensitive_like dialect

let fold env e = match E.eval env e with Ok v -> Some v | Error _ -> None

let fold_tvl env e =
  match E.eval_tvl env e with Ok t -> Some t | Error _ -> None

(* Does [e] expose column metadata (declared type / collation) to an
   enclosing comparison?  [Eval.column_meta] and [Eval.explicit_collation]
   only ever look at the Col / COLLATE / CAST / unary [+] decoration chain
   at the root, so any expression they are blind to can be replaced by a
   literal of its value without changing an enclosing node's static
   prep. *)
let metadata_free env e =
  E.column_meta env e = None && E.explicit_collation env e = None

(* values compare structurally; [Stdlib.compare] keeps NaN equal to
   itself, which is what replay determinism needs *)
let same_result (a : (Value.t, Engine.Errors.t) result)
    (b : (Value.t, Engine.Errors.t) result) =
  match (a, b) with
  | Ok va, Ok vb -> Stdlib.compare va vb = 0
  | Error ea, Error eb -> Engine.Errors.equal_code ea.code eb.code
  | _ -> false

let compare_substitutable env op ea eb va vb =
  same_result
    (E.compare_apply env (E.compare_prep env op ea eb) va vb)
    (E.compare_apply env (E.compare_prep env op (A.Lit va) (A.Lit vb)) va vb)

let between_substitutable env ~negated ~arg ~lo ~hi va vl vh =
  same_result
    (E.between_apply env (E.between_prep env ~negated ~arg ~lo ~hi) va vl vh)
    (E.between_apply env
       (E.between_prep env ~negated ~arg:(A.Lit va) ~lo:(A.Lit vl)
          ~hi:(A.Lit vh))
       va vl vh)

let like_substitutable env ~negated ~arg va vp esc =
  same_result
    (E.like_apply env (E.like_prep env ~negated ~arg) va vp esc)
    (E.like_apply env (E.like_prep env ~negated ~arg:(A.Lit va)) va vp esc)
