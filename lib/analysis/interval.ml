(* Per-column value-class and interval domain.

   A small abstract domain over column values: which storage classes a
   column may hold (NULL / numeric / text / blob) and, when numeric, an
   inclusive interval.  Domains are seeded from the declared schema and
   refined left-to-right through the conjuncts of a WHERE clause; a
   conjunct that empties its column's domain is reported.

   Soundness of the seeding is dialect-sensitive: sqlite columns are
   dynamically typed (an INT-declared column can hold 'abc'), so under
   sqlite only NOT NULL is trusted and classes/ranges start at top.  The
   statically-typed dialects seed the class set and integer range from
   the declared type.  Refinement from the conjuncts themselves
   (equalities, ranges, BETWEEN, IS \[NOT\] NULL against literals) is
   dialect-independent: two conjuncts demanding disjoint numeric values
   of the same column can never both hold of one row. *)

open Sqlval
module A = Sqlast.Ast

type range = { lo : float; hi : float }  (* inclusive; infinities at top *)

type dom = {
  may_null : bool;
  may_num : bool;
  may_text : bool;
  may_blob : bool;
  num : range;
}

let top_range = { lo = neg_infinity; hi = infinity }

let top ~may_null =
  { may_null; may_num = true; may_text = true; may_blob = true; num = top_range }

let is_empty d =
  (not d.may_null) && (not d.may_text) && (not d.may_blob)
  && ((not d.may_num) || d.num.lo > d.num.hi)

type t = {
  dialect : Dialect.t;
  cols : ((string * string) * dom) list;  (* keys lowercased *)
}

let key table column =
  (String.lowercase_ascii table, String.lowercase_ascii column)

let seed_dom dialect (c : Typecheck.column) =
  let may_null =
    match c.Typecheck.col_nullability with
    | Nullability.Not_null -> false
    | _ -> true
  in
  match dialect with
  | Dialect.Sqlite_like ->
      (* dynamic typing: the declared type is an affinity, not a bound *)
      top ~may_null
  | Dialect.Mysql_like | Dialect.Postgres_like -> (
      match c.Typecheck.col_type with
      | Datatype.Int { width; _ } ->
          let lo, hi = Datatype.int_range width in
          {
            may_null;
            may_num = true;
            may_text = false;
            may_blob = false;
            num = { lo = Int64.to_float lo; hi = Int64.to_float hi };
          }
      | Datatype.Serial ->
          {
            may_null;
            may_num = true;
            may_text = false;
            may_blob = false;
            num = top_range;
          }
      | Datatype.Real | Datatype.Bool ->
          {
            may_null;
            may_num = true;
            may_text = false;
            may_blob = false;
            num = top_range;
          }
      | Datatype.Text ->
          { may_null; may_num = false; may_text = true; may_blob = false;
            num = top_range }
      | Datatype.Blob ->
          { may_null; may_num = false; may_text = false; may_blob = true;
            num = top_range }
      | Datatype.Any -> top ~may_null)

let of_tables dialect (tables : Typecheck.table list) : t =
  {
    dialect;
    cols =
      List.concat_map
        (fun (tab : Typecheck.table) ->
          List.map
            (fun (c : Typecheck.column) ->
              (key tab.Typecheck.tab_name c.Typecheck.col_name,
               seed_dom dialect c))
            tab.Typecheck.tab_columns)
        tables;
  }

let find t ~table ~column =
  match table with
  | Some tab -> List.assoc_opt (key tab column) t.cols
  | None -> (
      let col = String.lowercase_ascii column in
      match List.filter (fun ((_, c), _) -> c = col) t.cols with
      | [ (_, d) ] -> Some d
      | _ -> None (* unknown or ambiguous: no refinement *))

let update t ~table ~column dom =
  let keys =
    match table with
    | Some tab -> [ key tab column ]
    | None -> (
        let col = String.lowercase_ascii column in
        match List.filter (fun ((_, c), _) -> c = col) t.cols with
        | [ (k, _) ] -> [ k ]
        | _ -> [])
  in
  {
    t with
    cols =
      List.map
        (fun (k, d) -> if List.mem k keys then (k, dom) else (k, d))
        t.cols;
  }

(* ------------------------------------------------------------------ *)
(* Conjunct constraints                                                *)

let numeric_value (v : Value.t) =
  match v with
  | Value.Int i -> Some (Int64.to_float i)
  | Value.Real f -> Some f
  | Value.Bool b -> Some (if b then 1.0 else 0.0)
  | _ -> None

(* the numeric sub-domain a satisfied comparison confines the column to *)
let constrain_range op n =
  match op with
  | A.Eq -> Some { lo = n; hi = n }
  | A.Lt -> Some { lo = neg_infinity; hi = n }  (* open bounds widened *)
  | A.Le -> Some { lo = neg_infinity; hi = n }
  | A.Gt -> Some { lo = n; hi = infinity }
  | A.Ge -> Some { lo = n; hi = infinity }
  | _ -> None

let inter a b = { lo = Float.max a.lo b.lo; hi = Float.min a.hi b.hi }

(* a satisfied comparison also rules out NULL (it would yield UNKNOWN) *)
let apply_range d r =
  {
    d with
    may_null = false;
    may_text = false;
    may_blob = false;
    num = inter d.num r;
  }

type constraint_ = {
  c_table : string option;
  c_column : string;
  c_dom : dom -> dom;  (* refinement assuming the conjunct holds *)
}

let rec col_of (e : A.expr) =
  match e with
  | A.Col { table; column } -> Some (table, column)
  | A.Unary (A.Pos, inner) | A.Collate (inner, _) -> col_of inner
  | _ -> None

let flip = function
  | A.Lt -> A.Gt
  | A.Le -> A.Ge
  | A.Gt -> A.Lt
  | A.Ge -> A.Le
  | op -> op

let constraint_of (e : A.expr) : constraint_ option =
  match e with
  | A.Binary (op, a, b) -> (
      let mk (table, column) op v =
        match numeric_value v with
        | None -> None
        | Some n -> (
            match constrain_range op n with
            | None -> None
            | Some r ->
                Some
                  { c_table = table; c_column = column;
                    c_dom = (fun d -> apply_range d r) })
      in
      match (col_of a, b, a, col_of b) with
      | Some c, A.Lit v, _, _ -> mk c op v
      | _, _, A.Lit v, Some c -> mk c (flip op) v
      | _ -> None)
  | A.Between { negated = false; arg; lo = A.Lit vl; hi = A.Lit vh } -> (
      match (col_of arg, numeric_value vl, numeric_value vh) with
      | Some (table, column), Some l, Some h ->
          Some
            { c_table = table; c_column = column;
              c_dom = (fun d -> apply_range d { lo = l; hi = h }) }
      | _ -> None)
  | A.Is { negated; arg; rhs = A.Is_null } -> (
      match col_of arg with
      | Some (table, column) ->
          Some
            {
              c_table = table;
              c_column = column;
              c_dom =
                (if negated then fun d -> { d with may_null = false }
                 else fun d ->
                   { d with may_num = false; may_text = false;
                     may_blob = false });
            }
      | None -> None)
  | _ -> None

let rec conjuncts (e : A.expr) acc =
  match e with
  | A.Binary (A.And, a, b) -> conjuncts a (conjuncts b acc)
  | e -> e :: acc

(* ------------------------------------------------------------------ *)
(* The check                                                           *)

let check_where (t : t) ?(loc = "query.where") (w : A.expr) :
    Diagnostic.t list =
  let diags = ref [] in
  let emit code msg =
    diags := Diagnostic.warning ~code ~loc msg :: !diags
  in
  let _ =
    List.fold_left
      (fun t conjunct ->
        match constraint_of conjunct with
        | None -> t
        | Some c -> (
            match find t ~table:c.c_table ~column:c.c_column with
            | None -> t
            | Some dom ->
                let refined = c.c_dom dom in
                if is_empty refined then begin
                  emit Diagnostic.Unsat_predicate
                    (Printf.sprintf
                       "conjunct `%s` empties the domain of %s"
                       (Sqlast.Sql_printer.expr t.dialect conjunct)
                       c.c_column);
                  update t ~table:c.c_table ~column:c.c_column refined
                end
                else update t ~table:c.c_table ~column:c.c_column refined))
      t
      (conjuncts w [])
  in
  List.rev !diags

(* out-of-interval: a comparison against a literal beyond the column's
   *seeded* (declared-type) interval — checked per conjunct against the
   schema domain, independent of other conjuncts *)
let check_bounds (t : t) ?(loc = "query.where") (w : A.expr) :
    Diagnostic.t list =
  let diags = ref [] in
  List.iter
    (fun conjunct ->
      match conjunct with
      | A.Binary (op, a, b) -> (
          let check (table, column) op v =
            match (find t ~table ~column, numeric_value v) with
            | Some d, Some n when d.may_num && not d.may_text ->
                let sat =
                  match constrain_range op n with
                  | Some r -> (inter d.num r).lo <= (inter d.num r).hi
                  | None -> true
                in
                if not sat then
                  diags :=
                    Diagnostic.warning ~code:Diagnostic.Out_of_interval ~loc
                      (Printf.sprintf
                         "comparison `%s` lies outside %s's declared \
                          interval [%g, %g]"
                         (Sqlast.Sql_printer.expr t.dialect conjunct)
                         column d.num.lo d.num.hi)
                    :: !diags
            | _ -> ()
          in
          match (col_of a, b, a, col_of b) with
          | Some c, A.Lit v, _, _ -> check c op v
          | _, _, A.Lit v, Some c -> check c (flip op) v
          | _ -> ())
      | _ -> ())
    (conjuncts w []);
  List.rev !diags

let check (t : t) ?loc w = check_where t ?loc w @ check_bounds t ?loc w
