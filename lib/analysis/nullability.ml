(* Three-valued nullability lattice.

   The abstract domain mirrors SQL's three-valued logic at the value level:
   an expression either provably never evaluates to NULL ([Not_null]),
   provably always evaluates to NULL ([Definitely_null]), or we cannot tell
   ([Maybe_null]).  [Maybe_null] is the top of the lattice; the two definite
   facts are incomparable bottom elements:

        Maybe_null
         /      \
     Not_null  Definitely_null

   Soundness contract (checked against the reference interpreter in the
   test suite): if the analysis says [Not_null], the concrete evaluation is
   non-NULL; if it says [Definitely_null], the concrete evaluation is NULL
   (or an error).  [Maybe_null] promises nothing. *)

open Sqlval

type t = Not_null | Maybe_null | Definitely_null
[@@deriving show { with_path = false }, eq]

(* Least upper bound: two branches that agree keep the definite fact; any
   disagreement loses it. *)
let join a b = if equal a b then a else Maybe_null

let joins = function [] -> Maybe_null | x :: rest -> List.fold_left join x rest

(* Abstraction of a concrete value, used to seed pivot-row environments. *)
let of_value = function Value.Null -> Definitely_null | _ -> Not_null

(* NULL-strict operator: NULL in, NULL out (comparisons, arithmetic, most
   scalar functions).  Definite facts survive only when every operand is
   definite. *)
let strict args =
  if List.exists (equal Definitely_null) args then Definitely_null
  else if List.for_all (equal Not_null) args then Not_null
  else Maybe_null

(* COALESCE-shaped operator: the first non-NULL operand wins, so one
   definitely non-NULL argument forces a non-NULL result. *)
let coalesce args =
  if List.exists (equal Not_null) args then Not_null
  else if List.for_all (equal Definitely_null) args then Definitely_null
  else Maybe_null

(* Does the abstract fact subsume the concrete outcome? *)
let consistent_with_value t (v : Value.t) =
  match (t, v) with
  | Maybe_null, _ -> true
  | Not_null, v -> v <> Value.Null
  | Definitely_null, v -> v = Value.Null

let to_string = function
  | Not_null -> "not-null"
  | Maybe_null -> "maybe-null"
  | Definitely_null -> "definitely-null"
