(** Typed-AST checker and 3VL nullability analysis.

    An abstract interpretation of the reference expression semantics
    ([Pqs.Interp] / [Engine.Eval]): every expression node is assigned a
    storage-class abstraction, a collation, and a {!Nullability.t}; every
    query a typed output row.  Diagnostics flag trees the concrete
    evaluator is guaranteed to reject (unknown names, wrong arities,
    dialect-foreign syntax, postgres strict-typing violations on definite
    classes).  Dynamically typed corners — sqlite columns, NULL literals —
    abstract to {!K_any}, which every check accepts, keeping the analysis
    sound for the well-typed-by-construction generators. *)

open Sqlval
module A := Sqlast.Ast

(** {1 Storage-class lattice} *)

type cls = K_any | K_num | K_int | K_real | K_text | K_blob | K_bool

val pp_cls : Format.formatter -> cls -> unit
val show_cls : cls -> string
val equal_cls : cls -> cls -> bool

val class_name : cls -> string
(** Lower-case rendering used in diagnostics ("integer", "text", ...). *)

val join_class : cls -> cls -> cls
(** Least upper bound: distinct numeric classes join to [K_num]; anything
    else joins to [K_any]. *)

val compatible_class : cls -> cls -> bool
(** Can values of these classes meet in a comparison without a
    strict-typing error?  [K_any] is compatible with everything. *)

val class_of_value : Value.t -> cls

val class_of_column : Dialect.t -> Datatype.t -> cls
(** Abstraction of what a stored column value can be.  All sqlite columns
    are [K_any] (declarations are affinities); mysql BOOL stores integers. *)

(** {1 Environments} *)

type ty = {
  ty_class : cls;
  ty_collation : Collation.t;
  ty_nullability : Nullability.t;
}

val pp_ty : Format.formatter -> ty -> unit
val show_ty : ty -> string
val equal_ty : ty -> ty -> bool

type column = {
  col_name : string;
  col_type : Datatype.t;
  col_collation : Collation.t;
  col_nullability : Nullability.t;
}

type table = { tab_name : string; tab_columns : column list }
type env = { env_dialect : Dialect.t; env_tables : table list }

val env : Dialect.t -> table list -> env

val table_of_schema : Storage.Schema.table -> table
(** Build an analysis table from a storage schema (NOT NULL becomes
    {!Nullability.Not_null}). *)

(** {1 Checking} *)

val check_expr : env -> A.expr -> ty * Diagnostic.t list
(** Check an expression with every environment table in scope (the shape
    of a WHERE clause over the pivot tables).  Aggregates are forbidden. *)

val check_query : env -> A.query -> (string * ty) list * Diagnostic.t list
(** Check a full query; returns the typed output row (column names paired
    with inferred types) alongside any diagnostics. *)

val check_stmt : env -> A.stmt -> Diagnostic.t list
(** Check the query inside [Select_stmt] / [Explain]; other statement
    kinds yield no diagnostics. *)
