(** Three-valued nullability lattice used by the abstract interpretation.

    [Maybe_null] is the top element; [Not_null] and [Definitely_null] are
    incomparable definite facts.  The analysis is sound with respect to the
    reference interpreter: [Not_null] implies the concrete value is
    non-NULL and [Definitely_null] implies it is NULL. *)

type t = Not_null | Maybe_null | Definitely_null

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool

val join : t -> t -> t
(** Least upper bound: definite facts survive only agreement. *)

val joins : t list -> t
(** [join] over a list; the empty list yields [Maybe_null]. *)

val of_value : Sqlval.Value.t -> t
(** Abstraction of a concrete value ([Null] maps to [Definitely_null]). *)

val strict : t list -> t
(** NULL-strict combination: any definite NULL operand forces
    [Definitely_null]; all-[Not_null] operands force [Not_null]. *)

val coalesce : t list -> t
(** COALESCE-shaped combination: any [Not_null] operand forces [Not_null];
    all-[Definitely_null] operands force [Definitely_null]. *)

val consistent_with_value : t -> Sqlval.Value.t -> bool
(** Does the abstract fact subsume this concrete evaluation result? *)

val to_string : t -> string
(** Lower-case rendering used in diagnostics ("not-null", ...). *)
