(** Static SQL analysis over the shared IRs.

    Three passes, all abstract interpretations of the reference
    semantics: a typed-AST checker ({!Typecheck}), a 3VL nullability
    analysis ({!Nullability}), and a plan linter ({!Plan_lint}); plus the
    abstract-interpretation layer behind the const-opt (CODDTest)
    oracle — evaluator-backed constant folding ({!Const_fold}), a
    per-column value-class/interval domain ({!Interval}), and a
    provenance-tracking fixpoint rewriter ({!Simplify}).
    Diagnostics ({!Diagnostic}) carry a severity, a stable code, and a
    dotted location path.  The passes are pure and engine-independent;
    PQS wires them into the oracle pipeline as the [lint] self-check
    oracle. *)

module Diagnostic = Diagnostic
module Nullability = Nullability
module Typecheck = Typecheck
module Plan_lint = Plan_lint
module Const_fold = Const_fold
module Interval = Interval
module Simplify = Simplify

type env = Typecheck.env

val env : Sqlval.Dialect.t -> Typecheck.table list -> env

val check_expr : env -> Sqlast.Ast.expr -> Typecheck.ty * Diagnostic.t list
(** Type/nullability-check an expression with every environment table in
    scope (the shape of a WHERE clause over the pivot tables). *)

val check_query :
  env -> Sqlast.Ast.query -> (string * Typecheck.ty) list * Diagnostic.t list
(** Check a full query; returns the typed output row plus diagnostics. *)

val check_stmt : env -> Sqlast.Ast.stmt -> Diagnostic.t list
(** Check the query inside [Select_stmt] / [Explain]; other statements
    yield no diagnostics. *)

val lint_plan :
  Engine.Eval.env ->
  Storage.Catalog.t ->
  Storage.Schema.table ->
  where:Sqlast.Ast.expr option ->
  Engine.Planner.path ->
  Diagnostic.t list
(** Lint the access path chosen for a single-table scan. *)
