(** Sound 3VL constant folding, backed by the engine evaluator.

    The folder never re-implements expression semantics: it builds a
    bug-free {!Engine.Eval.env} whose column references resolve to known
    (pivot-row) values and lets the engine evaluator compute — so folds
    are dialect-correct on affinity, collation and three-valued logic by
    construction.  The [*_substitutable] checks answer the only genuinely
    static question: may an operand of a metadata-sensitive node be
    replaced by a literal of its value without perturbing the node's
    prep (collation choice, affinity adjustments)?  They decide it
    operationally, by running the engine's own prep/apply split both
    ways. *)

open Sqlval

(** One known column value, with the declared metadata the engine's
    comparison rules consult. *)
type binding = {
  b_table : string;
  b_column : string;
  b_value : Value.t;
  b_type : Datatype.t;
  b_collation : Collation.t;
}

(** A bug-free evaluator environment over the bindings.  Resolution is
    case-insensitive; an unqualified column matching several bindings
    resolves to an ambiguity error (so folding such a reference fails
    rather than guessing). *)
val env :
  ?case_sensitive_like:bool -> Dialect.t -> binding list -> Engine.Eval.env

(** A bug-free environment with no columns in scope: folds only the
    genuinely constant subtrees (what the lint pass uses). *)
val const_env : ?case_sensitive_like:bool -> Dialect.t -> Engine.Eval.env

(** Evaluate to a value / truth value; [None] when evaluation errors
    (unresolved column, division by zero, ...). *)
val fold : Engine.Eval.env -> Sqlast.Ast.expr -> Value.t option

val fold_tvl : Engine.Eval.env -> Sqlast.Ast.expr -> Tvl.t option

(** Whether [e] exposes no column metadata (declared type or collation)
    to an enclosing node — i.e. {!Engine.Eval.column_meta} and
    {!Engine.Eval.explicit_collation} are both [None], so replacing [e]
    with a literal of its value cannot change any enclosing static
    prep. *)
val metadata_free : Engine.Eval.env -> Sqlast.Ast.expr -> bool

(** May both operands of [a op b] be replaced by literals of their
    values?  True iff the engine's [compare_prep]/[compare_apply] split
    computes the same result either way on these values. *)
val compare_substitutable :
  Engine.Eval.env ->
  Sqlast.Ast.binop ->
  Sqlast.Ast.expr ->
  Sqlast.Ast.expr ->
  Value.t ->
  Value.t ->
  bool

(** Same question for the three operands of [\[NOT\] BETWEEN]. *)
val between_substitutable :
  Engine.Eval.env ->
  negated:bool ->
  arg:Sqlast.Ast.expr ->
  lo:Sqlast.Ast.expr ->
  hi:Sqlast.Ast.expr ->
  Value.t ->
  Value.t ->
  Value.t ->
  bool

(** Same question for the scrutinee of [\[NOT\] LIKE]. *)
val like_substitutable :
  Engine.Eval.env ->
  negated:bool ->
  arg:Sqlast.Ast.expr ->
  Value.t ->
  Value.t ->
  char option ->
  bool
