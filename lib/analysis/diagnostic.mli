(** Structured diagnostics for the static analysis passes.

    A diagnostic pairs a severity with a stable machine-readable code, a
    dotted location path into the checked tree (e.g. "query.where.lhs"),
    and a human-readable message.  [to_string] renders the stable
    one-line form ["error[unknown-column] at query.where.lhs: ..."]. *)

type severity = Error | Warning

type code =
  | Unknown_table  (** FROM references a table or view not in scope *)
  | Unknown_column  (** column reference resolves to nothing *)
  | Ambiguous_column  (** unqualified reference matches several columns *)
  | Wrong_arity  (** function or aggregate applied to wrong argument count *)
  | Unavailable_function  (** function does not exist in this dialect *)
  | Dialect_mismatch  (** syntax form foreign to this dialect (GLOB, ...) *)
  | Type_mismatch  (** operand classes can never combine in this dialect *)
  | Boolean_context  (** non-boolean expression where pg requires boolean *)
  | Column_count_mismatch  (** VALUES rows / compound arms disagree on arity *)
  | Empty_select  (** empty select list, VALUES with no rows, bare [*] *)
  | Misplaced_aggregate  (** aggregate in WHERE / GROUP BY / join ON *)
  | Nested_aggregate  (** aggregate inside another aggregate's argument *)
  | Null_predicate  (** WHERE clause statically always NULL (warning) *)
  | Plan_key_class  (** index probe key class incompatible with column *)
  | Plan_collation  (** probe collation differs from the index collation *)
  | Plan_null_key  (** NULL probe key can never match *)
  | Plan_unjustified  (** no WHERE conjunct justifies the access path *)
  | Plan_partial  (** partial-index scan not implied by the WHERE clause *)
  | Plan_nullability
      (** pushed-down predicate does not reject NULL keys, so skipping
          NULL index entries would be unsound *)
  | Unsat_predicate
      (** WHERE conjunction empties a column's abstract domain (warning) *)
  | Always_true  (** WHERE clause simplifies to a true constant (warning) *)
  | Dead_case_branch  (** searched-CASE branch can never be taken (warning) *)
  | Out_of_interval
      (** comparison literal lies outside the column's declared interval
          (warning) *)

type t = { severity : severity; code : code; loc : string; message : string }

val pp : Format.formatter -> t -> unit
val show : t -> string
val equal : t -> t -> bool
val equal_severity : severity -> severity -> bool
val equal_code : code -> code -> bool

val code_slug : code -> string
(** Stable kebab-case rendering of a code. *)

val error : code:code -> loc:string -> string -> t
val warning : code:code -> loc:string -> string -> t
val is_error : t -> bool

val to_string : t -> string
(** ["error[unknown-column] at query.where.lhs: ..."] — pinned by golden
    tests; treat as a stable format. *)
