(** The constant-optimization rewriter.

    Iterates a bottom-up pass to a fixpoint: substitutes known
    (pivot-row) column values, folds constant subtrees through
    {!Const_fold} — i.e. through the engine evaluator itself — prunes
    tautological / contradictory AND-OR conjuncts and dead searched-CASE
    branches, and records a provenance trail of every rewrite.

    Soundness contract: under the binding environment the result expression
    evaluates to the same value as the original on a bug-free engine, and
    no rewrite can introduce an evaluation error the original lacked.
    The boolean skeleton (AND / OR / NOT / IS) and metadata-bearing roots
    (Col, COLLATE, CAST, unary [+]) are never folded away, so the
    simplified query still exercises the engine's own constant folder —
    which is exactly what the const-opt oracle differentially tests. *)

(** One applied rewrite, with the rule name, the dotted location, and the
    SQL renderings before / after. *)
type rewrite = {
  rw_rule : string;
  rw_loc : string;
  rw_before : string;
  rw_after : string;
}

val pp_rewrite : Format.formatter -> rewrite -> unit

type result = {
  res_expr : Sqlast.Ast.expr;
  res_trail : rewrite list;  (** rewrites in application order *)
  res_diags : Diagnostic.t list;  (** dead-case-branch warnings *)
}

(** Simplify under the given environment (build one with
    {!Const_fold.env} / {!Const_fold.const_env}). *)
val simplify : ?max_passes:int -> Engine.Eval.env -> Sqlast.Ast.expr -> result

(** Lint-side entry: simplify a WHERE clause and return its dead-branch
    warnings plus an [always-true] warning when the clause collapses to a
    true constant. *)
val where_diagnostics :
  Engine.Eval.env -> ?loc:string -> Sqlast.Ast.expr -> Diagnostic.t list
