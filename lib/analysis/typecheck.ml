(* Typed-AST checker and 3VL nullability analysis over Sqlast.Ast.

   The checker is an abstract interpretation of the reference semantics in
   lib/core/interp.ml and lib/engine/eval.ml.  Each expression node gets a
   storage-class abstraction [cls], a collation, and a Nullability.t; each
   query gets a typed output row.  Diagnostics are reported only for trees
   the concrete evaluator is guaranteed to reject or that can never behave
   as intended (unknown names, wrong arities, dialect-foreign syntax,
   postgres strict-typing violations on *definite* classes) — dynamically
   typed corners (sqlite columns, NULL literals) abstract to [K_any], which
   every check accepts.  That keeps the analysis sound for the generators:
   a well-typed-by-construction Gen_query tree produces zero diagnostics
   (property-tested over a seed sweep in test/test_analysis.ml). *)

open Sqlval
module A = Sqlast.Ast

(* ------------------------------------------------------------------ *)
(* Storage-class lattice                                              *)

type cls = K_any | K_num | K_int | K_real | K_text | K_blob | K_bool
[@@deriving show { with_path = false }, eq]

let class_name = function
  | K_any -> "any"
  | K_num -> "numeric"
  | K_int -> "integer"
  | K_real -> "real"
  | K_text -> "text"
  | K_blob -> "blob"
  | K_bool -> "boolean"

let numeric_class = function K_num | K_int | K_real -> true | _ -> false

let join_class a b =
  if equal_cls a b then a
  else if numeric_class a && numeric_class b then K_num
  else K_any

(* Can values of these classes meet in a comparison without a strict-typing
   error?  [K_any] is compatible with everything (it may dynamically hold a
   matching value), as are the members of the numeric family. *)
let compatible_class a b =
  match (a, b) with
  | K_any, _ | _, K_any -> true
  | _ -> equal_cls a b || (numeric_class a && numeric_class b)

let class_of_value = function
  | Value.Null -> K_any
  | Value.Int _ -> K_int
  | Value.Real _ -> K_real
  | Value.Text _ -> K_text
  | Value.Blob _ -> K_blob
  | Value.Bool _ -> K_bool

(* What a stored column value can be, given the declared type.  sqlite
   declarations are mere affinities — any value can land in any column —
   so every sqlite column abstracts to [K_any].  mysql converts on store
   (Coerce.mysql_store) and postgres rejects mismatches (Coerce.pg_store),
   so there the declaration is trustworthy.  mysql's BOOL is TINYINT:
   stored booleans are integers. *)
let class_of_column dialect (dt : Datatype.t) =
  match (dialect : Dialect.t) with
  | Dialect.Sqlite_like -> K_any
  | Dialect.Mysql_like | Dialect.Postgres_like -> (
      match dt with
      | Datatype.Any -> K_any
      | Datatype.Int _ | Datatype.Serial -> K_int
      | Datatype.Real -> K_real
      | Datatype.Text -> K_text
      | Datatype.Blob -> K_blob
      | Datatype.Bool ->
          if Dialect.equal dialect Dialect.Mysql_like then K_int else K_bool)

(* Result class of CAST(e AS dt), mirroring Coerce.{sqlite,mysql,pg}_cast.
   mysql CAST(x AS UNSIGNED) of a negative value yields a Real (the
   engine's dialect quirk), so it only narrows to the numeric family. *)
let class_of_cast dialect (dt : Datatype.t) ~operand =
  match dt with
  | Datatype.Any -> (
      match (dialect : Dialect.t) with
      | Dialect.Sqlite_like -> K_any (* numeric affinity may convert *)
      | _ -> operand)
  | Datatype.Int { unsigned = true; _ }
    when Dialect.equal dialect Dialect.Mysql_like ->
      K_num
  | Datatype.Int _ | Datatype.Serial -> K_int
  | Datatype.Real -> K_real
  | Datatype.Text -> K_text
  | Datatype.Blob -> K_blob
  | Datatype.Bool ->
      if Dialect.equal dialect Dialect.Postgres_like then K_bool else K_int

(* ------------------------------------------------------------------ *)
(* Environments and scopes                                            *)

type ty = {
  ty_class : cls;
  ty_collation : Collation.t;
  ty_nullability : Nullability.t;
}
[@@deriving show { with_path = false }, eq]

type column = {
  col_name : string;
  col_type : Datatype.t;
  col_collation : Collation.t;
  col_nullability : Nullability.t;
}

type table = { tab_name : string; tab_columns : column list }
type env = { env_dialect : Dialect.t; env_tables : table list }

let env env_dialect env_tables = { env_dialect; env_tables }

let table_of_schema (t : Storage.Schema.table) : table =
  {
    tab_name = t.Storage.Schema.table_name;
    tab_columns =
      Array.to_list t.Storage.Schema.columns
      |> List.map (fun (c : Storage.Schema.column) ->
             {
               col_name = c.Storage.Schema.name;
               col_type = c.Storage.Schema.ty;
               col_collation = c.Storage.Schema.collation;
               col_nullability =
                 (if c.Storage.Schema.not_null then Nullability.Not_null
                  else Nullability.Maybe_null);
             });
  }

(* A scope entry: one visible column with its FROM label (alias or table
   name).  Derived tables contribute synthesized entries. *)
type scope_col = { sc_label : string; sc_name : string; sc_ty : ty }
type scope = scope_col list

let mk_ty ?(coll = Collation.Binary) cls null =
  { ty_class = cls; ty_collation = coll; ty_nullability = null }

let unknown_ty = mk_ty K_any Nullability.Maybe_null

let ty_of_column dialect (c : column) =
  mk_ty ~coll:c.col_collation
    (class_of_column dialect c.col_type)
    c.col_nullability

let scope_of_table dialect ~label (t : table) : scope =
  List.map
    (fun c ->
      { sc_label = label; sc_name = c.col_name; sc_ty = ty_of_column dialect c })
    t.tab_columns

(* ------------------------------------------------------------------ *)
(* Diagnostics plumbing                                               *)

type state = { mutable diags : Diagnostic.t list }

let report st d = st.diags <- d :: st.diags
let err st code loc msg = report st (Diagnostic.error ~code ~loc msg)
let is_pg e = Dialect.equal e.env_dialect Dialect.Postgres_like
let is_mysql e = Dialect.equal e.env_dialect Dialect.Mysql_like
let is_sqlite e = Dialect.equal e.env_dialect Dialect.Sqlite_like
let lc = String.lowercase_ascii

let qual_name table column =
  match table with Some t -> t ^ "." ^ column | None -> column

(* ------------------------------------------------------------------ *)
(* Column resolution                                                  *)

let resolve scope st ~loc ~table ~column =
  let hits =
    List.filter
      (fun sc ->
        lc sc.sc_name = lc column
        &&
        match table with None -> true | Some t -> lc sc.sc_label = lc t)
      scope
  in
  match hits with
  | [ sc ] -> sc.sc_ty
  | [] ->
      err st Diagnostic.Unknown_column loc
        (Printf.sprintf "unknown column %s" (qual_name table column));
      unknown_ty
  | _ :: _ :: _ ->
      err st Diagnostic.Ambiguous_column loc
        (Printf.sprintf "ambiguous column name %s" (qual_name table column));
      unknown_ty

(* ------------------------------------------------------------------ *)
(* Dialect helper checks                                              *)

(* postgres rejects non-boolean expressions in boolean contexts (WHERE,
   AND/OR/NOT operands, CASE conditions...).  [K_any] may dynamically be a
   boolean, so only definite non-boolean classes are flagged. *)
let bool_context env st ~loc (t : ty) =
  if is_pg env then
    match t.ty_class with
    | K_bool | K_any -> ()
    | c ->
        err st Diagnostic.Boolean_context loc
          (Printf.sprintf
             "argument of a boolean context must be boolean, not %s"
             (class_name c))

let bool_ty env null =
  mk_ty (if is_pg env then K_bool else K_int) null

(* postgres comparisons require comparable operand classes. *)
let check_comparable env st ~loc a b =
  if is_pg env && not (compatible_class a.ty_class b.ty_class) then
    err st Diagnostic.Type_mismatch loc
      (Printf.sprintf "cannot compare %s with %s in the postgres dialect"
         (class_name a.ty_class) (class_name b.ty_class))

(* postgres CAST combinations that always error, whatever the value
   (Coerce.pg_cast).  Casting *to* text accepts anything; [K_any] or
   [K_num] operands may dynamically hold an accepted class. *)
let check_pg_cast st ~loc (dt : Datatype.t) (t : ty) =
  let bad =
    match (dt, t.ty_class) with
    | (Datatype.Int _ | Datatype.Serial), K_blob -> true
    | Datatype.Real, (K_bool | K_blob) -> true
    | Datatype.Bool, (K_real | K_blob) -> true
    | Datatype.Blob, (K_int | K_real | K_bool) -> true
    | _ -> false
  in
  if bad then
    err st Diagnostic.Type_mismatch loc
      (Printf.sprintf "cannot cast %s to %s in the postgres dialect"
         (class_name t.ty_class) (Datatype.to_sql dt))

(* postgres arithmetic/bit operands must be (possibly) numeric. *)
let check_pg_numeric env st ~loc what (t : ty) =
  if is_pg env then
    match t.ty_class with
    | K_text | K_blob | K_bool ->
        err st Diagnostic.Type_mismatch loc
          (Printf.sprintf "%s operand cannot be %s in the postgres dialect"
             what (class_name t.ty_class))
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Scalar functions                                                   *)

let func_name = function
  | A.F_abs -> "abs"
  | A.F_length -> "length"
  | A.F_lower -> "lower"
  | A.F_upper -> "upper"
  | A.F_coalesce -> "coalesce"
  | A.F_ifnull -> "ifnull"
  | A.F_nullif -> "nullif"
  | A.F_typeof -> "typeof"
  | A.F_trim -> "trim"
  | A.F_ltrim -> "ltrim"
  | A.F_rtrim -> "rtrim"
  | A.F_substr -> "substr"
  | A.F_replace -> "replace"
  | A.F_instr -> "instr"
  | A.F_hex -> "hex"
  | A.F_round -> "round"
  | A.F_sign -> "sign"
  | A.F_least -> "least"
  | A.F_greatest -> "greatest"
  | A.F_quote -> "quote"

(* Which dialect implements which function (mirrors Interp/Eval's
   per-dialect function tables). *)
let func_available (d : Dialect.t) = function
  | A.F_typeof | A.F_quote -> Dialect.equal d Dialect.Sqlite_like
  | A.F_ifnull | A.F_instr -> not (Dialect.equal d Dialect.Postgres_like)
  | A.F_least | A.F_greatest -> not (Dialect.equal d Dialect.Sqlite_like)
  | _ -> true

(* Accepted argument counts (inclusive range; max = -1 means unbounded). *)
let func_arity = function
  | A.F_abs | A.F_length | A.F_lower | A.F_upper | A.F_typeof | A.F_trim
  | A.F_ltrim | A.F_rtrim | A.F_hex | A.F_sign | A.F_quote ->
      (1, 1)
  | A.F_ifnull | A.F_nullif | A.F_instr -> (2, 2)
  | A.F_replace -> (3, 3)
  | A.F_substr -> (2, 3)
  | A.F_round -> (1, 2)
  | A.F_coalesce | A.F_least | A.F_greatest -> (1, -1)

(* ------------------------------------------------------------------ *)
(* Expression inference                                               *)

type agg_ctx = Agg_ok | Agg_forbidden | Agg_inside

let nth tys i =
  match List.nth_opt tys i with Some t -> t | None -> unknown_ty

let rec infer env scope st ~agg ~loc (e : A.expr) : ty =
  match e with
  | A.Lit v ->
      mk_ty (class_of_value v) (Nullability.of_value v)
  | A.Col { table; column } -> resolve scope st ~loc ~table ~column
  | A.Collate (e1, c) ->
      let t = infer env scope st ~agg ~loc:(loc ^ ".arg") e1 in
      { t with ty_collation = c }
  | A.Unary (op, e1) -> infer_unary env scope st ~agg ~loc op e1
  | A.Binary (op, a, b) -> infer_binary env scope st ~agg ~loc op a b
  | A.Is { arg; rhs; negated = _ } -> infer_is env scope st ~agg ~loc arg rhs
  | A.Between { arg; lo; hi; negated = _ } ->
      let ta = infer env scope st ~agg ~loc:(loc ^ ".arg") arg in
      let tl = infer env scope st ~agg ~loc:(loc ^ ".lo") lo in
      let th = infer env scope st ~agg ~loc:(loc ^ ".hi") hi in
      check_comparable env st ~loc ta tl;
      check_comparable env st ~loc ta th;
      let open Nullability in
      let n =
        let na = ta.ty_nullability
        and nl = tl.ty_nullability
        and nh = th.ty_nullability in
        if
          equal na Definitely_null
          || (equal nl Definitely_null && equal nh Definitely_null)
        then Definitely_null
        else if List.for_all (equal Not_null) [ na; nl; nh ] then Not_null
        else Maybe_null
      in
      bool_ty env n
  | A.In_list { arg; list; negated = _ } ->
      let ta = infer env scope st ~agg ~loc:(loc ^ ".arg") arg in
      let tis =
        List.mapi
          (fun i e ->
            let t =
              infer env scope st ~agg
                ~loc:(Printf.sprintf "%s.item%d" loc (i + 1))
                e
            in
            check_comparable env st ~loc ta t;
            t)
          list
      in
      let open Nullability in
      let n =
        if equal ta.ty_nullability Definitely_null then Definitely_null
        else if
          equal ta.ty_nullability Not_null
          && List.for_all (fun t -> equal t.ty_nullability Not_null) tis
        then Not_null
        else Maybe_null
      in
      bool_ty env n
  | A.Like { arg; pattern; escape; negated = _ } ->
      let ta = infer env scope st ~agg ~loc:(loc ^ ".arg") arg in
      let tp = infer env scope st ~agg ~loc:(loc ^ ".pattern") pattern in
      (match escape with
      | None -> ()
      | Some esc -> ignore (infer env scope st ~agg ~loc:(loc ^ ".escape") esc));
      if is_pg env then begin
        let check what (t : ty) =
          match t.ty_class with
          | K_int | K_real | K_num | K_bool | K_blob ->
              err st Diagnostic.Type_mismatch loc
                (Printf.sprintf
                   "LIKE %s cannot be %s in the postgres dialect" what
                   (class_name t.ty_class))
          | K_any | K_text -> ()
        in
        check "argument" ta;
        check "pattern" tp
      end;
      bool_ty env (like_nullability ta tp)
  | A.Glob { arg; pattern; negated = _ } ->
      let ta = infer env scope st ~agg ~loc:(loc ^ ".arg") arg in
      let tp = infer env scope st ~agg ~loc:(loc ^ ".pattern") pattern in
      if not (is_sqlite env) then
        err st Diagnostic.Dialect_mismatch loc
          (Printf.sprintf "GLOB is sqlite-specific, not available in %s"
             (Dialect.name env.env_dialect));
      bool_ty env (like_nullability ta tp)
  | A.Cast (dt, e1) ->
      let t = infer env scope st ~agg ~loc:(loc ^ ".arg") e1 in
      if is_pg env then check_pg_cast st ~loc dt t;
      mk_ty (class_of_cast env.env_dialect dt ~operand:t.ty_class)
        t.ty_nullability
  | A.Func (f, args) -> infer_func env scope st ~agg ~loc f args
  | A.Agg (af, arg) -> infer_agg env scope st ~agg ~loc af arg
  | A.Case { operand; branches; else_ } ->
      infer_case env scope st ~agg ~loc operand branches else_

(* LIKE/GLOB share a nullability shape: NULL argument or NULL pattern
   yields NULL (a NULL escape behaves as "no escape", so it is ignored). *)
and like_nullability ta tp =
  let open Nullability in
  if
    equal ta.ty_nullability Definitely_null
    || equal tp.ty_nullability Definitely_null
  then Definitely_null
  else if equal ta.ty_nullability Not_null && equal tp.ty_nullability Not_null
  then Not_null
  else Maybe_null

and infer_unary env scope st ~agg ~loc op e1 =
  let t = infer env scope st ~agg ~loc:(loc ^ ".arg") e1 in
  match op with
  | A.Not ->
      bool_context env st ~loc t;
      bool_ty env t.ty_nullability
  | A.Pos -> t (* engine's unary + is the identity *)
  | A.Neg ->
      check_pg_numeric env st ~loc "unary minus" t;
      let cls =
        if is_pg env then
          match t.ty_class with
          | K_int -> K_int
          | K_real -> K_real
          | _ -> K_num
        else K_num (* sqlite/mysql promote MIN_INT negation to real *)
      in
      mk_ty cls t.ty_nullability
  | A.Bit_not ->
      check_pg_bitop env st ~loc t;
      mk_ty K_int t.ty_nullability

and check_pg_bitop env st ~loc (t : ty) =
  if is_pg env then
    match t.ty_class with
    | K_real | K_text | K_blob | K_bool ->
        err st Diagnostic.Type_mismatch loc
          (Printf.sprintf
             "bit operation operand cannot be %s in the postgres dialect"
             (class_name t.ty_class))
    | K_any | K_num | K_int -> ()

and infer_binary env scope st ~agg ~loc op a b =
  let ta = infer env scope st ~agg ~loc:(loc ^ ".lhs") a in
  let tb = infer env scope st ~agg ~loc:(loc ^ ".rhs") b in
  let open Nullability in
  let na = ta.ty_nullability and nb = tb.ty_nullability in
  match op with
  | A.Eq | A.Neq | A.Lt | A.Le | A.Gt | A.Ge ->
      check_comparable env st ~loc ta tb;
      bool_ty env (strict [ na; nb ])
  | A.Null_safe_eq ->
      check_comparable env st ~loc ta tb;
      (* IS / <=> treats NULLs as comparable: never NULL itself *)
      bool_ty env Not_null
  | A.And | A.Or ->
      bool_context env st ~loc:(loc ^ ".lhs") ta;
      bool_context env st ~loc:(loc ^ ".rhs") tb;
      (* 3VL AND/OR can absorb a NULL (FALSE AND NULL = FALSE), so only
         agreement on a definite fact survives. *)
      bool_ty env (join na nb)
  | A.Concat when is_mysql env ->
      (* mysql's || is logical OR *)
      bool_context env st ~loc:(loc ^ ".lhs") ta;
      bool_context env st ~loc:(loc ^ ".rhs") tb;
      bool_ty env (join na nb)
  | A.Concat -> mk_ty K_text (strict [ na; nb ])
  | A.Add | A.Sub | A.Mul | A.Div | A.Rem ->
      check_pg_numeric env st ~loc:(loc ^ ".lhs") "arithmetic" ta;
      check_pg_numeric env st ~loc:(loc ^ ".rhs") "arithmetic" tb;
      let cls = arith_class env op ta.ty_class tb.ty_class in
      let n =
        match op with
        | A.Div | A.Rem when not (is_pg env) ->
            (* x / 0 and x % 0 are NULL in sqlite and mysql *)
            if equal na Definitely_null || equal nb Definitely_null then
              Definitely_null
            else Maybe_null
        | _ -> strict [ na; nb ]
      in
      mk_ty cls n
  | A.Bit_and | A.Bit_or | A.Shift_left | A.Shift_right ->
      check_pg_bitop env st ~loc:(loc ^ ".lhs") ta;
      check_pg_bitop env st ~loc:(loc ^ ".rhs") tb;
      mk_ty K_int (strict [ na; nb ])

(* Result class of +,-,*,/,% — non-numeric operands coerce to the numeric
   family at runtime (outside postgres), so the abstraction widens them to
   K_num rather than erroring. *)
and arith_class env op ca cb =
  let eff c = if numeric_class c then c else K_num in
  let ca = eff ca and cb = eff cb in
  if equal_cls ca K_int && equal_cls cb K_int then
    match (op, env.env_dialect) with
    | _, Dialect.Sqlite_like -> K_num (* Int64 overflow promotes to real *)
    | A.Div, Dialect.Mysql_like -> K_real (* mysql / is true division *)
    | _ -> K_int
  else if
    Dialect.equal env.env_dialect Dialect.Mysql_like
    && (match op with A.Div -> true | _ -> false)
  then K_real
  else if
    (equal_cls ca K_real && numeric_class cb)
    || (equal_cls cb K_real && numeric_class ca)
  then K_real
  else K_num

and infer_is env scope st ~agg ~loc arg rhs =
  let ta = infer env scope st ~agg ~loc:(loc ^ ".arg") arg in
  (match rhs with
  | A.Is_null -> ()
  | A.Is_true | A.Is_false ->
      if is_pg env then
        (match ta.ty_class with
        | K_bool | K_any -> ()
        | c ->
            err st Diagnostic.Boolean_context loc
              (Printf.sprintf
                 "argument of IS TRUE / IS FALSE must be boolean, not %s"
                 (class_name c)))
  | A.Is_expr other ->
      if not (is_sqlite env) then
        err st Diagnostic.Dialect_mismatch loc
          (Printf.sprintf
             "IS over arbitrary scalars is sqlite-specific, not available \
              in %s"
             (Dialect.name env.env_dialect));
      ignore (infer env scope st ~agg ~loc:(loc ^ ".rhs") other)
  | A.Is_distinct_from other ->
      if not (is_pg env) then
        err st Diagnostic.Dialect_mismatch loc
          (Printf.sprintf
             "IS DISTINCT FROM is postgres-specific, not available in %s"
             (Dialect.name env.env_dialect));
      let tb = infer env scope st ~agg ~loc:(loc ^ ".rhs") other in
      check_comparable env st ~loc ta tb);
  (* IS-style predicates accept NULL operands and never yield NULL *)
  bool_ty env Nullability.Not_null

and infer_func env scope st ~agg ~loc f args =
  let tys =
    List.mapi
      (fun i e ->
        infer env scope st ~agg ~loc:(Printf.sprintf "%s.arg%d" loc (i + 1)) e)
      args
  in
  let n = List.length args in
  if not (func_available env.env_dialect f) then
    err st Diagnostic.Unavailable_function loc
      (Printf.sprintf "%s is not available in the %s dialect" (func_name f)
         (Dialect.name env.env_dialect));
  (let lo, hi = func_arity f in
   if n < lo || (hi >= 0 && n > hi) then
     err st Diagnostic.Wrong_arity loc
       (Printf.sprintf "%s expects %s, got %d" (func_name f)
          (if hi < 0 then Printf.sprintf "at least %d argument%s" lo
               (if lo = 1 then "" else "s")
           else if lo = hi then
             Printf.sprintf "%d argument%s" lo (if lo = 1 then "" else "s")
           else Printf.sprintf "%d to %d arguments" lo hi)
          n));
  if is_pg env then check_pg_func_classes st ~loc f tys;
  let open Nullability in
  let nulls = List.map (fun t -> t.ty_nullability) tys in
  let arg0 = nth tys 0 in
  match f with
  | A.F_abs ->
      let cls =
        match arg0.ty_class with
        | K_int -> K_int
        | K_real -> K_real
        | _ -> K_num
      in
      mk_ty cls (strict nulls)
  | A.F_length | A.F_instr -> mk_ty K_int (strict nulls)
  | A.F_sign -> mk_ty K_int (strict nulls)
  | A.F_round -> mk_ty K_real (strict nulls)
  | A.F_lower | A.F_upper | A.F_trim | A.F_ltrim | A.F_rtrim | A.F_substr
  | A.F_replace | A.F_hex ->
      mk_ty K_text (strict nulls)
  | A.F_typeof | A.F_quote -> mk_ty K_text Not_null
  | A.F_coalesce | A.F_ifnull ->
      let cls =
        List.fold_left (fun acc t -> join_class acc t.ty_class)
          (nth tys 0).ty_class
          (if tys = [] then [] else List.tl tys)
      in
      mk_ty cls (coalesce nulls)
  | A.F_nullif ->
      let na = arg0.ty_nullability in
      mk_ty arg0.ty_class
        (if equal na Definitely_null then Definitely_null else Maybe_null)
  | A.F_least | A.F_greatest ->
      let cls =
        List.fold_left (fun acc t -> join_class acc t.ty_class)
          (nth tys 0).ty_class (if tys = [] then [] else List.tl tys)
      in
      (* mysql's LEAST/GREATEST are NULL-strict; postgres' skip NULLs *)
      mk_ty cls (if is_mysql env then strict nulls else coalesce nulls)

(* postgres rejects definitely-wrong argument classes for some scalar
   functions (the generator only feeds them matching classes). *)
and check_pg_func_classes st ~loc f tys =
  let flag i what ok =
    match List.nth_opt tys i with
    | None -> ()
    | Some t ->
        if not (ok t.ty_class) then
          err st Diagnostic.Type_mismatch loc
            (Printf.sprintf "%s argument %d cannot be %s (%s expected)"
               (func_name f) (i + 1)
               (class_name t.ty_class)
               what)
  in
  let numericish = function
    | K_any | K_num | K_int | K_real -> true
    | _ -> false
  in
  let textish = function K_any | K_text -> true | _ -> false in
  match f with
  | A.F_abs | A.F_round -> flag 0 "numeric" numericish
  | A.F_length ->
      flag 0 "text or blob" (function
        | K_any | K_text | K_blob -> true
        | _ -> false)
  | A.F_lower | A.F_upper | A.F_trim | A.F_ltrim | A.F_rtrim ->
      flag 0 "text" textish
  | _ -> ()

and infer_agg env scope st ~agg ~loc af arg =
  (match agg with
  | Agg_ok -> ()
  | Agg_inside ->
      err st Diagnostic.Nested_aggregate loc
        "aggregate function calls cannot be nested"
  | Agg_forbidden ->
      err st Diagnostic.Misplaced_aggregate loc
        "aggregate function in a context that forbids aggregates");
  let targ =
    match arg with
    | None ->
        (match af with
        | A.A_count_star -> ()
        | _ ->
            err st Diagnostic.Wrong_arity loc
              "aggregate function requires an argument");
        None
    | Some e -> Some (infer env scope st ~agg:Agg_inside ~loc:(loc ^ ".arg") e)
  in
  let open Nullability in
  match af with
  | A.A_count_star | A.A_count -> mk_ty K_int Not_null
  | A.A_sum -> mk_ty K_num Maybe_null
  | A.A_avg -> mk_ty K_real Maybe_null
  | A.A_total -> mk_ty K_real Not_null
  | A.A_min | A.A_max ->
      let cls = match targ with Some t -> t.ty_class | None -> K_any in
      mk_ty cls Maybe_null

and infer_case env scope st ~agg ~loc operand branches else_ =
  let top =
    Option.map (fun o -> infer env scope st ~agg ~loc:(loc ^ ".operand") o)
      operand
  in
  let results =
    List.mapi
      (fun i (cond, result) ->
        let tc =
          infer env scope st ~agg
            ~loc:(Printf.sprintf "%s.when%d" loc (i + 1))
            cond
        in
        (match top with
        | None -> bool_context env st ~loc:(Printf.sprintf "%s.when%d" loc (i + 1)) tc
        | Some to_ ->
            check_comparable env st
              ~loc:(Printf.sprintf "%s.when%d" loc (i + 1))
              to_ tc);
        infer env scope st ~agg
          ~loc:(Printf.sprintf "%s.then%d" loc (i + 1))
          result)
      branches
  in
  let telse =
    Option.map (fun e -> infer env scope st ~agg ~loc:(loc ^ ".else") e) else_
  in
  let all = results @ Option.to_list telse in
  let cls =
    match all with
    | [] -> K_any
    | t :: rest ->
        List.fold_left (fun acc t -> join_class acc t.ty_class) t.ty_class rest
  in
  let nulls =
    List.map (fun t -> t.ty_nullability) all
    @ (if else_ = None then [ Nullability.Definitely_null ] else [])
  in
  mk_ty cls (Nullability.joins nulls)

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)

let join_ty a b =
  {
    ty_class = join_class a.ty_class b.ty_class;
    ty_collation =
      (if Collation.equal a.ty_collation b.ty_collation then a.ty_collation
       else Collation.Binary);
    ty_nullability = Nullability.join a.ty_nullability b.ty_nullability;
  }

let rec scope_of_item env st ~loc (it : A.from_item) : scope =
  match it with
  | A.F_table { name; alias } -> (
      match
        List.find_opt (fun t -> lc t.tab_name = lc name) env.env_tables
      with
      | Some t ->
          let label = Option.value alias ~default:name in
          scope_of_table env.env_dialect ~label t
      | None ->
          err st Diagnostic.Unknown_table loc
            (Printf.sprintf "unknown table %s" name);
          [])
  | A.F_join { kind; left; right; on } ->
      let ls = scope_of_item env st ~loc:(loc ^ ".left") left in
      let rs = scope_of_item env st ~loc:(loc ^ ".right") right in
      let rs =
        match kind with
        | A.Left ->
            (* the right side of a LEFT JOIN is NULL-padded on misses *)
            List.map
              (fun sc ->
                match sc.sc_ty.ty_nullability with
                | Nullability.Not_null ->
                    {
                      sc with
                      sc_ty =
                        { sc.sc_ty with
                          ty_nullability = Nullability.Maybe_null };
                    }
                | _ -> sc)
              rs
        | A.Inner | A.Cross -> rs
      in
      let scope = ls @ rs in
      (match on with
      | None -> ()
      | Some e ->
          let t =
            infer env scope st ~agg:Agg_forbidden ~loc:(loc ^ ".on") e
          in
          bool_context env st ~loc:(loc ^ ".on") t);
      scope
  | A.F_sub { sub; alias } ->
      let cols = check_query_in env st ~loc:(loc ^ ".sub") sub in
      (* Derived tables erase declared-type metadata: class drops to K_any
         and collation to binary, mirroring both the generator's degraded
         view of wrapped pivot tables and the engine's runtime treatment
         (values that crossed a subquery boundary carry no declared type).
         Nullability survives — it abstracts the values themselves. *)
      List.map
        (fun (name, t) ->
          {
            sc_label = alias;
            sc_name = name;
            sc_ty =
              { t with ty_class = K_any; ty_collation = Collation.Binary };
          })
        cols

and scope_of_from env st ~loc items =
  List.concat
    (List.mapi
       (fun i it ->
         scope_of_item env st ~loc:(Printf.sprintf "%s.from%d" loc (i + 1)) it)
       items)

and check_select env st ~loc (s : A.select) : (string * ty) list =
  let scope = scope_of_from env st ~loc s.A.sel_from in
  (match s.A.sel_where with
  | None -> ()
  | Some w ->
      let t = infer env scope st ~agg:Agg_forbidden ~loc:(loc ^ ".where") w in
      bool_context env st ~loc:(loc ^ ".where") t;
      if Nullability.equal t.ty_nullability Nullability.Definitely_null then
        report st
          (Diagnostic.warning ~code:Diagnostic.Null_predicate
             ~loc:(loc ^ ".where")
             "the WHERE clause always evaluates to NULL and selects nothing"));
  List.iteri
    (fun i e ->
      ignore
        (infer env scope st ~agg:Agg_forbidden
           ~loc:(Printf.sprintf "%s.group-by%d" loc (i + 1))
           e))
    s.A.sel_group_by;
  (match s.A.sel_having with
  | None -> ()
  | Some h ->
      let t = infer env scope st ~agg:Agg_ok ~loc:(loc ^ ".having") h in
      bool_context env st ~loc:(loc ^ ".having") t);
  List.iteri
    (fun i (e, _dir) ->
      ignore
        (infer env scope st ~agg:Agg_ok
           ~loc:(Printf.sprintf "%s.order-by%d" loc (i + 1))
           e))
    s.A.sel_order_by;
  if s.A.sel_items = [] then
    err st Diagnostic.Empty_select loc "SELECT with an empty select list";
  List.concat
    (List.mapi
       (fun i (item : A.select_item) ->
         let loc_i = Printf.sprintf "%s.item%d" loc (i + 1) in
         match item with
         | A.Star ->
             if scope = [] then begin
               err st Diagnostic.Empty_select loc_i
                 "SELECT * with no FROM clause";
               []
             end
             else List.map (fun sc -> (sc.sc_name, sc.sc_ty)) scope
         | A.Table_star t -> (
             match
               List.filter (fun sc -> lc sc.sc_label = lc t) scope
             with
             | [] ->
                 err st Diagnostic.Unknown_table loc_i
                   (Printf.sprintf "%s.* refers to no table in scope" t);
                 []
             | cols -> List.map (fun sc -> (sc.sc_name, sc.sc_ty)) cols)
         | A.Sel_expr (e, alias) ->
             let t = infer env scope st ~agg:Agg_ok ~loc:loc_i e in
             let name =
               match (alias, e) with
               | Some a, _ -> a
               | None, A.Col { column; _ } -> column
               | None, _ -> Printf.sprintf "column%d" (i + 1)
             in
             [ (name, t) ])
       s.A.sel_items)

and check_query_in env st ~loc (q : A.query) : (string * ty) list =
  match q with
  | A.Q_select s -> check_select env st ~loc s
  | A.Q_values rows -> (
      match rows with
      | [] ->
          err st Diagnostic.Empty_select loc "VALUES with no rows";
          []
      | first :: _ ->
          let width = List.length first in
          List.iteri
            (fun r row ->
              if List.length row <> width then
                err st Diagnostic.Column_count_mismatch
                  (Printf.sprintf "%s.row%d" loc (r + 1))
                  (Printf.sprintf "VALUES row has %d columns, expected %d"
                     (List.length row) width))
            rows;
          let ty_rows =
            List.mapi
              (fun r row ->
                List.mapi
                  (fun c e ->
                    infer env [] st ~agg:Agg_forbidden
                      ~loc:(Printf.sprintf "%s.row%d.col%d" loc (r + 1) (c + 1))
                      e)
                  row)
              rows
          in
          List.init width (fun c ->
              let col_tys =
                List.filter_map (fun row -> List.nth_opt row c) ty_rows
              in
              let t =
                match col_tys with
                | [] -> unknown_ty
                | t :: rest -> List.fold_left join_ty t rest
              in
              (Printf.sprintf "column%d" (c + 1), t)))
  | A.Q_compound (op, a, b) ->
      let ca = check_query_in env st ~loc:(loc ^ ".left") a in
      let cb = check_query_in env st ~loc:(loc ^ ".right") b in
      if List.length ca <> List.length cb then begin
        err st Diagnostic.Column_count_mismatch loc
          (Printf.sprintf "compound arms have %d and %d columns"
             (List.length ca) (List.length cb));
        ca
      end
      else begin
        List.iteri
          (fun i ((_, ta), (_, tb)) ->
            if not (compatible_class ta.ty_class tb.ty_class) then
              err st Diagnostic.Type_mismatch loc
                (Printf.sprintf
                   "%s column %d combines %s with %s"
                   (match op with
                   | A.Union -> "UNION"
                   | A.Union_all -> "UNION ALL"
                   | A.Intersect -> "INTERSECT"
                   | A.Except -> "EXCEPT")
                   (i + 1) (class_name ta.ty_class) (class_name tb.ty_class)))
          (List.combine ca cb);
        List.map2 (fun (name, ta) (_, tb) -> (name, join_ty ta tb)) ca cb
      end

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)

let finish st = List.rev st.diags

let check_expr env e =
  let st = { diags = [] } in
  let scope =
    List.concat_map
      (fun t -> scope_of_table env.env_dialect ~label:t.tab_name t)
      env.env_tables
  in
  let t = infer env scope st ~agg:Agg_forbidden ~loc:"expr" e in
  (t, finish st)

let check_query env q =
  let st = { diags = [] } in
  let cols = check_query_in env st ~loc:"query" q in
  (cols, finish st)

let check_stmt env (stmt : A.stmt) =
  match stmt with
  | A.Select_stmt q | A.Explain q | A.Explain_analyze q ->
      snd (check_query env q)
  | _ -> []
