(* Static SQL analysis: the library facade.

   Three passes over the shared IRs, all abstract interpretations of the
   reference semantics:

   - Typecheck: storage-class + collation inference per AST node, with
     structured diagnostics for trees the evaluator must reject;
   - Nullability: a not-null / maybe-null / definitely-null lattice
     computed alongside the classes;
   - Plan_lint: consistency checks over Engine.Planner access paths.

   The passes are pure and engine-independent: PQS wires them into the
   oracle pipeline (lib/core/lint.ml) and the sqlancer CLI exposes them
   via --lint and the lint subcommand. *)

module Diagnostic = Diagnostic
module Nullability = Nullability
module Typecheck = Typecheck
module Plan_lint = Plan_lint

type env = Typecheck.env

let env = Typecheck.env
let check_expr = Typecheck.check_expr
let check_query = Typecheck.check_query
let check_stmt = Typecheck.check_stmt
let lint_plan = Plan_lint.lint
