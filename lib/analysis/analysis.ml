(* Static SQL analysis: the library facade.

   Three passes over the shared IRs, all abstract interpretations of the
   reference semantics:

   - Typecheck: storage-class + collation inference per AST node, with
     structured diagnostics for trees the evaluator must reject;
   - Nullability: a not-null / maybe-null / definitely-null lattice
     computed alongside the classes;
   - Plan_lint: consistency checks over Engine.Planner access paths;
   - Const_fold / Interval / Simplify: the abstract-interpretation layer
     behind the const-opt (CODDTest) oracle — evaluator-backed constant
     folding, a per-column value-class/interval domain, and a
     provenance-tracking fixpoint rewriter.

   The passes are pure and engine-independent: PQS wires them into the
   oracle pipeline (lib/core/lint.ml, lib/core/const_opt.ml) and the
   sqlancer CLI exposes them via --lint and the lint subcommand. *)

module Diagnostic = Diagnostic
module Nullability = Nullability
module Typecheck = Typecheck
module Plan_lint = Plan_lint
module Const_fold = Const_fold
module Interval = Interval
module Simplify = Simplify

type env = Typecheck.env

let env = Typecheck.env
let check_expr = Typecheck.check_expr
let check_query = Typecheck.check_query
let check_stmt = Typecheck.check_stmt
let lint_plan = Plan_lint.lint
