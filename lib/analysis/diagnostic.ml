(* Structured diagnostics emitted by the static passes.

   Every finding carries a severity, a stable machine-readable code, and a
   dotted location path into the checked tree (for example
   "query.where.lhs.arg1").  The rendering is deliberately stable — the
   golden tests in test/test_analysis.ml pin it down — so campaign logs can
   be diffed across runs. *)

type severity = Error | Warning [@@deriving show { with_path = false }, eq]

type code =
  | Unknown_table
  | Unknown_column
  | Ambiguous_column
  | Wrong_arity
  | Unavailable_function
  | Dialect_mismatch
  | Type_mismatch
  | Boolean_context
  | Column_count_mismatch
  | Empty_select
  | Misplaced_aggregate
  | Nested_aggregate
  | Null_predicate
  | Plan_key_class
  | Plan_collation
  | Plan_null_key
  | Plan_unjustified
  | Plan_partial
  | Plan_nullability
  | Unsat_predicate
  | Always_true
  | Dead_case_branch
  | Out_of_interval
[@@deriving show { with_path = false }, eq]

type t = { severity : severity; code : code; loc : string; message : string }
[@@deriving show { with_path = false }, eq]

let code_slug = function
  | Unknown_table -> "unknown-table"
  | Unknown_column -> "unknown-column"
  | Ambiguous_column -> "ambiguous-column"
  | Wrong_arity -> "wrong-arity"
  | Unavailable_function -> "unavailable-function"
  | Dialect_mismatch -> "dialect-mismatch"
  | Type_mismatch -> "type-mismatch"
  | Boolean_context -> "boolean-context"
  | Column_count_mismatch -> "column-count-mismatch"
  | Empty_select -> "empty-select"
  | Misplaced_aggregate -> "misplaced-aggregate"
  | Nested_aggregate -> "nested-aggregate"
  | Null_predicate -> "null-predicate"
  | Plan_key_class -> "plan-key-class"
  | Plan_collation -> "plan-collation"
  | Plan_null_key -> "plan-null-key"
  | Plan_unjustified -> "plan-unjustified"
  | Plan_partial -> "plan-partial"
  | Plan_nullability -> "plan-nullability"
  | Unsat_predicate -> "unsat-predicate"
  | Always_true -> "always-true"
  | Dead_case_branch -> "dead-case-branch"
  | Out_of_interval -> "out-of-interval"

let error ~code ~loc message = { severity = Error; code; loc; message }
let warning ~code ~loc message = { severity = Warning; code; loc; message }
let is_error d = d.severity = Error

let to_string d =
  Printf.sprintf "%s[%s] at %s: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    (code_slug d.code) d.loc d.message
