(* The constant-optimization rewriter.

   Bottom-up, iterated to a fixpoint: substitutes known (pivot-row)
   column values, folds constant subtrees through {!Const_fold} (i.e.
   through the engine evaluator itself), prunes tautological and
   contradictory AND/OR conjuncts and dead CASE branches, and records a
   provenance trail of every rewrite applied.

   Every rule is chosen so that the rewritten expression evaluates to the
   same value as the original *under the binding environment* on a
   bug-free engine, and so that no rewrite can introduce an evaluation
   error the original did not have.  Two classes of node are never folded
   away even when their value is known:

   - metadata-bearing roots (Col, COLLATE, CAST, unary [+]): an enclosing
     comparison's static prep consults them, so replacing them with a
     literal could change collation or affinity choices.  Operands of
     comparisons / BETWEEN / LIKE are instead substituted only when the
     engine's own prep/apply split provably computes the same result for
     the literal form ({!Const_fold.compare_substitutable} & co.);
   - the boolean skeleton (AND / OR / NOT / IS): these are where an
     engine's constant folder does its own work, so the simplifier keeps
     the connectives and only simplifies beneath them — the rewritten
     query still *exercises* the engine's folding rather than assuming
     it.  Comparisons that fold to NULL become the NULL literal, which is
     exactly the operand shape a buggy `NULL AND x` / `NOT NULL` folder
     mishandles. *)

open Sqlval
module A = Sqlast.Ast
module E = Engine.Eval

type rewrite = {
  rw_rule : string;
  rw_loc : string;
  rw_before : string;
  rw_after : string;
}

type result = {
  res_expr : Sqlast.Ast.expr;
  res_trail : rewrite list;
  res_diags : Diagnostic.t list;
}

let pp_rewrite fmt r =
  Format.fprintf fmt "%s at %s: %s => %s" r.rw_rule r.rw_loc r.rw_before
    r.rw_after

let comparison_op = function
  | A.Eq | A.Neq | A.Lt | A.Le | A.Gt | A.Ge | A.Null_safe_eq -> true
  | _ -> false

let one_pass (env : E.env) ~trail ~diags (root : A.expr) : A.expr =
  let dialect = env.E.dialect in
  let print e = Sqlast.Sql_printer.expr dialect e in
  let note rule loc before after =
    trail :=
      { rw_rule = rule; rw_loc = loc; rw_before = print before;
        rw_after = print after }
      :: !trail
  in
  let fold = Const_fold.fold env in
  (* the truth value of a literal operand, if syntactically a literal *)
  let lit_tvl = function
    | A.Lit v -> (
        match E.value_tvl env v with Ok t -> Some t | Error _ -> None)
    | _ -> None
  in
  (* fold a metadata-insensitive node to the literal of its value *)
  let pure rule loc e' =
    match fold e' with
    | Some v when not (A.equal_expr (A.Lit v) e') ->
        note rule loc e' (A.Lit v);
        A.Lit v
    | _ -> e'
  in
  let rec simp ~bool_ctx loc (e : A.expr) : A.expr =
    match e with
    | A.Lit _ | A.Col _ -> e
    (* metadata-bearing decoration chain: simplify beneath, never fold *)
    | A.Collate (inner, c) ->
        A.Collate (simp ~bool_ctx:false (loc ^ ".arg") inner, c)
    | A.Cast (ty, inner) ->
        A.Cast (ty, simp ~bool_ctx:false (loc ^ ".arg") inner)
    | A.Unary (A.Pos, inner) ->
        A.Unary (A.Pos, simp ~bool_ctx:false (loc ^ ".arg") inner)
    (* boolean skeleton *)
    | A.Unary (A.Not, inner) ->
        A.Unary (A.Not, simp ~bool_ctx:true (loc ^ ".arg") inner)
    | A.Binary (A.And, a, b) -> (
        let sa = simp ~bool_ctx:true (loc ^ ".lhs") a in
        let sb = simp ~bool_ctx:true (loc ^ ".rhs") b in
        let e' = A.Binary (A.And, sa, sb) in
        (* a FALSE conjunct decides the AND in every context (the node's
           value is exactly the dialect's FALSE encoding); a TRUE
           conjunct is droppable only where the consumer reads a truth
           value *)
        match (lit_tvl sa, lit_tvl sb) with
        | Some Tvl.False, _ | _, Some Tvl.False ->
            let f = A.Lit (E.bool_value dialect Tvl.False) in
            if A.equal_expr f e' then e'
            else begin
              note "prune-and-false" loc e' f;
              f
            end
        | Some Tvl.True, _ when bool_ctx ->
            note "prune-and-true" loc e' sb;
            sb
        | _, Some Tvl.True when bool_ctx ->
            note "prune-and-true" loc e' sa;
            sa
        | _ -> e')
    | A.Binary (A.Or, a, b) -> (
        let sa = simp ~bool_ctx:true (loc ^ ".lhs") a in
        let sb = simp ~bool_ctx:true (loc ^ ".rhs") b in
        let e' = A.Binary (A.Or, sa, sb) in
        match (lit_tvl sa, lit_tvl sb) with
        | Some Tvl.True, _ | _, Some Tvl.True ->
            let t = A.Lit (E.bool_value dialect Tvl.True) in
            if A.equal_expr t e' then e'
            else begin
              note "prune-or-true" loc e' t;
              t
            end
        | Some Tvl.False, _ when bool_ctx ->
            note "prune-or-false" loc e' sb;
            sb
        | _, Some Tvl.False when bool_ctx ->
            note "prune-or-false" loc e' sa;
            sa
        | _ -> e')
    (* comparisons: fold to NULL when the verdict is NULL (the shape a
       buggy constant folder mishandles under NOT/AND); otherwise
       substitute both operands as literals when the engine's prep is
       provably indifferent, leaving a constant comparison for the
       engine's own folder; otherwise fold the whole node *)
    | A.Binary (op, a, b) when comparison_op op -> (
        let sa = simp ~bool_ctx:false (loc ^ ".lhs") a in
        let sb = simp ~bool_ctx:false (loc ^ ".rhs") b in
        let e' = A.Binary (op, sa, sb) in
        match fold e' with
        | None -> e'
        | Some v when Value.is_null v ->
            if A.equal_expr e' (A.Lit v) then e'
            else begin
              note "fold-null-cmp" loc e' (A.Lit v);
              A.Lit v
            end
        | Some v -> (
            match (fold sa, fold sb) with
            | Some va, Some vb
              when Const_fold.compare_substitutable env op sa sb va vb ->
                let e'' = A.Binary (op, A.Lit va, A.Lit vb) in
                if A.equal_expr e'' e' then e'
                else begin
                  note "subst-cmp" loc e' e'';
                  e''
                end
            | _ ->
                note "fold-cmp" loc e' (A.Lit v);
                A.Lit v))
    (* remaining binops (arith, bitops, concat): metadata consultation is
       internal to the node, so whole-node folding is context-safe *)
    | A.Binary (op, a, b) ->
        pure "fold-const" loc
          (A.Binary
             ( op,
               simp ~bool_ctx:false (loc ^ ".lhs") a,
               simp ~bool_ctx:false (loc ^ ".rhs") b ))
    | A.Unary (op, inner) ->
        pure "fold-const" loc
          (A.Unary (op, simp ~bool_ctx:false (loc ^ ".arg") inner))
    (* IS chains are the rectifier's UNKNOWN-decoration; keep the
       skeleton so the simplified query still exercises the engine's
       NULL handling *)
    | A.Is { negated; arg; rhs } ->
        let srhs =
          match rhs with
          | A.Is_expr e -> A.Is_expr (simp ~bool_ctx:false (loc ^ ".rhs") e)
          | A.Is_distinct_from e ->
              A.Is_distinct_from (simp ~bool_ctx:false (loc ^ ".rhs") e)
          | (A.Is_null | A.Is_true | A.Is_false) as r -> r
        in
        A.Is
          { negated; arg = simp ~bool_ctx:false (loc ^ ".arg") arg; rhs = srhs }
    | A.Between { negated; arg; lo; hi } -> (
        let sarg = simp ~bool_ctx:false (loc ^ ".arg") arg in
        let slo = simp ~bool_ctx:false (loc ^ ".lo") lo in
        let shi = simp ~bool_ctx:false (loc ^ ".hi") hi in
        let e' = A.Between { negated; arg = sarg; lo = slo; hi = shi } in
        match fold e' with
        | None -> e'
        | Some v when Value.is_null v ->
            note "fold-null-between" loc e' (A.Lit v);
            A.Lit v
        | Some v -> (
            match (fold sarg, fold slo, fold shi) with
            | Some va, Some vl, Some vh
              when Const_fold.between_substitutable env ~negated ~arg:sarg
                     ~lo:slo ~hi:shi va vl vh ->
                let e'' =
                  A.Between
                    { negated; arg = A.Lit va; lo = A.Lit vl; hi = A.Lit vh }
                in
                if A.equal_expr e'' e' then e'
                else begin
                  note "subst-between" loc e' e'';
                  e''
                end
            | _ ->
                note "fold-between" loc e' (A.Lit v);
                A.Lit v))
    | A.Like { negated; arg; pattern; escape } -> (
        let sarg = simp ~bool_ctx:false (loc ^ ".arg") arg in
        let spat = simp ~bool_ctx:false (loc ^ ".pattern") pattern in
        let sesc =
          Option.map (simp ~bool_ctx:false (loc ^ ".escape")) escape
        in
        let e' =
          A.Like { negated; arg = sarg; pattern = spat; escape = sesc }
        in
        match fold e' with
        | None -> e'
        | Some v when Value.is_null v ->
            note "fold-null-like" loc e' (A.Lit v);
            A.Lit v
        | Some v -> (
            let esc_char =
              match sesc with
              | None -> Some None
              | Some se -> (
                  match fold se with
                  | Some ev -> (
                      match E.like_escape_char ev with
                      | Ok c -> Some c
                      | Error _ -> None)
                  | None -> None)
            in
            match (fold sarg, fold spat, esc_char) with
            | Some va, Some vp, Some c
              when Const_fold.like_substitutable env ~negated ~arg:sarg va vp
                     c ->
                let e'' =
                  A.Like
                    { negated; arg = A.Lit va; pattern = A.Lit vp;
                      escape = sesc }
                in
                if A.equal_expr e'' e' then e'
                else begin
                  note "subst-like" loc e' e'';
                  e''
                end
            | _ ->
                note "fold-like" loc e' (A.Lit v);
                A.Lit v))
    | A.Glob { negated; arg; pattern } ->
        pure "fold-const" loc
          (A.Glob
             {
               negated;
               arg = simp ~bool_ctx:false (loc ^ ".arg") arg;
               pattern = simp ~bool_ctx:false (loc ^ ".pattern") pattern;
             })
    | A.In_list { negated; arg; list } ->
        pure "fold-const" loc
          (A.In_list
             {
               negated;
               arg = simp ~bool_ctx:false (loc ^ ".arg") arg;
               list = List.map (simp ~bool_ctx:false (loc ^ ".item")) list;
             })
    | A.Func (f, args) ->
        pure "fold-const" loc
          (A.Func (f, List.map (simp ~bool_ctx:false (loc ^ ".arg")) args))
    | A.Agg _ -> e (* not a constant of the row; untouched *)
    | A.Case { operand = Some o; branches; else_ } ->
        (* operand form: the implicit comparisons go through the engine's
           machinery; simplify beneath, keep the shape *)
        A.Case
          {
            operand = Some (simp ~bool_ctx:false (loc ^ ".operand") o);
            branches =
              List.map
                (fun (w, r) ->
                  ( simp ~bool_ctx:false (loc ^ ".when") w,
                    simp ~bool_ctx:false (loc ^ ".then") r ))
                branches;
            else_ = Option.map (simp ~bool_ctx:false (loc ^ ".else")) else_;
          }
    | A.Case { operand = None; branches; else_ } -> (
        (* searched CASE: conditions that fold FALSE/UNKNOWN can never be
           taken; the first condition folding TRUE is always taken, so
           everything after it is dead *)
        let rec walk i kept = function
          | [] ->
              let else' =
                Option.map (simp ~bool_ctx:false (loc ^ ".else")) else_
              in
              (List.rev kept, else')
          | (cond, res) :: rest -> (
              let bloc = Printf.sprintf "%s.when%d" loc i in
              let scond = simp ~bool_ctx:true bloc cond in
              (* a cond may stay a constant comparison (kept as an
                 engine-folder surface) yet have a known truth value, so
                 branch viability folds rather than requiring a literal *)
              match Const_fold.fold_tvl env scond with
              | Some Tvl.True ->
                  let res' = simp ~bool_ctx:false (loc ^ ".then") res in
                  List.iter
                    (fun (c, _) ->
                      diags :=
                        Diagnostic.warning ~code:Diagnostic.Dead_case_branch
                          ~loc:bloc
                          (Printf.sprintf
                             "branch `WHEN %s` is unreachable: an earlier \
                              condition is always true"
                             (print c))
                        :: !diags)
                    rest;
                  note "truncate-case" bloc scond res';
                  (List.rev kept, Some res')
              | Some (Tvl.False | Tvl.Unknown) ->
                  diags :=
                    Diagnostic.warning ~code:Diagnostic.Dead_case_branch
                      ~loc:bloc
                      (Printf.sprintf
                         "condition `%s` is never true; branch pruned"
                         (print scond))
                    :: !diags;
                  note "prune-case-branch" bloc scond
                    (A.Lit (E.bool_value dialect Tvl.False));
                  walk (i + 1) kept rest
              | None ->
                  walk (i + 1)
                    ((scond, simp ~bool_ctx:false (loc ^ ".then") res)
                    :: kept)
                    rest)
        in
        match walk 1 [] branches with
        | [], Some r -> r
        | [], None -> A.Lit Value.Null
        | kept, else' -> A.Case { operand = None; branches = kept; else_ = else' })
  in
  simp ~bool_ctx:true "query.where" root

let simplify ?(max_passes = 4) (env : E.env) (e : A.expr) : result =
  let trail = ref [] and diags = ref [] in
  let rec go n e =
    if n <= 0 then e
    else
      let e' = one_pass env ~trail ~diags e in
      if A.equal_expr e' e then e else go (n - 1) e'
  in
  let final = go max_passes e in
  { res_expr = final; res_trail = List.rev !trail;
    res_diags = List.rev !diags }

(* lint-side entry: fold only the genuinely constant subtrees (no
   bindings) and flag a WHERE that simplifies to a tautology *)
let where_diagnostics (env : E.env) ?(loc = "query.where") (w : A.expr) :
    Diagnostic.t list =
  let r = simplify env w in
  (* the simplified root may still be a constant *comparison* (kept as an
     engine-folder surface), so the tautology test folds it once more *)
  let always =
    match Const_fold.fold_tvl env r.res_expr with
    | Some Tvl.True ->
        [
          Diagnostic.warning ~code:Diagnostic.Always_true ~loc
            (Printf.sprintf
               "WHERE clause is always true (simplifies to `%s`)"
               (Sqlast.Sql_printer.expr env.E.dialect r.res_expr));
        ]
    | _ -> []
  in
  r.res_diags @ always
